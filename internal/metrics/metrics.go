// Package metrics provides the evaluation measures reported in the
// paper's downstream experiments: top-k classification accuracy, a
// confusion matrix, and running averages for loss curves.
package metrics

import (
	"fmt"
	"sort"
)

// TopKCorrect reports whether label is among the k largest logits.
func TopKCorrect(logits []float32, label, k int) bool {
	if k <= 0 {
		return false
	}
	target := logits[label]
	higher := 0
	for i, v := range logits {
		//statgate:allow floateq — deterministic tie-break on stored logits; exact equality is the intent
		if v > target || (v == target && i < label) {
			higher++
			if higher >= k {
				return false
			}
		}
	}
	return true
}

// Accuracy accumulates top-1 and top-5 accuracy over a stream of
// predictions, exactly the two curves of the paper's Figure 6.
type Accuracy struct {
	n          int
	top1, top5 int
	NumClasses int
}

// NewAccuracy creates an accumulator for the given class count.
func NewAccuracy(numClasses int) *Accuracy {
	return &Accuracy{NumClasses: numClasses}
}

// Observe records one prediction (a logit row) against its true label.
func (a *Accuracy) Observe(logits []float32, label int) {
	a.n++
	if TopKCorrect(logits, label, 1) {
		a.top1++
	}
	if TopKCorrect(logits, label, 5) {
		a.top5++
	}
}

// Top1 returns top-1 accuracy in [0, 1] (0 before any observation).
func (a *Accuracy) Top1() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.top1) / float64(a.n)
}

// Top5 returns top-5 accuracy in [0, 1].
func (a *Accuracy) Top5() float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.top5) / float64(a.n)
}

// Count returns the number of observations.
func (a *Accuracy) Count() int { return a.n }

// Reset clears the accumulator.
func (a *Accuracy) Reset() { a.n, a.top1, a.top5 = 0, 0, 0 }

// String formats the pair as percentages.
func (a *Accuracy) String() string {
	return fmt.Sprintf("top1=%.2f%% top5=%.2f%%", 100*a.Top1(), 100*a.Top5())
}

// Confusion is a dense confusion matrix.
type Confusion struct {
	K     int
	Cells []int // K×K, row = true label, col = predicted
}

// NewConfusion allocates a K-class confusion matrix.
func NewConfusion(k int) *Confusion {
	return &Confusion{K: k, Cells: make([]int, k*k)}
}

// Observe records a (true, predicted) pair.
func (c *Confusion) Observe(trueLabel, pred int) {
	c.Cells[trueLabel*c.K+pred]++
}

// At returns the count for (true, predicted).
func (c *Confusion) At(trueLabel, pred int) int { return c.Cells[trueLabel*c.K+pred] }

// PerClassRecall returns recall per class (NaN-free: classes with no
// examples report 0).
func (c *Confusion) PerClassRecall() []float64 {
	out := make([]float64, c.K)
	for t := 0; t < c.K; t++ {
		var row, diag int
		for p := 0; p < c.K; p++ {
			row += c.Cells[t*c.K+p]
		}
		diag = c.Cells[t*c.K+t]
		if row > 0 {
			out[t] = float64(diag) / float64(row)
		}
	}
	return out
}

// Meter tracks a running mean of a scalar (loss curves).
type Meter struct {
	sum float64
	n   int
}

// Add records one value.
func (m *Meter) Add(v float64) { m.sum += v; m.n++ }

// Mean returns the running mean (0 before any Add).
func (m *Meter) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count returns the number of recorded values.
func (m *Meter) Count() int { return m.n }

// Reset clears the meter.
func (m *Meter) Reset() { m.sum, m.n = 0, 0 }

// Series is an append-only (x, y) sequence used to export loss and
// accuracy curves for the figures.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Last returns the most recent y value (0 if empty).
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Percentile returns the p-th percentile (0≤p≤100) of the y values
// using nearest-rank; 0 for an empty series.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	ys := append([]float64(nil), s.Y...)
	sort.Float64s(ys)
	rank := int(p / 100 * float64(len(ys)-1))
	return ys[rank]
}
