package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopKCorrect(t *testing.T) {
	logits := []float32{0.1, 0.9, 0.5, 0.7, 0.3}
	if !TopKCorrect(logits, 1, 1) {
		t.Fatal("argmax label not top-1 correct")
	}
	if TopKCorrect(logits, 0, 1) {
		t.Fatal("lowest logit top-1 correct")
	}
	if !TopKCorrect(logits, 2, 3) {
		t.Fatal("3rd-ranked label not top-3 correct")
	}
	if TopKCorrect(logits, 0, 4) {
		t.Fatal("5th-ranked label top-4 correct")
	}
	if !TopKCorrect(logits, 0, 5) {
		t.Fatal("label not top-5 correct with k=classes")
	}
	if TopKCorrect(logits, 0, 0) {
		t.Fatal("k=0 accepted")
	}
}

func TestTopKTieBreaking(t *testing.T) {
	// Equal logits: earlier index wins, so label 2 with two equal higher
	// entries at 0,1 is exactly rank 3.
	logits := []float32{0.5, 0.5, 0.5}
	if !TopKCorrect(logits, 0, 1) {
		t.Fatal("first of ties should be top-1")
	}
	if TopKCorrect(logits, 2, 2) {
		t.Fatal("last of ties should not be top-2")
	}
	if !TopKCorrect(logits, 2, 3) {
		t.Fatal("last of ties should be top-3")
	}
}

func TestTopKPropertyTop1ImpliesTopK(t *testing.T) {
	f := func(vals [8]uint8, label, k uint8) bool {
		logits := make([]float32, 8)
		for i, v := range vals {
			logits[i] = float32(v)
		}
		l := int(label % 8)
		kk := int(k%8) + 1
		if TopKCorrect(logits, l, kk) {
			// Must also be correct for every larger k.
			for k2 := kk; k2 <= 8; k2++ {
				if !TopKCorrect(logits, l, k2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyAccumulator(t *testing.T) {
	a := NewAccuracy(10)
	logits := make([]float32, 10)
	logits[3] = 1
	a.Observe(logits, 3) // top1 hit
	a.Observe(logits, 4) // top1 miss, top5 hit (4 is among 5 smallest? rank: idx3 first, then 0,1,2,4 by tie-break → 4 is rank 5)
	if a.Count() != 2 {
		t.Fatalf("Count=%d", a.Count())
	}
	if a.Top1() != 0.5 {
		t.Fatalf("Top1=%v", a.Top1())
	}
	if a.Top5() != 1.0 {
		t.Fatalf("Top5=%v", a.Top5())
	}
	a.Reset()
	if a.Top1() != 0 || a.Count() != 0 {
		t.Fatal("Reset failed")
	}
	_ = a.String()
}

func TestConfusion(t *testing.T) {
	c := NewConfusion(3)
	c.Observe(0, 0)
	c.Observe(0, 1)
	c.Observe(1, 1)
	c.Observe(2, 0)
	if c.At(0, 1) != 1 || c.At(1, 1) != 1 {
		t.Fatal("cells wrong")
	}
	rec := c.PerClassRecall()
	if math.Abs(rec[0]-0.5) > 1e-9 || rec[1] != 1 || rec[2] != 0 {
		t.Fatalf("recall=%v", rec)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if m.Mean() != 0 {
		t.Fatal("empty meter mean != 0")
	}
	m.Add(1)
	m.Add(3)
	if m.Mean() != 2 || m.Count() != 2 {
		t.Fatalf("mean=%v count=%d", m.Mean(), m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series not zero")
	}
	for i := 1; i <= 100; i++ {
		s.Append(float64(i), float64(i))
	}
	if s.Last() != 100 {
		t.Fatalf("Last=%v", s.Last())
	}
	if p := s.Percentile(50); p < 49 || p > 52 {
		t.Fatalf("P50=%v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("P100=%v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("P0=%v", p)
	}
}
