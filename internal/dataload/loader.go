// Package dataload implements a PyTorch-style data loader: worker
// goroutines render/decode samples concurrently, a bounded prefetch
// queue decouples data production from the training loop, and batch
// delivery is strictly ordered so training runs are reproducible
// regardless of worker count — mirroring the "4 data loader workers per
// GPU rank" configuration in the paper's Figure 1 IO study.
//
// For multi-rank data-parallel training the loader doubles as a
// DistributedSampler: with Config.ShardWorld = N, each of the N
// seed-identical loaders builds the same shuffled order, groups it into
// global batches of BatchSize·N samples, and delivers to its rank the
// BatchSize-sample slice at offset ShardRank·BatchSize — so the ranks
// exactly partition the batches a single loader with batch size
// BatchSize·N would produce, which is what makes an N-rank run
// reproduce the single-rank loss trajectory (see internal/train's
// PretrainDistributed).
package dataload

import (
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Source supplies labeled samples by index. Implementations must be
// safe for concurrent Sample calls (geodata generators are: they only
// read archetype tables).
type Source interface {
	// Len returns the number of samples.
	Len() int
	// ImageLen returns the per-sample buffer size.
	ImageLen() int
	// Sample renders sample i into dst and returns its label.
	Sample(i int, dst []float32) int
}

// Batch is one delivered mini-batch. Images holds Size contiguous
// samples; Labels holds the Size labels. Return exhausted batches to
// the loader with Recycle to avoid reallocation.
type Batch struct {
	Images []float32
	Labels []int
	Size   int

	// inPool guards against double-Recycle: a batch returned to the
	// pool twice could be handed to two workers at once, which would
	// race on Images and deliver a corrupted batch. Flipped by Recycle
	// and cleared when a worker takes the batch back out.
	inPool atomic.Bool
}

// Loader streams shuffled, batched samples from a Source.
type Loader struct {
	src       Source
	batchSize int
	workers   int
	prefetch  int
	shuffle   bool
	dropLast  bool
	rank      int
	world     int
	rng       *rng.RNG

	pool sync.Pool
}

// Config configures a Loader.
type Config struct {
	BatchSize int
	// Workers is the number of concurrent sample-producing goroutines
	// (default 1).
	Workers int
	// Prefetch bounds the number of in-flight batches (default 2).
	Prefetch int
	// Shuffle reshuffles sample order each epoch (deterministically
	// from Seed).
	Shuffle bool
	// DropLast discards a trailing partial batch, as the paper's
	// fixed-local-batch runs do.
	DropLast bool
	Seed     uint64
	// ShardRank and ShardWorld shard each global batch across
	// data-parallel ranks: with ShardWorld ranks, global batches of
	// BatchSize·ShardWorld samples are drawn from the (seed-identical)
	// shuffled order and this loader emits the BatchSize slice at
	// offset ShardRank·BatchSize of each. A trailing partial global
	// batch is always dropped when sharding (it cannot be split evenly,
	// exactly like PyTorch's DistributedSampler with drop_last).
	// ShardWorld ≤ 1 disables sharding.
	ShardRank, ShardWorld int
}

// New constructs a loader over src.
func New(src Source, cfg Config) *Loader {
	if cfg.BatchSize <= 0 {
		panic("dataload: batch size must be positive")
	}
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	pf := cfg.Prefetch
	if pf < 1 {
		pf = 2
	}
	world := cfg.ShardWorld
	if world < 1 {
		world = 1
	}
	if cfg.ShardRank < 0 || cfg.ShardRank >= world {
		panic("dataload: shard rank outside world")
	}
	l := &Loader{
		src:       src,
		batchSize: cfg.BatchSize,
		workers:   w,
		prefetch:  pf,
		shuffle:   cfg.Shuffle,
		dropLast:  cfg.DropLast,
		rank:      cfg.ShardRank,
		world:     world,
		rng:       rng.New(cfg.Seed),
	}
	imgLen := src.ImageLen()
	bs := cfg.BatchSize
	l.pool.New = func() any {
		return &Batch{
			Images: make([]float32, bs*imgLen),
			Labels: make([]int, bs),
		}
	}
	return l
}

// BatchesPerEpoch returns the number of batches an epoch yields. When
// sharded, every rank yields the same count: one batch per full global
// batch.
func (l *Loader) BatchesPerEpoch() int {
	if l.world > 1 {
		return l.src.Len() / (l.batchSize * l.world)
	}
	n := l.src.Len() / l.batchSize
	if !l.dropLast && l.src.Len()%l.batchSize != 0 {
		n++
	}
	return n
}

// Recycle returns a batch's buffers to the loader pool. The batch must
// not be touched afterwards — a loader worker may immediately reuse it
// for an in-flight batch. Recycling the same batch twice panics: a
// double-put would let two workers write the same buffers
// concurrently and deliver corrupted samples.
func (l *Loader) Recycle(b *Batch) {
	if b == nil {
		return
	}
	if b.inPool.Swap(true) {
		panic("dataload: batch recycled twice (still owned by the pool)")
	}
	l.pool.Put(b)
}

// batchJob is one batch's work order plus its completion signal.
type batchJob struct {
	indices []int
	out     *Batch
	done    chan struct{}
}

// SkipEpochs advances the loader's shuffle stream as if k epochs had
// been drawn and fully discarded — no samples are rendered and no
// workers launch, so it is safe with any Workers setting: the batch
// pool is untouched (nothing to double-put) and no recycled batch can
// still be held by a worker, because workers only exist while an
// Epoch/EpochN is being drained. Call it before the first epoch (as
// the resume path does), not while one is in flight — the shuffle
// stream is not synchronized against a concurrent EpochN. A run
// resuming from a step-k·BatchesPerEpoch checkpoint calls this once so
// its subsequent epochs reproduce the exact per-epoch sample orders
// the uninterrupted run saw (the shuffle consumes the deterministic
// seed stream per epoch, independent of the array contents).
func (l *Loader) SkipEpochs(k int) {
	if !l.shuffle || k <= 0 {
		return
	}
	order := make([]int, l.src.Len())
	for e := 0; e < k; e++ {
		l.rng.Shuffle(order)
	}
}

// Epoch launches workers for one pass over the data and returns a
// channel of batches in deterministic order. The caller must drain the
// channel (or consume it fully) for the workers to exit.
func (l *Loader) Epoch() <-chan *Batch {
	return l.EpochN(0)
}

// EpochN is Epoch truncated to at most maxBatches batches (0 = all).
// The shuffle still permutes the whole dataset, so successive truncated
// epochs draw different subsets — how a capped steps-per-epoch schedule
// samples a large corpus.
func (l *Loader) EpochN(maxBatches int) <-chan *Batch {
	n := l.src.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if l.shuffle {
		l.rng.Shuffle(order)
	}

	var jobs []*batchJob
	global := l.batchSize * l.world
	for start := 0; start < n; start += global {
		if maxBatches > 0 && len(jobs) >= maxBatches {
			break
		}
		end := start + global
		if end > n {
			// A partial global batch cannot be split across ranks, so
			// sharded loaders always drop it.
			if l.dropLast || l.world > 1 {
				break
			}
			end = n
		}
		lo := start + l.rank*l.batchSize
		hi := lo + l.batchSize
		if hi > end {
			hi = end
		}
		jobs = append(jobs, &batchJob{
			indices: order[lo:hi],
			done:    make(chan struct{}),
		})
	}

	jobCh := make(chan *batchJob)
	imgLen := l.src.ImageLen()
	for w := 0; w < l.workers; w++ {
		go func() {
			for j := range jobCh {
				b := l.pool.Get().(*Batch)
				b.inPool.Store(false)
				b.Size = len(j.indices)
				b.Images = b.Images[:b.Size*imgLen]
				b.Labels = b.Labels[:b.Size]
				for k, idx := range j.indices {
					b.Labels[k] = l.src.Sample(idx, b.Images[k*imgLen:(k+1)*imgLen])
				}
				j.out = b
				close(j.done)
			}
		}()
	}

	go func() {
		for _, j := range jobs {
			jobCh <- j
		}
		close(jobCh)
	}()

	out := make(chan *Batch, l.prefetch)
	go func() {
		for _, j := range jobs {
			<-j.done
			out <- j.out
		}
		close(out)
	}()
	return out
}

// TrainSplit adapts a geodata-style dataset's training split to the
// Source interface.
type TrainSplit struct {
	D interface {
		TrainSample(i int, dst []float32) int
	}
	Count  int
	ImgLen int
}

// Len returns the split size.
func (s TrainSplit) Len() int { return s.Count }

// ImageLen returns the sample buffer size.
func (s TrainSplit) ImageLen() int { return s.ImgLen }

// Sample renders sample i.
func (s TrainSplit) Sample(i int, dst []float32) int { return s.D.TrainSample(i, dst) }

// TestSplit adapts a test split to the Source interface.
type TestSplit struct {
	D interface {
		TestSample(i int, dst []float32) int
	}
	Count  int
	ImgLen int
}

// Len returns the split size.
func (s TestSplit) Len() int { return s.Count }

// ImageLen returns the sample buffer size.
func (s TestSplit) ImageLen() int { return s.ImgLen }

// Sample renders sample i.
func (s TestSplit) Sample(i int, dst []float32) int { return s.D.TestSample(i, dst) }
