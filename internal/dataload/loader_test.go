package dataload

import (
	"sync/atomic"
	"testing"

	"repro/internal/geodata"
)

// countingSource is a synthetic Source recording how often each index
// is sampled.
type countingSource struct {
	n      int
	imgLen int
	hits   []atomic.Int32
}

func newCountingSource(n, imgLen int) *countingSource {
	return &countingSource{n: n, imgLen: imgLen, hits: make([]atomic.Int32, n)}
}

func (s *countingSource) Len() int      { return s.n }
func (s *countingSource) ImageLen() int { return s.imgLen }
func (s *countingSource) Sample(i int, dst []float32) int {
	s.hits[i].Add(1)
	for j := range dst {
		dst[j] = float32(i)
	}
	return i % 7
}

func TestEpochCoversEverySampleOnce(t *testing.T) {
	src := newCountingSource(103, 4)
	l := New(src, Config{BatchSize: 8, Workers: 4, Shuffle: true, Seed: 1})
	total := 0
	for b := range l.Epoch() {
		total += b.Size
		l.Recycle(b)
	}
	if total != 103 {
		t.Fatalf("delivered %d samples, want 103", total)
	}
	for i := range src.hits {
		if got := src.hits[i].Load(); got != 1 {
			t.Fatalf("sample %d rendered %d times", i, got)
		}
	}
}

func TestDropLast(t *testing.T) {
	src := newCountingSource(103, 4)
	l := New(src, Config{BatchSize: 8, Workers: 2, DropLast: true, Seed: 1})
	if l.BatchesPerEpoch() != 12 {
		t.Fatalf("BatchesPerEpoch=%d want 12", l.BatchesPerEpoch())
	}
	batches := 0
	for b := range l.Epoch() {
		if b.Size != 8 {
			t.Fatalf("batch size %d with DropLast", b.Size)
		}
		batches++
		l.Recycle(b)
	}
	if batches != 12 {
		t.Fatalf("batches=%d", batches)
	}
}

func TestNoDropLastKeepsPartial(t *testing.T) {
	src := newCountingSource(10, 2)
	l := New(src, Config{BatchSize: 4, Workers: 1, Seed: 1})
	if l.BatchesPerEpoch() != 3 {
		t.Fatalf("BatchesPerEpoch=%d", l.BatchesPerEpoch())
	}
	sizes := []int{}
	for b := range l.Epoch() {
		sizes = append(sizes, b.Size)
		l.Recycle(b)
	}
	if len(sizes) != 3 || sizes[2] != 2 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestOrderDeterministicAcrossWorkerCounts(t *testing.T) {
	// The delivered batch sequence (contents, in order) must not depend
	// on the worker count — this is what makes training reproducible.
	collect := func(workers int) [][]int {
		src := newCountingSource(40, 2)
		l := New(src, Config{BatchSize: 8, Workers: workers, Shuffle: true, Seed: 99})
		var all [][]int
		for b := range l.Epoch() {
			all = append(all, append([]int(nil), b.Labels...))
			l.Recycle(b)
		}
		return all
	}
	a := collect(1)
	b := collect(8)
	if len(a) != len(b) {
		t.Fatalf("batch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch %d differs between worker counts", i)
			}
		}
	}
}

func TestShuffleChangesOrderAcrossEpochs(t *testing.T) {
	src := newCountingSource(64, 1)
	l := New(src, Config{BatchSize: 64, Workers: 2, Shuffle: true, Seed: 5})
	first := <-l.Epoch()
	order1 := append([]float32(nil), first.Images...)
	l.Recycle(first)
	second := <-l.Epoch()
	same := true
	for i := range order1 {
		if order1[i] != second.Images[i] {
			same = false
			break
		}
	}
	l.Recycle(second)
	if same {
		t.Fatal("two shuffled epochs had identical order")
	}
}

func TestNoShuffleIsSequential(t *testing.T) {
	src := newCountingSource(12, 1)
	l := New(src, Config{BatchSize: 4, Workers: 3, Seed: 5})
	want := float32(0)
	for b := range l.Epoch() {
		for i := 0; i < b.Size; i++ {
			if b.Images[i] != want {
				t.Fatalf("got sample %v want %v", b.Images[i], want)
			}
			want++
		}
		l.Recycle(b)
	}
}

func TestBatchSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for batch size 0")
		}
	}()
	New(newCountingSource(4, 1), Config{BatchSize: 0})
}

func TestGeodataSplitsThroughLoader(t *testing.T) {
	gen := geodata.NewSceneGen(5, 8, 3, 1)
	d := &geodata.Dataset{Name: "t", Gen: gen, TrainCount: 20, TestCount: 10}
	tr := TrainSplit{D: d, Count: d.TrainCount, ImgLen: gen.ImageLen()}
	te := TestSplit{D: d, Count: d.TestCount, ImgLen: gen.ImageLen()}

	l := New(tr, Config{BatchSize: 6, Workers: 2, Shuffle: true, Seed: 2})
	seen := 0
	for b := range l.Epoch() {
		seen += b.Size
		for i := 0; i < b.Size; i++ {
			if b.Labels[i] < 0 || b.Labels[i] >= 5 {
				t.Fatalf("label %d out of range", b.Labels[i])
			}
		}
		l.Recycle(b)
	}
	if seen != 20 {
		t.Fatalf("train samples seen=%d", seen)
	}

	lt := New(te, Config{BatchSize: 10, Workers: 2, Seed: 2})
	bt := <-lt.Epoch()
	if bt.Size != 10 {
		t.Fatalf("test batch size %d", bt.Size)
	}
}

func BenchmarkLoaderThroughput(b *testing.B) {
	gen := geodata.NewSceneGen(51, 32, 3, 1)
	d := &geodata.Dataset{Name: "bench", Gen: gen, TrainCount: 1024}
	src := TrainSplit{D: d, Count: d.TrainCount, ImgLen: gen.ImageLen()}
	l := New(src, Config{BatchSize: 32, Workers: 4, Shuffle: true, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for batch := range l.Epoch() {
			l.Recycle(batch)
		}
	}
}

func TestEpochNTruncates(t *testing.T) {
	src := newCountingSource(100, 2)
	l := New(src, Config{BatchSize: 10, Workers: 3, Shuffle: true, Seed: 4})
	batches := 0
	for b := range l.EpochN(3) {
		batches++
		l.Recycle(b)
	}
	if batches != 3 {
		t.Fatalf("batches=%d want 3", batches)
	}
	// Zero means the full epoch.
	full := 0
	for b := range l.EpochN(0) {
		full++
		l.Recycle(b)
	}
	if full != 10 {
		t.Fatalf("full=%d want 10", full)
	}
}

func TestEpochNDrawsDifferentSubsets(t *testing.T) {
	// Successive truncated epochs reshuffle the whole dataset, so the
	// sampled subsets differ across epochs.
	src := newCountingSource(64, 1)
	l := New(src, Config{BatchSize: 8, Workers: 2, Shuffle: true, Seed: 5})
	grab := func() map[float32]bool {
		seen := map[float32]bool{}
		for b := range l.EpochN(2) {
			for i := 0; i < b.Size; i++ {
				seen[b.Images[i]] = true
			}
			l.Recycle(b)
		}
		return seen
	}
	a, b := grab(), grab()
	diff := 0
	for k := range b {
		if !a[k] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("two truncated epochs sampled identical subsets")
	}
}

// TestShardedPartitionsGlobalBatches checks the DistributedSampler
// contract: N sharded loaders with the same seed exactly partition the
// batches an unsharded loader with batch size BatchSize·N yields, in
// order, with the rank-r slice at offset r·BatchSize.
func TestShardedPartitionsGlobalBatches(t *testing.T) {
	const world = 4
	const local = 4
	src := newCountingSource(70, 2) // 70 % 16 != 0: partial global batch dropped
	ref := New(src, Config{BatchSize: local * world, Workers: 2, Shuffle: true, DropLast: true, Seed: 9})
	var want [][]float32
	for b := range ref.Epoch() {
		row := append([]float32(nil), b.Images[:b.Size*2]...)
		want = append(want, row)
		ref.Recycle(b)
	}

	for rank := 0; rank < world; rank++ {
		l := New(src, Config{BatchSize: local, Workers: 2, Shuffle: true, DropLast: true,
			Seed: 9, ShardRank: rank, ShardWorld: world})
		if got := l.BatchesPerEpoch(); got != len(want) {
			t.Fatalf("rank %d BatchesPerEpoch=%d want %d", rank, got, len(want))
		}
		g := 0
		for b := range l.Epoch() {
			if b.Size != local {
				t.Fatalf("rank %d batch size %d", rank, b.Size)
			}
			slice := want[g][rank*local*2 : (rank+1)*local*2]
			for j := 0; j < local*2; j++ {
				if b.Images[j] != slice[j] {
					t.Fatalf("rank %d global batch %d differs at %d", rank, g, j)
				}
			}
			l.Recycle(b)
			g++
		}
		if g != len(want) {
			t.Fatalf("rank %d yielded %d batches, want %d", rank, g, len(want))
		}
	}
}

// TestShardedAlwaysDropsPartialGlobalBatch: sharding drops the ragged
// tail even without DropLast.
func TestShardedAlwaysDropsPartialGlobalBatch(t *testing.T) {
	src := newCountingSource(70, 2)
	l := New(src, Config{BatchSize: 4, Workers: 1, Seed: 3, ShardRank: 1, ShardWorld: 4})
	n := 0
	for b := range l.Epoch() {
		if b.Size != 4 {
			t.Fatalf("partial batch of %d delivered", b.Size)
		}
		l.Recycle(b)
		n++
	}
	if n != 70/16 {
		t.Fatalf("got %d batches, want %d", n, 70/16)
	}
}

// TestSkipEpochsMatchesDrainedEpochs: skipping k epochs advances the
// shuffle stream exactly as drawing and discarding them would, so a
// resumed loader reproduces the uninterrupted loader's k-th epoch order
// label for label.
func TestSkipEpochsMatchesDrainedEpochs(t *testing.T) {
	labels := func(l *Loader) []int {
		var out []int
		for b := range l.Epoch() {
			out = append(out, b.Labels[:b.Size]...)
			l.Recycle(b)
		}
		return out
	}
	src := newCountingSource(64, 2)
	cfg := Config{BatchSize: 8, Workers: 2, Shuffle: true, DropLast: true, Seed: 9}

	ref := New(src, cfg)
	for i := 0; i < 2; i++ { // drain two epochs the slow way
		for b := range ref.Epoch() {
			ref.Recycle(b)
		}
	}
	want := labels(ref) // the third epoch's order

	skipped := New(src, cfg)
	skipped.SkipEpochs(2)
	got := labels(skipped)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("epoch order diverges at sample %d: %d vs %d", i, got[i], want[i])
		}
	}

	// With shuffling off SkipEpochs is a no-op: samples still arrive in
	// index order (labels are index mod 7 for the counting source).
	noshuffle := New(src, Config{BatchSize: 8, Shuffle: false, Seed: 9})
	noshuffle.SkipEpochs(3)
	for i, lab := range labels(noshuffle) {
		if lab != i%7 {
			t.Fatalf("unshuffled loader out of order after SkipEpochs: sample %d has label %d", i, lab)
		}
	}
}

// TestRecycleTwicePanics pins the double-put guard: returning the same
// batch to the pool twice would let two workers write its buffers
// concurrently, so Recycle must fail fast instead.
func TestRecycleTwicePanics(t *testing.T) {
	src := newCountingSource(16, 4)
	l := New(src, Config{BatchSize: 4, Workers: 2, Seed: 1})
	var batches []*Batch
	for b := range l.Epoch() {
		batches = append(batches, b)
	}
	l.Recycle(batches[0])
	defer func() {
		if recover() == nil {
			t.Fatal("second Recycle of the same batch did not panic")
		}
	}()
	l.Recycle(batches[0])
}

// TestRecycledBatchReuseIsExclusive hammers the pool under Workers>1
// with immediate recycling (the training loop's pattern): every
// delivered batch must carry exactly its own samples — a batch handed
// back out while still held by a worker, or handed to two workers,
// corrupts the payload. Run under -race this also proves the pool
// handoff is properly synchronized.
func TestRecycledBatchReuseIsExclusive(t *testing.T) {
	src := newCountingSource(256, 8)
	l := New(src, Config{BatchSize: 4, Workers: 4, Shuffle: true, Seed: 7})
	for epoch := 0; epoch < 3; epoch++ {
		for b := range l.Epoch() {
			for k := 0; k < b.Size; k++ {
				idx := b.Images[k*8] // Sample fills dst with float32(i), labels i%7
				if int(idx)%7 != b.Labels[k] {
					t.Fatalf("epoch %d: batch sample %d carries image of index %v but label %d",
						epoch, k, idx, b.Labels[k])
				}
				for j := 1; j < 8; j++ {
					if b.Images[k*8+j] != idx {
						t.Fatalf("epoch %d: sample %d torn: %v vs %v", epoch, k, b.Images[k*8+j], idx)
					}
				}
			}
			l.Recycle(b)
		}
	}
}

// TestSkipEpochsThenWorkersBitwise is the PR 4 resume-path regression:
// SkipEpochs followed by multi-worker epochs must deliver exactly the
// sample orders the uninterrupted multi-worker run saw — no recycled
// batch delivered while a worker still held it, no pool double-put
// (the Recycle guard panics on one), and identical payload bytes.
func TestSkipEpochsThenWorkersBitwise(t *testing.T) {
	const epochs = 4
	drain := func(l *Loader, n int) [][]int {
		var all [][]int
		for e := 0; e < n; e++ {
			var labels []int
			for b := range l.Epoch() {
				labels = append(labels, b.Labels[:b.Size]...)
				l.Recycle(b)
			}
			all = append(all, labels)
		}
		return all
	}
	ref := drain(New(newCountingSource(64, 4), Config{BatchSize: 8, Workers: 4, Shuffle: true, Seed: 5}), epochs)

	resumed := New(newCountingSource(64, 4), Config{BatchSize: 8, Workers: 4, Shuffle: true, Seed: 5})
	resumed.SkipEpochs(2)
	got := drain(resumed, epochs-2)
	for e := range got {
		for i := range got[e] {
			if got[e][i] != ref[e+2][i] {
				t.Fatalf("resumed epoch %d sample %d: label %d, uninterrupted run saw %d",
					e+2, i, got[e][i], ref[e+2][i])
			}
		}
	}
}
