package opt

import "fmt"

// Checkpoint re-sharding: a sharded run's optimizer state lives as
// per-rank pieces of one canonical flat layout (master weights, Adam
// first and second moments, all FlatDim long, pad excluded). Elastic
// restart at a different world size or strategy means cutting that
// canonical state under the *old* run's Partition — what each departed
// rank owned — and rejoining the pieces into the canonical buffers the
// new layout shards its own way. CutShards and JoinShards are the two
// halves; train.Reshard wraps them with strategy/topology semantics.
//
// The cut ranges are the partition's shard ranges clipped at Dim:
// padding belongs to the final shard and never reaches a checkpoint,
// so the last shards of a heavily padded layout (hybrid pad-to-world
// alignment) shrink and may be empty. JoinShards validates that the
// set tiles [0, Dim) exactly — a missing, overlapping or inconsistent
// shard fails loudly instead of assembling silent garbage.

// ClippedRange returns shard i's flat range clipped to the unpadded
// dimension: [lo, min(hi, Dim)). Pad elements are excluded; later
// shards of a heavily padded layout may be empty.
func (p Partition) ClippedRange(i int) (lo, hi int) {
	lo, hi = p.Range(i)
	if lo > p.Dim {
		lo = p.Dim
	}
	if hi > p.Dim {
		hi = p.Dim
	}
	return lo, hi
}

// StateShard is one rank's piece of a re-shardable flat checkpoint:
// the clipped range [Lo, Hi) of the canonical master/moment tensors,
// tagged with the layout it was cut under so JoinShards can validate
// a complete, consistent set.
type StateShard struct {
	// Index is the shard index within the layout.
	Index int
	// Shards is the total shard count of the layout.
	Shards int
	// Dim is the unpadded flat dimension of the full state.
	Dim int
	// Lo, Hi bound this shard's clipped flat range.
	Lo, Hi int
	// Master, OptM, OptV hold the fp32 master weights and Adam moments
	// of [Lo, Hi), each Hi−Lo long.
	Master, OptM, OptV []float32
}

// CutShards cuts canonical flat state (master weights and Adam
// moments, each p.Dim long, unpadded) into the per-rank pieces of the
// partition layout — what each of a p.Shards-way sharded run's owner
// ranks holds. The returned shards copy their data, so they stay valid
// after the inputs are reused.
func CutShards(p Partition, master, optM, optV []float32) ([]StateShard, error) {
	if len(master) != p.Dim || len(optM) != p.Dim || len(optV) != p.Dim {
		return nil, fmt.Errorf("opt: cutting state of %d/%d/%d elements under a partition of %d",
			len(master), len(optM), len(optV), p.Dim)
	}
	shards := make([]StateShard, p.Shards)
	for i := range shards {
		lo, hi := p.ClippedRange(i)
		shards[i] = StateShard{
			Index:  i,
			Shards: p.Shards,
			Dim:    p.Dim,
			Lo:     lo,
			Hi:     hi,
			Master: append([]float32(nil), master[lo:hi]...),
			OptM:   append([]float32(nil), optM[lo:hi]...),
			OptV:   append([]float32(nil), optV[lo:hi]...),
		}
	}
	return shards, nil
}

// JoinShards reassembles the canonical flat state from a complete
// shard set (any order). It validates that every shard of one layout
// is present exactly once, carries data matching its declared range,
// and that the ranges tile [0, Dim) — the inverse of CutShards for any
// partition.
func JoinShards(shards []StateShard) (master, optM, optV []float32, err error) {
	if len(shards) == 0 {
		return nil, nil, nil, fmt.Errorf("opt: joining an empty shard set")
	}
	total, dim := shards[0].Shards, shards[0].Dim
	if len(shards) != total {
		return nil, nil, nil, fmt.Errorf("opt: %d shards of a %d-shard layout", len(shards), total)
	}
	seen := make([]bool, total)
	los := make([]int, total)
	his := make([]int, total)
	master = make([]float32, dim)
	optM = make([]float32, dim)
	optV = make([]float32, dim)
	for _, s := range shards {
		if s.Shards != total || s.Dim != dim {
			return nil, nil, nil, fmt.Errorf("opt: shard %d declares layout %d/%d, set is %d/%d",
				s.Index, s.Shards, s.Dim, total, dim)
		}
		if s.Index < 0 || s.Index >= total {
			return nil, nil, nil, fmt.Errorf("opt: shard index %d of %d", s.Index, total)
		}
		if seen[s.Index] {
			return nil, nil, nil, fmt.Errorf("opt: duplicate shard %d", s.Index)
		}
		seen[s.Index] = true
		if s.Lo < 0 || s.Hi < s.Lo || s.Hi > dim {
			return nil, nil, nil, fmt.Errorf("opt: shard %d range [%d, %d) outside [0, %d)", s.Index, s.Lo, s.Hi, dim)
		}
		n := s.Hi - s.Lo
		if len(s.Master) != n || len(s.OptM) != n || len(s.OptV) != n {
			return nil, nil, nil, fmt.Errorf("opt: shard %d carries %d/%d/%d elements for range [%d, %d)",
				s.Index, len(s.Master), len(s.OptM), len(s.OptV), s.Lo, s.Hi)
		}
		copy(master[s.Lo:s.Hi], s.Master)
		copy(optM[s.Lo:s.Hi], s.OptM)
		copy(optV[s.Lo:s.Hi], s.OptV)
		los[s.Index], his[s.Index] = s.Lo, s.Hi
	}
	// The clipped shards of a contiguous partition tile [0, Dim) in
	// index order; verify the tiling directly so corrupted ranges
	// cannot compensate each other.
	at := 0
	for i := 0; i < total; i++ {
		if !seen[i] {
			return nil, nil, nil, fmt.Errorf("opt: shard %d missing", i)
		}
		if los[i] != at {
			return nil, nil, nil, fmt.Errorf("opt: shard %d starts at %d, coverage reached %d", i, los[i], at)
		}
		at = his[i]
	}
	if at != dim {
		return nil, nil, nil, fmt.Errorf("opt: shards cover %d of %d elements", at, dim)
	}
	return master, optM, optV, nil
}
