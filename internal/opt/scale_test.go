package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// TestLossScalerBackoffAndGrowth walks the scaler through the AMP
// protocol: overflow halves the scale, skips the step and resets the
// good-step run; an interval of clean steps doubles it.
func TestLossScalerBackoffAndGrowth(t *testing.T) {
	s := NewLossScaler(0, 0, 0, 4)
	if s.Scale != DefaultLossScale {
		t.Fatalf("default scale %v", s.Scale)
	}
	if skip := s.Update(true); !skip {
		t.Fatal("overflow did not request a skip")
	}
	if s.Scale != DefaultLossScale/2 || s.Backoffs() != 1 || s.Skipped() != 1 {
		t.Fatalf("after backoff: scale %v, backoffs %d, skipped %d", s.Scale, s.Backoffs(), s.Skipped())
	}
	for i := 0; i < 3; i++ {
		if s.Update(false) {
			t.Fatal("clean step skipped")
		}
		if s.Scale != DefaultLossScale/2 {
			t.Fatalf("scale grew early at clean step %d", i)
		}
	}
	s.Update(false) // 4th clean step completes the interval
	if s.Scale != DefaultLossScale {
		t.Fatalf("scale after growth: %v", s.Scale)
	}
	if s.GoodSteps() != 0 {
		t.Fatalf("good-step run not reset after growth: %d", s.GoodSteps())
	}
	// An overflow mid-run resets the interval.
	s.Update(false)
	s.Update(true)
	if s.GoodSteps() != 0 {
		t.Fatal("good-step run survived an overflow")
	}
}

// TestLossScalerPowerOfTwo: the default policy keeps the scale an exact
// power of two through arbitrary backoff/growth sequences, so scaling
// never perturbs bf16 rounding decisions.
func TestLossScalerPowerOfTwo(t *testing.T) {
	s := NewLossScaler(0, 0, 0, 1)
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		s.Update(r.Intn(3) == 0)
		frac, _ := math.Frexp(s.Scale)
		if frac != 0.5 {
			t.Fatalf("scale %v is not a power of two after %d updates", s.Scale, i+1)
		}
	}
}

// TestLossScalerRestore: Restore reproduces the exact schedule point.
func TestLossScalerRestore(t *testing.T) {
	a := NewLossScaler(1024, 2, 0.5, 3)
	a.Update(false)
	a.Update(false)
	b := NewLossScaler(1024, 2, 0.5, 3)
	b.Restore(a.Scale, a.GoodSteps())
	a.Update(false) // completes the interval → growth
	b.Update(false)
	if a.Scale != b.Scale || a.Scale != 2048 {
		t.Fatalf("restored scaler diverged: %v vs %v", a.Scale, b.Scale)
	}
}

// TestHasNonFinite covers the three non-finite classes and the clean
// case.
func TestHasNonFinite(t *testing.T) {
	clean := []float32{0, -1.5, math.MaxFloat32, -math.MaxFloat32}
	if HasNonFinite(clean) {
		t.Fatal("finite slice flagged")
	}
	for _, bad := range []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
	} {
		x := append([]float32{1, 2}, bad)
		if !HasNonFinite(x) {
			t.Fatalf("missed %v", bad)
		}
	}
	if HasNonFinite(nil) {
		t.Fatal("nil slice flagged")
	}
}

// TestAdamWMomentsRoundTrip: exporting moments after some steps and
// importing them into a fresh optimizer (with the step counter carried
// over) continues the identical update sequence — the replicated-mode
// resume path.
func TestAdamWMomentsRoundTrip(t *testing.T) {
	r := rng.New(9)
	build := func() []*nn.Param {
		lin := nn.NewLinear("l", 4, 3, rng.New(7))
		return lin.Params()
	}
	grads := make([][]float32, 6)
	for i := range grads {
		g := make([]float32, FlatDim(build()))
		r.FillNormal(g, 0, 0.3)
		grads[i] = g
	}
	step := func(a *AdamW, params []*nn.Param, g []float32) {
		UnpackGrads(params, g)
		a.Step(0.01)
	}

	// Straight run: six steps.
	pRef := build()
	aRef := NewAdamW(pRef, 0.05)
	for _, g := range grads {
		step(aRef, pRef, g)
	}

	// Interrupted run: three steps, export, fresh optimizer, import,
	// three more.
	p1 := build()
	a1 := NewAdamW(p1, 0.05)
	for _, g := range grads[:3] {
		step(a1, p1, g)
	}
	dim := FlatDim(p1)
	m := make([]float32, dim)
	v := make([]float32, dim)
	a1.ExportMoments(m, v)

	p2 := build()
	w := make([]float32, dim)
	PackValues(w, p1)
	UnpackValues(p2, w)
	a2 := NewAdamW(p2, 0.05)
	a2.ImportMoments(m, v)
	a2.SetStep(a1.StepCount())
	for _, g := range grads[3:] {
		step(a2, p2, g)
	}

	ref := make([]float32, dim)
	got := make([]float32, dim)
	PackValues(ref, pRef)
	PackValues(got, p2)
	for i := range ref {
		if math.Float32bits(ref[i]) != math.Float32bits(got[i]) {
			t.Fatalf("resumed AdamW diverged at flat element %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

// TestShardedAdamWMomentsRoundTrip: the sharded twin of the test above.
func TestShardedAdamWMomentsRoundTrip(t *testing.T) {
	params := nn.NewLinear("l", 5, 3, rng.New(7)).Params()
	lo, hi := 4, 12
	r := rng.New(11)
	grads := make([][]float32, 4)
	for i := range grads {
		g := make([]float32, hi-lo)
		r.FillNormal(g, 0, 0.5)
		grads[i] = g
	}

	run := func(a *ShardedAdamW, w []float32, gs [][]float32) {
		for _, g := range gs {
			a.Step(0.02, w, g)
		}
	}
	wRef := make([]float32, hi-lo)
	aRef := NewShardedAdamW(params, 0.05, lo, hi)
	run(aRef, wRef, grads)

	w1 := make([]float32, hi-lo)
	a1 := NewShardedAdamW(params, 0.05, lo, hi)
	run(a1, w1, grads[:2])
	m := make([]float32, hi-lo)
	v := make([]float32, hi-lo)
	a1.CopyMoments(m, v)

	a2 := NewShardedAdamW(params, 0.05, lo, hi)
	a2.RestoreMoments(m, v)
	a2.SetStep(a1.StepCount())
	run(a2, w1, grads[2:])

	for i := range wRef {
		if math.Float32bits(wRef[i]) != math.Float32bits(w1[i]) {
			t.Fatalf("resumed ShardedAdamW diverged at %d: %v vs %v", i, w1[i], wRef[i])
		}
	}
}
