package opt

import (
	"testing"

	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/vit"
)

// vitParams builds the real parameter set a small vit.Config produces
// (through the MAE model, exactly as the distributed trainer sees it) —
// the shapes the partition helpers must handle in production.
func vitParams() []*nn.Param {
	enc := vit.Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	cfg := mae.Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75}
	return mae.New(cfg, rng.New(3)).Params()
}

// fuzzShapes derives an arbitrary parameter set from a seed. Seed 0 is
// special-cased to the live ViT/MAE shapes so the fuzz corpus always
// covers what vit.Config actually produces.
func fuzzShapes(seed uint64) []*nn.Param {
	if seed == 0 {
		return vitParams()
	}
	r := rng.New(seed)
	n := 1 + int(r.Uint64()%9)
	var ps []*nn.Param
	for i := 0; i < n; i++ {
		var shape []int
		for d := 0; d <= int(r.Uint64()%3); d++ {
			shape = append(shape, 1+int(r.Uint64()%17))
		}
		p := nn.NewParam("f", shape...)
		r.FillUniform(p.Value.Data, -2, 2)
		ps = append(ps, p)
	}
	return ps
}

// FuzzPartitionRoundTrip fuzzes the flat partition helpers over
// arbitrary shard counts, two-level alignment quanta and tensor
// shapes: packing a parameter set into the padded flat space, carving
// it into shards, reassembling from the shards, and unpacking must be
// the identity, with the pad tail provably zero — the invariant the
// FULL_SHARD/HYBRID executors stand on.
func FuzzPartitionRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(4), uint8(1))  // ViT shapes, FULL_SHARD-style 4-way
	f.Add(uint64(0), uint8(2), uint8(4))  // ViT shapes, HYBRID 2-shard × 4-replica quantum
	f.Add(uint64(0), uint8(3), uint8(2))  // uneven shard count
	f.Add(uint64(1), uint8(1), uint8(1))  // degenerate single shard
	f.Add(uint64(7), uint8(5), uint8(3))  // remainder-heavy
	f.Add(uint64(9), uint8(16), uint8(2)) // many shards
	f.Fuzz(func(t *testing.T, seed uint64, shardsB, alignMultB uint8) {
		shards := 1 + int(shardsB)%16
		align := shards * (1 + int(alignMultB)%8)
		params := fuzzShapes(seed)
		dim := FlatDim(params)

		p := NewPartition(dim, shards, align)
		if p.Padded < dim || p.Padded%align != 0 || p.Padded-dim >= align {
			t.Fatalf("padding %d→%d is not the least multiple of %d", dim, p.Padded, align)
		}
		if p.ShardLen*p.Shards != p.Padded {
			t.Fatalf("shards %d×%d != padded %d", p.Shards, p.ShardLen, p.Padded)
		}

		flat := make([]float32, p.Padded)
		PackValues(flat, params)
		for i := dim; i < p.Padded; i++ {
			if flat[i] != 0 {
				t.Fatalf("pad element %d = %v, want 0", i, flat[i])
			}
		}

		// Ranges tile [0, Padded) exactly, and Shard views match them.
		next := 0
		assembled := make([]float32, p.Padded)
		for i := 0; i < p.Shards; i++ {
			lo, hi := p.Range(i)
			if lo != next || hi-lo != p.ShardLen {
				t.Fatalf("shard %d range [%d,%d) does not tile (next=%d)", i, lo, hi, next)
			}
			next = hi
			copy(assembled[lo:hi], p.Shard(flat, i))
		}
		if next != p.Padded {
			t.Fatalf("ranges cover %d of %d", next, p.Padded)
		}

		// Unpacking the reassembled flat restores every tensor bitwise.
		clone := make([]*nn.Param, len(params))
		for i, q := range params {
			clone[i] = nn.NewParam(q.Name, q.Value.Shape()...)
		}
		UnpackValues(clone, assembled)
		for i, q := range params {
			for j, v := range q.Value.Data {
				if clone[i].Value.Data[j] != v {
					t.Fatalf("tensor %d element %d: %v != %v", i, j, clone[i].Value.Data[j], v)
				}
			}
		}

		// Scrubbing everything outside one shard keeps exactly that shard.
		if p.Shards > 1 {
			scrubbed := append([]float32(nil), flat...)
			lo, hi := p.Range(1)
			ScrubOutside(scrubbed, lo, hi)
			for i, v := range scrubbed {
				if i >= lo && i < hi {
					if v != flat[i] {
						t.Fatalf("scrub damaged owned element %d", i)
					}
				} else if v != 0 {
					t.Fatalf("scrub left non-owned element %d = %v", i, v)
				}
			}
		}
	})
}

// TestPartitionViTShardCounts walks the live ViT/MAE parameter set
// through every shard count and replica factor the strategy matrix
// tests execute, asserting the hybrid alignment invariant: the padded
// space divides by the shard count AND each shard divides by the
// replica count.
func TestPartitionViTShardCounts(t *testing.T) {
	params := vitParams()
	dim := FlatDim(params)
	for _, c := range []struct{ shards, repl int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 1}, // DDP / ZeRO-1 / FULL_SHARD worlds
		{2, 2}, {2, 4}, {4, 2}, // HYBRID shard × replica tilings
	} {
		p := NewPartition(dim, c.shards, c.shards*c.repl)
		if p.Padded%c.shards != 0 {
			t.Errorf("shards=%d repl=%d: padded %d not divisible by shards", c.shards, c.repl, p.Padded)
		}
		if p.ShardLen%c.repl != 0 {
			t.Errorf("shards=%d repl=%d: shard %d not divisible by replica count", c.shards, c.repl, p.ShardLen)
		}
	}
}

// TestPartitionPanics: malformed layouts fail loudly.
func TestPartitionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative dim":       func() { NewPartition(-1, 2, 2) },
		"zero shards":        func() { NewPartition(8, 0, 1) },
		"align below shards": func() { NewPartition(8, 4, 2) },
		"align not multiple": func() { NewPartition(8, 4, 6) },
		"range out of shard": func() { NewPartition(8, 2, 2).Range(2) },
		"shard bad buffer":   func() { NewPartition(8, 2, 2).Shard(make([]float32, 4), 0) },
		"scrub bad range":    func() { ScrubOutside(make([]float32, 4), 2, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
