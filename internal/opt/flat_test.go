package opt

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func randParams(r *rng.RNG) []*nn.Param {
	shapes := [][]int{{3, 5}, {7}, {2, 2, 2}, {11}}
	var ps []*nn.Param
	for i, s := range shapes {
		p := nn.NewParam("p", s...)
		r.FillUniform(p.Value.Data, -1, 1)
		r.FillUniform(p.Grad.Data, -0.1, 0.1)
		if i%2 == 1 {
			p.NoWeightDecay = true
		}
		ps = append(ps, p)
	}
	return ps
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := rng.New(3)
	ps := randParams(r)
	dim := FlatDim(ps)
	if want := 15 + 7 + 8 + 11; dim != want {
		t.Fatalf("FlatDim=%d want %d", dim, want)
	}
	flat := make([]float32, PadTo(dim, 4))
	PackValues(flat, ps)
	// Mutate the params, then restore from the flat copy.
	orig := append([]float32(nil), flat[:dim]...)
	for _, p := range ps {
		for i := range p.Value.Data {
			p.Value.Data[i] = -99
		}
	}
	UnpackValues(ps, flat)
	check := make([]float32, dim)
	PackValues(check, ps)
	for i := range check {
		if check[i] != orig[i] {
			t.Fatalf("value round trip differs at %d", i)
		}
	}

	PackGrads(flat, ps)
	g0 := ps[0].Grad.Data[0]
	ps[0].Grad.Data[0] = 1234
	UnpackGrads(ps, flat)
	if ps[0].Grad.Data[0] != g0 {
		t.Fatalf("grad round trip differs")
	}
}

func TestPadTo(t *testing.T) {
	cases := []struct{ n, world, want int }{
		{10, 1, 10}, {10, 4, 12}, {12, 4, 12}, {0, 4, 0}, {1, 8, 8},
	}
	for _, c := range cases {
		if got := PadTo(c.n, c.world); got != c.want {
			t.Fatalf("PadTo(%d,%d)=%d want %d", c.n, c.world, got, c.want)
		}
	}
}

// TestShardedAdamWMatchesAdamW drives AdamW and a set of ShardedAdamW
// instances covering the flat space with identical gradients and checks
// the resulting weights are bit-identical — the ZeRO-1 invariant that
// sharding optimizer state must not change the update.
func TestShardedAdamWMatchesAdamW(t *testing.T) {
	const world = 4
	const steps = 5
	const wd = 0.05

	ref := randParams(rng.New(17))
	shard := randParams(rng.New(17)) // identical initial state

	refOpt := NewAdamW(ref, wd)

	dim := FlatDim(shard)
	padded := PadTo(dim, world)
	flatW := make([]float32, padded)
	flatG := make([]float32, padded)
	PackValues(flatW, shard)
	shardLen := padded / world
	var opts []*ShardedAdamW
	for k := 0; k < world; k++ {
		opts = append(opts, NewShardedAdamW(shard, wd, k*shardLen, (k+1)*shardLen))
	}

	r := rng.New(23)
	for s := 0; s < steps; s++ {
		// Fresh identical gradients on both sides.
		for i, p := range ref {
			r.FillUniform(p.Grad.Data, -0.2, 0.2)
			copy(shard[i].Grad.Data, p.Grad.Data)
		}
		lr := 0.01 * float64(s+1)
		refOpt.Step(lr)

		PackGrads(flatG, shard)
		for k, o := range opts {
			lo, hi := k*shardLen, (k+1)*shardLen
			o.Step(lr, flatW[lo:hi], flatG[lo:hi])
		}
	}
	UnpackValues(shard, flatW)
	for i := range ref {
		for j := range ref[i].Value.Data {
			if ref[i].Value.Data[j] != shard[i].Value.Data[j] {
				t.Fatalf("param %d elem %d: AdamW %v, sharded %v",
					i, j, ref[i].Value.Data[j], shard[i].Value.Data[j])
			}
		}
	}
	// Padding must have stayed zero.
	for i := dim; i < padded; i++ {
		if flatW[i] != 0 {
			t.Fatalf("pad element %d became %v", i, flatW[i])
		}
	}
}
