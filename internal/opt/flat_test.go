package opt

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

func randParams(r *rng.RNG) []*nn.Param {
	shapes := [][]int{{3, 5}, {7}, {2, 2, 2}, {11}}
	var ps []*nn.Param
	for i, s := range shapes {
		p := nn.NewParam("p", s...)
		r.FillUniform(p.Value.Data, -1, 1)
		r.FillUniform(p.Grad.Data, -0.1, 0.1)
		if i%2 == 1 {
			p.NoWeightDecay = true
		}
		ps = append(ps, p)
	}
	return ps
}

func TestPackUnpackRoundTrip(t *testing.T) {
	r := rng.New(3)
	ps := randParams(r)
	dim := FlatDim(ps)
	if want := 15 + 7 + 8 + 11; dim != want {
		t.Fatalf("FlatDim=%d want %d", dim, want)
	}
	flat := make([]float32, PadTo(dim, 4))
	PackValues(flat, ps)
	// Mutate the params, then restore from the flat copy.
	orig := append([]float32(nil), flat[:dim]...)
	for _, p := range ps {
		for i := range p.Value.Data {
			p.Value.Data[i] = -99
		}
	}
	UnpackValues(ps, flat)
	check := make([]float32, dim)
	PackValues(check, ps)
	for i := range check {
		if check[i] != orig[i] {
			t.Fatalf("value round trip differs at %d", i)
		}
	}

	PackGrads(flat, ps)
	g0 := ps[0].Grad.Data[0]
	ps[0].Grad.Data[0] = 1234
	UnpackGrads(ps, flat)
	if ps[0].Grad.Data[0] != g0 {
		t.Fatalf("grad round trip differs")
	}
}

func TestPadTo(t *testing.T) {
	cases := []struct{ n, world, want int }{
		{10, 1, 10}, {10, 4, 12}, {12, 4, 12}, {0, 4, 0}, {1, 8, 8},
	}
	for _, c := range cases {
		if got := PadTo(c.n, c.world); got != c.want {
			t.Fatalf("PadTo(%d,%d)=%d want %d", c.n, c.world, got, c.want)
		}
	}
}

// TestShardedAdamWMatchesAdamW drives AdamW and a set of ShardedAdamW
// instances covering the flat space with identical gradients and checks
// the resulting weights are bit-identical — the ZeRO-1 invariant that
// sharding optimizer state must not change the update.
func TestShardedAdamWMatchesAdamW(t *testing.T) {
	const world = 4
	const steps = 5
	const wd = 0.05

	ref := randParams(rng.New(17))
	shard := randParams(rng.New(17)) // identical initial state

	refOpt := NewAdamW(ref, wd)

	dim := FlatDim(shard)
	padded := PadTo(dim, world)
	flatW := make([]float32, padded)
	flatG := make([]float32, padded)
	PackValues(flatW, shard)
	shardLen := padded / world
	var opts []*ShardedAdamW
	for k := 0; k < world; k++ {
		opts = append(opts, NewShardedAdamW(shard, wd, k*shardLen, (k+1)*shardLen))
	}

	r := rng.New(23)
	for s := 0; s < steps; s++ {
		// Fresh identical gradients on both sides.
		for i, p := range ref {
			r.FillUniform(p.Grad.Data, -0.2, 0.2)
			copy(shard[i].Grad.Data, p.Grad.Data)
		}
		lr := 0.01 * float64(s+1)
		refOpt.Step(lr)

		PackGrads(flatG, shard)
		for k, o := range opts {
			lo, hi := k*shardLen, (k+1)*shardLen
			o.Step(lr, flatW[lo:hi], flatG[lo:hi])
		}
	}
	UnpackValues(shard, flatW)
	for i := range ref {
		for j := range ref[i].Value.Data {
			if ref[i].Value.Data[j] != shard[i].Value.Data[j] {
				t.Fatalf("param %d elem %d: AdamW %v, sharded %v",
					i, j, ref[i].Value.Data[j], shard[i].Value.Data[j])
			}
		}
	}
	// Padding must have stayed zero.
	for i := dim; i < padded; i++ {
		if flatW[i] != 0 {
			t.Fatalf("pad element %d became %v", i, flatW[i])
		}
	}
}

// TestPackGradsSpanMatchesFullPack: packing any aligned sub-range must
// write exactly the same bytes PackGrads writes there, and nothing
// outside it — including param boundaries that straddle the span edges.
func TestPackGradsSpanMatchesFullPack(t *testing.T) {
	r := rng.New(5)
	ps := randParams(r)
	dim := FlatDim(ps)
	padded := PadTo(dim, 4)
	full := make([]float32, padded)
	PackGrads(full, ps)
	for _, span := range []Span{{0, padded}, {0, 8}, {8, 24}, {13, 29}, {dim - 3, padded}, {7, 7}} {
		got := make([]float32, padded)
		for i := range got {
			got[i] = -77 // sentinel: untouched outside the span
		}
		PackGradsSpan(got, ps, span.Lo, span.Hi)
		for i := range got {
			in := i >= span.Lo && i < span.Hi && i < dim
			switch {
			case in && got[i] != full[i]:
				t.Fatalf("span %v: element %d = %v, want %v", span, i, got[i], full[i])
			case !in && got[i] != -77:
				t.Fatalf("span %v: element %d outside the span was written", span, i)
			}
		}
	}
}

// TestSpanHelpers: gather/scatter round-trip and scrub over
// bucket-granular ownership.
func TestSpanHelpers(t *testing.T) {
	buf := make([]float32, 16)
	for i := range buf {
		buf[i] = float32(i + 1)
	}
	spans := []Span{{2, 5}, {8, 10}, {15, 16}}
	if got := SpansLen(spans); got != 6 {
		t.Fatalf("SpansLen=%d want 6", got)
	}
	shard := make([]float32, 6)
	GatherSpans(shard, buf, spans)
	want := []float32{3, 4, 5, 9, 10, 16}
	for i := range want {
		if shard[i] != want[i] {
			t.Fatalf("gathered[%d]=%v want %v", i, shard[i], want[i])
		}
	}
	for i := range shard {
		shard[i] *= 10
	}
	out := append([]float32(nil), buf...)
	ScatterSpans(out, shard, spans)
	for i, v := range out {
		owned := (i >= 2 && i < 5) || (i >= 8 && i < 10) || i == 15
		if owned && v != buf[i]*10 {
			t.Fatalf("scatter missed owned element %d: %v", i, v)
		}
		if !owned && v != buf[i] {
			t.Fatalf("scatter touched unowned element %d", i)
		}
	}
	ScrubOutsideSpans(out, spans)
	for i, v := range out {
		owned := (i >= 2 && i < 5) || (i >= 8 && i < 10) || i == 15
		if !owned && v != 0 {
			t.Fatalf("scrub left unowned element %d = %v", i, v)
		}
		if owned && v == 0 {
			t.Fatalf("scrub zeroed owned element %d", i)
		}
	}
}

// TestShardedAdamWSpansMatchesContiguous: a spans optimizer over chunk
// idx of every bucket must update exactly the same flat elements to
// exactly the same values as running AdamW over the whole space and
// reading off those elements — including the NoWeightDecay mask across
// straddled parameter boundaries and the shared bias-correction step.
func TestShardedAdamWSpansMatchesContiguous(t *testing.T) {
	r := rng.New(11)
	ps := randParams(r)
	dim := FlatDim(ps)
	padded := PadTo(dim, 8) // 2 buckets × 4-way chunking
	const buckets, shards = 2, 4
	be := padded / buckets
	cl := be / shards
	flatW := make([]float32, padded)
	flatG := make([]float32, padded)
	PackValues(flatW, ps)
	PackGrads(flatG, ps)

	// Reference: full-range sharded AdamW (proven equal to AdamW by
	// TestShardedAdamWMatchesFull-style coverage elsewhere).
	refW := append([]float32(nil), flatW...)
	refG := append([]float32(nil), flatG...)
	ref := NewShardedAdamW(ps, 0.05, 0, padded)
	for step := 0; step < 3; step++ {
		ref.Step(1e-2, refW, refG)
	}

	for idx := 0; idx < shards; idx++ {
		spans := []Span{}
		for b := 0; b < buckets; b++ {
			lo := b*be + idx*cl
			spans = append(spans, Span{lo, lo + cl})
		}
		opt := NewShardedAdamWSpans(ps, 0.05, spans)
		w := make([]float32, SpansLen(spans))
		g := make([]float32, SpansLen(spans))
		GatherSpans(w, flatW, spans)
		GatherSpans(g, flatG, spans)
		for step := 0; step < 3; step++ {
			opt.Step(1e-2, w, g)
		}
		want := make([]float32, SpansLen(spans))
		GatherSpans(want, refW, spans)
		for i := range want {
			if w[i] != want[i] {
				t.Fatalf("shard %d local element %d: spans update %v, reference %v", idx, i, w[i], want[i])
			}
		}
	}
}
