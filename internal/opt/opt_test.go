package opt

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// quadratic builds a parameter vector and a closure computing the
// gradient of f(w) = ½‖w − target‖² into the parameter's Grad.
func quadratic(t *testing.T, n int, seed uint64) (*nn.Param, []float32, func()) {
	t.Helper()
	r := rng.New(seed)
	p := nn.NewParam("w", n)
	p.Value.RandnInit(r, 1)
	target := make([]float32, n)
	r.FillNormal(target, 0, 1)
	grad := func() {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = p.Value.Data[i] - target[i]
		}
	}
	return p, target, grad
}

func distance(p *nn.Param, target []float32) float64 {
	var s float64
	for i, v := range p.Value.Data {
		d := float64(v) - float64(target[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	p, target, grad := quadratic(t, 32, 1)
	a := NewAdamW([]*nn.Param{p}, 0)
	start := distance(p, target)
	for i := 0; i < 500; i++ {
		grad()
		a.Step(0.05)
	}
	if end := distance(p, target); end > start*0.01 {
		t.Fatalf("AdamW did not converge: start=%v end=%v", start, end)
	}
	if a.StepCount() != 500 {
		t.Fatalf("StepCount=%d", a.StepCount())
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p, target, grad := quadratic(t, 32, 2)
	s := NewSGD([]*nn.Param{p}, 0.9, 0)
	start := distance(p, target)
	for i := 0; i < 300; i++ {
		grad()
		s.Step(0.05)
	}
	if end := distance(p, target); end > start*0.01 {
		t.Fatalf("SGD did not converge: start=%v end=%v", start, end)
	}
}

func TestLARSConvergesOnQuadratic(t *testing.T) {
	p, target, grad := quadratic(t, 32, 3)
	l := NewLARS([]*nn.Param{p}, 0)
	start := distance(p, target)
	for i := 0; i < 2000; i++ {
		grad()
		l.Step(10) // LARS trust ratio makes effective steps small
	}
	if end := distance(p, target); end > start*0.1 {
		t.Fatalf("LARS did not converge: start=%v end=%v", start, end)
	}
}

func TestAdamWWeightDecayShrinksWeights(t *testing.T) {
	p := nn.NewParam("w", 8)
	p.Value.Fill(1)
	a := NewAdamW([]*nn.Param{p}, 0.5)
	// Zero gradient: only decay acts.
	for i := 0; i < 10; i++ {
		p.ZeroGrad()
		a.Step(0.1)
	}
	for _, v := range p.Value.Data {
		if v >= 1 {
			t.Fatalf("decay did not shrink weight: %v", v)
		}
	}
}

func TestAdamWRespectsNoWeightDecayFlag(t *testing.T) {
	p := nn.NewParam("bias", 4)
	p.NoWeightDecay = true
	p.Value.Fill(1)
	a := NewAdamW([]*nn.Param{p}, 0.5)
	for i := 0; i < 10; i++ {
		p.ZeroGrad()
		a.Step(0.1)
	}
	for _, v := range p.Value.Data {
		if v != 1 {
			t.Fatalf("NoWeightDecay param modified: %v", v)
		}
	}
}

func TestLARSZeroWeightSafe(t *testing.T) {
	// Trust ratio must not divide by zero when ‖w‖ = 0.
	p := nn.NewParam("w", 4)
	p.Grad.Fill(1)
	l := NewLARS([]*nn.Param{p}, 0)
	l.Step(0.1)
	for _, v := range p.Value.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite after zero-norm step: %v", v)
		}
	}
}

func TestCosineScheduleShape(t *testing.T) {
	s := CosineSchedule{Base: 1.0, MinLR: 0.0, WarmupSteps: 10, TotalSteps: 110}
	// Warmup is linear and increasing.
	prev := 0.0
	for i := 0; i < 10; i++ {
		lr := s.LR(i)
		if lr <= prev {
			t.Fatalf("warmup not increasing at %d: %v", i, lr)
		}
		prev = lr
	}
	if math.Abs(s.LR(9)-1.0) > 1e-9 {
		t.Fatalf("warmup end LR %v", s.LR(9))
	}
	// Decay is monotone non-increasing after warmup.
	prev = s.LR(10)
	for i := 11; i < 110; i++ {
		lr := s.LR(i)
		if lr > prev+1e-12 {
			t.Fatalf("decay not monotone at %d", i)
		}
		prev = lr
	}
	// After the end, the schedule floors at MinLR.
	if s.LR(10_000) != 0 {
		t.Fatalf("LR after end = %v", s.LR(10_000))
	}
	// Midpoint of the cosine is half of base.
	mid := s.LR(10 + 50)
	if math.Abs(mid-0.5) > 0.02 {
		t.Fatalf("cosine midpoint %v", mid)
	}
}

func TestCosineScheduleNoWarmup(t *testing.T) {
	s := CosineSchedule{Base: 2, MinLR: 0.2, WarmupSteps: 0, TotalSteps: 100}
	if math.Abs(s.LR(0)-2) > 1e-6 {
		t.Fatalf("start LR %v", s.LR(0))
	}
	if got := s.LR(99); got < 0.2 || got > 0.25 {
		t.Fatalf("end LR %v", got)
	}
}

func TestConstSchedule(t *testing.T) {
	s := ConstSchedule(0.3)
	if s.LR(0) != 0.3 || s.LR(1e6) != 0.3 {
		t.Fatal("ConstSchedule not constant")
	}
}

func TestScaledLRLinearRule(t *testing.T) {
	// The paper's pretraining: base 1.5e-4 with global batch 2048.
	got := ScaledLR(1.5e-4, 2048)
	want := 1.5e-4 * 8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ScaledLR=%v want %v", got, want)
	}
	if ScaledLR(0.1, 256) != 0.1 {
		t.Fatal("identity at batch 256 violated")
	}
}

func TestOptimizersImplementInterface(t *testing.T) {
	p := nn.NewParam("w", 2)
	for _, o := range []Optimizer{
		NewAdamW([]*nn.Param{p}, 0),
		NewSGD([]*nn.Param{p}, 0.9, 0),
		NewLARS([]*nn.Param{p}, 0),
	} {
		if len(o.Params()) != 1 {
			t.Fatal("Params() wrong")
		}
		o.Step(0.01)
	}
}
