// Package opt implements the optimizers and learning-rate schedules the
// paper trains with: AdamW (MAE pretraining, base LR 1.5e-4, weight
// decay 0.05), LARS (linear probing, base LR 0.1, no weight decay), and
// SGD with momentum as a baseline, plus cosine decay with linear
// warmup.
package opt

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update at the given learning rate.
	Step(lr float64)
	// Params returns the parameter set being optimized.
	Params() []*nn.Param
}

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// pretraining optimizer of the paper. Parameters flagged NoWeightDecay
// (biases, LayerNorm affine, mask token) are excluded from decay,
// following the MAE recipe.
type AdamW struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	params []*nn.Param
	m, v   [][]float32
	t      int
}

// The paper's Adam hyper-parameters (β₁, β₂ as in MAE, ε), shared by
// the replicated and the ZeRO-1 sharded optimizer so the two paths
// cannot drift.
const (
	adamwBeta1 = 0.9
	adamwBeta2 = 0.95
	adamwEps   = 1e-8
)

// adamwApply runs the AdamW update over one contiguous slice: w, g and
// the moment buffers m, v advance together. decay is the uniform
// decoupled-decay factor lr·λ (already zero for NoWeightDecay
// tensors); mask, when non-nil, scales decay per element (the sharded
// optimizer's 0/1 mask over its flat shard). Both AdamW.Step and
// ShardedAdamW.Step are thin wrappers over this kernel, which keeps
// their arithmetic bit-identical.
func adamwApply(w, g, m, v []float32, b1, b2 float32, bc1, bc2, lr, eps float64, decay float32, mask []float32) {
	for i := range w {
		gi := g[i]
		m[i] = b1*m[i] + (1-b1)*gi
		v[i] = b2*v[i] + (1-b2)*gi*gi
		mhat := float64(m[i]) / bc1
		vhat := float64(v[i]) / bc2
		d := decay
		if mask != nil {
			d = decay * mask[i]
		}
		w[i] -= float32(lr*mhat/(math.Sqrt(vhat)+eps)) + d*w[i]
	}
}

// NewAdamW constructs AdamW with the paper's hyper-parameters
// (β₁=0.9, β₂=0.95 as in MAE, ε=1e-8) and the given weight decay.
func NewAdamW(params []*nn.Param, weightDecay float64) *AdamW {
	a := &AdamW{
		Beta1: adamwBeta1, Beta2: adamwBeta2, Eps: adamwEps,
		WeightDecay: weightDecay,
		params:      params,
	}
	for _, p := range params {
		a.m = append(a.m, make([]float32, p.NumEl()))
		a.v = append(a.v, make([]float32, p.NumEl()))
	}
	return a
}

// Params returns the optimized parameters.
func (a *AdamW) Params() []*nn.Param { return a.params }

// StepCount returns how many updates have been applied.
func (a *AdamW) StepCount() int { return a.t }

// SetStep overrides the bias-correction step counter (resuming from a
// checkpoint).
func (a *AdamW) SetStep(t int) { a.t = t }

// ExportMoments packs the Adam first and second moments into flat
// buffers in parameter order (the same layout as PackGrads), for
// checkpointing. len(m) and len(v) must be at least FlatDim(params).
func (a *AdamW) ExportMoments(m, v []float32) {
	off := 0
	for pi, p := range a.params {
		n := p.NumEl()
		copy(m[off:off+n], a.m[pi])
		copy(v[off:off+n], a.v[pi])
		off += n
	}
}

// ImportMoments restores the Adam moments from flat buffers written by
// ExportMoments.
func (a *AdamW) ImportMoments(m, v []float32) {
	off := 0
	for pi, p := range a.params {
		n := p.NumEl()
		copy(a.m[pi], m[off:off+n])
		copy(a.v[pi], v[off:off+n])
		off += n
	}
}

// Step applies one AdamW update.
func (a *AdamW) Step(lr float64) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	b1, b2 := float32(a.Beta1), float32(a.Beta2)
	for pi, p := range a.params {
		decay := float32(lr * a.WeightDecay)
		if p.NoWeightDecay {
			decay = 0
		}
		adamwApply(p.Value.Data, p.Grad.Data, a.m[pi], a.v[pi],
			b1, b2, bc1, bc2, lr, a.Eps, decay, nil)
	}
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	Momentum    float64
	WeightDecay float64

	params []*nn.Param
	vel    [][]float32
}

// NewSGD constructs SGD with the given momentum and L2 weight decay.
func NewSGD(params []*nn.Param, momentum, weightDecay float64) *SGD {
	s := &SGD{Momentum: momentum, WeightDecay: weightDecay, params: params}
	for _, p := range params {
		s.vel = append(s.vel, make([]float32, p.NumEl()))
	}
	return s
}

// Params returns the optimized parameters.
func (s *SGD) Params() []*nn.Param { return s.params }

// Step applies one SGD update.
func (s *SGD) Step(lr float64) {
	mu := float32(s.Momentum)
	for pi, p := range s.params {
		vel := s.vel[pi]
		w := p.Value.Data
		g := p.Grad.Data
		wd := float32(s.WeightDecay)
		if p.NoWeightDecay {
			wd = 0
		}
		for i := range w {
			grad := g[i] + wd*w[i]
			vel[i] = mu*vel[i] + grad
			w[i] -= float32(lr) * vel[i]
		}
	}
}

// LARS implements Layer-wise Adaptive Rate Scaling (You et al.), the
// optimizer the paper uses for linear probing with large batches. Each
// parameter tensor's update is rescaled by ‖w‖/‖g + λw‖ (the "trust
// ratio") before the momentum step.
type LARS struct {
	Momentum    float64
	WeightDecay float64
	TrustCoef   float64

	params []*nn.Param
	vel    [][]float32
}

// NewLARS constructs LARS with the probing configuration (momentum 0.9,
// trust coefficient 0.001, and no weight decay as in the paper).
func NewLARS(params []*nn.Param, weightDecay float64) *LARS {
	l := &LARS{Momentum: 0.9, WeightDecay: weightDecay, TrustCoef: 0.001, params: params}
	for _, p := range params {
		l.vel = append(l.vel, make([]float32, p.NumEl()))
	}
	return l
}

// Params returns the optimized parameters.
func (l *LARS) Params() []*nn.Param { return l.params }

// Step applies one LARS update.
func (l *LARS) Step(lr float64) {
	for pi, p := range l.params {
		w := p.Value.Data
		g := p.Grad.Data
		wd := l.WeightDecay
		if p.NoWeightDecay {
			wd = 0
		}
		wNorm := tensor.L2Norm(w)
		// Effective gradient includes decay for the norm computation.
		var gNorm float64
		for i := range g {
			eg := float64(g[i]) + wd*float64(w[i])
			gNorm += eg * eg
		}
		gNorm = math.Sqrt(gNorm)
		trust := 1.0
		if wNorm > 0 && gNorm > 0 {
			trust = l.TrustCoef * wNorm / gNorm
		}
		localLR := float32(lr * trust)
		mu := float32(l.Momentum)
		vel := l.vel[pi]
		for i := range w {
			eg := g[i] + float32(wd)*w[i]
			vel[i] = mu*vel[i] + localLR*eg
			w[i] -= vel[i]
		}
	}
}

// Schedule maps a step index to a learning rate.
type Schedule interface {
	LR(step int) float64
}

// CosineSchedule is linear warmup to Base over WarmupSteps, then cosine
// decay to MinLR at TotalSteps — the schedule used for both pretraining
// and probing in the MAE recipe.
type CosineSchedule struct {
	Base        float64
	MinLR       float64
	WarmupSteps int
	TotalSteps  int
}

// LR returns the learning rate for the given zero-based step.
func (c CosineSchedule) LR(step int) float64 {
	if c.WarmupSteps > 0 && step < c.WarmupSteps {
		return c.Base * float64(step+1) / float64(c.WarmupSteps)
	}
	if step >= c.TotalSteps {
		return c.MinLR
	}
	denom := float64(c.TotalSteps - c.WarmupSteps)
	if denom <= 0 {
		return c.MinLR
	}
	progress := float64(step-c.WarmupSteps) / denom
	return c.MinLR + 0.5*(c.Base-c.MinLR)*(1+math.Cos(math.Pi*progress))
}

// ConstSchedule returns a fixed learning rate.
type ConstSchedule float64

// LR returns the constant rate.
func (c ConstSchedule) LR(int) float64 { return float64(c) }

// ScaledLR applies the linear batch-size scaling rule the paper uses:
// lr = baseLR × globalBatch / 256.
func ScaledLR(baseLR float64, globalBatch int) float64 {
	return baseLR * float64(globalBatch) / 256.0
}
