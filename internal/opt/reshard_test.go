package opt

import (
	"math"
	"strings"
	"testing"
)

// stateFill produces deterministic, position-distinct test tensors so a
// misplaced element after a cut/join round trip cannot cancel out.
func stateFill(dim int, salt float32) (master, optM, optV []float32) {
	master = make([]float32, dim)
	optM = make([]float32, dim)
	optV = make([]float32, dim)
	for i := range master {
		master[i] = salt + float32(i)*0.25
		optM[i] = -salt + float32(i)*0.125
		optV[i] = salt*2 + float32(math.Sin(float64(i)))
	}
	return
}

// TestClippedRange: shard ranges clip at Dim, padding excluded; the
// trailing shards of a heavily padded layout collapse to empty.
func TestClippedRange(t *testing.T) {
	p := NewPartition(3, 4, 8) // Padded 8, ShardLen 2
	want := [][2]int{{0, 2}, {2, 3}, {3, 3}, {3, 3}}
	for i, w := range want {
		lo, hi := p.ClippedRange(i)
		if lo != w[0] || hi != w[1] {
			t.Errorf("shard %d clipped to [%d, %d), want [%d, %d)", i, lo, hi, w[0], w[1])
		}
	}
}

// TestCutJoinRoundTrip: for every layout a 2–8 rank run can execute —
// replicated, fully sharded, and hybrid with pad-to-world alignment —
// cutting canonical state into per-rank shards and rejoining them is
// the bitwise identity.
func TestCutJoinRoundTrip(t *testing.T) {
	for _, dim := range []int{1, 7, 16, 37, 100} {
		for world := 2; world <= 8; world++ {
			var parts []Partition
			parts = append(parts, NewPartition(dim, 1, world))     // replicated
			parts = append(parts, NewPartition(dim, world, world)) // full shard
			for g := 2; g < world; g++ {
				if world%g == 0 { // hybrid: g-way shards, aligned to the world
					parts = append(parts, NewPartition(dim, g, g*(world/g)))
				}
			}
			for _, p := range parts {
				master, optM, optV := stateFill(dim, float32(world))
				shards, err := CutShards(p, master, optM, optV)
				if err != nil {
					t.Fatalf("dim %d world %d %+v: cut: %v", dim, world, p, err)
				}
				// Reverse the order to prove JoinShards accepts any arrival
				// order (ranks report asynchronously).
				for i, j := 0, len(shards)-1; i < j; i, j = i+1, j-1 {
					shards[i], shards[j] = shards[j], shards[i]
				}
				m2, o2, v2, err := JoinShards(shards)
				if err != nil {
					t.Fatalf("dim %d world %d %+v: join: %v", dim, world, p, err)
				}
				for i := range master {
					if math.Float32bits(m2[i]) != math.Float32bits(master[i]) ||
						math.Float32bits(o2[i]) != math.Float32bits(optM[i]) ||
						math.Float32bits(v2[i]) != math.Float32bits(optV[i]) {
						t.Fatalf("dim %d world %d %+v: element %d differs after round trip", dim, world, p, i)
					}
				}
			}
		}
	}
}

// TestCutShardsCopies: shards stay valid after the source buffers are
// clobbered.
func TestCutShardsCopies(t *testing.T) {
	p := NewPartition(8, 2, 2)
	master, optM, optV := stateFill(8, 1)
	shards, err := CutShards(p, master, optM, optV)
	if err != nil {
		t.Fatal(err)
	}
	for i := range master {
		master[i], optM[i], optV[i] = -1, -1, -1
	}
	m2, _, _, err := JoinShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if m2[3] != 1+3*0.25 {
		t.Fatalf("shard data aliased the source: got %g", m2[3])
	}
}

// TestJoinShardsValidation: every malformed shard set fails with a
// diagnostic instead of assembling garbage.
func TestJoinShardsValidation(t *testing.T) {
	p := NewPartition(10, 4, 4)
	fresh := func() []StateShard {
		m, o, v := stateFill(10, 3)
		s, err := CutShards(p, m, o, v)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name   string
		mutate func([]StateShard) []StateShard
		want   string
	}{
		{"empty", func(s []StateShard) []StateShard { return nil }, "empty shard set"},
		{"missing", func(s []StateShard) []StateShard { return s[:3] }, "3 shards of a 4-shard layout"},
		{"duplicate", func(s []StateShard) []StateShard { s[1] = s[0]; return s }, "duplicate shard 0"},
		{"layout mismatch", func(s []StateShard) []StateShard { s[2].Dim = 11; return s }, "declares layout"},
		{"index out of range", func(s []StateShard) []StateShard { s[2].Index = 9; return s }, "shard index 9 of 4"},
		{"range out of bounds", func(s []StateShard) []StateShard { s[3].Hi = 99; return s }, "outside [0, 10)"},
		{"data length", func(s []StateShard) []StateShard { s[1].OptV = s[1].OptV[:1]; return s }, "carries"},
		{"gap", func(s []StateShard) []StateShard {
			// Shift shard 1's claimed range: shards still "cover" ten
			// elements in total but no longer tile [0, Dim).
			s[1].Lo, s[1].Hi = 4, 5
			s[1].Master = s[1].Master[:1]
			s[1].OptM = s[1].OptM[:1]
			s[1].OptV = s[1].OptV[:1]
			s[2].Lo = 4
			s[2].Master = append([]float32{0, 0}, s[2].Master...)
			s[2].OptM = append([]float32{0, 0}, s[2].OptM...)
			s[2].OptV = append([]float32{0, 0}, s[2].OptV...)
			return s
		}, "starts at"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, _, err := JoinShards(c.mutate(fresh()))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestCutShardsValidation: input buffers must match the partition's
// unpadded dimension.
func TestCutShardsValidation(t *testing.T) {
	p := NewPartition(10, 2, 2)
	m, o, v := stateFill(9, 1)
	if _, err := CutShards(p, m, o, v); err == nil {
		t.Fatal("cut accepted state shorter than the partition")
	}
}
