package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// This file provides the flat-tensor view of a parameter set that the
// distributed training path (internal/train.PretrainDistributed over
// internal/dist) shards collectives and optimizer state on: parameters
// and gradients are packed into one contiguous []float32 in parameter
// order, padded so the flat length divides evenly across ranks, and a
// ShardedAdamW instance owns the Adam moments for just one rank's
// contiguous shard — the ZeRO-1 partitioning of optimizer state.

// FlatDim returns the total element count across params — the length
// of the packed flat vector before padding.
func FlatDim(params []*nn.Param) int {
	n := 0
	for _, p := range params {
		n += p.NumEl()
	}
	return n
}

// PadTo rounds n up to the next multiple of world, the length a flat
// buffer must have for uniform ring collectives (internal/dist requires
// collective buffers divisible by the world size).
func PadTo(n, world int) int {
	if world <= 1 {
		return n
	}
	return (n + world - 1) / world * world
}

// PackGrads copies every parameter's gradient into dst in parameter
// order. len(dst) must be at least FlatDim; elements beyond the packed
// region are left untouched (a padded tail stays zero if it started
// zero, which keeps ring reductions over the pad exact).
func PackGrads(dst []float32, params []*nn.Param) {
	packTensors(dst, params, func(p *nn.Param) []float32 { return p.Grad.Data })
}

// UnpackGrads copies the packed flat gradient back into every
// parameter's gradient tensor.
func UnpackGrads(params []*nn.Param, src []float32) {
	unpackTensors(src, params, func(p *nn.Param) []float32 { return p.Grad.Data })
}

// PackValues copies every parameter's value into dst in parameter
// order.
func PackValues(dst []float32, params []*nn.Param) {
	packTensors(dst, params, func(p *nn.Param) []float32 { return p.Value.Data })
}

// UnpackValues copies the packed flat values back into every
// parameter's value tensor.
func UnpackValues(params []*nn.Param, src []float32) {
	unpackTensors(src, params, func(p *nn.Param) []float32 { return p.Value.Data })
}

func packTensors(dst []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		d := field(p)
		if off+len(d) > len(dst) {
			panic(fmt.Sprintf("opt: flat buffer length %d < FlatDim %d", len(dst), FlatDim(params)))
		}
		copy(dst[off:], d)
		off += len(d)
	}
}

func unpackTensors(src []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		d := field(p)
		if off+len(d) > len(src) {
			panic(fmt.Sprintf("opt: flat buffer length %d < FlatDim %d", len(src), FlatDim(params)))
		}
		copy(d, src[off:off+len(d)])
		off += len(d)
	}
}

// ShardedAdamW is AdamW restricted to one contiguous shard [Lo, Hi) of
// the flat parameter space — the ZeRO-1 optimizer: each rank holds the
// first and second Adam moments only for its own shard, updates only
// that slice of the flat weights, and the ranks' updated shards are
// re-assembled with an all-gather. The update arithmetic is identical,
// element for element, to AdamW.Step, including the per-parameter
// NoWeightDecay exclusions (captured at construction as a 0/1 decay
// mask over the shard) and the shared step count for bias correction.
type ShardedAdamW struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	// Lo and Hi bound the shard in flat coordinates. Hi may extend past
	// FlatDim into padding; pad elements carry a zero decay mask and
	// zero gradients, so they stay zero.
	Lo, Hi int

	m, v  []float32
	decay []float32 // 1 where decoupled weight decay applies, else 0
	t     int
}

// NewShardedAdamW constructs the shard optimizer for flat range
// [lo, hi) over params, with the same hyper-parameters as NewAdamW
// (β₁=0.9, β₂=0.95, ε=1e-8).
func NewShardedAdamW(params []*nn.Param, weightDecay float64, lo, hi int) *ShardedAdamW {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("opt: sharded adamw range [%d, %d)", lo, hi))
	}
	a := &ShardedAdamW{
		Beta1: adamwBeta1, Beta2: adamwBeta2, Eps: adamwEps,
		WeightDecay: weightDecay,
		Lo:          lo, Hi: hi,
		m:     make([]float32, hi-lo),
		v:     make([]float32, hi-lo),
		decay: make([]float32, hi-lo),
	}
	off := 0
	for _, p := range params {
		n := p.NumEl()
		if !p.NoWeightDecay {
			// Mark the overlap of [off, off+n) with [lo, hi).
			s, e := max(off, lo), min(off+n, hi)
			for i := s; i < e; i++ {
				a.decay[i-lo] = 1
			}
		}
		off += n
	}
	return a
}

// StepCount returns how many updates have been applied.
func (a *ShardedAdamW) StepCount() int { return a.t }

// SetStep overrides the step counter (resuming from a checkpoint).
func (a *ShardedAdamW) SetStep(t int) { a.t = t }

// Step applies one AdamW update to the shard: w and g are the [Lo, Hi)
// slices of the flat weight and (already averaged) flat gradient.
func (a *ShardedAdamW) Step(lr float64, w, g []float32) {
	if len(w) != a.Hi-a.Lo || len(g) != a.Hi-a.Lo {
		panic(fmt.Sprintf("opt: sharded adamw got %d weights / %d grads for shard of %d",
			len(w), len(g), a.Hi-a.Lo))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	adamwApply(w, g, a.m, a.v,
		float32(a.Beta1), float32(a.Beta2), bc1, bc2, lr, a.Eps,
		float32(lr*a.WeightDecay), a.decay)
}
