package opt

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// This file provides the flat-tensor view of a parameter set that the
// distributed training path (internal/train.PretrainDistributed over
// internal/dist) shards collectives and optimizer state on: parameters
// and gradients are packed into one contiguous []float32 in parameter
// order, padded so the flat length divides evenly across ranks
// (Partition describes the shard layout, including HYBRID_SHARD's
// two-level alignment), and a ShardedAdamW instance owns the Adam
// moments for just one rank's contiguous shard — the ZeRO-1/ZeRO-3
// partitioning of optimizer state.

// FlatDim returns the total element count across params — the length
// of the packed flat vector before padding.
func FlatDim(params []*nn.Param) int {
	n := 0
	for _, p := range params {
		n += p.NumEl()
	}
	return n
}

// PadTo rounds n up to the next multiple of world, the length a flat
// buffer must have for uniform ring collectives (internal/dist requires
// collective buffers divisible by the world size).
func PadTo(n, world int) int {
	if world <= 1 {
		return n
	}
	return (n + world - 1) / world * world
}

// Partition is the contiguous equal-shard layout of a flat parameter
// space: Dim packed elements padded to Padded and split into Shards
// shards of ShardLen elements each. It is the unit-partitioning scheme
// the FULL_SHARD and HYBRID_SHARD execution paths shard parameters,
// gradients and optimizer state on.
type Partition struct {
	// Dim is the packed element count (FlatDim of the parameter set).
	Dim int
	// Shards is how many contiguous shards the padded space splits into
	// (the sharding-group size).
	Shards int
	// Padded is Dim rounded up so that every shard is a whole multiple
	// of the alignment quantum — for HYBRID_SHARD the quantum is the
	// full world (shard group × replica group), so the same flat buffer
	// chunks uniformly at both communicator levels.
	Padded int
	// ShardLen is Padded / Shards.
	ShardLen int
}

// NewPartition lays out dim flat elements across `shards` shards,
// padding to a multiple of `align`. align must be a positive multiple
// of shards (use align == shards when there is no second communicator
// level). Pad elements beyond Dim belong to the final shard and carry
// zero gradients and a zero weight-decay mask, so they stay zero
// through training.
func NewPartition(dim, shards, align int) Partition {
	if dim < 0 || shards < 1 {
		panic(fmt.Sprintf("opt: partition of %d elements into %d shards", dim, shards))
	}
	if align < shards || align%shards != 0 {
		panic(fmt.Sprintf("opt: partition alignment %d is not a multiple of %d shards", align, shards))
	}
	p := Partition{Dim: dim, Shards: shards, Padded: PadTo(dim, align)}
	p.ShardLen = p.Padded / shards
	return p
}

// Range returns the flat bounds [lo, hi) of shard i.
func (p Partition) Range(i int) (lo, hi int) {
	if i < 0 || i >= p.Shards {
		panic(fmt.Sprintf("opt: shard %d of %d", i, p.Shards))
	}
	return i * p.ShardLen, (i + 1) * p.ShardLen
}

// Shard returns shard i of a padded flat buffer as a view.
func (p Partition) Shard(buf []float32, i int) []float32 {
	if len(buf) != p.Padded {
		panic(fmt.Sprintf("opt: buffer length %d, partition wants %d", len(buf), p.Padded))
	}
	lo, hi := p.Range(i)
	return buf[lo:hi]
}

// ScrubOutside zeroes buf outside [lo, hi) — the executed analog of
// FSDP freeing non-owned parameter shards when a unit is resharded
// after forward: the subsequent backward all-gather must genuinely
// restore the dropped values, so a test of the trained trajectory is a
// test of the collective.
func ScrubOutside(buf []float32, lo, hi int) {
	if lo < 0 || hi < lo || hi > len(buf) {
		panic(fmt.Sprintf("opt: scrub range [%d, %d) of %d", lo, hi, len(buf)))
	}
	clear(buf[:lo])
	clear(buf[hi:])
}

// Span is one contiguous flat range [Lo, Hi). Bucket-granular
// gradient synchronization (train.PretrainDistributed with gradient
// buckets) shards each bucket independently, so a rank's ownership is
// a list of spans — chunk i of every bucket — rather than one
// contiguous range; the helpers below and ShardedAdamW operate on such
// lists. A single-span list reproduces the contiguous layout exactly.
type Span struct{ Lo, Hi int }

// Len returns the span's element count.
func (s Span) Len() int { return s.Hi - s.Lo }

// SpansLen sums the element counts of spans.
func SpansLen(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += s.Len()
	}
	return n
}

func checkSpans(spans []Span, limit int) {
	prev := 0
	for _, s := range spans {
		if s.Lo < prev || s.Hi < s.Lo || s.Hi > limit {
			panic(fmt.Sprintf("opt: spans %v not ascending and disjoint within [0, %d)", spans, limit))
		}
		prev = s.Hi
	}
}

// ScrubOutsideSpans zeroes buf everywhere outside the given spans
// (ascending, disjoint) — ScrubOutside generalized to bucket-granular
// ownership.
func ScrubOutsideSpans(buf []float32, spans []Span) {
	checkSpans(spans, len(buf))
	at := 0
	for _, s := range spans {
		clear(buf[at:s.Lo])
		at = s.Hi
	}
	clear(buf[at:])
}

// GatherSpans copies the spans of src, in order, into the contiguous
// dst (len(dst) must equal SpansLen) — how a rank assembles its
// shard-local gradient/weight buffer from the per-bucket chunks it
// owns in the flat space.
func GatherSpans(dst, src []float32, spans []Span) {
	checkSpans(spans, len(src))
	at := 0
	for _, s := range spans {
		at += copy(dst[at:], src[s.Lo:s.Hi])
	}
	if at != len(dst) {
		panic(fmt.Sprintf("opt: gathered %d elements into a buffer of %d", at, len(dst)))
	}
}

// ScatterSpans is GatherSpans' inverse: the contiguous src is copied
// back out into the spans of dst.
func ScatterSpans(dst, src []float32, spans []Span) {
	checkSpans(spans, len(dst))
	at := 0
	for _, s := range spans {
		at += copy(dst[s.Lo:s.Hi], src[at:])
	}
	if at != len(src) {
		panic(fmt.Sprintf("opt: scattered %d elements from a buffer of %d", at, len(src)))
	}
}

// PackGrads copies every parameter's gradient into dst in parameter
// order. len(dst) must be at least FlatDim; elements beyond the packed
// region are left untouched (a padded tail stays zero if it started
// zero, which keeps ring reductions over the pad exact).
func PackGrads(dst []float32, params []*nn.Param) {
	packTensors(dst, params, func(p *nn.Param) []float32 { return p.Grad.Data })
}

// PackGradsSpan packs only the flat range [lo, hi) of the gradient
// into the same range of dst (a full-size flat buffer), leaving the
// rest of dst untouched — how the overlapped executor packs one
// gradient bucket the moment backward finalizes it, without touching
// ranges whose gradients are still accumulating. Ranges extending past
// FlatDim cover pad elements, which are never written (they stay
// zero).
func PackGradsSpan(dst []float32, params []*nn.Param, lo, hi int) {
	if lo < 0 || hi < lo || hi > len(dst) {
		panic(fmt.Sprintf("opt: pack span [%d, %d) of %d", lo, hi, len(dst)))
	}
	off := 0
	for _, p := range params {
		d := p.Grad.Data
		if off >= hi {
			break
		}
		if off+len(d) > lo {
			s := max(off, lo)
			e := min(off+len(d), hi)
			copy(dst[s:e], d[s-off:e-off])
		}
		off += len(d)
	}
}

// UnpackGrads copies the packed flat gradient back into every
// parameter's gradient tensor.
func UnpackGrads(params []*nn.Param, src []float32) {
	unpackTensors(src, params, func(p *nn.Param) []float32 { return p.Grad.Data })
}

// PackValues copies every parameter's value into dst in parameter
// order.
func PackValues(dst []float32, params []*nn.Param) {
	packTensors(dst, params, func(p *nn.Param) []float32 { return p.Value.Data })
}

// UnpackValues copies the packed flat values back into every
// parameter's value tensor.
func UnpackValues(params []*nn.Param, src []float32) {
	unpackTensors(src, params, func(p *nn.Param) []float32 { return p.Value.Data })
}

func packTensors(dst []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		d := field(p)
		if off+len(d) > len(dst) {
			panic(fmt.Sprintf("opt: flat buffer length %d < FlatDim %d", len(dst), FlatDim(params)))
		}
		copy(dst[off:], d)
		off += len(d)
	}
}

func unpackTensors(src []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		d := field(p)
		if off+len(d) > len(src) {
			panic(fmt.Sprintf("opt: flat buffer length %d < FlatDim %d", len(src), FlatDim(params)))
		}
		copy(d, src[off:off+len(d)])
		off += len(d)
	}
}

// ShardedAdamW is AdamW restricted to one contiguous shard [Lo, Hi) of
// the flat parameter space — the ZeRO-1 optimizer: each rank holds the
// first and second Adam moments only for its own shard, updates only
// that slice of the flat weights, and the ranks' updated shards are
// re-assembled with an all-gather. The update arithmetic is identical,
// element for element, to AdamW.Step, including the per-parameter
// NoWeightDecay exclusions (captured at construction as a 0/1 decay
// mask over the shard) and the shared step count for bias correction.
type ShardedAdamW struct {
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	// Lo and Hi bound the shard in flat coordinates (for bucket-
	// granular ownership they bound the union of the spans). Hi may
	// extend past FlatDim into padding; pad elements carry a zero decay
	// mask and zero gradients, so they stay zero.
	Lo, Hi int

	// spans is the owned flat ranges in ascending order; the moment and
	// decay buffers are their concatenation (shard-local coordinates).
	spans []Span
	n     int

	m, v  []float32
	decay []float32 // 1 where decoupled weight decay applies, else 0
	t     int
}

// NewShardedAdamW constructs the shard optimizer for flat range
// [lo, hi) over params, with the same hyper-parameters as NewAdamW
// (β₁=0.9, β₂=0.95, ε=1e-8).
func NewShardedAdamW(params []*nn.Param, weightDecay float64, lo, hi int) *ShardedAdamW {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("opt: sharded adamw range [%d, %d)", lo, hi))
	}
	return NewShardedAdamWSpans(params, weightDecay, []Span{{lo, hi}})
}

// NewShardedAdamWSpans constructs the shard optimizer for the given
// owned flat spans (ascending, disjoint) — the bucket-granular
// ownership of the overlapped executor, where a rank holds chunk i of
// every gradient bucket. Moments and the weight-decay mask live in
// shard-local coordinates: the concatenation of the spans in order,
// exactly the layout GatherSpans produces.
func NewShardedAdamWSpans(params []*nn.Param, weightDecay float64, spans []Span) *ShardedAdamW {
	if len(spans) == 0 {
		panic("opt: sharded adamw with no spans")
	}
	total := SpansLen(spans)
	a := &ShardedAdamW{
		Beta1: adamwBeta1, Beta2: adamwBeta2, Eps: adamwEps,
		WeightDecay: weightDecay,
		Lo:          spans[0].Lo, Hi: spans[len(spans)-1].Hi,
		spans: append([]Span(nil), spans...),
		n:     total,
		m:     make([]float32, total),
		v:     make([]float32, total),
		decay: make([]float32, total),
	}
	checkSpans(a.spans, a.Hi)
	off := 0
	for _, p := range params {
		n := p.NumEl()
		if !p.NoWeightDecay {
			local := 0
			for _, sp := range a.spans {
				// Mark the overlap of [off, off+n) with the span, in
				// shard-local coordinates.
				s, e := max(off, sp.Lo), min(off+n, sp.Hi)
				for i := s; i < e; i++ {
					a.decay[local+i-sp.Lo] = 1
				}
				local += sp.Len()
			}
		}
		off += n
	}
	return a
}

// Spans returns the owned flat ranges in ascending order.
func (a *ShardedAdamW) Spans() []Span { return append([]Span(nil), a.spans...) }

// StepCount returns how many updates have been applied.
func (a *ShardedAdamW) StepCount() int { return a.t }

// SetStep overrides the step counter (resuming from a checkpoint).
func (a *ShardedAdamW) SetStep(t int) { a.t = t }

// CopyMoments writes the shard's Adam moments into dstM and dstV, for
// checkpointing. Destinations shorter than Hi−Lo receive a prefix —
// how callers strip the zero-valued pad tail of the final shard.
func (a *ShardedAdamW) CopyMoments(dstM, dstV []float32) {
	copy(dstM, a.m)
	copy(dstV, a.v)
}

// RestoreMoments loads the shard's Adam moments from srcM and srcV,
// resuming from a checkpoint. Sources shorter than Hi−Lo fill a prefix
// and leave the rest untouched (the pad tail stays zero).
func (a *ShardedAdamW) RestoreMoments(srcM, srcV []float32) {
	copy(a.m, srcM)
	copy(a.v, srcV)
}

// Step applies one AdamW update to the shard: w and g are the owned
// slices of the flat weight and (already averaged) flat gradient in
// shard-local order — the [Lo, Hi) views for a contiguous shard, or
// the GatherSpans concatenations for bucket-granular ownership.
func (a *ShardedAdamW) Step(lr float64, w, g []float32) {
	if len(w) != a.n || len(g) != a.n {
		panic(fmt.Sprintf("opt: sharded adamw got %d weights / %d grads for shard of %d",
			len(w), len(g), a.n))
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	adamwApply(w, g, a.m, a.v,
		float32(a.Beta1), float32(a.Beta2), bc1, bc2, lr, a.Eps,
		float32(lr*a.WeightDecay), a.decay)
}
