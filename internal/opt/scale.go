package opt

import "math"

// Dynamic loss scaling for the bf16 mixed-precision path: gradients are
// multiplied by a scale before they are rounded onto the bf16 wire (so
// small values survive the 8-bit significand), and unscaled before the
// fp32 master-weight update. When any scaled gradient overflows to
// ±Inf/NaN the step is skipped and the scale backs off; after a run of
// good steps the scale grows again — the torch.cuda.amp.GradScaler
// protocol. The defaults keep the scale a power of two, which makes
// scaling exactly reversible in binary floating point: multiplying by
// 2^k only shifts the exponent, so the bf16 rounding decisions are
// identical to the unscaled ones and the fp32/bf16 trajectories stay
// comparable.
const (
	// DefaultLossScale is the initial scale (2¹⁶, AMP's default).
	DefaultLossScale = 65536
	// DefaultScaleGrowth doubles the scale after a clean interval.
	DefaultScaleGrowth = 2
	// DefaultScaleBackoff halves the scale on overflow.
	DefaultScaleBackoff = 0.5
	// DefaultScaleInterval is the good-step run length before growth.
	DefaultScaleInterval = 2000
)

// LossScaler tracks the dynamic scale and its skip/backoff telemetry.
type LossScaler struct {
	// Scale is the current multiplier applied to gradients before the
	// bf16 wire. Always read it freshly each step — Update mutates it.
	Scale float64
	// Growth, Backoff and Interval are the adjustment policy.
	Growth, Backoff float64
	Interval        int

	good     int
	backoffs int
	skipped  int
}

// NewLossScaler constructs a scaler; non-positive arguments take the
// package defaults.
func NewLossScaler(initScale, growth, backoff float64, interval int) *LossScaler {
	if initScale <= 0 {
		initScale = DefaultLossScale
	}
	if growth <= 1 {
		growth = DefaultScaleGrowth
	}
	if backoff <= 0 || backoff >= 1 {
		backoff = DefaultScaleBackoff
	}
	if interval <= 0 {
		interval = DefaultScaleInterval
	}
	return &LossScaler{Scale: initScale, Growth: growth, Backoff: backoff, Interval: interval}
}

// Update folds one step's overflow verdict into the scale and reports
// whether the optimizer step must be skipped. On overflow the scale
// backs off and the good-step run resets; otherwise the run advances
// and the scale grows once per full interval.
func (s *LossScaler) Update(overflow bool) (skip bool) {
	if overflow {
		s.Scale *= s.Backoff
		s.good = 0
		s.backoffs++
		s.skipped++
		return true
	}
	s.good++
	if s.good >= s.Interval {
		s.Scale *= s.Growth
		s.good = 0
	}
	return false
}

// Backoffs returns how many times the scale backed off.
func (s *LossScaler) Backoffs() int { return s.backoffs }

// Skipped returns how many optimizer steps were skipped.
func (s *LossScaler) Skipped() int { return s.skipped }

// GoodSteps returns the current run of overflow-free steps.
func (s *LossScaler) GoodSteps() int { return s.good }

// Restore resets the dynamic state (scale and good-step run) from a
// checkpoint so a resumed run continues the identical scale schedule.
func (s *LossScaler) Restore(scale float64, good int) {
	s.Scale = scale
	s.good = good
}

// HasNonFinite reports whether x contains a NaN or ±Inf — the overflow
// detector the mixed-precision loop runs over its (scaled) reduced
// gradients before committing an optimizer step.
func HasNonFinite(x []float32) bool {
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
