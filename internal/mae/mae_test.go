package mae

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/vit"
)

func tinyCfg() Config {
	enc := vit.Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 2}
	return Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.5}
}

func TestDefaultConfig(t *testing.T) {
	c := Default(vit.ViT3B)
	if c.DecoderWidth != 512 || c.DecoderDepth != 8 || c.DecoderHeads != 16 {
		t.Fatalf("paper decoder defaults wrong: %+v", c)
	}
	if c.MaskRatio != 0.75 {
		t.Fatalf("mask ratio %v", c.MaskRatio)
	}
	// Analog regime must produce a valid, smaller decoder.
	an, err := vit.Analog("ViT-Base", 32, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	ca := Default(an)
	if err := ca.Validate(); err != nil {
		t.Fatalf("analog MAE config invalid: %v", err)
	}
	if ca.DecoderWidth >= an.Width {
		t.Fatalf("analog decoder width %d not lightweight vs encoder %d", ca.DecoderWidth, an.Width)
	}
}

func TestKeepTokens(t *testing.T) {
	c := tinyCfg() // 9 tokens, ratio 0.5 → keep 4 or 5
	keep := c.KeepTokens()
	if keep < 1 || keep >= c.Encoder.Tokens() {
		t.Fatalf("keep=%d of %d", keep, c.Encoder.Tokens())
	}
	// Paper ratio: 75% masked → 25% visible.
	p := Default(vit.ViTBase)
	want := int(math.Round(float64(p.Encoder.Tokens()) * 0.25))
	if p.KeepTokens() != want {
		t.Fatalf("keep=%d want %d", p.KeepTokens(), want)
	}
}

func TestValidateRejectsBadRatio(t *testing.T) {
	c := tinyCfg()
	c.MaskRatio = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("mask ratio 1.5 accepted")
	}
	c.MaskRatio = 0
	if err := c.Validate(); err == nil {
		t.Fatal("mask ratio 0 accepted")
	}
}

func TestNumParamsMatchesLiveModel(t *testing.T) {
	c := tinyCfg()
	m := New(c, rng.New(1))
	live := int64(nn.CountParams(m.Params()))
	if live != c.NumParams() {
		t.Fatalf("live %d != analytic %d", live, c.NumParams())
	}
}

func TestMaskCoverage(t *testing.T) {
	c := tinyCfg()
	m := New(c, rng.New(2))
	const batch = 3
	m.sampleMask(batch)
	tk := c.Encoder.Tokens()
	for b := 0; b < batch; b++ {
		seen := make([]bool, tk)
		for _, i := range m.keepIdx[b] {
			seen[i] = true
		}
		for _, i := range m.maskIdx[b] {
			if seen[i] {
				t.Fatalf("index %d both kept and masked", i)
			}
			seen[i] = true
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("index %d neither kept nor masked", i)
			}
		}
		if len(m.keepIdx[b]) != c.KeepTokens() {
			t.Fatalf("keep count %d want %d", len(m.keepIdx[b]), c.KeepTokens())
		}
		// Sorted order.
		for i := 1; i < len(m.keepIdx[b]); i++ {
			if m.keepIdx[b][i] <= m.keepIdx[b][i-1] {
				t.Fatal("keep indices not sorted")
			}
		}
	}
}

func TestMasksVaryAcrossSteps(t *testing.T) {
	c := tinyCfg()
	m := New(c, rng.New(3))
	m.sampleMask(1)
	first := append([]int(nil), m.keepIdx[0]...)
	varied := false
	for i := 0; i < 10; i++ {
		m.sampleMask(1)
		for j := range first {
			if m.keepIdx[0][j] != first[j] {
				varied = true
			}
		}
	}
	if !varied {
		t.Fatal("mask never changed across 10 draws")
	}
}

func TestLossFiniteAndPositive(t *testing.T) {
	c := tinyCfg()
	m := New(c, rng.New(4))
	r := rng.New(5)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	loss := m.Loss(imgs, batch)
	if loss <= 0 || math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss=%v", loss)
	}
}

func TestStepReducesLossOverTraining(t *testing.T) {
	// A short real training run on a fixed batch must reduce the
	// reconstruction loss — end-to-end sanity of forward+backward+SGD.
	c := tinyCfg()
	m := New(c, rng.New(6))
	r := rng.New(7)
	const batch = 4
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)

	ps := m.Params()
	keep := [][]int{{0, 2, 4, 6}, {1, 3, 5, 7}, {0, 1, 2, 3}, {5, 6, 7, 8}}
	first := m.StepWithMask(imgs, batch, keep)
	last := first
	const lr = 0.05
	for step := 0; step < 60; step++ {
		nn.ZeroGrads(ps)
		last = m.StepWithMask(imgs, batch, keep)
		for _, p := range ps {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= lr * g
			}
		}
	}
	if !(last < first*0.9) {
		t.Fatalf("loss did not decrease: first=%v last=%v", first, last)
	}
}

func TestFullModelGradientCheck(t *testing.T) {
	// Central-difference check of dLoss/dθ through the entire MAE
	// (patchify → embed → mask → encoder → decoder → masked MSE).
	c := tinyCfg()
	m := New(c, rng.New(8))
	r := rng.New(9)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	keep := [][]int{{0, 2, 5, 7}, {1, 3, 4, 8}}

	ps := m.Params()
	nn.ZeroGrads(ps)
	_ = m.StepWithMask(imgs, batch, keep)

	lossAt := func() float64 {
		m.SetMask(keep)
		return m.forward(imgs, batch)
	}

	const h = 1e-2
	probes := []*nn.Param{ps[0], m.MaskToken, ps[len(ps)/2], ps[len(ps)-1]}
	for _, p := range probes {
		for _, idx := range []int{0, p.NumEl() / 2} {
			orig := p.Value.Data[idx]
			p.Value.Data[idx] = orig + h
			lp := lossAt()
			p.Value.Data[idx] = orig - h
			lm := lossAt()
			p.Value.Data[idx] = orig
			num := (lp - lm) / (2 * h)
			got := float64(p.Grad.Data[idx])
			scale := math.Max(0.05, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > 5e-2 {
				t.Errorf("%s[%d]: numeric %v analytic %v", p.Name, idx, num, got)
			}
		}
	}
}

func TestReconstructShape(t *testing.T) {
	c := tinyCfg()
	m := New(c, rng.New(10))
	r := rng.New(11)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	pred, maskIdx := m.Reconstruct(imgs, batch)
	wantLen := batch * c.Encoder.Tokens() * c.Encoder.PatchDim()
	if len(pred) != wantLen {
		t.Fatalf("pred len %d want %d", len(pred), wantLen)
	}
	if len(maskIdx) != batch {
		t.Fatalf("mask batch %d", len(maskIdx))
	}
}

// TestMaskRatioAblation verifies the DESIGN.md ablation hook: a higher
// mask ratio leaves fewer visible tokens.
func TestMaskRatioAblation(t *testing.T) {
	base := tinyCfg()
	low := base
	low.MaskRatio = 0.25
	high := base
	high.MaskRatio = 0.9
	if !(low.KeepTokens() > base.KeepTokens() && base.KeepTokens() > high.KeepTokens()) {
		t.Fatalf("keep tokens not monotone in mask ratio: %d %d %d",
			low.KeepTokens(), base.KeepTokens(), high.KeepTokens())
	}
}

func TestFeaturesIndependentOfMaskState(t *testing.T) {
	// Downstream features must not depend on whatever mask the last
	// training step drew — Features always runs unmasked.
	c := tinyCfg()
	m := New(c, rng.New(20))
	r := rng.New(21)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	f1 := append([]float32(nil), m.Features(imgs, batch)...)
	_ = m.Loss(imgs, batch) // draws and applies a random mask
	f2 := m.Features(imgs, batch)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("Features changed after a masked forward pass")
		}
	}
}

func TestTokenFeaturesShapeAndPooling(t *testing.T) {
	// Mean of TokenFeatures rows must equal Features (same forward).
	c := tinyCfg()
	m := New(c, rng.New(22))
	r := rng.New(23)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	tok := m.TokenFeatures(imgs, batch)
	tkn := c.Encoder.Tokens()
	w := c.Encoder.Width
	if len(tok) != batch*tkn*w {
		t.Fatalf("token features len %d", len(tok))
	}
	pooled := m.Features(imgs, batch)
	for b := 0; b < batch; b++ {
		for j := 0; j < w; j++ {
			var mean float64
			for tt := 0; tt < tkn; tt++ {
				mean += float64(tok[(b*tkn+tt)*w+j])
			}
			mean /= float64(tkn)
			if math.Abs(mean-float64(pooled[b*w+j])) > 1e-5 {
				t.Fatalf("pooled[%d,%d]=%v but token mean=%v", b, j, pooled[b*w+j], mean)
			}
		}
	}
}

func TestFineTuneGradientFlowsToEncoder(t *testing.T) {
	// BackwardFeatures must deposit nonzero gradients in the encoder.
	c := tinyCfg()
	m := New(c, rng.New(24))
	r := rng.New(25)
	const batch = 2
	imgs := make([]float32, batch*c.Encoder.ImageSize*c.Encoder.ImageSize*c.Encoder.Channels)
	r.FillNormal(imgs, 0, 1)
	nn.ZeroGrads(m.Params())
	f := m.FeaturesWithGrad(imgs, batch)
	d := make([]float32, len(f))
	r.FillNormal(d, 0, 1)
	m.BackwardFeatures(d)
	var norm float64
	for _, p := range m.EncoderParams() {
		for _, g := range p.Grad.Data {
			norm += float64(g) * float64(g)
		}
	}
	if norm == 0 {
		t.Fatal("no gradient reached the encoder")
	}
}

// TestDrawMasksTracksStep: DrawMasks must consume the mask stream
// exactly as Step does, and return the same visible sets — the contract
// multi-rank training uses to keep rank mask streams in lock-step with
// the single-rank run.
func TestDrawMasksTracksStep(t *testing.T) {
	cfg := tinyCfg()
	a := New(cfg, rng.New(4))
	b := New(cfg, rng.New(4))
	imgs := make([]float32, 3*cfg.Encoder.ImageSize*cfg.Encoder.ImageSize*cfg.Encoder.Channels)
	rng.New(5).FillUniform(imgs, 0, 1)

	for round := 0; round < 3; round++ {
		a.Step(imgs, 3)
		keep := b.DrawMasks(3)
		for i := range keep {
			if len(keep[i]) != len(a.keepIdx[i]) {
				t.Fatalf("round %d image %d: keep count %d vs %d", round, i, len(keep[i]), len(a.keepIdx[i]))
			}
			for j := range keep[i] {
				if keep[i][j] != a.keepIdx[i][j] {
					t.Fatalf("round %d image %d: masks diverge at %d", round, i, j)
				}
			}
		}
		// b's stream must stay aligned for the next round even though b
		// never runs forward.
	}
}

// TestBackwardSegmentsTileFlatSpace pins the layer-granular backward
// contract the overlapped executor builds on: BackwardSegments covers
// every trainable parameter exactly once, and in completion order the
// segments tile the flat packed parameter space contiguously from the
// top down (segment k sits immediately below segment k−1).
func TestBackwardSegmentsTileFlatSpace(t *testing.T) {
	m := New(tinyCfg(), rng.New(1))
	params := m.Params()
	offs := make(map[*nn.Param]int, len(params))
	dim := 0
	for _, p := range params {
		offs[p] = dim
		dim += p.NumEl()
	}
	cursor := dim
	for k, seg := range m.BackwardSegments() {
		if len(seg) == 0 {
			t.Fatalf("segment %d empty", k)
		}
		lo, total := cursor, 0
		for _, p := range seg {
			off, ok := offs[p]
			if !ok {
				t.Fatalf("segment %d holds a parameter (%s) outside Params, or a duplicate", k, p.Name)
			}
			delete(offs, p)
			if off < lo {
				lo = off
			}
			total += p.NumEl()
		}
		if lo+total != cursor {
			t.Fatalf("segment %d covers [%d, %d+%d), want it to end at the previous frontier %d",
				k, lo, lo, total, cursor)
		}
		cursor = lo
	}
	if cursor != 0 {
		t.Fatalf("segments stop at flat offset %d, want 0", cursor)
	}
	if len(offs) != 0 {
		t.Fatalf("%d parameters not covered by any segment", len(offs))
	}
}

// TestBackwardStepLayersMatchesBackwardStep: the callback-granular
// backward must accumulate bit-identical gradients to the monolithic
// one, emit one event per segment in order, and each event's segment
// gradients must already be final at emission time.
func TestBackwardStepLayersMatchesBackwardStep(t *testing.T) {
	cfg := tinyCfg()
	imgs := make([]float32, 4*cfg.Encoder.ImageSize*cfg.Encoder.ImageSize*cfg.Encoder.Channels)
	rng.New(9).FillNormal(imgs, 0, 1)

	run := func(layered bool) ([]float32, int) {
		m := New(cfg, rng.New(1))
		params := m.Params()
		nn.ZeroGrads(params)
		keep := m.DrawMasks(4)
		m.ForwardWithMask(imgs, 4, keep)
		events := 0
		if layered {
			segs := m.BackwardSegments()
			snapshots := make([][]float32, len(segs))
			m.BackwardStepLayers(func(k int) {
				if k != events {
					t.Fatalf("segment %d emitted out of order (expected %d)", k, events)
				}
				// Snapshot this segment's gradients at emission.
				var snap []float32
				for _, p := range segs[k] {
					snap = append(snap, p.Grad.Data...)
				}
				snapshots[k] = snap
				events++
			})
			// Final check: emission-time gradients were already final.
			for k, seg := range segs {
				var now []float32
				for _, p := range seg {
					now = append(now, p.Grad.Data...)
				}
				for i := range now {
					if math.Float32bits(now[i]) != math.Float32bits(snapshots[k][i]) {
						t.Fatalf("segment %d gradient changed after its completion event", k)
					}
				}
			}
		} else {
			m.BackwardStep()
		}
		var flat []float32
		for _, p := range params {
			flat = append(flat, p.Grad.Data...)
		}
		return flat, events
	}

	ref, _ := run(false)
	got, events := run(true)
	m := New(cfg, rng.New(1))
	if want := len(m.BackwardSegments()); events != want {
		t.Fatalf("emitted %d events, want %d", events, want)
	}
	for i := range ref {
		if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
			t.Fatalf("layered backward gradient differs at flat element %d", i)
		}
	}
}
