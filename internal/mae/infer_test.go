package mae

import (
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// randImgs renders a deterministic pseudo-image batch for the tiny
// config.
func randImgs(cfg Config, batch int, seed uint64) []float32 {
	enc := cfg.Encoder
	r := rng.New(seed)
	imgs := make([]float32, batch*enc.ImageSize*enc.ImageSize*enc.Channels)
	for i := range imgs {
		imgs[i] = float32(r.Float64()*2 - 1)
	}
	return imgs
}

// TestInferMatchesTrainingForward holds the inference-only path to the
// training-path forward bit for bit: pooled features, per-token
// features, and again after a training step has moved the weights.
func TestInferMatchesTrainingForward(t *testing.T) {
	cfg := tinyCfg()
	m := New(cfg, rng.New(7))
	const batch = 3
	imgs := randImgs(cfg, batch, 11)
	ctx := nn.NewInferCtx()

	check := func(stage string) {
		t.Helper()
		wantPool := append([]float32(nil), m.Features(imgs, batch)...)
		wantTok := append([]float32(nil), m.TokenFeatures(imgs, batch)...)
		ctx.Reset()
		gotTok := m.InferTokenFeatures(ctx, imgs, batch)
		for i := range wantTok {
			if gotTok[i] != wantTok[i] {
				t.Fatalf("%s: token feature [%d] %v != %v", stage, i, gotTok[i], wantTok[i])
			}
		}
		ctx.Reset()
		gotPool := m.InferFeatures(ctx, imgs, batch)
		for i := range wantPool {
			if gotPool[i] != wantPool[i] {
				t.Fatalf("%s: pooled feature [%d] %v != %v", stage, i, gotPool[i], wantPool[i])
			}
		}
	}
	check("fresh weights")

	// Move the weights with one real training step, then re-check: the
	// Infer path must read the live values, not a stale copy.
	m.Step(imgs, batch)
	for _, p := range m.Params() {
		for i, g := range p.Grad.Data {
			p.Value.Data[i] -= 0.01 * g
		}
		p.Grad.Fill(0)
	}
	check("after sgd step")
}

// TestInferSharedWeightsConcurrent runs many workers over one shared
// read-only model, each with its own InferCtx, and requires every
// worker to reproduce the serial reference bitwise. Run under -race in
// CI this is the no-per-worker-copies guarantee of the serving stack.
func TestInferSharedWeightsConcurrent(t *testing.T) {
	cfg := tinyCfg()
	m := New(cfg, rng.New(3))
	const batch = 2
	const workers = 4
	const rounds = 3

	ref := nn.NewInferCtx()
	var want [][]float32
	var imgs [][]float32
	for i := 0; i < workers*rounds; i++ {
		im := randImgs(cfg, batch, uint64(100+i))
		imgs = append(imgs, im)
		ref.Reset()
		want = append(want, append([]float32(nil), m.InferFeatures(ref, im, batch)...))
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := nn.NewInferCtx()
			for r := 0; r < rounds; r++ {
				i := w*rounds + r
				ctx.Reset()
				got := m.InferFeatures(ctx, imgs[i], batch)
				for j := range want[i] {
					if got[j] != want[i][j] {
						errs <- "worker diverged from serial reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
