// Package mae implements the Masked Autoencoder pretraining
// architecture the paper uses (He et al., adapted for remote-sensing
// imagery): the ViT encoder runs over the ~25% of patches left visible
// after random masking, a lightweight transformer decoder reconstructs
// every patch from the encoded visible tokens plus a learned mask
// token, and the loss is mean squared error against per-patch
// normalized pixels of the masked patches only.
//
// The decoder follows the paper's (and MAE's) default: 8 blocks of
// width 512 with 16 heads, responsible for <10% of the FLOPs per token
// relative to a large encoder.
package mae

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/vit"
)

// Config couples an encoder variant with the MAE-specific settings.
type Config struct {
	Encoder      vit.Config
	DecoderWidth int
	DecoderDepth int
	DecoderHeads int
	MaskRatio    float64
}

// Default returns the paper's MAE configuration for the given encoder:
// decoder 512×8 with 16 heads and 75% masking. For narrow analog
// encoders the decoder is scaled down proportionally so it stays
// "lightweight" relative to the encoder.
func Default(enc vit.Config) Config {
	dw, dd, dh := 512, 8, 16
	if enc.Width < dw {
		// Analog regime: half the encoder width (min 16), two blocks
		// shallower, heads matching divisibility.
		dw = enc.Width / 2
		if dw < 16 {
			dw = 16
		}
		if dw%4 != 0 {
			dw += 4 - dw%4
		}
		dd = enc.Depth/2 + 1
		dh = 2
		for dh*2 <= 8 && dw%(dh*2) == 0 {
			dh *= 2
		}
	}
	return Config{Encoder: enc, DecoderWidth: dw, DecoderDepth: dd, DecoderHeads: dh, MaskRatio: 0.75}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Encoder.Validate(); err != nil {
		return err
	}
	if c.MaskRatio <= 0 || c.MaskRatio >= 1 {
		return fmt.Errorf("mae: mask ratio %v outside (0,1)", c.MaskRatio)
	}
	if c.DecoderWidth%c.DecoderHeads != 0 {
		return fmt.Errorf("mae: decoder width %d not divisible by heads %d", c.DecoderWidth, c.DecoderHeads)
	}
	if c.DecoderWidth%4 != 0 {
		return fmt.Errorf("mae: decoder width %d not divisible by 4", c.DecoderWidth)
	}
	return nil
}

// KeepTokens returns the number of visible tokens per image.
func (c Config) KeepTokens() int {
	t := c.Encoder.Tokens()
	keep := int(math.Round(float64(t) * (1 - c.MaskRatio)))
	if keep < 1 {
		keep = 1
	}
	if keep >= t {
		keep = t - 1
	}
	return keep
}

// NumParams returns the analytic parameter count of the full MAE model
// (encoder + decoder + mask token + projections), mirrored by the live
// model in tests.
func (c Config) NumParams() int64 {
	enc := c.Encoder.EncoderParams()
	w := int64(c.Encoder.Width)
	dw := int64(c.DecoderWidth)
	dm := 4 * dw
	pd := int64(c.Encoder.PatchDim())
	dec := w*dw + dw // encoder→decoder projection
	blk := vit.Config{Width: int(dw), MLP: int(dm)}.BlockParams()
	dec += int64(c.DecoderDepth) * blk
	dec += 2 * dw     // decoder final norm
	dec += dw*pd + pd // prediction head
	dec += dw         // mask token
	return enc + dec
}

// Model is the trainable MAE.
type Model struct {
	Cfg Config

	Embed     *nn.PatchEmbed
	Encoder   *vit.Encoder
	DecEmbed  *nn.Linear
	MaskToken *nn.Param
	DecBlocks []*nn.Block
	DecNorm   *nn.LayerNorm
	Pred      *nn.Linear
	DecPos    []float32 // fixed sin-cos over the full grid, decoder width

	maskRNG *rng.RNG

	// per-step state
	batch    int
	keepIdx  [][]int // visible patch indices per image (sorted)
	maskIdx  [][]int // masked patch indices per image
	patches  []float32
	target   []float32
	visible  []float32
	decIn    []float32
	pred     []float32
	predMask []float32
	tgtMask  []float32
	dPred    []float32
	dDecIn   []float32
	dVisible []float32
	dEmbed   []float32
}

// New constructs the model with weights drawn from r and an independent
// masking stream split from r.
func New(cfg Config, r *rng.RNG) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := cfg.Encoder.Grid()
	m := &Model{
		Cfg:       cfg,
		Embed:     nn.NewPatchEmbed("mae.embed", cfg.Encoder.PatchDim(), cfg.Encoder.Width, g, g, r),
		Encoder:   vit.NewEncoder(cfg.Encoder, r),
		DecEmbed:  nn.NewLinear("mae.dec_embed", cfg.Encoder.Width, cfg.DecoderWidth, r),
		MaskToken: nn.NewParam("mae.mask_token", cfg.DecoderWidth),
		DecNorm:   nn.NewLayerNorm("mae.dec_norm", cfg.DecoderWidth),
		Pred:      nn.NewLinear("mae.pred", cfg.DecoderWidth, cfg.Encoder.PatchDim(), r),
		DecPos:    nn.SinCos2D(cfg.DecoderWidth, g, g),
		maskRNG:   r.Split(),
	}
	m.MaskToken.NoWeightDecay = true
	m.MaskToken.Value.RandnInit(r, 0.02)
	for i := 0; i < cfg.DecoderDepth; i++ {
		m.DecBlocks = append(m.DecBlocks,
			nn.NewBlock(fmt.Sprintf("mae.dec.block%d", i), cfg.DecoderWidth, 4*cfg.DecoderWidth, cfg.DecoderHeads, r))
	}
	return m
}

// Params returns every trainable parameter.
func (m *Model) Params() []*nn.Param {
	ps := m.Embed.Params()
	ps = append(ps, m.Encoder.Params()...)
	ps = append(ps, m.DecEmbed.Params()...)
	ps = append(ps, m.MaskToken)
	for _, b := range m.DecBlocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.DecNorm.Params()...)
	ps = append(ps, m.Pred.Params()...)
	return ps
}

// EncoderParams returns only the encoder-side parameters (embed +
// trunk), i.e. what survives into downstream adaptation.
func (m *Model) EncoderParams() []*nn.Param {
	return append(m.Embed.Params(), m.Encoder.Params()...)
}

// PackBF16 packs the encoder-side projection weights (embed + trunk —
// everything InferTokenFeatures touches) into bf16 shadows so the
// inference path streams 2-byte weights through the bf16-input GEMM.
// Call it after any weight mutation (loading, rounding) and before
// serving.
func (m *Model) PackBF16() {
	m.Embed.PackBF16()
	m.Encoder.PackBF16()
}

// Release drops the encoder-side scratch buffers (embed + trunk).
// Decoder scratch is left alone: a serving process never grows it, and
// a training process re-grows everything on the next step anyway.
func (m *Model) Release() {
	m.Embed.Release()
	m.Encoder.Release()
}

// sampleMask draws a fresh random mask for each image: keep visible
// indices sorted so token order within the encoder is stable.
func (m *Model) sampleMask(batch int) {
	t := m.Cfg.Encoder.Tokens()
	keep := m.Cfg.KeepTokens()
	if cap(m.keepIdx) < batch {
		m.keepIdx = make([][]int, batch)
		m.maskIdx = make([][]int, batch)
	}
	m.keepIdx = m.keepIdx[:batch]
	m.maskIdx = m.maskIdx[:batch]
	for b := 0; b < batch; b++ {
		perm := m.maskRNG.Perm(t)
		kept := append([]int(nil), perm[:keep]...)
		masked := append([]int(nil), perm[keep:]...)
		insertionSort(kept)
		insertionSort(masked)
		m.keepIdx[b] = kept
		m.maskIdx[b] = masked
	}
}

// DrawMasks advances the model's private mask stream by one batch and
// returns the per-image visible-token index lists (sorted), without
// running the model. It consumes the stream exactly as one Step(·,
// batch) call would, which is what multi-rank data-parallel training
// relies on: every rank holds a seed-identical replica, draws the masks
// for the whole global batch, and keeps only its local slice (via
// StepWithMask) — so the mask sequence, and hence the loss trajectory,
// matches the single-rank run.
func (m *Model) DrawMasks(batch int) [][]int {
	return m.DrawMasksRange(batch, 0, batch)
}

// DrawMasksRange is DrawMasks restricted to images [lo, hi) of the
// batch: the mask stream is still advanced for all batch images (so
// rank streams stay aligned), but only the requested slice is
// materialized and sorted — what each data-parallel rank calls with its
// own slice of the global batch.
func (m *Model) DrawMasksRange(batch, lo, hi int) [][]int {
	if lo < 0 || hi < lo || hi > batch {
		panic(fmt.Sprintf("mae: mask range [%d, %d) outside batch %d", lo, hi, batch))
	}
	t := m.Cfg.Encoder.Tokens()
	keep := m.Cfg.KeepTokens()
	scratch := make([]int, t)
	out := make([][]int, hi-lo)
	for b := 0; b < batch; b++ {
		for i := range scratch {
			scratch[i] = i
		}
		m.maskRNG.Shuffle(scratch) // same draws as sampleMask's Perm
		if b < lo || b >= hi {
			continue
		}
		kept := append([]int(nil), scratch[:keep]...)
		insertionSort(kept)
		out[b-lo] = kept
	}
	return out
}

// SkipMasks advances the mask stream past batches whole batches of the
// given batch size without materializing anything — exactly what
// `batches` training steps would have consumed. A resumed run calls
// this so its mask sequence continues where the interrupted run's
// checkpoint left off.
func (m *Model) SkipMasks(batches, batch int) {
	for i := 0; i < batches; i++ {
		m.DrawMasksRange(batch, 0, 0)
	}
}

// SetMask overrides the random mask with explicit per-image visible
// indices; used by tests for reproducible gradient checks.
func (m *Model) SetMask(keep [][]int) {
	t := m.Cfg.Encoder.Tokens()
	m.keepIdx = keep
	m.maskIdx = m.maskIdx[:0]
	for _, kv := range keep {
		in := make([]bool, t)
		for _, k := range kv {
			in[k] = true
		}
		var masked []int
		for i := 0; i < t; i++ {
			if !in[i] {
				masked = append(masked, i)
			}
		}
		m.maskIdx = append(m.maskIdx, masked)
	}
}

// Loss runs one forward pass over channel-last images (batch × H·W·C)
// with a fresh random mask and returns the reconstruction loss.
// Gradients are not computed; use Step for training.
func (m *Model) Loss(imgs []float32, batch int) float64 {
	m.sampleMask(batch)
	return m.forward(imgs, batch)
}

// Step runs a full forward and backward pass with a fresh random mask,
// accumulating parameter gradients, and returns the loss. Callers zero
// gradients and apply the optimizer.
func (m *Model) Step(imgs []float32, batch int) float64 {
	m.sampleMask(batch)
	loss := m.forward(imgs, batch)
	m.backward(batch)
	return loss
}

// StepWithMask is Step with a caller-supplied mask (tests).
func (m *Model) StepWithMask(imgs []float32, batch int, keep [][]int) float64 {
	loss := m.ForwardWithMask(imgs, batch, keep)
	m.BackwardStep()
	return loss
}

// ForwardWithMask runs only the forward half of StepWithMask — the
// reconstruction loss with a caller-supplied mask, activations cached —
// so a distributed executor can reshard parameters between the halves
// (FULL_SHARD drops non-owned parameter shards after forward and
// re-gathers them for backward). Follow with BackwardStep to accumulate
// gradients.
func (m *Model) ForwardWithMask(imgs []float32, batch int, keep [][]int) float64 {
	m.SetMask(keep)
	return m.forward(imgs, batch)
}

// BackwardStep runs the backward half for the most recent
// ForwardWithMask, accumulating parameter gradients from the cached
// activations and the parameters' current values — which must equal
// the values forward ran with (a resharding executor restores them via
// all-gather first).
func (m *Model) BackwardStep() {
	m.backward(m.batch)
}

// BackwardSegments returns the model's parameters grouped into the
// gradient-completion units of the layer-granular backward pass, in
// completion order: when BackwardStepLayers invokes its callback with
// index k, every parameter of segment k (and of all earlier segments)
// has final accumulated gradients and is never touched again this
// step.
//
// Because parameters pack in forward order (Params) and backward
// finalizes them in exact reverse order, the segments tile the flat
// parameter space contiguously from the top down — segment k covers
// the flat range immediately below segment k−1 — which is what lets a
// distributed executor map completion events onto flat gradient
// buckets and launch each bucket's collective as soon as its range is
// final (the executed form of FSDP's per-unit overlapped
// reduce-scatter).
func (m *Model) BackwardSegments() [][]*nn.Param {
	segs := [][]*nn.Param{m.Pred.Params(), m.DecNorm.Params()}
	for i := len(m.DecBlocks) - 1; i >= 0; i-- {
		segs = append(segs, m.DecBlocks[i].Params())
	}
	// The mask-token gradient finishes accumulating in the decoder
	// input split, just before DecEmbed's backward — one completion
	// unit covering the contiguous [DecEmbed, MaskToken] flat range.
	proj := append([]*nn.Param{}, m.DecEmbed.Params()...)
	segs = append(segs, append(proj, m.MaskToken))
	segs = append(segs, m.Encoder.Norm.Params())
	for i := len(m.Encoder.Blocks) - 1; i >= 0; i-- {
		segs = append(segs, m.Encoder.Blocks[i].Params())
	}
	return append(segs, m.Embed.Params())
}

// BackwardStepLayers is BackwardStep at layer granularity: onSegment
// (if non-nil) runs after each BackwardSegments unit's gradients
// become final, with the unit's index. BackwardStep delegates here
// with a nil callback, so overlapped and synchronous schedules run
// identical arithmetic.
func (m *Model) BackwardStepLayers(onSegment func(k int)) {
	m.backwardLayers(m.batch, onSegment)
}

func (m *Model) forward(imgs []float32, batch int) float64 {
	cfg := m.Cfg
	enc := cfg.Encoder
	t := enc.Tokens()
	pd := enc.PatchDim()
	w := enc.Width
	dw := cfg.DecoderWidth
	keep := len(m.keepIdx[0])
	m.batch = batch

	// 1. Patchify and build normalized-pixel targets.
	m.patches = growF(m.patches, batch*t*pd)
	nn.Patchify(m.patches, imgs, batch, enc.ImageSize, enc.ImageSize, enc.Channels, enc.PatchSize)
	m.target = growF(m.target, batch*t*pd)
	nn.NormalizePatches(m.target, m.patches, batch*t, pd, 1e-6)

	// 2. Embed all patches (with positional encodings), gather visible.
	emb := m.Embed.Forward(m.patches, batch)
	m.visible = growF(m.visible, batch*keep*w)
	for b := 0; b < batch; b++ {
		tensor.GatherRows(m.visible[b*keep*w:], emb[b*t*w:], m.keepIdx[b], w)
	}

	// 3. Encode visible tokens.
	encOut := m.Encoder.Forward(m.visible, batch, keep)

	// 4. Project to decoder width.
	decVis := m.DecEmbed.Forward(encOut, batch*keep)

	// 5. Assemble full decoder sequence: mask tokens everywhere, then
	// scatter encoded visible tokens back to their grid positions, then
	// add decoder positional encodings.
	m.decIn = growF(m.decIn, batch*t*dw)
	mt := m.MaskToken.Value.Data
	for row := 0; row < batch*t; row++ {
		copy(m.decIn[row*dw:(row+1)*dw], mt)
	}
	for b := 0; b < batch; b++ {
		for i, g := range m.keepIdx[b] {
			copy(m.decIn[(b*t+g)*dw:(b*t+g+1)*dw], decVis[(b*keep+i)*dw:(b*keep+i+1)*dw])
		}
	}
	for row := 0; row < batch*t; row++ {
		pos := m.DecPos[(row%t)*dw : (row%t+1)*dw]
		seg := m.decIn[row*dw : (row+1)*dw]
		for j := range seg {
			seg[j] += pos[j]
		}
	}

	// 6. Decode and predict pixels for every token.
	h := m.decIn
	for _, b := range m.DecBlocks {
		h = b.Forward(h, batch, t)
	}
	h = m.DecNorm.Forward(h, batch*t)
	pred := m.Pred.Forward(h, batch*t)
	m.pred = pred

	// 7. Loss on masked positions only.
	nMask := t - keep
	m.predMask = growF(m.predMask, batch*nMask*pd)
	m.tgtMask = growF(m.tgtMask, batch*nMask*pd)
	for b := 0; b < batch; b++ {
		tensor.GatherRows(m.predMask[b*nMask*pd:], pred[b*t*pd:], m.maskIdx[b], pd)
		tensor.GatherRows(m.tgtMask[b*nMask*pd:], m.target[b*t*pd:], m.maskIdx[b], pd)
	}
	m.dPred = growF(m.dPred, batch*nMask*pd)
	return nn.MSE(m.predMask, m.tgtMask, m.dPred)
}

func (m *Model) backward(batch int) {
	m.backwardLayers(batch, nil)
}

// backwardLayers is the single backward implementation, emitting a
// completion event per BackwardSegments unit (events are counted even
// with a nil callback so segment indices stay aligned).
func (m *Model) backwardLayers(batch int, onSegment func(k int)) {
	seg := 0
	emit := func() {
		if onSegment != nil {
			onSegment(seg)
		}
		seg++
	}
	cfg := m.Cfg
	enc := cfg.Encoder
	t := enc.Tokens()
	pd := enc.PatchDim()
	w := enc.Width
	dw := cfg.DecoderWidth
	keep := len(m.keepIdx[0])
	nMask := t - keep

	// Scatter masked-pixel gradient into the full prediction grid.
	full := growF(nil, batch*t*pd)
	for b := 0; b < batch; b++ {
		tensor.ScatterRowsAdd(full[b*t*pd:], m.dPred[b*nMask*pd:], m.maskIdx[b], pd)
	}

	d := m.Pred.Backward(full)
	emit()
	d = m.DecNorm.Backward(d)
	emit()
	for i := len(m.DecBlocks) - 1; i >= 0; i-- {
		d = m.DecBlocks[i].Backward(d)
		emit()
	}

	// d now holds the gradient w.r.t. the decoder input sequence.
	// Split it: visible positions flow to the encoder path, all other
	// positions accumulate into the mask token.
	m.dVisible = growF(m.dVisible, batch*keep*dw)
	visMask := make([]bool, t)
	mtGrad := m.MaskToken.Grad.Data
	for b := 0; b < batch; b++ {
		for i := range visMask {
			visMask[i] = false
		}
		for i, g := range m.keepIdx[b] {
			visMask[g] = true
			copy(m.dVisible[(b*keep+i)*dw:(b*keep+i+1)*dw], d[(b*t+g)*dw:(b*t+g+1)*dw])
		}
		for g := 0; g < t; g++ {
			if !visMask[g] {
				seg := d[(b*t+g)*dw : (b*t+g+1)*dw]
				for j := range mtGrad {
					mtGrad[j] += seg[j]
				}
			}
		}
	}

	dEnc := m.DecEmbed.Backward(m.dVisible)
	emit() // DecEmbed + MaskToken (accumulated in the split above)
	dVis := m.Encoder.BackwardLayers(dEnc, emit)

	// Scatter visible-token gradients back into the full embedding grid
	// (masked positions receive zero) and finish with the patch embed.
	m.dEmbed = growF(m.dEmbed, batch*t*w)
	for i := range m.dEmbed {
		m.dEmbed[i] = 0
	}
	for b := 0; b < batch; b++ {
		tensor.ScatterRowsAdd(m.dEmbed[b*t*w:], dVis[b*keep*w:], m.keepIdx[b], w)
	}
	m.Embed.Backward(m.dEmbed)
	emit()
}

// Features extracts frozen downstream features: all patches are
// embedded (no masking), passed through the encoder, and mean-pooled
// over tokens into one (batch × encoder width) matrix. This is the
// representation linear probing trains on.
func (m *Model) Features(imgs []float32, batch int) []float32 {
	enc := m.Cfg.Encoder
	t := enc.Tokens()
	w := enc.Width
	pd := enc.PatchDim()
	m.patches = growF(m.patches, batch*t*pd)
	nn.Patchify(m.patches, imgs, batch, enc.ImageSize, enc.ImageSize, enc.Channels, enc.PatchSize)
	h := m.Embed.Forward(m.patches, batch)
	h = m.Encoder.Forward(h, batch, t)
	pooled := make([]float32, batch*w)
	inv := float32(1) / float32(t)
	for b := 0; b < batch; b++ {
		out := pooled[b*w : (b+1)*w]
		for tok := 0; tok < t; tok++ {
			row := h[(b*t+tok)*w : (b*t+tok+1)*w]
			for j := range out {
				out[j] += row[j] * inv
			}
		}
	}
	return pooled
}

// TokenFeatures extracts frozen per-token features: all patches are
// embedded (no masking) and passed through the encoder; the returned
// matrix is (batch·Tokens × encoder width), one row per patch token in
// grid order. This is the representation used for dense downstream
// tasks (semantic segmentation via per-patch probing).
func (m *Model) TokenFeatures(imgs []float32, batch int) []float32 {
	enc := m.Cfg.Encoder
	t := enc.Tokens()
	pd := enc.PatchDim()
	m.patches = growF(m.patches, batch*t*pd)
	nn.Patchify(m.patches, imgs, batch, enc.ImageSize, enc.ImageSize, enc.Channels, enc.PatchSize)
	h := m.Embed.Forward(m.patches, batch)
	h = m.Encoder.Forward(h, batch, t)
	out := make([]float32, len(h))
	copy(out, h)
	return out
}

// FeaturesWithGrad runs the unmasked encoder like Features but keeps
// the layer caches alive so BackwardFeatures can propagate a pooled
// feature gradient — the fine-tuning path, where the trunk is updated
// jointly with the task head.
func (m *Model) FeaturesWithGrad(imgs []float32, batch int) []float32 {
	m.batch = batch
	return m.Features(imgs, batch)
}

// BackwardFeatures propagates a (batch × width) mean-pooled feature
// gradient back through the encoder and the patch embedding,
// accumulating parameter gradients. Must follow FeaturesWithGrad.
func (m *Model) BackwardFeatures(dPooled []float32) {
	enc := m.Cfg.Encoder
	t := enc.Tokens()
	w := enc.Width
	batch := m.batch
	dTokens := growF(nil, batch*t*w)
	inv := float32(1) / float32(t)
	for b := 0; b < batch; b++ {
		src := dPooled[b*w : (b+1)*w]
		for tok := 0; tok < t; tok++ {
			dst := dTokens[(b*t+tok)*w : (b*t+tok+1)*w]
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
	}
	d := m.Encoder.Backward(dTokens)
	m.Embed.Backward(d)
}

// Reconstruct runs one masked forward pass and returns a copy of the
// full predicted patch matrix (batch·T × patchDim) together with the
// per-image masked indices. Intended for examples/visualization.
func (m *Model) Reconstruct(imgs []float32, batch int) ([]float32, [][]int) {
	m.sampleMask(batch)
	m.forward(imgs, batch)
	return append([]float32(nil), m.pred...), m.maskIdx
}

func growF(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
