package mae

import "repro/internal/nn"

// InferTokenFeatures is TokenFeatures on the inference-only path: all
// patches embedded (no masking), encoded over the full grid, with
// every activation in the caller's InferCtx instead of the model's
// backward caches. The returned (batch·Tokens × width) matrix is
// ctx-owned and valid until ctx.Reset. Because nothing in the model
// is written, one Model serves concurrent workers that each bring
// their own ctx; the rows are bitwise identical to TokenFeatures.
func (m *Model) InferTokenFeatures(ctx *nn.InferCtx, imgs []float32, batch int) []float32 {
	enc := m.Cfg.Encoder
	t := enc.Tokens()
	pd := enc.PatchDim()
	patches := ctx.Take(batch * t * pd)
	nn.Patchify(patches, imgs, batch, enc.ImageSize, enc.ImageSize, enc.Channels, enc.PatchSize)
	h := m.Embed.Infer(ctx, patches, batch)
	return m.Encoder.Infer(ctx, h, batch, t)
}

// InferFeatures is Features on the inference-only path: the unmasked
// encoder pass followed by the mean-pool over tokens, ctx-owned
// output, bitwise identical to Features.
func (m *Model) InferFeatures(ctx *nn.InferCtx, imgs []float32, batch int) []float32 {
	h := m.InferTokenFeatures(ctx, imgs, batch)
	w := m.Cfg.Encoder.Width
	pooled := ctx.Take(batch * w)
	for i := range pooled {
		pooled[i] = 0
	}
	m.PoolTokens(pooled, h, batch)
	return pooled
}

// PoolTokens mean-pools a (batch·Tokens × width) token matrix into the
// zeroed (batch × width) dst, with the exact accumulation order
// Features uses — token-major, scaled per term — so pooling the
// inference path's tokens reproduces the training path's pooled
// features bit for bit.
func (m *Model) PoolTokens(dst, h []float32, batch int) {
	t := m.Cfg.Encoder.Tokens()
	w := m.Cfg.Encoder.Width
	inv := float32(1) / float32(t)
	for b := 0; b < batch; b++ {
		out := dst[b*w : (b+1)*w]
		for tok := 0; tok < t; tok++ {
			row := h[(b*t+tok)*w : (b*t+tok+1)*w]
			for j := range out {
				out[j] += row[j] * inv
			}
		}
	}
}
