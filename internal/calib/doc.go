// Package calib measures the host this repository actually runs on and
// closes the loop between its two performance worlds: the *asserted*
// Frontier model (hw.Frontier + fsdp.Simulate's calibration constants,
// which reproduce the paper's published figures) and the *executed*
// in-process training runs (train.PretrainDistributed over dist's
// goroutine ranks, whose wall-clock is real).
//
// Five instruments produce a versioned HardwareProfile:
//
//   - a GEMM roofline sweep over the repository's own blocked kernels
//     (the BENCH_gemm shapes plus small cubes), yielding peak GFLOP/s
//     and an achieved-throughput curve over the characteristic GEMM
//     dimension ∛(m·k·n) — the measured MFU curve;
//   - a STREAM-style memory probe (copy/scale/triad over the parallel
//     worker pool), yielding the host bandwidth that prices
//     optimizer-step traffic;
//   - message-size sweeps of the executed ring collectives (all-reduce,
//     reduce-scatter, all-gather; fp32 and bf16 wires), least-squares
//     fitted to the α–β model t = α + β·V;
//   - an executed single-rank train-step probe (MeasureTrainProbe),
//     anchoring the compute term at the level of a real step —
//     attention/backward shapes, elementwise kernels, the optimizer and
//     the input pipeline, which a pure-GEMM sweep cannot see;
//   - a core-contention probe (MeasureContention): the per-stream GEMM
//     slowdown when the validation world's ranks timeshare the host.
//
// HardwareProfile.MachineFor turns a profile into an hw.Machine with
// Calibrated=true, which fsdp.Simulate prices without the
// Frontier-specific fudge constants; comm.ParamsFromAlphaBeta turns a
// fit into the link model dist throttles against. With no profile
// loaded every consumer keeps its asserted defaults, so the published
// Frontier-figure path is untouched.
//
// Validate then runs the executed strategy × precision × overlap
// matrix for a few short steps on a congestion-scaled calibrated link
// and compares each run's measured trace.ExecBreakdown against the
// calibrated simulator's prediction of the same step, asserting
// agreement within the stated tolerance factors — the CI-checkable
// evidence that the simulator's schedule model tracks execution.
package calib
