package calib

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// TestFitRecoversKnownLine: exact synthetic sweeps recover α and β to
// float precision.
func TestFitRecoversKnownLine(t *testing.T) {
	xs := []float64{1e3, 4e3, 16e3, 64e3, 256e3}
	const alpha, beta = 35e-6, 2.5e-9
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = alpha + beta*x
	}
	a, b, err := FitAlphaBeta(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > 1e-12 || math.Abs(b-beta)/beta > 1e-12 {
		t.Fatalf("fit (%v, %v), want (%v, %v)", a, b, alpha, beta)
	}
}

// TestFitPropertyNoisyRecovery: across random ground-truth lines with
// multiplicative noise, the fit recovers β within the noise scale and
// never returns NaN.
func TestFitPropertyNoisyRecovery(t *testing.T) {
	g := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		alpha := 1e-6 + 1e-4*g.Float64()
		beta := math.Pow(10, -10+2*g.Float64()) // 1e-10 .. 1e-8 s/B
		xs := []float64{1e3, 2e3, 8e3, 32e3, 128e3, 512e3, 2048e3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			noise := 1 + 0.03*g.NormFloat64()
			if noise < 0.5 {
				noise = 0.5
			}
			ys[i] = (alpha + beta*x) * noise
		}
		a, b, err := FitAlphaBeta(xs, ys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			t.Fatalf("trial %d: non-finite fit (%v, %v)", trial, a, b)
		}
		// β is dominated by the large-message points, where 3%
		// multiplicative noise perturbs the slope by a few percent.
		if rel := math.Abs(b-beta) / beta; rel > 0.25 {
			t.Fatalf("trial %d: β off by %.0f%% (%v vs %v)", trial, 100*rel, b, beta)
		}
	}
}

// TestFitDegenerateSweepsError: every malformed sweep fails with its
// named error and never yields NaN constants.
func TestFitDegenerateSweepsError(t *testing.T) {
	cases := []struct {
		name    string
		xs, ys  []float64
		wantErr error
	}{
		{"mismatched", []float64{1, 2}, []float64{1}, ErrSweepShape},
		{"too-short", []float64{1e3}, []float64{1e-5}, ErrSweepTooShort},
		{"empty", nil, nil, ErrSweepTooShort},
		{"no-spread", []float64{4e3, 4e3, 4e3}, []float64{1e-5, 2e-5, 3e-5}, ErrSweepDegenerate},
		{"zero-time", []float64{1e3, 2e3}, []float64{1e-5, 0}, ErrSweepNonPositive},
		{"negative-size", []float64{-1e3, 2e3}, []float64{1e-5, 2e-5}, ErrSweepNonPositive},
		{"nan-time", []float64{1e3, 2e3}, []float64{1e-5, math.NaN()}, ErrSweepNonPositive},
		{"shrinking-time", []float64{1e3, 1024e3}, []float64{1e-3, 1e-6}, ErrFitNonPhysical},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b, err := FitAlphaBeta(c.xs, c.ys)
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("error %v, want %v", err, c.wantErr)
			}
			if math.IsNaN(a) || math.IsNaN(b) {
				t.Fatalf("degenerate sweep leaked NaN (%v, %v)", a, b)
			}
		})
	}
}
