package calib

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/dist"
)

// SweepPoint is one measured collective call: payload bytes on the
// wire model's x-axis and the per-call wall time on rank 0.
type SweepPoint struct {
	Bytes float64
	Sec   float64
}

// CollectiveFit is the measured α–β line for one (operation, dtype)
// pair at one world size, with the sweep it was fitted from.
type CollectiveFit struct {
	// Op is "allreduce", "reducescatter" or "allgather".
	Op string
	// DType is "fp32" or "bf16" — bf16 moves half the bytes per element
	// but pays conversion work, so it gets its own line.
	DType string
	Ranks int
	// Phases is the op's ring-pass count (2 for all-reduce, 1 for the
	// others): the factor that converts payload bytes to wire bytes,
	// phases·(n−1)/n·V.
	Phases float64
	// Alpha (s) and Beta (s/byte) fitted over Points: t = α + β·V with
	// V the payload bytes.
	Alpha, Beta float64
	Points      []SweepPoint
}

// WireBytes converts a payload size to the bytes each rank puts on the
// ring for this op.
func (f CollectiveFit) WireBytes(payload float64) float64 {
	n := float64(f.Ranks)
	return f.Phases * (n - 1) / n * payload
}

// Params converts the fit into the α–β link model dist and the
// simulator consume.
func (f CollectiveFit) Params() (comm.Params, error) {
	return comm.ParamsFromAlphaBeta(f.Alpha, f.Beta, f.Ranks, f.Phases)
}

// DefaultCollectiveSizes is the full message-size sweep in float32
// elements (payloads 4 KiB – 4 MiB). Every count divides by any ranks
// value up to 8.
func DefaultCollectiveSizes() []int {
	return []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
}

// QuickCollectiveSizes is the smoke-run sweep.
func QuickCollectiveSizes() []int {
	return []int{1 << 10, 1 << 13, 1 << 16}
}

// MeasureCollectives sweeps the executed ring collectives over an
// unthrottled dist.World of the given size: for each op × dtype ×
// payload size, reps lockstep calls run between barriers and rank 0's
// best window sets the per-call time (minimum over windows — the
// scheduler-noise-free sample). Each (op, dtype) sweep is then fitted
// to t = α + β·V.
func MeasureCollectives(ranks int, sizes []int, reps, windows int) ([]CollectiveFit, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("calib: collective sweep needs ≥ 2 ranks, got %d", ranks)
	}
	if len(sizes) < 2 {
		return nil, fmt.Errorf("calib: collective sweep needs ≥ 2 sizes, got %d", len(sizes))
	}
	if reps < 1 {
		reps = 1
	}
	if windows < 1 {
		windows = 1
	}
	for _, s := range sizes {
		if s < ranks || s%ranks != 0 {
			return nil, fmt.Errorf("calib: sweep size %d not divisible by %d ranks", s, ranks)
		}
	}

	type opSpec struct {
		op     string
		dtype  string
		phases float64
		bytes  float64 // payload bytes per element
		run    func(r *dist.Rank, buf []float32, wire []uint16)
	}
	specs := []opSpec{
		{"allreduce", "fp32", 2, 4, func(r *dist.Rank, buf []float32, _ []uint16) { r.AllReduce(buf) }},
		{"reducescatter", "fp32", 1, 4, func(r *dist.Rank, buf []float32, _ []uint16) { r.ReduceScatter(buf) }},
		{"allgather", "fp32", 1, 4, func(r *dist.Rank, buf []float32, _ []uint16) { r.AllGather(buf, nil) }},
		{"allreduce", "bf16", 2, 2, func(r *dist.Rank, buf []float32, wire []uint16) { r.AllReduceBF16(buf, wire) }},
		{"reducescatter", "bf16", 1, 2, func(r *dist.Rank, buf []float32, wire []uint16) { r.ReduceScatterBF16(buf, wire) }},
		{"allgather", "bf16", 1, 2, func(r *dist.Rank, buf []float32, wire []uint16) { r.AllGatherBF16(buf, nil, wire) }},
	}

	// times[spec][size]: rank 0's best per-call seconds.
	times := make([][]float64, len(specs))
	for i := range times {
		times[i] = make([]float64, len(sizes))
	}
	maxSize := sizes[len(sizes)-1]

	w := dist.New(ranks, dist.Options{Link: dist.DefaultLink(ranks)})
	err := w.Run(func(r *dist.Rank) error {
		buf := make([]float32, maxSize)
		wire := make([]uint16, maxSize)
		for i := range buf {
			buf[i] = float32(r.ID() + i%7)
		}
		for si, sp := range specs {
			for zi, size := range sizes {
				b := buf[:size]
				wr := wire[:size]
				sp.run(r, b, wr) // warm this op's path
				best := 0.0
				for win := 0; win < windows; win++ {
					r.Barrier()
					t0 := time.Now()
					for i := 0; i < reps; i++ {
						sp.run(r, b, wr)
					}
					r.Barrier()
					if r.ID() == 0 {
						//statgate:allow floateq — 0 is the explicit unset sentinel; best only ever holds stored measurements
						if el := time.Since(t0).Seconds() / float64(reps); best == 0 || el < best {
							best = el
						}
					}
				}
				if r.ID() == 0 {
					times[si][zi] = best
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("calib: collective sweep: %w", err)
	}

	fits := make([]CollectiveFit, 0, len(specs))
	for si, sp := range specs {
		f := CollectiveFit{Op: sp.op, DType: sp.dtype, Ranks: ranks, Phases: sp.phases}
		xs := make([]float64, len(sizes))
		ys := make([]float64, len(sizes))
		for zi, size := range sizes {
			xs[zi] = float64(size) * sp.bytes
			ys[zi] = times[si][zi]
			f.Points = append(f.Points, SweepPoint{Bytes: xs[zi], Sec: ys[zi]})
		}
		var ferr error
		f.Alpha, f.Beta, ferr = FitAlphaBeta(xs, ys)
		if ferr != nil {
			return nil, fmt.Errorf("calib: fitting %s/%s: %w", sp.op, sp.dtype, ferr)
		}
		fits = append(fits, f)
	}
	return fits, nil
}

// PooledLink reduces a dtype's per-op fits to the single α–β link the
// executed runs and the calibrated machine share. Pooling normalizes
// every sweep point to *wire* bytes (phases·(n−1)/n·V) — the quantity
// a shared ring actually carries — so one line fits all three ops:
// t = α + wire/B gives Launch = α and Bandwidth = B directly.
func PooledLink(fits []CollectiveFit, dtype string) (comm.Params, error) {
	var xs, ys []float64
	for _, f := range fits {
		if f.DType != dtype {
			continue
		}
		for _, p := range f.Points {
			xs = append(xs, f.WireBytes(p.Bytes))
			ys = append(ys, p.Sec)
		}
	}
	if len(xs) == 0 {
		return comm.Params{}, fmt.Errorf("calib: no %s collective fits in profile", dtype)
	}
	alpha, beta, err := FitAlphaBeta(xs, ys)
	if err != nil {
		return comm.Params{}, fmt.Errorf("calib: pooling %s link: %w", dtype, err)
	}
	if alpha < 0 {
		alpha = 0
	}
	return comm.Params{Bandwidth: 1 / beta, Launch: alpha}, nil
}
