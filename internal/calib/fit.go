package calib

import (
	"errors"
	"fmt"
	"math"
)

// Named fitter failures. Degenerate sweeps must error, never produce
// NaN constants that would poison a profile silently.
var (
	// ErrSweepShape: the size and time series differ in length.
	ErrSweepShape = errors.New("calib: sweep sizes and times differ in length")
	// ErrSweepTooShort: an α–β line needs at least two points.
	ErrSweepTooShort = errors.New("calib: α–β sweep needs at least 2 points")
	// ErrSweepDegenerate: every point has the same message size, so the
	// slope is unidentifiable.
	ErrSweepDegenerate = errors.New("calib: α–β sweep has no message-size spread")
	// ErrSweepNonPositive: a negative size or non-positive time is not a
	// measurement.
	ErrSweepNonPositive = errors.New("calib: α–β sweep has a non-positive time or negative size")
	// ErrFitNonPhysical: the fitted β (inverse bandwidth) came out ≤ 0 —
	// time did not grow with message size, so there is no bandwidth
	// signal to calibrate from.
	ErrFitNonPhysical = errors.New("calib: fitted β non-positive (no bandwidth signal in sweep)")
)

// FitAlphaBeta least-squares fits the α–β collective model
//
//	t = α + β·V
//
// to a sweep of (V bytes, t seconds) measurements: β is the inverse
// bandwidth (s/byte), α the fixed per-call cost. α may come out
// slightly negative on noisy sweeps (comm.ParamsFromAlphaBeta clamps
// it); β ≤ 0 is rejected as ErrFitNonPhysical. Every error path
// returns before any arithmetic that could yield NaN.
func FitAlphaBeta(bytes, secs []float64) (alpha, beta float64, err error) {
	if len(bytes) != len(secs) {
		return 0, 0, fmt.Errorf("%w: %d sizes, %d times", ErrSweepShape, len(bytes), len(secs))
	}
	if len(bytes) < 2 {
		return 0, 0, fmt.Errorf("%w: got %d", ErrSweepTooShort, len(bytes))
	}
	for i := range bytes {
		if bytes[i] < 0 || secs[i] <= 0 || math.IsNaN(bytes[i]) || math.IsNaN(secs[i]) {
			return 0, 0, fmt.Errorf("%w: point %d = (%v B, %v s)", ErrSweepNonPositive, i, bytes[i], secs[i])
		}
	}
	n := float64(len(bytes))
	var mx, my float64
	for i := range bytes {
		mx += bytes[i]
		my += secs[i]
	}
	mx /= n
	my /= n
	var sxx, sxy float64
	for i := range bytes {
		dx := bytes[i] - mx
		sxx += dx * dx
		sxy += dx * (secs[i] - my)
	}
	//statgate:allow floateq — exact degeneracy test: sxx is 0 only when every sweep point coincides
	if sxx == 0 {
		return 0, 0, fmt.Errorf("%w: all %d points at %v bytes", ErrSweepDegenerate, len(bytes), bytes[0])
	}
	beta = sxy / sxx
	alpha = my - beta*mx
	if beta <= 0 {
		return 0, 0, fmt.Errorf("%w: β = %v s/B over [%v, %v] bytes", ErrFitNonPhysical, beta, bytes[0], bytes[len(bytes)-1])
	}
	return alpha, beta, nil
}
