package calib

import (
	"os"
	"testing"
	"time"
)

// TestSimulatorValidation is the full executed-vs-predicted matrix.
// It measures this host and times real training runs, so it is not
// part of the hermetic tier-1 suite: set CALIB_VALIDATE=1 to run it
// (the CI calibration job does; see also BenchmarkCalibValidate, which
// records the same matrix in BENCH_calib.json).
func TestSimulatorValidation(t *testing.T) {
	if os.Getenv("CALIB_VALIDATE") == "" {
		t.Skip("timing suite; set CALIB_VALIDATE=1 to run")
	}
	p, err := Measure(Options{Ranks: 4, Quick: true, Now: time.Now()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(p, ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if n := rep.Failures(); n > 0 {
		t.Fatalf("%d/%d cases outside tolerance", n, len(rep.Cases))
	}
}

// BenchmarkCalibValidate runs quick calibration plus the validation
// matrix once and reports the agreement statistics the perf
// trajectory records (make calibrate → BENCH_calib.json): worst and
// mean measured/predicted step-time ratio, case count, failures, and
// the tolerance bounds the matrix was judged by.
func BenchmarkCalibValidate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := Measure(Options{Ranks: 4, Quick: true, Now: time.Now()})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := Validate(p, ValidateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", rep)
		worst, sum := 1.0, 0.0
		for _, c := range rep.Cases {
			r := c.Step.Ratio()
			if r < 1 && r > 0 {
				r = 1 / r
			}
			if r > worst {
				worst = r
			}
			sum += c.Step.Ratio()
		}
		b.ReportMetric(worst, "worst-step-ratio")
		b.ReportMetric(sum/float64(len(rep.Cases)), "mean-step-ratio")
		b.ReportMetric(float64(len(rep.Cases)), "cases")
		b.ReportMetric(float64(rep.Failures()), "failures")
		b.ReportMetric(rep.TolStep, "tol-step")
		b.ReportMetric(rep.TolExposed, "tol-exposed")
	}
}
