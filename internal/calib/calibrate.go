package calib

import (
	"time"

	"repro/internal/hw"
)

// Options configures a measurement run.
type Options struct {
	// Ranks is the collective-sweep world size (default 4 — the size
	// the validation matrix executes at).
	Ranks int
	// Quick trades sweep coverage for runtime: the smoke mode CI uses.
	Quick bool
	// Now stamps HardwareProfile.CreatedUnix; zero leaves the stamp to
	// the caller (tests pass a fixed stamp for reproducible envelopes).
	Now time.Time
}

// Measure runs the three instruments and assembles the profile:
// GEMM roofline, STREAM bandwidth, collective α–β sweeps.
func Measure(opts Options) (*HardwareProfile, error) {
	if opts.Ranks == 0 {
		opts.Ranks = 4
	}
	shapes := DefaultGEMMShapes()
	gemmWindow := 200 * time.Millisecond
	streamElems := 1 << 24 // 64 MiB per array: past any LLC
	streamReps := 10
	sizes := DefaultCollectiveSizes()
	reps, windows := 50, 5
	probeSteps := 6
	contentionWindow := 500 * time.Millisecond
	if opts.Quick {
		shapes = QuickGEMMShapes()
		gemmWindow = 25 * time.Millisecond
		streamElems = 1 << 22
		streamReps = 3
		sizes = QuickCollectiveSizes()
		reps, windows = 10, 3
		probeSteps = 3
		contentionWindow = 150 * time.Millisecond
	}

	p := &HardwareProfile{
		Host:  hw.Detect(),
		Ranks: opts.Ranks,
	}
	if !opts.Now.IsZero() {
		p.CreatedUnix = opts.Now.Unix()
	}
	p.GEMM = MeasureRoofline(shapes, gemmWindow)
	p.Stream = MeasureStream(streamElems, streamReps)
	fits, err := MeasureCollectives(opts.Ranks, sizes, reps, windows)
	if err != nil {
		return nil, err
	}
	p.Collectives = fits
	p.Probe, err = MeasureTrainProbe(probeSteps)
	if err != nil {
		return nil, err
	}
	p.Contention = MeasureContention(opts.Ranks, contentionWindow)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
