package calib

import (
	"time"

	"repro/internal/parallel"
)

// StreamResult is the STREAM-style memory-bandwidth probe: sustained
// bytes/s for the three classic kernels over the parallel worker pool.
// TriadBW is the figure consumers use (hw.Machine.HBMBandwidth): triad
// (a = b + q·c) is the closest analog of the optimizer's
// two-reads-one-write elementwise traffic.
type StreamResult struct {
	// Elems is the per-array float32 element count the probe ran at.
	Elems int
	// Bytes/s, best over the measurement windows.
	CopyBW, ScaleBW, TriadBW float64
}

// MeasureStream runs copy (c = a), scale (b = q·c) and triad
// (a = b + q·c) over three float32 arrays of elems elements, reps
// windows each, on the parallel worker pool, and keeps each kernel's
// best window. Arrays should comfortably exceed the last-level cache
// (the default in Measure is 2²⁴ elements = 64 MiB per array) so the
// result reflects memory, not cache, bandwidth.
func MeasureStream(elems, reps int) StreamResult {
	if elems < 1 {
		elems = 1
	}
	if reps < 1 {
		reps = 1
	}
	a := make([]float32, elems)
	b := make([]float32, elems)
	c := make([]float32, elems)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	const q = float32(3.1)
	run := func(bytesMoved float64, body func()) float64 {
		body() // warm the pool and fault the pages
		var best float64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			body()
			if bw := bytesMoved / time.Since(t0).Seconds(); bw > best {
				best = bw
			}
		}
		return best
	}
	res := StreamResult{Elems: elems}
	res.CopyBW = run(2*4*float64(elems), func() {
		parallel.Range(elems, func(lo, hi int) { copy(c[lo:hi], a[lo:hi]) })
	})
	res.ScaleBW = run(2*4*float64(elems), func() {
		parallel.Range(elems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b[i] = q * c[i]
			}
		})
	})
	res.TriadBW = run(3*4*float64(elems), func() {
		parallel.Range(elems, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = b[i] + q*c[i]
			}
		})
	})
	return res
}
