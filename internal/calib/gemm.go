package calib

import (
	"math"
	"sort"
	"time"

	"repro/internal/perfmodel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// GEMMPoint is one measured shape on the roofline: the blocked kernel's
// achieved GFLOP/s at m×k×n.
type GEMMPoint struct {
	M, K, N int
	GFLOPS  float64
}

// Dim is the shape's characteristic dimension ∛(m·k·n): the cube edge
// with the same FLOP volume, the x-axis of the MFU curve.
func (p GEMMPoint) Dim() float64 {
	return math.Cbrt(float64(p.M) * float64(p.K) * float64(p.N))
}

// Roofline is the measured GEMM throughput curve, sorted by Dim.
type Roofline struct {
	Points []GEMMPoint
}

// PeakGFLOPS returns the best measured throughput — the roofline's
// flat top, the calibrated stand-in for a datasheet peak.
func (r Roofline) PeakGFLOPS() float64 {
	var peak float64
	for _, p := range r.Points {
		if p.GFLOPS > peak {
			peak = p.GFLOPS
		}
	}
	return peak
}

// GFLOPSAt interpolates achieved throughput at a characteristic
// dimension: piecewise linear in log(dim) between measured points,
// clamped to the end points outside the swept range.
func (r Roofline) GFLOPSAt(dim float64) float64 {
	if len(r.Points) == 0 || dim <= 0 {
		return 0
	}
	pts := r.Points
	if dim <= pts[0].Dim() {
		return pts[0].GFLOPS
	}
	last := pts[len(pts)-1]
	if dim >= last.Dim() {
		return last.GFLOPS
	}
	for i := 1; i < len(pts); i++ {
		lo, hi := pts[i-1], pts[i]
		if dim > hi.Dim() {
			continue
		}
		d0, d1 := math.Log(lo.Dim()), math.Log(hi.Dim())
		t := (math.Log(dim) - d0) / (d1 - d0)
		return lo.GFLOPS + t*(hi.GFLOPS-lo.GFLOPS)
	}
	return last.GFLOPS
}

// MFUAt returns the achieved fraction of the measured peak at a
// characteristic dimension — the calibrated counterpart of
// hw.Machine.MFU.
func (r Roofline) MFUAt(dim float64) float64 {
	peak := r.PeakGFLOPS()
	if peak <= 0 {
		return 0
	}
	return r.GFLOPSAt(dim) / peak
}

// DefaultGEMMShapes is the full calibration sweep: the BENCH_gemm
// acceptance cubes and ViT rectangles, extended downward with the small
// cubes the executed test-scale models live at.
func DefaultGEMMShapes() [][3]int {
	return [][3]int{
		{16, 16, 16}, {32, 32, 32}, {64, 64, 64},
		{128, 128, 128}, {256, 256, 256}, {512, 512, 512},
		{196, 768, 768}, {196, 768, 3072},
	}
}

// QuickGEMMShapes is the reduced sweep for smoke runs: small cubes
// only, still bracketing the validation models' characteristic dims.
func QuickGEMMShapes() [][3]int {
	return [][3]int{{16, 16, 16}, {32, 32, 32}, {64, 64, 64}, {128, 128, 128}, {256, 256, 256}}
}

// MeasureRoofline times tensor.MatMul at each shape: iterations double
// until a timing window of at least minTime accumulates, three windows
// run per shape, and the best window's GFLOP/s is kept (the standard
// roofline discipline — the minimum-noise sample estimates capability).
func MeasureRoofline(shapes [][3]int, minTime time.Duration) Roofline {
	r := Roofline{}
	g := rng.New(1)
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		g.FillUniform(a, -1, 1)
		g.FillUniform(b, -1, 1)
		tensor.MatMul(c, a, b, m, k, n, false) // warm the kernel path
		flops := 2 * float64(m) * float64(k) * float64(n)
		var best float64
		for w := 0; w < 3; w++ {
			iters := 1
			for {
				t0 := time.Now()
				for i := 0; i < iters; i++ {
					tensor.MatMul(c, a, b, m, k, n, false)
				}
				el := time.Since(t0)
				if el >= minTime {
					if gf := flops * float64(iters) / el.Seconds() / 1e9; gf > best {
						best = gf
					}
					break
				}
				iters *= 2
			}
		}
		r.Points = append(r.Points, GEMMPoint{M: m, K: k, N: n, GFLOPS: best})
	}
	sort.Slice(r.Points, func(i, j int) bool { return r.Points[i].Dim() < r.Points[j].Dim() })
	return r
}

// CharacteristicGEMMDim reduces a workload to the single operating
// point its MFU is read at: the FLOP-weighted log-mean of the
// characteristic dimensions of the workload's dominant GEMM families —
// per encoder block, the (B·T)×W×W attention/projection GEMMs
// (8·B·T·W² forward FLOPs) and the (B·T)×W×M MLP GEMMs (4·B·T·W·M),
// and the decoder's counterparts over the full token grid when MAE.
// The attention-score terms are omitted: they are small at the widths
// where this matters and have no fixed GEMM shape.
func CharacteristicGEMMDim(w perfmodel.Workload) float64 {
	type fam struct {
		m, k, n int
		weight  float64
	}
	bt := float64(w.LocalBatch * w.EncoderTokens)
	wd := float64(w.Model.Width)
	ml := float64(w.Model.MLP)
	depth := float64(w.Model.Depth)
	fams := []fam{
		{w.LocalBatch * w.EncoderTokens, w.Model.Width, w.Model.Width, depth * 8 * bt * wd * wd},
		{w.LocalBatch * w.EncoderTokens, w.Model.Width, w.Model.MLP, depth * 4 * bt * wd * ml},
	}
	if w.MAE {
		dw, dd := w.DecoderGeometry()
		dbt := float64(w.LocalBatch * w.Model.Tokens())
		fams = append(fams,
			fam{w.LocalBatch * w.Model.Tokens(), dw, dw, float64(dd) * 8 * dbt * float64(dw) * float64(dw)},
			fam{w.LocalBatch * w.Model.Tokens(), dw, 4 * dw, float64(dd) * 4 * dbt * float64(dw) * float64(4*dw)},
		)
	}
	var logSum, wSum float64
	for _, f := range fams {
		if f.m <= 0 || f.k <= 0 || f.n <= 0 || f.weight <= 0 {
			continue
		}
		dim := math.Cbrt(float64(f.m) * float64(f.k) * float64(f.n))
		logSum += f.weight * math.Log(dim)
		wSum += f.weight
	}
	//statgate:allow floateq — exact: wSum stays 0 only when no family passed the filter
	if wSum == 0 {
		return 0
	}
	return math.Exp(logSum / wSum)
}
