package calib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// profileFormat is the envelope version. Bump it when the profile
// schema changes incompatibly; Load rejects anything else by name.
const profileFormat = "hwprofile/v1"

// HardwareProfile is one host's measured performance character: the
// GEMM roofline, the memory bandwidth, and the collective α–β fits.
// It is the unit calibrate emits, CI archives, and the consumers
// (MachineFor, LinkParams) read in place of the asserted Frontier
// constants.
type HardwareProfile struct {
	// Host records what ran: detected ISA features and core counts.
	Host hw.Features
	// Ranks is the world size the collective sweeps executed at.
	Ranks int
	// CreatedUnix stamps the measurement (seconds since epoch).
	CreatedUnix int64

	GEMM        Roofline
	Stream      StreamResult
	Collectives []CollectiveFit

	// Probe is the executed single-rank train-step measurement that
	// anchors the compute term (see TrainProbe).
	Probe TrainProbe
	// Contention is the measured per-stream GEMM slowdown when Ranks
	// streams share the host (≥ 1; ≈ Ranks on an oversubscribed box).
	Contention float64
}

// Validate reports whether the profile holds a usable measurement.
func (p *HardwareProfile) Validate() error {
	if p.Ranks < 2 {
		return fmt.Errorf("calib: profile world size %d (want ≥ 2)", p.Ranks)
	}
	if len(p.GEMM.Points) < 2 || p.GEMM.PeakGFLOPS() <= 0 {
		return fmt.Errorf("calib: profile roofline has %d points, peak %v GFLOP/s",
			len(p.GEMM.Points), p.GEMM.PeakGFLOPS())
	}
	if p.Stream.TriadBW <= 0 {
		return fmt.Errorf("calib: profile triad bandwidth %v", p.Stream.TriadBW)
	}
	if len(p.Collectives) == 0 {
		return fmt.Errorf("calib: profile has no collective fits")
	}
	if p.Probe.EffFLOPS <= 0 || p.Probe.Dim <= 0 {
		return fmt.Errorf("calib: profile train probe unset (%+v)", p.Probe)
	}
	if p.Contention < 1 {
		return fmt.Errorf("calib: profile contention %v (want ≥ 1)", p.Contention)
	}
	for _, f := range p.Collectives {
		if _, err := f.Params(); err != nil {
			return fmt.Errorf("calib: profile %s/%s fit unusable: %w", f.Op, f.DType, err)
		}
	}
	return nil
}

// LinkParams returns the pooled α–β link for a wire dtype ("fp32" or
// "bf16") — the comm.Params the executed runs throttle against and
// MachineFor builds the simulator's tiers from.
func (p *HardwareProfile) LinkParams(dtype string) (comm.Params, error) {
	return PooledLink(p.Collectives, dtype)
}

// MachineFor builds the calibrated hw.Machine that prices workload w:
// every constant fsdp.Simulate reads is a measurement from this
// profile. commScale ≥ 1 stretches the modeled collective cost
// (Launch × scale, Bandwidth ÷ scale) — the congested-link mode the
// validation suite uses so exposure is measurable; pass 1 for the
// as-measured link.
//
//   - PeakMatrixFLOPS is the roofline peak, and MFU composes three
//     measurements: the roofline curve read at the workload's
//     characteristic GEMM dimension (shape), discounted by the train
//     probe's executed-vs-GEMM ratio at *its* operating point (level:
//     attention/backward shapes, elementwise work, optimizer, input
//     pipeline), divided by the measured Contention factor (in-process
//     ranks share the host's cores; the simulator assumes each rank
//     owns its accelerator);
//   - HBMBandwidth is the STREAM triad figure (prices the optimizer);
//   - every interconnect tier collapses to the pooled measured link:
//     in-process ranks have no topology, so PairBW = IntraNodeBW =
//     InterNodeBWPerNode, hop latency and chunk overhead fold into the
//     measured α (CollectiveLaunch);
//   - Calibrated = true switches the simulator off its
//     Frontier-asserted fudge constants (host overheads, congestion
//     penalty, straggler inflation, SM contention).
func (p *HardwareProfile) MachineFor(w perfmodel.Workload, commScale float64) (hw.Machine, error) {
	if err := p.Validate(); err != nil {
		return hw.Machine{}, err
	}
	if commScale < 1 {
		commScale = 1
	}
	link, err := p.LinkParams("fp32")
	if err != nil {
		return hw.Machine{}, err
	}
	dim := CharacteristicGEMMDim(w)
	if dim <= 0 {
		return hw.Machine{}, fmt.Errorf("calib: workload has no GEMM volume to set an MFU operating point")
	}
	peak := p.GEMM.PeakGFLOPS() * 1e9
	probeGEMM := p.GEMM.GFLOPSAt(p.Probe.Dim) * 1e9
	discount := p.Probe.EffFLOPS / probeGEMM
	if discount > 1 {
		discount = 1
	}
	eff := p.GEMM.GFLOPSAt(dim) * 1e9 * discount / p.Contention
	bw := link.Bandwidth / commScale
	return hw.Machine{
		Name:        "calibrated/" + p.Host.KernelISA(),
		MaxNodes:    1,
		GPUsPerNode: p.Ranks,

		HBMBytesPerGPU: 64e9, // capacity is not measured; keep the fit check inert
		HBMBandwidth:   p.Stream.TriadBW,

		PeakMatrixFLOPS: peak,
		MFU:             eff / peak,

		PairBW:             bw,
		IntraNodeBW:        bw,
		InterNodeBWPerNode: bw,
		CollectiveLaunch:   link.Launch * commScale,

		IdlePower:     1,
		MaxPower:      2,
		CommPowerFrac: 0,

		Calibrated: true,
	}, nil
}

// profileEnvelope is the on-disk wrapper: format version + FNV-64a
// checksum over the raw payload bytes, the same discipline as the
// train-state checkpoint envelope.
type profileEnvelope struct {
	Format   string          `json:"format"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum hashes the payload's *compact* JSON form, so the
// checksum is insensitive to the re-indentation MarshalIndent applies
// to nested raw messages.
func payloadChecksum(b []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		buf.Reset()
		buf.Write(b) // non-JSON payloads hash as-is; Unmarshal rejects them later
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%#016x", h.Sum64())
}

// MarshalProfile encodes the profile into its checksummed envelope.
func MarshalProfile(p *HardwareProfile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("calib: encoding hardware profile: %w", err)
	}
	env := profileEnvelope{Format: profileFormat, Checksum: payloadChecksum(payload), Payload: payload}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("calib: encoding hardware-profile envelope: %w", err)
	}
	return append(out, '\n'), nil
}

// UnmarshalProfile decodes and verifies an envelope: the format
// version and payload checksum are checked before the payload is
// trusted, so truncation, corruption and schema drift each fail with
// a named error instead of a half-read profile.
func UnmarshalProfile(data []byte) (*HardwareProfile, error) {
	var env profileEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("calib: decoding hardware-profile envelope (truncated or not a profile): %w", err)
	}
	if env.Format != profileFormat {
		return nil, fmt.Errorf("calib: unknown hardware-profile format %q (want %q)", env.Format, profileFormat)
	}
	if got := payloadChecksum(env.Payload); got != env.Checksum {
		return nil, fmt.Errorf("calib: hardware-profile checksum mismatch (%s, envelope says %q): corrupted profile",
			got, env.Checksum)
	}
	var p HardwareProfile
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return nil, fmt.Errorf("calib: decoding hardware profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// SaveProfileFile writes the envelope to path.
func SaveProfileFile(path string, p *HardwareProfile) error {
	data, err := MarshalProfile(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadProfileFile reads and verifies an envelope from path.
func LoadProfileFile(path string) (*HardwareProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calib: reading hardware profile: %w", err)
	}
	return UnmarshalProfile(data)
}
