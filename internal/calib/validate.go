package calib

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/comm"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/trace"
	"repro/internal/train"
)

// ValidateOptions configures the simulator-validation suite.
type ValidateOptions struct {
	// Steps is the optimizer steps each case executes (default 6).
	Steps int
	// TargetCommRatio sizes the congestion factor: the modeled
	// collective time is scaled until it is this multiple of the
	// modeled compute time (default 1.5), so exposure is milliseconds,
	// not scheduler noise.
	TargetCommRatio float64
	// Tolerance factors (≥ 1). TolStep bounds the measured/predicted
	// ratio of the per-step wall-clock — the headline metric, held
	// tight. TolCompute and TolExposed bound the compute/exposed-comm
	// *split*, which is judged against an oversubscription band rather
	// than a point (see Validate): on a host where in-process ranks
	// timeshare cores, the wall a rank spends blocked on slower peers
	// is booked as exposed communication, deflating measured compute by
	// up to the profile's Contention factor and inflating exposed by
	// the same stolen share. The band collapses to a plain ratio check
	// when Contention ≈ 1 (one core per rank).
	TolStep, TolCompute, TolExposed float64
	// ExposedFloorFrac: when both measured and predicted exposed
	// communication fall below this fraction of the predicted step, the
	// case passes on "both negligible" instead of by ratio (default
	// 0.15 — fully-hidden overlap cases compare µs-scale residue).
	ExposedFloorFrac float64
}

func (o *ValidateOptions) setDefaults() {
	if o.Steps == 0 {
		o.Steps = 6
	}
	//statgate:allow floateq — options zero-default pattern: 0 means unset and is only ever assigned, never computed
	if o.TargetCommRatio == 0 {
		o.TargetCommRatio = 1.5
	}
	//statgate:allow floateq — options zero-default pattern: 0 means unset and is only ever assigned, never computed
	if o.TolStep == 0 {
		o.TolStep = 1.75
	}
	//statgate:allow floateq — options zero-default pattern: 0 means unset and is only ever assigned, never computed
	if o.TolCompute == 0 {
		o.TolCompute = 2.0
	}
	//statgate:allow floateq — options zero-default pattern: 0 means unset and is only ever assigned, never computed
	if o.TolExposed == 0 {
		o.TolExposed = 2.0
	}
	//statgate:allow floateq — options zero-default pattern: 0 means unset and is only ever assigned, never computed
	if o.ExposedFloorFrac == 0 {
		o.ExposedFloorFrac = 0.15
	}
}

// CaseResult is one cell of the validation matrix: per-step agreements
// between the executed run's trace.ExecBreakdown and the calibrated
// simulator's prediction.
type CaseResult struct {
	Name      string
	Plan      string
	Precision string
	Overlap   bool
	// CongestionScale is the factor the measured link was slowed by for
	// this case (1 + C; prediction and execution share it).
	CongestionScale float64
	Steps           int

	// Per-step agreements: wall-clock, compute share, exposed
	// communication.
	Step, Compute, Exposed trace.Agreement
	OK                     bool
}

// Report is the whole matrix plus the tolerances it was judged by.
type Report struct {
	Ranks int
	Steps int
	// Contention echoes the profile's measured oversubscription factor:
	// it widens the split bands (see Validate).
	Contention float64

	TolStep, TolCompute, TolExposed float64

	Cases []CaseResult
}

// Failures counts cases outside tolerance.
func (r *Report) Failures() int {
	n := 0
	for _, c := range r.Cases {
		if !c.OK {
			n++
		}
	}
	return n
}

// String renders the comparison table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulator validation: %d ranks, %d steps/case, tolerances step ×%.2f compute ×%.2f exposed ×%.2f\n",
		r.Ranks, r.Steps, r.TolStep, r.TolCompute, r.TolExposed)
	for _, c := range r.Cases {
		status := "ok"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  %-28s %-4s step %6.2f/%6.2f ms (×%.2f)  compute %6.2f/%6.2f (×%.2f)  exposed %6.2f/%6.2f (×%.2f)  link÷%.0f\n",
			c.Name, status,
			1e3*c.Step.MeasuredSec, 1e3*c.Step.PredictedSec, c.Step.Ratio(),
			1e3*c.Compute.MeasuredSec, 1e3*c.Compute.PredictedSec, c.Compute.Ratio(),
			1e3*c.Exposed.MeasuredSec, 1e3*c.Exposed.PredictedSec, c.Exposed.Ratio(),
			c.CongestionScale)
	}
	fmt.Fprintf(&b, "  %d/%d cases within tolerance\n", len(r.Cases)-r.Failures(), len(r.Cases))
	return b.String()
}

// validationPlans is the strategy axis of the matrix. bucketBytes is
// shared with the executed config so the simulator's DDP bucket count
// matches execution.
func validationPlans(bucketBytes int) []fsdp.Plan {
	ddp := fsdp.DefaultDDP()
	ddp.DDPBucketBytes = float64(bucketBytes)
	return []fsdp.Plan{
		ddp,
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 2),
	}
}

// Validate executes the {DDP, ZeRO-1, FULL_SHARD, HYBRID_2} ×
// {fp32, bf16} × {sync, overlap} matrix for a few short steps each on
// a congestion-scaled calibrated link and compares the measured
// per-step wall-clock, compute and exposed-communication against the
// calibrated simulator's prediction of the same configuration.
//
// Both sides share every constant: the prediction machine is built
// from this profile (MachineFor) at the same congestion scale the
// executed link is throttled to, so what the comparison actually
// tests is the simulator's *schedule model* — how collective cost
// composes with backward compute, what overlap hides, what stays
// exposed — against ground-truth execution.
func Validate(p *HardwareProfile, opts ValidateOptions) (*Report, error) {
	opts.setDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ranks := p.Ranks
	// Let each rank's compute goroutine and its async comm worker run
	// concurrently, as the overlap benchmarks do.
	defer runtime.GOMAXPROCS(withProcs(2 * ranks))

	const bucketBytes = 256 << 10
	cont := p.Contention
	if cont < 1 {
		cont = 1
	}
	model := ReferenceModel()
	rep := &Report{Ranks: ranks, Steps: opts.Steps, Contention: cont,
		TolStep: opts.TolStep, TolCompute: opts.TolCompute, TolExposed: opts.TolExposed}

	baseLink, err := p.LinkParams("fp32")
	if err != nil {
		return nil, err
	}

	warmed := false
	for _, plan := range validationPlans(bucketBytes) {
		for _, prec := range []train.Precision{train.FP32, train.BF16} {
			for _, overlap := range []bool{false, true} {
				cfg := referenceConfig(ranks, opts.Steps)
				cfg.Plan = plan
				cfg.Precision = prec
				cfg.Overlap = overlap
				cfg.BucketBytes = bucketBytes
				cfg.Throttle = 1
				w, err := train.WorkloadFor(cfg)
				if err != nil {
					return nil, err
				}

				// Size the congestion factor off the *unscaled* calibrated
				// prediction: C stretches the link until modeled comm is
				// TargetCommRatio × modeled compute. The executed collectives
				// then cost their real time (≈ 1× the fit) plus the throttled
				// sleep (C× the fit), so prediction prices the link at 1 + C.
				m1, err := p.MachineFor(w, 1)
				if err != nil {
					return nil, err
				}
				base, err := fsdp.Simulate(w, m1, 1, plan)
				if err != nil {
					return nil, err
				}
				if base.CommTime <= 0 {
					return nil, fmt.Errorf("calib: plan %s models no communication", plan.Name())
				}
				c := opts.TargetCommRatio * base.ComputeTime / base.CommTime
				if c < 1 {
					c = 1
				}
				if c > 1e4 {
					c = 1e4
				}
				scale := 1 + c

				mach, err := p.MachineFor(w, scale)
				if err != nil {
					return nil, err
				}
				pred, err := fsdp.Simulate(w, mach, 1, plan)
				if err != nil {
					return nil, err
				}
				var predStep, predCompute, predExposed float64
				if overlap {
					predStep = pred.StepTime
					predCompute = pred.ComputeTime
					predExposed = pred.ExposedComm
				} else {
					// The synchronous path serializes: backward finishes, then
					// every collective runs inline.
					predStep = pred.ComputeTime + pred.CommTime
					predCompute = pred.ComputeTime
					predExposed = pred.CommTime
				}

				cfg.Link = comm.Params{Bandwidth: baseLink.Bandwidth / c, Launch: baseLink.Launch * c}

				if !warmed {
					// One discarded short run warms the worker pool, heap and
					// kernel paths so the first measured case isn't penalized.
					warm := cfg
					warm.MaxStepsPerEpoch = 1
					if _, err := train.PretrainDistributed(warm, validationDataset(warm.BatchSize, model.Encoder.ImageSize)); err != nil {
						return nil, err
					}
					warmed = true
				}

				res, err := train.PretrainDistributed(cfg, validationDataset(cfg.BatchSize*opts.Steps, model.Encoder.ImageSize))
				if err != nil {
					return nil, err
				}
				name := fmt.Sprintf("%s/%s/overlap=%v", plan.Name(), prec, overlap)
				bd := res.Breakdown(name)
				steps := float64(res.Steps)

				floor := opts.ExposedFloorFrac * predStep
				cr := CaseResult{
					Name: name, Plan: plan.Name(), Precision: fmt.Sprint(prec), Overlap: overlap,
					CongestionScale: scale, Steps: res.Steps,
					Step: trace.Agreement{Label: name + "/step",
						MeasuredSec: bd.StepSec(), PredictedSec: predStep},
					Compute: trace.Agreement{Label: name + "/compute",
						MeasuredSec: bd.ComputeSec / steps, PredictedSec: predCompute},
					Exposed: trace.Agreement{Label: name + "/exposed",
						MeasuredSec: bd.ExposedStepSec(), PredictedSec: predExposed, FloorSec: floor},
				}
				// The split is judged against the oversubscription band:
				// measured compute may sit anywhere between the prediction and
				// the prediction with all peer-wait attribution stolen
				// (÷ Contention); measured exposed may absorb what compute
				// lost, up to (1 − 1/Contention) of predicted compute on top
				// of the predicted exposure. The step wall-clock — the sum —
				// has no such ambiguity and stays a point comparison.
				exposedHi := predExposed + (1-1/cont)*predCompute
				cr.OK = cr.Step.Within(opts.TolStep) &&
					bandWithin(cr.Compute.MeasuredSec, predCompute/cont, predCompute, opts.TolCompute) &&
					((cr.Exposed.MeasuredSec <= floor && predExposed <= floor) ||
						bandWithin(cr.Exposed.MeasuredSec, predExposed, exposedHi, opts.TolExposed))
				rep.Cases = append(rep.Cases, cr)
			}
		}
	}
	return rep, nil
}

// bandWithin reports whether measured falls inside [lo/tol, hi·tol] —
// a point comparison stretched to a band when lo < hi.
func bandWithin(measured, lo, hi, tol float64) bool {
	if lo > hi {
		lo, hi = hi, lo
	}
	return measured >= lo/tol && measured <= hi*tol
}

// validationDataset sizes a synthetic scene dataset for one case.
func validationDataset(count, imageSize int) *geodata.Dataset {
	gen := geodata.NewSceneGen(4, imageSize, 3, 11)
	return &geodata.Dataset{Name: "calib", Gen: gen, TrainCount: count, TestCount: 2}
}

// withProcs raises GOMAXPROCS to want if it is lower, returning the
// previous value for deferred restore.
func withProcs(want int) int {
	if cur := runtime.GOMAXPROCS(0); cur >= want {
		return cur
	}
	return runtime.GOMAXPROCS(want)
}
