package calib

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/vit"
)

// testProfile is a deterministic synthetic profile: unit tests must
// stay hermetic, so nothing here is measured.
func testProfile() *HardwareProfile {
	p := &HardwareProfile{
		Host:        hw.Features{Arch: "amd64", OS: "linux", LogicalCores: 8, MaxProcs: 8},
		Ranks:       4,
		CreatedUnix: 1754600000,
		GEMM: Roofline{Points: []GEMMPoint{
			{16, 16, 16, 2.0}, {64, 64, 64, 8.0}, {128, 128, 128, 14.0},
			{256, 256, 256, 20.0}, {512, 512, 512, 22.0},
		}},
		Stream:     StreamResult{Elems: 1 << 22, CopyBW: 21e9, ScaleBW: 19e9, TriadBW: 17e9},
		Probe:      TrainProbe{Dim: 80, EffFLOPS: 3.5e9, StepSec: 0.03, Steps: 4},
		Contention: 3.5,
	}
	for _, sp := range []struct {
		op     string
		dtype  string
		phases float64
		alpha  float64
		beta   float64
	}{
		{"allreduce", "fp32", 2, 40e-6, 3.2e-9},
		{"reducescatter", "fp32", 1, 25e-6, 1.7e-9},
		{"allgather", "fp32", 1, 24e-6, 1.6e-9},
		{"allreduce", "bf16", 2, 45e-6, 2.1e-9},
	} {
		f := CollectiveFit{Op: sp.op, DType: sp.dtype, Ranks: 4, Phases: sp.phases,
			Alpha: sp.alpha, Beta: sp.beta}
		for _, v := range []float64{4e3, 64e3, 1024e3} {
			f.Points = append(f.Points, SweepPoint{Bytes: v, Sec: sp.alpha + sp.beta*v})
		}
		p.Collectives = append(p.Collectives, f)
	}
	return p
}

func testWorkload() perfmodel.Workload {
	enc := vit.Config{Name: "t", Width: 128, Depth: 4, MLP: 512, Heads: 4,
		PatchSize: 4, ImageSize: 16, Channels: 3}
	return perfmodel.Workload{
		Model: enc, LocalBatch: 4, EncoderTokens: 4, MAE: true,
		DecWidth: 64, DecDepth: 2, Prec: perfmodel.FP32Precision(),
	}
}

// TestProfileRoundTripBitwiseSimulate: save → load must reproduce the
// profile exactly, and a Simulate driven by the loaded profile must be
// bitwise identical to one driven by the original.
func TestProfileRoundTripBitwiseSimulate(t *testing.T) {
	p := testProfile()
	path := filepath.Join(t.TempDir(), "hwprofile.json")
	if err := SaveProfileFile(path, p); err != nil {
		t.Fatal(err)
	}
	q, err := LoadProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip changed the profile:\n%+v\nvs\n%+v", p, q)
	}

	w := testWorkload()
	plan := fsdp.BestPractice(fsdp.FullShard, 0)
	run := func(hp *HardwareProfile) fsdp.Result {
		m, err := hp.MachineFor(w, 3)
		if err != nil {
			t.Fatal(err)
		}
		r, err := fsdp.Simulate(w, m, 1, plan)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(p), run(q)
	for _, pair := range [][2]float64{
		{a.StepTime, b.StepTime}, {a.ComputeTime, b.ComputeTime},
		{a.CommTime, b.CommTime}, {a.ExposedComm, b.ExposedComm},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Fatalf("simulate diverged across round trip: %v vs %v", pair[0], pair[1])
		}
	}
}

// TestProfileRejectsCorruption mirrors the TrainState envelope tests:
// truncation, payload corruption and unknown versions each fail with
// their named message.
func TestProfileRejectsCorruption(t *testing.T) {
	data, err := MarshalProfile(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, mutate func([]byte) []byte, wantSub string) {
		t.Helper()
		_, err := UnmarshalProfile(mutate(append([]byte(nil), data...)))
		if err == nil {
			t.Fatal("corrupted profile accepted")
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not name the failure %q", err, wantSub)
		}
	}
	t.Run("truncated", func(t *testing.T) {
		check(t, func(b []byte) []byte { return b[:len(b)/3] }, "truncated or not a profile")
	})
	t.Run("not-json", func(t *testing.T) {
		check(t, func(b []byte) []byte { return []byte("not a profile") }, "truncated or not a profile")
	})
	t.Run("corrupted-payload", func(t *testing.T) {
		check(t, func(b []byte) []byte {
			// Flip a digit inside the payload, leaving the envelope valid
			// JSON: the checksum must catch it.
			i := strings.Index(string(b), `"Ranks": 4`)
			if i < 0 {
				t.Fatal("payload marker not found")
			}
			b[i+len(`"Ranks": `)] = '3'
			return b
		}, "checksum mismatch")
	})
	t.Run("unknown-version", func(t *testing.T) {
		check(t, func(b []byte) []byte {
			return []byte(strings.Replace(string(b), profileFormat, "hwprofile/v999", 1))
		}, "unknown hardware-profile format")
	})
}

// TestMachineForUsesMeasurements pins the profile → machine mapping:
// effective FLOPs read off the roofline at the workload's
// characteristic dim, HBM bandwidth from triad, the link from the
// pooled fp32 fit, and the calibration flag set.
func TestMachineForUsesMeasurements(t *testing.T) {
	p := testProfile()
	w := testWorkload()
	m, err := p.MachineFor(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Calibrated {
		t.Fatal("calibrated machine not flagged")
	}
	if m.HBMBandwidth != p.Stream.TriadBW {
		t.Fatalf("HBM bandwidth %v, want triad %v", m.HBMBandwidth, p.Stream.TriadBW)
	}
	dim := CharacteristicGEMMDim(w)
	discount := p.Probe.EffFLOPS / (p.GEMM.GFLOPSAt(p.Probe.Dim) * 1e9)
	if discount > 1 {
		discount = 1
	}
	want := p.GEMM.GFLOPSAt(dim) * 1e9 * discount / p.Contention
	if rel := math.Abs(m.EffectiveFLOPS()-want) / want; rel > 1e-9 {
		t.Fatalf("effective FLOPs %v, want discounted roofline at dim %.1f = %v", m.EffectiveFLOPS(), dim, want)
	}
	link, err := p.LinkParams("fp32")
	if err != nil {
		t.Fatal(err)
	}
	if m.IntraNodeBW != link.Bandwidth || m.CollectiveLaunch != link.Launch {
		t.Fatalf("machine link (%v, %v) != pooled fit (%v, %v)",
			m.IntraNodeBW, m.CollectiveLaunch, link.Bandwidth, link.Launch)
	}
	// Congestion scaling stretches cost both ways.
	m2, err := p.MachineFor(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m2.IntraNodeBW >= m.IntraNodeBW || m2.CollectiveLaunch <= m.CollectiveLaunch {
		t.Fatalf("commScale=10 did not slow the link: %+v", m2)
	}
}

// TestCharacteristicDimWeighted: the operating point sits between the
// smallest and largest GEMM family dims and moves with batch size.
func TestCharacteristicDimWeighted(t *testing.T) {
	w := testWorkload()
	d := CharacteristicGEMMDim(w)
	if d <= 16 || d >= 512 {
		t.Fatalf("characteristic dim %v outside the model's GEMM range", d)
	}
	w2 := w
	w2.LocalBatch *= 8
	if d2 := CharacteristicGEMMDim(w2); d2 <= d {
		t.Fatalf("larger batch should raise the operating point: %v vs %v", d2, d)
	}
}
