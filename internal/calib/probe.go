package calib

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fsdp"
	"repro/internal/mae"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/vit"
)

// TrainProbe anchors the performance model's compute term with an
// *executed* measurement: one short single-rank, communication-free
// training run of the reference model, reduced to achieved FLOP/s
// (model FLOPs per optimizer step — the same perfmodel accounting the
// simulator prices — over measured wall per step). The ratio of this
// to the GEMM roofline at the same operating point is the host's
// measured training discount: everything a pure-GEMM sweep cannot see
// (attention/backward shapes, elementwise kernels, the optimizer, the
// input pipeline). MachineFor applies that discount to the roofline
// curve, so calibrated compute predictions inherit the shape of the
// MFU curve and the level of an executed step.
type TrainProbe struct {
	// Dim is the probe workload's characteristic GEMM dimension — the
	// roofline operating point the discount is computed against.
	Dim float64
	// EffFLOPS is modeled step FLOPs / measured step seconds.
	EffFLOPS float64
	// StepSec and Steps record the raw measurement.
	StepSec float64
	Steps   int
}

// ReferenceModel is the executed model both the train probe and the
// validation matrix run: wide enough that GEMM work dominates a step,
// small enough that the 16-case matrix finishes in CI minutes.
func ReferenceModel() mae.Config {
	enc := vit.Config{Name: "calib", Width: 128, Depth: 4, MLP: 512, Heads: 4,
		PatchSize: 4, ImageSize: 16, Channels: 3}
	return mae.Config{Encoder: enc, DecoderWidth: 64, DecoderDepth: 2, DecoderHeads: 2, MaskRatio: 0.75}
}

// referenceConfig builds the shared training recipe at a given world
// size (per-rank batch held at 4 so per-rank work matches across the
// probe and the matrix).
func referenceConfig(ranks, steps int) train.DistConfig {
	return train.DistConfig{
		PretrainConfig: train.PretrainConfig{
			MAE: ReferenceModel(), BatchSize: 4 * ranks, Epochs: 1,
			BaseLR: 0.02, WeightDecay: 0.05, WarmupEpochs: 1,
			ClipNorm: 5, Workers: 2, Seed: 3,
			MaxStepsPerEpoch: steps,
		},
		Ranks: ranks,
		Plan:  fsdp.DefaultDDP(),
	}
}

// MeasureTrainProbe executes the single-rank reference run (a one-rank
// world's collectives are no-ops, so nothing but compute and the input
// pipeline is on the clock) and reduces it to achieved FLOP/s.
func MeasureTrainProbe(steps int) (TrainProbe, error) {
	if steps < 1 {
		steps = 4
	}
	cfg := referenceConfig(1, steps)
	w, err := train.WorkloadFor(cfg)
	if err != nil {
		return TrainProbe{}, err
	}
	warm := cfg
	warm.MaxStepsPerEpoch = 1
	if _, err := train.PretrainDistributed(warm, validationDataset(warm.BatchSize, cfg.MAE.Encoder.ImageSize)); err != nil {
		return TrainProbe{}, fmt.Errorf("calib: train probe warmup: %w", err)
	}
	res, err := train.PretrainDistributed(cfg, validationDataset(cfg.BatchSize*steps, cfg.MAE.Encoder.ImageSize))
	if err != nil {
		return TrainProbe{}, fmt.Errorf("calib: train probe: %w", err)
	}
	step := res.WallSec / float64(res.Steps)
	if step <= 0 {
		return TrainProbe{}, fmt.Errorf("calib: train probe measured non-positive step time %v", step)
	}
	return TrainProbe{
		Dim:      CharacteristicGEMMDim(w),
		EffFLOPS: w.TotalStepFLOPs() / step,
		StepSec:  step,
		Steps:    res.Steps,
	}, nil
}

// MeasureContention measures how much GEMM throughput one stream loses
// when `streams` streams run concurrently — the oversubscription factor
// of in-process ranks sharing the host's cores. On a machine with at
// least `streams` free cores this is ≈ 1; on a single-core host it is
// ≈ streams. MachineFor divides per-rank effective FLOP/s by it, since
// the simulator's compute stream assumes every rank owns its
// accelerator.
func MeasureContention(streams int, window time.Duration) float64 {
	if streams < 1 {
		streams = 1
	}
	single := gemmStreamsGFLOPS(1, window)
	if streams == 1 || single <= 0 {
		return 1
	}
	multi := gemmStreamsGFLOPS(streams, window)
	if multi <= 0 {
		return 1
	}
	c := single / multi
	if c < 1 {
		c = 1
	}
	return c
}

// gemmStreamsGFLOPS runs k concurrent GEMM streams for the window and
// returns the mean per-stream achieved GFLOP/s.
func gemmStreamsGFLOPS(k int, window time.Duration) float64 {
	const dim = 128
	flops := 2 * float64(dim) * float64(dim) * float64(dim)
	iters := make([]int, k)
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			g := rng.New(uint64(1 + s))
			a := make([]float32, dim*dim)
			b := make([]float32, dim*dim)
			c := make([]float32, dim*dim)
			g.FillUniform(a, -1, 1)
			g.FillUniform(b, -1, 1)
			for time.Since(start) < window {
				tensor.MatMul(c, a, b, dim, dim, dim, false)
				iters[s]++
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := 0
	for _, n := range iters {
		total += n
	}
	if elapsed <= 0 || total == 0 {
		return 0
	}
	return flops * float64(total) / elapsed / float64(k) / 1e9
}
