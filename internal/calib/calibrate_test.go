package calib

import (
	"testing"
	"time"
)

// TestRooflineSmoke: a tiny sweep returns positive, sorted,
// interpolatable throughput.
func TestRooflineSmoke(t *testing.T) {
	r := MeasureRoofline([][3]int{{16, 16, 16}, {64, 64, 64}}, time.Millisecond)
	if len(r.Points) != 2 {
		t.Fatalf("want 2 points, got %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.GFLOPS <= 0 {
			t.Fatalf("non-positive throughput at %dx%dx%d", p.M, p.K, p.N)
		}
	}
	if r.Points[0].Dim() >= r.Points[1].Dim() {
		t.Fatal("points not sorted by dim")
	}
	if got := r.GFLOPSAt(1); got != r.Points[0].GFLOPS {
		t.Fatalf("below-range lookup %v, want clamp to %v", got, r.Points[0].GFLOPS)
	}
	if got := r.GFLOPSAt(1e6); got != r.Points[1].GFLOPS {
		t.Fatalf("above-range lookup %v, want clamp to %v", got, r.Points[1].GFLOPS)
	}
	mid := r.GFLOPSAt(32)
	lo, hi := r.Points[0].GFLOPS, r.Points[1].GFLOPS
	if hi < lo {
		lo, hi = hi, lo
	}
	if mid < lo || mid > hi {
		t.Fatalf("interpolation %v outside [%v, %v]", mid, lo, hi)
	}
	if mfu := r.MFUAt(64); mfu <= 0 || mfu > 1 {
		t.Fatalf("MFU %v outside (0, 1]", mfu)
	}
}

// TestStreamSmoke: the probe returns positive bandwidths at a small
// array size.
func TestStreamSmoke(t *testing.T) {
	s := MeasureStream(1<<16, 2)
	if s.CopyBW <= 0 || s.ScaleBW <= 0 || s.TriadBW <= 0 {
		t.Fatalf("non-positive bandwidth: %+v", s)
	}
}

// TestCollectiveSweepSmoke: a 2-rank micro-sweep yields finite fits
// with recorded points for every op × dtype, and the pooled link is
// usable.
func TestCollectiveSweepSmoke(t *testing.T) {
	fits, err := MeasureCollectives(2, []int{1 << 8, 1 << 11, 1 << 14}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 6 {
		t.Fatalf("want 6 fits (3 ops × 2 dtypes), got %d", len(fits))
	}
	for _, f := range fits {
		if len(f.Points) != 3 {
			t.Fatalf("%s/%s: %d points", f.Op, f.DType, len(f.Points))
		}
		if _, err := f.Params(); err != nil {
			t.Fatalf("%s/%s fit unusable: %v", f.Op, f.DType, err)
		}
	}
	for _, dtype := range []string{"fp32", "bf16"} {
		link, err := PooledLink(fits, dtype)
		if err != nil {
			t.Fatal(err)
		}
		if link.Bandwidth <= 0 || link.Launch < 0 {
			t.Fatalf("%s pooled link %+v", dtype, link)
		}
	}
}

// TestCollectiveSweepRejectsBadShapes: misconfigured sweeps error out
// before any World spins up.
func TestCollectiveSweepRejectsBadShapes(t *testing.T) {
	if _, err := MeasureCollectives(1, []int{4, 8}, 1, 1); err == nil {
		t.Fatal("1-rank sweep accepted")
	}
	if _, err := MeasureCollectives(4, []int{6, 12}, 1, 1); err == nil {
		t.Fatal("indivisible size accepted")
	}
	if _, err := MeasureCollectives(4, []int{8}, 1, 1); err == nil {
		t.Fatal("single-size sweep accepted")
	}
}
