// Package rng provides a small, fast, fully deterministic pseudo-random
// number generator used throughout the training stack and the synthetic
// geospatial data generator.
//
// Determinism matters here more than statistical sophistication: every
// experiment in the repo must be exactly reproducible from a seed, on
// any platform, across Go releases. We therefore implement SplitMix64
// (for stream splitting) feeding xoshiro256**, rather than depending on
// math/rand internals.
package rng

import "math"

// RNG is a seedable xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors so that nearby seeds produce
// unrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// Split derives an independent child generator; the parent stream is
// advanced by one step. Used to hand each data-loader worker or layer
// its own stream without cross-correlation.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form
// avoided for determinism simplicity; the trig form is fine here).
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	//statgate:allow floateq — log(0) guard; only an exactly-zero draw is dangerous
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormFloat32 is NormFloat64 truncated to float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// FillUniform fills dst with uniform values in [lo, hi).
func (r *RNG) FillUniform(dst []float32, lo, hi float32) {
	scale := hi - lo
	for i := range dst {
		dst[i] = lo + scale*r.Float32()
	}
}

// FillNormal fills dst with N(mean, std²) values.
func (r *RNG) FillNormal(dst []float32, mean, std float32) {
	for i := range dst {
		dst[i] = mean + std*r.NormFloat32()
	}
}
