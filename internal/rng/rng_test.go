package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	f := func(n uint16) bool {
		nn := int(n%1000) + 1
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(3)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("variance = %f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("len=%d want %d", len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation of %d: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermPropertyQuick(t *testing.T) {
	r := New(13)
	f := func(n uint8) bool {
		nn := int(n % 64)
		p := r.Perm(nn)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == nn*(nn-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between sibling streams", same)
	}
}

func TestFillUniform(t *testing.T) {
	r := New(8)
	buf := make([]float32, 10000)
	r.FillUniform(buf, -2, 3)
	for _, v := range buf {
		if v < -2 || v >= 3 {
			t.Fatalf("value %v outside [-2, 3)", v)
		}
	}
}

func TestFillNormalStd(t *testing.T) {
	r := New(8)
	buf := make([]float32, 50000)
	r.FillNormal(buf, 1, 0.5)
	var sum float64
	for _, v := range buf {
		sum += float64(v)
	}
	mean := sum / float64(len(buf))
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean %f want ~1", mean)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat32(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat32()
	}
}
