package train

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/opt"
)

// TestResumeBitwiseIdentical is the checkpoint acceptance bar: a run
// interrupted at an epoch boundary (StopAfterEpoch), its TrainState
// round-tripped through the gob checkpoint encoding, and resumed in a
// fresh PretrainDistributed must produce the exact final parameters and
// the exact per-step losses of a run that never stopped — for fp32 and
// bf16, replicated and sharded strategies alike. Any drift in the
// master weights, Adam moments, step counter, loss scale, mask stream
// or sampler order fails bit-for-bit.
func TestResumeBitwiseIdentical(t *testing.T) {
	cases := []struct {
		plan fsdp.Plan
		prec Precision
	}{
		{fsdp.DefaultDDP(), FP32},
		{fsdp.BestPractice(fsdp.ShardGradOp, 0), FP32},
		{fsdp.BestPractice(fsdp.FullShard, 0), BF16},
		{fsdp.BestPractice(fsdp.HybridShard, 2), BF16},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.plan.Name(), c.prec), func(t *testing.T) {
			base := tinyDistConfig(4, c.plan)
			base.Epochs = 4
			base.Precision = c.prec

			ref, err := PretrainDistributed(base, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}

			// Leg A: same configuration, interrupted after 2 epochs.
			legA := base
			legA.StopAfterEpoch = 2
			a, err := PretrainDistributed(legA, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}
			if a.State.Epoch != 2 || a.State.Step != ref.State.Step/2 {
				t.Fatalf("leg A state: epoch %d step %d", a.State.Epoch, a.State.Step)
			}
			// Its loss curve must be the first half of the reference's.
			for i := range a.LossCurve.Y {
				if a.LossCurve.Y[i] != ref.LossCurve.Y[i] {
					t.Fatalf("leg A loss differs at step %d", i)
				}
			}

			// The state survives the on-disk encoding bit-for-bit.
			var buf bytes.Buffer
			if err := SaveTrainState(&buf, a.State); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadTrainState(&buf)
			if err != nil {
				t.Fatal(err)
			}

			// Leg B: resume the remaining 2 epochs.
			legB := base
			legB.Resume = restored
			b, err := PretrainDistributed(legB, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}
			if b.Steps != ref.Steps-a.Steps {
				t.Fatalf("leg B ran %d steps, want %d", b.Steps, ref.Steps-a.Steps)
			}
			// No init broadcast on resume.
			if b.Comm.Broadcast.Calls != 0 {
				t.Errorf("resumed run broadcast %d times", b.Comm.Broadcast.Calls)
			}
			// Its loss curve is the second half of the reference's,
			// bitwise, at the right absolute step indices.
			half := len(ref.LossCurve.Y) / 2
			for i := range b.LossCurve.Y {
				if b.LossCurve.Y[i] != ref.LossCurve.Y[half+i] {
					t.Fatalf("resumed loss differs at step %d: %v vs %v",
						half+i, b.LossCurve.Y[i], ref.LossCurve.Y[half+i])
				}
				if b.LossCurve.X[i] != ref.LossCurve.X[half+i] {
					t.Fatalf("resumed curve indexed at %v, want %v", b.LossCurve.X[i], ref.LossCurve.X[half+i])
				}
			}
			// Final parameters identical to the uninterrupted run's.
			dim := opt.FlatDim(ref.Model.Params())
			want := make([]float32, dim)
			got := make([]float32, dim)
			opt.PackValues(want, ref.Model.Params())
			opt.PackValues(got, b.Model.Params())
			for j := range want {
				if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
					t.Fatalf("resumed parameters differ at flat element %d: %v vs %v", j, got[j], want[j])
				}
			}
			// And the final states agree too (master + moments), so a
			// second resume would also continue identically.
			for j := range ref.State.Master {
				if math.Float32bits(b.State.Master[j]) != math.Float32bits(ref.State.Master[j]) ||
					math.Float32bits(b.State.OptM[j]) != math.Float32bits(ref.State.OptM[j]) ||
					math.Float32bits(b.State.OptV[j]) != math.Float32bits(ref.State.OptV[j]) {
					t.Fatalf("resumed train state differs at flat element %d", j)
				}
			}
			if b.State.OptStep != ref.State.OptStep || b.State.Step != ref.State.Step {
				t.Fatalf("state counters: %d/%d vs %d/%d",
					b.State.OptStep, b.State.Step, ref.State.OptStep, ref.State.Step)
			}
			if c.prec == BF16 && b.State.LossScale != ref.State.LossScale {
				t.Fatalf("loss scale diverged: %v vs %v", b.State.LossScale, ref.State.LossScale)
			}
		})
	}
}

// TestTrainStateFileRoundTrip exercises the file-backed checkpoint
// path: save to disk, load, resume — the workflow cmd/pretrain wires
// up.
func TestTrainStateFileRoundTrip(t *testing.T) {
	cfg := tinyDistConfig(2, fsdp.DefaultDDP())
	cfg.Epochs = 2
	cfg.StopAfterEpoch = 1
	res, err := PretrainDistributed(cfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveTrainStateFile(path, res.State); err != nil {
		t.Fatal(err)
	}
	st, err := LoadTrainStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != res.State.Epoch || st.Step != res.State.Step || st.OptStep != res.State.OptStep {
		t.Fatalf("counters drifted through the file: %+v", st)
	}
	for i := range res.State.Master {
		if math.Float32bits(st.Master[i]) != math.Float32bits(res.State.Master[i]) {
			t.Fatalf("master differs at %d after file round trip", i)
		}
	}
	cfg.StopAfterEpoch = 0
	cfg.Resume = st
	if _, err := PretrainDistributed(cfg, tinyDataset(32)); err != nil {
		t.Fatal(err)
	}
}

// TestTrainStateRejectsGarbage: malformed streams and mismatched
// shapes fail fast instead of resuming silently wrong.
func TestTrainStateRejectsGarbage(t *testing.T) {
	if _, err := LoadTrainState(bytes.NewReader([]byte("not a train state"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Moments not matching the master length.
	var buf bytes.Buffer
	bad := &TrainState{Master: make([]float32, 4), OptM: make([]float32, 2), OptV: make([]float32, 4)}
	if err := SaveTrainState(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrainState(&buf); err == nil {
		t.Fatal("mismatched moments accepted")
	}
}

// TestTrainStateCorruptionDetected: the checksummed envelope turns the
// two silent on-disk failure modes — truncation and bit flips — into
// clean LoadTrainState errors. (The atomic temp-file rename already
// prevents truncation by crash; this covers the storage layer.)
func TestTrainStateCorruptionDetected(t *testing.T) {
	cfg := tinyDistConfig(2, fsdp.DefaultDDP())
	cfg.Epochs = 2
	cfg.StopAfterEpoch = 1
	res, err := PretrainDistributed(cfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := SaveTrainStateFile(path, res.State); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at any depth — mid-envelope and mid-payload.
	for _, keep := range []int{1, len(blob) / 4, len(blob) - 1} {
		if _, err := LoadTrainState(bytes.NewReader(blob[:keep])); err == nil {
			t.Errorf("state truncated to %d/%d bytes accepted", keep, len(blob))
		}
	}

	// A single flipped bit deep in the tensor payload. Without the
	// checksum gob would decode this into silently wrong weights; the
	// envelope must reject it, naming the corruption.
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x10
	_, err = LoadTrainState(bytes.NewReader(flipped))
	if err == nil {
		t.Fatal("bit-flipped state accepted")
	}
	if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "checksum") &&
		!strings.Contains(err.Error(), "decoding") {
		t.Errorf("corruption error does not explain itself: %v", err)
	}

	// The pristine file still loads.
	if _, err := LoadTrainState(bytes.NewReader(blob)); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}

// TestResumeValidation: resume states that cannot continue this
// configuration are rejected before any rank spawns (or at rank init
// for shape mismatches).
func TestResumeValidation(t *testing.T) {
	cfg := tinyDistConfig(2, fsdp.DefaultDDP())
	cfg.Epochs = 2
	cfg.StopAfterEpoch = 1
	res, err := PretrainDistributed(cfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	st := res.State

	// Epoch beyond the schedule.
	c := cfg
	c.StopAfterEpoch = 0
	c.Epochs = 1
	c.Resume = st
	if _, err := PretrainDistributed(c, tinyDataset(32)); err == nil {
		t.Error("resume past the final epoch accepted")
	}
	// Step count inconsistent with the schedule.
	c = cfg
	c.StopAfterEpoch = 0
	broken := *st
	broken.Step++
	c.Resume = &broken
	if _, err := PretrainDistributed(c, tinyDataset(32)); err == nil {
		t.Error("resume with mismatched step count accepted")
	}
	// Wrong model size.
	c = cfg
	c.StopAfterEpoch = 0
	short := *st
	short.Master = short.Master[:10]
	short.OptM = short.OptM[:10]
	short.OptV = short.OptV[:10]
	c.Resume = &short
	if _, err := PretrainDistributed(c, tinyDataset(32)); err == nil {
		t.Error("resume with wrong parameter count accepted")
	}
	// Precision mismatch: an FP32 state carries no loss-scale schedule,
	// so resuming it under BF16 must fail fast rather than train with a
	// zero scale.
	c = cfg
	c.StopAfterEpoch = 0
	c.Precision = BF16
	c.Resume = st // captured under FP32
	if _, err := PretrainDistributed(c, tinyDataset(32)); err == nil {
		t.Error("FP32-captured state accepted under BF16")
	}
	// Accumulation-window mismatch: Step counts optimizer steps, so the
	// mask fast-forward consumes Step×AccumSteps micro-batches — a
	// different window must fail fast, not resume on a misaligned mask
	// stream. (MaxStepsPerEpoch pins stepsPerEpoch so the Step check
	// alone cannot catch it.)
	c = cfg
	c.StopAfterEpoch = 0
	c.MaxStepsPerEpoch = 1
	c.AccumSteps = 2
	mismatch := *st
	mismatch.Step = 1 // consistent with 1 step/epoch × 1 epoch
	c.Resume = &mismatch
	if _, err := PretrainDistributed(c, tinyDataset(32)); err == nil {
		t.Error("state captured without accumulation accepted under AccumSteps=2")
	}
	// And a pre-accumulation state (AccumSteps zero value) resumes an
	// unaccumulated run.
	if st.AccumSteps != 1 {
		t.Errorf("captured state AccumSteps = %d, want 1", st.AccumSteps)
	}
	// Topology stamps: a state sharded for another world or strategy
	// must be rejected with a pointer at Reshard, naming both sides.
	if st.World != 2 || st.Strategy != "DDP" {
		t.Fatalf("captured state stamped %d/%q, want 2/DDP", st.World, st.Strategy)
	}
	c = cfg
	c.StopAfterEpoch = 0
	c.Ranks = 4
	c.BatchSize = 8
	c.Resume = st
	_, err = PretrainDistributed(c, tinyDataset(32))
	if err == nil {
		t.Error("state captured at world 2 accepted at world 4")
	} else if !strings.Contains(err.Error(), "world 2") || !strings.Contains(err.Error(), "4 ranks") ||
		!strings.Contains(err.Error(), "Reshard") {
		t.Errorf("world-mismatch error does not name both sides and the fix: %v", err)
	}
	c = cfg
	c.StopAfterEpoch = 0
	c.Plan = fsdp.BestPractice(fsdp.FullShard, 0)
	c.Resume = st
	_, err = PretrainDistributed(c, tinyDataset(32))
	if err == nil {
		t.Error("DDP-captured state accepted under FULL_SHARD")
	} else if !strings.Contains(err.Error(), "DDP") || !strings.Contains(err.Error(), "FULL_SHARD") ||
		!strings.Contains(err.Error(), "Reshard") {
		t.Errorf("strategy-mismatch error does not name both sides and the fix: %v", err)
	}
	// Zero stamps — states from before elasticity — act as wildcards.
	wild := *st
	wild.World, wild.Strategy = 0, ""
	c = cfg
	c.StopAfterEpoch = 0
	c.Resume = &wild
	if _, err := PretrainDistributed(c, tinyDataset(32)); err != nil {
		t.Errorf("wildcard-stamped state rejected: %v", err)
	}
	// After Reshard the same state resumes at the new topology.
	resharded, err := Reshard(st, 4, fsdp.DefaultDDP())
	if err != nil {
		t.Fatal(err)
	}
	c = cfg
	c.StopAfterEpoch = 0
	c.Ranks = 4
	c.BatchSize = 8
	c.Resume = resharded
	if _, err := PretrainDistributed(c, tinyDataset(32)); err != nil {
		t.Errorf("re-sharded state rejected at its new topology: %v", err)
	}
}

// TestResumeWithWorkersBitwise is the PR 4 fast-forward audit's
// regression: resuming mid-run with 4 loader workers per rank (the
// paper's configuration) — here additionally under overlap and a
// 2-micro-step accumulation window — must be bitwise identical to the
// uninterrupted run. The hazards this pins down: dataload.SkipEpochs
// must not disturb the batch pool (a double-put panics the run via the
// Recycle guard), and no recycled batch may be delivered while a
// worker still holds it (run under -race in CI, which would flag the
// overlapping writes).
func TestResumeWithWorkersBitwise(t *testing.T) {
	base := tinyDistConfig(4, fsdp.BestPractice(fsdp.HybridShard, 2))
	base.Epochs = 4
	base.Workers = 4
	base.Overlap = true
	base.AccumSteps = 2

	ref, err := PretrainDistributed(base, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	legA := base
	legA.StopAfterEpoch = 2
	a, err := PretrainDistributed(legA, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrainState(&buf, a.State); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadTrainState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	legB := base
	legB.Resume = restored
	b, err := PretrainDistributed(legB, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	half := len(ref.LossCurve.Y) / 2
	for i := range b.LossCurve.Y {
		if math.Float64bits(b.LossCurve.Y[i]) != math.Float64bits(ref.LossCurve.Y[half+i]) {
			t.Fatalf("resumed loss differs at step %d: %v vs %v",
				half+i, b.LossCurve.Y[i], ref.LossCurve.Y[half+i])
		}
	}
	dim := opt.FlatDim(ref.Model.Params())
	want := make([]float32, dim)
	got := make([]float32, dim)
	opt.PackValues(want, ref.Model.Params())
	opt.PackValues(got, b.Model.Params())
	for j := range want {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("resumed parameters differ at flat element %d", j)
		}
	}
}
