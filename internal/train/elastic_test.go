package train

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/mae"
	"repro/internal/opt"
)

// TestElasticShrinkBitwise is the fault-tolerance acceptance bar: a
// 4-rank run killed by an injected rank death mid-epoch 3, re-sharded
// to 2 ranks from its epoch-2 checkpoint and resumed by the elastic
// driver must train the remaining epochs bitwise-identically to an
// uninterrupted 2-rank run resumed from the same (re-sharded)
// checkpoint — for every strategy × precision. The global batch,
// schedule and mask streams are world-invariant, so the only thing that
// may differ between the two runs is ring reassociation — and the
// paired comparison holds even that to zero, because both runs execute
// the same 2-rank collectives.
func TestElasticShrinkBitwise(t *testing.T) {
	cases := []struct {
		plan fsdp.Plan
		prec Precision
	}{
		{fsdp.DefaultDDP(), FP32},
		{fsdp.BestPractice(fsdp.FullShard, 0), BF16},
		{fsdp.BestPractice(fsdp.HybridShard, 2), BF16},
		{fsdp.DefaultDDP(), BF16},
		{fsdp.BestPractice(fsdp.ShardGradOp, 0), FP32},
		{fsdp.BestPractice(fsdp.ShardGradOp, 0), BF16},
		{fsdp.BestPractice(fsdp.FullShard, 0), FP32},
		{fsdp.BestPractice(fsdp.HybridShard, 2), FP32},
	}
	if testing.Short() {
		cases = cases[:3] // one replicated, one sharded, one hybrid leg
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s", c.plan.Name(), c.prec), func(t *testing.T) {
			base := tinyDistConfig(4, c.plan)
			base.Epochs = 4
			base.Precision = c.prec

			// Leg A doubles as probe and reference source: an
			// uninterrupted 4-rank run stopped at the epoch-2 boundary
			// gives both the collective-entry count to aim the fault
			// past (×1.25 lands mid-epoch 3) and the checkpoint the
			// reference run resumes from.
			legA := base
			legA.StopAfterEpoch = 2
			a, err := PretrainDistributed(legA, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}
			killAt := a.CollectiveCalls + a.CollectiveCalls/4
			if killAt <= a.CollectiveCalls {
				t.Fatalf("degenerate fault site %d (leg A entered %d)", killAt, a.CollectiveCalls)
			}

			// Elastic run: checkpoint every epoch, kill rank 1 mid-epoch
			// 3, shrink 4→2 and continue.
			ecfg := ElasticConfig{DistConfig: base, ShrinkTo: 2}
			ecfg.CheckpointEvery = 1
			ecfg.Fault = dist.FaultPlan{Rank: 1, Call: killAt}
			e, err := PretrainElastic(ecfg, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}
			if e.Failures != 1 || len(e.Worlds) != 2 || e.Worlds[0] != 4 || e.Worlds[1] != 2 {
				t.Fatalf("failures %d, worlds %v, want one death and a 4→2 shrink", e.Failures, e.Worlds)
			}
			// Leg 1 checkpointed epochs 1 and 2 before dying; the shrunk
			// leg checkpoints epoch 3 (epoch 4 is the final state).
			if e.Checkpoints != 3 {
				t.Fatalf("%d checkpoints, want 3", e.Checkpoints)
			}
			if e.Checkpoint == nil || e.Checkpoint.Epoch != 2 || e.Checkpoint.World != 2 {
				t.Fatalf("resume point %+v, want the epoch-2 checkpoint re-sharded to world 2", e.Checkpoint)
			}
			if e.CheckpointSec < 0 || e.RestartSec <= 0 || e.LostWorkSec <= 0 {
				t.Fatalf("overhead accounting: ckpt %v restart %v lost %v",
					e.CheckpointSec, e.RestartSec, e.LostWorkSec)
			}

			// The elastic resume point must be exactly Reshard(leg A's
			// state): the mid-run checkpoint equals the StopAfterEpoch
			// capture, re-sharded.
			want, err := Reshard(a.State, 2, c.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(e.Checkpoint.Master, want.Master) ||
				!bitsEqual(e.Checkpoint.OptM, want.OptM) ||
				!bitsEqual(e.Checkpoint.OptV, want.OptV) {
				t.Fatal("elastic resume point differs from Reshard(uninterrupted checkpoint)")
			}
			if e.Checkpoint.Step != want.Step || e.Checkpoint.OptStep != want.OptStep ||
				e.Checkpoint.LossScale != want.LossScale ||
				e.Checkpoint.ScaleGoodSteps != want.ScaleGoodSteps {
				t.Fatalf("resume point counters %+v vs %+v", e.Checkpoint, want)
			}

			// Reference: an uninterrupted 2-rank run resumed from the
			// same re-sharded checkpoint.
			refCfg := base
			refCfg.Ranks = 2
			refCfg.Resume = want
			ref, err := PretrainDistributed(refCfg, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}

			// Headline: the shrunk continuation is bitwise identical.
			if e.Steps != ref.Steps {
				t.Fatalf("elastic final leg ran %d steps, reference %d", e.Steps, ref.Steps)
			}
			if len(e.LossCurve.Y) != len(ref.LossCurve.Y) {
				t.Fatalf("loss curves %d vs %d points", len(e.LossCurve.Y), len(ref.LossCurve.Y))
			}
			for i := range e.LossCurve.Y {
				if math.Float64bits(e.LossCurve.Y[i]) != math.Float64bits(ref.LossCurve.Y[i]) ||
					e.LossCurve.X[i] != ref.LossCurve.X[i] {
					t.Fatalf("loss differs at point %d: %v vs %v", i, e.LossCurve.Y[i], ref.LossCurve.Y[i])
				}
			}
			if !bitsEqual(e.State.Master, ref.State.Master) ||
				!bitsEqual(e.State.OptM, ref.State.OptM) ||
				!bitsEqual(e.State.OptV, ref.State.OptV) {
				t.Fatal("final training state differs from the uninterrupted reference")
			}
			if e.State.Step != ref.State.Step || e.State.OptStep != ref.State.OptStep ||
				e.State.World != 2 || e.State.Strategy != c.plan.Name() {
				t.Fatalf("final state stamps %+v vs %+v", e.State, ref.State)
			}
			if c.prec == BF16 && e.State.LossScale != ref.State.LossScale {
				t.Fatalf("loss scale diverged: %v vs %v", e.State.LossScale, ref.State.LossScale)
			}
			gotP := packedParams(e.Model)
			wantP := packedParams(ref.Model)
			if !bitsEqual(gotP, wantP) {
				t.Fatal("final parameters differ from the uninterrupted reference")
			}
		})
	}
}

// TestElasticNoFailure: with nothing armed the driver is a transparent
// wrapper — one leg, no restarts, checkpoints still taken.
func TestElasticNoFailure(t *testing.T) {
	base := tinyDistConfig(2, fsdp.DefaultDDP())
	base.Epochs = 3
	e, err := PretrainElastic(ElasticConfig{DistConfig: base}, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	if e.Failures != 0 || len(e.Worlds) != 1 || e.Worlds[0] != 2 {
		t.Fatalf("failures %d worlds %v", e.Failures, e.Worlds)
	}
	if e.Checkpoints != 2 { // epochs 1 and 2; epoch 3 is the final state
		t.Fatalf("%d checkpoints, want 2", e.Checkpoints)
	}
	if e.State == nil || e.State.Epoch != 3 {
		t.Fatalf("final state %+v", e.State)
	}
}

// TestElasticFailBeforeCheckpoint: a death before the first checkpoint
// is unrecoverable and surfaces the injected fault.
func TestElasticFailBeforeCheckpoint(t *testing.T) {
	base := tinyDistConfig(2, fsdp.DefaultDDP())
	base.Epochs = 3
	ecfg := ElasticConfig{DistConfig: base, ShrinkTo: 2}
	ecfg.Fault = dist.FaultPlan{Rank: 0, Call: 2}
	_, err := PretrainElastic(ecfg, tinyDataset(32))
	if err == nil {
		t.Fatal("unrecoverable death reported success")
	}
}

// TestElasticMaxRestarts: the driver gives up after MaxRestarts
// failures rather than looping forever. A second fault cannot re-fire
// (it is disarmed on restart), so this drives the exhaustion path with
// a kill before any shrink is possible at the smaller world.
func TestElasticMaxRestarts(t *testing.T) {
	base := tinyDistConfig(2, fsdp.DefaultDDP())
	base.Epochs = 4

	// Probe one epoch's collective count to aim the kill at epoch 2,
	// after the first checkpoint exists.
	probe := base
	probe.StopAfterEpoch = 1
	p, err := PretrainDistributed(probe, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	ecfg := ElasticConfig{DistConfig: base, MaxRestarts: 1}
	ecfg.CheckpointEvery = 1
	ecfg.Fault = dist.FaultPlan{Rank: 0, Call: p.CollectiveCalls + p.CollectiveCalls/2}
	e, err := PretrainElastic(ecfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	if e.Failures != 1 || len(e.Worlds) != 2 || e.Worlds[1] != 2 {
		t.Fatalf("failures %d worlds %v, want one absorbed restart in place", e.Failures, e.Worlds)
	}
}

// packedParams flattens a model's parameters for bitwise comparison.
func packedParams(m *mae.Model) []float32 {
	params := m.Params()
	buf := make([]float32, opt.FlatDim(params))
	opt.PackValues(buf, params)
	return buf
}
