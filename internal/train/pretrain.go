// Package train implements the self-supervised pretraining engine: the
// epoch/step loop over the MAE model with AdamW, linear-warmup cosine
// learning-rate schedule, gradient clipping, loss telemetry and
// checkpointing — the Section V pretraining recipe of the paper at
// laptop scale.
package train

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataload"
	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// PretrainConfig carries the pretraining hyper-parameters. The defaults
// (via DefaultPretrain) follow Section V: AdamW with base LR 1.5e-4
// under the linear batch-scaling rule, weight decay 0.05, cosine decay,
// 75% masking (part of the MAE config).
type PretrainConfig struct {
	MAE          mae.Config
	BatchSize    int
	Epochs       int
	BaseLR       float64
	WeightDecay  float64
	WarmupEpochs int
	ClipNorm     float64
	Workers      int
	Seed         uint64
	// Log receives progress lines; nil silences output.
	Log io.Writer
	// MaxStepsPerEpoch truncates epochs (0 = full epochs); used by fast
	// tests and the quickstart example.
	MaxStepsPerEpoch int
}

// DefaultPretrain returns the paper's recipe for a given MAE config.
func DefaultPretrain(m mae.Config) PretrainConfig {
	return PretrainConfig{
		MAE:          m,
		BatchSize:    32,
		Epochs:       100,
		BaseLR:       1.5e-4,
		WeightDecay:  0.05,
		WarmupEpochs: 5,
		ClipNorm:     5.0,
		Workers:      4,
		Seed:         1,
	}
}

// PretrainResult bundles the trained model and its telemetry.
type PretrainResult struct {
	Model *mae.Model
	// LossCurve holds (step, loss) points — the Figure 5 series.
	LossCurve metrics.Series
	// EpochLoss holds (epoch, mean loss) points.
	EpochLoss    metrics.Series
	ImagesPerSec float64
	Steps        int
}

// Pretrain runs MAE pretraining over the dataset's training split and
// returns the model plus loss curves.
func Pretrain(cfg PretrainConfig, ds *geodata.Dataset) (*PretrainResult, error) {
	if err := cfg.MAE.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive batch size or epochs")
	}
	model := mae.New(cfg.MAE, rng.New(cfg.Seed))
	res := &PretrainResult{Model: model}
	res.LossCurve.Name = cfg.MAE.Encoder.Name + " pretrain loss"
	res.EpochLoss.Name = cfg.MAE.Encoder.Name + " epoch loss"

	params := model.Params()
	optim := opt.NewAdamW(params, cfg.WeightDecay)
	stepsPerEpoch := ds.TrainCount / cfg.BatchSize
	if cfg.MaxStepsPerEpoch > 0 && stepsPerEpoch > cfg.MaxStepsPerEpoch {
		stepsPerEpoch = cfg.MaxStepsPerEpoch
	}
	if stepsPerEpoch == 0 {
		return nil, fmt.Errorf("train: dataset smaller than one batch")
	}
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize),
		MinLR:       0,
		WarmupSteps: cfg.WarmupEpochs * stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	gen := ds.Gen
	loader := dataload.New(
		dataload.TrainSplit{D: ds, Count: ds.TrainCount, ImgLen: gen.ImageLen()},
		dataload.Config{
			BatchSize: cfg.BatchSize,
			Workers:   cfg.Workers,
			Shuffle:   true,
			DropLast:  true,
			Seed:      cfg.Seed ^ 0xDA7A,
		})

	start := time.Now()
	images := 0
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss metrics.Meter
		for batch := range loader.EpochN(stepsPerEpoch) {
			nn.ZeroGrads(params)
			loss := model.Step(batch.Images, batch.Size)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			optim.Step(sched.LR(step))
			images += batch.Size
			loader.Recycle(batch)

			epochLoss.Add(loss)
			res.LossCurve.Append(float64(step), loss)
			step++
		}
		res.EpochLoss.Append(float64(epoch), epochLoss.Mean())
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.4f  lr %.2e\n",
				epoch+1, cfg.Epochs, epochLoss.Mean(), sched.LR(step-1))
		}
	}
	res.Steps = step
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.ImagesPerSec = float64(images) / elapsed
	}
	return res, nil
}
