package train

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"repro/internal/nn"
)

// Checkpoint is the on-disk parameter snapshot format: a map from
// parameter name to raw values, plus enough metadata to detect
// mismatched restores. gob keeps the repo dependency-free.
type Checkpoint struct {
	Format  string
	Step    int
	Tensors map[string][]float32
}

const checkpointFormat = "geofm-checkpoint-v1"

// SaveParams writes a named-parameter snapshot to w.
func SaveParams(w io.Writer, params []*nn.Param, step int) error {
	ck := Checkpoint{
		Format:  checkpointFormat,
		Step:    step,
		Tensors: make(map[string][]float32, len(params)),
	}
	for _, p := range params {
		if _, dup := ck.Tensors[p.Name]; dup {
			return fmt.Errorf("train: duplicate parameter name %q", p.Name)
		}
		ck.Tensors[p.Name] = p.Value.Data
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadParams restores a snapshot into params, matching by name. Every
// parameter must be present with the exact element count.
func LoadParams(r io.Reader, params []*nn.Param) (step int, err error) {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return 0, fmt.Errorf("train: unknown checkpoint format %q", ck.Format)
	}
	for _, p := range params {
		data, ok := ck.Tensors[p.Name]
		if !ok {
			return 0, fmt.Errorf("train: checkpoint missing parameter %q", p.Name)
		}
		if len(data) != p.NumEl() {
			return 0, fmt.Errorf("train: parameter %q has %d values, model expects %d",
				p.Name, len(data), p.NumEl())
		}
		copy(p.Value.Data, data)
	}
	return ck.Step, nil
}

// TrainState is the complete mid-run training state of a distributed
// pretraining run at an epoch boundary — everything a resumed
// PretrainDistributed needs to continue bitwise-identically to an
// uninterrupted run. All tensors are stored in the flat packed
// parameter order (opt.PackValues), unpadded: shard padding is always
// zero-valued and is reconstructed from the plan at restore time, which
// makes the state independent of the partition layout it was captured
// under.
type TrainState struct {
	Format string
	// Step is the absolute number of completed optimizer steps; Epoch
	// the number of completed epochs (Step == Epoch·stepsPerEpoch — the
	// state is captured at epoch boundaries).
	Step  int
	Epoch int
	// Precision is the numeric mode the state was captured under. A
	// resume validates it against the configuration: an FP32 state
	// carries no loss-scale schedule, so resuming it under BF16 (or
	// vice versa) would silently train a different trajectory.
	Precision Precision
	// AccumSteps is the gradient-accumulation window the state was
	// captured under (0 is read as 1, so states from before
	// accumulation existed resume as unaccumulated runs). A resume
	// validates it against the configuration: Step counts optimizer
	// steps, so the mask/sample fast-forward consumes Step×AccumSteps
	// micro-batches — a mismatched window would silently resume on a
	// misaligned mask stream.
	AccumSteps int
	// World and Strategy stamp the topology the state was captured
	// under: the world size and the plan name (fsdp.Plan.Name()). A
	// resume validates both against the configuration — continuing at a
	// different world or strategy requires going through Reshard, which
	// restamps them. Zero values (states from before elasticity
	// existed) act as wildcards.
	World    int
	Strategy string
	// Master holds the fp32 master weights (for FP32 runs, simply the
	// parameters). OptM/OptV are the Adam moments; OptStep the shared
	// bias-correction counter.
	Master     []float32
	OptM, OptV []float32
	OptStep    int
	// LossScale and ScaleGoodSteps freeze the dynamic loss scaler of a
	// BF16 run (ignored for FP32).
	LossScale      float64
	ScaleGoodSteps int
}

// trainStateFormat is the current on-disk format: a checksummed
// envelope (v2) around the gob-encoded TrainState. v1 wrote the bare
// TrainState gob; its Format field decodes into the envelope by field
// name, so a v1 stream is recognized and rejected with a clear
// format error rather than misread.
const trainStateFormat = "geofm-trainstate-v2"

// stateEnvelope is the on-disk frame of a train state: the payload is
// the gob-encoded TrainState and Checksum is its FNV-64a hash, so a
// truncated or bit-flipped checkpoint file fails LoadTrainState with a
// clear error instead of a gob panic or silently corrupted state.
type stateEnvelope struct {
	Format   string
	Checksum uint64
	Payload  []byte
}

func stateChecksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// SaveTrainState writes a resumable training state to w: the state's
// gob encoding wrapped in a checksummed envelope (format version
// geofm-trainstate-v2).
func SaveTrainState(w io.Writer, st *TrainState) error {
	cp := *st
	cp.Format = trainStateFormat
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(cp); err != nil {
		return fmt.Errorf("train: encoding train state: %w", err)
	}
	env := stateEnvelope{
		Format:   trainStateFormat,
		Checksum: stateChecksum(body.Bytes()),
		Payload:  body.Bytes(),
	}
	return gob.NewEncoder(w).Encode(env)
}

// LoadTrainState reads a training state written by SaveTrainState,
// verifying the envelope's format version and payload checksum before
// decoding: truncation and bit flips fail here with a clear error, not
// downstream as garbage state.
func LoadTrainState(r io.Reader) (*TrainState, error) {
	var env stateEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("train: decoding train-state envelope (truncated or not a train state): %w", err)
	}
	if env.Format != trainStateFormat {
		return nil, fmt.Errorf("train: unknown train-state format %q (want %q)", env.Format, trainStateFormat)
	}
	if got := stateChecksum(env.Payload); got != env.Checksum {
		return nil, fmt.Errorf("train: train-state checksum mismatch (%#016x, envelope says %#016x): corrupted checkpoint",
			got, env.Checksum)
	}
	var st TrainState
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("train: decoding train state: %w", err)
	}
	if st.Format != trainStateFormat {
		return nil, fmt.Errorf("train: unknown train-state format %q", st.Format)
	}
	if len(st.OptM) != len(st.Master) || len(st.OptV) != len(st.Master) {
		return nil, fmt.Errorf("train: train state moments (%d/%d values) do not match master (%d)",
			len(st.OptM), len(st.OptV), len(st.Master))
	}
	return &st, nil
}

// clone deep-copies the state (the tensors included), so a checkpoint
// snapshot stays frozen while training mutates the live buffers.
func (st *TrainState) clone() *TrainState {
	cp := *st
	cp.Master = append([]float32(nil), st.Master...)
	cp.OptM = append([]float32(nil), st.OptM...)
	cp.OptV = append([]float32(nil), st.OptV...)
	return &cp
}

// SaveTrainStateFile writes a training state to path (atomically via a
// temp file).
func SaveTrainStateFile(path string, st *TrainState) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SaveTrainState(w, st) })
}

// saveFileAtomic writes via a temp file renamed into place, so a crash
// mid-write never leaves a truncated checkpoint at path.
func saveFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTrainStateFile reads a training state from path.
func LoadTrainStateFile(path string) (*TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadTrainState(f)
}

// SaveParamsFile writes a snapshot to path (atomically via a temp file).
func SaveParamsFile(path string, params []*nn.Param, step int) error {
	return saveFileAtomic(path, func(w io.Writer) error { return SaveParams(w, params, step) })
}

// LoadParamsFile restores a snapshot from path.
func LoadParamsFile(path string, params []*nn.Param) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return LoadParams(f, params)
}
