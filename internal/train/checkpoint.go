package train

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
)

// Checkpoint is the on-disk parameter snapshot format: a map from
// parameter name to raw values, plus enough metadata to detect
// mismatched restores. gob keeps the repo dependency-free.
type Checkpoint struct {
	Format  string
	Step    int
	Tensors map[string][]float32
}

const checkpointFormat = "geofm-checkpoint-v1"

// SaveParams writes a named-parameter snapshot to w.
func SaveParams(w io.Writer, params []*nn.Param, step int) error {
	ck := Checkpoint{
		Format:  checkpointFormat,
		Step:    step,
		Tensors: make(map[string][]float32, len(params)),
	}
	for _, p := range params {
		if _, dup := ck.Tensors[p.Name]; dup {
			return fmt.Errorf("train: duplicate parameter name %q", p.Name)
		}
		ck.Tensors[p.Name] = p.Value.Data
	}
	return gob.NewEncoder(w).Encode(ck)
}

// LoadParams restores a snapshot into params, matching by name. Every
// parameter must be present with the exact element count.
func LoadParams(r io.Reader, params []*nn.Param) (step int, err error) {
	var ck Checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return 0, fmt.Errorf("train: unknown checkpoint format %q", ck.Format)
	}
	for _, p := range params {
		data, ok := ck.Tensors[p.Name]
		if !ok {
			return 0, fmt.Errorf("train: checkpoint missing parameter %q", p.Name)
		}
		if len(data) != p.NumEl() {
			return 0, fmt.Errorf("train: parameter %q has %d values, model expects %d",
				p.Name, len(data), p.NumEl())
		}
		copy(p.Value.Data, data)
	}
	return ck.Step, nil
}

// SaveParamsFile writes a snapshot to path (atomically via a temp file).
func SaveParamsFile(path string, params []*nn.Param, step int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params, step); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadParamsFile restores a snapshot from path.
func LoadParamsFile(path string, params []*nn.Param) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return LoadParams(f, params)
}
