package train

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/opt"
	"repro/internal/vit"
)

// TestMultiBucketBitwiseAndTraffic forces the flat gradient into
// several wire buckets (the layout under which sharded ownership
// becomes chunk-of-every-bucket) and checks that (a) overlap on/off
// stays bitwise identical, (b) replicas stay bit-identical, (c) bucket
// splitting leaves the per-step ring volumes exactly at
// fsdp.TrafficPerStep — splitting a ring collective changes calls, not
// bytes — and (d) the collective call counts scale with the bucket
// count.
func TestMultiBucketBitwiseAndTraffic(t *testing.T) {
	plans := []fsdp.Plan{
		fsdp.DefaultDDP(),
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 2),
	}
	for _, plan := range plans {
		for _, prec := range []Precision{FP32, BF16} {
			t.Run(fmt.Sprintf("%s/%s", plan.Name(), prec), func(t *testing.T) {
				run := func(overlap bool) *DistResult {
					cfg := tinyDistConfig(4, plan)
					cfg.Epochs = 2
					cfg.Precision = prec
					cfg.Overlap = overlap
					// ~6 KiB of fp32 gradient → several buckets.
					cfg.BucketBytes = 1024
					res, err := PretrainDistributed(cfg, tinyDataset(32))
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				off := run(false)
				on := run(true)
				for i := range off.LossCurve.Y {
					if math.Float64bits(on.LossCurve.Y[i]) != math.Float64bits(off.LossCurve.Y[i]) {
						t.Fatalf("overlap changes the bucketed loss at step %d", i)
					}
				}
				dim := opt.FlatDim(off.Model.Params())
				a := make([]float32, dim)
				b := make([]float32, dim)
				opt.PackValues(a, off.Model.Params())
				for rank := 0; rank < 4; rank++ {
					opt.PackValues(b, on.replicas[rank].Params())
					for j := range a {
						if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
							t.Fatalf("rank %d parameter %d differs between overlap on (bucketed) and off", rank, j)
						}
					}
				}
				steps := float64(on.Steps)
				if on.Comm.AllReduce.MeasuredWireBytes != on.Traffic.AllReduceBytes*steps ||
					on.Comm.ReduceScatter.MeasuredWireBytes != on.Traffic.ReduceScatterBytes*steps ||
					on.Comm.AllGather.MeasuredWireBytes != on.Traffic.AllGatherBytes*steps {
					t.Errorf("bucket splitting changed the per-step wire volume: %+v vs %+v × %v",
						on.Comm, on.Traffic, steps)
				}
				// Bucketing multiplies calls (4-rank padded space at
				// 1 KiB wire buckets → >1 bucket for this model).
				perStep := on.Comm.AllGather.Calls + on.Comm.ReduceScatter.Calls + on.Comm.AllReduce.Calls
				if perStep <= on.Steps {
					t.Errorf("expected multiple collective calls per step, got %d over %d steps", perStep, on.Steps)
				}
			})
		}
	}
}

// TestAccumWindowScalerOnceAndUniformTraffic pins the loss-scaler ×
// accumulation interaction: an overflow injected into the accumulation
// window (Init beyond float32 range overflows the window's scaled
// gradient) must be detected once per *optimizer step* — one skip, one
// backoff, one halving per window, never per micro-step — and the
// skipped windows still run the full collective schedule, so measured
// bytes stay exactly uniform across the skip.
func TestAccumWindowScalerOnceAndUniformTraffic(t *testing.T) {
	for _, plan := range []fsdp.Plan{fsdp.DefaultDDP(), fsdp.BestPractice(fsdp.HybridShard, 2)} {
		t.Run(plan.Name(), func(t *testing.T) {
			cfg := tinyDistConfig(4, plan)
			cfg.Epochs = 4
			cfg.Precision = BF16
			cfg.AccumSteps = 2
			cfg.Overlap = true
			cfg.LossScale.Init = 1e40 // float32(1e40·g) = ±Inf mid-window
			res, err := PretrainDistributed(cfg, tinyDataset(64))
			if err != nil {
				t.Fatal(err)
			}
			if res.SkippedSteps == 0 {
				t.Fatal("no skip exercised")
			}
			if res.SkippedSteps >= res.Steps {
				t.Fatalf("every window skipped (%d of %d)", res.SkippedSteps, res.Steps)
			}
			// Once per window: every skip is one backoff, and the final
			// scale is exactly Init halved once per skipped window. A
			// per-micro-step scaler would halve AccumSteps times per
			// window and double-count skips.
			if res.ScaleBackoffs != res.SkippedSteps {
				t.Fatalf("backoffs %d != skipped windows %d", res.ScaleBackoffs, res.SkippedSteps)
			}
			want := cfg.LossScale.Init * math.Pow(0.5, float64(res.ScaleBackoffs))
			if res.FinalLossScale != want {
				t.Fatalf("final scale %v, want Init × 0.5^%d = %v (scaler moved more than once per window?)",
					res.FinalLossScale, res.ScaleBackoffs, want)
			}
			// Uniform traffic across skipped and trained windows.
			steps := float64(res.Steps)
			if res.Comm.AllReduce.MeasuredWireBytes != res.Traffic.AllReduceBytes*steps ||
				res.Comm.ReduceScatter.MeasuredWireBytes != res.Traffic.ReduceScatterBytes*steps ||
				res.Comm.AllGather.MeasuredWireBytes != res.Traffic.AllGatherBytes*steps {
				t.Errorf("traffic not uniform across skips: %+v vs %+v × %v", res.Comm, res.Traffic, steps)
			}
			// The loss curve still reports every optimizer step.
			if len(res.LossCurve.Y) != res.Steps {
				t.Errorf("loss curve has %d points for %d steps", len(res.LossCurve.Y), res.Steps)
			}
		})
	}
}

// overlapBenchConfig is an 8-rank DDP run on a deliberately congested
// link (Throttle realizes the α–β time as executed delay): DDP's
// gradient all-reduces launch per bucket during backward, so — unlike
// the sharded schedules, whose parameter all-gathers gate the next
// forward and cannot hide — its entire gradient traffic is
// overlappable, the cleanest demonstration of the hidden-latency win.
// Shared between the acceptance test below and
// BenchmarkDistStepOverlap.
func overlapBenchConfig(overlap bool, accum int) (DistConfig, int) {
	enc := vit.Config{Name: "mid", Width: 64, Depth: 6, MLP: 256, Heads: 4,
		PatchSize: 4, ImageSize: 16, Channels: 3}
	m := mae.Config{Encoder: enc, DecoderWidth: 32, DecoderDepth: 2, DecoderHeads: 2, MaskRatio: 0.75}
	cfg := DistConfig{
		PretrainConfig: PretrainConfig{
			MAE: m, BatchSize: 64, Epochs: 1, BaseLR: 0.02, WeightDecay: 0.05,
			WarmupEpochs: 1, ClipNorm: 5, Workers: 2, Seed: 3, MaxStepsPerEpoch: 3,
		},
		Ranks:       8,
		Plan:        fsdp.DefaultDDP(),
		Overlap:     overlap,
		AccumSteps:  accum,
		BucketBytes: 64 << 10, // several buckets over the ~340k-element flat space
		// A link slow enough (vs the model's per-step backward) that
		// collective latency is worth hiding, but hideable within the
		// backward compute; Throttle executes the modeled time.
		Link:     comm.Params{Bandwidth: 400e6, HopLat: 5e-6, Launch: 2e-5},
		Throttle: 1,
	}
	return cfg, 16 * 4 // dataset images per step headroom
}

// TestOverlapHidesExposedCommOnCongestedLink is the executed form of
// the paper's overlap claim, and this PR's acceptance bar: on a
// congested simulated link, the 8-rank overlapped run must show
// strictly lower exposed-communication time than the synchronous run —
// the same bytes moved, the same bitwise trajectory, less of the step
// spent stalled on the wire.
func TestOverlapHidesExposedCommOnCongestedLink(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test (throttled link)")
	}
	defer runtime.GOMAXPROCS(withCommProcs(8))
	run := func(overlap bool) *DistResult {
		cfg, perStep := overlapBenchConfig(overlap, 1)
		res, err := PretrainDistributed(cfg, tinyDatasetSized(perStep*4, cfg.MAE.Encoder.ImageSize))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	// Same trajectory, same bytes — only the schedule differs.
	for i := range off.LossCurve.Y {
		if math.Float64bits(on.LossCurve.Y[i]) != math.Float64bits(off.LossCurve.Y[i]) {
			t.Fatalf("overlap changed the loss at step %d", i)
		}
	}
	if on.Comm.ReduceScatter.MeasuredWireBytes != off.Comm.ReduceScatter.MeasuredWireBytes ||
		on.Comm.AllGather.MeasuredWireBytes != off.Comm.AllGather.MeasuredWireBytes {
		t.Fatalf("overlap changed the wire bytes")
	}
	if off.ExposedCommSec <= 0 {
		t.Fatalf("synchronous run exposed no communication (%.3fs) — throttle inert?", off.ExposedCommSec)
	}
	bOff := off.Breakdown("overlap=off")
	bOn := on.Breakdown("overlap=on")
	t.Logf("%s", bOff)
	t.Logf("%s", bOn)
	if !(on.ExposedCommSec < off.ExposedCommSec) {
		t.Fatalf("overlap did not hide latency: exposed %.3fs (on) vs %.3fs (off)",
			on.ExposedCommSec, off.ExposedCommSec)
	}
	// The win must be substantial, not jitter: the gradient reductions
	// launch early enough in backward to hide most of their cost.
	if on.ExposedCommSec > 0.8*off.ExposedCommSec {
		t.Errorf("overlap hides too little: exposed %.3fs (on) vs %.3fs (off)",
			on.ExposedCommSec, off.ExposedCommSec)
	}
	if bOn.ExposedFrac() >= bOff.ExposedFrac() {
		t.Errorf("exposed fraction did not drop: %.2f vs %.2f", bOn.ExposedFrac(), bOff.ExposedFrac())
	}
}

// tinyDatasetSized is tinyDataset at a configurable image size (the
// overlap bench model uses 16×16 scenes).
func tinyDatasetSized(count, imageSize int) *geodata.Dataset {
	gen := geodata.NewSceneGen(4, imageSize, 3, 11)
	return &geodata.Dataset{Name: "tiny", Gen: gen, TrainCount: count, TestCount: count / 2}
}

// withCommProcs raises GOMAXPROCS so each modeled GPU's comm "stream"
// (the async queue worker) can run beside the rank's compute, as the
// DMA/RCCL engines do beside the compute units on a real node — on a
// box with fewer cores than ranks, a compute-bound rank goroutine
// would otherwise serialize the throttled collective chain behind its
// own backward and mask the overlap. Returns the previous setting for
// deferred restore.
func withCommProcs(ranks int) int {
	want := 2 * ranks
	if cur := runtime.GOMAXPROCS(0); cur >= want {
		return cur
	}
	return runtime.GOMAXPROCS(want)
}
