package train

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/mae"
	"repro/internal/opt"
)

// matrixPlans is the executed Section III-C strategy matrix: the
// replicated baseline, ZeRO-1, ZeRO-3-style full sharding, and the
// two-level hybrid scheme at two group sizes.
func matrixPlans() []fsdp.Plan {
	return []fsdp.Plan{
		fsdp.DefaultDDP(),
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 2),
		fsdp.BestPractice(fsdp.HybridShard, 4),
	}
}

// TestStrategyMatrix is the acceptance bar of the full strategy matrix:
// every strategy × world-size combination must (a) reproduce the
// single-rank Pretrain loss trajectory within 1e-4 at every step,
// (b) leave every rank's replica bit-identical — which for the hybrid
// strategies includes replicas in *different* shard groups, so the
// replica-group all-reduce provably completes the global gradient —
// and (c) put exactly the per-step wire bytes on its rings that
// fsdp.TrafficPerStep charges the simulated run.
func TestStrategyMatrix(t *testing.T) {
	base := tinyDistConfig(1, fsdp.DefaultDDP())
	base.Epochs = 2
	ref, err := Pretrain(base.PretrainConfig, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, world := range []int{2, 4, 8} {
		for _, plan := range matrixPlans() {
			if plan.Strategy == fsdp.HybridShard && world%plan.GroupSize != 0 {
				continue // HYBRID_4GPUs cannot tile a 2-rank world
			}
			t.Run(fmt.Sprintf("%s/world=%d", plan.Name(), world), func(t *testing.T) {
				cfg := tinyDistConfig(world, plan)
				cfg.Epochs = 2
				res, err := PretrainDistributed(cfg, tinyDataset(32))
				if err != nil {
					t.Fatal(err)
				}
				if res.Steps != ref.Steps {
					t.Fatalf("steps: distributed %d, single-rank %d", res.Steps, ref.Steps)
				}
				// (a) per-step loss agreement with the single-rank run.
				for i := range ref.LossCurve.Y {
					if !relClose(res.LossCurve.Y[i], ref.LossCurve.Y[i], 1e-4) {
						t.Fatalf("loss diverges at step %d: distributed %v, single-rank %v",
							i, res.LossCurve.Y[i], ref.LossCurve.Y[i])
					}
				}
				// (b) bit-identical replicas on every rank.
				dim := opt.FlatDim(res.Model.Params())
				refW := make([]float32, dim)
				opt.PackValues(refW, res.Model.Params())
				buf := make([]float32, dim)
				for rank := 1; rank < len(res.replicas); rank++ {
					opt.PackValues(buf, res.replicas[rank].Params())
					for j := range buf {
						if buf[j] != refW[j] {
							t.Fatalf("rank %d diverged from rank 0 at flat element %d", rank, j)
						}
					}
				}
				// (c) measured wire bytes equal the simulator's per-step
				// accounting exactly.
				steps := float64(res.Steps)
				checks := []struct {
					name           string
					measured, want float64
				}{
					{"all-reduce", res.Comm.AllReduce.MeasuredWireBytes, res.Traffic.AllReduceBytes * steps},
					{"reduce-scatter", res.Comm.ReduceScatter.MeasuredWireBytes, res.Traffic.ReduceScatterBytes * steps},
					{"all-gather", res.Comm.AllGather.MeasuredWireBytes, res.Traffic.AllGatherBytes * steps},
				}
				for _, c := range checks {
					if c.measured != c.want {
						t.Errorf("%s: measured %v bytes over %v steps, simulator accounts %v",
							c.name, c.measured, steps, c.want)
					}
					// The α–β model prices the same volume it measures.
				}
				if res.Comm.AllGather.ModelWireBytes != res.Comm.AllGather.MeasuredWireBytes {
					t.Errorf("modeled AG bytes %v != measured %v",
						res.Comm.AllGather.ModelWireBytes, res.Comm.AllGather.MeasuredWireBytes)
				}
				if res.Comm.ReduceScatter.ModelWireBytes != res.Comm.ReduceScatter.MeasuredWireBytes {
					t.Errorf("modeled RS bytes %v != measured %v",
						res.Comm.ReduceScatter.ModelWireBytes, res.Comm.ReduceScatter.MeasuredWireBytes)
				}
			})
		}
	}
}

// TestStrategyMatrixOverlapAccum extends the matrix along the two new
// execution axes: for every {ddp, zero1, full, hybrid:2} × {fp32,
// bf16} cell, overlap on/off and AccumSteps ∈ {1, 4} must (a) be
// bitwise identical between overlap on and off (params and per-step
// losses), (b) reproduce the single-rank run with the same *effective*
// batch — AccumSteps=4 at global batch 8 tracks a single-rank batch-32
// run — within tolerance, (c) keep replicas bit-identical, and (d)
// still put exactly fsdp.TrafficPerStep wire bytes on the rings per
// optimizer step (accumulation fires collectives once per window, so
// the per-step volume is unchanged).
func TestStrategyMatrixOverlapAccum(t *testing.T) {
	const world = 4
	plans := []fsdp.Plan{
		fsdp.DefaultDDP(),
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 2),
	}
	// Single-rank references at the effective batch sizes: 8·1 and 8·4.
	refs := map[int]*PretrainResult{}
	for _, accum := range []int{1, 4} {
		base := tinyDistConfig(1, fsdp.DefaultDDP())
		base.Epochs = 2
		base.MaxStepsPerEpoch = 2
		base.BatchSize = 8 * accum
		ref, err := Pretrain(base.PretrainConfig, tinyDataset(64))
		if err != nil {
			t.Fatal(err)
		}
		refs[accum] = ref
	}

	run := func(plan fsdp.Plan, prec Precision, accum int, overlap bool) *DistResult {
		cfg := tinyDistConfig(world, plan)
		cfg.Epochs = 2
		cfg.MaxStepsPerEpoch = 2
		cfg.Precision = prec
		cfg.AccumSteps = accum
		cfg.Overlap = overlap
		res, err := PretrainDistributed(cfg, tinyDataset(64))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flat := func(m []*mae.Model, i int) []float32 {
		buf := make([]float32, opt.FlatDim(m[i].Params()))
		opt.PackValues(buf, m[i].Params())
		return buf
	}

	for _, plan := range plans {
		for _, prec := range []Precision{FP32, BF16} {
			for _, accum := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/accum=%d", plan.Name(), prec, accum), func(t *testing.T) {
					off := run(plan, prec, accum, false)
					on := run(plan, prec, accum, true)
					ref := refs[accum]
					if off.Steps != ref.Steps || on.Steps != off.Steps {
						t.Fatalf("steps: overlap-off %d, overlap-on %d, single-rank %d",
							off.Steps, on.Steps, ref.Steps)
					}
					// (a) overlap on ≡ overlap off, bit for bit.
					for i := range off.LossCurve.Y {
						if math.Float64bits(on.LossCurve.Y[i]) != math.Float64bits(off.LossCurve.Y[i]) {
							t.Fatalf("overlap changes the loss at step %d: %v vs %v",
								i, on.LossCurve.Y[i], off.LossCurve.Y[i])
						}
					}
					wOff, wOn := flat(off.replicas, 0), flat(on.replicas, 0)
					for j := range wOff {
						if math.Float32bits(wOn[j]) != math.Float32bits(wOff[j]) {
							t.Fatalf("overlap changes parameter %d: %v vs %v", j, wOn[j], wOff[j])
						}
					}
					// (b) the distributed window reproduces the
					// single-rank run at the same effective batch —
					// same sample order, same masks, same LR schedule.
					tol := 1e-3
					if prec == BF16 {
						tol = 5e-3 // bf16 working weights vs the fp32 reference
					}
					for i := range ref.LossCurve.Y {
						if !relClose(off.LossCurve.Y[i], ref.LossCurve.Y[i], tol) {
							t.Fatalf("accum=%d loss diverges from effective-batch single-rank at step %d: %v vs %v",
								accum, i, off.LossCurve.Y[i], ref.LossCurve.Y[i])
						}
					}
					// (c) replicas bit-identical across ranks.
					for rank := 1; rank < world; rank++ {
						wr := flat(on.replicas, rank)
						for j := range wr {
							if math.Float32bits(wr[j]) != math.Float32bits(wOn[j]) {
								t.Fatalf("rank %d diverged at flat element %d", rank, j)
							}
						}
					}
					// (d) per-optimizer-step traffic unchanged by
					// accumulation and overlap.
					for _, res := range []*DistResult{off, on} {
						steps := float64(res.Steps)
						if res.Comm.AllReduce.MeasuredWireBytes != res.Traffic.AllReduceBytes*steps ||
							res.Comm.ReduceScatter.MeasuredWireBytes != res.Traffic.ReduceScatterBytes*steps ||
							res.Comm.AllGather.MeasuredWireBytes != res.Traffic.AllGatherBytes*steps {
							t.Errorf("measured bytes drift from TrafficPerStep × %v steps", steps)
						}
					}
				})
			}
		}
	}
}

// TestFullShardMatchesZeRO1Bitwise: FULL_SHARD differs from
// SHARD_GRAD_OP only by dropping non-owned parameter shards after
// forward and re-gathering them for backward. The re-gather must
// restore the exact bytes forward ran with, so the two trajectories are
// not merely close — they are identical. A single flipped bit anywhere
// in the backward all-gather fails this test.
func TestFullShardMatchesZeRO1Bitwise(t *testing.T) {
	zero1, err := PretrainDistributed(tinyDistConfig(4, fsdp.BestPractice(fsdp.ShardGradOp, 0)), tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	full, err := PretrainDistributed(tinyDistConfig(4, fsdp.BestPractice(fsdp.FullShard, 0)), tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range zero1.LossCurve.Y {
		if full.LossCurve.Y[i] != zero1.LossCurve.Y[i] {
			t.Fatalf("FULL_SHARD loss differs from SHARD_GRAD_OP at step %d: %v vs %v",
				i, full.LossCurve.Y[i], zero1.LossCurve.Y[i])
		}
	}
	dim := opt.FlatDim(zero1.Model.Params())
	a := make([]float32, dim)
	b := make([]float32, dim)
	opt.PackValues(a, zero1.Model.Params())
	opt.PackValues(b, full.Model.Params())
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("final parameters differ at flat element %d", j)
		}
	}
	// And FULL_SHARD pays exactly one extra parameter all-gather per
	// step for the privilege.
	if full.Traffic.AllGatherBytes != 2*zero1.Traffic.AllGatherBytes {
		t.Fatalf("FULL_SHARD AG traffic %v, want twice ZeRO-1's %v",
			full.Traffic.AllGatherBytes, zero1.Traffic.AllGatherBytes)
	}
}

// TestHybridCollectiveMix pins the hybrid schedule's shape itself: a
// HYBRID_2GPUs run on 4 ranks must issue, per step, one shard-group
// reduce-scatter, two shard-group all-gathers, and one replica-group
// all-reduce — no more, no fewer — alongside the single init broadcast.
func TestHybridCollectiveMix(t *testing.T) {
	cfg := tinyDistConfig(4, fsdp.BestPractice(fsdp.HybridShard, 2))
	cfg.Epochs = 2
	res, err := PretrainDistributed(cfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	steps := res.Steps
	if steps == 0 {
		t.Fatal("no steps")
	}
	if got := res.Comm.ReduceScatter.Calls; got != steps {
		t.Errorf("reduce-scatter calls %d, want %d", got, steps)
	}
	if got := res.Comm.AllGather.Calls; got != 2*steps {
		t.Errorf("all-gather calls %d, want %d", got, 2*steps)
	}
	if got := res.Comm.AllReduce.Calls; got != steps {
		t.Errorf("replica all-reduce calls %d, want %d", got, steps)
	}
	if got := res.Comm.Broadcast.Calls; got != 1 {
		t.Errorf("broadcast calls %d, want 1", got)
	}
}
