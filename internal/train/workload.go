package train

import (
	"fmt"

	"repro/internal/perfmodel"
)

// WorkloadFor maps a DistConfig onto the perfmodel workload describing
// exactly what PretrainDistributed executes per rank and optimizer
// step: the configured encoder over its visible tokens, the configured
// (scaled-down) decoder via the DecWidth/DecDepth overrides, the local
// micro-batch, and the numeric profile of the executed precision mode.
// Feeding this workload to fsdp.Simulate on a calibrated machine
// (internal/calib) yields the simulator's prediction for the step the
// executed run measures in trace.ExecBreakdown — the bridge the
// simulator-validation suite compares across.
//
// Gradient accumulation is intentionally absent: the workload describes
// one micro-step's compute and one optimizer step's communication, the
// same convention as fsdp.TrafficPerStep.
func WorkloadFor(cfg DistConfig) (perfmodel.Workload, error) {
	if err := cfg.MAE.Validate(); err != nil {
		return perfmodel.Workload{}, fmt.Errorf("train: %w", err)
	}
	if cfg.Ranks < 1 {
		return perfmodel.Workload{}, fmt.Errorf("train: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.BatchSize <= 0 || cfg.BatchSize%cfg.Ranks != 0 {
		return perfmodel.Workload{}, fmt.Errorf("train: global batch %d not divisible by %d ranks",
			cfg.BatchSize, cfg.Ranks)
	}
	if !cfg.Precision.valid() {
		return perfmodel.Workload{}, fmt.Errorf("train: unknown precision %v", cfg.Precision)
	}
	prec := perfmodel.FP32Precision()
	if cfg.Precision == BF16 {
		// The *executed* bf16 recipe: kernels stay fp32 (compute time is
		// priced by the calibrated fp32 roofline either way), but every
		// collective payload — gradient reductions included, DDP's too —
		// moves 2-byte bf16 elements, and the resident state is fp32
		// master + Adam moments + the bf16 working copy. MasterBytes is
		// set to the wire width so Precision.GradReduceBytes does not
		// re-widen DDP buckets to fp32: that bump models PyTorch DDP,
		// not this repo's executed bf16 wire (fsdp.TrafficPerStep(·,2)).
		prec = perfmodel.Precision{ComputeBytes: 2, StateBytesPerParam: 14, MasterBytes: 2}
	}
	return perfmodel.Workload{
		Model:         cfg.MAE.Encoder,
		LocalBatch:    cfg.BatchSize / cfg.Ranks,
		EncoderTokens: cfg.MAE.KeepTokens(),
		MAE:           true,
		DecWidth:      cfg.MAE.DecoderWidth,
		DecDepth:      cfg.MAE.DecoderDepth,
		Prec:          prec,
	}, nil
}
