package train

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/vit"
)

func tinyMAE() mae.Config {
	enc := vit.Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	return mae.Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75}
}

func tinyDataset(count int) *geodata.Dataset {
	gen := geodata.NewSceneGen(4, 12, 3, 11)
	return &geodata.Dataset{Name: "tiny", Gen: gen, TrainCount: count, TestCount: count / 2}
}

func TestPretrainLossDecreases(t *testing.T) {
	// BaseLR is raised relative to the paper's 1.5e-4 because the linear
	// batch-scaling rule divides by 256 while the test batch is only 8.
	cfg := PretrainConfig{
		MAE:          tinyMAE(),
		BatchSize:    8,
		Epochs:       8,
		BaseLR:       0.08,
		WeightDecay:  0.05,
		WarmupEpochs: 1,
		ClipNorm:     5,
		Workers:      2,
		Seed:         3,
	}
	res, err := Pretrain(cfg, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 8*(64/8) {
		t.Fatalf("steps=%d", res.Steps)
	}
	first := res.EpochLoss.Y[0]
	last := res.EpochLoss.Last()
	if !(last < first) {
		t.Fatalf("epoch loss did not decrease: %v → %v", first, last)
	}
	if len(res.LossCurve.X) != res.Steps {
		t.Fatalf("loss curve has %d points for %d steps", len(res.LossCurve.X), res.Steps)
	}
	if res.ImagesPerSec <= 0 {
		t.Fatal("ImagesPerSec not measured")
	}
}

func TestPretrainDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := PretrainConfig{
			MAE: tinyMAE(), BatchSize: 8, Epochs: 2, BaseLR: 1.5e-4,
			WeightDecay: 0.05, WarmupEpochs: 1, ClipNorm: 5,
			Workers: workers, Seed: 5,
		}
		res, err := Pretrain(cfg, tinyDataset(32))
		if err != nil {
			t.Fatal(err)
		}
		return res.LossCurve.Y
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("curve lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss curves diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPretrainValidation(t *testing.T) {
	bad := PretrainConfig{MAE: tinyMAE(), BatchSize: 0, Epochs: 1}
	if _, err := Pretrain(bad, tinyDataset(32)); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	small := PretrainConfig{MAE: tinyMAE(), BatchSize: 64, Epochs: 1}
	if _, err := Pretrain(small, tinyDataset(8)); err == nil {
		t.Fatal("dataset smaller than batch accepted")
	}
}

func TestPretrainMaxSteps(t *testing.T) {
	cfg := PretrainConfig{
		MAE: tinyMAE(), BatchSize: 8, Epochs: 2, BaseLR: 1e-4,
		WeightDecay: 0, WarmupEpochs: 0, Workers: 1, Seed: 1,
		MaxStepsPerEpoch: 2,
	}
	res, err := Pretrain(cfg, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 {
		t.Fatalf("steps=%d want 4", res.Steps)
	}
}

func TestPretrainLogs(t *testing.T) {
	var buf bytes.Buffer
	cfg := PretrainConfig{
		MAE: tinyMAE(), BatchSize: 8, Epochs: 1, BaseLR: 1e-4,
		Workers: 1, Seed: 1, Log: &buf, MaxStepsPerEpoch: 1,
	}
	if _, err := Pretrain(cfg, tinyDataset(16)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no log output")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	r := rng.New(1)
	m1 := mae.New(tinyMAE(), r)
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := SaveParamsFile(path, m1.Params(), 42); err != nil {
		t.Fatal(err)
	}
	m2 := mae.New(tinyMAE(), rng.New(99)) // different init
	step, err := LoadParamsFile(path, m2.Params())
	if err != nil {
		t.Fatal(err)
	}
	if step != 42 {
		t.Fatalf("step=%d", step)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data {
			if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
				t.Fatalf("param %s differs after restore", p1[i].Name)
			}
		}
	}
}

func TestCheckpointRejectsMismatchedModel(t *testing.T) {
	r := rng.New(1)
	m1 := mae.New(tinyMAE(), r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m1.Params(), 0); err != nil {
		t.Fatal(err)
	}
	other := tinyMAE()
	other.Encoder.Width = 24
	other.Encoder.MLP = 48
	m2 := mae.New(other, rng.New(2))
	if _, err := LoadParams(&buf, m2.Params()); err == nil {
		t.Fatal("mismatched restore accepted")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	var p []*nn.Param
	if _, err := LoadParams(bytes.NewReader([]byte("not a checkpoint")), p); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointRejectsMissingParam(t *testing.T) {
	r := rng.New(1)
	lin := nn.NewLinear("only", 2, 2, r)
	var buf bytes.Buffer
	if err := SaveParams(&buf, lin.Params(), 0); err != nil {
		t.Fatal(err)
	}
	extra := nn.NewLinear("extra", 2, 2, r)
	if _, err := LoadParams(&buf, append(lin.Params(), extra.Params()...)); err == nil {
		t.Fatal("missing parameter accepted")
	}
}
