package train

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// precisionPlans is the precision axis of the executed matrix: every
// strategy family runs under BF16 — replicated, ZeRO-1, full sharding
// and the two-level hybrid.
func precisionPlans() []fsdp.Plan {
	return []fsdp.Plan{
		fsdp.DefaultDDP(),
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 2),
	}
}

// TestPrecisionMatrix extends the strategy matrix to the precision
// axis: for every strategy, a BF16 run must (a) track the fp32 run's
// per-step loss within 5e-3, (b) keep every rank's replica
// bit-identical, (c) put exactly the per-step wire bytes on its rings
// that the dtype-aware fsdp.TrafficPerStep charges, and (d) move
// exactly half the fp32 run's bytes on every reduction/gather ring.
func TestPrecisionMatrix(t *testing.T) {
	for _, world := range []int{2, 4} {
		for _, plan := range precisionPlans() {
			if plan.Strategy == fsdp.HybridShard && world%plan.GroupSize != 0 {
				continue
			}
			t.Run(fmt.Sprintf("%s/world=%d", plan.Name(), world), func(t *testing.T) {
				cfg := tinyDistConfig(world, plan)
				cfg.Epochs = 2
				fp, err := PretrainDistributed(cfg, tinyDataset(32))
				if err != nil {
					t.Fatal(err)
				}
				cfg.Precision = BF16
				bf, err := PretrainDistributed(cfg, tinyDataset(32))
				if err != nil {
					t.Fatal(err)
				}
				if bf.Steps != fp.Steps {
					t.Fatalf("steps: bf16 %d, fp32 %d", bf.Steps, fp.Steps)
				}
				if bf.Precision != BF16 {
					t.Fatalf("result precision %v", bf.Precision)
				}
				// (a) the bf16 loss trajectory tracks fp32 within 5e-3.
				for i := range fp.LossCurve.Y {
					if !relClose(bf.LossCurve.Y[i], fp.LossCurve.Y[i], 5e-3) {
						t.Fatalf("bf16 loss diverges at step %d: %v vs fp32 %v",
							i, bf.LossCurve.Y[i], fp.LossCurve.Y[i])
					}
				}
				// (b) bit-identical replicas on every rank.
				dim := opt.FlatDim(bf.Model.Params())
				refW := make([]float32, dim)
				opt.PackValues(refW, bf.Model.Params())
				buf := make([]float32, dim)
				for rank := 1; rank < len(bf.replicas); rank++ {
					opt.PackValues(buf, bf.replicas[rank].Params())
					for j := range buf {
						if math.Float32bits(buf[j]) != math.Float32bits(refW[j]) {
							t.Fatalf("rank %d diverged from rank 0 at flat element %d", rank, j)
						}
					}
				}
				// The working weights really are bf16-valued: rounding
				// them again is the identity.
				for j, w := range refW {
					if r := tensor.F32FromBF16(tensor.BF16FromF32(w)); math.Float32bits(r) != math.Float32bits(w) {
						t.Fatalf("parameter %d (%v) is not bf16-valued", j, w)
					}
				}
				// (c) measured wire bytes equal the dtype-aware
				// simulator accounting exactly.
				steps := float64(bf.Steps)
				checks := []struct {
					name           string
					measured, want float64
				}{
					{"all-reduce", bf.Comm.AllReduce.MeasuredWireBytes, bf.Traffic.AllReduceBytes * steps},
					{"reduce-scatter", bf.Comm.ReduceScatter.MeasuredWireBytes, bf.Traffic.ReduceScatterBytes * steps},
					{"all-gather", bf.Comm.AllGather.MeasuredWireBytes, bf.Traffic.AllGatherBytes * steps},
				}
				for _, c := range checks {
					if c.measured != c.want {
						t.Errorf("%s: measured %v bytes over %v steps, simulator accounts %v",
							c.name, c.measured, steps, c.want)
					}
				}
				// (d) exactly half the fp32 wire volume, op for op.
				halves := []struct {
					name     string
					bf, fp   float64
					expected bool
				}{
					{"all-reduce", bf.Comm.AllReduce.MeasuredWireBytes, fp.Comm.AllReduce.MeasuredWireBytes, true},
					{"reduce-scatter", bf.Comm.ReduceScatter.MeasuredWireBytes, fp.Comm.ReduceScatter.MeasuredWireBytes, true},
					{"all-gather", bf.Comm.AllGather.MeasuredWireBytes, fp.Comm.AllGather.MeasuredWireBytes, true},
				}
				for _, h := range halves {
					if 2*h.bf != h.fp {
						t.Errorf("%s: bf16 moved %v bytes, fp32 %v (want exactly half)", h.name, h.bf, h.fp)
					}
				}
				// The α–β model prices the same halved volume it measures.
				if bf.Comm.AllGather.ModelWireBytes != bf.Comm.AllGather.MeasuredWireBytes {
					t.Errorf("modeled AG bytes %v != measured %v",
						bf.Comm.AllGather.ModelWireBytes, bf.Comm.AllGather.MeasuredWireBytes)
				}
				// No overflow at the default 2¹⁶ scale on this model,
				// and the growth interval (2000) is far away: the scale
				// must end exactly where it started.
				if bf.FinalLossScale != opt.DefaultLossScale || bf.SkippedSteps != 0 || bf.ScaleBackoffs != 0 {
					t.Errorf("unexpected scaler activity: scale %v, skipped %d, backoffs %d",
						bf.FinalLossScale, bf.SkippedSteps, bf.ScaleBackoffs)
				}
			})
		}
	}
}

// TestBF16FullShardMatchesZeRO1Bitwise: the FULL_SHARD≡ZeRO-1
// equivalence must survive the precision change — the bf16 backward
// re-gather restores the exact bf16 working bytes forward ran with, so
// the trajectories are identical, not merely close.
func TestBF16FullShardMatchesZeRO1Bitwise(t *testing.T) {
	mk := func(plan fsdp.Plan) *DistResult {
		cfg := tinyDistConfig(4, plan)
		cfg.Precision = BF16
		res, err := PretrainDistributed(cfg, tinyDataset(64))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero1 := mk(fsdp.BestPractice(fsdp.ShardGradOp, 0))
	full := mk(fsdp.BestPractice(fsdp.FullShard, 0))
	for i := range zero1.LossCurve.Y {
		if full.LossCurve.Y[i] != zero1.LossCurve.Y[i] {
			t.Fatalf("bf16 FULL_SHARD loss differs from ZeRO-1 at step %d: %v vs %v",
				i, full.LossCurve.Y[i], zero1.LossCurve.Y[i])
		}
	}
	dim := opt.FlatDim(zero1.Model.Params())
	a := make([]float32, dim)
	b := make([]float32, dim)
	opt.PackValues(a, zero1.Model.Params())
	opt.PackValues(b, full.Model.Params())
	for j := range a {
		if math.Float32bits(a[j]) != math.Float32bits(b[j]) {
			t.Fatalf("final parameters differ at flat element %d", j)
		}
	}
}

// TestBF16LossScaleBackoff injects an overflow by starting the dynamic
// scale beyond float32 range: the first steps' scaled gradients are
// ±Inf/NaN, so the scaler must skip those updates and back off (halving
// until the scale is finite in float32), after which training proceeds
// and the parameters stay finite. Skipped steps still run the full
// collective schedule, so the measured bytes stay pinned to the
// simulator's accounting even across the backoff window.
func TestBF16LossScaleBackoff(t *testing.T) {
	for _, plan := range []fsdp.Plan{fsdp.DefaultDDP(), fsdp.BestPractice(fsdp.ShardGradOp, 0)} {
		t.Run(plan.Name(), func(t *testing.T) {
			cfg := tinyDistConfig(4, plan)
			cfg.Epochs = 4 // 16 steps: ~6 skip while the scale descends, the rest train
			cfg.Precision = BF16
			cfg.LossScale.Init = 1e40 // float32(1e40) = +Inf → guaranteed overflow
			res, err := PretrainDistributed(cfg, tinyDataset(32))
			if err != nil {
				t.Fatal(err)
			}
			if res.ScaleBackoffs == 0 || res.SkippedSteps == 0 {
				t.Fatalf("no backoff exercised: backoffs %d, skipped %d", res.ScaleBackoffs, res.SkippedSteps)
			}
			if res.SkippedSteps >= res.Steps {
				t.Fatalf("every step skipped (%d of %d): scale never recovered", res.SkippedSteps, res.Steps)
			}
			if res.FinalLossScale >= 1e40 {
				t.Fatalf("scale did not back off: %v", res.FinalLossScale)
			}
			if res.FinalLossScale > math.MaxFloat32 {
				t.Fatalf("final scale %v still overflows float32", res.FinalLossScale)
			}
			w := make([]float32, opt.FlatDim(res.Model.Params()))
			opt.PackValues(w, res.Model.Params())
			if opt.HasNonFinite(w) {
				t.Fatal("non-finite parameters after overflow recovery")
			}
			// Uniform per-step traffic even with skips.
			steps := float64(res.Steps)
			if res.Comm.AllReduce.MeasuredWireBytes != res.Traffic.AllReduceBytes*steps ||
				res.Comm.ReduceScatter.MeasuredWireBytes != res.Traffic.ReduceScatterBytes*steps ||
				res.Comm.AllGather.MeasuredWireBytes != res.Traffic.AllGatherBytes*steps {
				t.Errorf("traffic drifted from simulator across skipped steps: %+v vs %+v × %v",
					res.Comm, res.Traffic, steps)
			}
		})
	}
}

// TestBF16ScaleGrowth: with a short growth interval the scaler doubles
// on schedule — 8 clean steps at interval 2 quadruple-double the scale.
func TestBF16ScaleGrowth(t *testing.T) {
	cfg := tinyDistConfig(2, fsdp.DefaultDDP())
	cfg.Epochs = 2 // 8 steps
	cfg.Precision = BF16
	cfg.LossScale.Interval = 2
	res, err := PretrainDistributed(cfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(opt.DefaultLossScale) * 16 // 8 steps / interval 2 → 4 doublings
	if res.FinalLossScale != want {
		t.Fatalf("final scale %v, want %v", res.FinalLossScale, want)
	}
	if res.SkippedSteps != 0 {
		t.Fatalf("clean run skipped %d steps", res.SkippedSteps)
	}
}

// TestPrecisionValidation: an unknown precision fails fast.
func TestPrecisionValidation(t *testing.T) {
	cfg := tinyDistConfig(2, fsdp.DefaultDDP())
	cfg.Precision = Precision(99)
	if _, err := PretrainDistributed(cfg, tinyDataset(32)); err == nil {
		t.Fatal("unknown precision accepted")
	}
}
