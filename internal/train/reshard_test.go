package train

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fsdp"
)

// syntheticState builds a stamped TrainState with position-distinct
// tensors, as if captured by a run at the given topology.
func syntheticState(dim, world int, plan fsdp.Plan) *TrainState {
	st := &TrainState{
		Step: 12, Epoch: 3, Precision: FP32, AccumSteps: 1,
		World: world, Strategy: plan.Name(),
		Master:  make([]float32, dim),
		OptM:    make([]float32, dim),
		OptV:    make([]float32, dim),
		OptStep: 12,
	}
	for i := range st.Master {
		st.Master[i] = 1 + float32(i)*0.5
		st.OptM[i] = -2 + float32(i)*0.25
		st.OptV[i] = float32(math.Exp(float64(i % 13)))
	}
	return st
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestReshardRoundTrip: re-sharding N→M→N across every strategy pair —
// replicated, zero1, full shard, and hybrid including uneven
// factorizations (group 2 of world 6, group 3 of world 6, …) — returns
// the original tensors bitwise, with the topology stamps following each
// hop.
func TestReshardRoundTrip(t *testing.T) {
	planFor := func(name string, world int) fsdp.Plan {
		switch name {
		case "ddp":
			return fsdp.DefaultDDP()
		case "zero1":
			return fsdp.BestPractice(fsdp.ShardGradOp, 0)
		case "full":
			return fsdp.BestPractice(fsdp.FullShard, 0)
		default: // "hybrid:k"
			k := int(name[len(name)-1] - '0')
			return fsdp.BestPractice(fsdp.HybridShard, k)
		}
	}
	type topo struct {
		world int
		plan  string
	}
	cases := []struct{ from, to topo }{
		{topo{4, "ddp"}, topo{2, "ddp"}},
		{topo{4, "zero1"}, topo{2, "zero1"}},
		{topo{4, "full"}, topo{2, "full"}},
		{topo{4, "hybrid:2"}, topo{2, "hybrid:2"}},
		{topo{8, "hybrid:4"}, topo{6, "hybrid:2"}},
		{topo{6, "hybrid:3"}, topo{6, "hybrid:2"}},
		{topo{8, "full"}, topo{3, "zero1"}},
		{topo{7, "zero1"}, topo{5, "full"}},
		{topo{2, "ddp"}, topo{8, "hybrid:2"}},
		{topo{6, "hybrid:2"}, topo{4, "ddp"}},
	}
	for _, dim := range []int{37, 256} {
		for _, c := range cases {
			fromPlan := planFor(c.from.plan, c.from.world)
			toPlan := planFor(c.to.plan, c.to.world)
			orig := syntheticState(dim, c.from.world, fromPlan)
			mid, err := Reshard(orig, c.to.world, toPlan)
			if err != nil {
				t.Fatalf("dim %d %v→%v: %v", dim, c.from, c.to, err)
			}
			if mid.World != c.to.world || mid.Strategy != toPlan.Name() {
				t.Fatalf("dim %d %v→%v: stamped %d/%s", dim, c.from, c.to, mid.World, mid.Strategy)
			}
			if mid.Step != orig.Step || mid.Epoch != orig.Epoch || mid.OptStep != orig.OptStep {
				t.Fatalf("dim %d %v→%v: progress counters changed", dim, c.from, c.to)
			}
			back, err := Reshard(mid, c.from.world, fromPlan)
			if err != nil {
				t.Fatalf("dim %d %v→%v return: %v", dim, c.from, c.to, err)
			}
			if !bitsEqual(back.Master, orig.Master) || !bitsEqual(back.OptM, orig.OptM) || !bitsEqual(back.OptV, orig.OptV) {
				t.Fatalf("dim %d %v→%v→back: tensors differ", dim, c.from, c.to)
			}
			if back.World != c.from.world || back.Strategy != fromPlan.Name() {
				t.Fatalf("dim %d round trip stamped %d/%s", dim, back.World, back.Strategy)
			}
			// Reshard must not mutate its input.
			if orig.World != c.from.world || orig.Strategy != fromPlan.Name() {
				t.Fatalf("dim %d %v→%v: input state mutated", dim, c.from, c.to)
			}
		}
	}
}

// TestReshardWildcardStamps: a state predating topology stamps (World
// 0) re-shards by restamping alone — the tensors are already canonical.
func TestReshardWildcardStamps(t *testing.T) {
	st := syntheticState(64, 0, fsdp.DefaultDDP())
	st.World, st.Strategy = 0, ""
	out, err := Reshard(st, 4, fsdp.BestPractice(fsdp.HybridShard, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.World != 4 || out.Strategy != "HYBRID_2GPUs" {
		t.Fatalf("stamped %d/%s", out.World, out.Strategy)
	}
	if !bitsEqual(out.Master, st.Master) {
		t.Fatal("tensors changed under a wildcard reshard")
	}
}

// TestReshardZeroPlanDefaults: the zero plan re-shards to the DDP
// default, mirroring PretrainDistributed's plan normalization.
func TestReshardZeroPlanDefaults(t *testing.T) {
	st := syntheticState(16, 2, fsdp.DefaultDDP())
	out, err := Reshard(st, 2, fsdp.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Strategy != "DDP" {
		t.Fatalf("zero plan stamped %q", out.Strategy)
	}
}

// TestReshardValidation: impossible targets and corrupted states fail
// with diagnostics before any data moves.
func TestReshardValidation(t *testing.T) {
	check := func(name string, _ *TrainState, err error, want string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, want)
		}
	}

	_, err := Reshard(nil, 2, fsdp.Plan{})
	check("nil state", nil, err, "nil state")

	st := syntheticState(16, 4, fsdp.DefaultDDP())
	st.OptV = st.OptV[:8]
	_, err = Reshard(st, 2, fsdp.Plan{})
	check("moment mismatch", st, err, "do not match master")

	st = syntheticState(16, 4, fsdp.DefaultDDP())
	st.Strategy = "ZEBRA"
	_, err = Reshard(st, 2, fsdp.Plan{})
	check("unknown stamp", st, err, "unknown plan name")

	st = syntheticState(16, 4, fsdp.DefaultDDP())
	_, err = Reshard(st, 4, fsdp.BestPractice(fsdp.HybridShard, 3))
	check("indivisible hybrid", st, err, "not divisible")

	_, err = Reshard(st, 0, fsdp.Plan{})
	check("non-positive world", st, err, "non-positive rank count")
}
