package train

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/geodata"
)

// ElasticConfig configures fault-tolerant pretraining: the embedded
// DistConfig describes the initial leg (its Fault plan typically armed
// to inject the failure under test), and the shrink fields describe how
// the run continues after a rank dies.
type ElasticConfig struct {
	DistConfig
	// ShrinkTo is the world size the run restarts at after a failure —
	// the N→M shrink (losing a node and continuing on the remainder).
	// 0 keeps the current world size (restart-in-place). BatchSize must
	// stay divisible by it: the global batch, schedule and mask streams
	// are world-invariant, which is what makes the shrunk continuation
	// bitwise-comparable to an uninterrupted ShrinkTo-rank run.
	ShrinkTo int
	// ShrinkPlan optionally switches the sharding strategy on restart
	// (the zero value keeps DistConfig.Plan). The checkpoint is
	// re-sharded for whatever topology the next leg runs.
	ShrinkPlan fsdp.Plan
	// MaxRestarts bounds how many failures the driver absorbs before
	// giving up (≤0 means one).
	MaxRestarts int
}

// ElasticResult reports a fault-tolerant run: the final leg's
// DistResult plus the failure/restart accounting.
type ElasticResult struct {
	*DistResult
	// Failures counts rank deaths absorbed; Checkpoints counts periodic
	// snapshots taken across all legs.
	Failures    int
	Checkpoints int
	// CheckpointSec is the wall-clock spent capturing periodic
	// snapshots; RestartSec the wall-clock spent re-sharding and
	// relaunching after failures; LostWorkSec the wall-clock of training
	// progress discarded — time between the last checkpoint (or leg
	// start) and each failure. These are the executed counterparts of
	// the fsdp.FaultModel overhead terms.
	CheckpointSec float64
	RestartSec    float64
	LostWorkSec   float64
	// Worlds is the world size of every leg launched, first to last.
	Worlds []int
	// Checkpoint is the snapshot the final leg resumed from (nil if no
	// failure occurred and no periodic checkpoint fired). For a killed
	// run this is the re-sharded state — resume an uninterrupted
	// reference run from it to prove the continuation bitwise.
	Checkpoint *TrainState
}

// PretrainElastic runs PretrainDistributed with failure recovery: it
// checkpoints periodically (CheckpointEvery, forced to every epoch if
// unset), and when a leg dies — the armed dist.FaultPlan firing, or any
// rank panic surfacing as dist.ErrAborted — it re-shards the last
// checkpoint for the shrunk world (Reshard, N→M), disarms the fault,
// fast-forwards the data and mask streams through the normal resume
// path, and relaunches. The shrunk continuation trains the exact global
// batch and mask sequence of an uninterrupted ShrinkTo-rank run resumed
// from the same checkpoint, so the two are bitwise identical — the
// headline property the elastic tests hold every strategy × precision
// to.
//
// A failure before the first checkpoint is unrecoverable (there is
// nothing to resume) and returns the leg's error.
func PretrainElastic(cfg ElasticConfig, ds *geodata.Dataset) (*ElasticResult, error) {
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1
	}
	out := &ElasticResult{}
	dcfg := cfg.DistConfig
	if dcfg.CheckpointEvery <= 0 {
		dcfg.CheckpointEvery = 1
	}
	var last *TrainState
	var lastCk time.Time
	userCB := dcfg.OnCheckpoint
	dcfg.OnCheckpoint = func(st *TrainState, wall time.Duration) {
		last = st
		lastCk = time.Now()
		out.Checkpoints++
		out.CheckpointSec += wall.Seconds()
		if userCB != nil {
			userCB(st, wall)
		}
	}
	for restarts := 0; ; restarts++ {
		out.Worlds = append(out.Worlds, dcfg.Ranks)
		lastCk = time.Now()
		res, err := PretrainDistributed(dcfg, ds)
		if err == nil {
			out.DistResult = res
			return out, nil
		}
		if !errors.Is(err, dist.ErrInjectedFault) && !errors.Is(err, dist.ErrAborted) {
			return nil, err
		}
		out.Failures++
		out.LostWorkSec += time.Since(lastCk).Seconds()
		if last == nil {
			return nil, fmt.Errorf("train: rank failure before the first checkpoint, nothing to resume: %w", err)
		}
		if restarts+1 > maxRestarts {
			return nil, fmt.Errorf("train: elastic run failed %d times, giving up: %w", out.Failures, err)
		}
		restartStart := time.Now()
		newRanks := cfg.ShrinkTo
		if newRanks <= 0 {
			newRanks = dcfg.Ranks
		}
		newPlan := dcfg.Plan
		if cfg.ShrinkPlan != (fsdp.Plan{}) {
			newPlan = cfg.ShrinkPlan
		}
		resharded, rerr := Reshard(last, newRanks, newPlan)
		if rerr != nil {
			return nil, fmt.Errorf("train: elastic restart: %w", rerr)
		}
		dcfg.Ranks = newRanks
		dcfg.Plan = newPlan
		dcfg.Resume = resharded
		// The failed rank is gone: disarm the fault and drop skew
		// entries for ranks outside the shrunk world.
		dcfg.Fault = dist.FaultPlan{}
		if len(dcfg.ThrottleSkew) > 0 {
			skew := make(map[int]float64)
			for rk, s := range dcfg.ThrottleSkew {
				if rk < newRanks {
					skew[rk] = s
				}
			}
			dcfg.ThrottleSkew = skew
		}
		last = resharded
		out.Checkpoint = resharded
		out.RestartSec += time.Since(restartStart).Seconds()
	}
}
