package train

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/fsdp"
)

// TestStragglerLockstepCost carries the dist-level lockstep property
// (TestThrottleSkewStraggler) through the full training loop: with one
// rank's collectives throttled ×skew on a congested link, the whole
// run's wall clock must sit at or above skew × the α–β model's total
// collective time — every peer waits for the straggler at every
// synchronous collective — while the unskewed baseline must stay below
// that floor so the cost is actually attributable to the skew.
func TestStragglerLockstepCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const ranks, skew = 4, 4.0
	run := func(skewed bool) *DistResult {
		cfg := tinyDistConfig(ranks, fsdp.DefaultDDP())
		cfg.Epochs = 1
		cfg.MaxStepsPerEpoch = 3
		cfg.Throttle = 1
		cfg.Link = comm.Params{Bandwidth: 4e6, HopLat: 1e-6, Launch: 1e-5}
		if skewed {
			cfg.ThrottleSkew = map[int]float64{ranks - 1: skew}
		}
		res, err := PretrainDistributed(cfg, tinyDataset(32))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	slow := run(true)
	modeled := modeledLoopCommSec(base.Comm)
	if modeled <= 0 {
		t.Fatal("no modeled collective time recorded")
	}
	if slow.WallSec < skew*modeled {
		t.Errorf("skewed wall %.3fs below the lockstep floor %.3fs",
			slow.WallSec, skew*modeled)
	}
	if base.WallSec >= skew*modeled {
		t.Errorf("baseline wall %.3fs already at the skewed floor %.3fs — straggler cost not measurable",
			base.WallSec, skew*modeled)
	}
	if slow.WallSec <= base.WallSec {
		t.Errorf("skewed run (%.3fs) not slower than baseline (%.3fs)", slow.WallSec, base.WallSec)
	}
	// The trajectory is timing-independent: the straggler slows the run
	// but must not change a single loss bit.
	if len(base.LossCurve.Y) != len(slow.LossCurve.Y) {
		t.Fatalf("loss curves differ in length: %d vs %d", len(base.LossCurve.Y), len(slow.LossCurve.Y))
	}
	for i := range base.LossCurve.Y {
		if math.Float64bits(base.LossCurve.Y[i]) != math.Float64bits(slow.LossCurve.Y[i]) {
			t.Fatalf("step %d: straggler changed the loss: %v vs %v", i, base.LossCurve.Y[i], slow.LossCurve.Y[i])
		}
	}
}
