package train

import (
	"fmt"

	"repro/internal/fsdp"
	"repro/internal/opt"
)

// partitionFor returns the flat shard layout a plan executes with at a
// given world size — the same construction PretrainDistributed's ranks
// use: the single ranks-aligned shard of the replicated modes
// (DDP, NO_SHARD, HYBRID_1GPU), or the shard-group partition with
// HYBRID's pad-to-world two-level alignment (align = group·replicas, so
// the replica-group ring over one shard also chunks uniformly).
func partitionFor(plan fsdp.Plan, ranks, dim int) (opt.Partition, error) {
	if ranks < 1 {
		return opt.Partition{}, fmt.Errorf("train: non-positive rank count %d", ranks)
	}
	if err := plan.Validate(ranks); err != nil {
		return opt.Partition{}, fmt.Errorf("train: %w", err)
	}
	mode, group, err := compilePlan(plan, ranks)
	if err != nil {
		return opt.Partition{}, err
	}
	if mode == execReplicated {
		return opt.NewPartition(dim, 1, ranks), nil
	}
	return opt.NewPartition(dim, group, group*(ranks/group)), nil
}

// Reshard remaps a training state captured at one topology (the state's
// World/Strategy stamps) onto another: the N→M step of an elastic
// restart. The state's tensors are cut into the per-rank pieces the old
// layout's owner ranks held (opt.CutShards under the old partition,
// padding clipped), rejoined into the canonical flat buffers
// (opt.JoinShards validates the pieces tile the state exactly), and the
// result is restamped with the new world size and plan so
// PretrainDistributed's resume validation accepts it. States from
// before topology stamps existed (World 0) skip the cut/join and are
// only restamped.
//
// The new plan is validated against the new world (divisibility for
// HYBRID groups, known strategy) before any data moves, so an
// impossible target fails fast. Reshard never mutates its input; the
// returned state is an independent deep copy.
func Reshard(st *TrainState, ranks int, plan fsdp.Plan) (*TrainState, error) {
	if st == nil {
		return nil, fmt.Errorf("train: resharding a nil state")
	}
	dim := len(st.Master)
	if len(st.OptM) != dim || len(st.OptV) != dim {
		return nil, fmt.Errorf("train: state moments (%d/%d values) do not match master (%d)",
			len(st.OptM), len(st.OptV), dim)
	}
	if plan == (fsdp.Plan{}) {
		plan = fsdp.DefaultDDP()
	}
	if plan.Strategy == fsdp.DDP && plan.DDPBucketBytes <= 0 {
		plan.DDPBucketBytes = fsdp.DefaultDDP().DDPBucketBytes
	}
	if _, err := partitionFor(plan, ranks, dim); err != nil {
		return nil, err
	}
	out := st.clone()
	if st.World > 0 && st.Strategy != "" {
		oldPlan, err := fsdp.ParsePlanName(st.Strategy)
		if err != nil {
			return nil, fmt.Errorf("train: resharding: %w", err)
		}
		oldPart, err := partitionFor(oldPlan, st.World, dim)
		if err != nil {
			return nil, fmt.Errorf("train: resharding from world %d %s: %w", st.World, st.Strategy, err)
		}
		shards, err := opt.CutShards(oldPart, st.Master, st.OptM, st.OptV)
		if err != nil {
			return nil, fmt.Errorf("train: resharding: %w", err)
		}
		out.Master, out.OptM, out.OptV, err = opt.JoinShards(shards)
		if err != nil {
			return nil, fmt.Errorf("train: resharding: %w", err)
		}
	}
	out.World = ranks
	out.Strategy = plan.Name()
	return out, nil
}
