package train

import "fmt"

// Precision selects the numeric format of a distributed training run —
// the axis the paper's AMP-style recipe adds on top of the strategy
// matrix: bf16 math and communication over fp32 master weights and
// optimizer state (14 bytes of state per parameter, the figure
// internal/perfmodel.MixedPrecision prices).
type Precision int

const (
	// FP32 is full single precision: parameters, gradients and every
	// collective payload are float32. The default.
	FP32 Precision = iota
	// BF16 is the executed mixed-precision mode: the model computes on
	// bf16-valued working weights, gradient reductions and parameter
	// gathers move bf16 (uint16) payloads — exactly half the wire bytes
	// — while AdamW updates fp32 master weights, guarded by dynamic
	// loss scaling with overflow skip and backoff.
	BF16
)

// String names the precision the way the CLI spells it.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case BF16:
		return "bf16"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// WireBytes returns the bytes one gradient/parameter element occupies
// on the collective wire — the dtype width fsdp.TrafficPerStep prices.
func (p Precision) WireBytes() int {
	if p == BF16 {
		return 2
	}
	return 4
}

// valid reports whether p is a known precision.
func (p Precision) valid() bool { return p == FP32 || p == BF16 }

// LossScaleConfig tunes dynamic loss scaling for BF16 runs (ignored
// under FP32). Zero fields take the opt package defaults: initial scale
// 2¹⁶, growth ×2 after 2000 clean steps, backoff ×0.5 on overflow —
// powers of two throughout, so scaling shifts exponents without
// perturbing bf16 rounding. Tests inject an overflow by setting Init
// beyond float32 range, which forces the first steps to skip and the
// scale to back off.
type LossScaleConfig struct {
	Init     float64
	Growth   float64
	Backoff  float64
	Interval int
}
