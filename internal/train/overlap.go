package train

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/mae"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// This file implements executed communication–computation overlap: the
// flat gradient space is split into wire buckets, the layer-granular
// backward (mae.BackwardStepLayers) reports each unit's gradients the
// moment they are final, and the engine launches the covering buckets'
// collectives on internal/dist's async issue queues while the
// remaining layers keep computing — FSDP's per-unit overlapped
// reduce-scatter, executed. With Overlap off the identical operations
// run at the identical points but are waited immediately, so the two
// schedules are bit-for-bit the same trajectory and move exactly the
// same bytes; only wall-clock (and its compute/exposed-comm
// decomposition) differs.

// gradBucket is one wire bucket of the padded flat gradient.
type gradBucket struct {
	span  opt.Span // flat range [Lo, Hi), a multiple of the world size long
	piece opt.Span // this rank's owned chunk of the bucket (sharded modes)
	off   int      // piece offset in shard-local coordinates
}

// makeBuckets tiles [0, padded) with spans of bucketElems (the last
// may be shorter; all lengths stay multiples of the alignment since
// both padded and bucketElems are).
func makeBuckets(padded, bucketElems int) []opt.Span {
	var spans []opt.Span
	for off := 0; off < padded; off += bucketElems {
		end := off + bucketElems
		if end > padded {
			end = padded
		}
		spans = append(spans, opt.Span{Lo: off, Hi: end})
	}
	return spans
}

// bucketElemsFor resolves the gradient bucket size in flat elements,
// rounded to a multiple of the world size so every bucket ring-chunks
// uniformly at both communicator levels. Precedence: an explicit
// DistConfig.BucketBytes covers every strategy; otherwise DDP keeps
// its plan-level bucket size (wire bytes, so bf16 buckets hold twice
// the elements) and the sharded strategies default to one whole-buffer
// bucket — the pre-overlap schedule.
func bucketElemsFor(bucketBytes int, ddpBucketBytes float64, isDDP bool, wireBytes, n, padded int) int {
	elems := padded
	switch {
	case bucketBytes > 0:
		elems = bucketBytes / wireBytes / n * n
	case isDDP && n > 1:
		elems = int(ddpBucketBytes) / wireBytes / n * n
	}
	if elems < n {
		elems = n
	}
	return elems
}

// phaseTimer decomposes rank 0's step wall-clock: time spent blocked
// inside per-step collectives (or waiting on their handles) is exposed
// communication; the rest of the loop is compute (+ input pipeline).
// Ranks other than 0 carry a nil timer.
type phaseTimer struct {
	exposed time.Duration
}

func (t *phaseTimer) comm(f func()) {
	if t == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	t.exposed += time.Since(t0)
}

// syncEngine drives one rank's per-step gradient synchronization:
// bucket launches during backward, the wait barrier before
// clipping/optimizer, and the parameter all-gathers after it.
type syncEngine struct {
	r       *dist.Rank
	mode    execMode
	bf16    bool
	overlap bool

	gradGroup *dist.Group // collective group for gradient buckets (world for replicated, shard group otherwise)
	replGroup *dist.Group // HYBRID replica-dimension all-reduce (nil otherwise)

	buckets  []gradBucket
	spans    []opt.Span // owned pieces, ascending (sharded modes)
	shardLen int

	params []*nn.Param
	flatG  []float32
	wire   []uint16 // bf16 wire scratch (nil under fp32)

	segStart []int // flat frontier after each backward segment

	// timer is rank 0's exposed-communication stopwatch (nil on other
	// ranks); wired at construction so even collectives issued before
	// the first beginStep — the resharded schedule's first backward
	// re-gather — are accounted.
	timer *phaseTimer

	// per-step state
	gScale     float32
	scaleGrads bool
	next       int
	handles    []*dist.Handle
}

// newSyncEngine builds the bucket layout and validates the model's
// backward-segment contract against the flat packing order.
func newSyncEngine(r *dist.Rank, model *mae.Model, params []*nn.Param,
	mode execMode, bf16, overlap bool,
	gradGroup, replGroup *dist.Group, group int,
	flatG []float32, wire []uint16, timer *phaseTimer, bucketElems int) (*syncEngine, error) {

	padded := len(flatG)
	e := &syncEngine{
		r: r, mode: mode, bf16: bf16, overlap: overlap,
		gradGroup: gradGroup, replGroup: replGroup,
		params: params, flatG: flatG, wire: wire, timer: timer,
	}
	for _, sp := range makeBuckets(padded, bucketElems) {
		b := gradBucket{span: sp}
		if mode != execReplicated {
			cl := sp.Len() / group
			idx := gradGroup.RankOf(r)
			b.piece = opt.Span{Lo: sp.Lo + idx*cl, Hi: sp.Lo + (idx+1)*cl}
			b.off = e.shardLen
			e.shardLen += cl
			e.spans = append(e.spans, b.piece)
		}
		e.buckets = append(e.buckets, b)
	}

	// Map backward segments onto the flat space: completion events walk
	// the frontier down from dim to 0, so each segment must sit
	// immediately below its predecessor.
	dim := opt.FlatDim(params)
	offs := make(map[*nn.Param]int, len(params))
	off := 0
	for _, p := range params {
		offs[p] = off
		off += p.NumEl()
	}
	cursor := dim
	for k, seg := range model.BackwardSegments() {
		lo, total := cursor, 0
		for _, p := range seg {
			po, ok := offs[p]
			if !ok {
				return nil, fmt.Errorf("train: backward segment %d holds an unknown parameter %q", k, p.Name)
			}
			if po < lo {
				lo = po
			}
			total += p.NumEl()
		}
		if lo+total != cursor {
			return nil, fmt.Errorf("train: backward segment %d covers [%d, %d), not contiguous below frontier %d",
				k, lo, lo+total, cursor)
		}
		e.segStart = append(e.segStart, lo)
		cursor = lo
	}
	if cursor != 0 {
		return nil, fmt.Errorf("train: backward segments leave [0, %d) uncovered", cursor)
	}
	return e, nil
}

// beginStep arms the engine for one optimizer step's backward pass.
// gScale (applied to each packed bucket when scaleGrads) folds the
// 1/(world·accum) gradient averaging and, under bf16, the loss scale.
func (e *syncEngine) beginStep(gScale float32, scaleGrads bool) {
	e.gScale = gScale
	e.scaleGrads = scaleGrads
	e.next = len(e.buckets) - 1
	e.handles = e.handles[:0]
}

// onSegment is the mae.BackwardStepLayers callback: segment k's
// gradients are final, so every bucket lying entirely above the new
// frontier launches now.
func (e *syncEngine) onSegment(k int) {
	f := e.segStart[k]
	for e.next >= 0 && e.buckets[e.next].span.Lo >= f {
		e.launch(e.buckets[e.next])
		e.next--
	}
}

// launch packs, scales and issues one bucket's gradient collective(s):
// an all-reduce for the replicated schedule, a shard-group
// reduce-scatter (chained into a replica-group all-reduce under
// HYBRID) for the sharded ones — over the bf16 wire when the run is
// mixed-precision. With Overlap off the handle is waited immediately
// (the synchronous schedule); either way completion order and
// arithmetic are identical.
func (e *syncEngine) launch(b gradBucket) {
	sp := b.span
	view := e.flatG[sp.Lo:sp.Hi]
	opt.PackGradsSpan(e.flatG, e.params, sp.Lo, sp.Hi)
	if e.scaleGrads {
		tensor.Scale(view, view, e.gScale)
	}
	var h *dist.Handle
	switch {
	case e.mode == execReplicated && !e.bf16:
		h = e.gradGroup.AllReduceAsync(e.r, view)
	case e.mode == execReplicated && e.bf16:
		h = e.gradGroup.AllReduceBF16Async(e.r, view, e.wire[sp.Lo:sp.Hi])
	case !e.bf16:
		h = e.gradGroup.ReduceScatterAsync(e.r, view)
		if e.replGroup != nil {
			h = e.replGroup.AllReduceAsyncAfter(e.r, e.flatG[b.piece.Lo:b.piece.Hi], h)
		}
	default:
		h = e.gradGroup.ReduceScatterBF16Async(e.r, view, e.wire[sp.Lo:sp.Hi])
		if e.replGroup != nil {
			h = e.replGroup.AllReduceBF16AsyncAfter(e.r,
				e.flatG[b.piece.Lo:b.piece.Hi], e.wire[b.piece.Lo:b.piece.Hi], h)
		}
	}
	if !e.overlap {
		e.timer.comm(func() { h.Wait() })
	}
	e.handles = append(e.handles, h)
}

// finishBackward flushes and waits every in-flight bucket — the
// barrier before overflow detection, clipping and the optimizer. The
// frontier reaching 0 guarantees flushing is a no-op; it is kept as a
// safety net for a segment contract violation.
func (e *syncEngine) finishBackward() {
	for e.next >= 0 {
		e.launch(e.buckets[e.next])
		e.next--
	}
	e.timer.comm(func() {
		for _, h := range e.handles {
			h.Wait()
		}
	})
}

// gatherShard assembles the rank's reduced gradient shard (its owned
// piece of every bucket) into the contiguous dst.
func (e *syncEngine) gatherShard(dst []float32) {
	opt.GatherSpans(dst, e.flatG, e.spans)
}

// allGatherParams re-assembles the updated flat parameters bucket by
// bucket — the post-optimizer all-gather of the sharded schedules
// (doubling as the next forward's eager parameter gather), and the
// FULL_SHARD backward re-gather.
func (e *syncEngine) allGatherParams(flatW []float32) {
	e.timer.comm(func() {
		for _, b := range e.buckets {
			if e.bf16 {
				e.gradGroup.AllGatherBF16(e.r, flatW[b.span.Lo:b.span.Hi], nil, e.wire[b.span.Lo:b.span.Hi])
			} else {
				e.gradGroup.AllGather(e.r, flatW[b.span.Lo:b.span.Hi], nil)
			}
		}
	})
}

// gatherSpansClipped and scatterSpansClipped move between the
// shard-local contiguous layout and the unpadded flat checkpoint
// tensors: each span is clipped at dim so the zero-valued pad tail
// never leaves (or enters) the state.
func gatherSpansClipped(dst, src []float32, spans []opt.Span, dim int) {
	off := 0
	for _, sp := range spans {
		if e := min(sp.Hi, dim); sp.Lo < e {
			copy(dst[off:off+e-sp.Lo], src[sp.Lo:e])
		}
		off += sp.Len()
	}
}

func scatterSpansClipped(dst, src []float32, spans []opt.Span, dim int) {
	off := 0
	for _, sp := range spans {
		if e := min(sp.Hi, dim); sp.Lo < e {
			copy(dst[sp.Lo:e], src[off:off+e-sp.Lo])
		}
		off += sp.Len()
	}
}
