package train

import (
	"fmt"
	"testing"

	"repro/internal/fsdp"
)

// BenchmarkDistStep measures whole training steps per second versus
// world size and precision at a fixed global batch (strong scaling of
// the in-process execution layer, fp32 against the bf16 wire mode).
// Recorded into BENCH_dist.json by `make bench-dist` for the cross-PR
// perf trajectory.
func BenchmarkDistStep(b *testing.B) {
	for _, prec := range []Precision{FP32, BF16} {
		for _, ranks := range []int{1, 2, 4} {
			for _, plan := range []fsdp.Plan{
				fsdp.DefaultDDP(),
				fsdp.BestPractice(fsdp.ShardGradOp, 0),
				fsdp.BestPractice(fsdp.FullShard, 0),
				fsdp.BestPractice(fsdp.HybridShard, 2),
			} {
				if plan.Strategy == fsdp.HybridShard && ranks%plan.GroupSize != 0 {
					continue // the hybrid tiling needs the group to divide the world
				}
				b.Run(fmt.Sprintf("%s/ranks=%d/prec=%s", plan.Name(), ranks, prec), func(b *testing.B) {
					cfg := tinyDistConfig(ranks, plan)
					cfg.Precision = prec
					cfg.BatchSize = 16
					cfg.Epochs = 1
					cfg.MaxStepsPerEpoch = b.N
					ds := tinyDataset(16 * (b.N + 1))
					b.ResetTimer()
					res, err := PretrainDistributed(cfg, ds)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if res.Steps != b.N {
						b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
					}
					b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "steps/s")
					b.ReportMetric(res.ImagesPerSec, "images/s")
					b.ReportMetric(res.Traffic.Total(), "wireB/step")
				})
			}
		}
	}
}
