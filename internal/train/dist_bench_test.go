package train

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/fsdp"
)

// BenchmarkDistStep measures whole training steps per second versus
// world size and precision at a fixed global batch (strong scaling of
// the in-process execution layer, fp32 against the bf16 wire mode).
// Recorded into BENCH_dist.json by `make bench-dist` for the cross-PR
// perf trajectory.
func BenchmarkDistStep(b *testing.B) {
	for _, prec := range []Precision{FP32, BF16} {
		for _, ranks := range []int{1, 2, 4} {
			for _, plan := range []fsdp.Plan{
				fsdp.DefaultDDP(),
				fsdp.BestPractice(fsdp.ShardGradOp, 0),
				fsdp.BestPractice(fsdp.FullShard, 0),
				fsdp.BestPractice(fsdp.HybridShard, 2),
			} {
				if plan.Strategy == fsdp.HybridShard && ranks%plan.GroupSize != 0 {
					continue // the hybrid tiling needs the group to divide the world
				}
				b.Run(fmt.Sprintf("%s/ranks=%d/prec=%s", plan.Name(), ranks, prec), func(b *testing.B) {
					cfg := tinyDistConfig(ranks, plan)
					cfg.Precision = prec
					cfg.BatchSize = 16
					cfg.Epochs = 1
					cfg.MaxStepsPerEpoch = b.N
					ds := tinyDataset(16 * (b.N + 1))
					b.ResetTimer()
					res, err := PretrainDistributed(cfg, ds)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if res.Steps != b.N {
						b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
					}
					b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "steps/s")
					b.ReportMetric(res.ImagesPerSec, "images/s")
					b.ReportMetric(res.Traffic.Total(), "wireB/step")
				})
			}
		}
	}
}

// BenchmarkDistStepOverlap measures the hidden-latency win on a
// congested simulated link (dist throttle realizes the α–β collective
// cost as executed delay): the 8-rank DDP step with overlap on versus
// off, at accumulation windows 1 and 4. The exposed_ms/step metric is
// the per-step communication time rank 0 actually spent stalled — with
// overlap on it must sit strictly below the synchronous path's
// (asserted by TestOverlapHidesExposedCommOnCongestedLink; recorded
// here into BENCH_dist.json by `make bench-dist`).
func BenchmarkDistStepOverlap(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		for _, accum := range []int{1, 4} {
			b.Run(fmt.Sprintf("overlap=%v/accum=%d", overlap, accum), func(b *testing.B) {
				// Inside the sub-benchmark: the testing framework pins
				// GOMAXPROCS per run (-cpu), so the comm-stream head
				// room must be claimed here, not in the parent.
				defer runtime.GOMAXPROCS(withCommProcs(8))
				cfg, _ := overlapBenchConfig(overlap, accum)
				cfg.MaxStepsPerEpoch = b.N
				ds := tinyDatasetSized(cfg.BatchSize*accum*(b.N+1), cfg.MAE.Encoder.ImageSize)
				b.ResetTimer()
				res, err := PretrainDistributed(cfg, ds)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if res.Steps != b.N {
					b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
				}
				br := res.Breakdown("exec")
				b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "steps/s")
				b.ReportMetric(1e3*br.ExposedStepSec(), "exposed_ms/step")
				b.ReportMetric(1e3*br.StepSec(), "wall_ms/step")
				b.ReportMetric(res.Traffic.Total(), "wireB/step")
			})
		}
	}
}

// modeledLoopCommSec sums the α–β model's time over the collectives
// DDP issues inside the timed training loop (gradient all-reduce plus
// the scalar loss average). Broadcast is excluded: under DDP it fires
// once for the initial parameter sync, before the WallSec clock starts.
func modeledLoopCommSec(s dist.Stats) float64 {
	return s.AllReduce.ModelTime + s.ReduceScatter.ModelTime + s.AllGather.ModelTime +
		s.Scalar.ModelTime
}

// BenchmarkDistStepStraggler measures the synchronous-lockstep cost of
// one slow rank: a 4-rank DDP step on a congested throttled link with
// the last rank's collectives skewed ×1 (baseline) and ×4. Every peer
// waits for the straggler, so wall_ms/step must sit at or above
// pred_lockstep_ms/step = skew × the α–β model's per-step collective
// time (asserted by TestStragglerLockstepCost; recorded here into
// BENCH_dist.json by `make bench-dist`).
func BenchmarkDistStepStraggler(b *testing.B) {
	const ranks = 4
	for _, skew := range []float64{1, 4} {
		b.Run(fmt.Sprintf("skew=%g", skew), func(b *testing.B) {
			cfg := tinyDistConfig(ranks, fsdp.DefaultDDP())
			cfg.Epochs = 1
			cfg.MaxStepsPerEpoch = b.N
			cfg.Throttle = 1
			cfg.Link = comm.Params{Bandwidth: 4e6, HopLat: 1e-6, Launch: 1e-5}
			if skew > 1 {
				cfg.ThrottleSkew = map[int]float64{ranks - 1: skew}
			}
			ds := tinyDataset(cfg.BatchSize * (b.N + 1))
			b.ResetTimer()
			res, err := PretrainDistributed(cfg, ds)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.Steps != b.N {
				b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
			}
			steps := float64(res.Steps)
			b.ReportMetric(1e3*res.WallSec/steps, "wall_ms/step")
			b.ReportMetric(1e3*skew*modeledLoopCommSec(res.Comm)/steps, "pred_lockstep_ms/step")
		})
	}
}

// BenchmarkElasticRestart measures the executed fault-tolerance costs
// the fsdp.FaultModel prices: per-checkpoint capture time, per-failure
// restart (re-shard + relaunch bookkeeping) and lost work, from a
// 4-rank hybrid run killed mid-epoch 3 and shrunk to 2 ranks. Recorded
// into BENCH_dist.json by `make bench-dist`.
func BenchmarkElasticRestart(b *testing.B) {
	plan := fsdp.BestPractice(fsdp.HybridShard, 2)
	base := tinyDistConfig(4, plan)
	base.Epochs = 4
	probe := base
	probe.StopAfterEpoch = 2
	p, err := PretrainDistributed(probe, tinyDataset(32))
	if err != nil {
		b.Fatal(err)
	}
	killAt := p.CollectiveCalls + p.CollectiveCalls/4
	var ckSec, rsSec, lostSec float64
	var cks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecfg := ElasticConfig{DistConfig: base, ShrinkTo: 2}
		ecfg.CheckpointEvery = 1
		ecfg.Fault = dist.FaultPlan{Rank: 1, Call: killAt}
		e, err := PretrainElastic(ecfg, tinyDataset(32))
		if err != nil {
			b.Fatal(err)
		}
		if e.Failures != 1 {
			b.Fatalf("expected one injected failure, got %d", e.Failures)
		}
		ckSec += e.CheckpointSec
		rsSec += e.RestartSec
		lostSec += e.LostWorkSec
		cks += e.Checkpoints
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(1e3*ckSec/float64(cks), "ckpt_ms")
	b.ReportMetric(1e3*rsSec/n, "restart_ms")
	b.ReportMetric(1e3*lostSec/n, "lostwork_ms")
}
