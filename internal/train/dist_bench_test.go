package train

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fsdp"
)

// BenchmarkDistStep measures whole training steps per second versus
// world size and precision at a fixed global batch (strong scaling of
// the in-process execution layer, fp32 against the bf16 wire mode).
// Recorded into BENCH_dist.json by `make bench-dist` for the cross-PR
// perf trajectory.
func BenchmarkDistStep(b *testing.B) {
	for _, prec := range []Precision{FP32, BF16} {
		for _, ranks := range []int{1, 2, 4} {
			for _, plan := range []fsdp.Plan{
				fsdp.DefaultDDP(),
				fsdp.BestPractice(fsdp.ShardGradOp, 0),
				fsdp.BestPractice(fsdp.FullShard, 0),
				fsdp.BestPractice(fsdp.HybridShard, 2),
			} {
				if plan.Strategy == fsdp.HybridShard && ranks%plan.GroupSize != 0 {
					continue // the hybrid tiling needs the group to divide the world
				}
				b.Run(fmt.Sprintf("%s/ranks=%d/prec=%s", plan.Name(), ranks, prec), func(b *testing.B) {
					cfg := tinyDistConfig(ranks, plan)
					cfg.Precision = prec
					cfg.BatchSize = 16
					cfg.Epochs = 1
					cfg.MaxStepsPerEpoch = b.N
					ds := tinyDataset(16 * (b.N + 1))
					b.ResetTimer()
					res, err := PretrainDistributed(cfg, ds)
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					if res.Steps != b.N {
						b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
					}
					b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "steps/s")
					b.ReportMetric(res.ImagesPerSec, "images/s")
					b.ReportMetric(res.Traffic.Total(), "wireB/step")
				})
			}
		}
	}
}

// BenchmarkDistStepOverlap measures the hidden-latency win on a
// congested simulated link (dist throttle realizes the α–β collective
// cost as executed delay): the 8-rank DDP step with overlap on versus
// off, at accumulation windows 1 and 4. The exposed_ms/step metric is
// the per-step communication time rank 0 actually spent stalled — with
// overlap on it must sit strictly below the synchronous path's
// (asserted by TestOverlapHidesExposedCommOnCongestedLink; recorded
// here into BENCH_dist.json by `make bench-dist`).
func BenchmarkDistStepOverlap(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		for _, accum := range []int{1, 4} {
			b.Run(fmt.Sprintf("overlap=%v/accum=%d", overlap, accum), func(b *testing.B) {
				// Inside the sub-benchmark: the testing framework pins
				// GOMAXPROCS per run (-cpu), so the comm-stream head
				// room must be claimed here, not in the parent.
				defer runtime.GOMAXPROCS(withCommProcs(8))
				cfg, _ := overlapBenchConfig(overlap, accum)
				cfg.MaxStepsPerEpoch = b.N
				ds := tinyDatasetSized(cfg.BatchSize*accum*(b.N+1), cfg.MAE.Encoder.ImageSize)
				b.ResetTimer()
				res, err := PretrainDistributed(cfg, ds)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if res.Steps != b.N {
					b.Fatalf("ran %d steps for b.N=%d", res.Steps, b.N)
				}
				br := res.Breakdown("exec")
				b.ReportMetric(float64(res.Steps)/b.Elapsed().Seconds(), "steps/s")
				b.ReportMetric(1e3*br.ExposedStepSec(), "exposed_ms/step")
				b.ReportMetric(1e3*br.StepSec(), "wall_ms/step")
				b.ReportMetric(res.Traffic.Total(), "wireB/step")
			})
		}
	}
}
