package train

import (
	"math"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/opt"
)

func tinyDistConfig(ranks int, plan fsdp.Plan) DistConfig {
	return DistConfig{
		PretrainConfig: PretrainConfig{
			MAE:          tinyMAE(),
			BatchSize:    8, // global; split across ranks
			Epochs:       3,
			BaseLR:       0.02,
			WeightDecay:  0.05,
			WarmupEpochs: 1,
			ClipNorm:     5,
			Workers:      2,
			Seed:         3,
		},
		Ranks: ranks,
		Plan:  plan,
	}
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestDistributedMatchesSingleRank is the acceptance bar of the
// distributed layer: a 4-rank DDP run must reproduce the single-rank
// Pretrain loss trajectory — same data order, same masks, gradients
// averaged to the same global mean — with the final loss within 1e-4.
func TestDistributedMatchesSingleRank(t *testing.T) {
	dcfg := tinyDistConfig(4, fsdp.DefaultDDP())
	ref, err := Pretrain(dcfg.PretrainConfig, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	got, err := PretrainDistributed(dcfg, tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	if got.Steps != ref.Steps {
		t.Fatalf("steps: distributed %d, single-rank %d", got.Steps, ref.Steps)
	}
	if len(got.LossCurve.Y) != len(ref.LossCurve.Y) {
		t.Fatalf("curve lengths differ: %d vs %d", len(got.LossCurve.Y), len(ref.LossCurve.Y))
	}
	for i := range ref.LossCurve.Y {
		if !relClose(got.LossCurve.Y[i], ref.LossCurve.Y[i], 1e-4) {
			t.Fatalf("loss diverges at step %d: distributed %v, single-rank %v",
				i, got.LossCurve.Y[i], ref.LossCurve.Y[i])
		}
	}
	if !relClose(got.LossCurve.Last(), ref.LossCurve.Last(), 1e-4) {
		t.Fatalf("final loss: distributed %v, single-rank %v", got.LossCurve.Last(), ref.LossCurve.Last())
	}
}

// TestZeRO1MatchesDDP: the sharded-optimizer path must train the same
// trajectory as the replicated path (the reduced gradient chunks are
// identical; only clip-norm accumulation order differs).
func TestZeRO1MatchesDDP(t *testing.T) {
	ddp, err := PretrainDistributed(tinyDistConfig(4, fsdp.DefaultDDP()), tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	zero1, err := PretrainDistributed(tinyDistConfig(4, fsdp.BestPractice(fsdp.ShardGradOp, 0)), tinyDataset(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ddp.LossCurve.Y {
		if !relClose(zero1.LossCurve.Y[i], ddp.LossCurve.Y[i], 1e-4) {
			t.Fatalf("ZeRO-1 diverges from DDP at step %d: %v vs %v",
				i, zero1.LossCurve.Y[i], ddp.LossCurve.Y[i])
		}
	}
}

// TestReplicasStayIdentical: after training, every rank must hold
// bit-identical parameters — the invariant the collectives guarantee.
func TestReplicasStayIdentical(t *testing.T) {
	for _, plan := range []fsdp.Plan{fsdp.DefaultDDP(), fsdp.BestPractice(fsdp.ShardGradOp, 0)} {
		res, err := PretrainDistributed(tinyDistConfig(4, plan), tinyDataset(64))
		if err != nil {
			t.Fatal(err)
		}
		dim := opt.FlatDim(res.Model.Params())
		ref := make([]float32, dim)
		opt.PackValues(ref, res.Model.Params())
		for rank := 1; rank < len(res.replicas); rank++ {
			buf := make([]float32, dim)
			opt.PackValues(buf, res.replicas[rank].Params())
			for j := range buf {
				if buf[j] != ref[j] {
					t.Fatalf("%s: rank %d diverged from rank 0 at flat element %d", plan.Name(), rank, j)
				}
			}
		}
	}
}

// TestDistTrafficMatchesSimulator pins the executed per-step collective
// bytes to fsdp.TrafficPerStep — the acceptance criterion that the real
// execution and the Section IV simulator account the same traffic.
func TestDistTrafficMatchesSimulator(t *testing.T) {
	for _, plan := range []fsdp.Plan{fsdp.DefaultDDP(), fsdp.BestPractice(fsdp.ShardGradOp, 0)} {
		cfg := tinyDistConfig(2, plan)
		cfg.Epochs = 2
		res, err := PretrainDistributed(cfg, tinyDataset(32))
		if err != nil {
			t.Fatal(err)
		}
		steps := float64(res.Steps)
		if steps == 0 {
			t.Fatal("no steps")
		}
		checks := []struct {
			name           string
			measured, want float64
		}{
			{"all-reduce", res.Comm.AllReduce.MeasuredWireBytes, res.Traffic.AllReduceBytes * steps},
			{"reduce-scatter", res.Comm.ReduceScatter.MeasuredWireBytes, res.Traffic.ReduceScatterBytes * steps},
			{"all-gather", res.Comm.AllGather.MeasuredWireBytes, res.Traffic.AllGatherBytes * steps},
		}
		for _, c := range checks {
			if c.measured != c.want {
				t.Errorf("%s %s: measured %v bytes over %v steps, simulator accounts %v",
					plan.Name(), c.name, c.measured, steps, c.want)
			}
		}
		// The α–β model prices the identical byte volume.
		if res.Comm.AllReduce.ModelWireBytes != res.Comm.AllReduce.MeasuredWireBytes {
			t.Errorf("%s: modeled AR bytes %v != measured %v",
				plan.Name(), res.Comm.AllReduce.ModelWireBytes, res.Comm.AllReduce.MeasuredWireBytes)
		}
		// Init broadcast: one call, full parameter payload.
		if res.Comm.Broadcast.Calls != 1 {
			t.Errorf("%s: broadcast calls %d", plan.Name(), res.Comm.Broadcast.Calls)
		}
		wantB := float64(4 * opt.FlatDim(res.Model.Params()))
		if res.Comm.Broadcast.MeasuredWireBytes != wantB {
			t.Errorf("%s: broadcast bytes %v want %v", plan.Name(), res.Comm.Broadcast.MeasuredWireBytes, wantB)
		}
	}
}

// TestSingleRankDistributedMatchesPretrain: the degenerate world runs
// the very same arithmetic as Pretrain (collectives are no-ops), so the
// curves must match bit-for-bit.
func TestSingleRankDistributedMatchesPretrain(t *testing.T) {
	dcfg := tinyDistConfig(1, fsdp.DefaultDDP())
	ref, err := Pretrain(dcfg.PretrainConfig, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	got, err := PretrainDistributed(dcfg, tinyDataset(32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.LossCurve.Y {
		if got.LossCurve.Y[i] != ref.LossCurve.Y[i] {
			t.Fatalf("1-rank distributed differs from Pretrain at step %d: %v vs %v",
				i, got.LossCurve.Y[i], ref.LossCurve.Y[i])
		}
	}
	if got.Traffic.Total() != 0 || got.Comm.AllReduce.MeasuredWireBytes != 0 {
		t.Fatalf("1-rank world moved bytes: %+v", got.Traffic)
	}
}

// TestDistributedRejectsInvalidPlans: configurations the executor
// cannot honor fail fast before any rank spawns.
func TestDistributedRejectsInvalidPlans(t *testing.T) {
	// A hybrid group that does not divide the world.
	if _, err := PretrainDistributed(tinyDistConfig(4, fsdp.BestPractice(fsdp.HybridShard, 3)), tinyDataset(64)); err == nil {
		t.Error("HYBRID_3GPUs on 4 ranks: expected an error")
	}
	// A non-positive hybrid group.
	if _, err := PretrainDistributed(tinyDistConfig(4, fsdp.Plan{Strategy: fsdp.HybridShard}), tinyDataset(64)); err == nil {
		t.Error("HYBRID with zero group: expected an error")
	}
	// An unknown strategy value.
	if _, err := PretrainDistributed(tinyDistConfig(4, fsdp.Plan{Strategy: fsdp.Strategy(99)}), tinyDataset(64)); err == nil {
		t.Error("unknown strategy: expected an error")
	}
	// Batch not divisible by ranks.
	cfg := tinyDistConfig(3, fsdp.DefaultDDP())
	if _, err := PretrainDistributed(cfg, tinyDataset(64)); err == nil {
		t.Error("expected error for 8 % 3 != 0")
	}
}
