package train

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/dataload"
	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// DistConfig configures real multi-rank pretraining over internal/dist.
// The embedded PretrainConfig is interpreted globally: BatchSize is the
// global batch (split evenly across ranks), and the learning-rate
// schedule, epochs and clipping act exactly as in the single-rank
// Pretrain — an N-rank run reproduces the single-rank loss trajectory
// up to the floating-point reassociation of the ring reductions.
type DistConfig struct {
	PretrainConfig
	// Ranks is the data-parallel world size (in-process goroutine
	// ranks). BatchSize must divide evenly by Ranks.
	Ranks int
	// Plan selects the gradient/optimizer synchronization strategy —
	// the full Section III-C matrix executes:
	//
	//	DDP, NO_SHARD, HYBRID_1GPU — replicated optimizer; gradients
	//	    all-reduced (DDP in fixed-size buckets of DDPBucketBytes)
	//	SHARD_GRAD_OP — ZeRO-1: gradients reduce-scattered, AdamW state
	//	    sharded per rank, updated parameters all-gathered
	//	FULL_SHARD — ZeRO-3-style: parameters additionally resharded
	//	    after forward and re-gathered in backward
	//	HYBRID_kGPUs (k>1) — FULL_SHARD inside k-rank shard groups,
	//	    gradient-shard all-reduce across the world/k replica groups
	//
	// The zero value defaults to fsdp.DefaultDDP().
	Plan fsdp.Plan
	// Precision selects the numeric mode, orthogonal to Plan: FP32 (the
	// zero value) runs everything in float32; BF16 executes the paper's
	// AMP-style recipe — bf16 working weights and bf16 collective
	// payloads (half the wire bytes) over fp32 master weights and Adam
	// state, with dynamic loss scaling.
	Precision Precision
	// Overlap launches each gradient bucket's collective the moment the
	// layer-granular backward finalizes its range, on internal/dist's
	// async issue queues, and waits on all handles only before
	// clipping/optimizer — the executed form of FSDP hiding collective
	// latency behind backward compute. Overlap on and off run the
	// identical operations in the identical issue order, so they are
	// bit-for-bit the same trajectory with the same wire bytes; only
	// the wall-clock decomposition (ComputeSec vs ExposedCommSec)
	// changes.
	Overlap bool
	// AccumSteps enables micro-batch gradient accumulation: each
	// optimizer step runs AccumSteps forward/backward micro-steps of
	// BatchSize global samples each, accumulating gradients locally,
	// and fires the gradient collectives, loss-scale bookkeeping and
	// optimizer exactly once per window — so the effective global batch
	// is BatchSize·AccumSteps at unchanged per-step wire traffic.
	// Under FULL_SHARD/HYBRID the parameter reshard + backward
	// re-gather also runs once per window (on its final micro-step),
	// keeping measured bytes equal to fsdp.TrafficPerStep per optimizer
	// step. 0 or 1 disables accumulation.
	AccumSteps int
	// BucketBytes sets the gradient bucket size (wire bytes) for every
	// strategy, enabling multi-bucket overlap for the sharded
	// schedules: each bucket is reduce-scattered independently, and a
	// rank's optimizer shard becomes its chunk of every bucket (the
	// same total volume as the contiguous layout). 0 keeps the default
	// — DDP buckets by Plan.DDPBucketBytes, the sharded strategies use
	// one whole-buffer bucket.
	BucketBytes int
	// Throttle > 0 realizes each collective's α–β modeled time as an
	// executed delay (dist.Options.Throttle): the congested-link mode
	// under which overlap's hidden latency becomes measurable in
	// ExposedCommSec and the bench-dist records.
	Throttle float64
	// LossScale tunes the BF16 dynamic loss scaler; zero fields take
	// the opt package defaults (2¹⁶ initial, ×2 growth, ×0.5 backoff,
	// growth interval 2000). Under AccumSteps the scaler's overflow
	// verdict and growth/backoff apply once per optimizer step — over
	// the whole accumulation window — never per micro-step.
	LossScale LossScaleConfig
	// Resume restores the training state captured by a previous run
	// (DistResult.State, possibly round-tripped through
	// SaveTrainState/LoadTrainState) and continues from its epoch
	// boundary. The configuration must match the interrupted run's —
	// same model, schedule, world, plan and precision — and the
	// continuation is then bitwise-identical to a run that never
	// stopped. No init broadcast is sent on resume: every rank restores
	// the identical state deterministically.
	Resume *TrainState
	// StopAfterEpoch interrupts the run once that many epochs have
	// completed (0 = run all cfg.Epochs). The learning-rate schedule,
	// sampler and mask streams are still laid out for the full
	// cfg.Epochs, so the returned State resumes the remainder of the
	// same run — the checkpoint/restart pattern.
	StopAfterEpoch int
	// CheckpointEvery captures a TrainState snapshot after every epoch
	// whose 1-based number divides by it (0 disables) and hands it to
	// OnCheckpoint. The final epoch is not re-captured —
	// DistResult.State already is that snapshot. Checkpointing is
	// collective-free (two barriers, no ring traffic), so it does not
	// shift the Fault plan's collective indices.
	CheckpointEvery int
	// OnCheckpoint receives each periodic snapshot (an independent deep
	// copy, stamped like DistResult.State) together with the wall-clock
	// cost of capturing it. Called on rank 0's goroutine while the other
	// ranks wait at a barrier; nil discards the snapshots.
	OnCheckpoint func(st *TrainState, captureWall time.Duration)
	// Fault arms dist.Options.Fault: the planned rank death that
	// exercises the abort machinery deterministically (see
	// dist.FaultPlan). The run returns an error wrapping
	// dist.ErrInjectedFault; PretrainElastic catches it and resumes.
	Fault dist.FaultPlan
	// ThrottleSkew arms dist.Options.ThrottleSkew: per-rank multipliers
	// on Throttle realizing stragglers (requires Throttle > 0).
	ThrottleSkew map[int]float64
	// Link is the α–β link model used to price each executed collective
	// (dist.Stats measured vs modeled). Zero defaults to
	// dist.DefaultLink(Ranks).
	Link comm.Params
}

// DefaultDistPretrain returns the paper's recipe for the given MAE
// config, split across ranks with the DDP baseline plan.
func DefaultDistPretrain(m mae.Config, ranks int) DistConfig {
	return DistConfig{
		PretrainConfig: DefaultPretrain(m),
		Ranks:          ranks,
		Plan:           fsdp.DefaultDDP(),
	}
}

// DistResult extends PretrainResult with the distributed-execution
// telemetry: the measured-vs-modeled collective accounting and the
// per-step traffic the fsdp simulator predicts for the same plan.
type DistResult struct {
	PretrainResult
	// Ranks is the world size the run executed with.
	Ranks int
	// Precision is the numeric mode the run executed with.
	Precision Precision
	// Comm is the World's per-collective accounting: calls, bytes each
	// rank actually sent around the ring, and the α–β model's
	// prediction for the same calls.
	Comm dist.Stats
	// CollectiveCalls is how many collectives rank 0 entered over the
	// run — the sequence a DistConfig.Fault Call indexes into. Probe an
	// uninterrupted run's count to aim a fault at a chosen fraction of
	// the schedule (the ranks' counts are symmetric in every strategy).
	CollectiveCalls int64
	// Traffic is fsdp.TrafficPerStep for this plan/world/model at this
	// precision's wire width — the per-step wire bytes the Section IV
	// simulator charges *per optimizer step* (gradient accumulation
	// does not change it: collectives fire once per window). The
	// executed byte counters in Comm match it exactly:
	// Comm.<op>.MeasuredWireBytes == Traffic.<op>Bytes × Steps.
	Traffic fsdp.Traffic
	// WallSec is rank 0's wall-clock inside the training loop;
	// ExposedCommSec is the part it spent blocked in per-step
	// collectives or waiting on their async handles — communication
	// not hidden behind compute — and ComputeSec is the remainder
	// (forward/backward/optimizer plus the input pipeline). This is
	// the executed counterpart of the fsdp simulator's
	// ComputeTime/ExposedComm decomposition; see DistResult.Breakdown.
	WallSec, ComputeSec, ExposedCommSec float64
	// FinalLossScale, ScaleBackoffs and SkippedSteps report the BF16
	// dynamic loss scaler: the scale after the last step, how many
	// times it backed off, and how many optimizer steps were skipped on
	// overflow (all zero under FP32).
	FinalLossScale float64
	ScaleBackoffs  int
	SkippedSteps   int
	// State is the complete training state at the end of the run —
	// feed it to DistConfig.Resume (or SaveTrainStateFile) to continue
	// training bitwise-identically.
	State *TrainState

	// replicas holds every rank's model so tests can assert the ranks
	// stayed bit-identical.
	replicas []*mae.Model
}

// Breakdown summarizes the executed wall-clock decomposition as a
// trace.ExecBreakdown — the measured row next to the simulator's
// Result.ComputeTime/ExposedComm columns.
func (r *DistResult) Breakdown(label string) trace.ExecBreakdown {
	return trace.NewExecBreakdown(label, r.Steps, r.WallSec, r.ExposedCommSec)
}

// execMode is the synchronization schedule a plan compiles to.
type execMode int

const (
	// execReplicated: gradients all-reduced, replicated AdamW
	// (DDP, NO_SHARD, HYBRID_1GPU).
	execReplicated execMode = iota
	// execZeRO1: gradients reduce-scattered, rank-sharded AdamW,
	// updated parameters all-gathered (SHARD_GRAD_OP).
	execZeRO1
	// execResharded: as execZeRO1 but parameters are additionally
	// dropped after forward and re-gathered for backward, inside a
	// shard group that may be smaller than the world
	// (FULL_SHARD, HYBRID_kGPUs with k>1).
	execResharded
)

// compilePlan maps a validated fsdp.Plan onto the executor's schedule:
// the mode plus the shard-group size (world for FULL_SHARD, k for
// HYBRID_kGPUs, irrelevant otherwise).
func compilePlan(plan fsdp.Plan, ranks int) (execMode, int, error) {
	switch plan.Strategy {
	case fsdp.DDP, fsdp.NoShard:
		return execReplicated, 1, nil
	case fsdp.ShardGradOp:
		return execZeRO1, ranks, nil
	case fsdp.FullShard:
		return execResharded, ranks, nil
	case fsdp.HybridShard:
		if plan.GroupSize == 1 {
			// HYBRID_1GPU: a sharding group of one is pure data
			// parallelism — replicated state, world-wide all-reduce.
			return execReplicated, 1, nil
		}
		return execResharded, plan.GroupSize, nil
	default:
		return 0, 0, fmt.Errorf("train: unknown strategy %v", plan.Strategy)
	}
}

// PretrainDistributed runs MAE pretraining SPMD across cfg.Ranks
// in-process ranks: seed-identical replicas synchronized by a parameter
// broadcast at init, a rank-sharded sampler over the same global batch
// sequence as the single-rank run, per-rank forward/backward with the
// global batch's mask stream, and gradient/optimizer synchronization
// per cfg.Plan. The returned model is rank 0's replica (all replicas
// are bit-identical after every step — in the hybrid strategies the
// replica groups' all-reduce makes this hold across shard groups too).
//
// Under Precision: BF16 the same schedules run in the executed
// mixed-precision mode: the model computes on bf16-valued working
// weights, every gradient reduction and parameter gather moves bf16
// payloads over the dist layer's uint16 wire (exactly half the fp32
// bytes, still equal to the simulator's dtype-aware accounting), AdamW
// updates fp32 master weights, and a dynamic loss scaler skips steps
// whose scaled gradients overflow.
//
// Under Overlap each gradient bucket's collective launches the moment
// the layer-granular backward (mae.BackwardStepLayers) finalizes its
// flat range, and the loop waits on every handle only before
// clipping/optimizer; under AccumSteps N micro-batches accumulate into
// one optimizer step with collectives firing once per window. Both are
// bitwise-neutral: overlap on/off and any bucket split train identical
// trajectories, and measured wire bytes stay exactly equal to
// fsdp.TrafficPerStep per optimizer step.
func PretrainDistributed(cfg DistConfig, ds *geodata.Dataset) (*DistResult, error) {
	if err := cfg.MAE.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("train: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive batch size or epochs")
	}
	if cfg.BatchSize%cfg.Ranks != 0 {
		return nil, fmt.Errorf("train: global batch %d not divisible by %d ranks", cfg.BatchSize, cfg.Ranks)
	}
	if !cfg.Precision.valid() {
		return nil, fmt.Errorf("train: unknown precision %v", cfg.Precision)
	}
	if cfg.AccumSteps < 0 || cfg.BucketBytes < 0 || cfg.Throttle < 0 {
		return nil, fmt.Errorf("train: negative AccumSteps, BucketBytes or Throttle")
	}
	accum := cfg.AccumSteps
	if accum < 1 {
		accum = 1
	}
	plan := cfg.Plan
	if plan == (fsdp.Plan{}) {
		plan = fsdp.DefaultDDP()
	}
	if plan.Strategy == fsdp.DDP && plan.DDPBucketBytes <= 0 {
		plan.DDPBucketBytes = fsdp.DefaultDDP().DDPBucketBytes
	}
	mode, group, err := compilePlan(plan, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(cfg.Ranks); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	n := cfg.Ranks
	local := cfg.BatchSize / n
	stepsPerEpoch := ds.TrainCount / (cfg.BatchSize * accum)
	if cfg.MaxStepsPerEpoch > 0 && stepsPerEpoch > cfg.MaxStepsPerEpoch {
		stepsPerEpoch = cfg.MaxStepsPerEpoch
	}
	if stepsPerEpoch == 0 {
		return nil, fmt.Errorf("train: dataset smaller than one optimizer step's accumulation window")
	}
	resume := cfg.Resume
	startEpoch := 0
	if resume != nil {
		if resume.Epoch < 1 || resume.Epoch >= cfg.Epochs {
			return nil, fmt.Errorf("train: resume epoch %d outside [1, %d)", resume.Epoch, cfg.Epochs)
		}
		if resume.Step != resume.Epoch*stepsPerEpoch {
			return nil, fmt.Errorf("train: resume step %d is not epoch %d × %d steps/epoch (schedule mismatch)",
				resume.Step, resume.Epoch, stepsPerEpoch)
		}
		if resume.Precision != cfg.Precision {
			return nil, fmt.Errorf("train: resume state captured under %v, configuration is %v",
				resume.Precision, cfg.Precision)
		}
		if stAccum := max(resume.AccumSteps, 1); stAccum != accum {
			return nil, fmt.Errorf("train: resume state captured with AccumSteps %d, configuration has %d",
				stAccum, accum)
		}
		// Topology stamps: a state sharded for another world or strategy
		// must go through Reshard (which restamps it) before resuming.
		// Zero stamps — states predating elasticity — act as wildcards.
		if resume.World != 0 && resume.World != cfg.Ranks {
			return nil, fmt.Errorf("train: resume state captured at world %d, configuration has %d ranks — re-shard it first (train.Reshard)",
				resume.World, cfg.Ranks)
		}
		if resume.Strategy != "" && resume.Strategy != plan.Name() {
			return nil, fmt.Errorf("train: resume state captured under %s, configuration runs %s — re-shard it first (train.Reshard)",
				resume.Strategy, plan.Name())
		}
		startEpoch = resume.Epoch
	}
	if cfg.Fault.Armed() && (cfg.Fault.Rank < 0 || cfg.Fault.Rank >= cfg.Ranks) {
		return nil, fmt.Errorf("train: fault plan targets rank %d of a %d-rank world", cfg.Fault.Rank, cfg.Ranks)
	}
	for rk, s := range cfg.ThrottleSkew {
		if rk < 0 || rk >= cfg.Ranks {
			return nil, fmt.Errorf("train: throttle skew targets rank %d of a %d-rank world", rk, cfg.Ranks)
		}
		if s <= 0 {
			return nil, fmt.Errorf("train: non-positive throttle skew %g for rank %d", s, rk)
		}
	}
	lastEpoch := cfg.Epochs
	if cfg.StopAfterEpoch > 0 && cfg.StopAfterEpoch < cfg.Epochs {
		lastEpoch = cfg.StopAfterEpoch
	}
	if lastEpoch <= startEpoch {
		return nil, fmt.Errorf("train: stop epoch %d does not advance past resume epoch %d", lastEpoch, startEpoch)
	}
	bf16 := cfg.Precision == BF16
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize*accum),
		MinLR:       0,
		WarmupSteps: cfg.WarmupEpochs * stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	world := dist.New(n, dist.Options{
		Link:         cfg.Link,
		Throttle:     cfg.Throttle,
		ThrottleSkew: cfg.ThrottleSkew,
		Fault:        cfg.Fault,
	})
	res := &DistResult{Ranks: n, Precision: cfg.Precision}
	res.LossCurve.Name = cfg.MAE.Encoder.Name + " pretrain loss"
	res.EpochLoss.Name = cfg.MAE.Encoder.Name + " epoch loss"
	models := make([]*mae.Model, n)

	// End-of-run training state, allocated once the flat dimension is
	// known; ranks write their disjoint master/moment shards into it.
	st := &TrainState{}
	var stOnce sync.Once

	allRanks := make([]int, n)
	for i := range allRanks {
		allRanks[i] = i
	}

	start := time.Now()
	err = world.Run(func(r *dist.Rank) error {
		// Every rank builds a replica from the same seed (which also
		// locks the mask streams together); the broadcast then enforces
		// bit-identical parameters from rank 0 regardless of how the
		// replica was initialized.
		model := mae.New(cfg.MAE, rng.New(cfg.Seed))
		models[r.ID()] = model
		params := model.Params()
		dim := opt.FlatDim(params)
		stOnce.Do(func() {
			st.Master = make([]float32, dim)
			st.OptM = make([]float32, dim)
			st.OptV = make([]float32, dim)
		})
		if resume != nil && len(resume.Master) != dim {
			return fmt.Errorf("train: resume state has %d master values, model has %d", len(resume.Master), dim)
		}

		// Shard layout and communicators. The replicated mode shards
		// nothing but still pads the flat gradient for uniform ring
		// chunks; the sharded modes partition the padded space across
		// the shard group, aligned so HYBRID's replica-group ring over
		// one shard also chunks uniformly.
		var (
			gradGroup *dist.Group // gradient-bucket collectives (world for replicated, shard group otherwise)
			replGroup *dist.Group // HYBRID gradient all-reduce across shard groups
		)
		part, err := partitionFor(plan, n, dim)
		if err != nil {
			return err
		}
		switch mode {
		case execReplicated:
			gradGroup = world.Subgroup(allRanks)
		default:
			repl := n / group
			// Shard groups are consecutive rank blocks (the paper's
			// intra-node placement); replica groups stride across them.
			first := r.ID() / group * group
			members := make([]int, group)
			for i := range members {
				members[i] = first + i
			}
			gradGroup = world.Subgroup(members)
			if mode == execResharded && repl > 1 {
				peers := make([]int, repl)
				for i := range peers {
					peers[i] = r.ID()%group + i*group
				}
				replGroup = world.Subgroup(peers)
			}
		}
		padded := part.Padded

		if resume == nil {
			initBuf := make([]float32, dim)
			if r.ID() == 0 {
				opt.PackValues(initBuf, params)
			}
			r.Broadcast(initBuf, 0)
			opt.UnpackValues(params, initBuf)
		} else {
			// Every rank restores the identical fp32 master snapshot
			// and fast-forwards the deterministic mask stream past the
			// completed steps (micro-batches under accumulation) — no
			// broadcast needed.
			opt.UnpackValues(params, resume.Master)
			model.SkipMasks(resume.Step*accum, cfg.BatchSize)
		}

		flatG := make([]float32, padded)
		var wire []uint16
		if bf16 {
			wire = make([]uint16, padded)
		}
		// Rank 0 decomposes its loop wall-clock into compute vs exposed
		// communication; the other ranks carry a nil timer.
		var timer *phaseTimer
		if r.ID() == 0 {
			timer = &phaseTimer{}
		}
		eng, err := newSyncEngine(r, model, params, mode, bf16, cfg.Overlap,
			gradGroup, replGroup, group, flatG, wire, timer,
			bucketElemsFor(cfg.BucketBytes, plan.DDPBucketBytes,
				plan.Strategy == fsdp.DDP, cfg.Precision.WireBytes(), n, padded))
		if err != nil {
			return err
		}
		// ownSpans is what this rank's optimizer/checkpoint state
		// covers: its chunk of every bucket (sharded modes), or the
		// whole padded space (replicated BF16's full-range master).
		ownSpans := eng.spans
		ownLen := eng.shardLen
		if mode == execReplicated {
			ownSpans = []opt.Span{{Lo: 0, Hi: padded}}
			ownLen = padded
		}

		var (
			optim    *opt.AdamW        // FP32 replicated
			shardOpt *opt.ShardedAdamW // everything else
			flatW    []float32         // assembled working copy (sharded and BF16 modes)
			master   []float32         // BF16: fp32 master for the owned spans (shard-local)
			gBuf     []float32         // sharded: contiguous reduced-gradient shard
			wBuf     []float32         // sharded FP32: contiguous weight shard scratch
			scaler   *opt.LossScaler
		)
		if bf16 {
			scaler = opt.NewLossScaler(cfg.LossScale.Init, cfg.LossScale.Growth,
				cfg.LossScale.Backoff, cfg.LossScale.Interval)
			if resume != nil {
				scaler.Restore(resume.LossScale, resume.ScaleGoodSteps)
			}
		}
		switch {
		case mode == execReplicated && !bf16:
			optim = opt.NewAdamW(params, cfg.WeightDecay)
		case mode == execReplicated && bf16:
			// Full-range ShardedAdamW over a flat fp32 master: the same
			// adamwApply kernel as AdamW, but updating the master copy
			// while params hold the bf16 working weights.
			master = make([]float32, padded)
			opt.PackValues(master, params)
			flatW = make([]float32, padded)
			shardOpt = opt.NewShardedAdamW(params, cfg.WeightDecay, 0, padded)
			tensor.RoundBF16(flatW, master)
			opt.UnpackValues(params, flatW)
		default:
			flatW = make([]float32, padded)
			opt.PackValues(flatW, params)
			shardOpt = opt.NewShardedAdamWSpans(params, cfg.WeightDecay, ownSpans)
			gBuf = make([]float32, ownLen)
			wBuf = make([]float32, ownLen)
			if bf16 {
				// The rank's fp32 master is its owned spans; the whole
				// working copy (own spans included) is bf16-valued so
				// every rank computes on identical weights.
				master = make([]float32, ownLen)
				opt.GatherSpans(master, flatW, ownSpans)
				tensor.RoundBF16(flatW, flatW)
				opt.UnpackValues(params, flatW)
			}
		}
		if resume != nil && shardOpt != nil {
			// The unpadded checkpoint moments restore clipped at dim;
			// the pad tail of the freshly allocated moments stays zero.
			mLoc := make([]float32, ownLen)
			vLoc := make([]float32, ownLen)
			gatherSpansClipped(mLoc, resume.OptM, ownSpans, dim)
			gatherSpansClipped(vLoc, resume.OptV, ownSpans, dim)
			shardOpt.RestoreMoments(mLoc, vLoc)
			shardOpt.SetStep(resume.OptStep)
		} else if resume != nil {
			optim.ImportMoments(resume.OptM, resume.OptV)
			optim.SetStep(resume.OptStep)
		}

		// captureState writes this rank's share of the canonical flat
		// training state into st: rank 0 alone for the replicated modes,
		// the first shard block's disjoint clipped shards otherwise. The
		// caller separates these writes from rank 0's read (end of run:
		// Run's join; mid-run checkpoints: an explicit barrier).
		captureState := func() {
			switch {
			case optim != nil: // FP32 replicated
				if r.ID() == 0 {
					opt.PackValues(st.Master, params)
					optim.ExportMoments(st.OptM, st.OptV)
					st.OptStep = optim.StepCount()
				}
			case r.ID() < part.Shards:
				if bf16 {
					scatterSpansClipped(st.Master, master, ownSpans, dim)
				} else {
					gatherSpansClipped(wBuf, flatW, ownSpans, dim)
					scatterSpansClipped(st.Master, wBuf, ownSpans, dim)
				}
				mLoc := make([]float32, ownLen)
				vLoc := make([]float32, ownLen)
				shardOpt.CopyMoments(mLoc, vLoc)
				scatterSpansClipped(st.OptM, mLoc, ownSpans, dim)
				scatterSpansClipped(st.OptV, vLoc, ownSpans, dim)
				if r.ID() == 0 {
					st.OptStep = shardOpt.StepCount()
				}
			}
		}
		// stampState fills the scalar fields only rank 0 owns: the
		// progress counters, numeric mode, topology stamps and the
		// loss-scaler freeze.
		stampState := func(stepNow, epochsDone int) {
			st.Step = stepNow
			st.Epoch = epochsDone
			st.Precision = cfg.Precision
			st.AccumSteps = accum
			st.World = n
			st.Strategy = plan.Name()
			if scaler != nil {
				st.LossScale = scaler.Scale
				st.ScaleGoodSteps = scaler.GoodSteps()
			}
		}

		gen := ds.Gen
		loader := dataload.New(
			dataload.TrainSplit{D: ds, Count: ds.TrainCount, ImgLen: gen.ImageLen()},
			dataload.Config{
				BatchSize:  local,
				Workers:    cfg.Workers,
				Shuffle:    true,
				DropLast:   true,
				Seed:       cfg.Seed ^ 0xDA7A,
				ShardRank:  r.ID(),
				ShardWorld: n,
			})
		loader.SkipEpochs(startEpoch)

		invN := float32(1) / float32(n)
		invAccum := float64(1) / float64(accum)
		loopStart := time.Now()
		step := startEpoch * stepsPerEpoch
		for epoch := startEpoch; epoch < lastEpoch; epoch++ {
			var epochLoss metrics.Meter
			micro := 0
			var lossSum float64
			for batch := range loader.EpochN(stepsPerEpoch * accum) {
				// All ranks draw the global batch's masks from their
				// lock-step streams and keep the local slice, so the
				// mask sequence matches the single-rank run.
				keep := model.DrawMasksRange(cfg.BatchSize, r.ID()*local, (r.ID()+1)*local)
				if micro == 0 {
					nn.ZeroGrads(params)
				}
				final := micro == accum-1
				lossSum += model.ForwardWithMask(batch.Images, batch.Size, keep)
				switch {
				case mode == execResharded && final:
					// Reshard once per optimizer step, after the
					// window's last forward: drop every parameter span
					// this rank does not own from the flat mirror,
					// exactly as FULL_SHARD frees gathered units.
					// Backward reads the live tensors from the
					// re-gathered mirror, so the all-gather must
					// genuinely restore the dropped spans — if it
					// moved wrong bytes, the zeros would reach the
					// model and the loss trajectory (checked against
					// the single-rank run) would diverge.
					opt.ScrubOutsideSpans(flatW, eng.spans)
					eng.allGatherParams(flatW)
					opt.UnpackValues(params, flatW)
				}
				if !final {
					// Accumulation micro-step: gradients pile up in the
					// parameter tensors; no collective fires and the
					// sharded modes keep the assembled parameters
					// resident (the executed no_sync window).
					model.BackwardStep()
					loader.Recycle(batch)
					micro++
					continue
				}

				// Final micro-step of the window: the layer-granular
				// backward launches each bucket's collective the moment
				// its accumulated gradients are final. The 1/(n·accum)
				// scale turns the cross-rank sum of per-micro means
				// into the global mean the single-rank run computes;
				// BF16 additionally multiplies in the loss scale before
				// gradients hit the narrow wire.
				gScale := invN
				if accum > 1 {
					gScale *= 1 / float32(accum)
				}
				scaleGrads := n > 1 || accum > 1
				var invScale float32
				if bf16 {
					// The scale the gradients will carry; Update may
					// move scaler.Scale before the unscale happens.
					invScale = 1 / float32(scaler.Scale)
					gScale = float32(scaler.Scale) * invN
					if accum > 1 {
						gScale *= 1 / float32(accum)
					}
					scaleGrads = true
				}
				eng.beginStep(gScale, scaleGrads)
				model.BackwardStepLayers(eng.onSegment)
				loader.Recycle(batch)
				eng.finishBackward()

				lr := sched.LR(step)
				switch {
				case mode == execReplicated && !bf16:
					opt.UnpackGrads(params, flatG)
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(params, cfg.ClipNorm)
					}
					optim.Step(lr)
				case mode == execReplicated && bf16:
					// No collective needed for the verdict here: the
					// bf16 all-reduce leaves every rank with
					// bit-identical gradients, so the local check is
					// already the global one.
					if !scaler.Update(opt.HasNonFinite(flatG)) {
						tensor.Scale(flatG, flatG, invScale)
						if cfg.ClipNorm > 0 {
							if norm := math.Sqrt(sumSq(flatG[:dim])); norm > cfg.ClipNorm && norm > 0 {
								tensor.Scale(flatG, flatG, float32(cfg.ClipNorm/norm))
							}
						}
						shardOpt.Step(lr, master, flatG)
						tensor.RoundBF16(flatW, master)
						opt.UnpackValues(params, flatW)
					}
				case !bf16: // sharded FP32
					eng.gatherShard(gBuf)
					if cfg.ClipNorm > 0 {
						// Global-norm clipping over the sharded
						// gradient: the shard group's members hold
						// disjoint spans covering the whole flat
						// space, so their sums of squares all-reduce to
						// the same total the single-rank clip computes.
						var norm float64
						timer.comm(func() {
							norm = math.Sqrt(gradGroup.AllReduceScalar(r, sumSq(gBuf)))
						})
						if norm > cfg.ClipNorm && norm > 0 {
							tensor.Scale(gBuf, gBuf, float32(cfg.ClipNorm/norm))
						}
					}
					opt.GatherSpans(wBuf, flatW, ownSpans)
					shardOpt.Step(lr, wBuf, gBuf)
					opt.ScatterSpans(flatW, wBuf, ownSpans)
					// Re-assemble the updated parameters. For the
					// resharded strategies this all-gather is the next
					// forward's parameter gather executed eagerly (the
					// executed analog of FSDP's prefetching): per-step
					// volumes are unchanged and every step ends with
					// bit-identical assembled replicas.
					eng.allGatherParams(flatW)
					opt.UnpackValues(params, flatW)
				default: // sharded BF16
					eng.gatherShard(gBuf)
					var overflow bool
					timer.comm(func() {
						overflow = r.AllReduceScalar(boolFlag(opt.HasNonFinite(gBuf))) > 0
					})
					if !scaler.Update(overflow) {
						tensor.Scale(gBuf, gBuf, invScale)
						if cfg.ClipNorm > 0 {
							var norm float64
							timer.comm(func() {
								norm = math.Sqrt(gradGroup.AllReduceScalar(r, sumSq(gBuf)))
							})
							if norm > cfg.ClipNorm && norm > 0 {
								tensor.Scale(gBuf, gBuf, float32(cfg.ClipNorm/norm))
							}
						}
						shardOpt.Step(lr, master, gBuf)
						off := 0
						for _, sp := range ownSpans {
							tensor.RoundBF16(flatW[sp.Lo:sp.Hi], master[off:off+sp.Len()])
							off += sp.Len()
						}
					}
					// The parameter all-gather runs even on skipped
					// steps — it is idempotent, the working copy being
					// unchanged — so every optimizer step moves exactly
					// the wire bytes fsdp.TrafficPerStep charges.
					eng.allGatherParams(flatW)
					opt.UnpackValues(params, flatW)
				}

				var gLoss float64
				timer.comm(func() {
					gLoss = r.AllReduceScalar(lossSum*invAccum) / float64(n)
				})
				lossSum = 0
				micro = 0
				if r.ID() == 0 {
					epochLoss.Add(gLoss)
					res.LossCurve.Append(float64(step), gLoss)
				}
				step++
			}
			if r.ID() == 0 {
				res.EpochLoss.Append(float64(epoch), epochLoss.Mean())
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.4f  lr %.2e  [%d ranks, %s, %s]\n",
						epoch+1, cfg.Epochs, epochLoss.Mean(), sched.LR(step-1), n, plan.Name(), cfg.Precision)
				}
			}
			// Periodic checkpoint at the epoch boundary: all ranks write
			// their state shards, a barrier orders the writes before
			// rank 0 snapshots, a second barrier holds the next epoch's
			// writes back until the snapshot is taken. No collectives —
			// the fault plan's indices are checkpoint-invariant.
			if ce := cfg.CheckpointEvery; ce > 0 && (epoch+1)%ce == 0 && epoch+1 < lastEpoch {
				ckStart := time.Now()
				captureState()
				r.Barrier()
				if r.ID() == 0 {
					stampState(step, epoch+1)
					if cfg.OnCheckpoint != nil {
						cfg.OnCheckpoint(st.clone(), time.Since(ckStart))
					}
				}
				r.Barrier()
			}
		}

		// Capture the end-of-run training state: the ranks of the first
		// shard block hold disjoint fp32 master/moment shards covering
		// the whole flat space (for the replicated modes that block is
		// rank 0 alone). Run's join orders the writes before the caller
		// reads st.
		captureState()
		if r.ID() == 0 {
			res.Steps = step - startEpoch*stepsPerEpoch
			// One source of truth for the decomposition (incl. the
			// negative-residual clamp): the trace constructor.
			b := trace.NewExecBreakdown("", res.Steps, time.Since(loopStart).Seconds(), timer.exposed.Seconds())
			res.WallSec = b.WallSec
			res.ExposedCommSec = b.ExposedCommSec
			res.ComputeSec = b.ComputeSec
			stampState(step, lastEpoch)
			if scaler != nil {
				res.FinalLossScale = scaler.Scale
				res.ScaleBackoffs = scaler.Backoffs()
				res.SkippedSteps = scaler.Skipped()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Model = models[0]
	res.replicas = models
	res.Comm = world.Stats()
	res.CollectiveCalls = world.CollectiveCalls(0)
	res.Traffic = fsdp.TrafficPerStep(plan, n, opt.FlatDim(models[0].Params()), cfg.Precision.WireBytes())
	res.State = st
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.ImagesPerSec = float64(res.Steps*cfg.BatchSize*accum) / elapsed
	}
	return res, nil
}

// boolFlag maps an overflow verdict onto the scalar all-reduce domain.
func boolFlag(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sumSq accumulates Σx² in float64, matching nn.GradL2Norm's
// accumulation precision.
func sumSq(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}
