package train

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/dataload"
	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// DistConfig configures real multi-rank pretraining over internal/dist.
// The embedded PretrainConfig is interpreted globally: BatchSize is the
// global batch (split evenly across ranks), and the learning-rate
// schedule, epochs and clipping act exactly as in the single-rank
// Pretrain — an N-rank run reproduces the single-rank loss trajectory
// up to the floating-point reassociation of the ring reductions.
type DistConfig struct {
	PretrainConfig
	// Ranks is the data-parallel world size (in-process goroutine
	// ranks). BatchSize must divide evenly by Ranks.
	Ranks int
	// Plan selects the gradient/optimizer synchronization strategy —
	// the full Section III-C matrix executes:
	//
	//	DDP, NO_SHARD, HYBRID_1GPU — replicated optimizer; gradients
	//	    all-reduced (DDP in fixed-size buckets of DDPBucketBytes)
	//	SHARD_GRAD_OP — ZeRO-1: gradients reduce-scattered, AdamW state
	//	    sharded per rank, updated parameters all-gathered
	//	FULL_SHARD — ZeRO-3-style: parameters additionally resharded
	//	    after forward and re-gathered in backward
	//	HYBRID_kGPUs (k>1) — FULL_SHARD inside k-rank shard groups,
	//	    gradient-shard all-reduce across the world/k replica groups
	//
	// The zero value defaults to fsdp.DefaultDDP().
	Plan fsdp.Plan
	// Precision selects the numeric mode, orthogonal to Plan: FP32 (the
	// zero value) runs everything in float32; BF16 executes the paper's
	// AMP-style recipe — bf16 working weights and bf16 collective
	// payloads (half the wire bytes) over fp32 master weights and Adam
	// state, with dynamic loss scaling.
	Precision Precision
	// LossScale tunes the BF16 dynamic loss scaler; zero fields take
	// the opt package defaults (2¹⁶ initial, ×2 growth, ×0.5 backoff,
	// growth interval 2000).
	LossScale LossScaleConfig
	// Resume restores the training state captured by a previous run
	// (DistResult.State, possibly round-tripped through
	// SaveTrainState/LoadTrainState) and continues from its epoch
	// boundary. The configuration must match the interrupted run's —
	// same model, schedule, world, plan and precision — and the
	// continuation is then bitwise-identical to a run that never
	// stopped. No init broadcast is sent on resume: every rank restores
	// the identical state deterministically.
	Resume *TrainState
	// StopAfterEpoch interrupts the run once that many epochs have
	// completed (0 = run all cfg.Epochs). The learning-rate schedule,
	// sampler and mask streams are still laid out for the full
	// cfg.Epochs, so the returned State resumes the remainder of the
	// same run — the checkpoint/restart pattern.
	StopAfterEpoch int
	// Link is the α–β link model used to price each executed collective
	// (dist.Stats measured vs modeled). Zero defaults to
	// dist.DefaultLink(Ranks).
	Link comm.Params
}

// DefaultDistPretrain returns the paper's recipe for the given MAE
// config, split across ranks with the DDP baseline plan.
func DefaultDistPretrain(m mae.Config, ranks int) DistConfig {
	return DistConfig{
		PretrainConfig: DefaultPretrain(m),
		Ranks:          ranks,
		Plan:           fsdp.DefaultDDP(),
	}
}

// DistResult extends PretrainResult with the distributed-execution
// telemetry: the measured-vs-modeled collective accounting and the
// per-step traffic the fsdp simulator predicts for the same plan.
type DistResult struct {
	PretrainResult
	// Ranks is the world size the run executed with.
	Ranks int
	// Precision is the numeric mode the run executed with.
	Precision Precision
	// Comm is the World's per-collective accounting: calls, bytes each
	// rank actually sent around the ring, and the α–β model's
	// prediction for the same calls.
	Comm dist.Stats
	// Traffic is fsdp.TrafficPerStep for this plan/world/model at this
	// precision's wire width — the per-step wire bytes the Section IV
	// simulator charges. The executed byte counters in Comm match it
	// exactly: Comm.<op>.MeasuredWireBytes == Traffic.<op>Bytes × Steps.
	Traffic fsdp.Traffic
	// FinalLossScale, ScaleBackoffs and SkippedSteps report the BF16
	// dynamic loss scaler: the scale after the last step, how many
	// times it backed off, and how many optimizer steps were skipped on
	// overflow (all zero under FP32).
	FinalLossScale float64
	ScaleBackoffs  int
	SkippedSteps   int
	// State is the complete training state at the end of the run —
	// feed it to DistConfig.Resume (or SaveTrainStateFile) to continue
	// training bitwise-identically.
	State *TrainState

	// replicas holds every rank's model so tests can assert the ranks
	// stayed bit-identical.
	replicas []*mae.Model
}

// execMode is the synchronization schedule a plan compiles to.
type execMode int

const (
	// execReplicated: gradients all-reduced, replicated AdamW
	// (DDP, NO_SHARD, HYBRID_1GPU).
	execReplicated execMode = iota
	// execZeRO1: gradients reduce-scattered, rank-sharded AdamW,
	// updated parameters all-gathered (SHARD_GRAD_OP).
	execZeRO1
	// execResharded: as execZeRO1 but parameters are additionally
	// dropped after forward and re-gathered for backward, inside a
	// shard group that may be smaller than the world
	// (FULL_SHARD, HYBRID_kGPUs with k>1).
	execResharded
)

// compilePlan maps a validated fsdp.Plan onto the executor's schedule:
// the mode plus the shard-group size (world for FULL_SHARD, k for
// HYBRID_kGPUs, irrelevant otherwise).
func compilePlan(plan fsdp.Plan, ranks int) (execMode, int, error) {
	switch plan.Strategy {
	case fsdp.DDP, fsdp.NoShard:
		return execReplicated, 1, nil
	case fsdp.ShardGradOp:
		return execZeRO1, ranks, nil
	case fsdp.FullShard:
		return execResharded, ranks, nil
	case fsdp.HybridShard:
		if plan.GroupSize == 1 {
			// HYBRID_1GPU: a sharding group of one is pure data
			// parallelism — replicated state, world-wide all-reduce.
			return execReplicated, 1, nil
		}
		return execResharded, plan.GroupSize, nil
	default:
		return 0, 0, fmt.Errorf("train: unknown strategy %v", plan.Strategy)
	}
}

// PretrainDistributed runs MAE pretraining SPMD across cfg.Ranks
// in-process ranks: seed-identical replicas synchronized by a parameter
// broadcast at init, a rank-sharded sampler over the same global batch
// sequence as the single-rank run, per-rank forward/backward with the
// global batch's mask stream, and gradient/optimizer synchronization
// per cfg.Plan. The returned model is rank 0's replica (all replicas
// are bit-identical after every step — in the hybrid strategies the
// replica groups' all-reduce makes this hold across shard groups too).
//
// Under Precision: BF16 the same schedules run in the executed
// mixed-precision mode: the model computes on bf16-valued working
// weights, every gradient reduction and parameter gather moves bf16
// payloads over the dist layer's uint16 wire (exactly half the fp32
// bytes, still equal to the simulator's dtype-aware accounting), AdamW
// updates fp32 master weights, and a dynamic loss scaler skips steps
// whose scaled gradients overflow.
func PretrainDistributed(cfg DistConfig, ds *geodata.Dataset) (*DistResult, error) {
	if err := cfg.MAE.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("train: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive batch size or epochs")
	}
	if cfg.BatchSize%cfg.Ranks != 0 {
		return nil, fmt.Errorf("train: global batch %d not divisible by %d ranks", cfg.BatchSize, cfg.Ranks)
	}
	if !cfg.Precision.valid() {
		return nil, fmt.Errorf("train: unknown precision %v", cfg.Precision)
	}
	plan := cfg.Plan
	if plan == (fsdp.Plan{}) {
		plan = fsdp.DefaultDDP()
	}
	if plan.Strategy == fsdp.DDP && plan.DDPBucketBytes <= 0 {
		plan.DDPBucketBytes = fsdp.DefaultDDP().DDPBucketBytes
	}
	mode, group, err := compilePlan(plan, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(cfg.Ranks); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	n := cfg.Ranks
	local := cfg.BatchSize / n
	stepsPerEpoch := ds.TrainCount / cfg.BatchSize
	if cfg.MaxStepsPerEpoch > 0 && stepsPerEpoch > cfg.MaxStepsPerEpoch {
		stepsPerEpoch = cfg.MaxStepsPerEpoch
	}
	if stepsPerEpoch == 0 {
		return nil, fmt.Errorf("train: dataset smaller than one global batch")
	}
	resume := cfg.Resume
	startEpoch := 0
	if resume != nil {
		if resume.Epoch < 1 || resume.Epoch >= cfg.Epochs {
			return nil, fmt.Errorf("train: resume epoch %d outside [1, %d)", resume.Epoch, cfg.Epochs)
		}
		if resume.Step != resume.Epoch*stepsPerEpoch {
			return nil, fmt.Errorf("train: resume step %d is not epoch %d × %d steps/epoch (schedule mismatch)",
				resume.Step, resume.Epoch, stepsPerEpoch)
		}
		if resume.Precision != cfg.Precision {
			return nil, fmt.Errorf("train: resume state captured under %v, configuration is %v",
				resume.Precision, cfg.Precision)
		}
		startEpoch = resume.Epoch
	}
	lastEpoch := cfg.Epochs
	if cfg.StopAfterEpoch > 0 && cfg.StopAfterEpoch < cfg.Epochs {
		lastEpoch = cfg.StopAfterEpoch
	}
	if lastEpoch <= startEpoch {
		return nil, fmt.Errorf("train: stop epoch %d does not advance past resume epoch %d", lastEpoch, startEpoch)
	}
	bf16 := cfg.Precision == BF16
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize),
		MinLR:       0,
		WarmupSteps: cfg.WarmupEpochs * stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	world := dist.New(n, dist.Options{Link: cfg.Link})
	res := &DistResult{Ranks: n, Precision: cfg.Precision}
	res.LossCurve.Name = cfg.MAE.Encoder.Name + " pretrain loss"
	res.EpochLoss.Name = cfg.MAE.Encoder.Name + " epoch loss"
	models := make([]*mae.Model, n)

	// End-of-run training state, allocated once the flat dimension is
	// known; ranks write their disjoint master/moment shards into it.
	st := &TrainState{}
	var stOnce sync.Once

	start := time.Now()
	err = world.Run(func(r *dist.Rank) error {
		// Every rank builds a replica from the same seed (which also
		// locks the mask streams together); the broadcast then enforces
		// bit-identical parameters from rank 0 regardless of how the
		// replica was initialized.
		model := mae.New(cfg.MAE, rng.New(cfg.Seed))
		models[r.ID()] = model
		params := model.Params()
		dim := opt.FlatDim(params)
		stOnce.Do(func() {
			st.Master = make([]float32, dim)
			st.OptM = make([]float32, dim)
			st.OptV = make([]float32, dim)
		})
		if resume != nil && len(resume.Master) != dim {
			return fmt.Errorf("train: resume state has %d master values, model has %d", len(resume.Master), dim)
		}

		// Shard layout and communicators. The replicated mode shards
		// nothing but still pads the flat gradient for uniform ring
		// chunks; the sharded modes partition the padded space across
		// the shard group, aligned so HYBRID's replica-group ring over
		// one shard also chunks uniformly.
		var (
			shardGroup *dist.Group // FULL_SHARD collectives (sharded modes)
			replGroup  *dist.Group // HYBRID gradient all-reduce across shard groups
			part       opt.Partition
			lo, hi     int
		)
		switch mode {
		case execReplicated:
			part = opt.NewPartition(dim, 1, n)
			lo, hi = 0, part.Padded // the degenerate "shard" is everything
		default:
			repl := n / group
			part = opt.NewPartition(dim, group, group*repl)
			// Shard groups are consecutive rank blocks (the paper's
			// intra-node placement); replica groups stride across them.
			first := r.ID() / group * group
			members := make([]int, group)
			for i := range members {
				members[i] = first + i
			}
			shardGroup = world.Subgroup(members)
			lo, hi = part.Range(r.ID() - first)
			if mode == execResharded && repl > 1 {
				peers := make([]int, repl)
				for i := range peers {
					peers[i] = r.ID()%group + i*group
				}
				replGroup = world.Subgroup(peers)
			}
		}
		padded := part.Padded

		if resume == nil {
			initBuf := make([]float32, dim)
			if r.ID() == 0 {
				opt.PackValues(initBuf, params)
			}
			r.Broadcast(initBuf, 0)
			opt.UnpackValues(params, initBuf)
		} else {
			// Every rank restores the identical fp32 master snapshot
			// and fast-forwards the deterministic mask stream past the
			// completed steps — no broadcast needed.
			opt.UnpackValues(params, resume.Master)
			model.SkipMasks(resume.Step, cfg.BatchSize)
		}

		flatG := make([]float32, padded)
		var (
			optim    *opt.AdamW        // FP32 replicated
			shardOpt *opt.ShardedAdamW // everything else
			flatW    []float32         // assembled working copy (sharded and BF16 modes)
			master   []float32         // BF16: fp32 master for [lo, hi), indexed from lo
			wire     []uint16          // BF16 wire scratch
			scaler   *opt.LossScaler
		)
		if bf16 {
			wire = make([]uint16, padded)
			scaler = opt.NewLossScaler(cfg.LossScale.Init, cfg.LossScale.Growth,
				cfg.LossScale.Backoff, cfg.LossScale.Interval)
			if resume != nil {
				scaler.Restore(resume.LossScale, resume.ScaleGoodSteps)
			}
		}
		switch {
		case mode == execReplicated && !bf16:
			optim = opt.NewAdamW(params, cfg.WeightDecay)
		case mode == execReplicated && bf16:
			// Full-range ShardedAdamW over a flat fp32 master: the same
			// adamwApply kernel as AdamW, but updating the master copy
			// while params hold the bf16 working weights.
			master = make([]float32, padded)
			opt.PackValues(master, params)
			flatW = make([]float32, padded)
			shardOpt = opt.NewShardedAdamW(params, cfg.WeightDecay, 0, padded)
			tensor.RoundBF16(flatW, master)
			opt.UnpackValues(params, flatW)
		default:
			flatW = make([]float32, padded)
			opt.PackValues(flatW, params)
			shardOpt = opt.NewShardedAdamW(params, cfg.WeightDecay, lo, hi)
			if bf16 {
				// The rank's fp32 master is its own shard; the whole
				// working copy (own shard included) is bf16-valued so
				// every rank computes on identical weights.
				master = make([]float32, hi-lo)
				copy(master, flatW[lo:hi])
				tensor.RoundBF16(flatW, flatW)
				opt.UnpackValues(params, flatW)
			}
		}
		if resume != nil && shardOpt != nil {
			// RestoreMoments copies through min-length copy(), so the
			// unpadded state restores directly; the pad tail of the
			// freshly allocated moments stays zero.
			if end := min(hi, dim); lo < end {
				shardOpt.RestoreMoments(resume.OptM[lo:end], resume.OptV[lo:end])
			}
			shardOpt.SetStep(resume.OptStep)
		} else if resume != nil {
			optim.ImportMoments(resume.OptM, resume.OptV)
			optim.SetStep(resume.OptStep)
		}

		// DDP buckets: fixed-size spans of the flat gradient, rounded
		// to a multiple of the world size so ring chunks stay uniform.
		// Bucket bytes are wire bytes, so bf16 buckets hold twice the
		// elements for the same configured size.
		bucketElems := padded
		if plan.Strategy == fsdp.DDP && n > 1 {
			bucketElems = int(plan.DDPBucketBytes) / cfg.Precision.WireBytes() / n * n
			if bucketElems < n {
				bucketElems = n
			}
		}

		gen := ds.Gen
		loader := dataload.New(
			dataload.TrainSplit{D: ds, Count: ds.TrainCount, ImgLen: gen.ImageLen()},
			dataload.Config{
				BatchSize:  local,
				Workers:    cfg.Workers,
				Shuffle:    true,
				DropLast:   true,
				Seed:       cfg.Seed ^ 0xDA7A,
				ShardRank:  r.ID(),
				ShardWorld: n,
			})
		loader.SkipEpochs(startEpoch)

		invN := float32(1) / float32(n)
		step := startEpoch * stepsPerEpoch
		for epoch := startEpoch; epoch < lastEpoch; epoch++ {
			var epochLoss metrics.Meter
			for batch := range loader.EpochN(stepsPerEpoch) {
				// All ranks draw the global batch's masks from their
				// lock-step streams and keep the local slice, so the
				// mask sequence matches the single-rank run.
				keep := model.DrawMasksRange(cfg.BatchSize, r.ID()*local, (r.ID()+1)*local)
				nn.ZeroGrads(params)
				var loss float64
				if mode == execResharded {
					loss = model.ForwardWithMask(batch.Images, batch.Size, keep)
					// Reshard after forward: drop every parameter
					// shard this rank does not own from the flat
					// mirror, exactly as FULL_SHARD frees gathered
					// units. Backward reads the live tensors from the
					// re-gathered mirror, so the all-gather must
					// genuinely restore the dropped shards — if it
					// moved wrong bytes, the zeros would reach the
					// model and the loss trajectory (checked against
					// the single-rank run) would diverge.
					opt.ScrubOutside(flatW, lo, hi)
					if bf16 {
						shardGroup.AllGatherBF16(r, flatW, nil, wire)
					} else {
						shardGroup.AllGather(r, flatW, nil)
					}
					opt.UnpackValues(params, flatW)
					model.BackwardStep()
				} else {
					loss = model.StepWithMask(batch.Images, batch.Size, keep)
				}

				// Local gradients are means over the local batch; the
				// 1/n scale turns the cross-rank sum into the global
				// mean the single-rank run computes. BF16 additionally
				// multiplies in the loss scale before gradients hit the
				// narrow wire.
				opt.PackGrads(flatG, params)
				lr := sched.LR(step)
				if bf16 {
					tensor.Scale(flatG[:dim], flatG[:dim], float32(scaler.Scale)*invN)
					stepBF16(r, bf16State{
						scaler: scaler, clipNorm: cfg.ClipNorm, lr: lr, mode: mode,
						bucketElems: bucketElems, flatG: flatG, flatW: flatW,
						master: master, wire: wire, dim: dim, lo: lo, hi: hi,
						shardGroup: shardGroup, replGroup: replGroup,
						shardOpt: shardOpt, params: params,
					})
				} else if mode == execReplicated {
					if n > 1 {
						tensor.Scale(flatG[:dim], flatG[:dim], invN)
					}
					for off := 0; off < padded; off += bucketElems {
						end := off + bucketElems
						if end > padded {
							end = padded
						}
						r.AllReduce(flatG[off:end])
					}
					opt.UnpackGrads(params, flatG)
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(params, cfg.ClipNorm)
					}
					optim.Step(lr)
				} else {
					if n > 1 {
						tensor.Scale(flatG[:dim], flatG[:dim], invN)
					}
					gShard := shardGroup.ReduceScatter(r, flatG)
					if replGroup != nil {
						// HYBRID: the shard groups hold group-local
						// gradient sums; all-reducing each shard across
						// its replica group completes the global mean.
						replGroup.AllReduce(r, gShard)
					}
					if cfg.ClipNorm > 0 {
						// Global-norm clipping over the sharded
						// gradient: the shard group's members hold
						// disjoint shards covering the whole flat
						// space, so their sums of squares all-reduce to
						// the same total the single-rank clip computes.
						norm := math.Sqrt(shardGroup.AllReduceScalar(r, sumSq(gShard)))
						if norm > cfg.ClipNorm && norm > 0 {
							tensor.Scale(gShard, gShard, float32(cfg.ClipNorm/norm))
						}
					}
					shardOpt.Step(lr, flatW[lo:hi], gShard)
					// Re-assemble the updated parameters. For the
					// resharded strategies this all-gather is the next
					// forward's parameter gather executed eagerly (the
					// executed analog of FSDP's prefetching): per-step
					// volumes are unchanged and every step ends with
					// bit-identical assembled replicas.
					shardGroup.AllGather(r, flatW, nil)
					opt.UnpackValues(params, flatW)
				}

				gLoss := r.AllReduceScalar(loss) / float64(n)
				loader.Recycle(batch)
				if r.ID() == 0 {
					epochLoss.Add(gLoss)
					res.LossCurve.Append(float64(step), gLoss)
				}
				step++
			}
			if r.ID() == 0 {
				res.EpochLoss.Append(float64(epoch), epochLoss.Mean())
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.4f  lr %.2e  [%d ranks, %s, %s]\n",
						epoch+1, cfg.Epochs, epochLoss.Mean(), sched.LR(step-1), n, plan.Name(), cfg.Precision)
				}
			}
		}

		// Capture the end-of-run training state: the ranks of the first
		// shard block hold disjoint fp32 master/moment shards covering
		// the whole flat space (for the replicated modes that block is
		// rank 0 alone).
		switch {
		case optim != nil: // FP32 replicated
			if r.ID() == 0 {
				opt.PackValues(st.Master, params)
				optim.ExportMoments(st.OptM, st.OptV)
				st.OptStep = optim.StepCount()
			}
		case r.ID() < part.Shards:
			if end := min(hi, dim); lo < end {
				if bf16 {
					copy(st.Master[lo:end], master[:end-lo])
				} else {
					copy(st.Master[lo:end], flatW[lo:end])
				}
				shardOpt.CopyMoments(st.OptM[lo:end], st.OptV[lo:end])
			}
			if r.ID() == 0 {
				st.OptStep = shardOpt.StepCount()
			}
		}
		if r.ID() == 0 {
			res.Steps = step - startEpoch*stepsPerEpoch
			st.Step = step
			st.Epoch = lastEpoch
			st.Precision = cfg.Precision
			if scaler != nil {
				st.LossScale = scaler.Scale
				st.ScaleGoodSteps = scaler.GoodSteps()
				res.FinalLossScale = scaler.Scale
				res.ScaleBackoffs = scaler.Backoffs()
				res.SkippedSteps = scaler.Skipped()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Model = models[0]
	res.replicas = models
	res.Comm = world.Stats()
	res.Traffic = fsdp.TrafficPerStep(plan, n, opt.FlatDim(models[0].Params()), cfg.Precision.WireBytes())
	res.State = st
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.ImagesPerSec = float64(res.Steps*cfg.BatchSize) / elapsed
	}
	return res, nil
}

// bf16State bundles one rank's per-step context for the BF16
// synchronization path.
type bf16State struct {
	scaler       *opt.LossScaler
	clipNorm, lr float64
	mode         execMode
	bucketElems  int
	flatG, flatW []float32
	master       []float32
	wire         []uint16
	dim, lo, hi  int
	shardGroup   *dist.Group
	replGroup    *dist.Group
	shardOpt     *opt.ShardedAdamW
	params       []*nn.Param
}

// stepBF16 runs the synchronization + optimizer half of one BF16 step,
// after flatG has been packed and scaled by lossScale/n: reduce the
// scaled gradients over the bf16 wire, detect overflow (locally where
// the reduction leaves replicated gradients, via a scalar all-reduce
// where each rank sees only its shard), then either skip the update
// (the scale backs off) or unscale, clip and update the fp32 master
// weights, re-deriving the bf16 working copy. The parameter all-gather of the sharded modes runs
// even on skipped steps — it is idempotent, the working copy being
// unchanged — so every step moves exactly the wire bytes
// fsdp.TrafficPerStep charges. The scaler keeps the skip/backoff
// tallies (LossScaler.Skipped/Backoffs).
func stepBF16(r *dist.Rank, s bf16State) {
	padded := len(s.flatG)
	// The scale the gradients currently carry; Update may move
	// scaler.Scale before the unscale happens.
	invScale := 1 / float32(s.scaler.Scale)
	if s.mode == execReplicated {
		for off := 0; off < padded; off += s.bucketElems {
			end := off + s.bucketElems
			if end > padded {
				end = padded
			}
			r.AllReduceBF16(s.flatG[off:end], s.wire[off:end])
		}
		// No collective needed for the verdict here: the bf16
		// all-reduce leaves every rank with bit-identical gradients, so
		// the local check is already the global one.
		if s.scaler.Update(opt.HasNonFinite(s.flatG)) {
			return
		}
		tensor.Scale(s.flatG, s.flatG, invScale)
		if s.clipNorm > 0 {
			if norm := math.Sqrt(sumSq(s.flatG[:s.dim])); norm > s.clipNorm && norm > 0 {
				tensor.Scale(s.flatG, s.flatG, float32(s.clipNorm/norm))
			}
		}
		s.shardOpt.Step(s.lr, s.master, s.flatG)
		tensor.RoundBF16(s.flatW, s.master)
		opt.UnpackValues(s.params, s.flatW)
		return
	}

	gShard := s.shardGroup.ReduceScatterBF16(r, s.flatG, s.wire)
	if s.replGroup != nil {
		s.replGroup.AllReduceBF16(r, gShard, s.wire[s.lo:s.hi])
	}
	overflow := r.AllReduceScalar(boolFlag(opt.HasNonFinite(gShard))) > 0
	if !s.scaler.Update(overflow) {
		tensor.Scale(gShard, gShard, invScale)
		if s.clipNorm > 0 {
			if norm := math.Sqrt(s.shardGroup.AllReduceScalar(r, sumSq(gShard))); norm > s.clipNorm && norm > 0 {
				tensor.Scale(gShard, gShard, float32(s.clipNorm/norm))
			}
		}
		s.shardOpt.Step(s.lr, s.master, gShard)
		tensor.RoundBF16(s.flatW[s.lo:s.hi], s.master)
	}
	s.shardGroup.AllGatherBF16(r, s.flatW, nil, s.wire)
	opt.UnpackValues(s.params, s.flatW)
}

// boolFlag maps an overflow verdict onto the scalar all-reduce domain.
func boolFlag(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sumSq accumulates Σx² in float64, matching nn.GradL2Norm's
// accumulation precision.
func sumSq(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}
