package train

import (
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/dataload"
	"repro/internal/dist"
	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// DistConfig configures real multi-rank pretraining over internal/dist.
// The embedded PretrainConfig is interpreted globally: BatchSize is the
// global batch (split evenly across ranks), and the learning-rate
// schedule, epochs and clipping act exactly as in the single-rank
// Pretrain — an N-rank run reproduces the single-rank loss trajectory
// up to the floating-point reassociation of the ring reductions.
type DistConfig struct {
	PretrainConfig
	// Ranks is the data-parallel world size (in-process goroutine
	// ranks). BatchSize must divide evenly by Ranks.
	Ranks int
	// Plan selects the gradient/optimizer synchronization strategy —
	// the full Section III-C matrix executes:
	//
	//	DDP, NO_SHARD, HYBRID_1GPU — replicated optimizer; gradients
	//	    all-reduced (DDP in fixed-size buckets of DDPBucketBytes)
	//	SHARD_GRAD_OP — ZeRO-1: gradients reduce-scattered, AdamW state
	//	    sharded per rank, updated parameters all-gathered
	//	FULL_SHARD — ZeRO-3-style: parameters additionally resharded
	//	    after forward and re-gathered in backward
	//	HYBRID_kGPUs (k>1) — FULL_SHARD inside k-rank shard groups,
	//	    gradient-shard all-reduce across the world/k replica groups
	//
	// The zero value defaults to fsdp.DefaultDDP().
	Plan fsdp.Plan
	// Link is the α–β link model used to price each executed collective
	// (dist.Stats measured vs modeled). Zero defaults to
	// dist.DefaultLink(Ranks).
	Link comm.Params
}

// DefaultDistPretrain returns the paper's recipe for the given MAE
// config, split across ranks with the DDP baseline plan.
func DefaultDistPretrain(m mae.Config, ranks int) DistConfig {
	return DistConfig{
		PretrainConfig: DefaultPretrain(m),
		Ranks:          ranks,
		Plan:           fsdp.DefaultDDP(),
	}
}

// DistResult extends PretrainResult with the distributed-execution
// telemetry: the measured-vs-modeled collective accounting and the
// per-step traffic the fsdp simulator predicts for the same plan.
type DistResult struct {
	PretrainResult
	// Ranks is the world size the run executed with.
	Ranks int
	// Comm is the World's per-collective accounting: calls, bytes each
	// rank actually sent around the ring, and the α–β model's
	// prediction for the same calls.
	Comm dist.Stats
	// Traffic is fsdp.TrafficPerStep for this plan/world/model — the
	// per-step wire bytes the Section IV simulator charges. The
	// executed byte counters in Comm match it exactly:
	// Comm.<op>.MeasuredWireBytes == Traffic.<op>Bytes × Steps.
	Traffic fsdp.Traffic

	// replicas holds every rank's model so tests can assert the ranks
	// stayed bit-identical.
	replicas []*mae.Model
}

// execMode is the synchronization schedule a plan compiles to.
type execMode int

const (
	// execReplicated: gradients all-reduced, replicated AdamW
	// (DDP, NO_SHARD, HYBRID_1GPU).
	execReplicated execMode = iota
	// execZeRO1: gradients reduce-scattered, rank-sharded AdamW,
	// updated parameters all-gathered (SHARD_GRAD_OP).
	execZeRO1
	// execResharded: as execZeRO1 but parameters are additionally
	// dropped after forward and re-gathered for backward, inside a
	// shard group that may be smaller than the world
	// (FULL_SHARD, HYBRID_kGPUs with k>1).
	execResharded
)

// compilePlan maps a validated fsdp.Plan onto the executor's schedule:
// the mode plus the shard-group size (world for FULL_SHARD, k for
// HYBRID_kGPUs, irrelevant otherwise).
func compilePlan(plan fsdp.Plan, ranks int) (execMode, int, error) {
	switch plan.Strategy {
	case fsdp.DDP, fsdp.NoShard:
		return execReplicated, 1, nil
	case fsdp.ShardGradOp:
		return execZeRO1, ranks, nil
	case fsdp.FullShard:
		return execResharded, ranks, nil
	case fsdp.HybridShard:
		if plan.GroupSize == 1 {
			// HYBRID_1GPU: a sharding group of one is pure data
			// parallelism — replicated state, world-wide all-reduce.
			return execReplicated, 1, nil
		}
		return execResharded, plan.GroupSize, nil
	default:
		return 0, 0, fmt.Errorf("train: unknown strategy %v", plan.Strategy)
	}
}

// PretrainDistributed runs MAE pretraining SPMD across cfg.Ranks
// in-process ranks: seed-identical replicas synchronized by a parameter
// broadcast at init, a rank-sharded sampler over the same global batch
// sequence as the single-rank run, per-rank forward/backward with the
// global batch's mask stream, and gradient/optimizer synchronization
// per cfg.Plan. The returned model is rank 0's replica (all replicas
// are bit-identical after every step — in the hybrid strategies the
// replica groups' all-reduce makes this hold across shard groups too).
func PretrainDistributed(cfg DistConfig, ds *geodata.Dataset) (*DistResult, error) {
	if err := cfg.MAE.Validate(); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("train: non-positive rank count %d", cfg.Ranks)
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: non-positive batch size or epochs")
	}
	if cfg.BatchSize%cfg.Ranks != 0 {
		return nil, fmt.Errorf("train: global batch %d not divisible by %d ranks", cfg.BatchSize, cfg.Ranks)
	}
	plan := cfg.Plan
	if plan == (fsdp.Plan{}) {
		plan = fsdp.DefaultDDP()
	}
	if plan.Strategy == fsdp.DDP && plan.DDPBucketBytes <= 0 {
		plan.DDPBucketBytes = fsdp.DefaultDDP().DDPBucketBytes
	}
	mode, group, err := compilePlan(plan, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(cfg.Ranks); err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}

	n := cfg.Ranks
	local := cfg.BatchSize / n
	stepsPerEpoch := ds.TrainCount / cfg.BatchSize
	if cfg.MaxStepsPerEpoch > 0 && stepsPerEpoch > cfg.MaxStepsPerEpoch {
		stepsPerEpoch = cfg.MaxStepsPerEpoch
	}
	if stepsPerEpoch == 0 {
		return nil, fmt.Errorf("train: dataset smaller than one global batch")
	}
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize),
		MinLR:       0,
		WarmupSteps: cfg.WarmupEpochs * stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	world := dist.New(n, dist.Options{Link: cfg.Link})
	res := &DistResult{Ranks: n}
	res.LossCurve.Name = cfg.MAE.Encoder.Name + " pretrain loss"
	res.EpochLoss.Name = cfg.MAE.Encoder.Name + " epoch loss"
	models := make([]*mae.Model, n)

	start := time.Now()
	err = world.Run(func(r *dist.Rank) error {
		// Every rank builds a replica from the same seed (which also
		// locks the mask streams together); the broadcast then enforces
		// bit-identical parameters from rank 0 regardless of how the
		// replica was initialized.
		model := mae.New(cfg.MAE, rng.New(cfg.Seed))
		models[r.ID()] = model
		params := model.Params()
		dim := opt.FlatDim(params)

		// Shard layout and communicators. The replicated mode shards
		// nothing but still pads the flat gradient for uniform ring
		// chunks; the sharded modes partition the padded space across
		// the shard group, aligned so HYBRID's replica-group ring over
		// one shard also chunks uniformly.
		var (
			shardGroup *dist.Group // FULL_SHARD collectives (sharded modes)
			replGroup  *dist.Group // HYBRID gradient all-reduce across shard groups
			part       opt.Partition
			lo, hi     int
		)
		switch mode {
		case execReplicated:
			part = opt.NewPartition(dim, 1, n)
		default:
			repl := n / group
			part = opt.NewPartition(dim, group, group*repl)
			// Shard groups are consecutive rank blocks (the paper's
			// intra-node placement); replica groups stride across them.
			first := r.ID() / group * group
			members := make([]int, group)
			for i := range members {
				members[i] = first + i
			}
			shardGroup = world.Subgroup(members)
			lo, hi = part.Range(r.ID() - first)
			if mode == execResharded && repl > 1 {
				peers := make([]int, repl)
				for i := range peers {
					peers[i] = r.ID()%group + i*group
				}
				replGroup = world.Subgroup(peers)
			}
		}
		padded := part.Padded

		initBuf := make([]float32, dim)
		if r.ID() == 0 {
			opt.PackValues(initBuf, params)
		}
		r.Broadcast(initBuf, 0)
		opt.UnpackValues(params, initBuf)

		flatG := make([]float32, padded)
		var (
			optim    *opt.AdamW
			shardOpt *opt.ShardedAdamW
			flatW    []float32
		)
		if mode == execReplicated {
			optim = opt.NewAdamW(params, cfg.WeightDecay)
		} else {
			shardOpt = opt.NewShardedAdamW(params, cfg.WeightDecay, lo, hi)
			flatW = make([]float32, padded)
			opt.PackValues(flatW, params)
		}

		// DDP buckets: fixed-size spans of the flat gradient, rounded
		// to a multiple of the world size so ring chunks stay uniform.
		bucketElems := padded
		if plan.Strategy == fsdp.DDP && n > 1 {
			bucketElems = int(plan.DDPBucketBytes) / 4 / n * n
			if bucketElems < n {
				bucketElems = n
			}
		}

		gen := ds.Gen
		loader := dataload.New(
			dataload.TrainSplit{D: ds, Count: ds.TrainCount, ImgLen: gen.ImageLen()},
			dataload.Config{
				BatchSize:  local,
				Workers:    cfg.Workers,
				Shuffle:    true,
				DropLast:   true,
				Seed:       cfg.Seed ^ 0xDA7A,
				ShardRank:  r.ID(),
				ShardWorld: n,
			})

		invN := float32(1) / float32(n)
		step := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			var epochLoss metrics.Meter
			for batch := range loader.EpochN(stepsPerEpoch) {
				// All ranks draw the global batch's masks from their
				// lock-step streams and keep the local slice, so the
				// mask sequence matches the single-rank run.
				keep := model.DrawMasksRange(cfg.BatchSize, r.ID()*local, (r.ID()+1)*local)
				nn.ZeroGrads(params)
				var loss float64
				if mode == execResharded {
					loss = model.ForwardWithMask(batch.Images, batch.Size, keep)
					// Reshard after forward: drop every parameter
					// shard this rank does not own from the flat
					// mirror, exactly as FULL_SHARD frees gathered
					// units. Backward reads the live tensors from the
					// re-gathered mirror, so the all-gather must
					// genuinely restore the dropped shards — if it
					// moved wrong bytes, the zeros would reach the
					// model and the loss trajectory (checked against
					// the single-rank run) would diverge.
					opt.ScrubOutside(flatW, lo, hi)
					shardGroup.AllGather(r, flatW, nil)
					opt.UnpackValues(params, flatW)
					model.BackwardStep()
				} else {
					loss = model.StepWithMask(batch.Images, batch.Size, keep)
				}

				// Local gradients are means over the local batch; the
				// 1/n scale turns the cross-rank sum into the global
				// mean the single-rank run computes.
				opt.PackGrads(flatG, params)
				if n > 1 {
					tensor.Scale(flatG[:dim], flatG[:dim], invN)
				}

				lr := sched.LR(step)
				if mode == execReplicated {
					for off := 0; off < padded; off += bucketElems {
						end := off + bucketElems
						if end > padded {
							end = padded
						}
						r.AllReduce(flatG[off:end])
					}
					opt.UnpackGrads(params, flatG)
					if cfg.ClipNorm > 0 {
						nn.ClipGradNorm(params, cfg.ClipNorm)
					}
					optim.Step(lr)
				} else {
					gShard := shardGroup.ReduceScatter(r, flatG)
					if replGroup != nil {
						// HYBRID: the shard groups hold group-local
						// gradient sums; all-reducing each shard across
						// its replica group completes the global mean.
						replGroup.AllReduce(r, gShard)
					}
					if cfg.ClipNorm > 0 {
						// Global-norm clipping over the sharded
						// gradient: the shard group's members hold
						// disjoint shards covering the whole flat
						// space, so their sums of squares all-reduce to
						// the same total the single-rank clip computes.
						norm := math.Sqrt(shardGroup.AllReduceScalar(r, sumSq(gShard)))
						if norm > cfg.ClipNorm && norm > 0 {
							tensor.Scale(gShard, gShard, float32(cfg.ClipNorm/norm))
						}
					}
					shardOpt.Step(lr, flatW[lo:hi], gShard)
					// Re-assemble the updated parameters. For the
					// resharded strategies this all-gather is the next
					// forward's parameter gather executed eagerly (the
					// executed analog of FSDP's prefetching): per-step
					// volumes are unchanged and every step ends with
					// bit-identical assembled replicas.
					shardGroup.AllGather(r, flatW, nil)
					opt.UnpackValues(params, flatW)
				}

				gLoss := r.AllReduceScalar(loss) / float64(n)
				loader.Recycle(batch)
				if r.ID() == 0 {
					epochLoss.Add(gLoss)
					res.LossCurve.Append(float64(step), gLoss)
				}
				step++
			}
			if r.ID() == 0 {
				res.EpochLoss.Append(float64(epoch), epochLoss.Mean())
				if cfg.Log != nil {
					fmt.Fprintf(cfg.Log, "epoch %3d/%d  loss %.4f  lr %.2e  [%d ranks, %s]\n",
						epoch+1, cfg.Epochs, epochLoss.Mean(), sched.LR(step-1), n, plan.Name())
				}
			}
		}
		if r.ID() == 0 {
			res.Steps = step
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.Model = models[0]
	res.replicas = models
	res.Comm = world.Stats()
	res.Traffic = fsdp.TrafficPerStep(plan, n, opt.FlatDim(models[0].Params()))
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.ImagesPerSec = float64(res.Steps*cfg.BatchSize) / elapsed
	}
	return res, nil
}

// sumSq accumulates Σx² in float64, matching nn.GradL2Norm's
// accumulation precision.
func sumSq(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}
