package parallel

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestMain raises GOMAXPROCS so the persistent pool's parallel dispatch
// path is exercised even on single-CPU CI machines (goroutines then
// timeshare one core, which still shakes out claiming/completion races).
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestSplitCoversRangeExactly(t *testing.T) {
	cases := []struct{ n, p int }{
		{0, 1}, {1, 1}, {1, 4}, {7, 3}, {8, 8}, {100, 7}, {1024, 16}, {3, 5},
	}
	for _, c := range cases {
		covered := make([]bool, c.n)
		prevHi := 0
		for w := 0; w < c.p; w++ {
			lo, hi := Split(c.n, c.p, w)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d w=%d: lo=%d, want contiguous from %d", c.n, c.p, w, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d p=%d: index %d covered twice", c.n, c.p, i)
				}
				covered[i] = true
			}
			prevHi = hi
		}
		if prevHi != c.n {
			t.Fatalf("n=%d p=%d: covered up to %d", c.n, c.p, prevHi)
		}
	}
}

func TestSplitPropertyPartition(t *testing.T) {
	// Property: for any n, p >= 1, the p ranges partition [0, n).
	f := func(n uint16, p uint8) bool {
		nn := int(n % 5000)
		pp := int(p%64) + 1
		total := 0
		prevHi := 0
		for w := 0; w < pp; w++ {
			lo, hi := Split(nn, pp, w)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == nn && prevHi == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBalance(t *testing.T) {
	// No worker's range may exceed any other's by more than one item.
	n, p := 1000, 7
	minSz, maxSz := n, 0
	for w := 0; w < p; w++ {
		lo, hi := Split(n, p, w)
		sz := hi - lo
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("imbalance: min=%d max=%d", minSz, maxSz)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 10000
	var hits [n]atomic.Int32
	ForGrain(n, 16, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	For(0, func(int) { ran = true })
	For(-5, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for non-positive n")
	}
}

func TestRangeCoversAll(t *testing.T) {
	const n = 4097
	var sum atomic.Int64
	RangeGrain(n, 8, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		sum.Add(local)
	})
	want := int64(n) * int64(n-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum=%d want %d", sum.Load(), want)
	}
}

func TestRangeSerialSmall(t *testing.T) {
	// Below the grain the body must be invoked exactly once, covering all.
	calls := 0
	RangeGrain(100, 1024, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("expected single full range, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls=%d want 1", calls)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("not all closures ran")
	}
	Do() // must not panic
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single closure did not run")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	seen := make([]atomic.Int32, workers*per)
	ForGrain(workers*per, 1, func(int) {
		seen[c.Next()].Add(1)
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("counter value %d handed out %d times", i, seen[i].Load())
		}
	}
	if c.Load() != workers*per {
		t.Fatalf("Load=%d", c.Load())
	}
	c.Reset()
	if c.Next() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

// TestNestedParallel exercises a parallel loop whose body issues
// further parallel loops (the attention layer's shape: ForGrain over
// heads, GEMM RangeGrain inside). The submitter-helps design must
// complete every level without deadlock or lost iterations.
func TestNestedParallel(t *testing.T) {
	const outer, inner = 64, 2048
	var sum atomic.Int64
	ForGrain(outer, 1, func(i int) {
		RangeGrain(inner, 64, func(lo, hi int) {
			var local int64
			for j := lo; j < hi; j++ {
				local += int64(j)
			}
			sum.Add(local)
		})
	})
	want := int64(outer) * int64(inner) * int64(inner-1) / 2
	if sum.Load() != want {
		t.Fatalf("sum=%d want %d", sum.Load(), want)
	}
}

// TestPoolReusePressure hammers the pool with many short jobs so that
// recycled job descriptors and stale channel entries interleave; every
// job must still visit each index exactly once.
func TestPoolReusePressure(t *testing.T) {
	const rounds, n = 500, 256
	hits := make([]atomic.Int32, n)
	for r := 0; r < rounds; r++ {
		for i := range hits {
			hits[i].Store(0)
		}
		ForGrain(n, 1, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("round %d: index %d visited %d times", r, i, got)
			}
		}
	}
}

func BenchmarkForGrain(b *testing.B) {
	data := make([]float32, 1<<20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Range(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}

// BenchmarkPoolDispatchSmall measures per-call overhead of a small
// parallel loop. With the persistent pool this must report ~0 allocs/op
// (the pre-pool implementation spawned fresh goroutines every call).
func BenchmarkPoolDispatchSmall(b *testing.B) {
	var sink atomic.Int64
	body := func(lo, hi int) { sink.Add(int64(hi - lo)) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeGrain(4096, 512, body)
	}
}

// BenchmarkPoolDispatchSerial is the grain-gated inline path: zero
// dispatch work at all.
func BenchmarkPoolDispatchSerial(b *testing.B) {
	var sink int64
	body := func(lo, hi int) { sink += int64(hi - lo) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeGrain(64, 1024, body)
	}
	_ = sink
}
