// Package parallel provides the shared-memory parallel execution
// substrate used by the pure-Go training stack: a persistent worker
// pool, a deterministic parallel-for over index ranges, and grain-size
// control so small problems stay on one goroutine.
//
// The pool starts lazily on the first parallel call and keeps
// GOMAXPROCS long-lived workers parked on a job channel. Each For/Range
// invocation publishes one job descriptor; workers (and the submitting
// goroutine, which always participates) claim contiguous sub-ranges via
// an atomic cursor, so no goroutines are spawned per call and a small
// parallel loop runs with zero steady-state allocations. Job
// descriptors are recycled through a sync.Pool.
//
// The split is always the deterministic contiguous partition computed
// by Split — worker scheduling affects only which goroutine executes a
// sub-range, never the sub-range boundaries — so callers observe the
// same work decomposition on every run. Nested parallel calls are safe:
// an inner call's submitter helps execute its own job, which guarantees
// progress even when every pool worker is blocked in an outer job.
//
// All heavy numeric kernels in internal/tensor route through this
// package, which keeps goroutine fan-out bounded by GOMAXPROCS and
// amortizes goroutine start-up across an entire training run.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinGrain is the default smallest amount of work (loop iterations)
// worth shipping to another goroutine. Callers can override per call.
const MinGrain = 1024

// maxProcs returns the degree of parallelism to use.
func maxProcs() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// job describes one parallel-for invocation. Exactly one of rbody and
// fbody is non-nil. The n items are divided into p tasks via Split.
//
// Jobs are recycled through jobPool, so a worker may receive a jobRef
// whose descriptor has since been reused for a newer invocation. All
// claiming therefore goes through state, a single atomic word packing
// (generation << 32 | claim cursor): a claim is a CAS that both checks
// the generation from the ref and advances the cursor, so a stale ref
// can never claim — or even observe the mutable fields of — a later
// generation. The CAS observing the publishing Store also gives the
// claimer a happens-before edge to the plain field writes.
// (Generations wrap at 2^32; an ABA would need a worker to sleep across
// 4 billion dispatches of one descriptor while holding its ref.)
type job struct {
	rbody     func(lo, hi int)
	fbody     func(i int)
	n, p      int
	state     atomic.Uint64
	remaining atomic.Int64
	done      chan struct{}
}

// jobRef is the value sent to workers: the descriptor plus the
// generation and task count it was published with, so workers need not
// read any mutable job field before a successful gen-checked claim.
type jobRef struct {
	j   *job
	gen uint32
	p   uint32
}

var (
	poolOnce sync.Once
	jobs     chan jobRef
	jobPool  = sync.Pool{New: func() any {
		return &job{done: make(chan struct{}, 1)}
	}}
)

// startPool launches the persistent workers. The pool size is fixed at
// the GOMAXPROCS value observed on first use.
func startPool() {
	p := maxProcs()
	jobs = make(chan jobRef, 64*p)
	for w := 0; w < p; w++ {
		go func() {
			for ref := range jobs {
				runTasks(ref)
			}
		}()
	}
}

// runTasks claims and executes tasks of ref's generation until none
// remain unclaimed (or the descriptor has moved on to a new
// generation, in which case the ref is stale and there is nothing to
// do).
func runTasks(ref jobRef) {
	j := ref.j
	for {
		v := j.state.Load()
		if uint32(v>>32) != ref.gen || uint32(v) >= ref.p {
			return
		}
		if !j.state.CompareAndSwap(v, v+1) {
			continue
		}
		t := int(uint32(v))
		lo, hi := Split(j.n, j.p, t)
		if j.rbody != nil {
			j.rbody(lo, hi)
		} else {
			for i := lo; i < hi; i++ {
				j.fbody(i)
			}
		}
		if j.remaining.Add(-1) == 0 {
			j.done <- struct{}{}
		}
	}
}

// dispatch publishes a job with p tasks over [0, n), helps execute it,
// and waits for completion. Wake-up sends are non-blocking: if the job
// channel is full every worker is already busy, and the submitting
// goroutine (plus workers finishing earlier jobs) still drains the job.
func dispatch(n, p int, rbody func(lo, hi int), fbody func(i int)) {
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	gen := uint32(j.state.Load()>>32) + 1
	j.rbody, j.fbody, j.n, j.p = rbody, fbody, n, p
	j.remaining.Store(int64(p))
	j.state.Store(uint64(gen) << 32) // cursor 0: publishes the job
	ref := jobRef{j, gen, uint32(p)}
wake:
	for w := 0; w < p-1; w++ {
		select {
		case jobs <- ref:
		default:
			break wake // channel full: workers are saturated already
		}
	}
	runTasks(ref)
	<-j.done
	// All claimed tasks have finished (remaining hit 0), so no stale
	// reader can still dereference the closures; drop them for the GC.
	j.rbody, j.fbody = nil, nil
	jobPool.Put(j)
}

// For runs body(i) for every i in [0, n) using up to GOMAXPROCS
// goroutines from the persistent pool. The split is contiguous and
// deterministic: task w covers the half-open range [w*n/p, (w+1)*n/p).
// For small n the body runs inline on the calling goroutine.
func For(n int, body func(i int)) {
	ForGrain(n, MinGrain, body)
}

// ForGrain is For with an explicit grain size: if n < grain the loop
// runs serially; otherwise at most n/grain (capped at GOMAXPROCS)
// tasks are claimed by the pool.
func ForGrain(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	p := workersFor(n, grain)
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	dispatch(n, p, nil, body)
}

// Range runs body(lo, hi) on contiguous sub-ranges of [0, n) in
// parallel. This is the preferred form for numeric kernels since the
// body can iterate locally without per-index closure overhead.
func Range(n int, body func(lo, hi int)) {
	RangeGrain(n, MinGrain, body)
}

// RangeGrain is Range with an explicit grain size.
func RangeGrain(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := workersFor(n, grain)
	if p == 1 {
		body(0, n)
		return
	}
	dispatch(n, p, body, nil)
}

// Split returns the half-open range [lo, hi) assigned to worker w when
// n items are divided evenly across p workers. The first n%p workers
// receive one extra item, so the union of all ranges is exactly [0, n)
// and ranges never overlap.
func Split(n, p, w int) (lo, hi int) {
	q, r := n/p, n%p
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// workersFor picks the worker count for n items at the given grain.
func workersFor(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	p := maxProcs()
	if byWork := n / grain; byWork < p {
		p = byWork
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Do runs the given closures concurrently and waits for all of them.
// It is a convenience for forking a small, fixed set of tasks. Unlike
// For/Range, Do guarantees each closure its own goroutine (closures may
// legitimately block on one another), so it does not use the pool; it
// is not for hot paths.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// Counter is a lock-free monotonically increasing counter shared across
// workers; used by data loaders to hand out sample indices.
type Counter struct {
	v atomic.Int64
}

// Next returns the next index, starting from 0.
func (c *Counter) Next() int64 { return c.v.Add(1) - 1 }

// Load returns the number of indices handed out so far.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }
