// Package parallel provides the shared-memory parallel execution
// substrate used by the pure-Go training stack. It offers a persistent
// worker pool, a deterministic parallel-for over index ranges, and
// grain-size control so small problems stay on one goroutine.
//
// All heavy numeric kernels in internal/tensor route through this
// package, which keeps goroutine fan-out bounded by GOMAXPROCS and
// amortizes goroutine start-up across an entire training run.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinGrain is the default smallest amount of work (loop iterations)
// worth shipping to another goroutine. Callers can override per call.
const MinGrain = 1024

// maxProcs returns the degree of parallelism to use.
func maxProcs() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// For runs body(i) for every i in [0, n) using up to GOMAXPROCS
// goroutines. The split is contiguous and deterministic: worker w
// receives the half-open range [w*n/p, (w+1)*n/p). For small n the body
// runs inline on the calling goroutine.
func For(n int, body func(i int)) {
	ForGrain(n, MinGrain, body)
}

// ForGrain is For with an explicit grain size: if n < grain the loop
// runs serially; otherwise at most n/grain (capped at GOMAXPROCS)
// workers are used.
func ForGrain(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	p := workersFor(n, grain)
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo, hi := Split(n, p, w)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Range runs body(lo, hi) on contiguous sub-ranges of [0, n) in
// parallel. This is the preferred form for numeric kernels since the
// body can iterate locally without per-index closure overhead.
func Range(n int, body func(lo, hi int)) {
	RangeGrain(n, MinGrain, body)
}

// RangeGrain is Range with an explicit grain size.
func RangeGrain(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := workersFor(n, grain)
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo, hi := Split(n, p, w)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Split returns the half-open range [lo, hi) assigned to worker w when
// n items are divided evenly across p workers. The first n%p workers
// receive one extra item, so the union of all ranges is exactly [0, n)
// and ranges never overlap.
func Split(n, p, w int) (lo, hi int) {
	q, r := n/p, n%p
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// workersFor picks the worker count for n items at the given grain.
func workersFor(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	p := maxProcs()
	if byWork := n / grain; byWork < p {
		p = byWork
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Do runs the given closures concurrently and waits for all of them.
// It is a convenience for forking a small, fixed set of tasks (for
// example, computing gradient statistics while the optimizer step for
// another layer proceeds).
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// Counter is a lock-free monotonically increasing counter shared across
// workers; used by data loaders to hand out sample indices.
type Counter struct {
	v atomic.Int64
}

// Next returns the next index, starting from 0.
func (c *Counter) Next() int64 { return c.v.Add(1) - 1 }

// Load returns the number of indices handed out so far.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
