// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation, producing the same rows/series the
// paper reports. cmd/repro and cmd/perfsim drive these; the root-level
// benchmarks wrap them one-to-one.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote rendered after the grid.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned monospace text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.2f", 100*v)
}
func gb(v float64) string { return fmt.Sprintf("%.1f", v/1e9) }
