package experiments

import (
	"fmt"
	"io"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/probe"
	"repro/internal/train"
	"repro/internal/vit"
)

// ExtensionResult carries the Section VI "envisioned next steps"
// artifacts: few-shot curves, a segmentation probe, and a fine-tuning
// versus linear-probing comparison, all from one pretrained encoder.
type ExtensionResult struct {
	Model     string
	FewShot   []*probe.Result
	Shots     []int
	Seg       *probe.SegResult
	Probe     *probe.Result
	FineTune  *probe.FineTuneResult
	ChancePct float64
}

// RunExtensions pretrains one analog encoder and evaluates the three
// extension tasks on the UCM analog.
func RunExtensions(s Scale, logw io.Writer) (*ExtensionResult, error) {
	enc, err := vit.Analog("ViT-1B", s.ImageSize, s.PatchSize, s.Channels)
	if err != nil {
		return nil, err
	}
	suite := geodata.NewSuite(s.SuiteScale, s.ImageSize, s.Channels, s.Seed)
	ucm := suite.Probe[1]

	cfg := train.PretrainConfig{
		MAE:              mae.Default(enc),
		BatchSize:        s.BatchSize,
		Epochs:           s.PretrainEpochs,
		BaseLR:           s.PretrainLR,
		WeightDecay:      0.05,
		WarmupEpochs:     1,
		ClipNorm:         5,
		Workers:          s.Workers,
		Seed:             s.Seed,
		Log:              logw,
		MaxStepsPerEpoch: s.MaxStepsPerEpoch,
	}
	pr, err := train.Pretrain(cfg, suite.Pretrain)
	if err != nil {
		return nil, err
	}

	res := &ExtensionResult{
		Model:     enc.Name,
		ChancePct: 100.0 / float64(ucm.Classes()),
	}
	// Keep only shot counts the scaled train split can satisfy.
	for _, k := range []int{1, 2, 5} {
		if k*ucm.Classes() <= ucm.TrainCount {
			res.Shots = append(res.Shots, k)
		}
	}

	pc := probe.Config{BatchSize: s.ProbeBatch, Epochs: s.ProbeEpochs, BaseLR: s.ProbeLR, Seed: s.Seed}
	res.FewShot, err = probe.ShotSweep(pc, pr.Model.Features, enc.Width, ucm, res.Shots)
	if err != nil {
		return nil, fmt.Errorf("few-shot: %w", err)
	}
	res.Probe, err = probe.Run(pc, pr.Model.Features, enc.Width, ucm)
	if err != nil {
		return nil, fmt.Errorf("probe: %w", err)
	}

	sc := probe.SegConfig{Epochs: s.ProbeEpochs / 2, BatchSize: s.BatchSize, BaseLR: 0.1, Seed: s.Seed}
	if sc.Epochs < 1 {
		sc.Epochs = 1
	}
	res.Seg, err = probe.RunSegmentation(sc, pr.Model.TokenFeatures, enc.Width, ucm, s.PatchSize)
	if err != nil {
		return nil, fmt.Errorf("segmentation: %w", err)
	}

	ft := probe.FineTuneConfig{Epochs: s.PretrainEpochs / 3, BatchSize: s.BatchSize,
		BaseLR: 0.02, WeightDecay: 0.05, Seed: s.Seed}
	if ft.Epochs < 1 {
		ft.Epochs = 1
	}
	res.FineTune, err = probe.FineTune(ft, pr.Model, ucm)
	if err != nil {
		return nil, fmt.Errorf("fine-tune: %w", err)
	}
	return res, nil
}

// ExtensionTable renders the Section VI artifacts.
func (r *ExtensionResult) ExtensionTable() Table {
	t := Table{
		Title:  fmt.Sprintf("Section VI extensions — %s on UCM analog", r.Model),
		Header: []string{"Task", "Metric", "Value"},
	}
	for i, k := range r.Shots {
		t.AddRow(fmt.Sprintf("few-shot (k=%d)", k), "top-1 %", pct(r.FewShot[i].FinalTop1))
	}
	t.AddRow("linear probe (full split)", "top-1 %", pct(r.Probe.FinalTop1))
	t.AddRow("fine-tune (full split)", "top-1 %", pct(r.FineTune.FinalTop1))
	t.AddRow("segmentation probe", "patch acc %", pct(r.Seg.PatchAccuracy))
	t.AddRow("segmentation probe", "mean IoU", f2(r.Seg.MeanIoU))
	t.AddNote("chance top-1 is %.2f%%; segmentation classes: background/structure/grid.", r.ChancePct)
	return t
}
