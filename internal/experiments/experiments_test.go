package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/fsdp"
	"repro/internal/perfmodel"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableIExperiment(t *testing.T) {
	tab := TableIExperiment()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows=%d want 6", len(tab.Rows))
	}
	if tab.Rows[0][0] != "ViT-Base" || tab.Rows[5][0] != "ViT-15B" {
		t.Fatal("model ordering wrong")
	}
}

func TestTableIIExperiment(t *testing.T) {
	tab := TableIIExperiment(10, 16, 3, 1)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows=%d want 5", len(tab.Rows))
	}
	// Paper columns fixed regardless of scale.
	if tab.Rows[0][1] != "990848" {
		t.Fatalf("pretrain count cell=%q", tab.Rows[0][1])
	}
}

func TestFig1Experiment(t *testing.T) {
	tab, err := Fig1Experiment([]int{1, 4, 64}, perfmodel.Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// IO column must exceed syn column on every row (never IO-bound).
	for _, row := range tab.Rows {
		io := mustF(t, row[3])
		syn := mustF(t, row[5])
		if io <= syn {
			t.Fatalf("IO-bound row: %v", row)
		}
	}
	// Comm gap must grow from the first to the last row.
	if mustF(t, tab.Rows[0][7]) >= mustF(t, tab.Rows[2][7]) {
		t.Fatalf("comm gap did not grow: %v vs %v", tab.Rows[0][7], tab.Rows[2][7])
	}
}

func TestRestartExperiment(t *testing.T) {
	tab, err := RestartExperiment([]int{1, 64, 9408}, perfmodel.Precision{}, fsdp.FaultModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	// Overhead grows with scale; efficiency shrinks but stays positive.
	prev := -1.0
	for _, row := range tab.Rows {
		overhead := mustF(t, row[8])
		eff := mustF(t, row[9])
		if overhead <= prev {
			t.Fatalf("overhead not increasing with nodes: %v", tab.Rows)
		}
		prev = overhead
		if eff <= 0 || eff > 100 {
			t.Fatalf("efficiency %v%% out of range", eff)
		}
		if mustF(t, row[4]) < 1 {
			t.Fatalf("fewer than one step per checkpoint interval: %v", row)
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	tab, err := Fig2Experiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*3*2 {
		t.Fatalf("rows=%d want 18", len(tab.Rows))
	}
}

func TestFig3Experiment(t *testing.T) {
	tab, err := Fig3Experiment([]int{1, 8}, perfmodel.Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4*5 {
		t.Fatalf("rows=%d want 20", len(tab.Rows))
	}
}

func TestFig4Experiment(t *testing.T) {
	tab, err := Fig4Experiment([]int{4, 32}, perfmodel.Precision{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6+5 {
		t.Fatalf("rows=%d want 11", len(tab.Rows))
	}
}

func TestFig4TraceExperiment(t *testing.T) {
	traces, tab, err := Fig4TraceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 || len(tab.Rows) != 3 {
		t.Fatalf("traces=%d rows=%d", len(traces), len(tab.Rows))
	}
}

func TestMinGPUTable(t *testing.T) {
	tab := MinGPUTable()
	want := map[string]string{"ViT-3B": "1", "ViT-5B": "2", "ViT-15B": "4"}
	for _, row := range tab.Rows {
		if row[2] != want[row[0]] {
			t.Fatalf("%s MinGPUs=%s want %s", row[0], row[2], want[row[0]])
		}
	}
}

// TestRunDownstreamEndToEnd is the smallest full Section V pipeline:
// four models pretrained and probed at test scale. It checks the
// structural contract; the Fig5/Table III *trend* assertions live in
// the root-level benchmarks and cmd/repro where bigger scales run.
func TestRunDownstreamEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunDownstream(TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 4 {
		t.Fatalf("models=%v", res.Models)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("datasets=%v", res.Datasets)
	}
	for _, m := range res.Models {
		if res.PretrainLoss[m] == nil || len(res.PretrainLoss[m].Y) == 0 {
			t.Fatalf("no loss curve for %s", m)
		}
		for _, d := range res.Datasets {
			r := res.Probe[m][d]
			if r == nil {
				t.Fatalf("missing probe %s/%s", m, d)
			}
			if r.FinalTop1 < 0 || r.FinalTop1 > 1 {
				t.Fatalf("top1 %v out of range", r.FinalTop1)
			}
		}
	}
	// Rendering must not panic and must include every model.
	for _, tab := range []Table{res.TableIIIExperiment(), res.Fig5Experiment(), res.Fig6Experiment()} {
		out := tab.Render()
		if !strings.Contains(out, "ViT-3B-analog") {
			t.Fatalf("table missing largest model:\n%s", out)
		}
	}
	_ = res.AccuracyGain("UCM")
}

func mustF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric", s)
	}
	return v
}

func TestRunExtensionsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := RunExtensions(TestScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FewShot) != len(res.Shots) {
		t.Fatalf("few-shot results %d for %d shot counts", len(res.FewShot), len(res.Shots))
	}
	if res.Seg == nil || res.Seg.MeanIoU < 0 || res.Seg.MeanIoU > 1 {
		t.Fatalf("segmentation result invalid: %+v", res.Seg)
	}
	if res.FineTune == nil {
		t.Fatal("missing fine-tune result")
	}
	out := res.ExtensionTable().Render()
	for _, want := range []string{"few-shot (k=1)", "segmentation probe", "fine-tune"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestFigPrecisionThreading: the scaling figures accept a numeric
// profile instead of hard-coding element sizes — fp32 must show higher
// per-GPU memory and no higher throughput than the paper's bf16
// profile, and the zero value must keep the published (bf16) tables.
func TestFigPrecisionThreading(t *testing.T) {
	def, err := Fig3Experiment([]int{8}, perfmodel.Precision{})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Fig3Experiment([]int{8}, perfmodel.MixedPrecision())
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fig3Experiment([]int{8}, perfmodel.FP32Precision())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bf.Title, "bf16") || !strings.Contains(fp.Title, "fp32") {
		t.Fatalf("titles do not name the precision: %q / %q", bf.Title, fp.Title)
	}
	for r := range def.Rows {
		for c := range def.Rows[r] {
			if def.Rows[r][c] != bf.Rows[r][c] {
				t.Fatalf("zero-value precision drifted from the published bf16 table at row %d col %d", r, c)
			}
		}
	}
	for r := range bf.Rows {
		bfMem, fpMem := mustF(t, bf.Rows[r][2]), mustF(t, fp.Rows[r][2])
		if fpMem <= bfMem {
			t.Fatalf("row %d (%s/%s): fp32 memory %v GB not above bf16 %v GB",
				r, bf.Rows[r][0], bf.Rows[r][1], fpMem, bfMem)
		}
		// Throughput ordering: the FSDP family doubles its wire width
		// under fp32, so bf16 must be at least as fast. DDP is exempt —
		// it reduces at master width either way (GradReduceBytes), and
		// bf16's extra working-copy state makes its optimizer sweep
		// marginally slower.
		if bf.Rows[r][1] != "DDP" {
			bfIPS, fpIPS := mustF(t, bf.Rows[r][3]), mustF(t, fp.Rows[r][3])
			if fpIPS > bfIPS {
				t.Fatalf("row %d (%s/%s): fp32 throughput %v above bf16 %v",
					r, bf.Rows[r][0], bf.Rows[r][1], fpIPS, bfIPS)
			}
		}
	}
}
