package experiments

import (
	"fmt"

	"repro/internal/fsdp"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// RestartExperiment prices fault tolerance for the Figure 1 pretraining
// workload over the paper's node sweep (and beyond, to full Frontier):
// the simulator's step time converts the Young/Daly-optimal checkpoint
// interval into steps between checkpoints, and the overhead columns
// decompose the machine time lost to checkpoint writes, re-done work
// and restarts at each scale. fm's zero value takes
// fsdp.DefaultFaultModel — its CheckpointSec/RestartSec are the
// executed quantities train.ElasticResult measures (bench-dist records
// them in BENCH_dist.json), so the table is refreshable from measured
// restart costs.
func RestartExperiment(nodes []int, prec perfmodel.Precision, fm fsdp.FaultModel) (Table, error) {
	if len(nodes) == 0 {
		nodes = append(append([]int{}, Fig1Nodes...), 256, 1024, 9408)
	}
	if fm == (fsdp.FaultModel{}) {
		fm = fsdp.DefaultFaultModel()
	}
	prec = normalizePrecision(prec)
	m := hw.Frontier()
	w := perfmodel.MAEWorkload(fig1Model(), 32, 0.75)
	w.Prec = prec
	plan := fsdp.BestPractice(fsdp.NoShard, 0)

	t := Table{
		Title: fmt.Sprintf("Checkpoint-restart pricing — MAE ViT-3B, %s, node MTBF %.1fy, ckpt %.0fs, restart %.0fs",
			precisionName(prec), fm.NodeMTBF/(365*24*3600), fm.CheckpointSec, fm.RestartSec),
		Header: []string{"Nodes", "MTBF[h]", "tau_young[s]", "tau_daly[s]", "steps/ckpt",
			"ckpt %", "lost %", "restart %", "overhead %", "efficiency %"},
	}
	for _, n := range nodes {
		syn, err := fsdp.Simulate(w, m, n, plan)
		if err != nil {
			return t, err
		}
		o, err := fm.Optimal(n)
		if err != nil {
			return t, err
		}
		young := fsdp.YoungInterval(fm.CheckpointSec, o.SystemMTBF)
		t.AddRow(fmt.Sprint(n),
			f1(o.SystemMTBF/3600),
			f0(young), f0(o.Interval),
			f0(o.Interval/syn.StepTime),
			f2(100*o.CheckpointFrac), f2(100*o.LostWorkFrac), f2(100*o.RestartFrac),
			f2(100*o.Overhead), f1(100*o.Efficiency))
	}
	t.AddNote("Young/Daly optimal interval; lost %% is the expected half-interval redone per failure. " +
		"At full Frontier the system MTBF is hours, not days — the regime the elastic shrink-and-resume path targets.")
	return t, nil
}
