package experiments

import (
	"fmt"

	"repro/internal/fsdp"
	"repro/internal/geodata"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/trace"
	"repro/internal/vit"
)

// Fig1Nodes / Fig3Nodes are the node counts of the paper's weak-scaling
// sweeps.
var (
	Fig1Nodes = []int{1, 2, 4, 8, 16, 32, 64}
	Fig3Nodes = []int{1, 2, 4, 8, 16, 32, 64}
)

// fig1Model is the Figure 1 pretraining configuration: ViT-3B at the
// paper's 512×512 pretraining resolution (patch 16 keeps the grid
// integral; the paper's 14-pixel patches do not divide 512).
func fig1Model() vit.Config {
	cfg := vit.ViT3B
	cfg.ImageSize = 512
	cfg.PatchSize = 16
	return cfg
}

// TableIExperiment regenerates Table I: the six ViT variants with our
// exact parameter counts alongside the paper's printed values.
func TableIExperiment() Table {
	t := Table{
		Title:  "Table I — ViT model architectures",
		Header: []string{"Model", "Width", "Depth", "MLP", "Heads", "Params[M] (ours)", "Params[M] (paper)"},
	}
	for _, cfg := range vit.TableI {
		t.AddRow(cfg.Name,
			fmt.Sprint(cfg.Width), fmt.Sprint(cfg.Depth), fmt.Sprint(cfg.MLP), fmt.Sprint(cfg.Heads),
			f0(float64(cfg.EncoderParams())/1e6),
			f0(vit.PaperParamsM[cfg.Name]))
	}
	t.AddNote("ViT-5B as printed (5349M) is not reachable from its own width/depth/MLP " +
		"under standard ViT algebra (≈3802M); all other rows agree to <2%%.")
	return t
}

// TableIIExperiment regenerates Table II: the paper's dataset inventory
// next to the procedural analogs at the given scale divisor.
func TableIIExperiment(scale, imageSize, channels int, seed uint64) Table {
	suite := geodata.NewSuite(scale, imageSize, channels, seed)
	t := Table{
		Title: "Table II — datasets (paper vs procedural analogs)",
		Header: []string{"Dataset", "Train (paper)", "Test (paper)", "Classes",
			fmt.Sprintf("Train (analog /%d)", scale), "Test (analog)"},
	}
	analog := map[string][2]int{
		"MillionAID-pretrain": {suite.Pretrain.TrainCount, 0},
	}
	for _, d := range suite.Probe {
		analog[d.Name] = [2]int{d.TrainCount, d.TestCount}
	}
	for _, row := range geodata.PaperTableII {
		a := analog[row.Name]
		test := "-"
		aTest := "-"
		if !row.PretrainOnly {
			test = fmt.Sprint(row.TestSamples)
			aTest = fmt.Sprint(a[1])
		}
		t.AddRow(row.Name, fmt.Sprint(row.TrainSamples), test, fmt.Sprint(row.Classes),
			fmt.Sprint(a[0]), aTest)
	}
	return t
}

// Fig1Experiment regenerates Figure 1: weak scaling of MAE-3B
// pretraining with the real / syn / syn-no-comm / IO / ideal series.
// prec selects the numeric profile of the simulated training (the zero
// value defaults to the paper's bf16 mixed precision); the IO curve is
// precision-independent, since the loader decodes fp32 pixels either
// way.
func Fig1Experiment(nodes []int, prec perfmodel.Precision) (Table, error) {
	if len(nodes) == 0 {
		nodes = Fig1Nodes
	}
	prec = normalizePrecision(prec)
	m := hw.Frontier()
	w := perfmodel.MAEWorkload(fig1Model(), 32, 0.75)
	w.Prec = prec
	io := perfmodel.DefaultIO()
	plan := fsdp.BestPractice(fsdp.NoShard, 0)

	t := Table{
		Title:  "Figure 1 — MAE ViT-3B weak scaling (images/s), NO_SHARD, local batch 32, " + precisionName(prec),
		Header: []string{"Nodes", "GPUs", "ideal", "IO", "syn_no_comm", "syn", "real", "comm gap %"},
	}
	base, err := fsdp.Simulate(w, m, 1, plan)
	if err != nil {
		return t, err
	}
	for _, n := range nodes {
		syn, err := fsdp.Simulate(w, m, n, plan)
		if err != nil {
			return t, err
		}
		noComm, err := fsdp.SimulateNoComm(w, m, n)
		if err != nil {
			return t, err
		}
		ioIPS := io.ImagesPerSec(n)
		real := fsdp.RealThroughput(syn, ioIPS)
		gap := 1 - syn.ImagesPerSec/noComm.ImagesPerSec
		t.AddRow(fmt.Sprint(n), fmt.Sprint(m.TotalGPUs(n)),
			f0(base.ImagesPerSec*float64(n)), f0(ioIPS),
			f0(noComm.ImagesPerSec), f0(syn.ImagesPerSec), f0(real), f1(100*gap))
	}
	t.AddNote("paper: IO above syn at every scale (never IO-bound); comm gap grows to ≈22%% at 64 nodes.")
	return t, nil
}

// Fig2Experiment regenerates Figure 2: ViT-5B throughput on 8 nodes for
// FULL_SHARD / SHARD_GRAD_OP / HYBRID_2GPUs × prefetch policy ×
// limit_all_gathers.
func Fig2Experiment() (Table, error) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	t := Table{
		Title:  "Figure 2 — ViT-5B images/s on 8 nodes by FSDP configuration",
		Header: []string{"Strategy", "Prefetch", "limit_all_gathers", "images/s"},
	}
	strategies := []fsdp.Plan{
		{Strategy: fsdp.FullShard},
		{Strategy: fsdp.ShardGradOp},
		{Strategy: fsdp.HybridShard, GroupSize: 2},
	}
	for _, s := range strategies {
		for _, pf := range []fsdp.Prefetch{fsdp.PrefetchNone, fsdp.BackwardPost, fsdp.BackwardPre} {
			for _, limit := range []bool{false, true} {
				p := s
				p.Prefetch = pf
				p.LimitAllGathers = limit
				r, err := fsdp.Simulate(w, m, 8, p)
				if err != nil {
					return t, err
				}
				t.AddRow(p.Name(), pf.String(), fmt.Sprint(limit), f0(r.ImagesPerSec))
			}
		}
	}
	t.AddNote("paper: BACKWARD_PRE and limit_all_gathers give the best throughput; margins are small.")
	return t, nil
}

// fig3Strategies are the Figure 3 configurations for single-GPU models.
func fig3Strategies() []fsdp.Plan {
	return []fsdp.Plan{
		fsdp.DefaultDDP(),
		fsdp.BestPractice(fsdp.NoShard, 0),
		fsdp.BestPractice(fsdp.HybridShard, 1),
		fsdp.BestPractice(fsdp.HybridShard, 2),
		fsdp.BestPractice(fsdp.FullShard, 0),
	}
}

// Fig3Experiment regenerates Figure 3: weak scaling and memory of
// ViT-Base/Huge/1B/3B under DDP, NO_SHARD, HYBRID_1GPU, HYBRID_2GPUs,
// FULL_SHARD. prec selects the numeric profile (zero = the paper's
// bf16 mixed precision; DDP still reduces master-width gradients, per
// Precision.GradReduceBytes).
func Fig3Experiment(nodes []int, prec perfmodel.Precision) (Table, error) {
	if len(nodes) == 0 {
		nodes = Fig3Nodes
	}
	prec = normalizePrecision(prec)
	m := hw.Frontier()
	t := Table{
		Title:  "Figure 3 — weak scaling (images/s) and per-GPU memory (GB), local batch 32, " + precisionName(prec),
		Header: []string{"Model", "Strategy", "Mem GB"},
	}
	for _, n := range nodes {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for _, cfg := range []vit.Config{vit.ViTBase, vit.ViTHuge, vit.ViT1B, vit.ViT3B} {
		w := perfmodel.ViTWorkload(cfg, 32)
		w.Prec = prec
		for _, plan := range fig3Strategies() {
			row := []string{cfg.Name, plan.Name(), ""}
			var mem float64
			for i, n := range nodes {
				r, err := fsdp.Simulate(w, m, n, plan)
				if err != nil {
					return t, err
				}
				row = append(row, f0(r.ImagesPerSec))
				if i == len(nodes)-1 {
					mem = r.MemoryPerGPU
				}
			}
			row[2] = gb(mem)
			t.AddRow(row...)
		}
	}
	t.AddNote("memory column is at the largest node count (FULL_SHARD memory shrinks with world size; others constant).")
	return t, nil
}

// Fig4Experiment regenerates Figure 4's throughput/memory panels for
// ViT-5B and ViT-15B, which do not fit on a single GPU. prec selects
// the numeric profile (zero = the paper's bf16 mixed precision).
func Fig4Experiment(nodes []int, prec perfmodel.Precision) (Table, error) {
	if len(nodes) == 0 {
		nodes = []int{4, 8, 16, 32, 64}
	}
	prec = normalizePrecision(prec)
	m := hw.Frontier()
	t := Table{
		Title:  "Figure 4 — ViT-5B and ViT-15B weak scaling (images/s) and per-GPU memory (GB), " + precisionName(prec),
		Header: []string{"Model", "Strategy", "Mem GB"},
	}
	for _, n := range nodes {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	type modelPlans struct {
		cfg   vit.Config
		ckpt  bool
		plans []fsdp.Plan
	}
	cases := []modelPlans{
		{cfg: vit.ViT5B, plans: []fsdp.Plan{
			fsdp.BestPractice(fsdp.HybridShard, 2),
			fsdp.BestPractice(fsdp.HybridShard, 4),
			fsdp.BestPractice(fsdp.HybridShard, 8),
			fsdp.BestPractice(fsdp.HybridShard, 16),
			fsdp.BestPractice(fsdp.FullShard, 0),
			fsdp.BestPractice(fsdp.ShardGradOp, 0),
		}},
		{cfg: vit.ViT15B, ckpt: true, plans: []fsdp.Plan{
			fsdp.BestPractice(fsdp.HybridShard, 4),
			fsdp.BestPractice(fsdp.HybridShard, 8),
			fsdp.BestPractice(fsdp.HybridShard, 16),
			fsdp.BestPractice(fsdp.FullShard, 0),
			fsdp.BestPractice(fsdp.ShardGradOp, 0),
		}},
	}
	for _, c := range cases {
		w := perfmodel.ViTWorkload(c.cfg, 32)
		w.Prec = prec
		w.ActCheckpoint = c.ckpt
		for _, plan := range c.plans {
			row := []string{c.cfg.Name, plan.Name(), ""}
			var mem float64
			for i, n := range nodes {
				r, err := fsdp.Simulate(w, m, n, plan)
				if err != nil {
					return t, err
				}
				cell := f0(r.ImagesPerSec)
				if !r.Fits {
					cell = "OOM"
				}
				row = append(row, cell)
				if i == len(nodes)-1 {
					mem = r.MemoryPerGPU
				}
			}
			row[2] = gb(mem)
			t.AddRow(row...)
		}
	}
	t.AddNote("ViT-15B runs with activation checkpointing (required to fit 4 GPUs), as on the real system.")
	return t, nil
}

// Fig4TraceExperiment regenerates the bottom panel of Figure 4: the
// rocm-smi power/memory/utilization traces for ViT-5B at 32 nodes under
// the three sharding strategies.
func Fig4TraceExperiment() ([]trace.Trace, Table, error) {
	m := hw.Frontier()
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	t := Table{
		Title:  "Figure 4 (bottom) — ViT-5B GPU telemetry at 32 nodes (rocm-smi model)",
		Header: []string{"Strategy", "images/s", "mean power W", "mean util %", "mem GB"},
	}
	var traces []trace.Trace
	for _, plan := range []fsdp.Plan{
		fsdp.BestPractice(fsdp.HybridShard, 2),
		fsdp.BestPractice(fsdp.FullShard, 0),
		fsdp.BestPractice(fsdp.ShardGradOp, 0),
	} {
		r, err := fsdp.Simulate(w, m, 32, plan)
		if err != nil {
			return nil, t, err
		}
		tr := trace.FromResult(r, m, trace.DefaultOptions())
		traces = append(traces, tr)
		t.AddRow(plan.Name(), f0(r.ImagesPerSec), f1(tr.MeanPower()), f1(tr.MeanUtil()), gb(r.MemoryPerGPU))
	}
	t.AddNote("paper: utilization ≈100%%; SHARD_GRAD_OP draws more power than FULL_SHARD, consistent with throughput.")
	return traces, t, nil
}

// MinGPUTable summarizes the minimum-GPUs-to-fit statement of Sections
// III-C and IV-D (3B on one GCD, 5B on two, 15B on four).
func MinGPUTable() Table {
	m := hw.Frontier()
	t := Table{
		Title:  "Model footprint — minimum GCDs to fit (local batch 32)",
		Header: []string{"Model", "Params[M]", "MinGPUs (ours)", "Paper"},
	}
	paper := map[string]string{"ViT-3B": "1", "ViT-5B": "2", "ViT-15B": "4"}
	for _, cfg := range []vit.Config{vit.ViT3B, vit.ViT5B, vit.ViT15B} {
		w := perfmodel.ViTWorkload(cfg, 32)
		if cfg.Name == "ViT-15B" {
			w.ActCheckpoint = true
		}
		t.AddRow(cfg.Name, f0(float64(cfg.EncoderParams())/1e6),
			fmt.Sprint(fsdp.MinGPUs(w, m)), paper[cfg.Name])
	}
	return t
}

// normalizePrecision applies the paper's default (bf16 mixed
// precision) to a zero-valued Precision, so existing callers keep the
// published tables while cmd/perfsim and cmd/repro can thread
// -precision fp32 through for the what-if sweep.
func normalizePrecision(p perfmodel.Precision) perfmodel.Precision {
	if p == (perfmodel.Precision{}) {
		return perfmodel.MixedPrecision()
	}
	return p
}

// precisionName labels a numeric profile in table titles.
func precisionName(p perfmodel.Precision) string {
	switch p {
	case perfmodel.MixedPrecision():
		return "bf16"
	case perfmodel.FP32Precision():
		return "fp32"
	default:
		return fmt.Sprintf("%.0fB/elem", p.ComputeBytes)
	}
}
