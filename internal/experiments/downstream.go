package experiments

import (
	"fmt"
	"io"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/train"
	"repro/internal/vit"
)

// Scale bundles the laptop-scale substitutions for the Section V
// experiments (Figures 5 and 6, Table III): scaled-down analog models,
// procedural datasets, and truncated schedules. All paper
// hyper-parameters that do not gate runtime (75% masking, AdamW
// 1.5e-4/0.05, LARS 0.1, cosine schedules) are preserved.
type Scale struct {
	Name       string
	ImageSize  int
	PatchSize  int
	Channels   int
	SuiteScale int // divisor applied to Table II sample counts

	BatchSize        int
	PretrainEpochs   int
	MaxStepsPerEpoch int
	PretrainLR       float64

	ProbeEpochs int
	ProbeBatch  int
	ProbeLR     float64

	Workers int
	Seed    uint64
}

// TestScale finishes in seconds; used by unit tests and benchmarks.
func TestScale() Scale {
	return Scale{
		Name: "test", ImageSize: 16, PatchSize: 4, Channels: 3, SuiteScale: 60,
		BatchSize: 8, PretrainEpochs: 4, MaxStepsPerEpoch: 6, PretrainLR: 0.05,
		ProbeEpochs: 10, ProbeBatch: 16, ProbeLR: 0.1,
		Workers: 2, Seed: 42,
	}
}

// DemoScale finishes in minutes; the default for cmd/repro.
func DemoScale() Scale {
	return Scale{
		Name: "demo", ImageSize: 32, PatchSize: 8, Channels: 3, SuiteScale: 10,
		BatchSize: 16, PretrainEpochs: 30, MaxStepsPerEpoch: 60, PretrainLR: 0.02,
		ProbeEpochs: 60, ProbeBatch: 32, ProbeLR: 0.1,
		Workers: 4, Seed: 42,
	}
}

// DownstreamResult carries everything Figures 5/6 and Table III need.
type DownstreamResult struct {
	Scale  Scale
	Models []string
	// PretrainLoss maps model name to its (step, loss) curve — Figure 5.
	PretrainLoss map[string]*metrics.Series
	// Probe maps model name → dataset name → probing result — Figure 6
	// and Table III.
	Probe    map[string]map[string]*probe.Result
	Datasets []string
}

// RunDownstream pretrains the four analog models on the MillionAID
// analog and linear-probes each on all four datasets.
func RunDownstream(s Scale, logw io.Writer) (*DownstreamResult, error) {
	family, err := vit.AnalogFamily(s.ImageSize, s.PatchSize, s.Channels)
	if err != nil {
		return nil, err
	}
	suite := geodata.NewSuite(s.SuiteScale, s.ImageSize, s.Channels, s.Seed)

	res := &DownstreamResult{
		Scale:        s,
		PretrainLoss: map[string]*metrics.Series{},
		Probe:        map[string]map[string]*probe.Result{},
	}
	for _, d := range suite.Probe {
		res.Datasets = append(res.Datasets, d.Name)
	}

	for _, enc := range family {
		res.Models = append(res.Models, enc.Name)
		if logw != nil {
			fmt.Fprintf(logw, "== pretraining %s (%d params) ==\n", enc.Name, enc.EncoderParams())
		}
		cfg := train.PretrainConfig{
			MAE:              mae.Default(enc),
			BatchSize:        s.BatchSize,
			Epochs:           s.PretrainEpochs,
			BaseLR:           s.PretrainLR,
			WeightDecay:      0.05,
			WarmupEpochs:     1,
			ClipNorm:         5,
			Workers:          s.Workers,
			Seed:             s.Seed,
			Log:              logw,
			MaxStepsPerEpoch: s.MaxStepsPerEpoch,
		}
		pr, err := train.Pretrain(cfg, suite.Pretrain)
		if err != nil {
			return nil, fmt.Errorf("pretraining %s: %w", enc.Name, err)
		}
		res.PretrainLoss[enc.Name] = &pr.LossCurve

		res.Probe[enc.Name] = map[string]*probe.Result{}
		for _, ds := range suite.Probe {
			// Average the final accuracy over three probe seeds: the
			// features are fixed, but batch order perturbs the LARS path
			// enough to matter at these tiny train-split sizes.
			var agg *probe.Result
			var t1, t5 float64
			const probeSeeds = 3
			for k := 0; k < probeSeeds; k++ {
				pc := probe.Config{
					BatchSize: s.ProbeBatch,
					Epochs:    s.ProbeEpochs,
					BaseLR:    s.ProbeLR,
					Seed:      s.Seed ^ 0xBEEF ^ uint64(k*7919),
					Log:       nil,
				}
				r, err := probe.Run(pc, pr.Model.Features, enc.Width, ds)
				if err != nil {
					return nil, fmt.Errorf("probing %s on %s: %w", enc.Name, ds.Name, err)
				}
				if agg == nil {
					agg = r
				}
				t1 += r.FinalTop1
				t5 += r.FinalTop5
			}
			agg.FinalTop1 = t1 / probeSeeds
			agg.FinalTop5 = t5 / probeSeeds
			res.Probe[enc.Name][ds.Name] = agg
			if logw != nil {
				fmt.Fprintf(logw, "  probe %-11s top1 %5.2f%%  top5 %5.2f%%\n",
					ds.Name, 100*agg.FinalTop1, 100*agg.FinalTop5)
			}
		}
	}
	return res, nil
}

// TableIIIExperiment renders Table III: final top-1 accuracy per model
// per dataset.
func (r *DownstreamResult) TableIIIExperiment() Table {
	t := Table{
		Title:  fmt.Sprintf("Table III — linear probing top-1 %% (analog models, scale=%s)", r.Scale.Name),
		Header: append([]string{"Model"}, r.Datasets...),
	}
	for _, m := range r.Models {
		row := []string{m}
		for _, d := range r.Datasets {
			row = append(row, pct(r.Probe[m][d].FinalTop1))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper trend: top-1 improves monotonically with model size on every dataset " +
		"(+30%% from ViT-Base to ViT-3B at full scale).")
	return t
}

// Fig5Experiment renders Figure 5: final pretraining loss per model
// (full curves live in PretrainLoss).
func (r *DownstreamResult) Fig5Experiment() Table {
	t := Table{
		Title:  "Figure 5 — MAE pretraining loss by model size",
		Header: []string{"Model", "first-epoch loss", "final loss"},
	}
	for _, m := range r.Models {
		s := r.PretrainLoss[m]
		first := s.Y[0]
		t.AddRow(m, f2(first), f2(s.Last()))
	}
	t.AddNote("paper: larger models reach lower pretraining loss.")
	return t
}

// Fig6Experiment renders Figure 6 as accuracy-vs-epoch checkpoints
// (quartiles of the probe schedule) for top-1 and top-5.
func (r *DownstreamResult) Fig6Experiment() Table {
	t := Table{
		Title:  "Figure 6 — linear probing accuracy vs epoch (top1/top5 %)",
		Header: []string{"Dataset", "Model", "25% epochs", "50% epochs", "75% epochs", "final"},
	}
	at := func(s *metrics.Series, frac float64) float64 {
		if len(s.Y) == 0 {
			return 0
		}
		i := int(frac*float64(len(s.Y))) - 1
		if i < 0 {
			i = 0
		}
		return s.Y[i]
	}
	for _, d := range r.Datasets {
		for _, m := range r.Models {
			p := r.Probe[m][d]
			cell := func(frac float64) string {
				return pct(at(&p.Top1Curve, frac)) + "/" + pct(at(&p.Top5Curve, frac))
			}
			t.AddRow(d, m, cell(0.25), cell(0.5), cell(0.75), cell(1.0))
		}
	}
	return t
}

// AccuracyGain returns the top-1 improvement of the largest model over
// the smallest on a dataset — the paper's headline "+30%" measurement.
func (r *DownstreamResult) AccuracyGain(dataset string) float64 {
	if len(r.Models) < 2 {
		return 0
	}
	small := r.Probe[r.Models[0]][dataset]
	large := r.Probe[r.Models[len(r.Models)-1]][dataset]
	return large.FinalTop1 - small.FinalTop1
}
