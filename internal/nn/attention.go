package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MultiHeadAttention implements standard scaled-dot-product multi-head
// self-attention (the compute core of the ViT encoder, and the layer
// whose FLOP profile internal/perfmodel mirrors for the Frontier
// simulator).
//
// The layer owns its fused QKV projection and output projection and
// caches the per-head attention probabilities for the backward pass.
// Every per-head matrix product — S = Q·Kᵀ, O = P·V, and all five
// backward products — runs through the blocked GEMM kernels in
// internal/tensor. The head-interleaved operands (dO inside the
// upstream (B·T × W) gradient, the per-head thirds of the fused
// (B·T × 3W) QKV gradient) are addressed in place via the strided
// MatMul*Ld entry points, so no per-token rearrangement loops or
// per-head gradient scratch buffers remain.
type MultiHeadAttention struct {
	Width, Heads, HeadDim int

	QKV *Linear // width → 3·width
	Out *Linear // width → width

	batch, tokens int

	// [b·h][t][d] contiguous rearrangements of the fused QKV output,
	// kept packed because both the forward S = Q·Kᵀ and four of the
	// backward products re-read them.
	q, k, v []float32
	// cached softmax probabilities, one (T×T) matrix per (b,h).
	probs []float32
	// scratch, grown once and reused across steps: forward output,
	// fused QKV gradient, and the per-head dP/dS intermediates.
	attnOut []float32
	dqkv    []float32
	dp, ds  []float32
}

// NewMultiHeadAttention builds the layer; width must be divisible by
// heads.
func NewMultiHeadAttention(name string, width, heads int, r *rng.RNG) *MultiHeadAttention {
	if width%heads != 0 {
		panic(fmt.Sprintf("nn: width %d not divisible by heads %d", width, heads))
	}
	return &MultiHeadAttention{
		Width:   width,
		Heads:   heads,
		HeadDim: width / heads,
		QKV:     NewLinear(name+".qkv", width, 3*width, r),
		Out:     NewLinear(name+".out", width, width, r),
	}
}

// Params returns the projection parameters.
func (a *MultiHeadAttention) Params() []*Param {
	return append(a.QKV.Params(), a.Out.Params()...)
}

// Forward runs self-attention over batch sequences of tokens tokens
// each; x has shape (batch·tokens × width).
func (a *MultiHeadAttention) Forward(x []float32, batch, tokens int) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	checkRows(len(x), batch*tokens, w, "MultiHeadAttention.Forward")
	a.batch, a.tokens = batch, tokens
	qkv := a.QKV.Forward(x, batch*tokens)

	bh := batch * h
	a.q = grow(a.q, bh*tokens*d)
	a.k = grow(a.k, bh*tokens*d)
	a.v = grow(a.v, bh*tokens*d)
	a.probs = grow(a.probs, bh*tokens*tokens)
	a.attnOut = grow(a.attnOut, batch*tokens*w)

	// Rearrange fused (B·T × 3W) into per-(b,h) contiguous (T × D).
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			src := qkv[(b*tokens+t)*3*w:]
			dst := i*tokens*d + t*d
			copy(a.q[dst:dst+d], src[hh*d:hh*d+d])
			copy(a.k[dst:dst+d], src[w+hh*d:w+hh*d+d])
			copy(a.v[dst:dst+d], src[2*w+hh*d:2*w+hh*d+d])
		}
	})

	scale := float32(1 / math.Sqrt(float64(d)))
	parallel.ForGrain(bh, 1, func(i int) {
		q := a.q[i*tokens*d : (i+1)*tokens*d]
		k := a.k[i*tokens*d : (i+1)*tokens*d]
		v := a.v[i*tokens*d : (i+1)*tokens*d]
		p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
		// S = scale·Q·Kᵀ, softmaxed in place into the probs cache.
		tensor.MatMulTB(p, q, k, tokens, d, tokens, false)
		for j := range p {
			p[j] *= scale
		}
		tensor.Softmax(p, p, tokens, tokens)
		// Per-head output O = P·V, written as a strided (T × D) tile
		// straight into the (B·T × W) layout.
		b, hh := i/h, i%h
		tensor.MatMulLd(a.attnOut[(b*tokens)*w+hh*d:], p, v,
			tokens, tokens, d, tokens, d, w, false)
	})

	return a.Out.Forward(a.attnOut, batch*tokens)
}

// Backward propagates through the attention layer, accumulating
// projection gradients and returning dL/dx.
func (a *MultiHeadAttention) Backward(dy []float32) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	batch, tokens := a.batch, a.tokens
	checkRows(len(dy), batch*tokens, w, "MultiHeadAttention.Backward")
	dAttn := a.Out.Backward(dy) // (B·T × W)

	bh := batch * h
	a.dp = grow(a.dp, bh*tokens*tokens)
	a.ds = grow(a.ds, bh*tokens*tokens)
	a.dqkv = grow(a.dqkv, batch*tokens*3*w)

	scale := float32(1 / math.Sqrt(float64(d)))
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		q := a.q[i*tokens*d : (i+1)*tokens*d]
		k := a.k[i*tokens*d : (i+1)*tokens*d]
		v := a.v[i*tokens*d : (i+1)*tokens*d]
		p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
		dp := a.dp[i*tokens*tokens : (i+1)*tokens*tokens]
		ds := a.ds[i*tokens*tokens : (i+1)*tokens*tokens]
		// This head's dO is a strided (T × D) view of dAttn; its dQ,
		// dK, dV are strided (T × D) tiles of the fused (B·T × 3W)
		// gradient. Addressing them in place replaces the old
		// rearrange/reassemble copy passes.
		do := dAttn[(b*tokens)*w+hh*d:]
		dqkvH := a.dqkv[(b*tokens)*3*w:]

		// dV = Pᵀ·dO, written into the V third of the fused gradient.
		tensor.MatMulTALd(dqkvH[2*w+hh*d:], p, do,
			tokens, tokens, d, tokens, w, 3*w, false)
		// dP = dO·Vᵀ
		tensor.MatMulTBLd(dp, do, v, tokens, d, tokens, w, d, tokens, false)
		// dS = softmax backward, then fold in the 1/√d scale.
		tensor.SoftmaxBackward(ds, p, dp, tokens, tokens)
		for j := range ds {
			ds[j] *= scale
		}
		// dQ = dS·K into the Q third; dK = dSᵀ·Q into the K third.
		tensor.MatMulLd(dqkvH[hh*d:], ds, k,
			tokens, tokens, d, tokens, d, 3*w, false)
		tensor.MatMulTALd(dqkvH[w+hh*d:], ds, q,
			tokens, tokens, d, tokens, d, 3*w, false)
	})

	return a.QKV.Backward(a.dqkv)
}
