package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MultiHeadAttention implements standard scaled-dot-product multi-head
// self-attention (the compute core of the ViT encoder, and the layer
// whose FLOP profile internal/perfmodel mirrors for the Frontier
// simulator).
//
// The layer owns its fused QKV projection and output projection.
// By default both passes run the fused tiled kernels
// (tensor.FlashAttnFwd / FlashAttnBwd): online softmax over K/V
// tiles, the 1/√d scale folded into the tile loop, and only the
// per-row (max, exp-sum) statistics cached between forward and
// backward — O(B·H·T) state instead of the O(B·H·T²) probability
// matrices. SetFusedAttention(false) routes through the materialized
// reference path, which forms the full per-head score matrix with the
// blocked GEMM kernels and the scale-folded softmax ops; it is the
// oracle the fused path is property-tested against. Either way the
// head-interleaved operands (dO inside the upstream (B·T × W)
// gradient, the per-head thirds of the fused (B·T × 3W) QKV gradient)
// are addressed in place via strided entry points, so no per-token
// rearrangement loops or per-head gradient scratch buffers remain.
type MultiHeadAttention struct {
	Width, Heads, HeadDim int

	QKV *Linear // width → 3·width
	Out *Linear // width → width

	batch, tokens int

	// [b·h][t][d] contiguous rearrangements of the fused QKV output,
	// kept packed because both the forward S = Q·Kᵀ and four of the
	// backward products re-read them.
	q, k, v []float32
	// fused path: per-row online softmax statistics, 2 per (b·h, t).
	stats []float32
	// materialized path only: cached softmax probabilities, one (T×T)
	// matrix per (b,h), plus the dP/dS backward intermediates.
	probs  []float32
	dp, ds []float32
	// scratch shared by both paths: forward output (re-read by the
	// fused backward) and the fused QKV gradient.
	attnOut []float32
	dqkv    []float32
}

// fusedAttention selects the tiled kernel path; the materialized
// reference stays available as the testing oracle.
var fusedAttention = true

// SetFusedAttention routes MultiHeadAttention (Forward/Backward and
// Infer) through the fused tiled kernels (true, the default) or the
// materialized reference path (false), returning the previous
// setting. It is a process-wide dispatch switch for tests and
// benchmarks, not a per-layer mode; flip it only around paired
// forward/backward calls.
func SetFusedAttention(on bool) bool {
	prev := fusedAttention
	fusedAttention = on
	return prev
}

// FusedAttentionEnabled reports the current dispatch setting.
func FusedAttentionEnabled() bool { return fusedAttention }

// NewMultiHeadAttention builds the layer; width must be divisible by
// heads.
func NewMultiHeadAttention(name string, width, heads int, r *rng.RNG) *MultiHeadAttention {
	if width%heads != 0 {
		panic(fmt.Sprintf("nn: width %d not divisible by heads %d", width, heads))
	}
	return &MultiHeadAttention{
		Width:   width,
		Heads:   heads,
		HeadDim: width / heads,
		QKV:     NewLinear(name+".qkv", width, 3*width, r),
		Out:     NewLinear(name+".out", width, width, r),
	}
}

// Params returns the projection parameters.
func (a *MultiHeadAttention) Params() []*Param {
	return append(a.QKV.Params(), a.Out.Params()...)
}

// PackBF16 packs both projections' bf16 weight shadows for inference.
func (a *MultiHeadAttention) PackBF16() {
	a.QKV.PackBF16()
	a.Out.PackBF16()
}

// Forward runs self-attention over batch sequences of tokens tokens
// each; x has shape (batch·tokens × width).
func (a *MultiHeadAttention) Forward(x []float32, batch, tokens int) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	checkRows(len(x), batch*tokens, w, "MultiHeadAttention.Forward")
	a.batch, a.tokens = batch, tokens
	qkv := a.QKV.Forward(x, batch*tokens)

	bh := batch * h
	a.q = grow(a.q, bh*tokens*d)
	a.k = grow(a.k, bh*tokens*d)
	a.v = grow(a.v, bh*tokens*d)
	a.attnOut = grow(a.attnOut, batch*tokens*w)

	// Rearrange fused (B·T × 3W) into per-(b,h) contiguous (T × D).
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			src := qkv[(b*tokens+t)*3*w:]
			dst := i*tokens*d + t*d
			copy(a.q[dst:dst+d], src[hh*d:hh*d+d])
			copy(a.k[dst:dst+d], src[w+hh*d:w+hh*d+d])
			copy(a.v[dst:dst+d], src[2*w+hh*d:2*w+hh*d+d])
		}
	})

	scale := float32(1 / math.Sqrt(float64(d)))
	if fusedAttention {
		a.stats = grow(a.stats, bh*2*tokens)
		parallel.ForGrain(bh, 1, func(i int) {
			q := a.q[i*tokens*d : (i+1)*tokens*d]
			k := a.k[i*tokens*d : (i+1)*tokens*d]
			v := a.v[i*tokens*d : (i+1)*tokens*d]
			// O written as a strided (T × D) tile straight into the
			// (B·T × W) layout; only the (m, l) stats are cached.
			b, hh := i/h, i%h
			tensor.FlashAttnFwd(a.attnOut[(b*tokens)*w+hh*d:], w, q, k, v,
				tokens, d, scale, a.stats[i*2*tokens:(i+1)*2*tokens])
		})
	} else {
		a.probs = grow(a.probs, bh*tokens*tokens)
		parallel.ForGrain(bh, 1, func(i int) {
			q := a.q[i*tokens*d : (i+1)*tokens*d]
			k := a.k[i*tokens*d : (i+1)*tokens*d]
			v := a.v[i*tokens*d : (i+1)*tokens*d]
			p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
			// S = Q·Kᵀ, softmaxed in place into the probs cache with
			// the 1/√d scale folded into the softmax pass.
			tensor.MatMulTB(p, q, k, tokens, d, tokens, false)
			tensor.SoftmaxScaled(p, p, tokens, tokens, scale)
			// Per-head output O = P·V, written as a strided (T × D)
			// tile straight into the (B·T × W) layout.
			b, hh := i/h, i%h
			tensor.MatMulLd(a.attnOut[(b*tokens)*w+hh*d:], p, v,
				tokens, tokens, d, tokens, d, w, false)
		})
	}

	return a.Out.Forward(a.attnOut, batch*tokens)
}

// Backward propagates through the attention layer, accumulating
// projection gradients and returning dL/dx.
func (a *MultiHeadAttention) Backward(dy []float32) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	batch, tokens := a.batch, a.tokens
	checkRows(len(dy), batch*tokens, w, "MultiHeadAttention.Backward")
	dAttn := a.Out.Backward(dy) // (B·T × W)

	bh := batch * h
	a.dqkv = grow(a.dqkv, batch*tokens*3*w)

	scale := float32(1 / math.Sqrt(float64(d)))
	if fusedAttention {
		parallel.ForGrain(bh, 1, func(i int) {
			b, hh := i/h, i%h
			q := a.q[i*tokens*d : (i+1)*tokens*d]
			k := a.k[i*tokens*d : (i+1)*tokens*d]
			v := a.v[i*tokens*d : (i+1)*tokens*d]
			// This head's dO and O are strided (T × D) views; its dQ,
			// dK, dV are the strided thirds of the fused (B·T × 3W)
			// gradient. Probability tiles are recomputed inside the
			// kernel from the cached (m, l) statistics.
			do := dAttn[(b*tokens)*w+hh*d:]
			o := a.attnOut[(b*tokens)*w+hh*d:]
			dqkvH := a.dqkv[(b*tokens)*3*w:]
			tensor.FlashAttnBwd(dqkvH[hh*d:], dqkvH[w+hh*d:], dqkvH[2*w+hh*d:], 3*w,
				do, o, w, q, k, v, tokens, d, scale,
				a.stats[i*2*tokens:(i+1)*2*tokens])
		})
		return a.QKV.Backward(a.dqkv)
	}

	a.dp = grow(a.dp, bh*tokens*tokens)
	a.ds = grow(a.ds, bh*tokens*tokens)
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		q := a.q[i*tokens*d : (i+1)*tokens*d]
		k := a.k[i*tokens*d : (i+1)*tokens*d]
		v := a.v[i*tokens*d : (i+1)*tokens*d]
		p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
		dp := a.dp[i*tokens*tokens : (i+1)*tokens*tokens]
		ds := a.ds[i*tokens*tokens : (i+1)*tokens*tokens]
		// This head's dO is a strided (T × D) view of dAttn; its dQ,
		// dK, dV are strided (T × D) tiles of the fused (B·T × 3W)
		// gradient. Addressing them in place replaces the old
		// rearrange/reassemble copy passes.
		do := dAttn[(b*tokens)*w+hh*d:]
		dqkvH := a.dqkv[(b*tokens)*3*w:]

		// dV = Pᵀ·dO, written into the V third of the fused gradient.
		tensor.MatMulTALd(dqkvH[2*w+hh*d:], p, do,
			tokens, tokens, d, tokens, w, 3*w, false)
		// dP = dO·Vᵀ
		tensor.MatMulTBLd(dp, do, v, tokens, d, tokens, w, d, tokens, false)
		// dS = softmax backward with the 1/√d scale folded into its
		// write pass (bitwise equal to the old separate scale sweep).
		tensor.SoftmaxBackwardScaled(ds, p, dp, tokens, tokens, scale)
		// dQ = dS·K into the Q third; dK = dSᵀ·Q into the K third.
		tensor.MatMulLd(dqkvH[hh*d:], ds, k,
			tokens, tokens, d, tokens, d, 3*w, false)
		tensor.MatMulTALd(dqkvH[w+hh*d:], ds, q,
			tokens, tokens, d, tokens, d, 3*w, false)
	})

	return a.QKV.Backward(a.dqkv)
}

// Release drops every scratch buffer the layer has grown — the
// rearranged Q/K/V, softmax state, forward output, and gradient
// scratch — so a layer that served one large batch does not pin that
// batch's footprint forever. The next Forward simply re-grows what it
// needs; weights are untouched.
func (a *MultiHeadAttention) Release() {
	a.q, a.k, a.v, a.stats = nil, nil, nil, nil
	a.probs, a.dp, a.ds = nil, nil, nil
	a.attnOut, a.dqkv = nil, nil
	a.QKV.Release()
	a.Out.Release()
}
