package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MultiHeadAttention implements standard scaled-dot-product multi-head
// self-attention (the compute core of the ViT encoder, and the layer
// whose FLOP profile internal/perfmodel mirrors for the Frontier
// simulator).
//
// The layer owns its fused QKV projection and output projection and
// caches the per-head attention probabilities for the backward pass.
type MultiHeadAttention struct {
	Width, Heads, HeadDim int

	QKV *Linear // width → 3·width
	Out *Linear // width → width

	batch, tokens int

	// [b·h][t][d] contiguous rearrangements of the fused QKV output.
	q, k, v []float32
	// cached softmax probabilities, one (T×T) matrix per (b,h).
	probs []float32
	// scratch for forward output and backward intermediates
	attnOut            []float32
	dqkv               []float32
	dq, dk, dv, dp, ds []float32
	do_                []float32
}

// NewMultiHeadAttention builds the layer; width must be divisible by
// heads.
func NewMultiHeadAttention(name string, width, heads int, r *rng.RNG) *MultiHeadAttention {
	if width%heads != 0 {
		panic(fmt.Sprintf("nn: width %d not divisible by heads %d", width, heads))
	}
	return &MultiHeadAttention{
		Width:   width,
		Heads:   heads,
		HeadDim: width / heads,
		QKV:     NewLinear(name+".qkv", width, 3*width, r),
		Out:     NewLinear(name+".out", width, width, r),
	}
}

// Params returns the projection parameters.
func (a *MultiHeadAttention) Params() []*Param {
	return append(a.QKV.Params(), a.Out.Params()...)
}

// Forward runs self-attention over batch sequences of tokens tokens
// each; x has shape (batch·tokens × width).
func (a *MultiHeadAttention) Forward(x []float32, batch, tokens int) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	checkRows(len(x), batch*tokens, w, "MultiHeadAttention.Forward")
	a.batch, a.tokens = batch, tokens
	qkv := a.QKV.Forward(x, batch*tokens)

	bh := batch * h
	a.q = grow(a.q, bh*tokens*d)
	a.k = grow(a.k, bh*tokens*d)
	a.v = grow(a.v, bh*tokens*d)
	a.probs = grow(a.probs, bh*tokens*tokens)
	a.attnOut = grow(a.attnOut, batch*tokens*w)

	// Rearrange fused (B·T × 3W) into per-(b,h) contiguous (T × D).
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			src := qkv[(b*tokens+t)*3*w:]
			dst := i*tokens*d + t*d
			copy(a.q[dst:dst+d], src[hh*d:hh*d+d])
			copy(a.k[dst:dst+d], src[w+hh*d:w+hh*d+d])
			copy(a.v[dst:dst+d], src[2*w+hh*d:2*w+hh*d+d])
		}
	})

	scale := float32(1 / math.Sqrt(float64(d)))
	parallel.ForGrain(bh, 1, func(i int) {
		q := a.q[i*tokens*d : (i+1)*tokens*d]
		k := a.k[i*tokens*d : (i+1)*tokens*d]
		v := a.v[i*tokens*d : (i+1)*tokens*d]
		p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
		// S = scale·Q·Kᵀ, softmaxed in place into the probs cache.
		tensor.MatMulTB(p, q, k, tokens, d, tokens, false)
		for j := range p {
			p[j] *= scale
		}
		tensor.Softmax(p, p, tokens, tokens)
		// Per-head output O = P·V written back into (B·T × W) layout.
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			ot := a.attnOut[(b*tokens+t)*w+hh*d:]
			pt := p[t*tokens : (t+1)*tokens]
			for j := 0; j < d; j++ {
				ot[j] = 0
			}
			for s := 0; s < tokens; s++ {
				if ps := pt[s]; ps != 0 {
					vs := v[s*d : (s+1)*d]
					for j := 0; j < d; j++ {
						ot[j] += ps * vs[j]
					}
				}
			}
		}
	})

	return a.Out.Forward(a.attnOut, batch*tokens)
}

// Backward propagates through the attention layer, accumulating
// projection gradients and returning dL/dx.
func (a *MultiHeadAttention) Backward(dy []float32) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	batch, tokens := a.batch, a.tokens
	checkRows(len(dy), batch*tokens, w, "MultiHeadAttention.Backward")
	dAttn := a.Out.Backward(dy) // (B·T × W)

	bh := batch * h
	a.do_ = grow(a.do_, bh*tokens*d)
	a.dq = grow(a.dq, bh*tokens*d)
	a.dk = grow(a.dk, bh*tokens*d)
	a.dv = grow(a.dv, bh*tokens*d)
	a.dp = grow(a.dp, bh*tokens*tokens)
	a.ds = grow(a.ds, bh*tokens*tokens)
	a.dqkv = grow(a.dqkv, batch*tokens*3*w)

	// Rearrange upstream gradient into per-(b,h) (T × D).
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			src := dAttn[(b*tokens+t)*w+hh*d:]
			copy(a.do_[i*tokens*d+t*d:i*tokens*d+(t+1)*d], src[:d])
		}
	})

	scale := float32(1 / math.Sqrt(float64(d)))
	parallel.ForGrain(bh, 1, func(i int) {
		q := a.q[i*tokens*d : (i+1)*tokens*d]
		k := a.k[i*tokens*d : (i+1)*tokens*d]
		v := a.v[i*tokens*d : (i+1)*tokens*d]
		p := a.probs[i*tokens*tokens : (i+1)*tokens*tokens]
		do := a.do_[i*tokens*d : (i+1)*tokens*d]
		dp := a.dp[i*tokens*tokens : (i+1)*tokens*tokens]
		ds := a.ds[i*tokens*tokens : (i+1)*tokens*tokens]
		dq := a.dq[i*tokens*d : (i+1)*tokens*d]
		dk := a.dk[i*tokens*d : (i+1)*tokens*d]
		dv := a.dv[i*tokens*d : (i+1)*tokens*d]

		// dV = Pᵀ·dO ; dP = dO·Vᵀ
		tensor.MatMulTA(dv, p, do, tokens, tokens, d, false)
		tensor.MatMulTB(dp, do, v, tokens, d, tokens, false)
		// dS = softmax backward, then fold in the 1/√d scale.
		tensor.SoftmaxBackward(ds, p, dp, tokens, tokens)
		for j := range ds {
			ds[j] *= scale
		}
		// dQ = dS·K ; dK = dSᵀ·Q
		tensor.MatMul(dq, ds, k, tokens, tokens, d, false)
		tensor.MatMulTA(dk, ds, q, tokens, tokens, d, false)
	})

	// Reassemble into the fused (B·T × 3W) gradient.
	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			dst := a.dqkv[(b*tokens+t)*3*w:]
			src := i*tokens*d + t*d
			copy(dst[hh*d:hh*d+d], a.dq[src:src+d])
			copy(dst[w+hh*d:w+hh*d+d], a.dk[src:src+d])
			copy(dst[2*w+hh*d:2*w+hh*d+d], a.dv[src:src+d])
		}
	})

	return a.QKV.Backward(a.dqkv)
}
