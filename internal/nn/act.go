package nn

import (
	"math"

	"repro/internal/parallel"
)

// GELU is the Gaussian Error Linear Unit with the tanh approximation
// used by the original ViT/MAE code:
//
//	gelu(x) = 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))
//
// The layer is stateless apart from caching its input for backward.
type GELU struct {
	x     []float32
	y, dx []float32
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

// Release drops the cached input reference and grown scratch.
func (g *GELU) Release() { g.x, g.y, g.dx = nil, nil, nil }

// Params returns nil: GELU has no trainable parameters.
func (g *GELU) Params() []*Param { return nil }

const geluC = 0.7978845608028654 // √(2/π)

// Forward applies the activation elementwise.
func (g *GELU) Forward(x []float32, rows int) []float32 {
	g.x = x
	g.y = grow(g.y, len(x))
	parallel.Range(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x[i])
			g.y[i] = float32(0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v))))
		}
	})
	return g.y
}

// Backward multiplies dy by the activation derivative.
func (g *GELU) Backward(dy []float32) []float32 {
	g.dx = grow(g.dx, len(dy))
	x := g.x
	parallel.Range(len(dy), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x[i])
			u := geluC * (v + 0.044715*v*v*v)
			t := math.Tanh(u)
			du := geluC * (1 + 3*0.044715*v*v)
			d := 0.5*(1+t) + 0.5*v*(1-t*t)*du
			g.dx[i] = dy[i] * float32(d)
		}
	})
	return g.dx
}
