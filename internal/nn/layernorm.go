package nn

import (
	"math"

	"repro/internal/parallel"
)

// LayerNorm normalizes each row of the input to zero mean and unit
// variance, then applies a learned per-feature affine transform
// y = γ·x̂ + β. Epsilon follows the transformer default of 1e-6.
type LayerNorm struct {
	Dim   int
	Gamma *Param
	Beta  *Param
	Eps   float32

	rows   int
	xhat   []float32 // cached normalized input
	invStd []float32 // cached 1/σ per row
	y, dx  []float32
}

// NewLayerNorm constructs a LayerNorm with γ=1, β=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Gamma: NewParam(name+".gamma", dim),
		Beta:  NewParam(name+".beta", dim),
		Eps:   1e-6,
	}
	ln.Gamma.NoWeightDecay = true
	ln.Beta.NoWeightDecay = true
	ln.Gamma.Value.Fill(1)
	return ln
}

// Params returns γ and β.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Release drops the normalization caches (x̂, 1/σ) and scratch.
func (ln *LayerNorm) Release() {
	ln.rows = 0
	ln.xhat, ln.invStd, ln.y, ln.dx = nil, nil, nil, nil
}

// Forward normalizes each of the rows rows of x.
func (ln *LayerNorm) Forward(x []float32, rows int) []float32 {
	d := ln.Dim
	checkRows(len(x), rows, d, "LayerNorm.Forward")
	ln.rows = rows
	ln.xhat = grow(ln.xhat, rows*d)
	ln.invStd = grow(ln.invStd, rows)
	ln.y = grow(ln.y, rows*d)
	g := ln.Gamma.Value.Data
	b := ln.Beta.Value.Data
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(d+1), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xi := x[r*d : (r+1)*d]
			var mean float64
			for _, v := range xi {
				mean += float64(v)
			}
			mean /= float64(d)
			var variance float64
			for _, v := range xi {
				dv := float64(v) - mean
				variance += dv * dv
			}
			variance /= float64(d)
			inv := float32(1 / math.Sqrt(variance+float64(ln.Eps)))
			ln.invStd[r] = inv
			xh := ln.xhat[r*d : (r+1)*d]
			yi := ln.y[r*d : (r+1)*d]
			m := float32(mean)
			for j, v := range xi {
				h := (v - m) * inv
				xh[j] = h
				yi[j] = g[j]*h + b[j]
			}
		}
	})
	return ln.y
}

// Backward computes the LayerNorm gradient. Using x̂ and 1/σ cached by
// Forward:
//
//	dx = (1/σ)/D · (D·dx̂ − Σdx̂ − x̂·Σ(dx̂·x̂)),  dx̂ = dy·γ
func (ln *LayerNorm) Backward(dy []float32) []float32 {
	d := ln.Dim
	rows := ln.rows
	checkRows(len(dy), rows, d, "LayerNorm.Backward")
	ln.dx = grow(ln.dx, rows*d)
	g := ln.Gamma.Value.Data

	// Parameter grads are accumulated serially per feature to avoid
	// atomic contention; rows dominate cost, handled below in parallel.
	dg := ln.Gamma.Grad.Data
	db := ln.Beta.Grad.Data
	for r := 0; r < rows; r++ {
		dyr := dy[r*d : (r+1)*d]
		xh := ln.xhat[r*d : (r+1)*d]
		for j := range dyr {
			dg[j] += dyr[j] * xh[j]
			db[j] += dyr[j]
		}
	}

	parallel.RangeGrain(rows, 1+parallel.MinGrain/(d+1), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			dyr := dy[r*d : (r+1)*d]
			xh := ln.xhat[r*d : (r+1)*d]
			dxr := ln.dx[r*d : (r+1)*d]
			var sumDxh, sumDxhXh float64
			for j := range dyr {
				dxh := float64(dyr[j]) * float64(g[j])
				sumDxh += dxh
				sumDxhXh += dxh * float64(xh[j])
			}
			invN := 1 / float64(d)
			inv := float64(ln.invStd[r])
			for j := range dyr {
				dxh := float64(dyr[j]) * float64(g[j])
				dxr[j] = float32(inv * (dxh - invN*sumDxh - float64(xh[j])*invN*sumDxhXh))
			}
		}
	})
	return ln.dx
}
