package nn

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Patchify rearranges a batch of channel-last images, stored as
// (batch × H·W·C) row-major float32, into a (batch·nPatches × ps·ps·C)
// matrix of flattened non-overlapping patches in row-major grid order.
// H and W must be divisible by ps.
//
// The patch-pixel ordering is (py, px, c) — the same ordering is used
// when building reconstruction targets, so the choice only has to be
// consistent.
func Patchify(dst, imgs []float32, batch, h, w, c, ps int) {
	if h%ps != 0 || w%ps != 0 {
		panic(fmt.Sprintf("nn: image %dx%d not divisible by patch %d", h, w, ps))
	}
	gh, gw := h/ps, w/ps
	pd := ps * ps * c
	if len(dst) < batch*gh*gw*pd || len(imgs) < batch*h*w*c {
		panic("nn: Patchify buffer too small")
	}
	parallel.ForGrain(batch*gh*gw, 4, func(p int) {
		b := p / (gh * gw)
		g := p % (gh * gw)
		gy, gx := g/gw, g%gw
		img := imgs[b*h*w*c:]
		out := dst[p*pd:]
		o := 0
		for py := 0; py < ps; py++ {
			rowOff := ((gy*ps+py)*w + gx*ps) * c
			copy(out[o:o+ps*c], img[rowOff:rowOff+ps*c])
			o += ps * c
		}
	})
}

// UnpatchifyAdd is the adjoint of Patchify: it accumulates flattened
// patch values back into image layout. Used only by tests to verify the
// rearrangement is a bijection.
func UnpatchifyAdd(imgs, patches []float32, batch, h, w, c, ps int) {
	gh, gw := h/ps, w/ps
	pd := ps * ps * c
	for p := 0; p < batch*gh*gw; p++ {
		b := p / (gh * gw)
		g := p % (gh * gw)
		gy, gx := g/gw, g%gw
		img := imgs[b*h*w*c:]
		src := patches[p*pd:]
		o := 0
		for py := 0; py < ps; py++ {
			rowOff := ((gy*ps+py)*w + gx*ps) * c
			for i := 0; i < ps*c; i++ {
				img[rowOff+i] += src[o+i]
			}
			o += ps * c
		}
	}
}

// PatchEmbed projects flattened patches into the transformer width and
// adds fixed 2-D sin-cos positional embeddings (the MAE configuration:
// positional embeddings are not learned).
type PatchEmbed struct {
	PatchDim, Width int
	Tokens          int // grid positions per image
	Proj            *Linear
	Pos             []float32 // (Tokens × Width), fixed

	y []float32
}

// NewPatchEmbed builds the embedding for a (gridH × gridW) patch grid.
func NewPatchEmbed(name string, patchDim, width, gridH, gridW int, r *rng.RNG) *PatchEmbed {
	pe := &PatchEmbed{
		PatchDim: patchDim,
		Width:    width,
		Tokens:   gridH * gridW,
		Proj:     NewLinear(name+".proj", patchDim, width, r),
		Pos:      SinCos2D(width, gridH, gridW),
	}
	return pe
}

// Params returns the projection parameters (positional embeddings are
// fixed and carry no gradient).
func (pe *PatchEmbed) Params() []*Param { return pe.Proj.Params() }

// Forward embeds (batch·Tokens) flattened patches and adds positional
// encodings.
func (pe *PatchEmbed) Forward(patches []float32, batch int) []float32 {
	rows := batch * pe.Tokens
	y := pe.Proj.Forward(patches, rows)
	w := pe.Width
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(w+1), func(lo, hi int) {
		for rIdx := lo; rIdx < hi; rIdx++ {
			pos := pe.Pos[(rIdx%pe.Tokens)*w : (rIdx%pe.Tokens+1)*w]
			yi := y[rIdx*w : (rIdx+1)*w]
			for j := range yi {
				yi[j] += pos[j]
			}
		}
	})
	pe.y = y
	return y
}

// Backward propagates to the projection (positional embeddings are
// constant, so the gradient passes through unchanged to Proj).
func (pe *PatchEmbed) Backward(dy []float32) []float32 {
	return pe.Proj.Backward(dy)
}

// PackBF16 packs the projection's bf16 weight shadow for inference.
func (pe *PatchEmbed) PackBF16() { pe.Proj.PackBF16() }

// Release drops the embedding scratch; Pos and weights are kept.
func (pe *PatchEmbed) Release() {
	pe.Proj.Release()
	pe.y = nil
}

// SinCos2D returns the fixed 2-D sine-cosine positional embedding table
// of shape (gridH·gridW × dim), matching the get_2d_sincos_pos_embed
// construction from the MAE reference code. dim must be divisible by 4.
func SinCos2D(dim, gridH, gridW int) []float32 {
	if dim%4 != 0 {
		panic(fmt.Sprintf("nn: SinCos2D dim %d not divisible by 4", dim))
	}
	quarter := dim / 4
	omega := make([]float64, quarter)
	for i := range omega {
		omega[i] = 1.0 / math.Pow(10000, float64(i)/float64(quarter))
	}
	out := make([]float32, gridH*gridW*dim)
	for y := 0; y < gridH; y++ {
		for x := 0; x < gridW; x++ {
			row := out[(y*gridW+x)*dim:]
			// First half encodes the y coordinate, second half the x.
			for i, om := range omega {
				row[i] = float32(math.Sin(float64(y) * om))
				row[quarter+i] = float32(math.Cos(float64(y) * om))
				row[2*quarter+i] = float32(math.Sin(float64(x) * om))
				row[3*quarter+i] = float32(math.Cos(float64(x) * om))
			}
		}
	}
	return out
}

// SinCos1D returns a (n × dim) table for 1-D positions, used by the MAE
// decoder's mask-token positions in ablation configurations.
func SinCos1D(dim, n int) []float32 {
	if dim%2 != 0 {
		panic("nn: SinCos1D dim must be even")
	}
	half := dim / 2
	omega := make([]float64, half)
	for i := range omega {
		omega[i] = 1.0 / math.Pow(10000, float64(i)/float64(half))
	}
	out := make([]float32, n*dim)
	for p := 0; p < n; p++ {
		row := out[p*dim:]
		for i, om := range omega {
			row[i] = float32(math.Sin(float64(p) * om))
			row[half+i] = float32(math.Cos(float64(p) * om))
		}
	}
	return out
}
