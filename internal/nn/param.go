// Package nn implements the neural-network layers used to build the
// ViT encoder and the MAE decoder: Linear, LayerNorm, GELU, multi-head
// self-attention, the transformer block, patch embedding with fixed
// 2-D sin-cos positional encodings, and the two losses the paper trains
// with (per-patch normalized MSE for MAE pretraining, cross-entropy for
// linear probing).
//
// Every layer implements an explicit Forward/Backward pair with cached
// activations (the "modular backprop" style): Forward consumes a
// (rows × features) matrix of row-major float32 and returns the layer
// output; Backward consumes the upstream gradient, accumulates
// parameter gradients, and returns the input gradient. Layers reuse
// internal buffers across steps, so a layer instance must not be used
// from multiple goroutines concurrently — parallelism lives *inside*
// the kernels (see internal/tensor and internal/parallel).
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator. Optimizers
// consume pairs of (Value, Grad) slices.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	// NoWeightDecay marks parameters (biases, LayerNorm gains) that
	// AdamW must exclude from decoupled weight decay, following the
	// MAE recipe.
	NoWeightDecay bool
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
	}
}

// NumEl returns the parameter's element count.
func (p *Param) NumEl() int { return p.Value.NumEl() }

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Module is anything owning trainable parameters. Concrete layers also
// expose shape-specific Forward/Backward methods; those cannot live on
// the interface because signatures differ per layer.
type Module interface {
	Params() []*Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(mods ...Module) []*Param {
	var ps []*Param
	for _, m := range mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// CountParams sums the element counts over params.
func CountParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.NumEl()
	}
	return n
}

// ZeroGrads clears every gradient in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// GradL2Norm returns the global L2 norm across all gradients, as used
// for gradient clipping.
func GradL2Norm(ps []*Param) float64 {
	var s float64
	for _, p := range ps {
		for _, v := range p.Grad.Data {
			s += float64(v) * float64(v)
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm scales all gradients so the global norm does not exceed
// maxNorm; returns the pre-clip norm.
func ClipGradNorm(ps []*Param, maxNorm float64) float64 {
	norm := GradL2Norm(ps)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range ps {
			tensor.Scale(p.Grad.Data, p.Grad.Data, scale)
		}
	}
	return norm
}

// grow returns buf resized to n elements, reusing capacity when
// possible. Contents are unspecified.
func grow(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

func checkRows(n, rows, cols int, layer string) {
	if rows*cols != n {
		panic(fmt.Sprintf("nn: %s got %d values for %d rows × %d cols", layer, n, rows, cols))
	}
}
