package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestParamHelpers(t *testing.T) {
	p := NewParam("w", 3, 4)
	if p.NumEl() != 12 {
		t.Fatalf("NumEl=%d", p.NumEl())
	}
	p.Grad.Fill(2)
	p.ZeroGrad()
	for _, v := range p.Grad.Data {
		if v != 0 {
			t.Fatal("ZeroGrad failed")
		}
	}
}

func TestCollectAndCount(t *testing.T) {
	r := rng.New(1)
	l1 := NewLinear("a", 2, 3, r)
	l2 := NewLinear("b", 3, 4, r)
	ps := CollectParams(l1, l2)
	if len(ps) != 4 {
		t.Fatalf("params=%d", len(ps))
	}
	if CountParams(ps) != 2*3+3+3*4+4 {
		t.Fatalf("CountParams=%d", CountParams(ps))
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 4)
	copy(p.Grad.Data, []float32{3, 4, 0, 0}) // norm 5
	ps := []*Param{p}
	pre := ClipGradNorm(ps, 1.0)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if post := GradL2Norm(ps); math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-clip norm %v", post)
	}
	// Below the threshold nothing changes.
	copy(p.Grad.Data, []float32{0.3, 0.4, 0, 0})
	ClipGradNorm(ps, 1.0)
	if math.Abs(GradL2Norm(ps)-0.5) > 1e-6 {
		t.Fatal("clip modified small gradient")
	}
}

func TestLinearForwardKnown(t *testing.T) {
	r := rng.New(2)
	l := NewLinear("l", 2, 2, r)
	copy(l.W.Value.Data, []float32{1, 2, 3, 4}) // W = [[1,2],[3,4]] (in×out)
	copy(l.B.Value.Data, []float32{10, 20})
	y := l.Forward([]float32{1, 1}, 1)
	// y = [1+3+10, 2+4+20] = [14, 26]
	if y[0] != 14 || y[1] != 26 {
		t.Fatalf("y=%v", y)
	}
}

func TestLinearBiasNoDecayFlag(t *testing.T) {
	l := NewLinear("l", 2, 2, rng.New(1))
	if l.W.NoWeightDecay {
		t.Fatal("weight must receive decay")
	}
	if !l.B.NoWeightDecay {
		t.Fatal("bias must be excluded from decay")
	}
}

func TestLayerNormOutputMoments(t *testing.T) {
	r := rng.New(3)
	const rows, dim = 16, 64
	ln := NewLayerNorm("ln", dim)
	x := make([]float32, rows*dim)
	r.FillNormal(x, 3, 5)
	y := ln.Forward(x, rows)
	for row := 0; row < rows; row++ {
		seg := y[row*dim : (row+1)*dim]
		mean := tensor.Mean(seg)
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v", row, mean)
		}
		var variance float64
		for _, v := range seg {
			variance += float64(v) * float64(v)
		}
		variance /= dim
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d variance %v", row, variance)
		}
	}
}

func TestGELUKnownValues(t *testing.T) {
	g := NewGELU()
	y := g.Forward([]float32{0, 100, -100}, 1)
	if y[0] != 0 {
		t.Fatalf("gelu(0)=%v", y[0])
	}
	if math.Abs(float64(y[1]-100)) > 1e-3 {
		t.Fatalf("gelu(100)=%v, want ≈100", y[1])
	}
	if math.Abs(float64(y[2])) > 1e-3 {
		t.Fatalf("gelu(-100)=%v, want ≈0", y[2])
	}
}

func TestAttentionOutputShapeAndFiniteness(t *testing.T) {
	r := rng.New(4)
	const batch, tokens, width, heads = 3, 7, 16, 4
	a := NewMultiHeadAttention("attn", width, heads, r)
	x := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)
	y := a.Forward(x, batch, tokens)
	if len(y) != batch*tokens*width {
		t.Fatalf("len(y)=%d", len(y))
	}
	for _, v := range y {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite attention output")
		}
	}
}

func TestAttentionHeadDivisibilityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for indivisible heads")
		}
	}()
	NewMultiHeadAttention("a", 10, 3, rng.New(1))
}

func TestAttentionBatchIndependence(t *testing.T) {
	// Two different sequences processed in one batch must produce the
	// same outputs as when processed separately — attention must not
	// leak across the batch dimension.
	r := rng.New(5)
	const tokens, width, heads = 4, 8, 2
	a := NewMultiHeadAttention("attn", width, heads, r)

	x1 := make([]float32, tokens*width)
	x2 := make([]float32, tokens*width)
	r.FillNormal(x1, 0, 1)
	r.FillNormal(x2, 0, 1)

	joint := append(append([]float32{}, x1...), x2...)
	yj := append([]float32(nil), a.Forward(joint, 2, tokens)...)
	y1 := append([]float32(nil), a.Forward(x1, 1, tokens)...)
	y2 := append([]float32(nil), a.Forward(x2, 1, tokens)...)

	for i := range y1 {
		if math.Abs(float64(yj[i]-y1[i])) > 1e-5 {
			t.Fatalf("batch leakage in first sequence at %d", i)
		}
	}
	for i := range y2 {
		if math.Abs(float64(yj[tokens*width+i]-y2[i])) > 1e-5 {
			t.Fatalf("batch leakage in second sequence at %d", i)
		}
	}
}

func TestPatchifyRoundTrip(t *testing.T) {
	r := rng.New(6)
	const batch, h, w, c, ps = 2, 8, 12, 3, 4
	imgs := make([]float32, batch*h*w*c)
	r.FillNormal(imgs, 0, 1)
	patches := make([]float32, batch*(h/ps)*(w/ps)*ps*ps*c)
	Patchify(patches, imgs, batch, h, w, c, ps)
	back := make([]float32, len(imgs))
	UnpatchifyAdd(back, patches, batch, h, w, c, ps)
	for i := range imgs {
		if imgs[i] != back[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestPatchifyDivisibilityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Patchify(make([]float32, 100), make([]float32, 100), 1, 10, 10, 1, 3)
}

func TestPatchifyPreservesEnergyProperty(t *testing.T) {
	// Property: patchify is a permutation, so the sum of squares is
	// preserved for any image content.
	r := rng.New(7)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		const batch, h, w, c, ps = 1, 6, 6, 2, 3
		imgs := make([]float32, batch*h*w*c)
		rr.FillNormal(imgs, 0, 1)
		patches := make([]float32, len(imgs))
		Patchify(patches, imgs, batch, h, w, c, ps)
		var a, b float64
		for i := range imgs {
			a += float64(imgs[i]) * float64(imgs[i])
			b += float64(patches[i]) * float64(patches[i])
		}
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSinCos2DProperties(t *testing.T) {
	const dim, gh, gw = 16, 3, 4
	pos := SinCos2D(dim, gh, gw)
	if len(pos) != gh*gw*dim {
		t.Fatalf("len=%d", len(pos))
	}
	// All rows distinct (positional encodings must disambiguate grid cells).
	for i := 0; i < gh*gw; i++ {
		for j := i + 1; j < gh*gw; j++ {
			same := true
			for k := 0; k < dim; k++ {
				if pos[i*dim+k] != pos[j*dim+k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("positions %d and %d identical", i, j)
			}
		}
	}
	// Values bounded by 1 in magnitude.
	for _, v := range pos {
		if v > 1 || v < -1 {
			t.Fatalf("value %v out of [-1,1]", v)
		}
	}
}

func TestSinCos2DDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for dim%4 != 0")
		}
	}()
	SinCos2D(10, 2, 2)
}

func TestSinCos1D(t *testing.T) {
	pos := SinCos1D(8, 5)
	if len(pos) != 40 {
		t.Fatalf("len=%d", len(pos))
	}
	// Position 0: sin parts 0, cos parts 1.
	for i := 0; i < 4; i++ {
		if pos[i] != 0 {
			t.Fatalf("sin(0) != 0 at %d", i)
		}
		if pos[4+i] != 1 {
			t.Fatalf("cos(0) != 1 at %d", i)
		}
	}
}

func TestNormalizePatches(t *testing.T) {
	r := rng.New(8)
	const n, d = 5, 32
	src := make([]float32, n*d)
	r.FillNormal(src, 4, 3)
	dst := make([]float32, n*d)
	NormalizePatches(dst, src, n, d, 1e-6)
	for p := 0; p < n; p++ {
		row := dst[p*d : (p+1)*d]
		if m := tensor.Mean(row); math.Abs(m) > 1e-4 {
			t.Fatalf("patch %d mean %v", p, m)
		}
		var variance float64
		for _, v := range row {
			variance += float64(v) * float64(v)
		}
		variance /= d
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("patch %d variance %v", p, variance)
		}
	}
}

func TestNormalizePatchesConstantPatch(t *testing.T) {
	src := []float32{5, 5, 5, 5}
	dst := make([]float32, 4)
	NormalizePatches(dst, src, 1, 4, 1e-6)
	for _, v := range dst {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("constant patch produced non-finite values")
		}
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	// Extremely confident correct logits → loss near zero.
	logits := []float32{100, 0, 0, 0, 100, 0}
	labels := []int{0, 1}
	d := make([]float32, 6)
	loss := CrossEntropy(logits, labels, 3, d)
	if loss > 1e-5 {
		t.Fatalf("loss=%v for perfect prediction", loss)
	}
}

func TestCrossEntropyUniformBaseline(t *testing.T) {
	// Uniform logits → loss = ln(classes).
	const classes = 7
	logits := make([]float32, classes)
	d := make([]float32, classes)
	loss := CrossEntropy(logits, []int{3}, classes, d)
	if math.Abs(loss-math.Log(classes)) > 1e-5 {
		t.Fatalf("loss=%v want ln(%d)=%v", loss, classes, math.Log(classes))
	}
}

func TestMSEZeroForIdentical(t *testing.T) {
	a := []float32{1, 2, 3}
	d := make([]float32, 3)
	if MSE(a, a, d) != 0 {
		t.Fatal("MSE(x,x) != 0")
	}
	for _, v := range d {
		if v != 0 {
			t.Fatal("gradient nonzero for identical inputs")
		}
	}
}

func BenchmarkBlockForwardBackward(b *testing.B) {
	r := rng.New(1)
	const batch, tokens, width, hidden, heads = 8, 16, 64, 256, 4
	blk := NewBlock("b", width, hidden, heads, r)
	x := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)
	dy := make([]float32, batch*tokens*width)
	r.FillNormal(dy, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Forward(x, batch, tokens)
		blk.Backward(dy)
	}
}
