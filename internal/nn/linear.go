package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Linear is a fully-connected layer y = x·W + b with W of shape
// (in × out). The (in × out) storage order means the forward pass is a
// plain row-major GEMM and the two backward GEMMs are the transposed
// kernels from internal/tensor, with no explicit transposition.
type Linear struct {
	In, Out int
	W, B    *Param

	// WBF16, when non-nil, is a bf16-encoded shadow of W that the
	// inference path streams through the bf16-input GEMM instead of
	// the fp32 weights — half the weight-read bandwidth per Infer
	// GEMM. Populated by PackBF16; training always reads W.
	WBF16 []uint16

	// cached forward input and row count for the backward pass
	x    []float32
	rows int
	// reusable output and input-gradient buffers
	y, dx []float32
}

// NewLinear constructs a Linear layer with Xavier-uniform weights and
// zero bias, matching the MAE reference initialization.
func NewLinear(name string, in, out int, r *rng.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   NewParam(name+".weight", in, out),
		B:   NewParam(name+".bias", out),
	}
	l.B.NoWeightDecay = true
	l.W.Value.XavierInit(r, in, out)
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes y = x·W + b for rows input rows. The returned slice
// is owned by the layer and valid until the next Forward call.
func (l *Linear) Forward(x []float32, rows int) []float32 {
	checkRows(len(x), rows, l.In, "Linear.Forward")
	l.x = x
	l.rows = rows
	l.y = grow(l.y, rows*l.Out)
	tensor.MatMul(l.y, x, l.W.Value.Data, rows, l.In, l.Out, false)
	b := l.B.Value.Data
	for i := 0; i < rows; i++ {
		yi := l.y[i*l.Out : (i+1)*l.Out]
		for j := range yi {
			yi[j] += b[j]
		}
	}
	return l.y
}

// Backward consumes dL/dy, accumulates dL/dW and dL/db, and returns
// dL/dx. The returned slice is owned by the layer.
func (l *Linear) Backward(dy []float32) []float32 {
	rows := l.rows
	checkRows(len(dy), rows, l.Out, "Linear.Backward")
	// dW += xᵀ·dy : (in × rows)·(rows × out)
	tensor.MatMulTA(l.W.Grad.Data, l.x, dy, l.In, rows, l.Out, true)
	// db += column sums of dy
	db := l.B.Grad.Data
	for i := 0; i < rows; i++ {
		dyi := dy[i*l.Out : (i+1)*l.Out]
		for j := range dyi {
			db[j] += dyi[j]
		}
	}
	// dx = dy·Wᵀ : W stored (in × out) so this is the TB kernel.
	l.dx = grow(l.dx, rows*l.In)
	tensor.MatMulTB(l.dx, dy, l.W.Value.Data, rows, l.Out, l.In, false)
	return l.dx
}

// PackBF16 snapshots W into the bf16 shadow that Infer streams. When
// the fp32 weights already hold bf16-resolution values (the serving
// loader rounds them with tensor.RoundBF16 first), the encoding is
// exact and Infer's results are bitwise unchanged — MatMulBF16 equals
// MatMul over the widened shadow bit-for-bit.
func (l *Linear) PackBF16() {
	if len(l.WBF16) != len(l.W.Value.Data) {
		l.WBF16 = make([]uint16, len(l.W.Value.Data))
	}
	tensor.ToBF16(l.WBF16, l.W.Value.Data)
}

// Release drops the grown forward/backward scratch (and the cached
// input reference); weights and the bf16 shadow are kept.
func (l *Linear) Release() {
	l.x, l.y, l.dx = nil, nil, nil
	l.rows = 0
}
