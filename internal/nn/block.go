package nn

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MLP is the transformer feed-forward block: Linear → GELU → Linear.
type MLP struct {
	FC1 *Linear
	Act *GELU
	FC2 *Linear
}

// NewMLP builds the feed-forward block mapping width → hidden → width.
func NewMLP(name string, width, hidden int, r *rng.RNG) *MLP {
	return &MLP{
		FC1: NewLinear(name+".fc1", width, hidden, r),
		Act: NewGELU(),
		FC2: NewLinear(name+".fc2", hidden, width, r),
	}
}

// Params returns both projections' parameters.
func (m *MLP) Params() []*Param { return append(m.FC1.Params(), m.FC2.Params()...) }

// Forward applies the feed-forward transform row-wise.
func (m *MLP) Forward(x []float32, rows int) []float32 {
	h := m.FC1.Forward(x, rows)
	h = m.Act.Forward(h, rows)
	return m.FC2.Forward(h, rows)
}

// Backward propagates the feed-forward gradient.
func (m *MLP) Backward(dy []float32) []float32 {
	dh := m.FC2.Backward(dy)
	dh = m.Act.Backward(dh)
	return m.FC1.Backward(dh)
}

// PackBF16 packs both projections' bf16 weight shadows for inference.
func (m *MLP) PackBF16() {
	m.FC1.PackBF16()
	m.FC2.PackBF16()
}

// Release drops the feed-forward scratch buffers.
func (m *MLP) Release() {
	m.FC1.Release()
	m.Act.Release()
	m.FC2.Release()
}

// Block is a pre-norm transformer encoder block:
//
//	x = x + MHA(LN₁(x));  x = x + MLP(LN₂(x))
//
// exactly as in ViT (Dosovitskiy et al.) and the MAE encoder/decoder.
type Block struct {
	LN1  *LayerNorm
	Attn *MultiHeadAttention
	LN2  *LayerNorm
	MLP  *MLP

	y1, y2, dx []float32
}

// NewBlock constructs one encoder block with the given width, MLP
// hidden size, and head count.
func NewBlock(name string, width, mlpHidden, heads int, r *rng.RNG) *Block {
	return &Block{
		LN1:  NewLayerNorm(name+".ln1", width),
		Attn: NewMultiHeadAttention(name+".attn", width, heads, r),
		LN2:  NewLayerNorm(name+".ln2", width),
		MLP:  NewMLP(name+".mlp", width, mlpHidden, r),
	}
}

// Params returns all block parameters in a stable order.
func (b *Block) Params() []*Param {
	ps := b.LN1.Params()
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.MLP.Params()...)
	return ps
}

// Forward runs the block over batch sequences of tokens tokens.
func (b *Block) Forward(x []float32, batch, tokens int) []float32 {
	rows := batch * tokens
	h := b.LN1.Forward(x, rows)
	h = b.Attn.Forward(h, batch, tokens)
	b.y1 = grow(b.y1, len(x))
	tensor.Add(b.y1, x, h)

	h2 := b.LN2.Forward(b.y1, rows)
	h2 = b.MLP.Forward(h2, rows)
	b.y2 = grow(b.y2, len(x))
	tensor.Add(b.y2, b.y1, h2)
	return b.y2
}

// Backward propagates through both residual branches.
func (b *Block) Backward(dy []float32) []float32 {
	dmlp := b.MLP.Backward(dy)
	dln2 := b.LN2.Backward(dmlp)
	// Gradient into y1 is the residual term plus the MLP branch.
	dy1 := grow(b.dx, len(dy))
	tensor.Add(dy1, dy, dln2)

	dattn := b.Attn.Backward(dy1)
	dln1 := b.LN1.Backward(dattn)
	// Reuse dy1 as the output buffer: dx = dy1 + dln1.
	tensor.Add(dy1, dy1, dln1)
	b.dx = dy1
	return dy1
}

// PackBF16 packs the block's projection weights into bf16 shadows.
func (b *Block) PackBF16() {
	b.Attn.PackBF16()
	b.MLP.PackBF16()
}

// Release drops every scratch buffer in the block (residual sums and
// all sub-layer scratch); weights are untouched.
func (b *Block) Release() {
	b.LN1.Release()
	b.Attn.Release()
	b.LN2.Release()
	b.MLP.Release()
	b.y1, b.y2, b.dx = nil, nil, nil
}
