package nn

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// attnFwdFlops estimates the multiply-add work of one attention
// forward: QKV projection, S = Q·Kᵀ, O = P·V, output projection.
func attnFwdFlops(batch, tokens, width, heads int) float64 {
	bt := float64(batch * tokens)
	w := float64(width)
	d := w / float64(heads)
	bh := float64(batch * heads)
	t := float64(tokens)
	return 2*bt*w*3*w + // QKV projection
		4*bh*t*t*d + // S = Q·Kᵀ and O = P·V
		2*bt*w*w // output projection
}

// BenchmarkAttentionGEMM exercises the attention hot path at encoder
// shapes (ViT-Base patches and a laptop-scale analog) and reports
// achieved GFLOP/s; the backward benches include the five backward
// GEMMs (≈2× the forward work).
func BenchmarkAttentionGEMM(b *testing.B) {
	shapes := []struct{ batch, tokens, width, heads int }{
		{1, 197, 768, 12}, // ViT-Base, 224² image, 16² patches + CLS
		{4, 64, 256, 8},   // laptop-scale analog
	}
	for _, s := range shapes {
		name := fmt.Sprintf("B%dT%dW%dH%d", s.batch, s.tokens, s.width, s.heads)
		r := rng.New(3)
		x := make([]float32, s.batch*s.tokens*s.width)
		r.FillNormal(x, 0, 1)

		b.Run("Forward/"+name, func(b *testing.B) {
			att := NewMultiHeadAttention("bench", s.width, s.heads, rng.New(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				att.Forward(x, s.batch, s.tokens)
			}
			b.StopTimer()
			fl := attnFwdFlops(s.batch, s.tokens, s.width, s.heads) * float64(b.N)
			b.ReportMetric(fl/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})

		b.Run("FwdBwd/"+name, func(b *testing.B) {
			att := NewMultiHeadAttention("bench", s.width, s.heads, rng.New(1))
			dy := make([]float32, s.batch*s.tokens*s.width)
			rng.New(4).FillNormal(dy, 0, 1)
			att.Forward(x, s.batch, s.tokens)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				att.Forward(x, s.batch, s.tokens)
				att.Backward(dy)
			}
			b.StopTimer()
			fl := 3 * attnFwdFlops(s.batch, s.tokens, s.width, s.heads) * float64(b.N)
			b.ReportMetric(fl/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
