package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Tolerances for fused-vs-materialized agreement at the layer level.
// The fused kernel reassociates the softmax (online rescaling, fast
// exp) and the tile-order of the reductions, so agreement is to
// rounding, not bitwise; see internal/tensor/attention_test.go for the
// kernel-level derivation of these bounds.
const (
	fusedFwdTol = 1e-3
	fusedBwdTol = 5e-3
)

func relClose(got, want, tol float32) bool {
	return math.Abs(float64(got-want)) <= float64(tol)*(1+math.Abs(float64(want)))
}

func requireClose(t *testing.T, label string, got, want []float32, tol float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if !relClose(got[i], want[i], tol) {
			t.Fatalf("%s[%d]: fused %v materialized %v", label, i, got[i], want[i])
		}
	}
}

// runAttn runs one Forward/Backward pair on a fresh layer with fixed
// weights and returns output, input gradient, and flattened parameter
// gradients.
func runAttn(batch, tokens, width, heads int, x, dy []float32) (y, dx, grads []float32) {
	r := rng.New(42)
	a := NewMultiHeadAttention("attn", width, heads, r)
	y = append([]float32(nil), a.Forward(x, batch, tokens)...)
	dx = append([]float32(nil), a.Backward(dy)...)
	for _, p := range a.Params() {
		grads = append(grads, p.Grad.Data...)
	}
	return y, dx, grads
}

// TestFusedAttentionMatchesMaterialized flips the dispatch switch and
// requires the fused tiled path to agree with the materialized oracle
// on the full layer — output, dL/dx, and every parameter gradient —
// across shapes with ragged tile tails.
func TestFusedAttentionMatchesMaterialized(t *testing.T) {
	shapes := []struct{ batch, tokens, width, heads int }{
		{1, 3, 8, 2},
		{2, 17, 24, 3},
		{1, 48, 32, 4},
		{2, 49, 16, 2},
		{1, 131, 64, 4},
	}
	for _, s := range shapes {
		r := rng.New(uint64(s.tokens*1000 + s.width))
		x := make([]float32, s.batch*s.tokens*s.width)
		dy := make([]float32, s.batch*s.tokens*s.width)
		r.FillNormal(x, 0, 1)
		r.FillNormal(dy, 0, 1)

		prev := SetFusedAttention(true)
		yF, dxF, gF := runAttn(s.batch, s.tokens, s.width, s.heads, x, dy)
		SetFusedAttention(false)
		yM, dxM, gM := runAttn(s.batch, s.tokens, s.width, s.heads, x, dy)
		SetFusedAttention(prev)

		requireClose(t, "y", yF, yM, fusedFwdTol)
		requireClose(t, "dx", dxF, dxM, fusedBwdTol)
		requireClose(t, "grads", gF, gM, fusedBwdTol)
	}
}

// TestInferMatchesForwardFused requires the arena inference path to be
// bitwise identical to the training forward on the fused default —
// the invariant the serving equivalence tests build on.
func TestInferMatchesForwardFused(t *testing.T) {
	const batch, tokens, width, heads = 2, 29, 32, 4
	r := rng.New(7)
	a := NewMultiHeadAttention("attn", width, heads, r)
	x := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)

	want := a.Forward(x, batch, tokens)
	ctx := NewInferCtx()
	got := a.Infer(ctx, x, batch, tokens)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Infer[%d] = %v, Forward = %v (must be bitwise equal)", i, got[i], want[i])
		}
	}
}

// attnScratchFloats sums the lengths of every scratch buffer the layer
// retains between steps.
func attnScratchFloats(a *MultiHeadAttention) int {
	return len(a.q) + len(a.k) + len(a.v) + len(a.stats) +
		len(a.probs) + len(a.dp) + len(a.ds) +
		len(a.attnOut) + len(a.dqkv)
}

// TestFusedAttentionScratchFootprint pins the fused path's retained
// scratch at a ViT-Large-shaped sequence to its closed form,
// 7·B·T·W + 2·B·H·T floats — linear in T, with no (T×T) probability
// or backward buffers — and checks Release drops it to zero. The
// materialized oracle at the same shape retains 3·B·H·T² extra floats,
// which is the regression this test guards against: before the fused
// path, every trained layer pinned those T² buffers forever.
func TestFusedAttentionScratchFootprint(t *testing.T) {
	// ViT-Large sequence geometry (T=197 with class-token-free grid
	// rounded to the paper's 196), narrow width to keep runtime down:
	// the footprint formula being pinned is exact at any width.
	const batch, tokens, width, heads = 1, 196, 64, 4
	r := rng.New(11)
	x := make([]float32, batch*tokens*width)
	dy := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)
	r.FillNormal(dy, 0, 1)

	prev := SetFusedAttention(true)
	defer SetFusedAttention(prev)

	a := NewMultiHeadAttention("attn", width, heads, r)
	a.Forward(x, batch, tokens)
	a.Backward(dy)

	want := 7*batch*tokens*width + 2*batch*heads*tokens
	if got := attnScratchFloats(a); got != want {
		t.Fatalf("fused scratch = %d floats, want %d (7·B·T·W + 2·B·H·T)", got, want)
	}
	if a.probs != nil || a.dp != nil || a.ds != nil {
		t.Fatal("fused path grew a (T×T) buffer")
	}

	a.Release()
	if got := attnScratchFloats(a); got != 0 {
		t.Fatalf("scratch after Release = %d floats, want 0", got)
	}

	// The materialized oracle at the same shape retains the three T²
	// buffers on top of the fused footprint.
	SetFusedAttention(false)
	m := NewMultiHeadAttention("attn", width, heads, r)
	m.Forward(x, batch, tokens)
	m.Backward(dy)
	wantM := want + 3*batch*heads*tokens*tokens - 2*batch*heads*tokens
	if got := attnScratchFloats(m); got != wantM {
		t.Fatalf("materialized scratch = %d floats, want %d", got, wantM)
	}
}

// TestLinearInferBF16Bitwise checks the serving weight contract: with
// W pre-rounded to bf16, Infer through the packed 2-byte shadow is
// bitwise identical to Infer through the fp32 weights.
func TestLinearInferBF16Bitwise(t *testing.T) {
	const rows, in, out = 9, 37, 23
	r := rng.New(3)
	l := NewLinear("lin", in, out, r)
	tensor.RoundBF16(l.W.Value.Data, l.W.Value.Data)
	x := make([]float32, rows*in)
	r.FillNormal(x, 0, 1)

	ctx := NewInferCtx()
	want := append([]float32(nil), l.Infer(ctx, x, rows)...)
	l.PackBF16()
	if l.WBF16 == nil {
		t.Fatal("PackBF16 left WBF16 nil")
	}
	got := l.Infer(ctx, x, rows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bf16 Infer[%d] = %v, fp32 = %v (must be bitwise equal)", i, got[i], want[i])
		}
	}
}
