package nn

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// InferCtx is a per-worker scratch arena for the inference-only
// forward path. Training forwards cache activations inside the layer
// structs (for backward), which makes a shared model unsafe to call
// from two goroutines; the Infer methods instead write every
// activation into the caller's InferCtx and never touch layer state,
// so any number of workers can run the same read-only weights
// concurrently with one InferCtx each.
//
// Buffers are handed out in call order and stay valid until Reset, so
// a steady-state serving loop reuses the same allocations every
// batch. An InferCtx is not safe for concurrent use; it is the
// per-worker part of the split.
type InferCtx struct {
	bufs [][]float32
	next int
}

// NewInferCtx returns an empty arena; buffers grow on first use.
func NewInferCtx() *InferCtx { return &InferCtx{} }

// Reset recycles every buffer handed out since the last Reset.
// Slices returned by earlier Infer calls are invalid after Reset.
func (c *InferCtx) Reset() { c.next = 0 }

// Release frees the arena's buffers entirely, so a worker that served
// one oversized batch stops pinning that batch's footprint. The next
// Take re-grows from nothing.
func (c *InferCtx) Release() {
	c.bufs = nil
	c.next = 0
}

// Take returns a length-n scratch slice owned by the arena, valid
// until Reset. Contents are unspecified: every Infer method fully
// overwrites what it takes, and callers needing zeroed memory (the
// mean-pool accumulator) clear it themselves.
func (c *InferCtx) Take(n int) []float32 {
	if c.next == len(c.bufs) {
		c.bufs = append(c.bufs, nil)
	}
	b := c.bufs[c.next]
	if cap(b) < n {
		b = make([]float32, n)
	}
	b = b[:n]
	c.bufs[c.next] = b
	c.next++
	return b
}

// Infer is Forward without the backward caches: y = x·W + b computed
// with the same GEMM kernel and bias loop, output in ctx. The layer
// is read-only here, so concurrent workers may share it.
func (l *Linear) Infer(ctx *InferCtx, x []float32, rows int) []float32 {
	checkRows(len(x), rows, l.In, "Linear.Infer")
	y := ctx.Take(rows * l.Out)
	if l.WBF16 != nil {
		// bf16 weight mode: stream the 2-byte encoding directly; the
		// GEMM widens panels in its pack stage, so no fp32 round-trip
		// buffer of the weights exists on this path.
		tensor.MatMulBF16(y, x, l.WBF16, rows, l.In, l.Out, false)
	} else {
		tensor.MatMul(y, x, l.W.Value.Data, rows, l.In, l.Out, false)
	}
	b := l.B.Value.Data
	for i := 0; i < rows; i++ {
		yi := y[i*l.Out : (i+1)*l.Out]
		for j := range yi {
			yi[j] += b[j]
		}
	}
	return y
}

// Infer normalizes rows of x exactly as Forward does (same float64
// accumulation, same parallel grain) without caching x̂ or 1/σ.
func (ln *LayerNorm) Infer(ctx *InferCtx, x []float32, rows int) []float32 {
	d := ln.Dim
	checkRows(len(x), rows, d, "LayerNorm.Infer")
	y := ctx.Take(rows * d)
	g := ln.Gamma.Value.Data
	b := ln.Beta.Value.Data
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(d+1), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xi := x[r*d : (r+1)*d]
			var mean float64
			for _, v := range xi {
				mean += float64(v)
			}
			mean /= float64(d)
			var variance float64
			for _, v := range xi {
				dv := float64(v) - mean
				variance += dv * dv
			}
			variance /= float64(d)
			inv := float32(1 / math.Sqrt(variance+float64(ln.Eps)))
			yi := y[r*d : (r+1)*d]
			m := float32(mean)
			for j, v := range xi {
				h := (v - m) * inv
				yi[j] = g[j]*h + b[j]
			}
		}
	})
	return y
}

// Infer applies the activation elementwise without caching the input.
func (g *GELU) Infer(ctx *InferCtx, x []float32, rows int) []float32 {
	y := ctx.Take(len(x))
	parallel.Range(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x[i])
			y[i] = float32(0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v))))
		}
	})
	return y
}

// Infer runs the feed-forward block through the arena.
func (m *MLP) Infer(ctx *InferCtx, x []float32, rows int) []float32 {
	h := m.FC1.Infer(ctx, x, rows)
	h = m.Act.Infer(ctx, h, rows)
	return m.FC2.Infer(ctx, h, rows)
}

// Infer runs self-attention with every intermediate (fused QKV, the
// per-head Q/K/V rearrangement, the merged head output) in the arena.
// It follows the same fused/materialized dispatch as Forward and runs
// the identical per-head kernels, so the output is bitwise equal to
// the training path. On the fused path the arena never holds a (T×T)
// buffer — only the O(B·H·T) statistics — which is what keeps a
// serving worker's steady-state footprint independent of the score
// matrix size.
func (a *MultiHeadAttention) Infer(ctx *InferCtx, x []float32, batch, tokens int) []float32 {
	w, h, d := a.Width, a.Heads, a.HeadDim
	checkRows(len(x), batch*tokens, w, "MultiHeadAttention.Infer")
	qkv := a.QKV.Infer(ctx, x, batch*tokens)

	bh := batch * h
	q := ctx.Take(bh * tokens * d)
	k := ctx.Take(bh * tokens * d)
	v := ctx.Take(bh * tokens * d)
	attnOut := ctx.Take(batch * tokens * w)

	parallel.ForGrain(bh, 1, func(i int) {
		b, hh := i/h, i%h
		for t := 0; t < tokens; t++ {
			src := qkv[(b*tokens+t)*3*w:]
			dst := i*tokens*d + t*d
			copy(q[dst:dst+d], src[hh*d:hh*d+d])
			copy(k[dst:dst+d], src[w+hh*d:w+hh*d+d])
			copy(v[dst:dst+d], src[2*w+hh*d:2*w+hh*d+d])
		}
	})

	scale := float32(1 / math.Sqrt(float64(d)))
	if fusedAttention {
		stats := ctx.Take(bh * 2 * tokens)
		parallel.ForGrain(bh, 1, func(i int) {
			qi := q[i*tokens*d : (i+1)*tokens*d]
			ki := k[i*tokens*d : (i+1)*tokens*d]
			vi := v[i*tokens*d : (i+1)*tokens*d]
			b, hh := i/h, i%h
			tensor.FlashAttnFwd(attnOut[(b*tokens)*w+hh*d:], w, qi, ki, vi,
				tokens, d, scale, stats[i*2*tokens:(i+1)*2*tokens])
		})
	} else {
		probs := ctx.Take(bh * tokens * tokens)
		parallel.ForGrain(bh, 1, func(i int) {
			qi := q[i*tokens*d : (i+1)*tokens*d]
			ki := k[i*tokens*d : (i+1)*tokens*d]
			vi := v[i*tokens*d : (i+1)*tokens*d]
			p := probs[i*tokens*tokens : (i+1)*tokens*tokens]
			tensor.MatMulTB(p, qi, ki, tokens, d, tokens, false)
			tensor.SoftmaxScaled(p, p, tokens, tokens, scale)
			b, hh := i/h, i%h
			tensor.MatMulLd(attnOut[(b*tokens)*w+hh*d:], p, vi,
				tokens, tokens, d, tokens, d, w, false)
		})
	}

	return a.Out.Infer(ctx, attnOut, batch*tokens)
}

// Infer runs the pre-norm block with both residual sums in the arena.
func (b *Block) Infer(ctx *InferCtx, x []float32, batch, tokens int) []float32 {
	rows := batch * tokens
	h := b.LN1.Infer(ctx, x, rows)
	h = b.Attn.Infer(ctx, h, batch, tokens)
	y1 := ctx.Take(len(x))
	tensor.Add(y1, x, h)

	h2 := b.LN2.Infer(ctx, y1, rows)
	h2 = b.MLP.Infer(ctx, h2, rows)
	y2 := ctx.Take(len(x))
	tensor.Add(y2, y1, h2)
	return y2
}

// Infer embeds flattened patches and adds the fixed positional table,
// writing into the arena instead of the layer's buffer.
func (pe *PatchEmbed) Infer(ctx *InferCtx, patches []float32, batch int) []float32 {
	rows := batch * pe.Tokens
	y := pe.Proj.Infer(ctx, patches, rows)
	w := pe.Width
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(w+1), func(lo, hi int) {
		for rIdx := lo; rIdx < hi; rIdx++ {
			pos := pe.Pos[(rIdx%pe.Tokens)*w : (rIdx%pe.Tokens+1)*w]
			yi := y[rIdx*w : (rIdx+1)*w]
			for j := range yi {
				yi[j] += pos[j]
			}
		}
	})
	return y
}
