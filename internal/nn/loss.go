package nn

import (
	"math"
	"sync"

	"repro/internal/parallel"
)

// CrossEntropy computes mean softmax cross-entropy over a batch of
// logits (batch × classes) with integer labels, returning the scalar
// loss and writing dL/dlogits into dlogits (allocated by the caller,
// same shape as logits).
func CrossEntropy(logits []float32, labels []int, classes int, dlogits []float32) float64 {
	batch := len(labels)
	checkRows(len(logits), batch, classes, "CrossEntropy")
	checkRows(len(dlogits), batch, classes, "CrossEntropy.dlogits")
	losses := make([]float64, batch)
	invB := float32(1 / float64(batch))
	parallel.ForGrain(batch, 8, func(i int) {
		row := logits[i*classes : (i+1)*classes]
		drow := dlogits[i*classes : (i+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			drow[j] = float32(e)
			sum += e
		}
		label := labels[i]
		losses[i] = math.Log(sum) - float64(row[label]-maxv)
		inv := float32(1 / sum)
		for j := range drow {
			drow[j] *= inv * invB
		}
		drow[label] -= invB
	})
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(batch)
}

// MSE computes the mean squared error between pred and target and
// writes dL/dpred into dpred (same length). This is the MAE
// reconstruction loss applied over masked-patch pixels.
func MSE(pred, target, dpred []float32) float64 {
	if len(pred) != len(target) || len(pred) != len(dpred) {
		panic("nn: MSE length mismatch")
	}
	n := len(pred)
	if n == 0 {
		return 0
	}
	var cs chunkSum
	parallel.Range(n, func(lo, hi int) {
		var s float64
		inv := float32(2 / float64(n))
		for i := lo; i < hi; i++ {
			d := pred[i] - target[i]
			s += float64(d) * float64(d)
			dpred[i] = inv * d
		}
		cs.add(s)
	})
	return cs.value() / float64(n)
}

// chunkSum accumulates float64 partial sums from concurrent workers.
type chunkSum struct {
	mu  sync.Mutex
	sum float64
}

func (c *chunkSum) add(v float64) {
	c.mu.Lock()
	c.sum += v
	c.mu.Unlock()
}

func (c *chunkSum) value() float64 { return c.sum }

// NormalizePatches rewrites each patch row of a (nPatches × patchDim)
// matrix to zero mean and unit variance, the "normalized pixel" target
// construction that the paper (following MAE) uses for the
// reconstruction loss. eps guards constant patches.
func NormalizePatches(dst, src []float32, nPatches, patchDim int, eps float64) {
	checkRows(len(src), nPatches, patchDim, "NormalizePatches")
	checkRows(len(dst), nPatches, patchDim, "NormalizePatches.dst")
	parallel.ForGrain(nPatches, 4, func(p int) {
		row := src[p*patchDim : (p+1)*patchDim]
		out := dst[p*patchDim : (p+1)*patchDim]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(patchDim)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(patchDim)
		inv := 1 / math.Sqrt(variance+eps)
		for j, v := range row {
			out[j] = float32((float64(v) - mean) * inv)
		}
	})
}
