package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// gradCheck compares the analytic input gradient and all parameter
// gradients of a layer against central finite differences of a scalar
// loss L = Σ c_i · y_i with fixed random coefficients c.
//
// forward must run the layer on x and return y; backward must run the
// layer's backward on dy and return dx. params lists the layer's
// parameters. tol is the relative tolerance.
func gradCheck(t *testing.T, name string, x []float32, outLen int,
	forward func(x []float32) []float32,
	backward func(dy []float32) []float32,
	params []*Param, tol float64) {
	t.Helper()
	r := rng.New(999)
	coef := make([]float32, outLen)
	r.FillNormal(coef, 0, 1)

	loss := func() float64 {
		y := forward(x)
		var s float64
		for i := range coef {
			s += float64(coef[i]) * float64(y[i])
		}
		return s
	}

	// Analytic gradients.
	ZeroGrads(params)
	_ = forward(x)
	dy := make([]float32, outLen)
	copy(dy, coef)
	dx := backward(dy)

	const h = 1e-2
	check := func(label string, vals []float32, analytic []float32, idxs []int) {
		for _, i := range idxs {
			orig := vals[i]
			vals[i] = orig + h
			lp := loss()
			vals[i] = orig - h
			lm := loss()
			vals[i] = orig
			num := (lp - lm) / (2 * h)
			got := float64(analytic[i])
			scale := math.Max(1, math.Max(math.Abs(num), math.Abs(got)))
			if math.Abs(num-got)/scale > tol {
				t.Errorf("%s %s[%d]: numeric %v analytic %v", name, label, i, num, got)
			}
		}
	}

	// Check a sample of input positions.
	idxs := sampleIdx(r, len(x), 12)
	check("dx", x, dx, idxs)

	for _, p := range params {
		pi := sampleIdx(r, p.NumEl(), 8)
		check(p.Name, p.Value.Data, p.Grad.Data, pi)
	}
}

func sampleIdx(r *rng.RNG, n, k int) []int {
	if k > n {
		k = n
	}
	perm := r.Perm(n)
	return perm[:k]
}

func TestLinearGradients(t *testing.T) {
	r := rng.New(1)
	const rows, in, out = 5, 7, 4
	l := NewLinear("lin", in, out, r)
	x := make([]float32, rows*in)
	r.FillNormal(x, 0, 1)
	gradCheck(t, "Linear", x, rows*out,
		func(x []float32) []float32 { return l.Forward(x, rows) },
		func(dy []float32) []float32 { return l.Backward(dy) },
		l.Params(), 1e-2)
}

func TestLayerNormGradients(t *testing.T) {
	r := rng.New(2)
	const rows, dim = 6, 8
	ln := NewLayerNorm("ln", dim)
	// Non-trivial gamma/beta so their gradients are exercised.
	ln.Gamma.Value.RandnInit(r, 1)
	ln.Beta.Value.RandnInit(r, 1)
	x := make([]float32, rows*dim)
	r.FillNormal(x, 0, 2)
	gradCheck(t, "LayerNorm", x, rows*dim,
		func(x []float32) []float32 { return ln.Forward(x, rows) },
		func(dy []float32) []float32 { return ln.Backward(dy) },
		ln.Params(), 2e-2)
}

func TestGELUGradients(t *testing.T) {
	r := rng.New(3)
	g := NewGELU()
	x := make([]float32, 50)
	r.FillNormal(x, 0, 2)
	gradCheck(t, "GELU", x, len(x),
		func(x []float32) []float32 { return g.Forward(x, 1) },
		func(dy []float32) []float32 { return g.Backward(dy) },
		nil, 1e-2)
}

func TestAttentionGradients(t *testing.T) {
	r := rng.New(4)
	const batch, tokens, width, heads = 2, 5, 8, 2
	a := NewMultiHeadAttention("attn", width, heads, r)
	x := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)
	gradCheck(t, "MHA", x, batch*tokens*width,
		func(x []float32) []float32 { return a.Forward(x, batch, tokens) },
		func(dy []float32) []float32 { return a.Backward(dy) },
		a.Params(), 2e-2)
}

func TestMLPGradients(t *testing.T) {
	r := rng.New(5)
	const rows, width, hidden = 4, 6, 10
	m := NewMLP("mlp", width, hidden, r)
	x := make([]float32, rows*width)
	r.FillNormal(x, 0, 1)
	gradCheck(t, "MLP", x, rows*width,
		func(x []float32) []float32 { return m.Forward(x, rows) },
		func(dy []float32) []float32 { return m.Backward(dy) },
		m.Params(), 1e-2)
}

func TestBlockGradients(t *testing.T) {
	r := rng.New(6)
	const batch, tokens, width, hidden, heads = 2, 4, 8, 12, 2
	b := NewBlock("blk", width, hidden, heads, r)
	x := make([]float32, batch*tokens*width)
	r.FillNormal(x, 0, 1)
	gradCheck(t, "Block", x, batch*tokens*width,
		func(x []float32) []float32 { return b.Forward(x, batch, tokens) },
		func(dy []float32) []float32 { return b.Backward(dy) },
		b.Params(), 3e-2)
}

func TestPatchEmbedGradients(t *testing.T) {
	r := rng.New(7)
	const batch, gridH, gridW, patchDim, width = 2, 2, 3, 5, 8
	pe := NewPatchEmbed("pe", patchDim, width, gridH, gridW, r)
	x := make([]float32, batch*gridH*gridW*patchDim)
	r.FillNormal(x, 0, 1)
	gradCheck(t, "PatchEmbed", x, batch*gridH*gridW*width,
		func(x []float32) []float32 { return pe.Forward(x, batch) },
		func(dy []float32) []float32 { return pe.Backward(dy) },
		pe.Params(), 1e-2)
}

func TestCrossEntropyGradient(t *testing.T) {
	r := rng.New(8)
	const batch, classes = 6, 5
	logits := make([]float32, batch*classes)
	r.FillNormal(logits, 0, 2)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	dlogits := make([]float32, batch*classes)
	_ = CrossEntropy(logits, labels, classes, dlogits)

	const h = 1e-3
	scratch := make([]float32, batch*classes)
	for i := range logits {
		orig := logits[i]
		logits[i] = orig + h
		lp := CrossEntropy(logits, labels, classes, scratch)
		logits[i] = orig - h
		lm := CrossEntropy(logits, labels, classes, scratch)
		logits[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(dlogits[i])) > 1e-3 {
			t.Fatalf("dlogits[%d]: numeric %v analytic %v", i, num, dlogits[i])
		}
	}
}

func TestMSEGradient(t *testing.T) {
	r := rng.New(9)
	pred := make([]float32, 40)
	target := make([]float32, 40)
	r.FillNormal(pred, 0, 1)
	r.FillNormal(target, 0, 1)
	dpred := make([]float32, 40)
	loss := MSE(pred, target, dpred)
	if loss <= 0 {
		t.Fatal("MSE of distinct vectors must be positive")
	}
	const h = 1e-3
	scratch := make([]float32, 40)
	for _, i := range []int{0, 7, 39} {
		orig := pred[i]
		pred[i] = orig + h
		lp := MSE(pred, target, scratch)
		pred[i] = orig - h
		lm := MSE(pred, target, scratch)
		pred[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(dpred[i])) > 1e-4 {
			t.Fatalf("dpred[%d]: numeric %v analytic %v", i, num, dpred[i])
		}
	}
}
