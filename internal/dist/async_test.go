package dist

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/rng"
)

// TestAsyncAllReduceMatchesSyncBitwise: a bucketed async all-reduce
// schedule (issue everything, wait at the end) must leave every rank
// with bit-for-bit the buffers of the synchronous bucket loop, and the
// measured byte accounting must be identical — the keystone of the
// overlapped training path.
func TestAsyncAllReduceMatchesSyncBitwise(t *testing.T) {
	const n, elems, buckets = 4, 64, 4
	mk := func() [][]float32 {
		g := rng.New(7)
		out := make([][]float32, n)
		for r := range out {
			out[r] = make([]float32, elems)
			g.FillNormal(out[r], 0, 1)
		}
		return out
	}

	run := func(async bool) ([][]float32, Stats) {
		bufs := mk()
		w := New(n, Options{})
		err := w.Run(func(r *Rank) error {
			be := elems / buckets
			if async {
				var hs []*Handle
				for off := 0; off < elems; off += be {
					hs = append(hs, r.AllReduceAsync(bufs[r.ID()][off:off+be]))
				}
				for _, h := range hs {
					h.Wait()
				}
			} else {
				for off := 0; off < elems; off += be {
					r.AllReduce(bufs[r.ID()][off : off+be])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return bufs, w.Stats()
	}

	sync, syncStats := run(false)
	asy, asyStats := run(true)
	for r := range sync {
		for i := range sync[r] {
			if math.Float32bits(sync[r][i]) != math.Float32bits(asy[r][i]) {
				t.Fatalf("rank %d element %d: async %v != sync %v", r, i, asy[r][i], sync[r][i])
			}
		}
	}
	if asyStats.AllReduce.MeasuredWireBytes != syncStats.AllReduce.MeasuredWireBytes ||
		asyStats.AllReduce.Calls != syncStats.AllReduce.Calls ||
		asyStats.AllReduce.ModelWireBytes != syncStats.AllReduce.ModelWireBytes {
		t.Fatalf("async accounting %+v != sync %+v", asyStats.AllReduce, syncStats.AllReduce)
	}
}

// TestAsyncReduceScatterShard: the handle's Wait returns the caller's
// fully reduced shard — the same view the synchronous call returns.
func TestAsyncReduceScatterShard(t *testing.T) {
	const n, elems = 4, 32
	w := New(n, Options{})
	err := w.Run(func(r *Rank) error {
		buf := make([]float32, elems)
		for i := range buf {
			buf[i] = float32(r.ID()*elems + i)
		}
		h := r.ReduceScatterAsync(buf)
		shard := h.Wait()
		cs := elems / n
		for i := range shard {
			var want float32
			for peer := 0; peer < n; peer++ {
				want += float32(peer*elems + r.ID()*cs + i)
			}
			if shard[i] != want {
				return fmt.Errorf("rank %d shard[%d] = %v, want %v", r.ID(), i, shard[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsyncTwoLevelChaining exercises the HYBRID_SHARD composite: a
// shard-group reduce-scatter chained (via ...After) into a
// replica-group all-reduce must equal the synchronous two-level
// schedule bitwise — including when several buckets are in flight at
// once.
func TestAsyncTwoLevelChaining(t *testing.T) {
	const n, g, elems, buckets = 4, 2, 48, 3
	repl := n / g
	mk := func() [][]float32 {
		gen := rng.New(11)
		out := make([][]float32, n)
		for r := range out {
			out[r] = make([]float32, elems)
			gen.FillNormal(out[r], 0, 1)
		}
		return out
	}
	run := func(async bool) [][]float32 {
		bufs := mk()
		w := New(n, Options{})
		err := w.Run(func(r *Rank) error {
			first := r.ID() / g * g
			shardRanks := []int{first, first + 1}
			peers := make([]int, repl)
			for i := range peers {
				peers[i] = r.ID()%g + i*g
			}
			sg := w.Subgroup(shardRanks)
			rg := w.Subgroup(peers)
			idx := r.ID() - first
			be := elems / buckets
			cl := be / g
			buf := bufs[r.ID()]
			if async {
				var hs []*Handle
				for b := buckets - 1; b >= 0; b-- {
					span := buf[b*be : (b+1)*be]
					rs := sg.ReduceScatterAsync(r, span)
					hs = append(hs, rg.AllReduceAsyncAfter(r, span[idx*cl:(idx+1)*cl], rs))
				}
				for _, h := range hs {
					h.Wait()
				}
			} else {
				for b := buckets - 1; b >= 0; b-- {
					span := buf[b*be : (b+1)*be]
					shard := sg.ReduceScatter(r, span)
					rg.AllReduce(r, shard)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return bufs
	}
	sync := run(false)
	asy := run(true)
	// Compare each rank's owned chunk of each bucket (the rest is ring
	// garbage in both schedules).
	be := elems / buckets
	cl := be / g
	for r := 0; r < n; r++ {
		idx := r % g
		for b := 0; b < buckets; b++ {
			for i := 0; i < cl; i++ {
				at := b*be + idx*cl + i
				if math.Float32bits(sync[r][at]) != math.Float32bits(asy[r][at]) {
					t.Fatalf("rank %d bucket %d chunk elem %d: async %v != sync %v",
						r, b, i, asy[r][at], sync[r][at])
				}
			}
		}
	}
}

// TestAsyncBF16MatchesSync: the bf16 wire variants stay bit-identical
// between async and sync issue, and move exactly half the fp32 bytes.
func TestAsyncBF16MatchesSync(t *testing.T) {
	const n, elems = 4, 64
	mk := func() [][]float32 {
		g := rng.New(3)
		out := make([][]float32, n)
		for r := range out {
			out[r] = make([]float32, elems)
			g.FillNormal(out[r], 0, 1)
		}
		return out
	}
	run := func(async bool) ([][]float32, Stats) {
		bufs := mk()
		w := New(n, Options{})
		err := w.Run(func(r *Rank) error {
			wire := make([]uint16, elems)
			if async {
				r.AllReduceBF16Async(bufs[r.ID()], wire).Wait()
			} else {
				r.AllReduceBF16(bufs[r.ID()], wire)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return bufs, w.Stats()
	}
	sync, _ := run(false)
	asy, st := run(true)
	for r := range sync {
		for i := range sync[r] {
			if math.Float32bits(sync[r][i]) != math.Float32bits(asy[r][i]) {
				t.Fatalf("rank %d element %d differs", r, i)
			}
		}
	}
	want := 2 * float64(n-1) / float64(n) * float64(elems) * 2
	if st.AllReduce.MeasuredWireBytes != want {
		t.Fatalf("bf16 async bytes %v, want %v", st.AllReduce.MeasuredWireBytes, want)
	}
}

// TestAsyncAbort: a rank that fails while peers have collectives in
// flight must unblock their Wait with ErrAborted instead of
// deadlocking.
func TestAsyncAbort(t *testing.T) {
	w := New(2, Options{})
	boom := errors.New("boom")
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			return boom
		}
		buf := make([]float32, 8)
		h := r.AllReduceAsync(buf)
		defer func() {
			if p := recover(); p == nil {
				t.Error("Wait did not re-raise the abort")
			} else if e, ok := p.(error); !ok || !errors.Is(e, ErrAborted) {
				t.Errorf("Wait panicked with %v, want ErrAborted", p)
			}
		}()
		h.Wait()
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the originating error", err)
	}
}

// TestAsyncAbortHybridSubgroups: a rank dying mid-collective in a
// two-level (hybrid) world must unblock every peer parked in a shard
// *or* replica subgroup with ErrAborted — including handles the victim
// abandoned un-Waited — and Run must return the originating error.
// Run under -race in CI: the abort path crosses the async workers of
// four ranks over four subgroups concurrently.
func TestAsyncAbortHybridSubgroups(t *testing.T) {
	const n, g = 4, 2
	boom := errors.New("boom")
	w := New(n, Options{})
	var sawAborted [n]bool
	err := w.Run(func(r *Rank) error {
		first := r.ID() / g * g
		sg := w.Subgroup([]int{first, first + 1})
		rg := w.Subgroup([]int{r.ID() % g, r.ID()%g + g})
		buf := make([]float32, 8)
		if r.ID() == 3 {
			// The victim: issue a shard-group collective it will never
			// Wait (abandoned at exit), then die "mid-step".
			sg.ReduceScatterAsync(r, buf)
			panic(boom)
		}
		defer func() {
			if p := recover(); p == nil {
				t.Errorf("rank %d was not unblocked", r.ID())
			} else if e, ok := p.(error); !ok || !errors.Is(e, ErrAborted) {
				t.Errorf("rank %d panicked with %v, want ErrAborted", r.ID(), p)
			} else {
				sawAborted[r.ID()] = true
				panic(p) // re-raise so Run records the abort
			}
		}()
		// Every survivor has work in flight on both levels: the chained
		// replica all-reduce can only complete if rank 3 participates.
		rs := sg.ReduceScatterAsync(r, buf)
		ar := rg.AllReduceAsyncAfter(r, buf[:4], rs)
		rs.Wait()
		ar.Wait()
		// Ranks whose groups exclude rank 3 entirely (rank 0's shard
		// group {0,1} and replica group {0,2}) may get this far; the
		// next world-group collective parks them until the abort.
		r.AllReduce(buf[:4])
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want the originating error", err)
	}
	for id := 0; id < n-1; id++ {
		if !sawAborted[id] {
			t.Errorf("rank %d completed without observing the abort", id)
		}
	}
}

// TestAsyncFIFOOrdering: operations issued on one group execute in
// issue order — a later all-gather observes the earlier all-reduce's
// result.
func TestAsyncFIFOOrdering(t *testing.T) {
	const n = 3
	w := New(n, Options{})
	err := w.Run(func(r *Rank) error {
		sum := make([]float32, n)
		for i := range sum {
			sum[i] = 1
		}
		gathered := make([]float32, n)
		h1 := r.AllReduceAsync(sum)
		// The all-gather contribution reads sum's chunk — legal only
		// because FIFO guarantees h1 ran first. (sum[r] == n after the
		// all-reduce.)
		h2 := r.AllGatherAsync(gathered, sum[r.ID():r.ID()+1])
		h1.Wait()
		h2.Wait()
		for i, v := range gathered {
			if v != n {
				return fmt.Errorf("rank %d gathered[%d] = %v, want %v", r.ID(), i, v, float32(n))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestThrottleRealizesModeledTime: with Options.Throttle the executed
// wall-clock of a collective is at least the α–β model's prediction.
func TestThrottleRealizesModeledTime(t *testing.T) {
	link := comm.Params{Bandwidth: 1e6, HopLat: 1e-6, Launch: 1e-5} // 1 MB/s: 64 KiB AR ≈ 0.2 s
	w := New(2, Options{Link: link, Throttle: 1})
	buf := make([]float32, 16384)
	start := time.Now()
	err := w.Run(func(r *Rank) error {
		local := make([]float32, len(buf))
		r.AllReduce(local)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	want := comm.AllReduce(float64(len(buf)*4), 2, link).Time
	if elapsed < want {
		t.Fatalf("throttled all-reduce took %.3fs, model predicts at least %.3fs", elapsed, want)
	}
	if st := w.Stats(); st.AllReduce.ModelTime <= 0 {
		t.Fatalf("no model time recorded: %+v", st.AllReduce)
	}
}

// TestAsyncWorldReuse: queues restart cleanly across Runs of the same
// world.
func TestAsyncWorldReuse(t *testing.T) {
	w := New(2, Options{})
	for run := 0; run < 3; run++ {
		err := w.Run(func(r *Rank) error {
			buf := []float32{1, 2}
			r.AllReduceAsync(buf).Wait()
			if buf[0] != 2 {
				return fmt.Errorf("run %d: got %v", run, buf[0])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Stats().AllReduce.Calls; got != 3 {
		t.Fatalf("calls %d, want 3", got)
	}
}
