package dist

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// refSum returns the sequential element-wise sum of the per-rank
// inputs, accumulated in rank order — the reference every collective is
// held to.
func refSum(inputs [][]float32) []float64 {
	out := make([]float64, len(inputs[0]))
	for _, in := range inputs {
		for j, v := range in {
			out[j] += float64(v)
		}
	}
	return out
}

// randInputs draws n random per-rank vectors of the given length.
func randInputs(r *rng.RNG, n, length int) [][]float32 {
	ins := make([][]float32, n)
	for i := range ins {
		ins[i] = make([]float32, length)
		r.FillUniform(ins[i], -1, 1)
	}
	return ins
}

// tolerance for comparing a ring reduction (ring order) against the
// sequential reference (rank order): both sum the same n float32
// values, only the association differs.
func closeEnough(got float32, want float64) bool {
	return math.Abs(float64(got)-want) <= 1e-4*(1+math.Abs(want))
}

func TestAllReduceMatchesReference(t *testing.T) {
	r := rng.New(42)
	for n := 1; n <= 8; n++ {
		for _, elems := range []int{n, 4 * n, 16 * n} {
			inputs := randInputs(r, n, elems)
			want := refSum(inputs)
			outs := make([][]float32, n)
			w := New(n, Options{})
			err := w.Run(func(rk *Rank) error {
				buf := append([]float32(nil), inputs[rk.ID()]...)
				rk.AllReduce(buf)
				outs[rk.ID()] = buf
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for rank, out := range outs {
				for j := range out {
					if !closeEnough(out[j], want[j]) {
						t.Fatalf("n=%d elems=%d rank=%d elem %d: got %v want %v",
							n, elems, rank, j, out[j], want[j])
					}
				}
			}
			// Every rank must hold the bit-identical result.
			for rank := 1; rank < n; rank++ {
				for j := range outs[0] {
					if outs[rank][j] != outs[0][j] {
						t.Fatalf("n=%d: ranks 0 and %d disagree at %d", n, rank, j)
					}
				}
			}
		}
	}
}

func TestReduceScatterMatchesReference(t *testing.T) {
	r := rng.New(7)
	for n := 1; n <= 8; n++ {
		elems := 8 * n
		inputs := randInputs(r, n, elems)
		want := refSum(inputs)
		shards := make([][]float32, n)
		w := New(n, Options{})
		err := w.Run(func(rk *Rank) error {
			buf := append([]float32(nil), inputs[rk.ID()]...)
			shard := rk.ReduceScatter(buf)
			shards[rk.ID()] = append([]float32(nil), shard...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cs := elems / n
		for rank, shard := range shards {
			if len(shard) != cs {
				t.Fatalf("n=%d rank=%d shard length %d want %d", n, rank, len(shard), cs)
			}
			for j, v := range shard {
				if !closeEnough(v, want[rank*cs+j]) {
					t.Fatalf("n=%d rank=%d elem %d: got %v want %v", n, rank, j, v, want[rank*cs+j])
				}
			}
		}
	}
}

func TestAllGatherMatchesReference(t *testing.T) {
	r := rng.New(9)
	for n := 1; n <= 8; n++ {
		cs := 5
		inputs := randInputs(r, n, cs)
		outs := make([][]float32, n)
		w := New(n, Options{})
		err := w.Run(func(rk *Rank) error {
			buf := make([]float32, n*cs)
			rk.AllGather(buf, inputs[rk.ID()])
			outs[rk.ID()] = buf
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for rank, out := range outs {
			for c := 0; c < n; c++ {
				for j := 0; j < cs; j++ {
					if out[c*cs+j] != inputs[c][j] {
						t.Fatalf("n=%d rank=%d chunk=%d elem %d: got %v want %v",
							n, rank, c, j, out[c*cs+j], inputs[c][j])
					}
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	r := rng.New(11)
	for n := 1; n <= 8; n++ {
		for root := 0; root < n; root += max(1, n-1) { // first and last
			payload := make([]float32, 13)
			r.FillUniform(payload, -2, 2)
			outs := make([][]float32, n)
			w := New(n, Options{})
			err := w.Run(func(rk *Rank) error {
				buf := make([]float32, len(payload))
				if rk.ID() == root {
					copy(buf, payload)
				}
				rk.Broadcast(buf, root)
				outs[rk.ID()] = buf
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for rank, out := range outs {
				for j := range out {
					if out[j] != payload[j] {
						t.Fatalf("n=%d root=%d rank=%d elem %d: got %v want %v",
							n, root, rank, j, out[j], payload[j])
					}
				}
			}
		}
	}
}

func TestAllReduceScalar(t *testing.T) {
	for n := 1; n <= 8; n++ {
		outs := make([]float64, n)
		w := New(n, Options{})
		err := w.Run(func(rk *Rank) error {
			outs[rk.ID()] = rk.AllReduceScalar(float64(rk.ID() + 1))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n*(n+1)) / 2
		for rank, got := range outs {
			if got != want {
				t.Fatalf("n=%d rank=%d: got %v want %v", n, rank, got, want)
			}
		}
	}
}

// TestSequencedCollectives chains several collectives back to back to
// exercise the per-edge handshake across calls (a regression guard for
// view-reuse races; run with -race).
func TestSequencedCollectives(t *testing.T) {
	const n = 4
	const elems = 32
	r := rng.New(5)
	inputs := randInputs(r, n, elems)
	want := refSum(inputs)
	w := New(n, Options{})
	outs := make([][]float32, n)
	err := w.Run(func(rk *Rank) error {
		buf := append([]float32(nil), inputs[rk.ID()]...)
		for iter := 0; iter < 10; iter++ {
			rk.AllReduce(buf)
			shard := rk.ReduceScatter(buf)
			rk.AllGather(buf, append([]float32(nil), shard...))
			rk.Broadcast(buf, iter%n)
			rk.Barrier()
			copy(buf, inputs[rk.ID()])
		}
		rk.AllReduce(buf)
		outs[rk.ID()] = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		for j := range outs[rank] {
			if !closeEnough(outs[rank][j], want[j]) {
				t.Fatalf("rank=%d elem %d: got %v want %v", rank, j, outs[rank][j], want[j])
			}
		}
	}
}

// TestStatsAccounting pins the measured per-rank wire bytes to the ring
// formulas the α–β model prices: (n−1)/n·V for reduce-scatter and
// all-gather, 2(n−1)/n·V for all-reduce, V for broadcast.
func TestStatsAccounting(t *testing.T) {
	const n = 4
	const elems = 64 // divisible by n
	w := New(n, Options{})
	err := w.Run(func(rk *Rank) error {
		buf := make([]float32, elems)
		rk.AllReduce(buf)
		rk.ReduceScatter(buf)
		rk.AllGather(buf, nil)
		rk.Broadcast(buf, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	bytes := float64(elems * 4)
	frac := float64(n-1) / float64(n)
	cases := []struct {
		name     string
		got      OpStats
		wantWire float64
	}{
		{"all-reduce", s.AllReduce, 2 * frac * bytes},
		{"reduce-scatter", s.ReduceScatter, frac * bytes},
		{"all-gather", s.AllGather, frac * bytes},
		{"broadcast", s.Broadcast, bytes},
	}
	for _, c := range cases {
		if c.got.Calls != 1 {
			t.Errorf("%s: calls=%d", c.name, c.got.Calls)
		}
		if c.got.MeasuredWireBytes != c.wantWire {
			t.Errorf("%s: measured %v bytes, ring formula %v", c.name, c.got.MeasuredWireBytes, c.wantWire)
		}
		if c.got.ModelWireBytes != c.wantWire {
			t.Errorf("%s: modeled %v bytes, ring formula %v", c.name, c.got.ModelWireBytes, c.wantWire)
		}
		if c.got.ModelTime <= 0 {
			t.Errorf("%s: modeled time %v", c.name, c.got.ModelTime)
		}
	}
	if s.World != n {
		t.Errorf("stats world = %d", s.World)
	}
}

func TestDivisibilityPanics(t *testing.T) {
	w := New(3, Options{})
	err := w.Run(func(rk *Rank) error {
		if rk.ID() == 0 {
			defer func() { recover() }()
			rk.AllReduce(make([]float32, 4)) // 4 % 3 != 0 → panics on every rank
			return nil
		}
		defer func() { recover() }()
		rk.AllReduce(make([]float32, 4))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	w := New(2, Options{})
	err := w.Run(func(rk *Rank) error {
		if rk.ID() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected the panic's error, got %v", err)
	}
}

// TestAbortUnblocksPeers: a rank dying while its peers are parked in a
// collective (or barrier) must surface the original failure, not
// deadlock the world.
func TestAbortUnblocksPeers(t *testing.T) {
	w := New(3, Options{})
	err := w.Run(func(rk *Rank) error {
		if rk.ID() == 1 {
			panic("boom")
		}
		buf := make([]float32, 6)
		rk.AllReduce(buf) // would hang forever without the abort path
		rk.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected the originating panic, got %v", err)
	}

	// An error return aborts too, and wins over the secondary ErrAborted.
	w2 := New(2, Options{})
	err = w2.Run(func(rk *Rank) error {
		if rk.ID() == 0 {
			return errors.New("rank 0 failed")
		}
		rk.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0 failed") {
		t.Fatalf("expected rank 0's error, got %v", err)
	}
}
