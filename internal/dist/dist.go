// Package dist executes real multi-rank data-parallel training inside
// one process: a World of N goroutine "ranks" connected in a ring, with
// working collectives on []float32 — ring AllReduce, ReduceScatter and
// AllGather, a pipelined ring Broadcast, a Barrier, and a float64
// scalar all-reduce for control values (loss averaging, global gradient
// norms).
//
// Where internal/comm *models* the cost of a collective and
// internal/fsdp *simulates* a training step's schedule, this package
// *runs* the collectives: the same ring algorithms RCCL executes on
// Frontier, implemented over per-edge Go channels. Every buffer element
// a rank puts on the "wire" (sends to its ring successor) is counted,
// and every call is simultaneously priced by the α–β model of
// internal/comm for the same byte count and world size — so measured
// and modeled communication live side by side in one Stats report, and
// tests can hold the simulator's accounting to what an execution
// actually moved.
//
// # Ranks and synchronization
//
// World.Run spawns one goroutine per rank and executes the same
// function on each (the SPMD convention). Collective calls are
// synchronization points: every rank of the world must call the same
// collectives in the same order with the same buffer lengths, exactly
// like an MPI or NCCL program. The collectives are zero-copy — ranks
// exchange read-only views of their buffers around the ring, and a
// per-step acknowledgement handshake guarantees a sender never rewrites
// a chunk a neighbour is still reading — so a collective moves no bytes
// beyond what the ring algorithm itself requires.
//
// # Accounting
//
// For a vector of V bytes over n ranks the ring algorithms put on each
// rank's outgoing link exactly the textbook volumes that internal/comm
// prices:
//
//	reduce-scatter / all-gather:  (n−1)/n · V
//	all-reduce:                   2(n−1)/n · V
//	broadcast:                    V   (ranks 0..n−2 each forward V)
//
// AllReduce, ReduceScatter and AllGather require len(buf) to be a
// multiple of the world size so chunks are uniform and the measured
// volume matches the model exactly; callers pad (see opt.PadTo).
//
// # Asynchronous handles
//
// Every collective also exists in an asynchronous form
// (AllReduceAsync, ReduceScatterAsync, AllGatherAsync and their BF16
// twins, plus ...After chaining across groups): the ring machinery
// runs on a per-(rank, group) worker goroutine fed by a FIFO issue
// queue, and Handle.Wait synchronizes — the executed analog of a GPU
// side stream, which the overlapped training path uses to hide
// gradient reductions behind backward compute. Async and synchronous
// issue run the identical deterministic rings, so results and byte
// accounting are bit-for-bit the same; see async.go for the protocol.
// Options.Throttle additionally realizes each collective's α–β modeled
// time as executed delay, making hidden versus exposed communication
// measurable in wall-clock.
//
// # Subgroups
//
// World.Subgroup carves a Group — a communicator over a subset of the
// ranks with its own ring edges, barrier and scalar table — so
// collectives on disjoint groups run concurrently. This is the
// two-level communicator structure of HYBRID_SHARD: FULL_SHARD
// collectives inside each k-rank shard group, a gradient-shard
// all-reduce across each world/k replica group. Group traffic composes
// with the World's Stats: bytes are counted against the sending world
// rank, and model accounting keeps world rank 0's view of the SPMD
// schedule (in a symmetric schedule every rank sends the same volume,
// so rank 0's calls are the world's calls).
//
// # Failure injection
//
// Options.Fault (a FaultPlan) kills a chosen rank as it enters a
// chosen collective, and Options.ThrottleSkew slows a chosen rank's
// collectives by a per-rank factor (straggler mode) — the fault model
// behind the elastic shrink-and-resume training path; see fault.go
// for the counting rules and the abort protocol the injection drives.
package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/hw"
)

// Options configures a World.
type Options struct {
	// Link is the α–β link model used to price each collective call
	// (measured vs modeled in Stats). A zero Link defaults to
	// DefaultLink(n).
	Link comm.Params
	// Throttle > 0 turns the modeled collective cost into a real
	// in-process delay: every rank sleeps Throttle × the α–β predicted
	// time of each collective it completes (1 = real time on the
	// configured Link, larger = a proportionally more congested link).
	// In-process channel hops are far faster than a GPU fabric, so
	// without throttling every collective is effectively free and
	// communication–computation overlap has nothing to hide; with it
	// the executed step times expose the same overlap economics the
	// fsdp simulator prices, measurably (see the overlap benchmarks in
	// internal/train).
	Throttle float64
	// ThrottleSkew scales Throttle per world rank (straggler mode): a
	// rank listed here sleeps skew × Throttle × modeled time after each
	// collective instead of 1 × Throttle. Because the collectives are
	// synchronous-lockstep, one skewed rank delays every peer at the
	// next synchronization point — the executed analog of one slow GPU
	// (thermal throttling, a degraded link) holding back a whole job,
	// which the straggler tests hold to the α–β lockstep prediction.
	// Ranks not present (or with non-positive skew) run at plain
	// Throttle. Ignored when Throttle is 0.
	ThrottleSkew map[int]float64
	// Fault schedules one deterministic rank death for fault-tolerance
	// testing; the zero value injects nothing. See FaultPlan.
	Fault FaultPlan
}

// DefaultLink returns the modeled link for an n-rank group co-located
// on one Frontier node (the layout an in-process world most resembles):
// Infinity Fabric bandwidth and intra-node hop latency from hw.Frontier.
func DefaultLink(n int) comm.Params {
	m := hw.Frontier()
	rpn := n
	if rpn > m.GPUsPerNode {
		rpn = m.GPUsPerNode
	}
	if rpn < 1 {
		rpn = 1
	}
	bw, lat, chunk := m.GroupBandwidth(n, rpn, m.GPUsPerNode)
	return comm.Params{Bandwidth: bw, HopLat: lat, Launch: m.CollectiveLaunch, ChunkOverheadBytes: chunk}
}

// Op identifies a collective kind in Stats.
type Op int

// Collective kinds.
const (
	OpAllReduce Op = iota
	OpReduceScatter
	OpAllGather
	OpBroadcast
	OpScalar // float64 control-plane reductions (loss, grad norms)
	numOps
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpAllReduce:
		return "all-reduce"
	case OpReduceScatter:
		return "reduce-scatter"
	case OpAllGather:
		return "all-gather"
	case OpBroadcast:
		return "broadcast"
	case OpScalar:
		return "scalar"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// OpStats aggregates one collective kind over a World's lifetime.
type OpStats struct {
	// Calls is how many times the collective ran.
	Calls int
	// MeasuredWireBytes is the per-rank outgoing traffic actually sent
	// around the ring (maximum over ranks; symmetric collectives send
	// the same from every rank).
	MeasuredWireBytes float64
	// ModelWireBytes is what the α–β model (internal/comm) accounts for
	// the same calls.
	ModelWireBytes float64
	// ModelTime is the α–β predicted total duration (seconds) on the
	// configured link.
	ModelTime float64
	// WallTime is the measured in-process duration (seconds, rank 0).
	// In-process channel hops are not a GPU fabric; WallTime is
	// reported for completeness, the byte counters are the quantities
	// tests pin down.
	WallTime float64
}

// Stats is the per-op accounting of a World.
type Stats struct {
	World         int
	AllReduce     OpStats
	ReduceScatter OpStats
	AllGather     OpStats
	Broadcast     OpStats
	Scalar        OpStats
}

// ByOp returns the stats entry for op.
func (s Stats) ByOp(o Op) OpStats {
	switch o {
	case OpAllReduce:
		return s.AllReduce
	case OpReduceScatter:
		return s.ReduceScatter
	case OpAllGather:
		return s.AllGather
	case OpBroadcast:
		return s.Broadcast
	default:
		return s.Scalar
	}
}

// World is a set of in-process ranks joined by ring channels.
type World struct {
	n        int
	link     comm.Params
	throttle float64
	skew     map[int]float64
	fault    FaultPlan

	ranks []*Rank

	// root is the world-wide Group (all ranks); Rank's collective
	// methods delegate to it.
	root *Group

	// subgroup registry: memoized by rank sequence so every member's
	// Subgroup call resolves to the same communicator.
	subMu  sync.Mutex
	subs   map[string]*Group
	groups []*Group // root + subgroups, for abort propagation

	// abort is closed when a rank dies mid-run so peers parked in a
	// collective unblock (with ErrAborted) instead of deadlocking.
	abort     chan struct{}
	abortOnce sync.Once

	// model accounting, written by rank 0 only (collectives order all
	// ranks, so rank 0's view is the world's view).
	calls     [numOps]int
	modelB    [numOps]float64
	modelT    [numOps]float64
	wall      [numOps]float64
	statsOnce sync.Mutex // guards Stats() against torn reads mid-run
}

// New creates an n-rank world. n must be ≥ 1.
func New(n int, opts Options) *World {
	if n < 1 {
		panic(fmt.Sprintf("dist: world size %d", n))
	}
	link := opts.Link
	if link.Bandwidth <= 0 {
		link = DefaultLink(n)
	}
	if opts.Fault.Armed() && (opts.Fault.Rank < 0 || opts.Fault.Rank >= n) {
		panic(fmt.Sprintf("dist: fault plan targets rank %d outside world %d", opts.Fault.Rank, n))
	}
	var skew map[int]float64
	if len(opts.ThrottleSkew) > 0 {
		skew = make(map[int]float64, len(opts.ThrottleSkew))
		for id, s := range opts.ThrottleSkew {
			if id < 0 || id >= n {
				panic(fmt.Sprintf("dist: throttle skew targets rank %d outside world %d", id, n))
			}
			skew[id] = s
		}
	}
	w := &World{
		n:        n,
		link:     link,
		throttle: opts.Throttle,
		skew:     skew,
		fault:    opts.Fault,
		subs:     make(map[string]*Group),
		abort:    make(chan struct{}),
	}
	all := make([]int, n)
	for i := 0; i < n; i++ {
		all[i] = i
		w.ranks = append(w.ranks, &Rank{w: w, id: i})
	}
	w.root = newGroup(w, all, link)
	w.groups = append(w.groups, w.root)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// ErrAborted is the error a rank observes when a peer died (panicked
// or returned an error) while it was parked in a collective. The
// originating rank's own error is what Run returns.
var ErrAborted = errors.New("dist: world aborted by a peer rank's failure")

// Run executes fn once per rank, each on its own goroutine, and waits
// for all of them. fn must keep the sequence of collective calls
// aligned across ranks. A rank that panics or returns an error aborts
// the world: peers parked in a collective unblock with ErrAborted
// (re-raised as a panic inside the collective and recovered here), and
// Run returns the originating rank's error. A World that aborted must
// not be reused.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for i := 0; i < w.n; i++ {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok && errors.Is(err, ErrAborted) {
						errs[r.id] = ErrAborted
					} else if err, ok := p.(error); ok {
						// %w keeps the chain intact so callers can match
						// sentinels (ErrInjectedFault) through Run's error.
						errs[r.id] = fmt.Errorf("dist: rank %d panicked: %w", r.id, err)
					} else {
						errs[r.id] = fmt.Errorf("dist: rank %d panicked: %v", r.id, p)
					}
					w.doAbort()
				} else if errs[r.id] != nil {
					w.doAbort()
				}
			}()
			// Async issue queues live for one Run: whatever fn leaves
			// queued is abandoned when the rank exits.
			defer r.closeAsync()
			errs[r.id] = fn(r)
		}(w.ranks[i])
	}
	wg.Wait()
	// Prefer the originating failure over the secondary ErrAborted ones.
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrAborted) {
			aborted = err
			continue
		}
		return err
	}
	return aborted
}

// doAbort poisons the world: blocked collectives and barriers — in the
// world group and every subgroup — unblock with ErrAborted.
func (w *World) doAbort() {
	w.abortOnce.Do(func() {
		close(w.abort)
		w.subMu.Lock()
		gs := append([]*Group(nil), w.groups...)
		w.subMu.Unlock()
		for _, g := range gs {
			g.bar.doAbort()
		}
	})
}

// Stats returns the accumulated measured-vs-modeled accounting. Call it
// after Run returns (or between Runs); per-rank byte counters are
// folded in at read time.
//
// Subgroup collectives compose into the same report: measured bytes
// accrue to whichever world rank sent them (the per-op maximum is
// reported), while calls and model costs are recorded from world rank
// 0's perspective — the one collective schedule every rank of a
// symmetric SPMD program executes. A schedule that runs collectives
// only on groups excluding rank 0 is therefore visible in the measured
// counters but not in the call/model columns.
func (w *World) Stats() Stats {
	w.statsOnce.Lock()
	defer w.statsOnce.Unlock()
	s := Stats{World: w.n}
	fill := func(o Op) OpStats {
		var maxSent float64
		for _, r := range w.ranks {
			if b := float64(r.sentBytes[o]); b > maxSent {
				maxSent = b
			}
		}
		return OpStats{
			Calls:             w.calls[o],
			MeasuredWireBytes: maxSent,
			ModelWireBytes:    w.modelB[o],
			ModelTime:         w.modelT[o],
			WallTime:          w.wall[o],
		}
	}
	s.AllReduce = fill(OpAllReduce)
	s.ReduceScatter = fill(OpReduceScatter)
	s.AllGather = fill(OpAllGather)
	s.Broadcast = fill(OpBroadcast)
	s.Scalar = fill(OpScalar)
	return s
}

// record is called by rank 0 on collective entry/exit to accumulate the
// modeled cost and wall time of one call.
func (w *World) record(o Op, c comm.Cost, wall time.Duration) {
	w.statsOnce.Lock()
	w.calls[o]++
	w.modelB[o] += c.WireBytes
	w.modelT[o] += c.Time
	w.wall[o] += wall.Seconds()
	w.statsOnce.Unlock()
}

// barrier is a reusable sense-reversing barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     uint64
	aborted bool
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(ErrAborted)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
		if b.aborted {
			panic(ErrAborted)
		}
	}
}

func (b *barrier) doAbort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
