package dist

import (
	"fmt"
	"time"

	"repro/internal/comm"
)

// Rank is one participant's handle into the World. A Rank must only be
// used from the goroutine World.Run assigned it to.
type Rank struct {
	w  *World
	id int

	// sentBytes counts what this rank physically sent to its ring
	// successor, per collective kind — the measured side of Stats.
	sentBytes [numOps]int64
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.bar.wait() }

// ring-edge channels for this rank.
func (r *Rank) sendCh() chan []float32 { return r.w.data[r.id] }
func (r *Rank) recvCh() chan []float32 { return r.w.data[(r.id-1+r.w.n)%r.w.n] }
func (r *Rank) ackSend() chan struct{} { return r.w.ack[(r.id-1+r.w.n)%r.w.n] }
func (r *Rank) ackRecv() chan struct{} { return r.w.ack[r.id] }

// abortable channel operations: every blocking ring edge also watches
// the world's abort channel, so a peer's death surfaces as an
// ErrAborted panic (recovered by World.Run) instead of a deadlock.
func (r *Rank) sendView(ch chan []float32, v []float32) {
	select {
	case ch <- v:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) recvView(ch chan []float32) []float32 {
	select {
	case v := <-ch:
		return v
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) sendSig(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) recvSig(ch chan struct{}) {
	select {
	case <-ch:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

// exchange performs one synchronized ring step: publish a read-only
// view to the successor, receive the predecessor's view, let process
// consume it, acknowledge, and wait for the successor's acknowledgement
// so the published view may be rewritten afterwards. The send channels
// have capacity 1 and the acknowledgement gates the next step, so no
// edge ever holds more than one in-flight view and a view is never read
// after its step completes.
func (r *Rank) exchange(op Op, view []float32, process func(recv []float32)) {
	r.sentBytes[op] += int64(len(view)) * 4
	r.sendView(r.sendCh(), view)
	recv := r.recvView(r.recvCh())
	process(recv)
	r.sendSig(r.ackSend())
	r.recvSig(r.ackRecv())
}

// chunk returns the c-th of n uniform chunks of buf.
func chunkOf(buf []float32, c, n int) []float32 {
	cs := len(buf) / n
	return buf[c*cs : (c+1)*cs]
}

func (r *Rank) checkDivisible(buf []float32, op Op) {
	if len(buf)%r.w.n != 0 {
		panic(fmt.Sprintf("dist: %v buffer length %d not divisible by world %d (pad the buffer)",
			op, len(buf), r.w.n))
	}
}

// begin starts model/wall accounting for one call on rank 0.
func (r *Rank) begin() time.Time {
	if r.id == 0 {
		return time.Now()
	}
	return time.Time{}
}

func (r *Rank) end(op Op, c comm.Cost, t0 time.Time) {
	if r.id == 0 {
		r.w.record(op, c, time.Since(t0))
	}
}

// ReduceScatter sums buf element-wise across all ranks and leaves this
// rank with its fully reduced shard: chunk r.ID() of the n uniform
// chunks of buf, returned as a view into buf. After the call the other
// chunks of buf hold partial sums and must be treated as garbage.
// len(buf) must be a multiple of the world size.
func (r *Rank) ReduceScatter(buf []float32) []float32 {
	return r.reduceScatter(buf, OpReduceScatter, true)
}

func (r *Rank) reduceScatter(buf []float32, op Op, account bool) []float32 {
	r.checkDivisible(buf, op)
	n := r.w.n
	if n == 1 {
		if account {
			t0 := r.begin()
			r.end(op, comm.ReduceScatter(float64(len(buf)*4), 1, r.w.link), t0)
		}
		return buf
	}
	var t0 time.Time
	if account {
		t0 = r.begin()
	}
	// Ring reduce-scatter: at step s rank i sends chunk (i−1−s) mod n —
	// the chunk it finished accumulating in the previous step — and
	// accumulates the received chunk (i−2−s) mod n into its buffer.
	// After n−1 steps chunk i on rank i carries every rank's
	// contribution.
	for s := 0; s < n-1; s++ {
		send := chunkOf(buf, mod(r.id-1-s, n), n)
		r.exchange(op, send, func(recv []float32) {
			acc := chunkOf(buf, mod(r.id-2-s, n), n)
			for j := range acc {
				acc[j] += recv[j]
			}
		})
	}
	if account {
		r.end(op, comm.ReduceScatter(float64(len(buf)*4), n, r.w.link), t0)
	}
	return chunkOf(buf, r.id, n)
}

// AllGather fills buf with every rank's shard: rank i contributes chunk
// i. If shard is non-nil it is copied into this rank's chunk first
// (shard may alias that chunk); if nil the chunk is assumed to already
// hold this rank's contribution. len(buf) must be a multiple of the
// world size and len(shard), when non-nil, must equal len(buf)/Size.
func (r *Rank) AllGather(buf []float32, shard []float32) {
	r.allGather(buf, shard, OpAllGather, true)
}

func (r *Rank) allGather(buf []float32, shard []float32, op Op, account bool) {
	r.checkDivisible(buf, op)
	n := r.w.n
	own := chunkOf(buf, r.id, n)
	if shard != nil {
		if len(shard) != len(own) {
			panic(fmt.Sprintf("dist: all-gather shard length %d, want %d", len(shard), len(own)))
		}
		copy(own, shard)
	}
	if n == 1 {
		if account {
			t0 := r.begin()
			r.end(op, comm.AllGather(float64(len(buf)*4), 1, r.w.link), t0)
		}
		return
	}
	var t0 time.Time
	if account {
		t0 = r.begin()
	}
	// Ring all-gather: at step s rank i forwards chunk (i−s) mod n
	// (its own chunk first, then whatever it received last step) and
	// copies the received chunk (i−1−s) mod n into place.
	for s := 0; s < n-1; s++ {
		send := chunkOf(buf, mod(r.id-s, n), n)
		r.exchange(op, send, func(recv []float32) {
			copy(chunkOf(buf, mod(r.id-1-s, n), n), recv)
		})
	}
	if account {
		r.end(op, comm.AllGather(float64(len(buf)*4), n, r.w.link), t0)
	}
}

// AllReduce sums buf element-wise across all ranks, leaving every rank
// with the identical full result (ring reduce-scatter followed by ring
// all-gather, the same algorithm RCCL runs). len(buf) must be a
// multiple of the world size.
func (r *Rank) AllReduce(buf []float32) {
	t0 := r.begin()
	r.reduceScatter(buf, OpAllReduce, false)
	r.allGather(buf, nil, OpAllReduce, false)
	r.end(OpAllReduce, comm.AllReduce(float64(len(buf)*4), r.w.n, r.w.link), t0)
}

// Broadcast copies root's buf to every rank's buf via a pipelined ring:
// each rank forwards the payload to its successor, so ranks 0..n−2 each
// put the full buffer on the wire once. Any length is allowed.
func (r *Rank) Broadcast(buf []float32, root int) {
	n := r.w.n
	if root < 0 || root >= n {
		panic(fmt.Sprintf("dist: broadcast root %d outside world %d", root, n))
	}
	t0 := r.begin()
	if n > 1 {
		pos := mod(r.id-root, n) // distance from root along the ring
		if pos == 0 {
			r.sentBytes[OpBroadcast] += int64(len(buf)) * 4
			r.sendView(r.sendCh(), buf)
			r.recvSig(r.ackRecv())
		} else {
			recv := r.recvView(r.recvCh())
			copy(buf, recv)
			r.sendSig(r.ackSend())
			if pos < n-1 {
				r.sentBytes[OpBroadcast] += int64(len(buf)) * 4
				r.sendView(r.sendCh(), buf)
				r.recvSig(r.ackRecv())
			}
		}
	}
	r.end(OpBroadcast, comm.Broadcast(float64(len(buf)*4), n, r.w.link), t0)
}

// AllReduceScalar sums a float64 control value across ranks (loss
// averaging, global gradient norms) and returns the identical total on
// every rank. The sum is accumulated in rank order, so the result is
// deterministic and bit-identical across ranks. Counted under OpScalar
// in Stats; scalar control traffic is excluded from the wire-byte
// comparisons against the fsdp simulator, which does not model it.
func (r *Rank) AllReduceScalar(v float64) float64 {
	w := r.w
	if w.n == 1 {
		if r.id == 0 {
			w.record(OpScalar, comm.Cost{}, 0)
		}
		return v
	}
	t0 := r.begin()
	w.scalars[r.id] = v
	r.Barrier()
	var total float64
	for _, x := range w.scalars {
		total += x
	}
	r.Barrier() // the slot table may be reused after every rank has read it
	r.sentBytes[OpScalar] += 8
	r.end(OpScalar, comm.AllReduce(8, w.n, w.link), t0)
	return total
}

func mod(a, n int) int { return ((a % n) + n) % n }
