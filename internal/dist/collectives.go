package dist

import (
	"fmt"
	"time"

	"repro/internal/comm"
)

// Rank is one participant's handle into the World. A Rank must only be
// used from the goroutine World.Run assigned it to. Its collective
// methods run on the world group (all ranks); Group methods run the
// same algorithms scoped to a subgroup.
type Rank struct {
	w  *World
	id int

	// sentBytes counts what this rank physically sent to a ring
	// successor — in the world ring or any subgroup ring — per
	// collective kind: the measured side of Stats. Written either by
	// the rank's own goroutine (synchronous collectives) or by its
	// async queue workers; Handle.Wait orders the two, so the counters
	// are race-free under the async protocol's ownership rules.
	sentBytes [numOps]int64

	// queues are the rank's per-group async issue queues (lazily
	// started worker goroutines; see async.go). Touched only from the
	// rank's own goroutine.
	queues map[*Group]*asyncQueue

	// collectives counts collective entries (sync calls + async
	// issues) on this rank — the deterministic sequence a FaultPlan
	// indexes; see fault.go. Touched only from the rank's goroutine.
	collectives int64
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.w.root.bar.wait() }

// ReduceScatter sums buf element-wise across all ranks and leaves this
// rank with its fully reduced shard: chunk r.ID() of the n uniform
// chunks of buf, returned as a view into buf. After the call the other
// chunks of buf hold partial sums and must be treated as garbage.
// len(buf) must be a multiple of the world size.
func (r *Rank) ReduceScatter(buf []float32) []float32 {
	return r.w.root.ReduceScatter(r, buf)
}

// AllGather fills buf with every rank's shard: rank i contributes chunk
// i. If shard is non-nil it is copied into this rank's chunk first
// (shard may alias that chunk); if nil the chunk is assumed to already
// hold this rank's contribution. len(buf) must be a multiple of the
// world size and len(shard), when non-nil, must equal len(buf)/Size.
func (r *Rank) AllGather(buf []float32, shard []float32) {
	r.w.root.AllGather(r, buf, shard)
}

// AllReduce sums buf element-wise across all ranks, leaving every rank
// with the identical full result (ring reduce-scatter followed by ring
// all-gather, the same algorithm RCCL runs). len(buf) must be a
// multiple of the world size.
func (r *Rank) AllReduce(buf []float32) { r.w.root.AllReduce(r, buf) }

// Broadcast copies root's buf to every rank's buf via a pipelined ring:
// each rank forwards the payload to its successor, so ranks 0..n−2 each
// put the full buffer on the wire once. Any length is allowed.
func (r *Rank) Broadcast(buf []float32, root int) { r.w.root.Broadcast(r, buf, root) }

// AllReduceScalar sums a float64 control value across ranks (loss
// averaging, global gradient norms) and returns the identical total on
// every rank. The sum is accumulated in rank order, so the result is
// deterministic and bit-identical across ranks. Counted under OpScalar
// in Stats; scalar control traffic is excluded from the wire-byte
// comparisons against the fsdp simulator, which does not model it.
func (r *Rank) AllReduceScalar(v float64) float64 {
	return r.w.root.AllReduceScalar(r, v)
}

// abortable channel operations: every blocking ring edge also watches
// the world's abort channel, so a peer's death surfaces as an
// ErrAborted panic (recovered by World.Run) instead of a deadlock.
func (r *Rank) sendView(ch chan []float32, v []float32) {
	select {
	case ch <- v:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) recvView(ch chan []float32) []float32 {
	select {
	case v := <-ch:
		return v
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) sendSig(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) recvSig(ch chan struct{}) {
	select {
	case <-ch:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

// member is a rank's position inside one communicator's ring: the ring
// algorithms below are written against it, so the world group and every
// subgroup execute identical code over their own per-edge channels.
type member struct {
	g  *Group
	r  *Rank
	id int // group-local ring position
}

// ring-edge channels for this member.
func (m member) sendCh() chan []float32 { return m.g.data[m.id] }
func (m member) recvCh() chan []float32 { return m.g.data[(m.id-1+m.g.n)%m.g.n] }
func (m member) ackSend() chan struct{} { return m.g.ack[(m.id-1+m.g.n)%m.g.n] }
func (m member) ackRecv() chan struct{} { return m.g.ack[m.id] }

// exchange performs one synchronized ring step: publish a read-only
// view to the successor, receive the predecessor's view, let process
// consume it, acknowledge, and wait for the successor's acknowledgement
// so the published view may be rewritten afterwards. The send channels
// have capacity 1 and the acknowledgement gates the next step, so no
// edge ever holds more than one in-flight view and a view is never read
// after its step completes.
func (m member) exchange(op Op, view []float32, process func(recv []float32)) {
	m.r.sentBytes[op] += int64(len(view)) * 4
	m.r.sendView(m.sendCh(), view)
	recv := m.r.recvView(m.recvCh())
	process(recv)
	m.r.sendSig(m.ackSend())
	m.r.recvSig(m.ackRecv())
}

// chunkOf returns the c-th of n uniform chunks of buf.
func chunkOf(buf []float32, c, n int) []float32 {
	cs := len(buf) / n
	return buf[c*cs : (c+1)*cs]
}

func (m member) checkDivisible(buf []float32, op Op) {
	if len(buf)%m.g.n != 0 {
		panic(fmt.Sprintf("dist: %v buffer length %d not divisible by group size %d (pad the buffer)",
			op, len(buf), m.g.n))
	}
}

// begin starts model/wall accounting for one call. Stats keeps world
// rank 0's view of the SPMD schedule, so only calls entered by world
// rank 0 are recorded (see Stats).
func (m member) begin() time.Time {
	if m.r.id == 0 {
		return time.Now()
	}
	return time.Time{}
}

func (m member) end(op Op, c comm.Cost, t0 time.Time) {
	if m.r.id == 0 {
		m.g.w.record(op, c, time.Since(t0))
	}
	// Congested-link mode: realize the modeled cost as wall time on
	// every rank, so executed step times carry the α–β collective cost
	// the simulator prices (Options.Throttle). A rank with a throttle
	// skew sleeps proportionally longer — the straggler whose delay the
	// lockstep collectives impose on every peer.
	if th := m.g.w.throttle; th > 0 && c.Time > 0 {
		if s, ok := m.g.w.skew[m.r.id]; ok && s > 0 {
			th *= s
		}
		time.Sleep(time.Duration(c.Time * th * float64(time.Second)))
	}
}

func (m member) reduceScatter(buf []float32, op Op, account bool) []float32 {
	m.checkDivisible(buf, op)
	n := m.g.n
	if n == 1 {
		if account {
			t0 := m.begin()
			m.end(op, comm.ReduceScatter(float64(len(buf)*4), 1, m.g.link), t0)
		}
		return buf
	}
	var t0 time.Time
	if account {
		t0 = m.begin()
	}
	// Ring reduce-scatter: at step s member i sends chunk (i−1−s) mod n —
	// the chunk it finished accumulating in the previous step — and
	// accumulates the received chunk (i−2−s) mod n into its buffer.
	// After n−1 steps chunk i on member i carries every member's
	// contribution.
	for s := 0; s < n-1; s++ {
		send := chunkOf(buf, mod(m.id-1-s, n), n)
		m.exchange(op, send, func(recv []float32) {
			acc := chunkOf(buf, mod(m.id-2-s, n), n)
			for j := range acc {
				acc[j] += recv[j]
			}
		})
	}
	if account {
		m.end(op, comm.ReduceScatter(float64(len(buf)*4), n, m.g.link), t0)
	}
	return chunkOf(buf, m.id, n)
}

func (m member) allGatherOp(buf []float32, shard []float32, op Op, account bool) {
	m.checkDivisible(buf, op)
	n := m.g.n
	own := chunkOf(buf, m.id, n)
	if shard != nil {
		if len(shard) != len(own) {
			panic(fmt.Sprintf("dist: all-gather shard length %d, want %d", len(shard), len(own)))
		}
		copy(own, shard)
	}
	if n == 1 {
		if account {
			t0 := m.begin()
			m.end(op, comm.AllGather(float64(len(buf)*4), 1, m.g.link), t0)
		}
		return
	}
	var t0 time.Time
	if account {
		t0 = m.begin()
	}
	// Ring all-gather: at step s member i forwards chunk (i−s) mod n
	// (its own chunk first, then whatever it received last step) and
	// copies the received chunk (i−1−s) mod n into place.
	for s := 0; s < n-1; s++ {
		send := chunkOf(buf, mod(m.id-s, n), n)
		m.exchange(op, send, func(recv []float32) {
			copy(chunkOf(buf, mod(m.id-1-s, n), n), recv)
		})
	}
	if account {
		m.end(op, comm.AllGather(float64(len(buf)*4), n, m.g.link), t0)
	}
}

func (m member) allReduce(buf []float32) {
	t0 := m.begin()
	m.reduceScatter(buf, OpAllReduce, false)
	m.allGatherOp(buf, nil, OpAllReduce, false)
	m.end(OpAllReduce, comm.AllReduce(float64(len(buf)*4), m.g.n, m.g.link), t0)
}

func (m member) broadcast(buf []float32, root int) {
	n := m.g.n
	if root < 0 || root >= n {
		panic(fmt.Sprintf("dist: broadcast root %d outside group of %d", root, n))
	}
	t0 := m.begin()
	if n > 1 {
		pos := mod(m.id-root, n) // distance from root along the ring
		if pos == 0 {
			m.r.sentBytes[OpBroadcast] += int64(len(buf)) * 4
			m.r.sendView(m.sendCh(), buf)
			m.r.recvSig(m.ackRecv())
		} else {
			recv := m.r.recvView(m.recvCh())
			copy(buf, recv)
			m.r.sendSig(m.ackSend())
			if pos < n-1 {
				m.r.sentBytes[OpBroadcast] += int64(len(buf)) * 4
				m.r.sendView(m.sendCh(), buf)
				m.r.recvSig(m.ackRecv())
			}
		}
	}
	m.end(OpBroadcast, comm.Broadcast(float64(len(buf)*4), n, m.g.link), t0)
}

func (m member) allReduceScalar(v float64) float64 {
	g := m.g
	if g.n == 1 {
		if m.r.id == 0 {
			g.w.record(OpScalar, comm.Cost{}, 0)
		}
		return v
	}
	t0 := m.begin()
	g.scalars[m.id] = v
	g.bar.wait()
	var total float64
	for _, x := range g.scalars {
		total += x
	}
	g.bar.wait() // the slot table may be reused after every member has read it
	m.r.sentBytes[OpScalar] += 8
	m.end(OpScalar, comm.AllReduce(8, g.n, g.link), t0)
	return total
}

func mod(a, n int) int { return ((a % n) + n) % n }
