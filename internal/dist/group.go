package dist

import (
	"fmt"

	"repro/internal/comm"
)

// Group is a communicator scoped to a subset of a World's ranks: the
// same ring collectives as the World, running over the group's own
// per-edge channels, so collectives on disjoint groups proceed
// concurrently without interfering (the communicator structure behind
// HYBRID_SHARD's two-level scheme: FULL_SHARD collectives inside each
// shard group, gradient all-reduce across each replica group).
//
// A Group's accounting composes with the parent World's Stats: every
// byte a member puts on a group ring edge is counted against that
// member's world rank, and calls are priced by the same α–β model,
// recorded from world rank 0's perspective (see Stats).
//
// The World itself is the degenerate Group over all ranks — Rank's
// collective methods delegate to it.
type Group struct {
	w    *World
	n    int
	link comm.Params

	members []int       // world rank ids in ring order
	index   map[int]int // world rank id → group-local rank

	// data[i] carries views from member i to member (i+1)%n; ack[i]
	// carries the matching consumption acknowledgements back. dataU16
	// is the same edge in the bf16 wire mode (uint16 payloads); the ack
	// channels are shared because a group runs one collective at a time.
	data    []chan []float32
	dataU16 []chan []uint16
	ack     []chan struct{}

	bar     barrier
	scalars []float64
}

func newGroup(w *World, members []int, link comm.Params) *Group {
	g := &Group{
		w:       w,
		n:       len(members),
		link:    link,
		members: append([]int(nil), members...),
		index:   make(map[int]int, len(members)),
		data:    make([]chan []float32, len(members)),
		dataU16: make([]chan []uint16, len(members)),
		ack:     make([]chan struct{}, len(members)),
		scalars: make([]float64, len(members)),
	}
	for i, id := range g.members {
		g.index[id] = i
	}
	g.bar.init(g.n)
	for i := range g.data {
		g.data[i] = make(chan []float32, 1)
		g.dataU16[i] = make(chan []uint16, 1)
		g.ack[i] = make(chan struct{}, 1)
	}
	return g
}

// Subgroup returns the communicator over the given world ranks, in ring
// order. The slice must be non-empty, without duplicates, and every
// entry must be a valid world rank. Groups are memoized by their exact
// rank sequence — every member calling Subgroup with the same slice
// (the SPMD convention, like MPI_Comm_split) observes the same Group —
// so Subgroup is safe to call before Run or concurrently from inside
// it, and a group survives across steps and Runs.
func (w *World) Subgroup(ranks []int) *Group {
	if len(ranks) == 0 {
		panic("dist: empty subgroup")
	}
	seen := make(map[int]bool, len(ranks))
	for _, id := range ranks {
		if id < 0 || id >= w.n {
			panic(fmt.Sprintf("dist: subgroup rank %d outside world %d", id, w.n))
		}
		if seen[id] {
			panic(fmt.Sprintf("dist: duplicate rank %d in subgroup", id))
		}
		seen[id] = true
	}
	// The whole world in ring order IS the root group: reuse it rather
	// than allocating a second full-world communicator (ZeRO-1 and
	// FULL_SHARD request exactly this shape).
	if len(ranks) == w.n {
		identity := true
		for i, id := range ranks {
			if id != i {
				identity = false
				break
			}
		}
		if identity {
			return w.root
		}
	}
	key := fmt.Sprint(ranks)
	w.subMu.Lock()
	defer w.subMu.Unlock()
	if g, ok := w.subs[key]; ok {
		return g
	}
	g := newGroup(w, ranks, w.link)
	w.subs[key] = g
	w.groups = append(w.groups, g)
	// A world that already aborted poisons new groups immediately so a
	// straggler rank cannot park in a dead group's barrier.
	select {
	case <-w.abort:
		g.bar.doAbort()
	default:
	}
	return g
}

// Size returns the number of member ranks.
func (g *Group) Size() int { return g.n }

// Ranks returns the member world ranks in ring order.
func (g *Group) Ranks() []int { return append([]int(nil), g.members...) }

// RankOf returns r's group-local rank, or -1 if r is not a member.
func (g *Group) RankOf(r *Rank) int {
	if id, ok := g.index[r.ID()]; ok {
		return id
	}
	return -1
}

// on resolves the calling rank's member handle, panicking for
// non-members (a collective entered by a rank outside the group can
// only deadlock).
func (g *Group) on(r *Rank) member {
	id, ok := g.index[r.id]
	if !ok {
		panic(fmt.Sprintf("dist: rank %d is not a member of subgroup %v", r.id, g.members))
	}
	return member{g: g, r: r, id: id}
}

// AllReduce sums buf element-wise across the group's members, leaving
// every member with the identical full result. len(buf) must be a
// multiple of the group size.
func (g *Group) AllReduce(r *Rank, buf []float32) { g.on(r).enter(OpAllReduce).allReduce(buf) }

// ReduceScatter sums buf element-wise across the group and leaves the
// calling member with its fully reduced shard: chunk RankOf(r) of the
// Size() uniform chunks of buf, returned as a view into buf. The other
// chunks hold partial sums afterwards and must be treated as garbage.
// len(buf) must be a multiple of the group size.
func (g *Group) ReduceScatter(r *Rank, buf []float32) []float32 {
	return g.on(r).enter(OpReduceScatter).reduceScatter(buf, OpReduceScatter, true)
}

// AllGather fills buf with every member's shard: member i contributes
// chunk i. If shard is non-nil it is copied into the caller's chunk
// first; if nil the chunk is assumed to already hold the contribution.
// len(buf) must be a multiple of the group size.
func (g *Group) AllGather(r *Rank, buf, shard []float32) {
	g.on(r).enter(OpAllGather).allGatherOp(buf, shard, OpAllGather, true)
}

// Broadcast copies the group-local root member's buf to every member
// via a pipelined ring. Any length is allowed.
func (g *Group) Broadcast(r *Rank, buf []float32, root int) {
	g.on(r).enter(OpBroadcast).broadcast(buf, root)
}

// Barrier blocks until every member has entered it.
func (g *Group) Barrier(r *Rank) { g.on(r); g.bar.wait() }

// AllReduceScalar sums a float64 control value across the group's
// members in group-rank order (deterministic, bit-identical result on
// every member).
func (g *Group) AllReduceScalar(r *Rank, v float64) float64 {
	return g.on(r).enter(OpScalar).allReduceScalar(v)
}
