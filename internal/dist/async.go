package dist

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Asynchronous collective handles: the executed analog of launching a
// collective on a side communication stream and synchronizing on its
// completion event later. A rank issues a collective and keeps
// computing; the ring machinery runs on a per-(rank, group) worker
// goroutine fed by an issue queue, and Wait blocks until the operation
// — and every operation issued before it on the same group — has
// completed. This is the mechanism the overlapped training path
// (train.PretrainDistributed with Overlap) uses to hide gradient
// reductions behind the remaining backward compute, exactly as FSDP
// overlaps per-unit reduce-scatters on Frontier.
//
// # Protocol
//
//	h := grp.ReduceScatterAsync(rank, bucket)
//	... keep computing on other buffers ...
//	shard := h.Wait()
//
// Rules, mirroring a CUDA/RCCL side stream:
//
//   - Issue order is execution order. Operations issued by one rank on
//     one group run strictly FIFO; every member of the group must issue
//     the same operations in the same order (the usual SPMD collective
//     contract, now per queue).
//   - The buffers handed to an async call (buf, shard, wire) are owned
//     by the collective until Wait returns. Reading or writing them
//     earlier is a data race.
//   - Synchronous collectives on the same group must not run while an
//     async operation on it is still in flight — Wait everything first.
//     Collectives on *other* groups (and scalar/barrier traffic, which
//     uses a separate slot table) are unaffected.
//   - The ...After variants order an operation behind a handle from a
//     *different* group's queue — how HYBRID_SHARD chains each
//     gradient bucket's replica-group all-reduce behind its
//     shard-group reduce-scatter without serializing the two queues.
//
// Determinism: the worker executes the identical ring algorithms as
// the synchronous calls, in the identical order, so an overlapped
// schedule produces bit-for-bit the same buffers and the same
// measured/modeled byte accounting as its synchronous twin.
//
// A rank that returns from World.Run with operations still queued —
// a protocol violation, since Wait-ing every handle implies an empty
// queue — abandons them: the worker fails their handles with
// ErrAborted instead of executing a collective on behalf of an exited
// rank (an operation already mid-ring cannot be stopped). A peer
// rank failing while an operation is parked in the ring unblocks it
// with ErrAborted, re-raised by Wait.

// Handle is one in-flight asynchronous collective.
type Handle struct {
	done  chan struct{}
	shard []float32 // result view (reduce-scatter), nil otherwise
	err   error
}

// Wait blocks until the collective completes and returns its result
// view: the caller's fully reduced shard for reduce-scatter variants,
// nil for all-reduce/all-gather. If the world aborted (a peer rank
// died) Wait re-raises ErrAborted, which World.Run recovers like any
// collective abort.
func (h *Handle) Wait() []float32 {
	<-h.done
	if h.err != nil {
		panic(h.err)
	}
	return h.shard
}

// asyncOp is one queued collective: run executes the ring machinery on
// the worker goroutine once dep (if any) has completed.
type asyncOp struct {
	h   *Handle
	dep *Handle
	run func() []float32
}

// asyncQueue is the issue queue of one (rank, group) pair plus its
// worker goroutine — the rank's private lane into the group's comm
// "stream".
type asyncQueue struct {
	ops chan asyncOp
	// closing is set before the queue closes so the worker abandons
	// still-queued operations (failing their handles with ErrAborted)
	// instead of executing them against a rank that already exited.
	closing atomic.Bool
}

// asyncQueueDepth bounds how many collectives a rank can have issued
// but not yet executed; beyond it the issuing rank blocks (backpressure
// like a full hardware launch queue).
const asyncQueueDepth = 64

// queue resolves (and lazily starts) the rank's worker for g. Called
// from the rank's own goroutine only.
func (r *Rank) queue(g *Group) *asyncQueue {
	if r.queues == nil {
		r.queues = make(map[*Group]*asyncQueue)
	}
	q, ok := r.queues[g]
	if !ok {
		q = &asyncQueue{ops: make(chan asyncOp, asyncQueueDepth)}
		r.queues[g] = q
		go q.loop(r.w)
	}
	return q
}

// closeAsync shuts down the rank's workers when its Run function
// returns; a fresh Run lazily restarts them. In a correct program the
// queues are empty here — every issued operation was Waited, so it
// completed before the rank returned; anything still queued is a
// protocol violation and is abandoned rather than executed.
func (r *Rank) closeAsync() {
	for _, q := range r.queues {
		q.closing.Store(true)
		close(q.ops)
	}
	r.queues = nil
}

func (q *asyncQueue) loop(w *World) {
	for op := range q.ops {
		q.exec(w, op)
	}
}

// abandoned reports whether the op must not run: the world died, or
// the issuing rank exited with the op still queued.
func (q *asyncQueue) abandoned(w *World) bool {
	if q.closing.Load() {
		return true
	}
	select {
	case <-w.abort:
		return true
	default:
		return false
	}
}

// exec runs one queued collective, converting panics (ErrAborted from
// a dying peer, or a genuine bug) into the handle's error so Wait can
// re-raise them on the issuing rank's goroutine.
func (q *asyncQueue) exec(w *World, op asyncOp) {
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && errors.Is(err, ErrAborted) {
				op.h.err = ErrAborted
			} else if err, ok := p.(error); ok {
				// %w keeps the chain intact so Wait re-raises an error
				// callers can still match sentinels against.
				op.h.err = fmt.Errorf("dist: async collective panicked: %w", err)
				w.doAbort()
			} else {
				op.h.err = fmt.Errorf("dist: async collective panicked: %v", p)
				w.doAbort()
			}
		}
		close(op.h.done)
	}()
	if op.dep != nil {
		select {
		case <-op.dep.done:
			if op.dep.err != nil {
				panic(ErrAborted)
			}
		case <-w.abort:
			panic(ErrAborted)
		}
	}
	if q.abandoned(w) {
		panic(ErrAborted)
	}
	op.h.shard = op.run()
}

// issue validates membership eagerly (on the issuing goroutine, so a
// non-member fails fast), counts the collective entry against the
// issuing rank's fault sequence, and enqueues the operation.
func (g *Group) issue(r *Rank, dep *Handle, op Op, run func(m member) []float32) *Handle {
	m := g.on(r).enter(op)
	h := &Handle{done: make(chan struct{})}
	r.queue(g).ops <- asyncOp{h: h, dep: dep, run: func() []float32 { return run(m) }}
	return h
}

// AllReduceAsync launches the group all-reduce of buf asynchronously;
// Wait returns nil and buf holds the identical full result on every
// member. len(buf) must be a multiple of the group size.
func (g *Group) AllReduceAsync(r *Rank, buf []float32) *Handle {
	return g.issue(r, nil, OpAllReduce, func(m member) []float32 { m.allReduce(buf); return nil })
}

// AllReduceAsyncAfter is AllReduceAsync ordered behind after (a handle
// from another group's queue): the operation executes only once after
// completes. Used by HYBRID_SHARD to chain a bucket's replica-group
// all-reduce behind its shard-group reduce-scatter.
func (g *Group) AllReduceAsyncAfter(r *Rank, buf []float32, after *Handle) *Handle {
	return g.issue(r, after, OpAllReduce, func(m member) []float32 { m.allReduce(buf); return nil })
}

// ReduceScatterAsync launches the group reduce-scatter of buf
// asynchronously; Wait returns the caller's fully reduced shard (chunk
// RankOf(r) of buf). The other chunks are garbage after completion.
func (g *Group) ReduceScatterAsync(r *Rank, buf []float32) *Handle {
	return g.issue(r, nil, OpReduceScatter, func(m member) []float32 {
		return m.reduceScatter(buf, OpReduceScatter, true)
	})
}

// AllGatherAsync launches the group all-gather of buf asynchronously
// (shard semantics as AllGather); Wait returns nil.
func (g *Group) AllGatherAsync(r *Rank, buf, shard []float32) *Handle {
	return g.issue(r, nil, OpAllGather, func(m member) []float32 {
		m.allGatherOp(buf, shard, OpAllGather, true)
		return nil
	})
}

// AllReduceBF16Async is AllReduceAsync over the bf16 wire (payloads at
// 2 bytes per element, fp32 ring accumulation; see AllReduceBF16).
// wire is uint16 scratch with len(wire) == len(buf), owned by the
// collective until Wait.
func (g *Group) AllReduceBF16Async(r *Rank, buf []float32, wire []uint16) *Handle {
	return g.issue(r, nil, OpAllReduce, func(m member) []float32 { m.allReduceBF16(buf, wire); return nil })
}

// AllReduceBF16AsyncAfter is AllReduceBF16Async ordered behind a
// handle from another group's queue.
func (g *Group) AllReduceBF16AsyncAfter(r *Rank, buf []float32, wire []uint16, after *Handle) *Handle {
	return g.issue(r, after, OpAllReduce, func(m member) []float32 { m.allReduceBF16(buf, wire); return nil })
}

// ReduceScatterBF16Async is ReduceScatterAsync over the bf16 wire;
// Wait returns the caller's fp32-accumulated shard.
func (g *Group) ReduceScatterBF16Async(r *Rank, buf []float32, wire []uint16) *Handle {
	return g.issue(r, nil, OpReduceScatter, func(m member) []float32 {
		return m.reduceScatterBF16(buf, wire, OpReduceScatter, true)
	})
}

// AllGatherBF16Async is AllGatherAsync over the bf16 wire (every
// contribution rounded to bf16 before travelling; see AllGatherBF16).
func (g *Group) AllGatherBF16Async(r *Rank, buf, shard []float32, wire []uint16) *Handle {
	return g.issue(r, nil, OpAllGather, func(m member) []float32 {
		m.allGatherBF16(buf, shard, wire, OpAllGather, true)
		return nil
	})
}

// AllReduceAsync launches the world-group all-reduce asynchronously.
func (r *Rank) AllReduceAsync(buf []float32) *Handle { return r.w.root.AllReduceAsync(r, buf) }

// ReduceScatterAsync launches the world-group reduce-scatter
// asynchronously.
func (r *Rank) ReduceScatterAsync(buf []float32) *Handle {
	return r.w.root.ReduceScatterAsync(r, buf)
}

// AllGatherAsync launches the world-group all-gather asynchronously.
func (r *Rank) AllGatherAsync(buf, shard []float32) *Handle {
	return r.w.root.AllGatherAsync(r, buf, shard)
}

// AllReduceBF16Async launches the world-group bf16 all-reduce
// asynchronously.
func (r *Rank) AllReduceBF16Async(buf []float32, wire []uint16) *Handle {
	return r.w.root.AllReduceBF16Async(r, buf, wire)
}
