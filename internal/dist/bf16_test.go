package dist

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// bf16AllReduceRef computes what the bf16 ring all-reduce must produce
// for a given element: the ring reduce-scatter widens each incoming
// bf16 partial and accumulates in fp32 along a fixed order, then the
// all-gather rounds the final sum once. For inputs that are already
// bf16-valued the partials stay exactly representable, so the reference
// is simply round(Σ) when every partial fits — the tests below feed
// bf16-valued inputs to keep the oracle exact.
func bf16Round(x float32) float32 { return tensor.F32FromBF16(tensor.BF16FromF32(x)) }

// scalePow2 varies magnitudes across a buffer without sacrificing bf16
// exactness: powers of two only shift the exponent.
func scalePow2(i int) float32 { return float32(math.Ldexp(1, i%3-1)) }

// TestAllReduceBF16SumAndHalfBytes: the bf16 all-reduce over bf16-valued
// contributions produces the exact rounded sum on every rank, while the
// measured wire bytes are exactly half of what the fp32 all-reduce
// moves for the same buffer.
func TestAllReduceBF16SumAndHalfBytes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		const elems = 64 * 3 * 5 // divisible by every n above
		// fp32 baseline for the byte comparison.
		wFP := New(n, Options{})
		if err := wFP.Run(func(r *Rank) error {
			buf := make([]float32, elems)
			for i := range buf {
				buf[i] = float32(r.ID() + 1)
			}
			r.AllReduce(buf)
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		w := New(n, Options{})
		results := make([][]float32, n)
		err := w.Run(func(r *Rank) error {
			buf := make([]float32, elems)
			for i := range buf {
				// Small integers scaled by powers of two: every partial
				// sum the ring forms (≤ 36·2) fits bf16's 8-bit
				// significand exactly, so the oracle below is exact.
				buf[i] = float32(r.ID()+1) * scalePow2(i)
			}
			wire := make([]uint16, elems)
			r.AllReduceBF16(buf, wire)
			results[r.ID()] = buf
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Expected: Σ ranks elementwise, exact at every intermediate.
		sum := n * (n + 1) / 2
		for i, v := range results[0] {
			want := float32(sum) * scalePow2(i)
			if v != want {
				t.Fatalf("n=%d: all-reduce[%d] = %v, want %v", n, i, v, want)
			}
		}
		for rank := 1; rank < n; rank++ {
			for i := range results[rank] {
				if math.Float32bits(results[rank][i]) != math.Float32bits(results[0][i]) {
					t.Fatalf("n=%d: rank %d differs from rank 0 at %d", n, rank, i)
				}
			}
		}
		got := w.Stats().AllReduce
		want := wFP.Stats().AllReduce
		if got.MeasuredWireBytes*2 != want.MeasuredWireBytes {
			t.Fatalf("n=%d: bf16 AR moved %v bytes, fp32 moved %v (want exactly half)",
				n, got.MeasuredWireBytes, want.MeasuredWireBytes)
		}
		if got.ModelWireBytes != got.MeasuredWireBytes {
			t.Fatalf("n=%d: modeled %v != measured %v", n, got.ModelWireBytes, got.MeasuredWireBytes)
		}
	}
}

// TestReduceScatterBF16FP32Accumulation: the reduction accumulates in
// fp32 — contributions that would each round to zero relative to a
// large partner in bf16-sized steps still add up exactly when they are
// bf16-representable, and the owner's shard is returned as a view.
func TestReduceScatterBF16FP32Accumulation(t *testing.T) {
	const n = 4
	const elems = 8 * n
	w := New(n, Options{})
	shards := make([][]float32, n)
	err := w.Run(func(r *Rank) error {
		buf := make([]float32, elems)
		for i := range buf {
			buf[i] = bf16Round(0.25 * float32(r.ID()+1))
		}
		wire := make([]uint16, elems)
		shard := r.ReduceScatterBF16(buf, wire)
		if len(shard) != elems/n {
			t.Errorf("shard length %d", len(shard))
		}
		out := make([]float32, len(shard))
		copy(out, shard)
		shards[r.ID()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, s := range shards {
		for i, v := range s {
			if v != 2.5 { // 0.25·(1+2+3+4)
				t.Fatalf("rank %d shard[%d] = %v, want 2.5", rank, i, v)
			}
		}
	}
}

// TestAllGatherBF16RoundsOwnChunk: after the bf16 all-gather every rank
// holds the identical bf16-valued buffer — including the contributing
// rank's own chunk, which must be rewritten with its rounded image.
func TestAllGatherBF16RoundsOwnChunk(t *testing.T) {
	const n = 4
	const elems = 4 * n
	w := New(n, Options{})
	results := make([][]float32, n)
	err := w.Run(func(r *Rank) error {
		buf := make([]float32, elems)
		shard := make([]float32, elems/n)
		for i := range shard {
			// Not bf16-representable: forces a visible rounding step.
			shard[i] = 1 + float32(r.ID()+1)*1e-3
		}
		wire := make([]uint16, elems)
		r.AllGatherBF16(buf, shard, wire)
		results[r.ID()] = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		for c := 0; c < n; c++ {
			want := bf16Round(1 + float32(c+1)*1e-3)
			for i := 0; i < elems/n; i++ {
				got := results[rank][c*elems/n+i]
				if got != want {
					t.Fatalf("rank %d chunk %d[%d] = %v, want rounded %v", rank, c, i, got, want)
				}
			}
		}
	}
}

// TestBF16SubgroupCollectives: the bf16 wire mode runs on subgroup
// communicators too, concurrently across disjoint groups, with bytes
// accounted to the sending world rank.
func TestBF16SubgroupCollectives(t *testing.T) {
	const n = 4
	w := New(n, Options{})
	results := make([]float32, n)
	err := w.Run(func(r *Rank) error {
		half := []int{0, 1}
		if r.ID() >= 2 {
			half = []int{2, 3}
		}
		g := w.Subgroup(half)
		buf := make([]float32, 8)
		for i := range buf {
			buf[i] = float32(r.ID() + 1)
		}
		wire := make([]uint16, 8)
		g.AllReduceBF16(r, buf, wire)
		results[r.ID()] = buf[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, got := range results {
		want := float32(3) // 1+2
		if rank >= 2 {
			want = 7 // 3+4
		}
		if got != want {
			t.Fatalf("rank %d got %v, want %v", rank, got, want)
		}
	}
}

// TestBF16WireValidation: a wire scratch of the wrong length is a
// programming error and must fail fast, not silently corrupt chunks.
func TestBF16WireValidation(t *testing.T) {
	w := New(2, Options{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("short wire scratch accepted")
			}
			// Poison the world so the peer unblocks rather than waiting
			// on a collective that will never happen.
			w.doAbort()
		}()
		r.AllReduceBF16(make([]float32, 8), make([]uint16, 4))
		return nil
	})
	if err != nil && err != ErrAborted {
		t.Fatal(err)
	}
}

// TestBF16Deterministic: two identical runs produce bit-identical
// results — the rounding points are fixed by the ring schedule.
func TestBF16Deterministic(t *testing.T) {
	run := func() []float32 {
		w := New(4, Options{})
		var out []float32
		err := w.Run(func(r *Rank) error {
			buf := make([]float32, 32)
			for i := range buf {
				buf[i] = float32(math.Sin(float64(i*(r.ID()+3)))) * 1.7
			}
			wire := make([]uint16, 32)
			r.AllReduceBF16(buf, wire)
			if r.ID() == 0 {
				out = append([]float32(nil), buf...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
