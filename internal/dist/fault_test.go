package dist

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/comm"
)

// TestFaultPlanKillsAtIndex: the planned death fires exactly at the
// 1-based collective-entry index, the victim's error surfaces through
// Run wrapped around ErrInjectedFault, and every surviving rank
// unblocks with ErrAborted instead of deadlocking.
func TestFaultPlanKillsAtIndex(t *testing.T) {
	const n, kills = 4, 5
	w := New(n, Options{Fault: FaultPlan{Rank: 2, Call: kills}})
	err := w.Run(func(r *Rank) error {
		buf := make([]float32, 4*n)
		for i := 0; i < 10; i++ {
			r.AllReduce(buf)
		}
		return nil
	})
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Run returned %v, want ErrInjectedFault in the chain", err)
	}
	var f *InjectedFault
	if !errors.As(err, &f) {
		t.Fatalf("Run error %v does not carry *InjectedFault", err)
	}
	if f.Rank != 2 || f.Call != kills || f.Op != OpAllReduce {
		t.Fatalf("fault fired at %+v, want rank 2 call %d all-reduce", f, kills)
	}
	// The victim entered exactly Call collectives; survivors parked in
	// the ring at the same index (entered, never completed).
	if got := w.ranks[2].CollectiveCalls(); got != kills {
		t.Fatalf("victim entered %d collectives, want %d", got, kills)
	}
}

// TestFaultPlanMatrix drives the injected death through every path the
// elastic driver has to survive: synchronous and asynchronous issue,
// fp32 and bf16 wire, world-group and subgroup collectives. Each case
// must surface ErrInjectedFault from Run with no deadlock.
func TestFaultPlanMatrix(t *testing.T) {
	const n = 4
	cases := []struct {
		name string
		body func(w *World, r *Rank)
	}{
		{"sync/fp32", func(w *World, r *Rank) {
			buf := make([]float32, 4*n)
			for i := 0; i < 8; i++ {
				r.AllReduce(buf)
			}
		}},
		{"sync/bf16", func(w *World, r *Rank) {
			buf := make([]float32, 4*n)
			wire := make([]uint16, len(buf))
			for i := 0; i < 8; i++ {
				r.AllReduceBF16(buf, wire)
			}
		}},
		{"async/fp32", func(w *World, r *Rank) {
			buf := make([]float32, 4*n)
			for i := 0; i < 8; i++ {
				r.AllReduceAsync(buf).Wait()
			}
		}},
		{"async/bf16", func(w *World, r *Rank) {
			buf := make([]float32, 4*n)
			wire := make([]uint16, len(buf))
			for i := 0; i < 8; i++ {
				r.AllReduceBF16Async(buf, wire).Wait()
			}
		}},
		{"subgroup/two-level", func(w *World, r *Rank) {
			// The hybrid shape: reduce-scatter in consecutive pairs,
			// all-reduce across the strided replica pairs.
			first := r.ID() / 2 * 2
			sg := w.Subgroup([]int{first, first + 1})
			rg := w.Subgroup([]int{r.ID() % 2, r.ID()%2 + 2})
			buf := make([]float32, 8)
			for i := 0; i < 8; i++ {
				shard := sg.ReduceScatter(r, buf)
				rg.AllReduce(r, shard)
			}
		}},
		{"subgroup/async-chained", func(w *World, r *Rank) {
			first := r.ID() / 2 * 2
			sg := w.Subgroup([]int{first, first + 1})
			rg := w.Subgroup([]int{r.ID() % 2, r.ID()%2 + 2})
			buf := make([]float32, 8)
			for i := 0; i < 8; i++ {
				rs := sg.ReduceScatterAsync(r, buf)
				rg.AllReduceAsyncAfter(r, buf[:4], rs).Wait()
			}
		}},
	}
	for _, c := range cases {
		for _, victim := range []int{0, 3} {
			t.Run(fmt.Sprintf("%s/rank=%d", c.name, victim), func(t *testing.T) {
				w := New(n, Options{Fault: FaultPlan{Rank: victim, Call: 6}})
				err := w.Run(func(r *Rank) error {
					c.body(w, r)
					return nil
				})
				if !errors.Is(err, ErrInjectedFault) {
					t.Fatalf("Run returned %v, want ErrInjectedFault", err)
				}
				var f *InjectedFault
				if !errors.As(err, &f) || f.Rank != victim || f.Call != 6 {
					t.Fatalf("fault detail %v, want rank %d call 6", err, victim)
				}
			})
		}
	}
}

// TestFaultPlanDeterministic: the same program with the same plan dies
// at the same place every run — the property that makes kill-at-epoch-E
// elasticity tests reproducible.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() error {
		w := New(3, Options{Fault: FaultPlan{Rank: 1, Call: 4}})
		return w.Run(func(r *Rank) error {
			buf := make([]float32, 3)
			for i := 0; i < 6; i++ {
				r.AllReduce(buf)
				r.AllReduceScalar(1)
			}
			return nil
		})
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("fault did not fire")
	}
	if a.Error() != b.Error() {
		t.Fatalf("non-deterministic death site:\n  %v\n  %v", a, b)
	}
	var f *InjectedFault
	if !errors.As(a, &f) || f.Op != OpScalar {
		// calls alternate all-reduce, scalar, ... — entry 4 is a scalar.
		t.Fatalf("death site %v, want the 4th entry (scalar)", a)
	}
}

// TestFaultPlanDisarmed: the zero plan and a Call beyond the schedule
// inject nothing.
func TestFaultPlanDisarmed(t *testing.T) {
	for _, plan := range []FaultPlan{{}, {Rank: 1, Call: 1000}} {
		w := New(2, Options{Fault: plan})
		err := w.Run(func(r *Rank) error {
			buf := make([]float32, 2)
			r.AllReduce(buf)
			return nil
		})
		if err != nil {
			t.Fatalf("plan %+v injected: %v", plan, err)
		}
	}
}

// TestFaultPlanValidation: plans and skews targeting ranks outside the
// world fail at New, not mid-run.
func TestFaultPlanValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("fault rank", func() { New(2, Options{Fault: FaultPlan{Rank: 2, Call: 1}}) })
	mustPanic("negative fault rank", func() { New(2, Options{Fault: FaultPlan{Rank: -1, Call: 1}}) })
	mustPanic("skew rank", func() { New(2, Options{ThrottleSkew: map[int]float64{5: 2}}) })
}

// TestThrottleSkewStraggler: one rank with a throttle skew slows every
// peer to its pace — the synchronous-lockstep cost the simulator's α–β
// model predicts. The skewed run's wall clock must carry at least the
// straggler's modeled collective time, and the baseline must not.
func TestThrottleSkewStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n, rounds, skew = 4, 4, 4.0
	link := comm.Params{Bandwidth: 2e6, HopLat: 1e-6, Launch: 1e-5} // 2 MB/s: 32 KiB AR ≈ 25 ms
	elems := 8192
	run := func(skewed bool) (time.Duration, Stats) {
		opts := Options{Link: link, Throttle: 1}
		if skewed {
			opts.ThrottleSkew = map[int]float64{n - 1: skew}
		}
		w := New(n, opts)
		start := time.Now()
		err := w.Run(func(r *Rank) error {
			buf := make([]float32, elems)
			for i := 0; i < rounds; i++ {
				r.AllReduce(buf)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), w.Stats()
	}
	base, st := run(false)
	skewedWall, _ := run(true)
	modeled := st.AllReduce.ModelTime // total over all rounds, rank 0's schedule
	if modeled <= 0 {
		t.Fatal("no modeled time recorded")
	}
	// Lockstep: every collective completes no earlier than the straggler
	// finishes sleeping, so the skewed wall carries ≥ skew × modeled
	// collective time while the baseline carries ≥ 1 ×.
	if skewedWall.Seconds() < skew*modeled {
		t.Errorf("skewed wall %.3fs below the lockstep prediction %.3fs",
			skewedWall.Seconds(), skew*modeled)
	}
	if base.Seconds() >= skew*modeled {
		t.Errorf("baseline wall %.3fs already at the skewed prediction %.3fs — straggler cost not measurable",
			base.Seconds(), skew*modeled)
	}
	if skewedWall <= base {
		t.Errorf("skewed run (%v) not slower than baseline (%v)", skewedWall, base)
	}
}
