package dist

import (
	"fmt"

	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// bf16 wire mode: the same ring algorithms as the float32 collectives,
// but every view that crosses a ring edge is a []uint16 of bf16
// payloads — exactly half the bytes — while reduction arithmetic stays
// in the caller's float32 buffer. This reproduces how RCCL moves
// bf16 gradients on Frontier: the wire dtype is bf16, each rank's
// accumulation happens at higher effective precision, and the chunk a
// rank forwards is the round-nearest-even bf16 image of its current
// fp32 partial sum.
//
// Determinism: the ring fixes the accumulation order, and bf16
// rounding is a pure function, so for a given world size every rank
// computes bit-identical results — all-reduce and all-gather leave all
// ranks with the same bf16-valued float32s.
//
// Accounting: both the measured counters and the α–β model price these
// calls at 2 bytes per element, so `measured == modeled` and
// `measured == fsdp.TrafficPerStep(..., 2)` hold exactly, mirroring
// the fp32 mode's invariants at half the volume.

// bf16WireBytes is the wire width of a bf16 element.
const bf16WireBytes = 2

// AllReduceBF16 sums buf element-wise across all ranks with bf16 wire
// payloads: ring reduce-scatter (fp32 accumulation of widened bf16
// chunks) followed by ring all-gather of the bf16-rounded reduced
// shards. Every rank ends with the identical, bf16-valued result in
// buf. wire is caller-provided uint16 scratch with len(wire) ==
// len(buf); len(buf) must be a multiple of the world size.
func (r *Rank) AllReduceBF16(buf []float32, wire []uint16) {
	r.w.root.AllReduceBF16(r, buf, wire)
}

// ReduceScatterBF16 is ReduceScatter over the bf16 wire: the returned
// view (chunk r.ID() of buf) holds this rank's fp32 accumulation of the
// bf16 partial sums the ring delivered. The other chunks of buf are
// garbage afterwards. wire is uint16 scratch with len(wire) ==
// len(buf).
func (r *Rank) ReduceScatterBF16(buf []float32, wire []uint16) []float32 {
	return r.w.root.ReduceScatterBF16(r, buf, wire)
}

// AllGatherBF16 is AllGather over the bf16 wire. Every contribution is
// rounded to bf16 before it travels — including the caller's own chunk,
// which is rewritten in place with its widened bf16 value so all ranks
// hold bit-identical buffers afterwards. wire is uint16 scratch with
// len(wire) == len(buf).
func (r *Rank) AllGatherBF16(buf, shard []float32, wire []uint16) {
	r.w.root.AllGatherBF16(r, buf, shard, wire)
}

// AllReduceBF16 is the group-scoped bf16 all-reduce (see
// Rank.AllReduceBF16). len(buf) must be a multiple of the group size.
func (g *Group) AllReduceBF16(r *Rank, buf []float32, wire []uint16) {
	g.on(r).enter(OpAllReduce).allReduceBF16(buf, wire)
}

// ReduceScatterBF16 is the group-scoped bf16 reduce-scatter (see
// Rank.ReduceScatterBF16).
func (g *Group) ReduceScatterBF16(r *Rank, buf []float32, wire []uint16) []float32 {
	return g.on(r).enter(OpReduceScatter).reduceScatterBF16(buf, wire, OpReduceScatter, true)
}

// AllGatherBF16 is the group-scoped bf16 all-gather (see
// Rank.AllGatherBF16).
func (g *Group) AllGatherBF16(r *Rank, buf, shard []float32, wire []uint16) {
	g.on(r).enter(OpAllGather).allGatherBF16(buf, shard, wire, OpAllGather, true)
}

// abortable uint16 edge operations, the bf16 twins of sendView/recvView.
func (r *Rank) sendViewU16(ch chan []uint16, v []uint16) {
	select {
	case ch <- v:
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (r *Rank) recvViewU16(ch chan []uint16) []uint16 {
	select {
	case v := <-ch:
		return v
	case <-r.w.abort:
		panic(ErrAborted)
	}
}

func (m member) sendChU16() chan []uint16 { return m.g.dataU16[m.id] }
func (m member) recvChU16() chan []uint16 { return m.g.dataU16[(m.id-1+m.g.n)%m.g.n] }

// exchangeU16 is exchange for bf16 payloads: 2 wire bytes per element,
// same capacity-1 channel + acknowledgement discipline, so a published
// wire chunk is never rewritten while a neighbour still reads it.
func (m member) exchangeU16(op Op, view []uint16, process func(recv []uint16)) {
	m.r.sentBytes[op] += int64(len(view)) * bf16WireBytes
	m.r.sendViewU16(m.sendChU16(), view)
	recv := m.r.recvViewU16(m.recvChU16())
	process(recv)
	m.r.sendSig(m.ackSend())
	m.r.recvSig(m.ackRecv())
}

// chunkOfU16 returns the c-th of n uniform chunks of wire.
func chunkOfU16(wire []uint16, c, n int) []uint16 {
	cs := len(wire) / n
	return wire[c*cs : (c+1)*cs]
}

func (m member) checkWire(buf []float32, wire []uint16, op Op) {
	if len(wire) != len(buf) {
		panic(fmt.Sprintf("dist: %v bf16 wire scratch length %d, want %d", op, len(wire), len(buf)))
	}
}

func (m member) reduceScatterBF16(buf []float32, wire []uint16, op Op, account bool) []float32 {
	m.checkDivisible(buf, op)
	m.checkWire(buf, wire, op)
	n := m.g.n
	if n == 1 {
		if account {
			t0 := m.begin()
			m.end(op, comm.ReduceScatter(float64(len(buf)*bf16WireBytes), 1, m.g.link), t0)
		}
		return buf
	}
	var t0 time.Time
	if account {
		t0 = m.begin()
	}
	// Same schedule as the fp32 ring: at step s member i forwards the
	// chunk it finished accumulating last step — rounded to bf16 into
	// its wire scratch — and widens + adds the received bf16 chunk into
	// its fp32 buffer.
	for s := 0; s < n-1; s++ {
		c := mod(m.id-1-s, n)
		sendW := chunkOfU16(wire, c, n)
		tensor.ToBF16(sendW, chunkOf(buf, c, n))
		m.exchangeU16(op, sendW, func(recv []uint16) {
			// Widen through the vector kernel in stack-buffer blocks,
			// then accumulate — this loop is every ring hop of every
			// bf16 gradient reduction.
			acc := chunkOf(buf, mod(m.id-2-s, n), n)
			var wide [512]float32
			for off := 0; off < len(recv); off += len(wide) {
				end := off + len(wide)
				if end > len(recv) {
					end = len(recv)
				}
				w := wide[:end-off]
				tensor.FromBF16(w, recv[off:end])
				a := acc[off:end]
				for j := range a {
					a[j] += w[j]
				}
			}
		})
	}
	if account {
		m.end(op, comm.ReduceScatter(float64(len(buf)*bf16WireBytes), n, m.g.link), t0)
	}
	return chunkOf(buf, m.id, n)
}

func (m member) allGatherBF16(buf, shard []float32, wire []uint16, op Op, account bool) {
	m.checkDivisible(buf, op)
	m.checkWire(buf, wire, op)
	n := m.g.n
	own := chunkOf(buf, m.id, n)
	if shard != nil {
		if len(shard) != len(own) {
			panic(fmt.Sprintf("dist: bf16 all-gather shard length %d, want %d", len(shard), len(own)))
		}
		copy(own, shard)
	}
	// Round the local contribution once; the widened image replaces the
	// fp32 chunk so every rank — owner included — holds the same bytes.
	ownW := chunkOfU16(wire, m.id, n)
	tensor.ToBF16(ownW, own)
	tensor.FromBF16(own, ownW)
	if n == 1 {
		if account {
			t0 := m.begin()
			m.end(op, comm.AllGather(float64(len(buf)*bf16WireBytes), 1, m.g.link), t0)
		}
		return
	}
	var t0 time.Time
	if account {
		t0 = m.begin()
	}
	// Bf16 chunks ride the ring verbatim (no re-rounding at hops): the
	// received chunk lands in the wire scratch so it can be forwarded
	// next step, and its widened image lands in the fp32 buffer.
	for s := 0; s < n-1; s++ {
		send := chunkOfU16(wire, mod(m.id-s, n), n)
		m.exchangeU16(op, send, func(recv []uint16) {
			c := mod(m.id-1-s, n)
			dstW := chunkOfU16(wire, c, n)
			copy(dstW, recv)
			tensor.FromBF16(chunkOf(buf, c, n), dstW)
		})
	}
	if account {
		m.end(op, comm.AllGather(float64(len(buf)*bf16WireBytes), n, m.g.link), t0)
	}
}

func (m member) allReduceBF16(buf []float32, wire []uint16) {
	t0 := m.begin()
	m.reduceScatterBF16(buf, wire, OpAllReduce, false)
	m.allGatherBF16(buf, nil, wire, OpAllReduce, false)
	m.end(OpAllReduce, comm.AllReduce(float64(len(buf)*bf16WireBytes), m.g.n, m.g.link), t0)
}
