package dist

import (
	"errors"
	"fmt"
)

// Failure injection: a FaultPlan on Options kills a chosen rank the
// moment it enters a chosen collective, driving the existing abort
// machinery (doAbort / ErrAborted) through exactly the path a real
// mid-training rank death takes — the victim dies, every peer parked
// in a collective on any group unblocks with ErrAborted, abandoned
// async handles fail, and World.Run returns the victim's error.
//
// Entries are counted on the issuing rank's own goroutine — at the
// top of every synchronous collective call and at async issue time —
// so the fault index is deterministic: the same program kills at the
// same point on every run, regardless of how the async queue workers
// interleave. Sync and async issue, fp32 and bf16 wire modes, world
// and subgroup collectives all count against the one per-rank
// sequence; barriers do not (they are not collectives in Stats
// either).
//
// The elastic driver (internal/train.PretrainElastic) detects an
// injected death via errors.Is(err, ErrInjectedFault) on the error
// World.Run returns; a production failure (a genuine panic) takes the
// identical abort path and differs only in the error it carries.

// ErrInjectedFault is the sentinel wrapped by every *InjectedFault:
// errors.Is(err, ErrInjectedFault) identifies a planned death through
// the World.Run error chain.
var ErrInjectedFault = errors.New("dist: injected rank fault")

// FaultPlan schedules one deterministic rank death for fault-tolerance
// testing. The zero value injects nothing.
type FaultPlan struct {
	// Rank is the world rank to kill.
	Rank int
	// Call is the 1-based index of the collective entry at which the
	// rank dies, counted across every collective the rank enters (sync
	// call or async issue, any group, any wire mode). Call <= 0
	// disables the plan.
	Call int64
}

// Armed reports whether the plan will fire.
func (f FaultPlan) Armed() bool { return f.Call > 0 }

// InjectedFault is the error a planned death panics with; World.Run
// returns it wrapped in its rank-panicked error. It matches
// ErrInjectedFault under errors.Is.
type InjectedFault struct {
	// Rank is the world rank that died.
	Rank int
	// Call is the collective-entry index at which it died.
	Call int64
	// Op is the collective kind it was entering.
	Op Op
}

// Error describes the death site.
func (e *InjectedFault) Error() string {
	return fmt.Sprintf("dist: injected fault: rank %d died entering collective %d (%v)",
		e.Rank, e.Call, e.Op)
}

// Unwrap links the fault to the ErrInjectedFault sentinel.
func (e *InjectedFault) Unwrap() error { return ErrInjectedFault }

// enter counts one collective entry on the calling rank's own
// goroutine and fires the world's FaultPlan when this entry is the
// planned one. Returns the member unchanged so call sites chain:
// g.on(r).enter(op).allReduce(buf).
func (m member) enter(op Op) member {
	r := m.r
	r.collectives++
	if f := r.w.fault; f.Call > 0 && f.Rank == r.id && r.collectives == f.Call {
		panic(&InjectedFault{Rank: r.id, Call: f.Call, Op: op})
	}
	return m
}

// CollectiveCalls returns how many collectives this rank has entered
// (sync calls plus async issues) since the World was created — the
// sequence a FaultPlan.Call indexes into. Read it after World.Run
// returns; the counter is owned by the rank's goroutine while running.
func (r *Rank) CollectiveCalls() int64 { return r.collectives }

// CollectiveCalls returns rank's entry count (see Rank.CollectiveCalls)
// — the probe for aiming a FaultPlan: run the workload once without a
// fault, read the count, and schedule Call at any fraction of it.
func (w *World) CollectiveCalls(rank int) int64 {
	if rank < 0 || rank >= len(w.ranks) {
		panic(fmt.Sprintf("dist: rank %d of %d", rank, len(w.ranks)))
	}
	return w.ranks[rank].collectives
}
