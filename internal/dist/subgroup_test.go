package dist

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rng"
)

// blockPartition splits world ranks into consecutive groups of (at
// most) size g; the final group keeps the uneven remainder, so a world
// of 7 with g=3 factorizes as {0 1 2} {3 4 5} {6}.
func blockPartition(world, g int) [][]int {
	var groups [][]int
	for lo := 0; lo < world; lo += g {
		hi := lo + g
		if hi > world {
			hi = world
		}
		members := make([]int, hi-lo)
		for i := range members {
			members[i] = lo + i
		}
		groups = append(groups, members)
	}
	return groups
}

// groupOf returns the partition group containing rank id.
func groupOf(groups [][]int, id int) []int {
	for _, g := range groups {
		for _, m := range g {
			if m == id {
				return g
			}
		}
	}
	panic("rank in no group")
}

// padTo rounds n up to a multiple of g (what opt.PadTo does; inlined to
// keep the package dependency-free).
func padTo(n, g int) int {
	if g <= 1 {
		return n
	}
	return (n + g - 1) / g * g
}

// TestSubgroupCollectivesMatchReference is the property test of the
// group communicators: for world sizes 4–12 factorized into contiguous
// blocks (including uneven remainders) every subgroup's AllReduce,
// ReduceScatter and AllGather must agree with a sequential reference
// over exactly that group's members — with all sibling groups running
// their collectives concurrently (run under -race in CI).
func TestSubgroupCollectivesMatchReference(t *testing.T) {
	r := rng.New(29)
	const rawLen = 13 // deliberately not a multiple of any group size: exercises padding
	for world := 4; world <= 12; world++ {
		for _, gsize := range []int{2, 3, 5} {
			groups := blockPartition(world, gsize)
			inputs := randInputs(r, world, rawLen)
			arOut := make([][]float32, world)
			rsOut := make([][]float32, world)
			agOut := make([][]float32, world)
			w := New(world, Options{})
			err := w.Run(func(rk *Rank) error {
				members := groupOf(groups, rk.ID())
				g := w.Subgroup(members)
				padded := padTo(rawLen, g.Size())

				buf := make([]float32, padded)
				copy(buf, inputs[rk.ID()])
				g.AllReduce(rk, buf)
				arOut[rk.ID()] = buf

				buf = make([]float32, padded)
				copy(buf, inputs[rk.ID()])
				shard := g.ReduceScatter(rk, buf)
				rsOut[rk.ID()] = append([]float32(nil), shard...)

				gather := make([]float32, padded)
				g.AllGather(rk, gather, rsOut[rk.ID()])
				agOut[rk.ID()] = gather
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, members := range groups {
				gn := len(members)
				padded := padTo(rawLen, gn)
				// Sequential reference over this group's padded inputs.
				padIn := make([][]float32, gn)
				for i, m := range members {
					padIn[i] = make([]float32, padded)
					copy(padIn[i], inputs[m])
				}
				want := refSum(padIn)
				for _, m := range members {
					for j, v := range arOut[m] {
						if !closeEnough(v, want[j]) {
							t.Fatalf("world=%d gsize=%d rank=%d all-reduce elem %d: got %v want %v",
								world, gsize, m, j, v, want[j])
						}
					}
				}
				// Every member's reduce-scatter shard is its slice of the sum.
				cs := padded / gn
				for i, m := range members {
					if len(rsOut[m]) != cs {
						t.Fatalf("world=%d gsize=%d rank=%d shard length %d want %d",
							world, gsize, m, len(rsOut[m]), cs)
					}
					for j, v := range rsOut[m] {
						if !closeEnough(v, want[i*cs+j]) {
							t.Fatalf("world=%d gsize=%d rank=%d reduce-scatter elem %d: got %v want %v",
								world, gsize, m, j, v, want[i*cs+j])
						}
					}
				}
				// Gathering the shards reassembles the identical full sum on
				// every member, bit for bit.
				for _, m := range members {
					for j, v := range agOut[m] {
						if v != agOut[members[0]][j] {
							t.Fatalf("world=%d gsize=%d rank=%d all-gather differs from group leader at %d",
								world, gsize, m, j)
						}
					}
				}
			}
		}
	}
}

// TestSubgroupStridedReplicaGroups runs the exact communicator shape
// HYBRID_SHARD uses — contiguous shard groups and strided replica
// groups, all alive at once — and checks scalar reductions and
// broadcasts stay scoped to their group.
func TestSubgroupStridedReplicaGroups(t *testing.T) {
	const world, g = 8, 4 // 2 shard groups of 4, 4 replica groups of 2
	scalarShard := make([]float64, world)
	scalarRepl := make([]float64, world)
	bcast := make([][]float32, world)
	w := New(world, Options{})
	err := w.Run(func(rk *Rank) error {
		first := rk.ID() / g * g
		shardMembers := []int{first, first + 1, first + 2, first + 3}
		replMembers := []int{rk.ID() % g, rk.ID()%g + g}
		shard := w.Subgroup(shardMembers)
		repl := w.Subgroup(replMembers)

		scalarShard[rk.ID()] = shard.AllReduceScalar(rk, float64(rk.ID()))
		scalarRepl[rk.ID()] = repl.AllReduceScalar(rk, float64(rk.ID()))

		// Broadcast the group-local root's payload within each shard group.
		buf := []float32{float32(rk.ID())}
		shard.Broadcast(rk, buf, 0)
		bcast[rk.ID()] = buf

		if shard.RankOf(rk) != rk.ID()-first {
			return fmt.Errorf("rank %d: shard group rank %d", rk.ID(), shard.RankOf(rk))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < world; id++ {
		first := id / g * g
		wantShard := float64(first*g) + 0 + 1 + 2 + 3 // Σ of the block's ids
		if scalarShard[id] != wantShard {
			t.Errorf("rank %d shard-group scalar %v want %v", id, scalarShard[id], wantShard)
		}
		wantRepl := float64(id%g) + float64(id%g+g)
		if scalarRepl[id] != wantRepl {
			t.Errorf("rank %d replica-group scalar %v want %v", id, scalarRepl[id], wantRepl)
		}
		if got := bcast[id][0]; got != float32(first) {
			t.Errorf("rank %d broadcast got %v want %v", id, got, first)
		}
	}
}

// TestSubgroupMemoized: every member resolving the same rank sequence
// observes the same communicator, and a different sequence a different
// one.
func TestSubgroupMemoized(t *testing.T) {
	w := New(4, Options{})
	a := w.Subgroup([]int{0, 2})
	b := w.Subgroup([]int{0, 2})
	if a != b {
		t.Fatal("identical rank sequences resolved to different groups")
	}
	if c := w.Subgroup([]int{2, 0}); c == a {
		t.Fatal("distinct ring orders must be distinct groups")
	}
	if got := a.Size(); got != 2 {
		t.Fatalf("group size %d", got)
	}
	if got := a.Ranks(); got[0] != 0 || got[1] != 2 {
		t.Fatalf("group ranks %v", got)
	}
	// The whole world in ring order resolves to the root communicator,
	// not a duplicate.
	if g := w.Subgroup([]int{0, 1, 2, 3}); g != w.root {
		t.Fatal("identity subgroup did not reuse the world group")
	}
}

// TestSubgroupValidation: malformed subgroups and non-member collective
// calls fail loudly instead of deadlocking.
func TestSubgroupValidation(t *testing.T) {
	w := New(4, Options{})
	for name, ranks := range map[string][]int{
		"empty":        {},
		"out-of-range": {0, 4},
		"negative":     {-1, 0},
		"duplicate":    {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s subgroup: expected panic", name)
				}
			}()
			w.Subgroup(ranks)
		}()
	}
	g := w.Subgroup([]int{0, 1})
	err := w.Run(func(rk *Rank) error {
		if rk.ID() == 3 {
			defer func() {
				if p := recover(); p == nil || !strings.Contains(fmt.Sprint(p), "not a member") {
					t.Errorf("non-member collective: got %v", p)
				}
			}()
			g.AllReduce(rk, make([]float32, 2))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := g.RankOf(w.ranks[3]); n != -1 {
		t.Fatalf("RankOf non-member = %d", n)
	}
}

// TestSubgroupAccountingComposes: group traffic lands in the parent
// World's Stats — measured bytes against the sending world rank, model
// bytes from world rank 0's view — so the two sides agree for the
// symmetric SPMD schedules the training paths run.
func TestSubgroupAccountingComposes(t *testing.T) {
	const world, elems = 4, 24
	w := New(world, Options{})
	err := w.Run(func(rk *Rank) error {
		shard := w.Subgroup([]int{rk.ID() / 2 * 2, rk.ID()/2*2 + 1}) // {0 1} and {2 3}
		repl := w.Subgroup([]int{rk.ID() % 2, rk.ID()%2 + 2})        // {0 2} and {1 3}
		buf := make([]float32, elems)
		shard.AllGather(rk, buf, nil)
		shard.ReduceScatter(rk, buf)
		repl.AllReduce(rk, buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	bytes := float64(elems * 4)
	frac := 1.0 / 2 // (n−1)/n for the 2-rank groups
	cases := []struct {
		name     string
		got      OpStats
		wantWire float64
	}{
		{"all-gather", s.AllGather, frac * bytes},
		{"reduce-scatter", s.ReduceScatter, frac * bytes},
		{"all-reduce", s.AllReduce, 2 * frac * bytes},
	}
	for _, c := range cases {
		if c.got.Calls != 1 {
			t.Errorf("%s: calls=%d (want rank 0's single call)", c.name, c.got.Calls)
		}
		if c.got.MeasuredWireBytes != c.wantWire {
			t.Errorf("%s: measured %v bytes, ring formula %v", c.name, c.got.MeasuredWireBytes, c.wantWire)
		}
		if c.got.ModelWireBytes != c.wantWire {
			t.Errorf("%s: modeled %v bytes, ring formula %v", c.name, c.got.ModelWireBytes, c.wantWire)
		}
	}
}

// TestSubgroupAbortUnblocks: a rank dying before it joins a subgroup
// collective must unblock the members already parked in it (ring edges
// and the group barrier both watch the world's abort), surfacing the
// original failure instead of deadlocking.
func TestSubgroupAbortUnblocks(t *testing.T) {
	w := New(4, Options{})
	err := w.Run(func(rk *Rank) error {
		if rk.ID() == 3 {
			panic("boom")
		}
		g := w.Subgroup([]int{0, 1, 2, 3}) // rank 3 never arrives
		buf := make([]float32, 8)
		g.AllReduce(rk, buf)
		g.AllReduceScalar(rk, 1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected the originating panic, got %v", err)
	}
}
