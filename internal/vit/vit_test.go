package vit

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// TestTableI verifies that our analytic parameter counting matches the
// paper's Table I "Parameters [M]" column, which is the first artifact
// the reproduction must regenerate. The ViT-5B row is a known
// paper-internal inconsistency (see PaperParamsM doc comment), so it is
// checked against the value standard ViT algebra yields instead.
func TestTableI(t *testing.T) {
	// 2% tolerance: the paper's round numbers include learned positional
	// embeddings and (for Base) the canonical classification head, which
	// our sin-cos/MAE configuration does not have.
	const tolerance = 0.02
	for _, cfg := range TableI {
		gotM := float64(cfg.EncoderParams()) / 1e6
		want := PaperParamsM[cfg.Name]
		if cfg.Name == "ViT-5B" {
			want = 3802 // standard counting; paper prints 5349 (see config.go)
		}
		rel := math.Abs(gotM-want) / want
		if rel > tolerance {
			t.Errorf("%s: %0.1fM params, want %0.0fM (rel err %.3f)", cfg.Name, gotM, want, rel)
		}
	}
}

func TestTableIOrdering(t *testing.T) {
	// Sizes must be strictly increasing in presentation order.
	prev := int64(0)
	for _, cfg := range TableI {
		n := cfg.EncoderParams()
		if n <= prev {
			t.Fatalf("%s param count %d not larger than previous %d", cfg.Name, n, prev)
		}
		prev = n
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range TableI {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
	bad := Config{Name: "bad", Width: 10, Depth: 1, MLP: 4, Heads: 3, PatchSize: 4, ImageSize: 16, Channels: 3}
	if err := bad.Validate(); err == nil {
		t.Fatal("indivisible heads accepted")
	}
	bad2 := Config{Name: "bad2", Width: 8, Depth: 1, MLP: 4, Heads: 2, PatchSize: 5, ImageSize: 16, Channels: 3}
	if err := bad2.Validate(); err == nil {
		t.Fatal("indivisible image/patch accepted")
	}
}

func TestTokensAndPatchDim(t *testing.T) {
	c := Config{Width: 8, Depth: 1, MLP: 16, Heads: 2, PatchSize: 14, ImageSize: 224, Channels: 3}
	if c.Tokens() != 256 {
		t.Fatalf("Tokens=%d want 256", c.Tokens())
	}
	if c.Grid() != 16 {
		t.Fatalf("Grid=%d", c.Grid())
	}
	if c.PatchDim() != 14*14*3 {
		t.Fatalf("PatchDim=%d", c.PatchDim())
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("ViT-3B")
	if err != nil || c.Width != 2816 {
		t.Fatalf("ByName: %+v, %v", c, err)
	}
	if _, err := ByName("ViT-9000"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestAnalogFamilyOrdering(t *testing.T) {
	fam, err := AnalogFamily(32, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 4 {
		t.Fatalf("family size %d", len(fam))
	}
	prev := int64(0)
	for _, c := range fam {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", c.Name, err)
		}
		n := c.EncoderParams()
		if n <= prev {
			t.Fatalf("analog %s not larger than predecessor", c.Name)
		}
		prev = n
	}
}

func TestAnalogUnknown(t *testing.T) {
	if _, err := Analog("ViT-15B", 32, 8, 3); err == nil {
		t.Fatal("expected error: no analog for 15B")
	}
}

func TestModelParamCountMatchesAnalytic(t *testing.T) {
	// The live model must contain exactly the parameters the analytic
	// formula predicts — this ties the simulator's memory model to the
	// real implementation.
	cfg, err := Analog("ViT-Base", 16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(cfg, rng.New(1))
	if got, want := m.NumParams(), cfg.EncoderParams(); got != want {
		t.Fatalf("live params %d != analytic %d", got, want)
	}
}

func TestEncoderForwardShape(t *testing.T) {
	cfg := Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 8, Channels: 3}
	r := rng.New(2)
	e := NewEncoder(cfg, r)
	const batch, tokens = 3, 4
	x := make([]float32, batch*tokens*cfg.Width)
	r.FillNormal(x, 0, 1)
	y := e.Forward(x, batch, tokens)
	if len(y) != batch*tokens*cfg.Width {
		t.Fatalf("len=%d", len(y))
	}
	dy := make([]float32, len(y))
	r.FillNormal(dy, 0, 1)
	dx := e.Backward(dy)
	if len(dx) != len(x) {
		t.Fatalf("dx len=%d", len(dx))
	}
}

func TestModelFeaturesShapeAndDeterminism(t *testing.T) {
	cfg := Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 8, Channels: 3}
	r := rng.New(3)
	m := NewModel(cfg, r)
	const batch = 2
	imgs := make([]float32, batch*8*8*3)
	r.FillNormal(imgs, 0, 1)
	f1 := append([]float32(nil), m.Features(imgs, batch)...)
	f2 := m.Features(imgs, batch)
	if len(f1) != batch*cfg.Width {
		t.Fatalf("feature len %d", len(f1))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("Features not deterministic for fixed input")
		}
	}
}

func TestModelEndToEndGradient(t *testing.T) {
	// Full-pipeline gradient check: loss = Σ c·features; verify dW for a
	// sample of parameters via central differences.
	cfg := Config{Name: "tiny", Width: 8, Depth: 1, MLP: 16, Heads: 2,
		PatchSize: 4, ImageSize: 8, Channels: 2}
	r := rng.New(4)
	m := NewModel(cfg, r)
	const batch = 2
	imgs := make([]float32, batch*8*8*2)
	r.FillNormal(imgs, 0, 1)
	coef := make([]float32, batch*cfg.Width)
	r.FillNormal(coef, 0, 1)

	loss := func() float64 {
		f := m.Features(imgs, batch)
		var s float64
		for i := range coef {
			s += float64(coef[i]) * float64(f[i])
		}
		return s
	}
	ps := m.Params()
	nn.ZeroGrads(ps)
	_ = m.Features(imgs, batch)
	m.BackwardFeatures(coef)

	const h = 1e-2
	for _, p := range []*nn.Param{ps[0], ps[len(ps)/2], ps[len(ps)-1]} {
		for _, idx := range []int{0, p.NumEl() - 1} {
			orig := p.Value.Data[idx]
			p.Value.Data[idx] = orig + h
			lp := loss()
			p.Value.Data[idx] = orig - h
			lm := loss()
			p.Value.Data[idx] = orig
			num := (lp - lm) / (2 * h)
			got := float64(p.Grad.Data[idx])
			scale := math.Max(1, math.Abs(num))
			if math.Abs(num-got)/scale > 3e-2 {
				t.Errorf("%s[%d]: numeric %v analytic %v", p.Name, idx, num, got)
			}
		}
	}
}

func TestBlockParamsFormula(t *testing.T) {
	// Cross-check the closed form against a live block.
	r := rng.New(5)
	cfg := Config{Width: 24, Depth: 1, MLP: 48, Heads: 4, PatchSize: 4, ImageSize: 8, Channels: 3}
	b := nn.NewBlock("b", cfg.Width, cfg.MLP, cfg.Heads, r)
	live := int64(nn.CountParams(b.Params()))
	if live != cfg.BlockParams() {
		t.Fatalf("live block params %d != formula %d", live, cfg.BlockParams())
	}
}
