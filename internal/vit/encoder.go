package vit

import (
	"repro/internal/nn"
	"repro/internal/rng"
)

// Encoder is a stack of pre-norm transformer blocks with a final
// LayerNorm — the trunk shared by MAE pretraining (over visible tokens)
// and downstream classification (over all tokens).
type Encoder struct {
	Cfg    Config
	Blocks []*nn.Block
	Norm   *nn.LayerNorm
}

// NewEncoder builds the block stack for cfg.
func NewEncoder(cfg Config, r *rng.RNG) *Encoder {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Encoder{Cfg: cfg, Norm: nn.NewLayerNorm("encoder.norm", cfg.Width)}
	for i := 0; i < cfg.Depth; i++ {
		e.Blocks = append(e.Blocks,
			nn.NewBlock(blockName("encoder", i), cfg.Width, cfg.MLP, cfg.Heads, r))
	}
	return e
}

// Params returns all encoder parameters in layer order.
func (e *Encoder) Params() []*nn.Param {
	var ps []*nn.Param
	for _, b := range e.Blocks {
		ps = append(ps, b.Params()...)
	}
	return append(ps, e.Norm.Params()...)
}

// PackBF16 packs every block's projection weights into bf16 shadows
// so the inference path (Infer via nn.Linear.Infer) streams 2-byte
// weights through the bf16-input GEMM.
func (e *Encoder) PackBF16() {
	for _, b := range e.Blocks {
		b.PackBF16()
	}
}

// Release drops every block's and the final norm's scratch buffers;
// weights are untouched.
func (e *Encoder) Release() {
	for _, b := range e.Blocks {
		b.Release()
	}
	e.Norm.Release()
}

// Forward runs the stack over batch sequences of tokens tokens each.
func (e *Encoder) Forward(x []float32, batch, tokens int) []float32 {
	h := x
	for _, b := range e.Blocks {
		h = b.Forward(h, batch, tokens)
	}
	return e.Norm.Forward(h, batch*tokens)
}

// Backward propagates through the stack in reverse.
func (e *Encoder) Backward(dy []float32) []float32 {
	return e.BackwardLayers(dy, nil)
}

// BackwardLayers is Backward at layer granularity: yield (if non-nil)
// runs after the final LayerNorm's backward and again after each
// block's backward, in execution (reverse) order — at each call the
// unit just completed has final parameter gradients. This is the hook
// the executed communication-overlap path uses to launch a unit's
// gradient collective the moment backward is done with it, while the
// remaining blocks keep computing. The arithmetic is identical to
// Backward's (Backward delegates here), so overlapped and synchronous
// schedules train bit-identical trajectories.
func (e *Encoder) BackwardLayers(dy []float32, yield func()) []float32 {
	d := e.Norm.Backward(dy)
	if yield != nil {
		yield()
	}
	for i := len(e.Blocks) - 1; i >= 0; i-- {
		d = e.Blocks[i].Backward(d)
		if yield != nil {
			yield()
		}
	}
	return d
}

// Model is the full image classifier pipeline: patch embedding, encoder
// trunk, mean pooling over tokens. It is the feature extractor used by
// linear probing; the classifier head lives in internal/probe so the
// trunk can stay frozen.
type Model struct {
	Cfg     Config
	Embed   *nn.PatchEmbed
	Encoder *Encoder

	batch   int
	pooled  []float32
	dTokens []float32
	patches []float32
}

// NewModel builds the feature extractor for cfg.
func NewModel(cfg Config, r *rng.RNG) *Model {
	g := cfg.Grid()
	return &Model{
		Cfg:     cfg,
		Embed:   nn.NewPatchEmbed("embed", cfg.PatchDim(), cfg.Width, g, g, r),
		Encoder: NewEncoder(cfg, r),
	}
}

// Params returns embed + encoder parameters.
func (m *Model) Params() []*nn.Param {
	return append(m.Embed.Params(), m.Encoder.Params()...)
}

// NumParams returns the live parameter count (must equal
// Cfg.EncoderParams(); asserted in tests).
func (m *Model) NumParams() int64 {
	var n int64
	for _, p := range m.Params() {
		n += int64(p.NumEl())
	}
	return n
}

// Features patchifies channel-last images (batch × H·W·C), embeds them,
// runs the encoder over all tokens, and mean-pools token features into
// one (batch × Width) matrix.
func (m *Model) Features(imgs []float32, batch int) []float32 {
	cfg := m.Cfg
	t := cfg.Tokens()
	pd := cfg.PatchDim()
	m.batch = batch
	if cap(m.patches) < batch*t*pd {
		m.patches = make([]float32, batch*t*pd)
	}
	m.patches = m.patches[:batch*t*pd]
	nn.Patchify(m.patches, imgs, batch, cfg.ImageSize, cfg.ImageSize, cfg.Channels, cfg.PatchSize)
	h := m.Embed.Forward(m.patches, batch)
	h = m.Encoder.Forward(h, batch, t)

	w := cfg.Width
	if cap(m.pooled) < batch*w {
		m.pooled = make([]float32, batch*w)
	}
	m.pooled = m.pooled[:batch*w]
	inv := float32(1) / float32(t)
	for b := 0; b < batch; b++ {
		out := m.pooled[b*w : (b+1)*w]
		for j := range out {
			out[j] = 0
		}
		for tok := 0; tok < t; tok++ {
			row := h[(b*t+tok)*w : (b*t+tok+1)*w]
			for j := range out {
				out[j] += row[j] * inv
			}
		}
	}
	return m.pooled
}

// BackwardFeatures propagates a (batch × Width) pooled-feature gradient
// back through the encoder and patch embedding. Used when fine-tuning
// the whole trunk; linear probing never calls it.
func (m *Model) BackwardFeatures(dPooled []float32) {
	cfg := m.Cfg
	t := cfg.Tokens()
	w := cfg.Width
	batch := m.batch
	if cap(m.dTokens) < batch*t*w {
		m.dTokens = make([]float32, batch*t*w)
	}
	m.dTokens = m.dTokens[:batch*t*w]
	inv := float32(1) / float32(t)
	for b := 0; b < batch; b++ {
		src := dPooled[b*w : (b+1)*w]
		for tok := 0; tok < t; tok++ {
			dst := m.dTokens[(b*t+tok)*w : (b*t+tok+1)*w]
			for j := range dst {
				dst[j] = src[j] * inv
			}
		}
	}
	d := m.Encoder.Backward(m.dTokens)
	m.Embed.Backward(d)
}

func blockName(prefix string, i int) string {
	// Avoid fmt in the hot path of model construction; simple itoa.
	return prefix + ".block" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
