// Package vit assembles Vision Transformer encoders from the layers in
// internal/nn and holds the registry of the exact model architectures
// studied in the paper (Table I), together with analytic parameter
// counting used both by the tests and by the Frontier performance
// simulator.
package vit

import "fmt"

// Config describes a ViT encoder variant. Width, Depth, MLP and Heads
// follow Table I of the paper; PatchSize, ImageSize and Channels
// describe the input pipeline.
type Config struct {
	Name      string
	Width     int // embedding size
	Depth     int // encoder layers
	MLP       int // MLP hidden size
	Heads     int // attention heads per layer
	PatchSize int
	ImageSize int
	Channels  int
}

// Tokens returns the number of patch tokens per image.
func (c Config) Tokens() int {
	g := c.ImageSize / c.PatchSize
	return g * g
}

// Grid returns the patch-grid side length.
func (c Config) Grid() int { return c.ImageSize / c.PatchSize }

// PatchDim returns the flattened patch dimensionality.
func (c Config) PatchDim() int { return c.PatchSize * c.PatchSize * c.Channels }

// Validate reports configuration errors (indivisible widths etc.).
func (c Config) Validate() error {
	if c.Width <= 0 || c.Depth <= 0 || c.MLP <= 0 || c.Heads <= 0 {
		return fmt.Errorf("vit: non-positive dimension in %+v", c)
	}
	if c.Width%c.Heads != 0 {
		return fmt.Errorf("vit: width %d not divisible by heads %d", c.Width, c.Heads)
	}
	if c.Width%4 != 0 {
		return fmt.Errorf("vit: width %d not divisible by 4 (sin-cos embedding)", c.Width)
	}
	if c.ImageSize%c.PatchSize != 0 {
		return fmt.Errorf("vit: image %d not divisible by patch %d", c.ImageSize, c.PatchSize)
	}
	return nil
}

// BlockParams returns the exact trainable-parameter count of one
// pre-norm transformer block at this width: fused QKV and output
// projections with bias, two-layer MLP with bias, two LayerNorms.
func (c Config) BlockParams() int64 {
	w, m := int64(c.Width), int64(c.MLP)
	qkv := w*3*w + 3*w
	proj := w*w + w
	mlp := w*m + m + m*w + w
	ln := 2 * (2 * w)
	return qkv + proj + mlp + ln
}

// EncoderParams returns the exact trainable-parameter count of the full
// encoder: patch projection, Depth blocks, and the final LayerNorm.
// Positional embeddings are fixed sin-cos (paper follows MAE) and carry
// no parameters.
func (c Config) EncoderParams() int64 {
	pd := int64(c.PatchDim())
	w := int64(c.Width)
	embed := pd*w + w
	return embed + int64(c.Depth)*c.BlockParams() + 2*w
}

// Paper Table I: the six ViT variants studied, with the patch sizes the
// paper uses (16 for Base per the original ViT paper, 14 for Huge and
// all billion-scale models). ImageSize 224 is the canonical resolution
// for parameter counting and the performance model; the pretraining
// runs in Section V use 512×512, which changes token count but not
// parameter count.
var (
	ViTBase = Config{Name: "ViT-Base", Width: 768, Depth: 12, MLP: 3072, Heads: 12,
		PatchSize: 16, ImageSize: 224, Channels: 3}
	ViTHuge = Config{Name: "ViT-Huge", Width: 1280, Depth: 32, MLP: 5120, Heads: 16,
		PatchSize: 14, ImageSize: 224, Channels: 3}
	ViT1B = Config{Name: "ViT-1B", Width: 1536, Depth: 32, MLP: 6144, Heads: 16,
		PatchSize: 14, ImageSize: 224, Channels: 3}
	ViT3B = Config{Name: "ViT-3B", Width: 2816, Depth: 32, MLP: 11264, Heads: 32,
		PatchSize: 14, ImageSize: 224, Channels: 3}
	ViT5B = Config{Name: "ViT-5B", Width: 1792, Depth: 56, MLP: 15360, Heads: 16,
		PatchSize: 14, ImageSize: 224, Channels: 3}
	ViT15B = Config{Name: "ViT-15B", Width: 5040, Depth: 48, MLP: 20160, Heads: 48,
		PatchSize: 14, ImageSize: 224, Channels: 3}
)

// TableI lists the paper's six variants in presentation order.
var TableI = []Config{ViTBase, ViTHuge, ViT1B, ViT3B, ViT5B, ViT15B}

// PaperParamsM records the "Parameters [M]" column of Table I as
// printed in the paper, used by tests and EXPERIMENTS.md comparisons.
//
// Note: five of the six rows agree with standard ViT parameter counting
// to <1%. The ViT-5B row as printed (5349M) is not reachable from its
// own (width, depth, MLP) via standard ViT algebra, which yields
// ≈3802M; it matches only if the MLP were counted with three
// projection matrices (a gated/SwiGLU MLP). We implement the standard
// architecture the paper describes and record the discrepancy in
// EXPERIMENTS.md.
var PaperParamsM = map[string]float64{
	"ViT-Base": 87, "ViT-Huge": 635, "ViT-1B": 914,
	"ViT-3B": 3067, "ViT-5B": 5349, "ViT-15B": 14720,
}

// ByName returns the Table I config with the given name.
func ByName(name string) (Config, error) {
	for _, c := range TableI {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("vit: unknown model %q", name)
}

// Analog returns a width-scaled laptop-trainable analog of a Table I
// variant, preserving the paper's size ordering (Base < Huge < 1B <
// 3B). The analog keeps the relative shape — wider and deeper together
// — so that capacity grows monotonically, which is what the paper's
// Section V trend depends on.
func Analog(name string, imageSize, patchSize, channels int) (Config, error) {
	type shape struct{ w, d, m, h int }
	shapes := map[string]shape{
		"ViT-Base": {w: 32, d: 2, m: 64, h: 2},
		"ViT-Huge": {w: 48, d: 3, m: 128, h: 4},
		"ViT-1B":   {w: 64, d: 4, m: 192, h: 4},
		"ViT-3B":   {w: 96, d: 5, m: 288, h: 8},
	}
	s, ok := shapes[name]
	if !ok {
		return Config{}, fmt.Errorf("vit: no analog defined for %q", name)
	}
	cfg := Config{
		Name:      name + "-analog",
		Width:     s.w,
		Depth:     s.d,
		MLP:       s.m,
		Heads:     s.h,
		PatchSize: patchSize,
		ImageSize: imageSize,
		Channels:  channels,
	}
	return cfg, cfg.Validate()
}

// AnalogFamily returns the four analog configs in Table I order.
func AnalogFamily(imageSize, patchSize, channels int) ([]Config, error) {
	var out []Config
	for _, n := range []string{"ViT-Base", "ViT-Huge", "ViT-1B", "ViT-3B"} {
		c, err := Analog(n, imageSize, patchSize, channels)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
