package vit

import "repro/internal/nn"

// Infer runs the block stack without touching the layers' backward
// caches: activations live in the caller's InferCtx, so a shared
// read-only Encoder serves any number of worker goroutines, one ctx
// each. The arithmetic is the training Forward's — same kernels, same
// parallel grains — so the output is bitwise identical.
func (e *Encoder) Infer(ctx *nn.InferCtx, x []float32, batch, tokens int) []float32 {
	h := x
	for _, b := range e.Blocks {
		h = b.Infer(ctx, h, batch, tokens)
	}
	return e.Norm.Infer(ctx, h, batch*tokens)
}
