package perfmodel

import (
	"math"
	"testing"

	"repro/internal/vit"
)

func TestViTWorkloadValidates(t *testing.T) {
	for _, cfg := range vit.TableI {
		w := ViTWorkload(cfg, 32)
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	bad := ViTWorkload(vit.ViTBase, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestUnitsParamsMatchEncoderParams(t *testing.T) {
	// The FSDP unit decomposition must account for exactly the encoder's
	// parameters — this ties the simulator to the real architecture.
	for _, cfg := range vit.TableI {
		w := ViTWorkload(cfg, 32)
		if got, want := w.TotalParams(), cfg.EncoderParams(); got != want {
			t.Errorf("%s: units sum %d, encoder params %d", cfg.Name, got, want)
		}
	}
}

func TestUnitsCount(t *testing.T) {
	w := ViTWorkload(vit.ViTBase, 32)
	if len(w.Units()) != 1+12 {
		t.Fatalf("units=%d want 13 (embed + 12 blocks)", len(w.Units()))
	}
	wm := MAEWorkload(vit.ViT3B, 32, 0.75)
	if len(wm.Units()) != 1+32+8+1 {
		t.Fatalf("MAE units=%d want 42", len(wm.Units()))
	}
}

func TestMAEVisibleTokens(t *testing.T) {
	w := MAEWorkload(vit.ViT3B, 32, 0.75)
	if w.EncoderTokens != vit.ViT3B.Tokens()/4 {
		t.Fatalf("visible tokens %d want %d", w.EncoderTokens, vit.ViT3B.Tokens()/4)
	}
	if !w.MAE {
		t.Fatal("MAE flag unset")
	}
}

func TestFLOPsScaleWithModel(t *testing.T) {
	// Bigger Table I models must require strictly more FLOPs per step.
	prev := 0.0
	for _, cfg := range vit.TableI {
		w := ViTWorkload(cfg, 32)
		f := w.TotalStepFLOPs()
		if f <= prev {
			t.Fatalf("%s FLOPs %v not larger than previous %v", cfg.Name, f, prev)
		}
		prev = f
	}
}

func TestFLOPsApprox6PT(t *testing.T) {
	// Transformer rule of thumb: total step FLOPs ≈ 6·P·T·B (forward
	// 2PT, backward 4PT) within ~15% for GEMM-dominated models.
	w := ViTWorkload(vit.ViT3B, 32)
	approx := 6 * float64(vit.ViT3B.EncoderParams()) * float64(w.EncoderTokens) * float64(w.LocalBatch)
	got := w.TotalStepFLOPs()
	if r := got / approx; r < 0.85 || r > 1.15 {
		t.Fatalf("step FLOPs %v vs 6PTB %v (ratio %v)", got, approx, r)
	}
}

func TestBackwardMultiplier(t *testing.T) {
	w := ViTWorkload(vit.ViTBase, 8)
	if w.BackwardMultiplier() != 2 {
		t.Fatal("plain backward multiplier")
	}
	w.ActCheckpoint = true
	if w.BackwardMultiplier() != 3 {
		t.Fatal("checkpointed backward multiplier")
	}
}

func TestActivationBytesCheckpointingShrinks(t *testing.T) {
	w := ViTWorkload(vit.ViT15B, 32)
	plain := w.ActivationBytes()
	w.ActCheckpoint = true
	ckpt := w.ActivationBytes()
	if ckpt >= plain {
		t.Fatalf("checkpointing did not shrink activations: %v vs %v", ckpt, plain)
	}
	if ckpt < plain/30 {
		t.Fatalf("checkpointed activations implausibly small: %v vs %v", ckpt, plain)
	}
}

func TestActivationBytesFusedAttention(t *testing.T) {
	w := ViTWorkload(vit.ViT1B, 16)
	mat := w.ActivationBytes()
	w.FusedAttention = true
	fused := w.ActivationBytes()
	// Fused attention swaps the per-block b·h·t² probability term for
	// 2·b·h·t statistics; everything else is identical.
	b, h := float64(w.LocalBatch), float64(w.Model.Heads)
	tt := float64(w.EncoderTokens)
	wantDelta := b * h * tt * (tt - 2) * w.Prec.ComputeBytes * float64(w.Model.Depth)
	if math.Abs((mat-fused)-wantDelta) > 1e-6*mat {
		t.Fatalf("fused delta %v, want %v", mat-fused, wantDelta)
	}

	// Same swap inside the checkpointed working set (one block).
	w.FusedAttention = false
	w.ActCheckpoint = true
	matC := w.ActivationBytes()
	w.FusedAttention = true
	fusedC := w.ActivationBytes()
	wantDeltaC := b * h * tt * (tt - 2) * w.Prec.ComputeBytes
	if math.Abs((matC-fusedC)-wantDeltaC) > 1e-6*matC {
		t.Fatalf("checkpointed fused delta %v, want %v", matC-fusedC, wantDeltaC)
	}
}

func TestActivationBytesScaleWithBatch(t *testing.T) {
	a := ViTWorkload(vit.ViT1B, 16).ActivationBytes()
	b := ViTWorkload(vit.ViT1B, 32).ActivationBytes()
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("activations not linear in batch: %v", b/a)
	}
}

func TestMAEEncoderCheaperThanViT(t *testing.T) {
	// With 75% masking the MAE encoder runs on 25% of the tokens, so the
	// MAE step must be much cheaper than the supervised ViT step despite
	// the added decoder (the paper's rationale for analyzing ViT).
	vitW := ViTWorkload(vit.ViT3B, 32)
	maeW := MAEWorkload(vit.ViT3B, 32, 0.75)
	if maeW.TotalStepFLOPs() >= vitW.TotalStepFLOPs() {
		t.Fatalf("MAE step (%v) not cheaper than ViT step (%v)",
			maeW.TotalStepFLOPs(), vitW.TotalStepFLOPs())
	}
	// Decoder share must be "small" (paper: <10% of FLOPs per token of a
	// large encoder; for 3B the decoder is a rounding error).
	decShare := 8 * maeW.DecoderBlockForwardFLOPs() / maeW.TotalForwardFLOPs()
	if decShare > 0.35 {
		t.Fatalf("decoder share %v implausibly large", decShare)
	}
}

func TestPrecisionDefaults(t *testing.T) {
	p := MixedPrecision()
	if p.ComputeBytes != 2 {
		t.Fatalf("compute bytes %v", p.ComputeBytes)
	}
	if p.StateBytesPerParam < 12 || p.StateBytesPerParam > 20 {
		t.Fatalf("state bytes %v outside Adam mixed-precision range", p.StateBytesPerParam)
	}
}

func TestIOModelScalesNearLinearly(t *testing.T) {
	io := DefaultIO()
	one := io.ImagesPerSec(1)
	if one <= 0 {
		t.Fatal("zero IO throughput")
	}
	sixtyFour := io.ImagesPerSec(64)
	ratio := sixtyFour / one
	if ratio < 48 || ratio > 64 {
		t.Fatalf("64-node IO scaling ratio %v, want near-linear", ratio)
	}
	if io.ImagesPerSec(0) != 0 {
		t.Fatal("zero nodes should give zero throughput")
	}
}

func TestIOMonotoneInNodes(t *testing.T) {
	io := DefaultIO()
	prev := 0.0
	for n := 1; n <= 128; n *= 2 {
		v := io.ImagesPerSec(n)
		if v <= prev {
			t.Fatalf("IO not monotone at %d nodes", n)
		}
		prev = v
	}
}
