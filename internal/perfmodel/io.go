package perfmodel

import "math"

// IOModel captures the data-loading pipeline of Figure 1: per-GPU
// PyTorch DataLoader workers decoding images from the parallel
// filesystem. Throughput per node is the worker decode rate capped by
// the node's share of filesystem bandwidth; aggregate throughput scales
// nearly linearly with a mild metadata-contention penalty — which is
// why the paper finds the application is never IO-bound.
type IOModel struct {
	WorkersPerGPU         int
	GPUsPerNode           int
	ImagesPerSecPerWorker float64
	// BytesPerImage at the pretraining resolution.
	BytesPerImage float64
	// FSAggregateBW is the filesystem's total read bandwidth (Frontier's
	// Orion is ~10 TB/s: effectively unbounded at these scales).
	FSAggregateBW float64
	// ContentionPerDoubling is the fractional per-node-doubling
	// efficiency loss from metadata/OST contention.
	ContentionPerDoubling float64
}

// rawPixelBytes is the on-disk element size of the pretraining corpus:
// the source GeoTIFF bands decode to float32 before augmentation, so
// the IO model charges 4 bytes per pixel per channel regardless of the
// training Precision (the loader, not the GPU, pays this width).
const rawPixelBytes = 4

// DefaultIO is the Figure 1 configuration: 4 workers per GCD as in the
// paper, 512×512×3 float32 images.
func DefaultIO() IOModel {
	return IOModel{
		WorkersPerGPU:         4,
		GPUsPerNode:           8,
		ImagesPerSecPerWorker: 2.4,
		BytesPerImage:         512 * 512 * 3 * rawPixelBytes,
		FSAggregateBW:         10e12,
		ContentionPerDoubling: 0.015,
	}
}

// ImagesPerSec returns aggregate loader throughput at the given node
// count.
func (io IOModel) ImagesPerSec(nodes int) float64 {
	if nodes <= 0 {
		return 0
	}
	workers := float64(io.WorkersPerGPU * io.GPUsPerNode)
	perNode := workers * io.ImagesPerSecPerWorker
	fsCap := io.FSAggregateBW / io.BytesPerImage / float64(nodes)
	if perNode > fsCap {
		perNode = fsCap
	}
	eff := 1 - io.ContentionPerDoubling*math.Log2(float64(nodes))
	if eff < 0.5 {
		eff = 0.5
	}
	return float64(nodes) * perNode * eff
}
