// Package perfmodel quantifies the training workloads of the paper:
// per-block FLOPs and parameter bytes for the ViT variants (and the MAE
// encoder+decoder composite), activation memory under vanilla and
// checkpointed execution, and the data-loading model behind Figure 1's
// IO curve. The FSDP simulator consumes these numbers to build its
// per-step task graphs.
package perfmodel

import (
	"fmt"

	"repro/internal/vit"
)

// Precision captures the numeric formats of a training run. The paper
// trains with PyTorch AMP-style mixed precision on MI250X: bf16 math
// and communication with fp32 master weights and Adam state.
type Precision struct {
	// ComputeBytes is the activation/parameter element size used in
	// kernels and collectives.
	ComputeBytes float64
	// StateBytesPerParam is the resident bytes per parameter for master
	// weights, gradients and optimizer state (sharded by FSDP).
	// fp32 master (4) + fp32 Adam m,v (8) + bf16 working copy (2) = 14.
	StateBytesPerParam float64
	// MasterBytes is the master-weight/full-precision gradient element
	// size. DDP is modeled reducing gradients at this width regardless
	// of ComputeBytes (its buckets hold fp32 gradients — one of the
	// implementation differences from FSDP the paper alludes to); ≤ 0
	// defaults to 4. It exists so no simulated table hard-codes a
	// 4-byte element size — the same width-parameterization
	// fsdp.TrafficPerStep got for the executed bf16 wire.
	MasterBytes float64
}

// MixedPrecision is the default training precision.
func MixedPrecision() Precision {
	return Precision{ComputeBytes: 2, StateBytesPerParam: 14, MasterBytes: 4}
}

// FP32Precision is the full-single-precision counterpart: fp32 math
// and communication, fp32 master + Adam moments (12 resident bytes per
// parameter, no separate working copy). The executed training loop's
// FP32 mode corresponds to this profile.
func FP32Precision() Precision {
	return Precision{ComputeBytes: 4, StateBytesPerParam: 12, MasterBytes: 4}
}

// PrecisionByName resolves the CLI spellings of the numeric profiles
// — "bf16" (the paper's AMP recipe) and "fp32" — failing fast on
// anything else so a typo never silently regenerates tables under a
// default profile. Shared by cmd/perfsim and cmd/repro.
func PrecisionByName(name string) (Precision, error) {
	switch name {
	case "bf16":
		return MixedPrecision(), nil
	case "fp32":
		return FP32Precision(), nil
	default:
		return Precision{}, fmt.Errorf("perfmodel: unknown precision %q (want bf16 | fp32)", name)
	}
}

// masterBytes returns MasterBytes with the fp32 default applied.
func (p Precision) masterBytes() float64 {
	if p.MasterBytes <= 0 {
		return 4
	}
	return p.MasterBytes
}

// GradReduceBytes returns the element width a strategy's gradient
// reduction moves: ComputeBytes for the FSDP family, the full master
// width for DDP's fp32 buckets.
func (p Precision) GradReduceBytes(ddp bool) float64 {
	if ddp && p.ComputeBytes < p.masterBytes() {
		return p.masterBytes()
	}
	return p.ComputeBytes
}

// Workload describes one rank's per-step work.
type Workload struct {
	Model      vit.Config
	LocalBatch int
	// EncoderTokens is the sequence length seen by encoder blocks
	// (Model.Tokens() for supervised ViT; ~25% of it for MAE).
	EncoderTokens int
	// MAE adds the lightweight decoder (width 512 × 8 blocks over the
	// full token grid) to compute and communication.
	MAE bool
	// DecWidth/DecDepth override the decoder geometry (0 keeps the
	// paper's 512×8). The executed test-scale MAE models run scaled-down
	// decoders (mae.Config.DecoderWidth/Depth); the calibration
	// validation suite uses these overrides so fsdp.Simulate prices the
	// exact model PretrainDistributed executes.
	DecWidth, DecDepth int
	// ActCheckpoint enables activation checkpointing: activations
	// shrink to block boundaries, backward recomputes forward (+1×
	// forward FLOPs).
	ActCheckpoint bool
	// FusedAttention prices the tiled-attention memory profile
	// (tensor.FlashAttnFwd/Bwd): the (T×T) probability matrices are
	// never materialized, so attention retains only the per-row
	// (max, exp-sum) statistics — O(B·H·T) instead of O(B·H·T²) — and
	// backward recomputes probability tiles on the fly. FLOPs are
	// unchanged (the recompute is the same exp work the materialized
	// path amortizes through memory). Off by default so existing
	// calibrated profiles and goldens keep the materialized
	// accounting.
	FusedAttention bool
	Prec           Precision
}

// ViTWorkload is the plain supervised-ViT profile used in Sections
// IV-B/C/D ("the ViT part of the MAE workload is the most
// compute-demanding part").
func ViTWorkload(cfg vit.Config, localBatch int) Workload {
	return Workload{
		Model:         cfg,
		LocalBatch:    localBatch,
		EncoderTokens: cfg.Tokens(),
		Prec:          MixedPrecision(),
	}
}

// MAEWorkload is the Figure 1 profile: encoder over visible tokens
// only, plus the 512×8 decoder over the full grid.
func MAEWorkload(cfg vit.Config, localBatch int, maskRatio float64) Workload {
	vis := int(float64(cfg.Tokens()) * (1 - maskRatio))
	if vis < 1 {
		vis = 1
	}
	return Workload{
		Model:         cfg,
		LocalBatch:    localBatch,
		EncoderTokens: vis,
		MAE:           true,
		Prec:          MixedPrecision(),
	}
}

// Decoder constants per the paper/MAE defaults.
const (
	decWidth = 512
	decDepth = 8
)

// decoderWidth/decoderDepth return the decoder geometry with the
// paper defaults applied.
func (w Workload) decoderWidth() int {
	if w.DecWidth > 0 {
		return w.DecWidth
	}
	return decWidth
}

func (w Workload) decoderDepth() int {
	if w.DecDepth > 0 {
		return w.DecDepth
	}
	return decDepth
}

// DecoderGeometry returns the decoder width and depth with the paper
// defaults applied — the geometry Units() prices. Exported for the
// calibration package, which weighs the workload's GEMM shapes to pick
// the MFU operating point on the measured roofline.
func (w Workload) DecoderGeometry() (width, depth int) {
	return w.decoderWidth(), w.decoderDepth()
}

// Validate reports configuration errors.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return err
	}
	if w.LocalBatch <= 0 {
		return fmt.Errorf("perfmodel: non-positive local batch")
	}
	if w.EncoderTokens <= 0 {
		return fmt.Errorf("perfmodel: non-positive token count")
	}
	if w.Prec.ComputeBytes <= 0 || w.Prec.StateBytesPerParam <= 0 {
		return fmt.Errorf("perfmodel: precision not set (use MixedPrecision)")
	}
	if w.DecWidth < 0 || w.DecDepth < 0 {
		return fmt.Errorf("perfmodel: negative decoder override %d×%d", w.DecWidth, w.DecDepth)
	}
	return nil
}

// blockFLOPs returns forward FLOPs for one transformer block over the
// whole local batch at the given width/MLP/tokens:
//
//	2·B·T·(4W² + 2WM) GEMM terms + 4·B·T²·W attention terms.
func blockFLOPs(batch, tokens, width, mlp int) float64 {
	b := float64(batch)
	t := float64(tokens)
	wd := float64(width)
	m := float64(mlp)
	return 2*b*t*(4*wd*wd+2*wd*m) + 4*b*t*t*wd
}

// EncoderBlockForwardFLOPs returns per-block forward FLOPs for the
// encoder over the local batch.
func (w Workload) EncoderBlockForwardFLOPs() float64 {
	return blockFLOPs(w.LocalBatch, w.EncoderTokens, w.Model.Width, w.Model.MLP)
}

// DecoderBlockForwardFLOPs returns per-block forward FLOPs for the MAE
// decoder (zero when MAE is false). The decoder always sees the full
// token grid.
func (w Workload) DecoderBlockForwardFLOPs() float64 {
	if !w.MAE {
		return 0
	}
	dw := w.decoderWidth()
	return blockFLOPs(w.LocalBatch, w.Model.Tokens(), dw, 4*dw)
}

// EmbedForwardFLOPs returns the patch-projection forward FLOPs.
func (w Workload) EmbedForwardFLOPs() float64 {
	return 2 * float64(w.LocalBatch) * float64(w.EncoderTokens) *
		float64(w.Model.PatchDim()) * float64(w.Model.Width)
}

// BackwardMultiplier converts forward FLOPs to backward FLOPs: 2×
// normally, 3× under activation checkpointing (forward recompute).
func (w Workload) BackwardMultiplier() float64 {
	if w.ActCheckpoint {
		return 3
	}
	return 2
}

// TotalForwardFLOPs sums embed + encoder + decoder forward FLOPs.
func (w Workload) TotalForwardFLOPs() float64 {
	total := w.EmbedForwardFLOPs() +
		float64(w.Model.Depth)*w.EncoderBlockForwardFLOPs()
	if w.MAE {
		total += float64(w.decoderDepth()) * w.DecoderBlockForwardFLOPs()
	}
	return total
}

// TotalStepFLOPs is forward + backward for one optimizer step.
func (w Workload) TotalStepFLOPs() float64 {
	return w.TotalForwardFLOPs() * (1 + w.BackwardMultiplier())
}

// Unit is one FSDP flat-parameter unit (≈ one transformer block): the
// granularity at which FSDP shards, gathers and reduce-scatters.
type Unit struct {
	Name string
	// Params is the unit's parameter count.
	Params int64
	// FwdFLOPs / BwdFLOPs over the local batch.
	FwdFLOPs float64
	BwdFLOPs float64
}

// Units returns the per-step FSDP unit list: the patch embedding
// (folded with the final norm), encoder blocks, and — for MAE — decoder
// blocks plus prediction head. This list is what the FSDP simulator
// iterates to build task graphs.
func (w Workload) Units() []Unit {
	bwd := w.BackwardMultiplier()
	var units []Unit
	embedParams := int64(w.Model.PatchDim())*int64(w.Model.Width) + int64(w.Model.Width) + 2*int64(w.Model.Width)
	units = append(units, Unit{
		Name:     "embed",
		Params:   embedParams,
		FwdFLOPs: w.EmbedForwardFLOPs(),
		BwdFLOPs: w.EmbedForwardFLOPs() * bwd,
	})
	bf := w.EncoderBlockForwardFLOPs()
	bp := w.Model.BlockParams()
	for i := 0; i < w.Model.Depth; i++ {
		units = append(units, Unit{
			Name:     fmt.Sprintf("enc%d", i),
			Params:   bp,
			FwdFLOPs: bf,
			BwdFLOPs: bf * bwd,
		})
	}
	if w.MAE {
		df := w.DecoderBlockForwardFLOPs()
		dw := w.decoderWidth()
		dcfg := vit.Config{Width: dw, MLP: 4 * dw}
		dp := dcfg.BlockParams()
		for i := 0; i < w.decoderDepth(); i++ {
			units = append(units, Unit{
				Name:     fmt.Sprintf("dec%d", i),
				Params:   dp,
				FwdFLOPs: df,
				BwdFLOPs: df * bwd,
			})
		}
		// Decoder embed + prediction head, folded into one unit.
		headParams := int64(w.Model.Width)*int64(dw) + int64(dw) +
			int64(dw)*int64(w.Model.PatchDim()) + int64(w.Model.PatchDim())
		headFLOPs := 2 * float64(w.LocalBatch) * float64(w.Model.Tokens()) *
			float64(dw) * float64(w.Model.PatchDim())
		units = append(units, Unit{
			Name:     "dec_head",
			Params:   headParams,
			FwdFLOPs: headFLOPs,
			BwdFLOPs: headFLOPs * bwd,
		})
	}
	return units
}

// TotalParams sums the unit parameter counts.
func (w Workload) TotalParams() int64 {
	var n int64
	for _, u := range w.Units() {
		n += u.Params
	}
	return n
}

// ActivationBytes estimates per-GPU activation memory. Without
// checkpointing the dominant terms are kAct buffers of (B·T·W) per
// block plus the attention state; with checkpointing only
// block-boundary activations plus one block's working set remain.
//
// The attention state depends on the kernel: the materialized path
// retains the (T×T) probabilities per (batch, head) — b·h·t²·cb per
// block — while the fused tiled path (FusedAttention) retains only the
// two per-row softmax statistics, 2·b·h·t·cb per block, recomputing
// probability tiles during backward.
func (w Workload) ActivationBytes() float64 {
	b := float64(w.LocalBatch)
	t := float64(w.EncoderTokens)
	wd := float64(w.Model.Width)
	d := float64(w.Model.Depth)
	h := float64(w.Model.Heads)
	cb := w.Prec.ComputeBytes
	const kAct = 8                  // linear-term buffers retained per block for backward
	attnState := b * h * t * t * cb // per block, materialized path
	if w.FusedAttention {
		attnState = 2 * b * h * t * cb
	}
	if w.ActCheckpoint {
		boundaries := b * t * wd * d * cb
		working := b*t*(6*wd+float64(w.Model.MLP))*cb + attnState
		return boundaries + working
	}
	linear := b * t * wd * d * kAct * cb
	return linear + attnState*d
}
