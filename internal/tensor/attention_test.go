package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Tolerances for fused-vs-materialized attention agreement. The fused
// path differs from the reference by (a) the float32 polynomial exp
// vs float64 math.Exp, (b) deferred 1/l normalization instead of
// normalizing P before the V product, and (c) tile-ordered summation
// with online max corrections. Each is a few-ulp effect; the
// documented contract is 1e-3 relative on forward outputs and 5e-3 on
// gradients (gradients amplify the dP−D cancellation).
const (
	flashFwdTol = 1e-3
	flashBwdTol = 5e-3
)

// refAttnFwd is the materialized oracle: S = Q·Kᵀ, softmax(scale·S),
// O = P·V through the regular blocked kernels. Returns the
// probability matrix for the backward oracle.
func refAttnFwd(o, q, k, v []float32, t, d int, scale float32) []float32 {
	p := make([]float32, t*t)
	MatMulTB(p, q, k, t, d, t, false)
	SoftmaxScaled(p, p, t, t, scale)
	MatMul(o, p, v, t, t, d, false)
	return p
}

// refAttnBwd is the materialized backward oracle over a cached P.
func refAttnBwd(dq, dk, dv, do_, p, q, k, v []float32, t, d int, scale float32) {
	dp := make([]float32, t*t)
	ds := make([]float32, t*t)
	MatMulTA(dv, p, do_, t, t, d, false)
	MatMulTB(dp, do_, v, t, d, t, false)
	SoftmaxBackwardScaled(ds, p, dp, t, t, scale)
	MatMul(dq, ds, k, t, t, d, false)
	MatMulTA(dk, ds, q, t, t, d, false)
}

func randSlice(r *rand.Rand, n int, scale float64) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.NormFloat64() * scale)
	}
	return s
}

// TestFlashAttnProperty holds fused forward+backward to the
// materialized reference across shapes chosen to hit every tile
// remainder: T below/at/above the Q block (48) and K/V tile (128)
// sizes, odd T and d, d below/at/above the micro-kernel width.
func TestFlashAttnProperty(t *testing.T) {
	shapes := []struct{ tok, d int }{
		{1, 1}, {2, 3}, {5, 4}, {7, 16}, {13, 8},
		{31, 5}, {47, 64}, {48, 32}, {49, 17},
		{96, 64}, {127, 48}, {128, 64}, {129, 33},
		{197, 64}, {200, 80},
	}
	r := rand.New(rand.NewSource(7))
	for _, sh := range shapes {
		tok, d := sh.tok, sh.d
		scale := float32(1 / math.Sqrt(float64(d)))
		q := randSlice(r, tok*d, 1)
		k := randSlice(r, tok*d, 1)
		v := randSlice(r, tok*d, 1)
		do_ := randSlice(r, tok*d, 1)

		oRef := make([]float32, tok*d)
		p := refAttnFwd(oRef, q, k, v, tok, d, scale)

		oF := make([]float32, tok*d)
		stats := make([]float32, 2*tok)
		FlashAttnFwd(oF, d, q, k, v, tok, d, scale, stats)
		if i, ok := relClose(oF, oRef, flashFwdTol); !ok {
			t.Fatalf("T=%d d=%d: fused forward diverged at %d: %v vs %v", tok, d, i, oF[i], oRef[i])
		}
		// stats invariant: exp-sums are positive and finite, maxes are
		// the row maxima of the scaled scores.
		for i := 0; i < tok; i++ {
			l := float64(stats[2*i+1])
			if !(l > 0) || math.IsInf(l, 0) {
				t.Fatalf("T=%d d=%d: bad exp-sum stats[%d]=%v", tok, d, i, l)
			}
		}

		dqRef := make([]float32, tok*d)
		dkRef := make([]float32, tok*d)
		dvRef := make([]float32, tok*d)
		refAttnBwd(dqRef, dkRef, dvRef, do_, p, q, k, v, tok, d, scale)

		dq := make([]float32, tok*d)
		dk := make([]float32, tok*d)
		dv := make([]float32, tok*d)
		FlashAttnBwd(dq, dk, dv, d, do_, oF, d, q, k, v, tok, d, scale, stats)
		for _, pair := range []struct {
			name      string
			got, want []float32
		}{{"dQ", dq, dqRef}, {"dK", dk, dkRef}, {"dV", dv, dvRef}} {
			if i, ok := relClose(pair.got, pair.want, flashBwdTol); !ok {
				t.Fatalf("T=%d d=%d: fused %s diverged at %d: %v vs %v",
					tok, d, pair.name, i, pair.got[i], pair.want[i])
			}
		}
	}
}

// TestFlashAttnStrided runs the fused kernels with the strided
// output/gradient layouts nn uses (head tiles inside wider rows) and
// checks the gutters are never touched.
func TestFlashAttnStrided(t *testing.T) {
	tok, d := 53, 24
	ldo, ldqkv := d+13, 3*d+7
	scale := float32(1 / math.Sqrt(float64(d)))
	r := rand.New(rand.NewSource(11))
	q := randSlice(r, tok*d, 1)
	k := randSlice(r, tok*d, 1)
	v := randSlice(r, tok*d, 1)

	const poison = float32(-777)
	o := make([]float32, tok*ldo)
	for i := range o {
		o[i] = poison
	}
	stats := make([]float32, 2*tok)
	FlashAttnFwd(o, ldo, q, k, v, tok, d, scale, stats)

	oRef := make([]float32, tok*d)
	refAttnFwd(oRef, q, k, v, tok, d, scale)
	for i := 0; i < tok; i++ {
		row := o[i*ldo : i*ldo+d]
		if idx, ok := relClose(row, oRef[i*d:(i+1)*d], flashFwdTol); !ok {
			t.Fatalf("strided forward row %d diverged at %d", i, idx)
		}
		for j := d; j < ldo; j++ {
			if o[i*ldo+j] != poison {
				t.Fatalf("forward touched gutter at row %d col %d", i, j)
			}
		}
	}

	do_ := make([]float32, tok*ldo)
	for i := 0; i < tok; i++ {
		copy(do_[i*ldo:i*ldo+d], randSlice(r, d, 1))
	}
	grads := make([]float32, tok*ldqkv)
	for i := range grads {
		grads[i] = poison
	}
	FlashAttnBwd(grads, grads[d:], grads[2*d:], ldqkv, do_, o, ldo, q, k, v, tok, d, scale, stats)
	for i := 0; i < tok; i++ {
		for j := 3 * d; j < ldqkv; j++ {
			if grads[i*ldqkv+j] != poison {
				t.Fatalf("backward touched gutter at row %d col %d", i, j)
			}
		}
	}
}

// TestFlashAttnPanics pins the named validation panics.
func TestFlashAttnPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	q := make([]float32, 8)
	o := make([]float32, 8)
	stats := make([]float32, 4)
	expectPanic("zero shape", func() { FlashAttnFwd(o, 4, q, q, q, 0, 4, 1, stats) })
	expectPanic("short qkv", func() { FlashAttnFwd(o, 4, q[:3], q, q, 2, 4, 1, stats) })
	expectPanic("short out", func() { FlashAttnFwd(o[:5], 4, q, q, q, 2, 4, 1, stats) })
	expectPanic("short stats", func() { FlashAttnFwd(o, 4, q, q, q, 2, 4, 1, stats[:3]) })
	expectPanic("bwd short grad", func() {
		FlashAttnBwd(o[:5], o, o, 4, o, o, 4, q, q, q, 2, 4, 1, stats)
	})
}

// FuzzFlashAttn fuzzes shapes and data seeds through fused-vs-
// reference forward and backward agreement, extending the GEMM
// property-fuzz pattern to the fused attention path.
func FuzzFlashAttn(f *testing.F) {
	f.Add(uint16(5), uint8(4), int64(1))
	f.Add(uint16(49), uint8(16), int64(2))
	f.Add(uint16(130), uint8(7), int64(3))
	f.Fuzz(func(t *testing.T, tokRaw uint16, dRaw uint8, seed int64) {
		tok := int(tokRaw)%150 + 1
		d := int(dRaw)%72 + 1
		scale := float32(1 / math.Sqrt(float64(d)))
		r := rand.New(rand.NewSource(seed))
		q := randSlice(r, tok*d, 1)
		k := randSlice(r, tok*d, 1)
		v := randSlice(r, tok*d, 1)
		do_ := randSlice(r, tok*d, 1)

		oRef := make([]float32, tok*d)
		p := refAttnFwd(oRef, q, k, v, tok, d, scale)
		o := make([]float32, tok*d)
		stats := make([]float32, 2*tok)
		FlashAttnFwd(o, d, q, k, v, tok, d, scale, stats)
		if i, ok := relClose(o, oRef, flashFwdTol); !ok {
			t.Fatalf("T=%d d=%d: forward diverged at %d: %v vs %v", tok, d, i, o[i], oRef[i])
		}

		dqRef := make([]float32, tok*d)
		dkRef := make([]float32, tok*d)
		dvRef := make([]float32, tok*d)
		refAttnBwd(dqRef, dkRef, dvRef, do_, p, q, k, v, tok, d, scale)
		dq := make([]float32, tok*d)
		dk := make([]float32, tok*d)
		dv := make([]float32, tok*d)
		FlashAttnBwd(dq, dk, dv, d, do_, o, d, q, k, v, tok, d, scale, stats)
		for _, pair := range []struct {
			name      string
			got, want []float32
		}{{"dQ", dq, dqRef}, {"dK", dk, dkRef}, {"dV", dv, dvRef}} {
			if i, ok := relClose(pair.got, pair.want, flashBwdTol); !ok {
				t.Fatalf("T=%d d=%d: %s diverged at %d: %v vs %v",
					tok, d, pair.name, i, pair.got[i], pair.want[i])
			}
		}
	})
}

// TestFastExp holds the polynomial float32 exponential to math.Exp
// over the full softmax argument range plus the denormal/overflow
// boundaries.
// TestExpScaledSub checks the batched exponential (vectorized on
// AVX2 builds, scalar elsewhere) against scalar expf32 at 4e-6
// relative accuracy across lengths that exercise the 8-lane body and
// the tail, and pins the flush-to-zero cutoff.
func TestExpScaledSub(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 3, 7, 8, 9, 16, 31, 128} {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(r.Float64()*60 - 50) // exp args in [-56, 16) after scale/shift
		}
		dst := make([]float32, n)
		const scale, m = 0.73, 5.5
		expScaledSub(dst, src, scale, m)
		for i, sv := range src {
			want := expf32(scale*sv - m)
			diff := math.Abs(float64(dst[i] - want))
			if diff > 4e-6*math.Abs(float64(want)) {
				t.Fatalf("n=%d expScaledSub[%d](%v) = %v, scalar %v", n, i, sv, dst[i], want)
			}
		}
	}
	// Below the cutoff both paths flush to exact zero.
	src := make([]float32, 16)
	for i := range src {
		src[i] = -200
	}
	dst := make([]float32, 16)
	expScaledSub(dst, src, 1, 0)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("expScaledSub(-200)[%d] = %v, want exact 0", i, v)
		}
	}
}

// TestMaxFloat32 checks the vectorized max against a scalar scan,
// including max-in-tail and negative-only inputs.
func TestMaxFloat32(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 7, 8, 9, 15, 16, 17, 100} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64()) - 3
		}
		want := x[0]
		for _, v := range x[1:] {
			if v > want {
				want = v
			}
		}
		if got := maxFloat32(x); got != want {
			t.Fatalf("maxFloat32(n=%d) = %v, want %v", n, got, want)
		}
	}
}

func TestFastExp(t *testing.T) {
	for x := -87.0; x <= 2.0; x += 0.0037 {
		got := float64(expf32(float32(x)))
		want := math.Exp(x)
		if math.Abs(got-want) > 4e-6*want {
			t.Fatalf("expf32(%v) = %v, want %v", x, got, want)
		}
	}
	// Below the normal-range cutoff the result flushes to zero (the
	// subnormal tail contributes nothing to a softmax sum).
	if got := expf32(-87.4); got != 0 {
		t.Fatalf("expf32(-87.4) = %v, want flushed 0", got)
	}
	if got := expf32(float32(math.Inf(-1))); got != 0 {
		t.Fatalf("expf32(-Inf) = %v, want 0", got)
	}
	if got := expf32(-1000); got != 0 {
		t.Fatalf("expf32(-1000) = %v, want 0", got)
	}
	if got := expf32(0); got != 1 {
		t.Fatalf("expf32(0) = %v, want 1", got)
	}
	if got := expf32(200); !math.IsInf(float64(got), 1) {
		t.Fatalf("expf32(200) = %v, want +Inf", got)
	}
	if got := expf32(float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Fatalf("expf32(NaN) = %v, want NaN", got)
	}
}

// TestSoftmaxScaledBitwise pins the scale-fold contract: folding the
// multiply into the softmax pass is bitwise identical to scaling the
// input in place first (forward), and folding the gradient scale into
// the write pass is bitwise identical to scaling dx afterwards
// (backward). This is what lets the materialized attention path drop
// its separate O(T²) scale sweeps without changing a single bit.
func TestSoftmaxScaledBitwise(t *testing.T) {
	rows, cols := 17, 39
	scale := float32(1 / math.Sqrt(7.0))
	r := rand.New(rand.NewSource(3))
	x := randSlice(r, rows*cols, 2)
	dy := randSlice(r, rows*cols, 1)

	// Old ordering: scale in place, then plain softmax.
	scaled := append([]float32(nil), x...)
	for i := range scaled {
		scaled[i] *= scale
	}
	want := make([]float32, rows*cols)
	Softmax(want, scaled, rows, cols)
	got := make([]float32, rows*cols)
	SoftmaxScaled(got, x, rows, cols, scale)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SoftmaxScaled not bitwise at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Backward: plain backward then scale dx, vs folded.
	wantDx := make([]float32, rows*cols)
	SoftmaxBackward(wantDx, want, dy, rows, cols)
	for i := range wantDx {
		wantDx[i] *= scale
	}
	gotDx := make([]float32, rows*cols)
	SoftmaxBackwardScaled(gotDx, want, dy, rows, cols, scale)
	for i := range gotDx {
		if gotDx[i] != wantDx[i] {
			t.Fatalf("SoftmaxBackwardScaled not bitwise at %d: %v vs %v", i, gotDx[i], wantDx[i])
		}
	}
}

// TestSoftmaxValidation pins the named panics added to the softmax
// family: undersized buffers (SoftmaxBackward previously had no check
// at all) and degenerate shapes (softmaxRow previously read x[0] of a
// zero-column row and died with a raw index panic).
func TestSoftmaxValidation(t *testing.T) {
	expectTensorPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: expected panic", name)
			}
			msg, ok := r.(string)
			if !ok || len(msg) < 7 || msg[:7] != "tensor:" {
				t.Fatalf("%s: panic %v not tensor:-prefixed", name, r)
			}
		}()
		fn()
	}
	buf := make([]float32, 12)
	expectTensorPanic("SoftmaxBackward short dx", func() {
		SoftmaxBackward(buf[:11], buf, buf, 3, 4)
	})
	expectTensorPanic("SoftmaxBackward short y", func() {
		SoftmaxBackward(buf, buf[:11], buf, 3, 4)
	})
	expectTensorPanic("Softmax zero cols", func() {
		Softmax(buf, buf, 3, 0)
	})
	expectTensorPanic("Softmax negative rows", func() {
		Softmax(buf, buf, -1, 4)
	})
	expectTensorPanic("SoftmaxBackward zero cols", func() {
		SoftmaxBackward(buf, buf, buf, 2, 0)
	})
	// rows == 0 stays a no-op for any cols, as before.
	Softmax(nil, nil, 0, 0)
	SoftmaxBackward(nil, nil, nil, 0, 5)
}
