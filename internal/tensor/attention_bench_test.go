package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// attnCoreFlops is the multiply-add work of the attention core
// (S = Q·Kᵀ and O = P·V) for one head; the backward adds the four
// gradient GEMMs for 12·t²·d total. Both variants are credited the
// same nominal count, so the reported GFLOP/s ratio is exactly the
// speedup (the fused path's tile recompute is not billed).
func attnCoreFlops(t, d int) float64 { return 4 * float64(t) * float64(t) * float64(d) }

// BenchmarkFlashAttnGEMM compares the fused tiled kernels against the
// materialized reference (blocked GEMM + scale-folded softmax ops) on
// single-head attention at ViT sequence lengths: T=197 is ViT-Base at
// 224²/16² (+CLS), T=784 is the 224²/8² high-resolution grid the
// paper's Swin comparison scales toward. The fused path's advantage
// is fewer memory passes — it never writes the (T×T) scores to memory
// — so it grows with T.
func BenchmarkFlashAttnGEMM(b *testing.B) {
	shapes := []struct{ t, d int }{
		{197, 64},
		{784, 64},
	}
	for _, s := range shapes {
		t, d := s.t, s.d
		r := rand.New(rand.NewSource(7))
		q := randSlice(r, t*d, 1)
		k := randSlice(r, t*d, 1)
		v := randSlice(r, t*d, 1)
		do := randSlice(r, t*d, 1)
		o := make([]float32, t*d)
		stats := make([]float32, 2*t)
		scale := float32(0.125)
		name := fmt.Sprintf("T%dD%d", t, d)

		b.Run("Fused/Fwd/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FlashAttnFwd(o, d, q, k, v, t, d, scale, stats)
			}
			b.ReportMetric(attnCoreFlops(t, d)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		b.Run("Ref/Fwd/"+name, func(b *testing.B) {
			p := make([]float32, t*t)
			for i := 0; i < b.N; i++ {
				MatMulTB(p, q, k, t, d, t, false)
				SoftmaxScaled(p, p, t, t, scale)
				MatMul(o, p, v, t, t, d, false)
			}
			b.ReportMetric(attnCoreFlops(t, d)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})

		dq := make([]float32, t*d)
		dk := make([]float32, t*d)
		dv := make([]float32, t*d)
		b.Run("Fused/FwdBwd/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FlashAttnFwd(o, d, q, k, v, t, d, scale, stats)
				FlashAttnBwd(dq, dk, dv, d, do, o, d, q, k, v, t, d, scale, stats)
			}
			b.ReportMetric(3*attnCoreFlops(t, d)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		b.Run("Ref/FwdBwd/"+name, func(b *testing.B) {
			p := make([]float32, t*t)
			dp := make([]float32, t*t)
			ds := make([]float32, t*t)
			for i := 0; i < b.N; i++ {
				MatMulTB(p, q, k, t, d, t, false)
				SoftmaxScaled(p, p, t, t, scale)
				MatMul(o, p, v, t, t, d, false)
				MatMulTA(dv, p, do, t, t, d, false)
				MatMulTB(dp, do, v, t, d, t, false)
				SoftmaxBackwardScaled(ds, p, dp, t, t, scale)
				MatMul(dq, ds, k, t, t, d, false)
				MatMulTA(dk, ds, q, t, t, d, false)
			}
			b.ReportMetric(3*attnCoreFlops(t, d)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkBF16GEMM measures the bf16-input GEMM (widen-in-pack)
// against the fp32 GEMM plus an explicit whole-matrix widen — the
// round trip the serving path performed before the packed mode.
func BenchmarkBF16GEMM(b *testing.B) {
	const m, k, n = 197, 768, 768
	r := rand.New(rand.NewSource(9))
	a := randSlice(r, m*k, 1)
	w32 := randSlice(r, k*n, 1)
	w16 := make([]uint16, k*n)
	ToBF16(w16, w32)
	c := make([]float32, m*n)

	b.Run("Packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulBF16(c, a, w16, m, k, n, false)
		}
		b.ReportMetric(2*float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	b.Run("WidenThenFP32", func(b *testing.B) {
		wide := make([]float32, k*n)
		for i := 0; i < b.N; i++ {
			FromBF16(wide, w16)
			MatMul(c, a, wide, m, k, n, false)
		}
		b.ReportMetric(2*float64(m)*float64(k)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
}
