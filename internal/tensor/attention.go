package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Fused tiled attention (FlashAttention-style) on top of the packed
// GEMM micro-kernels.
//
// The materialized attention path forms the full (T×T) score matrix
// S = scale·Q·Kᵀ per head, softmaxes it, and multiplies by V — three
// O(T²) memory sweeps over a buffer that stops fitting in cache right
// where the paper's long-sequence ViT shapes live. The fused kernels
// below stream K/V in faBk-row tiles against faBq-row blocks of Q,
// maintain the softmax online (running row max m and exp-sum l, with
// an exp(mPrev−mNext) correction applied to the output accumulator
// whenever the max advances), and never materialize S or P: score
// tiles live in a (faBq×faBk) scratch tile and the exponentiated
// probabilities are written directly into the packed A-panel layout
// that the P·V micro-kernel consumes. The only per-row state that
// survives the forward pass is the (m, l) statistics pair — 2 floats
// per row instead of T — which is exactly what the backward pass needs
// to recompute any probability tile bitwise:
//
//	P[i][j] = exp(scale·S[i][j] − m_i) / l_i
//
// The backward kernel re-runs the S tiles (same packing, same
// micro-kernel, so the recomputation matches the forward tile
// bitwise), forms dP = dO·Vᵀ tile-wise, applies the softmax Jacobian
// dS = P∘(dP − D)·scale with D_i = Σ_j dO[i][j]·O[i][j], and
// accumulates the three gradient GEMMs (dQ += dS·K, dK += dSᵀ·Q,
// dV += Pᵀ·dO) per tile. The 1/√d scale is folded into the online
// max/exp pass — there is no separate O(T²) scaling sweep anywhere on
// the fused path.
//
// All tile products run through the same packed panels and mr×nr
// micro-kernel as the blocked GEMM driver (gemm.go): K and V are
// packed once per call into the B-panel layouts each product needs,
// Q/dO blocks and probability tiles into A-panels. Panels are
// zero-padded, so edge tiles of odd T or d cost only a few zero
// multiply-adds instead of a scalar cleanup path. Exponentials use the
// float32 polynomial expf32 (fastexp.go); the materialized reference
// path keeps float64 math.Exp, and the documented fused-vs-reference
// tolerance (see the property tests) covers both the exp swap and the
// deferred 1/l normalization.
const (
	// faBq is the Q-block height: a multiple of the micro-kernel's mr
	// so every interior panel boundary is kernel-aligned.
	faBq = 48
	// faBk is the K/V tile width: a multiple of nr, sized so one
	// (faBq×faBk) score tile plus the packed K/V panels it reads stay
	// L1/L2-resident.
	faBk = 128
)

// FlashAttnFwd computes one attention head O = softmax(scale·Q·Kᵀ)·V
// without materializing the (t×t) score matrix. q, k, v are contiguous
// (t×d) row-major; the output O is written as a (t×d) tile into o with
// row stride ldo (so a head's slice of a wider activation buffer can
// be the destination, as in nn). stats receives the per-row online
// softmax statistics — stats[2i] is the running max of the scaled
// scores of row i, stats[2i+1] the exp-sum — and must have length
// ≥ 2t; FlashAttnBwd consumes it to recompute probabilities exactly.
func FlashAttnFwd(o []float32, ldo int, q, k, v []float32, t, d int, scale float32, stats []float32) {
	checkFlashAttn("FlashAttnFwd", t, d, q, k, v)
	if ldo < d || len(o) < (t-1)*ldo+d {
		panic("tensor: FlashAttnFwd output buffer too small")
	}
	if len(stats) < 2*t {
		panic("tensor: FlashAttnFwd stats buffer too small")
	}
	tPadN := roundUp(t, nr)
	dPadN := roundUp(d, nr)
	bqCap := faBq
	if t < faBq {
		bqCap = roundUp(t, mr)
	}

	buf := getPack(&flashPool, d*tPadN+t*dPadN+bqCap*d+2*bqCap*faBk+bqCap*dPadN)
	sc := *buf
	next := func(n int) []float32 { s := sc[:n]; sc = sc[n:]; return s }
	kT := next(d * tPadN) // K in B-panel-T layout for S = Q·Kᵀ
	vN := next(t * dPadN) // V in per-tile B-panel-N layout for O += P·V
	qA := next(bqCap * d) // current Q block in A-panel layout
	pA := next(bqCap * faBk)
	sT := next(bqCap * faBk)
	acc := next(bqCap * dPadN)

	for jp := 0; jp*nr < t; jp++ {
		packBPanelT(kT[jp*d*nr:], k, d, d, 0, jp*nr, min(nr, t-jp*nr))
	}
	for j0 := 0; j0 < t; j0 += faBk {
		jw := min(faBk, t-j0)
		for jp := 0; jp*nr < dPadN; jp++ {
			packBPanelN(vN[j0*dPadN+jp*jw*nr:], v[j0*d:], jw, d, jp*nr, min(nr, d-jp*nr))
		}
	}

	var mRow [faBq]float32
	var lRow [faBq]float64
	var eRow [faBk]float32
	for i0 := 0; i0 < t; i0 += faBq {
		bq := min(faBq, t-i0)
		bqPad := roundUp(bq, mr)
		mPanels := bqPad / mr
		packABlockN(qA, q, i0, bq, 0, d, d)
		negInf := float32(math.Inf(-1))
		for r := 0; r < bq; r++ {
			mRow[r] = negInf
			lRow[r] = 0
		}
		clear(acc[:bqPad*dPadN])

		for j0 := 0; j0 < t; j0 += faBk {
			jw := min(faBk, t-j0)
			jwPadN := roundUp(jw, nr)
			clear(sT[:bqPad*faBk])
			for jp := 0; jp < jwPadN/nr; jp++ {
				bpanel := &kT[(j0/nr+jp)*d*nr]
				for ip := 0; ip < mPanels; ip++ {
					microKern(d, &qA[ip*mr*d], bpanel, &sT[ip*mr*faBk+jp*nr], faBk)
				}
			}
			// Online softmax over the tile: advance the row max, write
			// exp(scale·s − m) straight into P's packed A-panels, and
			// rescale the accumulator by exp(mPrev − mCur) when the max
			// moved. The scale multiply happens inside the vectorized
			// max and exp passes — no separate sweep. (Rounding is
			// monotone, so scale·max(s) = max(scale·s) for scale ≥ 0.)
			for r := 0; r < bq; r++ {
				srow := sT[r*faBk : r*faBk+jw]
				mPrev := mRow[r]
				mCur := mPrev
				if scale >= 0 {
					if c := scale * maxFloat32(srow); c > mCur {
						mCur = c
					}
				} else {
					for _, sv := range srow {
						if v := scale * sv; v > mCur {
							mCur = v
						}
					}
				}
				expScaledSub(eRow[:jw], srow, scale, mCur)
				pan := pA[(r/mr)*mr*jw:]
				rr := r % mr
				var rowSum float64
				for j, e := range eRow[:jw] {
					pan[j*mr+rr] = e
					rowSum += float64(e)
				}
				if mCur > mPrev {
					alpha := expf32(mPrev - mCur)
					lRow[r] = float64(alpha)*lRow[r] + rowSum
					mRow[r] = mCur
					//statgate:allow floateq — exact: alpha is expf32(0) == 1 when the running max did not move
					if alpha != 1 {
						arow := acc[r*dPadN : r*dPadN+d]
						for j := range arow {
							arow[j] *= alpha
						}
					}
				} else {
					lRow[r] += rowSum
				}
			}
			for r := bq; r < bqPad; r++ {
				pan := pA[(r/mr)*mr*jw:]
				rr := r % mr
				for j := 0; j < jw; j++ {
					pan[j*mr+rr] = 0
				}
			}
			for jp := 0; jp < dPadN/nr; jp++ {
				bpanel := &vN[j0*dPadN+jp*jw*nr]
				for ip := 0; ip < mPanels; ip++ {
					microKern(jw, &pA[ip*mr*jw], bpanel, &acc[ip*mr*dPadN+jp*nr], dPadN)
				}
			}
		}

		// Deferred normalization: one 1/l multiply per output element.
		for r := 0; r < bq; r++ {
			invL := 1 / float32(lRow[r])
			orow := o[(i0+r)*ldo : (i0+r)*ldo+d]
			arow := acc[r*dPadN:]
			for j := range orow {
				orow[j] = arow[j] * invL
			}
			stats[2*(i0+r)] = mRow[r]
			stats[2*(i0+r)+1] = float32(lRow[r])
		}
	}
	flashPool.Put(buf)
}

// FlashAttnBwd computes the gradients of FlashAttnFwd. dq, dk, dv are
// written (not accumulated) as (t×d) tiles with shared row stride
// ldqkv — in nn these are the three thirds of the fused QKV gradient.
// do_ (upstream ∂L/∂O) and o (the forward output) share row stride
// ldo. q, k, v are the contiguous (t×d) forward inputs and stats the
// statistics FlashAttnFwd produced; probability tiles are recomputed
// from them, so no O(t²) state is carried between the passes.
func FlashAttnBwd(dq, dk, dv []float32, ldqkv int, do_, o []float32, ldo int, q, k, v []float32, t, d int, scale float32, stats []float32) {
	checkFlashAttn("FlashAttnBwd", t, d, q, k, v)
	if ldqkv < d || len(dq) < (t-1)*ldqkv+d || len(dk) < (t-1)*ldqkv+d || len(dv) < (t-1)*ldqkv+d {
		panic("tensor: FlashAttnBwd gradient buffer too small")
	}
	if ldo < d || len(do_) < (t-1)*ldo+d || len(o) < (t-1)*ldo+d {
		panic("tensor: FlashAttnBwd dO/O buffer too small")
	}
	if len(stats) < 2*t {
		panic("tensor: FlashAttnBwd stats buffer too small")
	}
	tPadN := roundUp(t, nr)
	dPadN := roundUp(d, nr)
	bqCap := faBq
	if t < faBq {
		bqCap = roundUp(t, mr)
	}
	tPadMr := roundUp(t, mr)
	tAccRows := tPadMr + mr // micro-kernel row spill past a tile edge
	tileRowsPad := roundUp(min(faBk, t), mr)

	need := 2*d*tPadN + t*dPadN + 2*bqCap*d + 2*bqCap*dPadN +
		2*bqCap*faBk + 2*tileRowsPad*bqCap + bqCap*faBk +
		3*tAccRows*dPadN + t
	buf := getPack(&flashPool, need)
	sc := *buf
	next := func(n int) []float32 { s := sc[:n]; sc = sc[n:]; return s }
	kT := next(d * tPadN)      // K panels for recomputing S
	vT := next(d * tPadN)      // V panels for dP = dO·Vᵀ
	kN := next(t * dPadN)      // K panels for dQ += dS·K
	qA := next(bqCap * d)      // Q block A-panels (S recompute)
	doA := next(bqCap * d)     // dO block A-panels (dP)
	qB := next(bqCap * dPadN)  // Q block B-panels (dK += dSᵀ·Q)
	doB := next(bqCap * dPadN) // dO block B-panels (dV += Pᵀ·dO)
	sT := next(bqCap * faBk)
	dpT := next(bqCap * faBk)
	pTA := next(tileRowsPad * bqCap)
	dsTA := next(tileRowsPad * bqCap)
	dsA := next(bqCap * faBk)
	dqAcc := next(tAccRows * dPadN)
	dkAcc := next(tAccRows * dPadN)
	dvAcc := next(tAccRows * dPadN)
	dVec := next(t) // D_i = Σ_j dO[i][j]·O[i][j]

	for jp := 0; jp*nr < t; jp++ {
		jw := min(nr, t-jp*nr)
		packBPanelT(kT[jp*d*nr:], k, d, d, 0, jp*nr, jw)
		packBPanelT(vT[jp*d*nr:], v, d, d, 0, jp*nr, jw)
	}
	for j0 := 0; j0 < t; j0 += faBk {
		jw := min(faBk, t-j0)
		for jp := 0; jp*nr < dPadN; jp++ {
			packBPanelN(kN[j0*dPadN+jp*jw*nr:], k[j0*d:], jw, d, jp*nr, min(nr, d-jp*nr))
		}
	}
	for i := 0; i < t; i++ {
		dVec[i] = dot(do_[i*ldo:i*ldo+d], o[i*ldo:i*ldo+d])
	}
	clear(dqAcc)
	clear(dkAcc)
	clear(dvAcc)

	var eRow [faBk]float32
	for i0 := 0; i0 < t; i0 += faBq {
		bq := min(faBq, t-i0)
		bqPad := roundUp(bq, mr)
		mPanels := bqPad / mr
		packABlockN(qA, q, i0, bq, 0, d, d)
		packABlockN(doA, do_, i0, bq, 0, d, ldo)
		for jp := 0; jp*nr < dPadN; jp++ {
			jwd := min(nr, d-jp*nr)
			packBPanelN(qB[jp*bq*nr:], q[i0*d:], bq, d, jp*nr, jwd)
			packBPanelN(doB[jp*bq*nr:], do_[i0*ldo:], bq, ldo, jp*nr, jwd)
		}

		for j0 := 0; j0 < t; j0 += faBk {
			jw := min(faBk, t-j0)
			jwPadN := roundUp(jw, nr)
			jwPadMr := roundUp(jw, mr)
			clear(sT[:bqPad*faBk])
			clear(dpT[:bqPad*faBk])
			for jp := 0; jp < jwPadN/nr; jp++ {
				kPanel := &kT[(j0/nr+jp)*d*nr]
				vPanel := &vT[(j0/nr+jp)*d*nr]
				for ip := 0; ip < mPanels; ip++ {
					microKern(d, &qA[ip*mr*d], kPanel, &sT[ip*mr*faBk+jp*nr], faBk)
					microKern(d, &doA[ip*mr*d], vPanel, &dpT[ip*mr*faBk+jp*nr], faBk)
				}
			}
			// Recompute P from the cached (m, l) statistics — the S
			// tile above is bitwise the forward tile (same packing,
			// same kernel) — and form dS = P∘(dP − D)·scale in the
			// same pass, scattering both straight into the packed
			// A-panel layouts their gradient products consume: P into
			// transposed panels (dV += Pᵀ·dO), dS into both normal
			// (dQ += dS·K) and transposed (dK += dSᵀ·Q) panels. No
			// row-major P/dS tile exists, and no separate packing pass
			// re-reads the tile.
			for r := 0; r < bq; r++ {
				i := i0 + r
				mi := stats[2*i]
				invL := 1 / stats[2*i+1]
				di := dVec[i]
				expScaledSub(eRow[:jw], sT[r*faBk:r*faBk+jw], scale, mi)
				dprow := dpT[r*faBk:]
				rr := r % mr
				dsPan := dsA[(r/mr)*mr*jw:]
				// Walk the transposed panels in mr-wide runs so the
				// pTA/dsTA writes for one run are contiguous.
				for jp := 0; jp*mr < jw; jp++ {
					base := jp*mr*bq + r*mr
					jn := min(mr, jw-jp*mr)
					for jj := 0; jj < jn; jj++ {
						j := jp*mr + jj
						p := eRow[j] * invL
						ds := p * (dprow[j] - di) * scale
						pTA[base+jj] = p
						dsTA[base+jj] = ds
						dsPan[j*mr+rr] = ds
					}
				}
			}
			// Zero the panel padding the packing routines used to
			// provide: ragged Q-block rows in dsA, ragged tile columns
			// in pTA/dsTA.
			for r := bq; r < bqPad; r++ {
				dsPan := dsA[(r/mr)*mr*jw:]
				rr := r % mr
				for j := 0; j < jw; j++ {
					dsPan[j*mr+rr] = 0
				}
			}
			for j := jw; j < jwPadMr; j++ {
				base := (j/mr)*mr*bq + j%mr
				for kk := 0; kk < bq; kk++ {
					pTA[base+kk*mr] = 0
					dsTA[base+kk*mr] = 0
				}
			}

			for jp := 0; jp < dPadN/nr; jp++ {
				// dQ_blk += dS·K_tile
				bpanel := &kN[j0*dPadN+jp*jw*nr]
				for ip := 0; ip < mPanels; ip++ {
					microKern(jw, &dsA[ip*mr*jw], bpanel, &dqAcc[(i0+ip*mr)*dPadN+jp*nr], dPadN)
				}
				// dV_tile += Pᵀ·dO_blk and dK_tile += dSᵀ·Q_blk
				for ip := 0; ip < jwPadMr/mr; ip++ {
					microKern(bq, &pTA[ip*mr*bq], &doB[jp*bq*nr], &dvAcc[(j0+ip*mr)*dPadN+jp*nr], dPadN)
					microKern(bq, &dsTA[ip*mr*bq], &qB[jp*bq*nr], &dkAcc[(j0+ip*mr)*dPadN+jp*nr], dPadN)
				}
			}
		}
	}

	for i := 0; i < t; i++ {
		copy(dq[i*ldqkv:i*ldqkv+d], dqAcc[i*dPadN:i*dPadN+d])
		copy(dk[i*ldqkv:i*ldqkv+d], dkAcc[i*dPadN:i*dPadN+d])
		copy(dv[i*ldqkv:i*ldqkv+d], dvAcc[i*dPadN:i*dPadN+d])
	}
	flashPool.Put(buf)
}

// flashPool recycles the fused-attention packing/accumulator scratch
// across calls and heads, like the GEMM packing pools.
var flashPool = sync.Pool{New: func() any { return new([]float32) }}

func checkFlashAttn(name string, t, d int, q, k, v []float32) {
	if t <= 0 || d <= 0 {
		panic(fmt.Sprintf("tensor: %s invalid shape t=%d d=%d", name, t, d))
	}
	if len(q) < t*d || len(k) < t*d || len(v) < t*d {
		panic("tensor: " + name + " q/k/v buffer too small")
	}
}

func roundUp(x, m int) int { return (x + m - 1) / m * m }
