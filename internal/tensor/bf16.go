package tensor

import "math"

// bfloat16 conversion kernels for the mixed-precision execution path:
// the paper trains with AMP-style bf16 on MI250X (bf16 math and
// communication, fp32 master weights), and internal/dist's bf16 wire
// mode moves gradient/parameter payloads as []uint16 produced here.
//
// A bf16 value is the high 16 bits of the IEEE-754 float32 encoding:
// same sign and 8-bit exponent, mantissa truncated from 23 to 7 bits.
// ToBF16 rounds to nearest-even (the hardware rounding mode on MI250X
// and every other bf16 unit); FromBF16 widens exactly by reattaching 16
// zero mantissa bits. On amd64 with AVX2 the vector bodies run in
// assembly (bf16_amd64.s), mirroring the CPUID-gated GEMM micro-kernel
// pattern; elsewhere (or with -tags purego) the portable scalar loops
// below run.

// BF16FromF32 converts one float32 to bf16 with round-nearest-even.
// NaNs are quieted (payload truncated, quiet bit forced) so a NaN can
// never round into an infinity; ±Inf, ±0 and subnormals pass through
// the rounding identity unchanged.
func BF16FromF32(x float32) uint16 {
	b := math.Float32bits(x)
	if b&0x7fffffff > 0x7f800000 { // NaN: keep sign/exponent, force quiet bit
		return uint16(b>>16) | 0x0040
	}
	// Round-nearest-even on the truncated 16 bits: add 0x7fff plus the
	// parity of the result's lsb, so exact ties round to even.
	return uint16((b + 0x7fff + (b>>16)&1) >> 16)
}

// F32FromBF16 widens one bf16 value to float32 (exact).
func F32FromBF16(x uint16) float32 {
	return math.Float32frombits(uint32(x) << 16)
}

// ToBF16 converts src to bf16 with round-nearest-even into dst.
// len(dst) must equal len(src).
func ToBF16(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: ToBF16 length mismatch")
	}
	toBF16(dst, src)
}

// FromBF16 widens bf16 values back to float32 into dst (exact).
// len(dst) must equal len(src).
func FromBF16(dst []float32, src []uint16) {
	if len(dst) != len(src) {
		panic("tensor: FromBF16 length mismatch")
	}
	fromBF16(dst, src)
}

// RoundBF16 rounds src elementwise to the nearest bf16-representable
// value, storing the widened result in dst (dst may alias src) — the
// "bf16 working copy" a mixed-precision optimizer derives from its fp32
// master weights. Rounding an already bf16-valued float32 is exact, so
// RoundBF16 is idempotent. The conversion runs through the dispatched
// vector kernels in stack-buffer blocks: this sits on the per-step
// optimizer path.
func RoundBF16(dst, src []float32) {
	checkLen2(dst, src)
	var block [512]uint16
	for off := 0; off < len(src); off += len(block) {
		end := off + len(block)
		if end > len(src) {
			end = len(src)
		}
		w := block[:end-off]
		toBF16(w, src[off:end])
		fromBF16(dst[off:end], w)
	}
}

// toBF16Go and fromBF16Go are the portable scalar loops — the reference
// the amd64 assembly is held to bit-for-bit by the property tests.
func toBF16Go(dst []uint16, src []float32) {
	for i, v := range src {
		dst[i] = BF16FromF32(v)
	}
}

func fromBF16Go(dst []float32, src []uint16) {
	for i, v := range src {
		dst[i] = F32FromBF16(v)
	}
}
