package tensor_test

import (
	"math"
	"testing"

	"repro/internal/mae"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/vit"
)

// liveSeedValues harvests float32 values from a real training step of a
// tiny MAE/ViT — weights after init and gradients after one backward —
// so the fuzz corpus starts from the magnitude distribution the bf16
// wire mode actually carries, not just synthetic bit patterns.
func liveSeedValues() []float32 {
	enc := vit.Config{Name: "fuzz-tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	cfg := mae.Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75}
	r := rng.New(41)
	m := mae.New(cfg, r)
	imgs := make([]float32, 4*12*12*3)
	r.FillUniform(imgs, 0, 1)
	m.Step(imgs, 4)
	var vals []float32
	for _, p := range m.Params() {
		if len(p.Grad.Data) > 0 {
			vals = append(vals, p.Grad.Data[0], p.Grad.Data[len(p.Grad.Data)/2])
		}
		if len(p.Value.Data) > 0 {
			vals = append(vals, p.Value.Data[0])
		}
		if len(vals) >= 48 {
			break
		}
	}
	return vals
}

// FuzzBF16RoundTrip fuzzes single float32 values through the bf16
// conversion pair, checking the invariants the wire format guarantees:
// NaN stays NaN, ±Inf and ±0 are exact, finite values round within half
// a bf16 ULP, a second round trip is a fixed point, and the dispatched
// vector kernel (AVX2 assembly where available) agrees with the scalar
// conversion bit for bit.
func FuzzBF16RoundTrip(f *testing.F) {
	for _, v := range liveSeedValues() {
		f.Add(v)
	}
	for _, v := range []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 1.5,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.MaxFloat32, -math.MaxFloat32,
		math.SmallestNonzeroFloat32,
		math.Float32frombits(0x00008000), // bf16 subnormal tie
		math.Float32frombits(0x3f808000), // normal tie, even target
		math.Float32frombits(0x3f818000), // normal tie, odd target
		math.Float32frombits(0x7f7fffff), // largest finite → rounds to +Inf
	} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		b := tensor.BF16FromF32(x)
		y := tensor.F32FromBF16(b)
		switch {
		case x != x: // NaN in → NaN out
			if y == y {
				t.Fatalf("NaN 0x%08x converted to finite %v (bf16 0x%04x)", math.Float32bits(x), y, b)
			}
		case math.IsInf(float64(x), 0), x == 0:
			if y != x || math.Signbit(float64(y)) != math.Signbit(float64(x)) {
				t.Fatalf("special %v round-tripped to %v", x, y)
			}
		case math.IsInf(float64(y), 0):
			// Finite values at or above the midpoint between the
			// largest bf16 finite and infinity overflow under RNE.
			if math.Abs(float64(x)) < float64(math.Float32frombits(0x7f7f8000)) {
				t.Fatalf("x=%v overflowed to %v below the rounding midpoint", x, y)
			}
		default:
			// Half a bf16 ULP: 2⁻⁸ relative for normals, an absolute
			// bound of half the smallest bf16 subnormal near zero.
			err := math.Abs(float64(y) - float64(x))
			if err > math.Abs(float64(x))/256 && err > 4.6e-41 {
				t.Fatalf("x=%v → %v: error %v beyond half ULP", x, y, err)
			}
		}
		// A second trip is a fixed point (the quiet bit is already set).
		if b2 := tensor.BF16FromF32(y); b2 != b {
			t.Fatalf("x=%v: re-round 0x%04x != 0x%04x", x, b2, b)
		}
		// Vector path ≡ scalar path, across the 8-lane block boundary.
		src := make([]float32, 11)
		for i := range src {
			src[i] = x
		}
		dst := make([]uint16, len(src))
		tensor.ToBF16(dst, src)
		for i, d := range dst {
			if d != b {
				t.Fatalf("x=%v: vector lane %d gives 0x%04x, scalar 0x%04x", x, i, d, b)
			}
		}
		wide := make([]float32, len(dst))
		tensor.FromBF16(wide, dst)
		for i, w := range wide {
			if math.Float32bits(w) != math.Float32bits(y) {
				t.Fatalf("x=%v: widen lane %d gives bits 0x%08x, scalar 0x%08x",
					x, i, math.Float32bits(w), math.Float32bits(y))
			}
		}
	})
}
