//go:build amd64 && !purego

package tensor

import "repro/internal/hw"

// kern6x16 is the AVX2+FMA micro-kernel (gemm_kernel_amd64.s): twelve
// YMM accumulators hold the 6×16 C tile, each K step broadcasts six A
// values against two 8-lane B vectors. It always accumulates into C.
//
//go:noescape
func kern6x16(kc int, ap, bp, cp *float32, ldc int)

// haveFMA reports whether the CPU and OS support AVX2 and FMA (and the
// OS saves YMM state), gating the assembly micro-kernel. The probe
// lives in hw.Detect so the kernel dispatch and the calibration
// harness read one shared feature record instead of scattering CPUID
// checks per package.
var haveFMA = hw.Detect().SIMD()

// haveFastKernel gates the blocked-and-packed GEMM path: without the
// SIMD micro-kernel the packing overhead is pure loss and the
// dispatchers stay on the streaming kernels.
var haveFastKernel = haveFMA

// microKern dispatches to the assembly kernel when the CPU supports it.
func microKern(kc int, ap, bp, cp *float32, ldc int) {
	if haveFMA {
		kern6x16(kc, ap, bp, cp, ldc)
		return
	}
	kern6x16go(kc, ap, bp, cp, ldc)
}
