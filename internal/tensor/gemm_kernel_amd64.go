//go:build amd64 && !purego

package tensor

// kern6x16 is the AVX2+FMA micro-kernel (gemm_kernel_amd64.s): twelve
// YMM accumulators hold the 6×16 C tile, each K step broadcasts six A
// values against two 8-lane B vectors. It always accumulates into C.
//
//go:noescape
func kern6x16(kc int, ap, bp, cp *float32, ldc int)

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// haveFMA reports whether the CPU and OS support AVX2 and FMA (and the
// OS saves YMM state), gating the assembly micro-kernel.
var haveFMA = detectFMA()

// haveFastKernel gates the blocked-and-packed GEMM path: without the
// SIMD micro-kernel the packing overhead is pure loss and the
// dispatchers stay on the streaming kernels.
var haveFastKernel = haveFMA

func detectFMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// microKern dispatches to the assembly kernel when the CPU supports it.
func microKern(kc int, ap, bp, cp *float32, ldc int) {
	if haveFMA {
		kern6x16(kc, ap, bp, cp, ldc)
		return
	}
	kern6x16go(kc, ap, bp, cp, ldc)
}
