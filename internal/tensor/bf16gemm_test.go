package tensor_test

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The bf16-input GEMM contract is exact, not approximate: widening
// bf16 to float32 is lossless and happens inside the pack stage, so
// MatMulBF16 must equal MatMul over the pre-widened weights
// bit-for-bit on every build — the assembly and purego kernels take
// the same branch on both sides of the comparison. That equality is
// what keeps the serve bf16 equivalence tests bitwise green after the
// serving stack switched its weight GEMMs to the 2-byte encoding.

func widen(b []uint16) []float32 {
	w := make([]float32, len(b))
	tensor.FromBF16(w, b)
	return w
}

func randBF16(r *rand.Rand, n int) []uint16 {
	f := make([]float32, n)
	for i := range f {
		f[i] = float32(r.NormFloat64())
	}
	b := make([]uint16, n)
	tensor.ToBF16(b, f)
	return b
}

// TestMatMulBF16Bitwise covers both dispatch tiers (streaming small
// problems and the blocked/packed path) plus accumulation and edge
// shapes around the micro-kernel tile sizes.
func TestMatMulBF16Bitwise(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {6, 16, 16}, {13, 31, 17},
		{48, 64, 48},   // blocked path
		{50, 100, 70},  // blocked with every edge remainder
		{197, 768, 64}, // serving-like shape
	}
	r := rand.New(rand.NewSource(5))
	for _, sh := range shapes {
		m, k, n := sh.m, sh.k, sh.n
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		bw := randBF16(r, k*n)
		wb := widen(bw)
		for _, acc := range []bool{false, true} {
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			if acc {
				for i := range want {
					want[i] = float32(r.NormFloat64())
				}
				copy(got, want)
			}
			tensor.MatMul(want, a, wb, m, k, n, acc)
			tensor.MatMulBF16(got, a, bw, m, k, n, acc)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("m=%d k=%d n=%d acc=%v: bf16 GEMM not bitwise at %d: %v vs %v",
						m, k, n, acc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMatMulBF16Strided exercises the Ld entry point with a wide
// weight matrix addressed as a sub-block.
func TestMatMulBF16Strided(t *testing.T) {
	m, k, n := 9, 21, 11
	ldb := n + 6
	r := rand.New(rand.NewSource(9))
	a := make([]float32, m*k)
	for i := range a {
		a[i] = float32(r.NormFloat64())
	}
	bw := randBF16(r, k*ldb)
	wb := widen(bw)
	want := make([]float32, m*n)
	got := make([]float32, m*n)
	tensor.MatMulLd(want, a, wb, m, k, n, k, ldb, n, false)
	tensor.MatMulBF16Ld(got, a, bw, m, k, n, k, ldb, n, false)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("strided bf16 GEMM not bitwise at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// FuzzBF16Gemm fuzzes shapes and seeds through the bitwise
// bf16≡widened-fp32 invariant. Under the purego build tag the same
// corpus runs against the portable kernels, so both implementations
// are held to the identical contract (the CI race job runs this under
// -race as well).
func FuzzBF16Gemm(f *testing.F) {
	f.Add(uint8(3), uint8(4), uint8(5), int64(1), false)
	f.Add(uint8(40), uint8(64), uint8(40), int64(2), true) // blocked path
	f.Add(uint8(6), uint8(16), uint8(16), int64(3), false)
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint8, seed int64, acc bool) {
		m := int(mRaw)%64 + 1
		k := int(kRaw)%96 + 1
		n := int(nRaw)%64 + 1
		r := rand.New(rand.NewSource(seed))
		a := make([]float32, m*k)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		bw := randBF16(r, k*n)
		wb := widen(bw)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		if acc {
			for i := range want {
				want[i] = float32(r.NormFloat64())
			}
			copy(got, want)
		}
		tensor.MatMul(want, a, wb, m, k, n, acc)
		tensor.MatMulBF16(got, a, bw, m, k, n, acc)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d acc=%v: not bitwise at %d: %v vs %v",
					m, k, n, acc, i, got[i], want[i])
			}
		}
	})
}
