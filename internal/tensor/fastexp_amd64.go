//go:build amd64 && !purego

package tensor

// expScaledSubAVX2 computes dst[i] = exp(scale·src[i] − m) for the
// first n floats, n a multiple of 8 (fastexp_amd64.s).
//
//go:noescape
func expScaledSubAVX2(dst, src *float32, n int, scale, m float32)

// maxAVX2 returns max(src[0:n]) for n ≥ 8 (fastexp_amd64.s).
//
//go:noescape
func maxAVX2(src *float32, n int) float32

// expScaledSub writes dst[i] = exp(scale·src[i] − m) over the common
// length of dst and src. The AVX2 body and the scalar tail share the
// Cephes reduction (ulp-level agreement, see fastexp.go); lanes below
// the flush cutoff are exact zeros in both.
func expScaledSub(dst, src []float32, scale, m float32) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	v := 0
	if haveFMA && n >= 8 {
		v = n &^ 7
		expScaledSubAVX2(&dst[0], &src[0], v, scale, m)
	}
	for i := v; i < n; i++ {
		dst[i] = expf32(scale*src[i] - m)
	}
}

// maxFloat32 returns the maximum of x (len(x) ≥ 1), vectorized when
// the CPU supports it.
func maxFloat32(x []float32) float32 {
	n := len(x)
	v := 0
	m := x[0]
	if haveFMA && n >= 8 {
		v = n &^ 7
		m = maxAVX2(&x[0], v)
	}
	for i := v; i < n; i++ {
		if x[i] > m {
			m = x[i]
		}
	}
	return m
}
