//go:build !amd64 || purego

package tensor

func toBF16(dst []uint16, src []float32)   { toBF16Go(dst, src) }
func fromBF16(dst []float32, src []uint16) { fromBF16Go(dst, src) }
