//go:build amd64 && !purego

#include "textflag.h"

// func kern6x16(kc int, ap, bp, cp *float32, ldc int)
//
// AVX2+FMA micro-kernel for the packed GEMM. The 6×16 C tile lives in
// Y0–Y11 (two 8-lane vectors per row). Each K step loads one packed B
// row (Y12/Y13) and broadcasts the six packed A values against it, for
// 12 FMAs per 6 load-port µops — FMA-throughput bound on Haswell and
// newer. The tile is added into C at the end (the driver pre-zeroes C
// for the non-accumulating case).
//
// Packed layouts (see gemm.go): ap[kk*6 + r], bp[kk*16 + j].
TEXT ·kern6x16(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ cp+24(FP), DI
	MOVQ ldc+32(FP), DX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

	TESTQ CX, CX
	JLE   writeback

kloop:
	VMOVUPS (BX), Y12
	VMOVUPS 32(BX), Y13

	VBROADCASTSS (SI), Y14
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS  Y12, Y15, Y2
	VFMADD231PS  Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS  Y12, Y15, Y6
	VFMADD231PS  Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VFMADD231PS  Y12, Y14, Y8
	VFMADD231PS  Y13, Y14, Y9
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS  Y12, Y15, Y10
	VFMADD231PS  Y13, Y15, Y11

	ADDQ $24, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  kloop

writeback:
	SHLQ $2, DX // ldc in bytes

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y0, Y0
	VMOVUPS Y0, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y1, Y1
	VMOVUPS Y1, 32(DI)
	ADDQ    DX, DI

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y2, Y2
	VMOVUPS Y2, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y3, Y3
	VMOVUPS Y3, 32(DI)
	ADDQ    DX, DI

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y4, Y4
	VMOVUPS Y4, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y5, Y5
	VMOVUPS Y5, 32(DI)
	ADDQ    DX, DI

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y6, Y6
	VMOVUPS Y6, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y7, Y7
	VMOVUPS Y7, 32(DI)
	ADDQ    DX, DI

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y8, Y8
	VMOVUPS Y8, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y9, Y9
	VMOVUPS Y9, 32(DI)
	ADDQ    DX, DI

	VMOVUPS (DI), Y12
	VADDPS  Y12, Y10, Y10
	VMOVUPS Y10, (DI)
	VMOVUPS 32(DI), Y13
	VADDPS  Y13, Y11, Y11
	VMOVUPS Y11, 32(DI)

	VZEROUPPER
	RET
