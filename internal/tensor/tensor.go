// Package tensor implements the dense float32 tensor type and the
// parallel numeric kernels (GEMM variants, elementwise ops, reductions,
// softmax) that the neural-network layers are built on.
//
// Design notes:
//
//   - Tensors are always contiguous and row-major. Keeping a single
//     layout lets every kernel be a flat loop that the Go compiler can
//     bounds-check-eliminate and that internal/parallel can split.
//   - Kernels also exist as package-level functions over raw []float32
//     slices (MatMul, Softmax, ...), because the attention layers
//     operate on sub-slices of larger buffers and should not have to
//     allocate Tensor headers in inner loops.
//   - float32 is used throughout: the paper's workloads train in mixed
//     precision, and float32 halves memory traffic versus float64,
//     which dominates pure-Go GEMM performance.
//
// # Fused tiled attention
//
// FlashAttnFwd/FlashAttnBwd (attention.go) implement attention without
// materializing the (T×T) score matrix: K/V are streamed in tiles
// against blocks of Q, the softmax is maintained online (running row
// max and exp-sum, with an exp(mPrev−mNext) correction applied to the
// output accumulator when the max advances), the 1/√d scale is folded
// into the tile pass, and only the per-row (max, exp-sum) statistics
// survive the forward — O(T) state from which the backward recomputes
// any probability tile exactly. Score and probability tiles ride the
// same packed mr×nr micro-kernels as the blocked GEMM; exponentials
// use an 8-lane AVX2 polynomial (fastexp_amd64.s) with a scalar
// fallback sharing the same Cephes reduction (fastexp.go).
//
// # bf16 compute GEMM
//
// MatMulBF16 (bf16gemm.go) accepts the B operand as packed bfloat16
// and widens it inside the GEMM's panel-packing stage, so bf16-stored
// weights are multiplied without ever materializing an fp32 copy of
// the matrix. Widening is exact and the compute stage is shared with
// MatMul, making MatMulBF16 bit-for-bit equal to MatMul over
// pre-widened weights on every build.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Tensor is a dense, contiguous, row-major n-dimensional array of
// float32. The zero value is an empty tensor.
type Tensor struct {
	Data  []float32
	shape []int
}

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor with the given shape. The data is
// not copied; len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumEl returns the total number of elements.
func (t *Tensor) NumEl() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Reshape returns a tensor sharing t's data with a new shape of the
// same element count. A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: more than one -1 in Reshape")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v", t.shape, len(t.Data), shape))
	}
	return &Tensor{Data: t.Data, shape: shape}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t; shapes must have equal element
// counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, src.Data)
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// Row returns the i-th row of a rank-2 tensor as a slice view.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row on non-matrix")
	}
	n := t.shape[1]
	return t.Data[i*n : (i+1)*n]
}

// RandnInit fills the tensor with N(0, std²) values from r.
func (t *Tensor) RandnInit(r *rng.RNG, std float32) {
	r.FillNormal(t.Data, 0, std)
}

// UniformInit fills the tensor with Uniform[lo, hi) values from r.
func (t *Tensor) UniformInit(r *rng.RNG, lo, hi float32) {
	r.FillUniform(t.Data, lo, hi)
}

// XavierInit applies Glorot-uniform initialization for a (fanIn, fanOut)
// weight matrix.
func (t *Tensor) XavierInit(r *rng.RNG, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	r.FillUniform(t.Data, -limit, limit)
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading
// values), suitable for debugging.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}
