package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestElementwise(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	dst := make([]float32, 3)
	Add(dst, a, b)
	if dst[0] != 5 || dst[2] != 9 {
		t.Fatalf("Add=%v", dst)
	}
	Sub(dst, b, a)
	if dst[0] != 3 || dst[2] != 3 {
		t.Fatalf("Sub=%v", dst)
	}
	Mul(dst, a, b)
	if dst[1] != 10 {
		t.Fatalf("Mul=%v", dst)
	}
	Scale(dst, a, 2)
	if dst[2] != 6 {
		t.Fatalf("Scale=%v", dst)
	}
	AddInPlace(dst, a)
	if dst[2] != 9 {
		t.Fatalf("AddInPlace=%v", dst)
	}
}

func TestElementwiseLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Add(make([]float32, 2), make([]float32, 3), make([]float32, 3))
}

func TestReductions(t *testing.T) {
	a := []float32{1, -2, 3, -4}
	if Sum(a) != -2 {
		t.Fatalf("Sum=%v", Sum(a))
	}
	if Mean(a) != -0.5 {
		t.Fatalf("Mean=%v", Mean(a))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if math.Abs(L2Norm(a)-math.Sqrt(30)) > 1e-9 {
		t.Fatalf("L2Norm=%v", L2Norm(a))
	}
	i, v := MaxIdx(a)
	if i != 2 || v != 3 {
		t.Fatalf("MaxIdx=(%d,%v)", i, v)
	}
}

func TestMaxIdxTieBreak(t *testing.T) {
	i, _ := MaxIdx([]float32{5, 5, 5})
	if i != 0 {
		t.Fatalf("tie should return first index, got %d", i)
	}
}

func TestTopKIdx(t *testing.T) {
	a := []float32{0.1, 0.9, 0.5, 0.7}
	top := TopKIdx(a, 2)
	if top[0] != 1 || top[1] != 3 {
		t.Fatalf("TopKIdx=%v", top)
	}
	all := TopKIdx(a, 99)
	if len(all) != 4 {
		t.Fatalf("clamp failed: %v", all)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rng.New(1)
	const rows, cols = 37, 19
	x := make([]float32, rows*cols)
	r.FillNormal(x, 0, 5)
	y := make([]float32, rows*cols)
	Softmax(y, x, rows, cols)
	for rr := 0; rr < rows; rr++ {
		var s float64
		for c := 0; c < cols; c++ {
			v := y[rr*cols+c]
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v outside [0,1]", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", rr, s)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Large logits must not overflow.
	x := []float32{1000, 1001, 1002}
	y := make([]float32, 3)
	Softmax(y, x, 1, 3)
	for _, v := range y {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", y)
		}
	}
	if y[2] < y[1] || y[1] < y[0] {
		t.Fatalf("ordering lost: %v", y)
	}
}

func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	// Property: softmax(x) == softmax(x + c) for any constant shift.
	r := rng.New(2)
	f := func(shift int8) bool {
		const cols = 8
		x := make([]float32, cols)
		r.FillNormal(x, 0, 2)
		shifted := make([]float32, cols)
		for i := range x {
			shifted[i] = x[i] + float32(shift)
		}
		y1 := make([]float32, cols)
		y2 := make([]float32, cols)
		Softmax(y1, x, 1, cols)
		Softmax(y2, shifted, 1, cols)
		return approxEq(y1, y2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxBackwardNumeric(t *testing.T) {
	// Compare analytic softmax gradient against central differences.
	r := rng.New(3)
	const cols = 6
	x := make([]float32, cols)
	dy := make([]float32, cols)
	r.FillNormal(x, 0, 1)
	r.FillNormal(dy, 0, 1)

	y := make([]float32, cols)
	Softmax(y, x, 1, cols)
	dx := make([]float32, cols)
	SoftmaxBackward(dx, y, dy, 1, cols)

	const h = 1e-3
	for i := 0; i < cols; i++ {
		xp := append([]float32(nil), x...)
		xm := append([]float32(nil), x...)
		xp[i] += h
		xm[i] -= h
		yp := make([]float32, cols)
		ym := make([]float32, cols)
		Softmax(yp, xp, 1, cols)
		Softmax(ym, xm, 1, cols)
		var num float64
		for j := 0; j < cols; j++ {
			num += float64(dy[j]) * (float64(yp[j]) - float64(ym[j])) / (2 * h)
		}
		if math.Abs(num-float64(dx[i])) > 1e-2 {
			t.Fatalf("grad[%d]: numeric %v analytic %v", i, num, dx[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(4)
	const rows, cols = 11, 7
	a := make([]float32, rows*cols)
	r.FillNormal(a, 0, 1)
	tmp := make([]float32, rows*cols)
	back := make([]float32, rows*cols)
	Transpose(tmp, a, rows, cols)
	Transpose(back, tmp, cols, rows)
	if !approxEq(back, a, 0) {
		t.Fatal("transpose twice != identity")
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// <Gather(x), y> == <x, ScatterAdd(y)> — the adjoint identity that
	// the MAE backward pass relies on.
	r := rng.New(5)
	const n, cols = 10, 4
	idx := []int{7, 2, 5}
	x := make([]float32, n*cols)
	r.FillNormal(x, 0, 1)
	y := make([]float32, len(idx)*cols)
	r.FillNormal(y, 0, 1)

	gx := make([]float32, len(idx)*cols)
	GatherRows(gx, x, idx, cols)
	var lhs float64
	for i := range gx {
		lhs += float64(gx[i]) * float64(y[i])
	}

	sy := make([]float32, n*cols)
	ScatterRowsAdd(sy, y, idx, cols)
	var rhs float64
	for i := range x {
		rhs += float64(x[i]) * float64(sy[i])
	}
	if math.Abs(lhs-rhs) > 1e-4 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestGatherRows(t *testing.T) {
	src := []float32{0, 0, 1, 1, 2, 2, 3, 3}
	dst := make([]float32, 4)
	GatherRows(dst, src, []int{3, 1}, 2)
	if dst[0] != 3 || dst[1] != 3 || dst[2] != 1 || dst[3] != 1 {
		t.Fatalf("GatherRows=%v", dst)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	r := rng.New(1)
	const rows, cols = 512, 197
	x := make([]float32, rows*cols)
	y := make([]float32, rows*cols)
	r.FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(y, x, rows, cols)
	}
}
