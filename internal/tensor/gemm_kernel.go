package tensor

import "unsafe"

// kern6x16go is the portable micro-kernel over the packed panel layout:
// ap holds kc steps of mr A values (ap[kk*mr+r]), bp holds kc steps of
// nr B values (bp[kk*nr+j]), and the mr×nr product tile is accumulated
// into C rows of stride ldc. It always accumulates (C += A·B); the
// driver zeroes C up front when acc is false.
//
// The tile is computed as 2×8 sub-tiles with individually named
// accumulators — Go does not register-allocate arrays, so sixteen
// scalars are what keeps the inner loop out of memory. The packed
// panels are L1-resident, making the extra panel re-reads cheap. On
// amd64 with AVX2+FMA the assembly kernel in gemm_kernel_amd64.s
// replaces this function at runtime.
func kern6x16go(kc int, apf, bpf, cpf *float32, ldc int) {
	ap := unsafe.Slice(apf, kc*mr)
	bp := unsafe.Slice(bpf, kc*nr)
	c := unsafe.Slice(cpf, (mr-1)*ldc+nr)
	for rr := 0; rr < mr; rr += 2 {
		for jj := 0; jj < nr; jj += 8 {
			var s00, s01, s02, s03, s04, s05, s06, s07 float32
			var s10, s11, s12, s13, s14, s15, s16, s17 float32
			for kk := 0; kk < kc; kk++ {
				a0 := ap[kk*mr+rr]
				a1 := ap[kk*mr+rr+1]
				b := bp[kk*nr+jj : kk*nr+jj+8 : kk*nr+jj+8]
				s00 += a0 * b[0]
				s10 += a1 * b[0]
				s01 += a0 * b[1]
				s11 += a1 * b[1]
				s02 += a0 * b[2]
				s12 += a1 * b[2]
				s03 += a0 * b[3]
				s13 += a1 * b[3]
				s04 += a0 * b[4]
				s14 += a1 * b[4]
				s05 += a0 * b[5]
				s15 += a1 * b[5]
				s06 += a0 * b[6]
				s16 += a1 * b[6]
				s07 += a0 * b[7]
				s17 += a1 * b[7]
			}
			c0 := c[rr*ldc+jj : rr*ldc+jj+8 : rr*ldc+jj+8]
			c0[0] += s00
			c0[1] += s01
			c0[2] += s02
			c0[3] += s03
			c0[4] += s04
			c0[5] += s05
			c0[6] += s06
			c0[7] += s07
			c1 := c[(rr+1)*ldc+jj : (rr+1)*ldc+jj+8 : (rr+1)*ldc+jj+8]
			c1[0] += s10
			c1[1] += s11
			c1[2] += s12
			c1[3] += s13
			c1[4] += s14
			c1[5] += s15
			c1[6] += s16
			c1[7] += s17
		}
	}
}
