package tensor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// bf16Ref rounds via float64 arithmetic, independently of the bit
// trick: find the two neighbouring bf16-representable values and pick
// the nearer one, ties to even mantissa. The production kernels are
// held to this reference.
func bf16Ref(x float32) uint16 {
	b := math.Float32bits(x)
	if x != x { // NaN
		return uint16(b>>16) | 0x0040
	}
	lo := uint16(b >> 16) // truncation toward zero in magnitude
	frac := b & 0xffff
	if frac == 0 {
		return lo
	}
	if math.IsInf(float64(x), 0) {
		return lo
	}
	switch {
	case frac > 0x8000:
		return lo + 1 // rounds away from zero in the biased encoding
	case frac < 0x8000:
		return lo
	default: // exact tie: to even
		if lo&1 == 1 {
			return lo + 1
		}
		return lo
	}
}

// bf16Patterns enumerates every 16-bit high half crossed with the low
// halves that matter for rounding: zero, just-below/at/just-above the
// tie point, and all-ones. That covers every exponent (normals,
// subnormals, ±0, ±Inf, every NaN class) at every rounding decision.
func bf16Patterns(visit func(bits uint32)) {
	lows := []uint32{0x0000, 0x0001, 0x7fff, 0x8000, 0x8001, 0xffff}
	for hi := 0; hi <= 0xffff; hi++ {
		for _, lo := range lows {
			visit(uint32(hi)<<16 | lo)
		}
	}
}

// TestBF16FromF32MatchesReference sweeps the exhaustive boundary
// pattern set: the scalar kernel must match the arithmetic reference
// everywhere, and every NaN must stay a NaN (never collapse to ±Inf or
// ±0 — the failure mode of the unguarded rounding add).
func TestBF16FromF32MatchesReference(t *testing.T) {
	bf16Patterns(func(bits uint32) {
		x := math.Float32frombits(bits)
		got := BF16FromF32(x)
		want := bf16Ref(x)
		if x != x {
			if got&0x7fff <= 0x7f80 {
				t.Fatalf("NaN 0x%08x converted to non-NaN bf16 0x%04x", bits, got)
			}
			return // any quiet NaN encoding is a valid NaN; ours is pinned below
		}
		if got != want {
			t.Fatalf("BF16FromF32(0x%08x) = 0x%04x, reference 0x%04x", bits, got, want)
		}
	})
	// Pin the exact NaN policy: truncate payload, force the quiet bit.
	if got := BF16FromF32(math.Float32frombits(0x7fc00001)); got != 0x7fc0 {
		t.Fatalf("quiet NaN: got 0x%04x", got)
	}
	if got := BF16FromF32(math.Float32frombits(0xff800001)); got != 0xffc0 {
		t.Fatalf("signaling -NaN: got 0x%04x, want quieted 0xffc0", got)
	}
}

// TestBF16SpecialValues pins the values the wire format must preserve
// exactly: ±0, ±Inf, powers of two, and bf16 subnormals.
func TestBF16SpecialValues(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3f80},
		{-2, 0xc000},
		{float32(math.Inf(1)), 0x7f80},
		{float32(math.Inf(-1)), 0xff80},
		{math.Float32frombits(0x00010000), 0x0001}, // smallest bf16 subnormal
		{math.Float32frombits(0x00008000), 0x0000}, // tie at half of it → even (zero)
		{math.Float32frombits(0x00018000), 0x0002}, // tie above odd → up to even
		{math.MaxFloat32, 0x7f80},                  // nearest bf16 is +Inf
	}
	for _, c := range cases {
		if got := BF16FromF32(c.in); got != c.want {
			t.Errorf("BF16FromF32(%v = 0x%08x) = 0x%04x, want 0x%04x",
				c.in, math.Float32bits(c.in), got, c.want)
		}
	}
}

// TestBF16RoundTripExact: widening then re-rounding any bf16 value is
// the identity — every one of the 65536 encodings survives, including
// subnormals, infinities and NaNs (quiet bit already set after one
// trip).
func TestBF16RoundTripExact(t *testing.T) {
	for v := 0; v <= 0xffff; v++ {
		w := F32FromBF16(uint16(v))
		back := BF16FromF32(w)
		if w != w { // NaN encodings re-round to their quieted form
			if back != uint16(v)|0x0040 {
				t.Fatalf("NaN 0x%04x round-trips to 0x%04x", v, back)
			}
			continue
		}
		if back != uint16(v) {
			t.Fatalf("bf16 0x%04x widens to %v, re-rounds to 0x%04x", v, w, back)
		}
	}
}

// TestBF16VectorMatchesScalar holds the dispatched vector kernels (the
// AVX2 assembly when the CPU has it, the portable loop otherwise) to
// the scalar reference bit for bit — over the exhaustive pattern sweep
// plus ragged lengths straddling the 8-lane blocking.
func TestBF16VectorMatchesScalar(t *testing.T) {
	var vals []float32
	bf16Patterns(func(bits uint32) { vals = append(vals, math.Float32frombits(bits)) })
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 33, len(vals)} {
		src := vals[:n]
		got := make([]uint16, n)
		want := make([]uint16, n)
		ToBF16(got, src)
		toBF16Go(want, src)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: ToBF16[%d] (0x%08x) = 0x%04x, scalar 0x%04x",
					n, i, math.Float32bits(src[i]), got[i], want[i])
			}
		}
		back := make([]float32, n)
		backGo := make([]float32, n)
		FromBF16(back, got)
		fromBF16Go(backGo, got)
		for i := range back {
			if math.Float32bits(back[i]) != math.Float32bits(backGo[i]) {
				t.Fatalf("n=%d: FromBF16[%d] = %v bits, scalar %v bits",
					n, i, math.Float32bits(back[i]), math.Float32bits(backGo[i]))
			}
		}
	}
}

// TestBF16ErrorBound: for finite normal inputs the RNE error is at most
// half a bf16 ULP (2⁻⁸ relative).
func TestBF16ErrorBound(t *testing.T) {
	r := rng.New(17)
	for i := 0; i < 20000; i++ {
		x := (r.Float32()*2 - 1) * float32(math.Exp(float64(r.Float32()*40-20)))
		y := F32FromBF16(BF16FromF32(x))
		if x == 0 {
			continue
		}
		rel := math.Abs(float64(y-x)) / math.Abs(float64(x))
		if rel > 1.0/256 {
			t.Fatalf("x=%v rounds to %v, relative error %v > 2^-8", x, y, rel)
		}
	}
}

// TestRoundBF16Idempotent: RoundBF16 is a projection — applying it
// twice equals applying it once, and it works in place.
func TestRoundBF16Idempotent(t *testing.T) {
	r := rng.New(23)
	src := make([]float32, 1300) // crosses the 512-element block boundary
	for i := range src {
		src[i] = r.NormFloat32() * 3
	}
	once := make([]float32, len(src))
	RoundBF16(once, src)
	twice := append([]float32(nil), once...)
	RoundBF16(twice, twice) // aliased
	for i := range once {
		if math.Float32bits(once[i]) != math.Float32bits(twice[i]) {
			t.Fatalf("RoundBF16 not idempotent at %d: %v vs %v", i, once[i], twice[i])
		}
	}
}

func BenchmarkToBF16(b *testing.B) {
	src := make([]float32, 1<<16)
	r := rng.New(1)
	for i := range src {
		src[i] = r.NormFloat32()
	}
	dst := make([]uint16, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ToBF16(dst, src)
	}
}

func BenchmarkFromBF16(b *testing.B) {
	src := make([]uint16, 1<<16)
	for i := range src {
		src[i] = uint16(i)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromBF16(dst, src)
	}
}
