//go:build amd64 && !purego

#include "textflag.h"

// Shared constants for the 8-lane exponential. Same Cephes reduction
// as the scalar expf32 (fastexp.go): z = x·log2e, n = round(z),
// t = x − n·c1 + n·c2, degree-5 polynomial p(t), r = p·t² + t + 1,
// result r·2ⁿ. The vector kernel rounds n to nearest-even (VROUNDPS)
// where the scalar rounds half away from zero, and evaluates the
// polynomial with FMAs — both are ulp-level differences well inside
// the kernel's documented 4e-6 relative accuracy.
DATA expconst<>+0x00(SB)/4, $0x3fb8aa3b // log2(e)
DATA expconst<>+0x04(SB)/4, $0x3f318000 // c1 = 0.693359375
DATA expconst<>+0x08(SB)/4, $0x395e8083 // c2 = 2.12194440e-4
DATA expconst<>+0x0c(SB)/4, $0x39506967 // p0 = 1.9875691500e-4
DATA expconst<>+0x10(SB)/4, $0x3ab743ce // p1 = 1.3981999507e-3
DATA expconst<>+0x14(SB)/4, $0x3c088908 // p2 = 8.3334519073e-3
DATA expconst<>+0x18(SB)/4, $0x3d2aa9c1 // p3 = 4.1665795894e-2
DATA expconst<>+0x1c(SB)/4, $0x3e2aaaaa // p4 = 1.6666665459e-1
DATA expconst<>+0x20(SB)/4, $0x3f000000 // p5 = 0.5
DATA expconst<>+0x24(SB)/4, $0xc2aeac50 // flush cutoff −87.33655
DATA expconst<>+0x28(SB)/4, $0xc2ae0000 // clamp −87.0 (keeps 2ⁿ normal)
DATA expconst<>+0x2c(SB)/4, $0x3f800000 // 1.0
DATA expconst<>+0x30(SB)/4, $0x0000007f // exponent bias 127
GLOBL expconst<>(SB), RODATA, $52

// func expScaledSubAVX2(dst, src *float32, n int, scale, m float32)
//
// dst[i] = exp(scale·src[i] − m) for i in [0, n), 8 lanes per step;
// the caller handles the tail (n is rounded down to a multiple of 8
// by the Go wrapper). Inputs below the flush cutoff produce exact 0
// (no subnormals — lanes are clamped to −87 for the 2ⁿ construction
// and zeroed by mask afterwards). Intended for the attention kernels,
// where every argument is ≤ 0; positive arguments up to ~88 still
// produce correct results but +Inf overflow is not special-cased.
TEXT ·expScaledSubAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	VBROADCASTSS scale+24(FP), Y13
	VBROADCASTSS m+28(FP), Y14

	VBROADCASTSS expconst<>+0x00(SB), Y7  // log2e
	VBROADCASTSS expconst<>+0x24(SB), Y8  // cutoff
	VBROADCASTSS expconst<>+0x28(SB), Y9  // clamp
	VBROADCASTSS expconst<>+0x2c(SB), Y10 // 1.0
	VBROADCASTSS expconst<>+0x30(SB), Y11 // bias

	SHRQ  $3, CX
	TESTQ CX, CX
	JLE   done

loop:
	// x = scale·src − m
	VMOVUPS (SI), Y0
	VMULPS  Y13, Y0, Y0
	VSUBPS  Y14, Y0, Y0

	// mask = x ≥ cutoff; x = max(x, clamp)
	VCMPPS $0x0d, Y8, Y0, Y12 // GE_OS
	VMAXPS Y9, Y0, Y0

	// n = round(x·log2e); t = x − n·c1 + n·c2
	VMULPS       Y7, Y0, Y1
	VROUNDPS     $0, Y1, Y1
	VBROADCASTSS expconst<>+0x04(SB), Y2
	VFNMADD231PS Y2, Y1, Y0               // x -= n·c1
	VBROADCASTSS expconst<>+0x08(SB), Y2
	VFMADD231PS  Y2, Y1, Y0               // x += n·c2 (t in Y0)

	// p = ((((p0·t+p1)·t+p2)·t+p3)·t+p4)·t+p5
	VBROADCASTSS expconst<>+0x0c(SB), Y3
	VBROADCASTSS expconst<>+0x10(SB), Y2
	VFMADD213PS  Y2, Y0, Y3
	VBROADCASTSS expconst<>+0x14(SB), Y2
	VFMADD213PS  Y2, Y0, Y3
	VBROADCASTSS expconst<>+0x18(SB), Y2
	VFMADD213PS  Y2, Y0, Y3
	VBROADCASTSS expconst<>+0x1c(SB), Y2
	VFMADD213PS  Y2, Y0, Y3
	VBROADCASTSS expconst<>+0x20(SB), Y2
	VFMADD213PS  Y2, Y0, Y3

	// r = p·t² + t + 1
	VMULPS      Y0, Y0, Y2
	VFMADD213PS Y0, Y2, Y3
	VADDPS      Y10, Y3, Y3

	// r·2ⁿ via (n+127)<<23, zeroed where x was below the cutoff
	VCVTPS2DQ Y1, Y1
	VPADDD    Y11, Y1, Y1
	VPSLLD    $23, Y1, Y1
	VMULPS    Y1, Y3, Y3
	VANDPS    Y12, Y3, Y3
	VMOVUPS   Y3, (DI)

	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

done:
	VZEROUPPER
	RET

// func maxAVX2(src *float32, n int) float32
//
// Maximum of src[0:n] for n ≥ 8; the Go wrapper folds any tail
// scalars. NaN lanes are not propagated reliably (VMAXPS picks the
// second operand when either is NaN) — callers operate on finite
// kernel output.
TEXT ·maxAVX2(SB), NOSPLIT, $0-20
	MOVQ src+0(FP), SI
	MOVQ n+8(FP), CX

	VMOVUPS (SI), Y0
	SHRQ    $3, CX
	DECQ    CX
	ADDQ    $32, SI
	TESTQ   CX, CX
	JLE     reduce

loop:
	VMOVUPS (SI), Y1
	VMAXPS  Y1, Y0, Y0
	ADDQ    $32, SI
	DECQ    CX
	JNZ     loop

reduce:
	VEXTRACTF128 $1, Y0, X1
	VMAXPS       X1, X0, X0
	VPSHUFD      $0x4e, X0, X1 // high pair → low
	VMAXPS       X1, X0, X0
	VPSHUFD      $0xb1, X0, X1 // swap within pair
	VMAXPS       X1, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+16(FP)
	RET
