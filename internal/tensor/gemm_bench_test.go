package tensor

import (
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// benchGEMM times one kernel shape and reports achieved GFLOP/s
// (2·m·k·n FLOPs per call).
func benchGEMM(b *testing.B, m, k, n int, call func(c, a, bb []float32)) {
	r := rng.New(1)
	a := randMat(r, m*k)
	bb := randMat(r, k*n)
	c := make([]float32, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		call(c, a, bb)
	}
	b.StopTimer()
	flops := 2 * float64(m) * float64(k) * float64(n) * float64(b.N)
	b.ReportMetric(flops/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// BenchmarkGEMM measures the blocked, packed kernels across the paper's
// hot shapes. The acceptance gate for the kernel rewrite is ≥2× GFLOP/s
// over BenchmarkGEMMStream at the 256³ and 512³ shapes.
func BenchmarkGEMM(b *testing.B) {
	for _, s := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("NN%d", s), func(b *testing.B) {
			benchGEMM(b, s, s, s, func(c, a, bb []float32) {
				MatMul(c, a, bb, s, s, s, false)
			})
		})
	}
	const s = 256
	b.Run("TB256", func(b *testing.B) {
		benchGEMM(b, s, s, s, func(c, a, bb []float32) {
			MatMulTB(c, a, bb, s, s, s, false)
		})
	})
	b.Run("TA256", func(b *testing.B) {
		benchGEMM(b, s, s, s, func(c, a, bb []float32) {
			MatMulTA(c, a, bb, s, s, s, false)
		})
	})
	// ViT-ish rectangular shapes: token×width GEMMs from the encoder.
	b.Run("NN196x768x768", func(b *testing.B) {
		benchGEMM(b, 196, 768, 768, func(c, a, bb []float32) {
			MatMul(c, a, bb, 196, 768, 768, false)
		})
	})
	b.Run("NN196x768x3072", func(b *testing.B) {
		benchGEMM(b, 196, 768, 3072, func(c, a, bb []float32) {
			MatMul(c, a, bb, 196, 768, 3072, false)
		})
	})
}

// streamMatMul is a verbatim copy of the pre-blocking row-streaming
// kernel (parallel rows of C, axpy over rows of B), kept in the bench
// binary as the before/after baseline for the perf trajectory.
func streamMatMul(c, a, b []float32, m, k, n int) {
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			for j := range ci {
				ci[j] = 0
			}
			ai := a[i*k : i*k+k]
			for kk, av := range ai {
				if av == 0 {
					continue
				}
				axpy(av, b[kk*n:kk*n+n], ci)
			}
		}
	})
}

// BenchmarkGEMMStream is the pre-PR kernel at the acceptance shapes.
func BenchmarkGEMMStream(b *testing.B) {
	for _, s := range []int{256, 512} {
		b.Run(fmt.Sprintf("NN%d", s), func(b *testing.B) {
			benchGEMM(b, s, s, s, func(c, a, bb []float32) {
				streamMatMul(c, a, bb, s, s, s)
			})
		})
	}
}

// BenchmarkGEMMNaiveBaseline is the unblocked triple loop at 256³, the
// ablation baseline for the DESIGN.md blocking study.
func BenchmarkGEMMNaiveBaseline(b *testing.B) {
	const s = 256
	benchGEMM(b, s, s, s, func(c, a, bb []float32) {
		MatMulNaive(c, a, bb, s, s, s)
	})
}
