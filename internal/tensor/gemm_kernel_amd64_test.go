//go:build amd64 && !purego

package tensor

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/rng"
)

// TestAsmKernelMatchesGeneric compares the AVX2+FMA micro-kernel
// against the portable Go kernel on identical packed panels, including
// kc values off the unroll boundary and a strided C. FMA contracts the
// multiply-add rounding, so exact equality is not expected.
func TestAsmKernelMatchesGeneric(t *testing.T) {
	if !haveFMA {
		t.Skip("no AVX2+FMA on this CPU")
	}
	r := rng.New(5)
	for _, kc := range []int{1, 2, 3, 7, 64, 255, 256} {
		for _, ldc := range []int{nr, nr + 5, 40} {
			ap := randMat(r, kc*mr)
			bp := randMat(r, kc*nr)
			cAsm := randMat(r, (mr-1)*ldc+nr)
			cGo := make([]float32, len(cAsm))
			copy(cGo, cAsm)
			kern6x16(kc, &ap[0], &bp[0], &cAsm[0], ldc)
			kern6x16go(kc, &ap[0], &bp[0], &cGo[0], ldc)
			if i, ok := relClose(cAsm, cGo, relTol); !ok {
				t.Fatalf("kc=%d ldc=%d: asm/generic mismatch at %d: %v vs %v",
					kc, ldc, i, cAsm[i], cGo[i])
			}
		}
	}
}

func TestDetectFMAConsistent(t *testing.T) {
	// Re-querying the shared feature record must agree with the gate
	// captured at package init (hw.Detect memoizes one CPUID probe).
	if hw.Detect().SIMD() != haveFMA {
		t.Fatal("hw.Detect().SIMD() disagrees with the kernel dispatch gate")
	}
}
