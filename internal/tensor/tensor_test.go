package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewShapes(t *testing.T) {
	a := New(2, 3, 4)
	if a.NumEl() != 24 || a.Rank() != 3 || a.Dim(1) != 3 {
		t.Fatalf("bad tensor: %v", a.Shape())
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New not zero-filled")
		}
	}
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(make([]float32, 5), 2, 3)
}

func TestReshapeInference(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if b.Dim(0) != 2 || b.Dim(1) != 12 {
		t.Fatalf("got %v", b.Shape())
	}
	// Shares data.
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape did not share data")
	}
}

func TestReshapeErrors(t *testing.T) {
	a := New(4, 6)
	for _, shape := range [][]int{{5, 5}, {-1, -1}, {7, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Reshape(%v) did not panic", shape)
				}
			}()
			a.Reshape(shape...)
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(3, 4, 5)
	a.Set(7.5, 2, 1, 3)
	if a.At(2, 1, 3) != 7.5 {
		t.Fatal("At/Set mismatch")
	}
	// Row-major offset: ((2*4)+1)*5+3 = 48.
	if a.Data[48] != 7.5 {
		t.Fatal("offset not row-major")
	}
}

func TestAtBoundsPanic(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	a.At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	if !SameShape(a, b) {
		t.Fatal("Clone changed shape")
	}
}

func TestRow(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 40
	if a.At(1, 0) != 40 {
		t.Fatal("Row is not a view")
	}
}

func TestXavierInitRange(t *testing.T) {
	a := New(64, 64)
	a.XavierInit(rng.New(1), 64, 64)
	limit := math.Sqrt(6.0 / 128.0)
	for _, v := range a.Data {
		if float64(v) < -limit || float64(v) >= limit {
			t.Fatalf("value %v outside Xavier bound %v", v, limit)
		}
	}
	if Mean(a.Data) > 0.02 || Mean(a.Data) < -0.02 {
		t.Fatalf("Xavier mean %v not centered", Mean(a.Data))
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("equal shapes reported unequal")
	}
	if SameShape(New(2, 3), New(3, 2)) || SameShape(New(2, 3), New(2, 3, 1)) {
		t.Fatal("unequal shapes reported equal")
	}
}

func TestReshapeQuickProperty(t *testing.T) {
	// Property: reshape preserves element count and data identity.
	f := func(r, c uint8) bool {
		rr, cc := int(r%16)+1, int(c%16)+1
		a := New(rr, cc)
		b := a.Reshape(cc, rr)
		return b.NumEl() == a.NumEl() && &b.Data[0] == &a.Data[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = New(2, 2).String()
	_ = New(100).String()
}
