//go:build !amd64 || purego

package tensor

// expScaledSub writes dst[i] = exp(scale·src[i] − m) over the common
// length of dst and src (scalar fallback; see fastexp_amd64.go for
// the vector path).
func expScaledSub(dst, src []float32, scale, m float32) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = expf32(scale*src[i] - m)
	}
}

// maxFloat32 returns the maximum of x (len(x) ≥ 1).
func maxFloat32(x []float32) float32 {
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
