//go:build amd64 && !purego

package tensor

// toBF16AVX2 / fromBF16AVX2 (bf16_amd64.s) convert n floats in blocks
// of 8 lanes; n must be a multiple of 8. Rounding matches BF16FromF32
// bit for bit, including the NaN-quieting blend.
//
//go:noescape
func toBF16AVX2(dst *uint16, src *float32, n int)

//go:noescape
func fromBF16AVX2(dst *float32, src *uint16, n int)

// The conversions need AVX2 only, but the existing haveFMA gate
// (AVX2+FMA with OS YMM support) is reused so every SIMD kernel in the
// package switches on and off together.
func toBF16(dst []uint16, src []float32) {
	n := len(src)
	if haveFMA && n >= 8 {
		n8 := n &^ 7
		toBF16AVX2(&dst[0], &src[0], n8)
		toBF16Go(dst[n8:], src[n8:])
		return
	}
	toBF16Go(dst, src)
}

func fromBF16(dst []float32, src []uint16) {
	n := len(src)
	if haveFMA && n >= 8 {
		n8 := n &^ 7
		fromBF16AVX2(&dst[0], &src[0], n8)
		fromBF16Go(dst[n8:], src[n8:])
		return
	}
	fromBF16Go(dst, src)
}
