package tensor

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// relTol is the relative tolerance for blocked-vs-naive comparisons.
// Blocked kernels reassociate the K sum (and use FMA on amd64), so
// results differ from the naive triple loop by a few ULPs per term.
const relTol = 1e-4

func relClose(got, want []float32, tol float64) (int, bool) {
	for i := range got {
		if math.Abs(float64(got[i]-want[i])) > tol*(1+math.Abs(float64(want[i]))) {
			return i, false
		}
	}
	return -1, true
}

// naiveTA/naiveTB are straightforward references for the transposed
// variants, with optional accumulation.
func naiveRef(c, a, b []float32, m, k, n int, acc bool, op gemmOp) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				var av, bv float32
				switch op {
				case opNN:
					av, bv = a[i*k+kk], b[kk*n+j]
				case opTA:
					av, bv = a[kk*m+i], b[kk*n+j]
				case opTB:
					av, bv = a[i*k+kk], b[j*k+kk]
				}
				s += av * bv
			}
			if acc {
				c[i*n+j] += s
			} else {
				c[i*n+j] = s
			}
		}
	}
}

// TestBlockedGEMMProperty drives all three kernels across ragged shapes
// straddling the blocking boundaries (micro-tile edges, K-strip edges,
// the small-GEMM cutoff) with m·k·n up to ~1e6, in both acc modes,
// comparing against the naive reference within relTol.
func TestBlockedGEMMProperty(t *testing.T) {
	r := rng.New(42)
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {5, 1, 17}, {6, 16, 16}, {7, 17, 15},
		{12, 256, 16}, {13, 257, 33}, {6, 512, 16}, {72, 64, 48},
		{73, 300, 47}, {100, 100, 100}, {128, 64, 96}, {31, 1000, 31},
		{97, 103, 101}, {144, 256, 32}, {251, 63, 65},
	}
	ops := []struct {
		name string
		op   gemmOp
		call func(c, a, b []float32, m, k, n int, acc bool)
	}{
		{"MatMul", opNN, MatMul},
		{"MatMulTA", opTA, MatMulTA},
		{"MatMulTB", opTB, MatMulTB},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, op := range ops {
			for _, acc := range []bool{false, true} {
				a := randMat(r, m*k)
				b := randMat(r, k*n)
				got := randMat(r, m*n) // nonzero start exercises both acc modes
				want := make([]float32, m*n)
				copy(want, got)
				op.call(got, a, b, m, k, n, acc)
				naiveRef(want, a, b, m, k, n, acc, op.op)
				if i, ok := relClose(got, want, relTol); !ok {
					t.Fatalf("%s %v acc=%v: mismatch at %d: got %v want %v",
						op.name, sh, acc, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBlockedGEMMFuzz hammers random ragged shapes (m·k·n up to ~1e6)
// through all three kernels against the reference.
func TestBlockedGEMMFuzz(t *testing.T) {
	r := rng.New(7)
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for it := 0; it < iters; it++ {
		m := 1 + r.Intn(160)
		k := 1 + r.Intn(300)
		n := 1 + r.Intn(120)
		op := gemmOp(int64(r.Intn(3)))
		acc := r.Intn(2) == 0
		a := randMat(r, m*k)
		b := randMat(r, k*n)
		got := randMat(r, m*n)
		want := make([]float32, m*n)
		copy(want, got)
		switch op {
		case opNN:
			MatMul(got, a, b, m, k, n, acc)
		case opTA:
			MatMulTA(got, a, b, m, k, n, acc)
		case opTB:
			MatMulTB(got, a, b, m, k, n, acc)
		}
		naiveRef(want, a, b, m, k, n, acc, op)
		if i, ok := relClose(got, want, relTol); !ok {
			t.Fatalf("iter %d op=%d m=%d k=%d n=%d acc=%v: mismatch at %d",
				it, op, m, k, n, acc, i)
		}
	}
}

// TestBlockedDriverDirect exercises gemmBlocked (and therefore the
// active micro-kernel, assembly or portable) regardless of the
// haveFastKernel dispatch gate, so the packed path stays covered on
// purego/non-amd64 builds too.
func TestBlockedDriverDirect(t *testing.T) {
	r := rng.New(13)
	for _, sh := range [][3]int{{6, 16, 16}, {7, 300, 33}, {72, 256, 48}, {61, 77, 41}} {
		m, k, n := sh[0], sh[1], sh[2]
		for op := opNN; op <= opTB; op++ {
			for _, acc := range []bool{false, true} {
				asz, lda := m*k, k
				if op == opTA {
					lda = m
				}
				bsz, ldb := k*n, n
				if op == opTB {
					ldb = k
				}
				a := randMat(r, asz)
				b := randMat(r, bsz)
				got := randMat(r, m*n)
				want := make([]float32, m*n)
				copy(want, got)
				gemmBlocked(got, a, b, m, k, n, lda, ldb, n, acc, op)
				naiveRef(want, a, b, m, k, n, acc, op)
				if i, ok := relClose(got, want, relTol); !ok {
					t.Fatalf("gemmBlocked %v op=%d acc=%v: mismatch at %d", sh, op, acc, i)
				}
			}
		}
	}
}

// TestGEMMLdStrided embeds operands in larger row-major buffers and
// checks the strided entry points against dense copies, covering the
// attention layer's per-head view pattern.
func TestGEMMLdStrided(t *testing.T) {
	r := rng.New(9)
	for _, sh := range [][3]int{{5, 9, 7}, {33, 64, 31}, {64, 128, 48}} {
		m, k, n := sh[0], sh[1], sh[2]
		lda, ldb, ldc := k+5, n+3, n+9

		// NN: A (m×k) in lda-strided buffer, B (k×n) in ldb-strided, C ldc-strided.
		aBig := randMat(r, m*lda)
		bBig := randMat(r, k*ldb)
		cBig := make([]float32, m*ldc)
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := 0; i < m; i++ {
			copy(a[i*k:(i+1)*k], aBig[i*lda:i*lda+k])
		}
		for i := 0; i < k; i++ {
			copy(b[i*n:(i+1)*n], bBig[i*ldb:i*ldb+n])
		}
		want := make([]float32, m*n)
		MatMulNaive(want, a, b, m, k, n)
		MatMulLd(cBig, aBig, bBig, m, k, n, lda, ldb, ldc, false)
		for i := 0; i < m; i++ {
			if idx, ok := relClose(cBig[i*ldc:i*ldc+n], want[i*n:(i+1)*n], relTol); !ok {
				t.Fatalf("MatMulLd %v row %d col %d mismatch", sh, i, idx)
			}
		}

		// TB: B stored (n×k) with stride ldbT.
		ldbT := k + 2
		btBig := randMat(r, n*ldbT)
		bt := make([]float32, n*k)
		for j := 0; j < n; j++ {
			copy(bt[j*k:(j+1)*k], btBig[j*ldbT:j*ldbT+k])
		}
		wantTB := make([]float32, m*n)
		naiveRef(wantTB, a, bt, m, k, n, false, opTB)
		gotTB := make([]float32, m*ldc)
		MatMulTBLd(gotTB, aBig, btBig, m, k, n, lda, ldbT, ldc, false)
		for i := 0; i < m; i++ {
			if idx, ok := relClose(gotTB[i*ldc:i*ldc+n], wantTB[i*n:(i+1)*n], relTol); !ok {
				t.Fatalf("MatMulTBLd %v row %d col %d mismatch", sh, i, idx)
			}
		}

		// TA: A stored (k×m) with stride ldaT.
		ldaT := m + 4
		atBig := randMat(r, k*ldaT)
		at := make([]float32, k*m)
		for kk := 0; kk < k; kk++ {
			copy(at[kk*m:(kk+1)*m], atBig[kk*ldaT:kk*ldaT+m])
		}
		wantTA := make([]float32, m*n)
		naiveRef(wantTA, at, b, m, k, n, false, opTA)
		gotTA := make([]float32, m*ldc)
		MatMulTALd(gotTA, atBig, bBig, m, k, n, ldaT, ldb, ldc, false)
		for i := 0; i < m; i++ {
			if idx, ok := relClose(gotTA[i*ldc:i*ldc+n], wantTA[i*n:(i+1)*n], relTol); !ok {
				t.Fatalf("MatMulTALd %v row %d col %d mismatch", sh, i, idx)
			}
		}
	}
}

// TestStridedCDoesNotTouchGutter verifies the Ld kernels leave the
// gutter columns between C rows untouched (the attention layer writes
// per-head tiles into a shared fused buffer this way).
func TestStridedCDoesNotTouchGutter(t *testing.T) {
	r := rng.New(11)
	m, k, n, ldc := 40, 64, 24, 64
	a := randMat(r, m*k)
	b := randMat(r, k*n)
	c := make([]float32, m*ldc)
	const sentinel = 123.5
	for i := range c {
		c[i] = sentinel
	}
	MatMulLd(c, a, b, m, k, n, k, n, ldc, false)
	for i := 0; i < m; i++ {
		for j := n; j < ldc; j++ {
			if c[i*ldc+j] != sentinel {
				t.Fatalf("gutter (%d,%d) overwritten: %v", i, j, c[i*ldc+j])
			}
		}
	}
}
