package tensor

import "repro/internal/parallel"

// bf16-input GEMM: C = A·B with the B operand stored as bf16 ([]uint16,
// row-major k×n). This is the serving stack's weight format — weights
// are rounded to bf16 once at load, and the GEMM streams the 2-byte
// encoding directly, widening each panel inside the pack stage with
// the dispatched fromBF16 vector kernel instead of round-tripping the
// whole weight matrix through an fp32 buffer first. Widening is exact
// (bf16 → float32 reattaches zero mantissa bits), and the compute
// stage is gemmComputePacked — the same loop the fp32 path runs — so:
//
//	MatMulBF16(c, a, wbf16, ...) ≡ MatMul(c, a, FromBF16(wbf16), ...)
//
// bit-for-bit on every build (asm and purego take the same branch on
// both sides). FuzzBF16Gemm pins that invariant; it is what keeps the
// serve bf16 equivalence tests bitwise green after the switch.

// MatMulBF16 computes C = A·B (or C += A·B when acc is true) with
// A (m×k) float32 and B (k×n) bf16, both contiguous row-major.
func MatMulBF16(c, a []float32, b []uint16, m, k, n int, acc bool) {
	MatMulBF16Ld(c, a, b, m, k, n, k, n, n, acc)
}

// MatMulBF16Ld is MatMulBF16 with explicit leading dimensions.
func MatMulBF16Ld(c, a []float32, b []uint16, m, k, n, lda, ldb, ldc int, acc bool) {
	checkGEMMLd(len(c), len(a), len(b), m, k, n, lda, ldb, ldc, opNN, "MatMulBF16")
	if m <= 0 || n <= 0 {
		return
	}
	if k <= 0 {
		zeroC(c, m, n, ldc, acc)
		return
	}
	if haveFastKernel && m*k*n >= smallGEMMFlops {
		gemmBlockedBF16(c, a, b, m, k, n, lda, ldb, ldc, acc)
		return
	}
	// Small problems and purego builds: widen B once into pooled
	// scratch and run the same streaming kernel MatMulLd would pick
	// for this size, preserving the bitwise-equals-widened invariant.
	wbuf := getPack(&packBPool, k*n)
	wb := *wbuf
	for kk := 0; kk < k; kk++ {
		fromBF16(wb[kk*n:kk*n+n], b[kk*ldb:kk*ldb+n])
	}
	MatMulLd(c, a, wb, m, k, n, lda, n, ldc, acc)
	packBPool.Put(wbuf)
}

// gemmBlockedBF16 is gemmBlocked's opNN path with the B pack stage
// widening bf16 panels; compute is shared via gemmComputePacked.
func gemmBlockedBF16(c, a []float32, b []uint16, m, k, n, lda, ldb, ldc int, acc bool) {
	nPanels := (n + nr - 1) / nr
	bbuf := getPack(&packBPool, k*nPanels*nr)
	bp := *bbuf
	nStrips := (k + kcBlock - 1) / kcBlock
	parallel.ForGrain(nStrips*nPanels, 8, func(idx int) {
		p0 := (idx / nPanels) * kcBlock
		jp := idx % nPanels
		kcEff := min(kcBlock, k-p0)
		j0 := jp * nr
		jw := min(nr, n-j0)
		packBPanelNBF16(bp[p0*nPanels*nr+jp*kcEff*nr:], b[p0*ldb:], kcEff, ldb, j0, jw)
	})
	gemmComputePacked(c, a, bp, m, k, n, lda, ldc, acc, opNN)
	packBPool.Put(bbuf)
}

// packBPanelNBF16 mirrors packBPanelN for a bf16-encoded B, widening
// each row segment with the dispatched vector kernel. The produced
// panel is bitwise identical to packBPanelN over FromBF16(b).
func packBPanelNBF16(dst []float32, b []uint16, kcEff, ldb, j0, jw int) {
	for kk := 0; kk < kcEff; kk++ {
		d := dst[kk*nr : kk*nr+nr]
		fromBF16(d[:jw], b[kk*ldb+j0:kk*ldb+j0+jw])
		for j := jw; j < nr; j++ {
			d[j] = 0
		}
	}
}
