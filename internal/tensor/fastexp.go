package tensor

import "math"

// expf32 is a fast scalar float32 exponential for the fused attention
// kernels. The softmax-style arguments there are never positive (the
// running row max has been subtracted), so the polynomial only has to
// be accurate on (-inf, 0]; the positive side is still handled up to
// the float32 overflow threshold for robustness.
//
// Standard Cephes-style reduction: x = n·ln2 + t with |t| ≤ ½·ln2,
// e^x = 2^n · e^t, where e^t is a degree-5 minimax polynomial and 2^n
// is assembled directly into the exponent bits. Relative error is a
// few float32 ulps (≲1e-6), far below the documented fused-vs-
// reference attention tolerance; math.Exp costs a float64 round trip
// plus ~10× the latency, and at long sequence lengths the exp pass is
// the dominant non-GEMM cost of attention.
func expf32(x float32) float32 {
	//statgate:allow floateq — the canonical NaN self-comparison
	if x != x { // NaN propagates
		return x
	}
	if x < -87.33655 { // e^x underflows float32
		return 0
	}
	if x > 88.72283 { // e^x overflows float32
		return float32(math.Inf(1))
	}
	// n = round(x / ln2); truncation after ±0.5 rounds half away from
	// zero, which keeps |t| within the polynomial's fitted range.
	z := x * 1.4426950408889634 // log2(e)
	var n int32
	if z >= 0 {
		n = int32(z + 0.5)
	} else {
		n = int32(z - 0.5)
	}
	nf := float32(n)
	// Two-constant Cephes split of ln2 keeps t accurate to float32
	// even though nf·ln2 alone would lose low bits.
	t := x - nf*0.693359375 + nf*2.12194440e-4
	tt := t * t
	p := float32(1.9875691500e-4)
	p = p*t + 1.3981999507e-3
	p = p*t + 8.3334519073e-3
	p = p*t + 4.1665795894e-2
	p = p*t + 1.6666665459e-1
	p = p*t + 5.0000001201e-1
	r := p*tt + t + 1
	// 2^n for n in [-126, 127] via the biased exponent field; the
	// underflow guard above keeps n ≥ -126, the overflow guard keeps
	// n ≤ 128 (n=128 assembles +Inf, scaled by r ≈ 1).
	return r * math.Float32frombits(uint32(n+127)<<23)
}
