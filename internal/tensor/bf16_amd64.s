//go:build amd64 && !purego

#include "textflag.h"

// func toBF16AVX2(dst *uint16, src *float32, n int)
//
// Eight float32 → eight bf16 per iteration. Round-nearest-even is the
// classic integer trick on the raw bits: u + 0x7fff + ((u>>16)&1),
// truncated to the high half. NaN lanes cannot go through that add (a
// mantissa carry could turn them into ±Inf or even ±0), so an unordered
// self-compare masks them out and the blended NaN path truncates and
// forces the quiet bit instead — bit-identical to BF16FromF32. n must
// be a multiple of 8.
TEXT ·toBF16AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

	MOVL $0x7fff, AX
	MOVQ AX, X6
	VPBROADCASTD X6, Y6 // rounding bias
	MOVL $1, AX
	MOVQ AX, X7
	VPBROADCASTD X7, Y7 // lsb mask for the tie-to-even parity bit
	MOVL $0x40, AX
	MOVQ AX, X5
	VPBROADCASTD X5, Y5 // bf16 quiet-NaN bit

toloop:
	TESTQ CX, CX
	JLE   todone
	VMOVUPS (SI), Y0        // u: raw float32 bits
	VPSRLD  $16, Y0, Y1
	VPAND   Y7, Y1, Y1      // (u>>16) & 1
	VPADDD  Y6, Y1, Y1      // + 0x7fff
	VPADDD  Y0, Y1, Y1      // u + bias
	VPSRLD  $16, Y1, Y1     // rounded bf16 in dword lanes
	VCMPPS  $3, Y0, Y0, Y2  // UNORD_Q(x,x): all-ones where NaN
	VPSRLD  $16, Y0, Y3
	VPOR    Y5, Y3, Y3      // NaN path: truncate, force quiet bit
	VPBLENDVB Y2, Y3, Y1, Y1
	VEXTRACTI128 $1, Y1, X2
	VPACKUSDW X2, X1, X1    // 8 dwords (≤ 0xffff) → 8 words, in order
	VMOVUPS X1, (DI)
	ADDQ $32, SI
	ADDQ $16, DI
	SUBQ $8, CX
	JMP  toloop

todone:
	VZEROUPPER
	RET

// func fromBF16AVX2(dst *float32, src *uint16, n int)
//
// Eight bf16 → eight float32 per iteration: zero-extend the words into
// dword lanes and shift the payload into the high half (exact widening,
// no rounding). n must be a multiple of 8.
TEXT ·fromBF16AVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

fromloop:
	TESTQ CX, CX
	JLE   fromdone
	VPMOVZXWD (SI), Y0
	VPSLLD    $16, Y0, Y0
	VMOVUPS   Y0, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  fromloop

fromdone:
	VZEROUPPER
	RET
