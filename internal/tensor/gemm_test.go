package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-4

func approxEq(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > tol*(1+math.Abs(float64(b[i]))) {
			return false
		}
	}
	return true
}

func randMat(r *rng.RNG, n int) []float32 {
	m := make([]float32, n)
	r.FillNormal(m, 0, 1)
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 65}, {128, 64, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randMat(r, m*k), randMat(r, k*n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		MatMul(got, a, b, m, k, n, false)
		MatMulNaive(want, a, b, m, k, n)
		if !approxEq(got, want, eps) {
			t.Fatalf("MatMul mismatch for %v", dims)
		}
	}
}

func TestMatMulAccumulate(t *testing.T) {
	r := rng.New(2)
	m, k, n := 9, 7, 11
	a, b := randMat(r, m*k), randMat(r, k*n)
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 1
	}
	want := make([]float32, m*n)
	MatMulNaive(want, a, b, m, k, n)
	for i := range want {
		want[i] += 1
	}
	MatMul(c, a, b, m, k, n, true)
	if !approxEq(c, want, eps) {
		t.Fatal("accumulate mode incorrect")
	}
}

func TestMatMulTBMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(3)
	m, k, n := 13, 8, 21
	a := randMat(r, m*k)
	bT := randMat(r, n*k) // B stored as (n×k)
	b := make([]float32, k*n)
	Transpose(b, bT, n, k)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	MatMulTB(got, a, bT, m, k, n, false)
	MatMulNaive(want, a, b, m, k, n)
	if !approxEq(got, want, eps) {
		t.Fatal("MatMulTB mismatch")
	}
}

func TestMatMulTAMatchesExplicitTranspose(t *testing.T) {
	r := rng.New(4)
	m, k, n := 10, 12, 6
	aT := randMat(r, k*m) // A stored as (k×m)
	a := make([]float32, m*k)
	Transpose(a, aT, k, m)
	b := randMat(r, k*n)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	MatMulTA(got, aT, b, m, k, n, false)
	MatMulNaive(want, a, b, m, k, n)
	if !approxEq(got, want, eps) {
		t.Fatal("MatMulTA mismatch")
	}
}

func TestMatMulTAAccumulate(t *testing.T) {
	r := rng.New(5)
	m, k, n := 5, 6, 7
	aT, b := randMat(r, k*m), randMat(r, k*n)
	c := make([]float32, m*n)
	base := randMat(r, m*n)
	copy(c, base)
	once := make([]float32, m*n)
	MatMulTA(once, aT, b, m, k, n, false)
	want := make([]float32, m*n)
	for i := range want {
		want[i] = base[i] + once[i]
	}
	MatMulTA(c, aT, b, m, k, n, true)
	if !approxEq(c, want, eps) {
		t.Fatal("MatMulTA accumulate incorrect")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	// Property: A·I = A for random square A.
	r := rng.New(6)
	f := func(sz uint8) bool {
		n := int(sz%24) + 1
		a := randMat(r, n*n)
		id := make([]float32, n*n)
		for i := 0; i < n; i++ {
			id[i*n+i] = 1
		}
		c := make([]float32, n*n)
		MatMul(c, a, id, n, n, n, false)
		return approxEq(c, a, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulLinearityProperty(t *testing.T) {
	// Property: (αA)·B = α(A·B).
	r := rng.New(7)
	m, k, n := 6, 5, 4
	a, b := randMat(r, m*k), randMat(r, k*n)
	const alpha = 2.5
	scaled := make([]float32, len(a))
	Scale(scaled, a, alpha)
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)
	MatMul(c1, scaled, b, m, k, n, false)
	MatMul(c2, a, b, m, k, n, false)
	Scale(c2, c2, alpha)
	if !approxEq(c1, c2, eps) {
		t.Fatal("GEMM not linear in A")
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5}
	y := []float32{5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 35 {
		t.Fatalf("Dot = %v want 35", got)
	}
	Axpy(2, x, y)
	want := []float32{7, 8, 9, 10, 11}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy: y=%v", y)
		}
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot of empty != 0")
	}
	Axpy(1, nil, nil) // must not panic
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot(make([]float32, 2), make([]float32, 3))
}

func TestMatMulTConvenience(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	c := MatMulT(a, b)
	if !approxEq(c.Data, a.Data, eps) {
		t.Fatal("A·I != A")
	}
}

func TestMatMulTShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMulT(New(2, 3), New(2, 3))
}

// The GEMM throughput benchmarks (blocked kernels, streaming baseline,
// naive ablation) live in gemm_bench_test.go.
