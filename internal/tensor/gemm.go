package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// gemmGrain is the minimum number of FLOPs worth of work per goroutine
// when splitting a GEMM across workers; below it the kernel runs
// serially. Expressed in output rows: rows × k × n multiply-adds.
const gemmGrainFlops = 1 << 16

// MatMul computes C = A·B (or C += A·B when acc is true) with
// A of shape (m×k), B of shape (k×n) and C of shape (m×n), all
// contiguous row-major. The kernel parallelizes over rows of C and
// streams rows of B (the "axpy" formulation), which is the
// cache-friendly ordering for row-major data.
func MatMul(c, a, b []float32, m, k, n int, acc bool) {
	checkGEMM(len(c), len(a), len(b), m*n, m*k, k*n, "MatMul")
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*n : i*n+n]
			if !acc {
				for j := range ci {
					ci[j] = 0
				}
			}
			ai := a[i*k : i*k+k]
			for kk, av := range ai {
				if av == 0 {
					continue
				}
				bk := b[kk*n : kk*n+n]
				axpy(av, bk, ci)
			}
		}
	})
}

// MatMulTB computes C = A·Bᵀ (or C += A·Bᵀ) with A (m×k), B (n×k),
// C (m×n). Because both A and B are traversed along their contiguous k
// axis this is a pure dot-product kernel.
func MatMulTB(c, a, b []float32, m, k, n int, acc bool) {
	checkGEMM(len(c), len(a), len(b), m*n, m*k, n*k, "MatMulTB")
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*k : i*k+k]
			ci := c[i*n : i*n+n]
			for j := 0; j < n; j++ {
				bj := b[j*k : j*k+k]
				s := dot(ai, bj)
				if acc {
					ci[j] += s
				} else {
					ci[j] = s
				}
			}
		}
	})
}

// MatMulTA computes C = Aᵀ·B (or C += Aᵀ·B) with A (k×m), B (k×n),
// C (m×n). Each worker owns a contiguous row range of C, so no worker
// ever writes another's rows; B's rows are re-streamed once per k step.
func MatMulTA(c, a, b []float32, m, k, n int, acc bool) {
	checkGEMM(len(c), len(a), len(b), m*n, k*m, k*n, "MatMulTA")
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		if !acc {
			for i := lo; i < hi; i++ {
				ci := c[i*n : i*n+n]
				for j := range ci {
					ci[j] = 0
				}
			}
		}
		for kk := 0; kk < k; kk++ {
			ak := a[kk*m : kk*m+m]
			bk := b[kk*n : kk*n+n]
			for i := lo; i < hi; i++ {
				if av := ak[i]; av != 0 {
					axpy(av, bk, c[i*n:i*n+n])
				}
			}
		}
	})
}

// rowsGrain converts the per-row FLOP cost into a row-count grain.
func rowsGrain(k, n int) int {
	perRow := k * n
	if perRow <= 0 {
		return 1 << 30
	}
	g := gemmGrainFlops / perRow
	if g < 1 {
		g = 1
	}
	return g
}

func checkGEMM(lc, la, lb, wc, wa, wb int, name string) {
	if lc < wc || la < wa || lb < wb {
		panic(fmt.Sprintf("tensor: %s buffer too small (c %d<%d, a %d<%d, b %d<%d)", name, lc, wc, la, wa, lb, wb))
	}
}

// axpy computes y += alpha*x over equal-length slices. Unrolled by four
// to expose instruction-level parallelism to the compiler.
func axpy(alpha float32, x, y []float32) {
	n := len(y)
	_ = x[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// dot returns the inner product of equal-length slices, with four
// independent accumulators to break the dependency chain.
func dot(x, y []float32) float32 {
	n := len(x)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// Dot is the exported inner product over raw slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	return dot(x, y)
}

// Axpy computes y += alpha*x (lengths must match).
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	axpy(alpha, x, y)
}

// MatMulNaive is the unblocked triple loop, kept as a correctness
// reference and as the baseline for the blocking ablation benchmark.
func MatMulNaive(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// MatMulT returns C = A·B as tensors; a convenience wrapper used by
// tests and examples (the layers call the slice kernels directly).
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	MatMul(c.Data, a.Data, b.Data, m, k, n, false)
	return c
}
