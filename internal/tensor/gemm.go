package tensor

import (
	"fmt"
	"sync"

	"repro/internal/parallel"
)

// The GEMM kernels use the classic blocked-and-packed ("GotoBLAS")
// structure:
//
//   - A register-blocked mr×nr micro-kernel computes one C tile per
//     call, accumulating over a kcBlock-long K strip. On amd64 with
//     AVX2+FMA the micro-kernel is hand-written assembly
//     (gemm_kernel_amd64.s). The blocked path is SIMD-only: without
//     the assembly kernel (non-amd64, purego, or no AVX2) dispatch
//     stays on the streaming kernels, which already sit at the scalar
//     FP port limit, and the portable micro-kernel exists for the
//     driver's tests.
//   - Panels of A (mr rows × kcBlock) and B (kcBlock × nr columns) are
//     packed into contiguous, zero-padded scratch so the micro-kernel
//     reads purely sequential memory regardless of the operand's
//     storage order — which is also how the transposed variants
//     (MatMulTA, MatMulTB) share one micro-kernel: only the packing
//     routines differ.
//   - B is packed once up front (shared read-only by all workers); each
//     worker packs its own mcBlock×kcBlock slab of A per K strip, so
//     the innermost loops run from L1/L2-resident scratch.
//
// Work is split across the persistent pool in internal/parallel by
// contiguous row ranges of C, with the grain chosen so each task is at
// least gemmGrainFlops multiply-adds. Problems below smallGEMMFlops
// skip packing entirely and run the row-streaming kernels (axpy/dot
// forms), which win when the pack cost cannot be amortized.
const (
	mr = 6  // micro-kernel rows (A panel height)
	nr = 16 // micro-kernel cols (B panel width, 2×8 float32 lanes)

	// kcBlock is the K strip length: the packed A micro-panel
	// (mr×kcBlock ≈ 6 KiB) stays L1-resident and the packed B
	// micro-panel (kcBlock×nr ≈ 16 KiB) is reused across every A panel
	// of an mcBlock slab.
	kcBlock = 256
	// mcBlock is the slab of C rows per packed-A block (mcBlock×kcBlock
	// ≈ 72 KiB of packed A, sized for L2). Must be a multiple of mr.
	mcBlock = 72

	// smallGEMMFlops is the m·k·n cutoff below which packing overhead
	// outweighs the micro-kernel's throughput and the streaming kernels
	// are used instead.
	smallGEMMFlops = 1 << 15
)

// gemmGrainFlops is the minimum number of multiply-adds worth of work
// per parallel task when splitting a GEMM across workers; below it the
// kernel runs serially. Expressed in output rows: rows × k × n.
const gemmGrainFlops = 1 << 16

// gemmOp selects which operand is logically transposed (storage is
// always row-major; the packing routines absorb the transpose).
type gemmOp int

const (
	opNN gemmOp = iota // C = A·B
	opTA               // C = Aᵀ·B, A stored (k×m)
	opTB               // C = A·Bᵀ, B stored (n×k)
)

// MatMul computes C = A·B (or C += A·B when acc is true) with
// A of shape (m×k), B of shape (k×n) and C of shape (m×n), all
// contiguous row-major.
func MatMul(c, a, b []float32, m, k, n int, acc bool) {
	MatMulLd(c, a, b, m, k, n, k, n, n, acc)
}

// MatMulLd is MatMul with explicit leading dimensions (row strides in
// elements) for A, B and C, so sub-matrices of larger row-major
// buffers — for example one attention head's slice of a fused
// (tokens × 3·width) projection — can be multiplied without copying.
func MatMulLd(c, a, b []float32, m, k, n, lda, ldb, ldc int, acc bool) {
	if gemmDispatch(c, a, b, m, k, n, lda, ldb, ldc, acc, opNN, "MatMul") {
		return
	}
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c[i*ldc : i*ldc+n]
			if !acc {
				for j := range ci {
					ci[j] = 0
				}
			}
			ai := a[i*lda : i*lda+k]
			for kk, av := range ai {
				//statgate:allow floateq — sparsity skip: only an exactly-zero multiplier is safe to elide
				if av == 0 {
					continue
				}
				axpy(av, b[kk*ldb:kk*ldb+n], ci)
			}
		}
	})
}

// MatMulTB computes C = A·Bᵀ (or C += A·Bᵀ) with A (m×k), B (n×k),
// C (m×n).
func MatMulTB(c, a, b []float32, m, k, n int, acc bool) {
	MatMulTBLd(c, a, b, m, k, n, k, k, n, acc)
}

// MatMulTBLd is MatMulTB with explicit leading dimensions.
func MatMulTBLd(c, a, b []float32, m, k, n, lda, ldb, ldc int, acc bool) {
	if gemmDispatch(c, a, b, m, k, n, lda, ldb, ldc, acc, opTB, "MatMulTB") {
		return
	}
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*lda : i*lda+k]
			ci := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				s := dot(ai, b[j*ldb:j*ldb+k])
				if acc {
					ci[j] += s
				} else {
					ci[j] = s
				}
			}
		}
	})
}

// MatMulTA computes C = Aᵀ·B (or C += Aᵀ·B) with A (k×m), B (k×n),
// C (m×n). Each worker owns a contiguous row range of C, so no worker
// ever writes another's rows.
func MatMulTA(c, a, b []float32, m, k, n int, acc bool) {
	MatMulTALd(c, a, b, m, k, n, m, n, n, acc)
}

// MatMulTALd is MatMulTA with explicit leading dimensions.
func MatMulTALd(c, a, b []float32, m, k, n, lda, ldb, ldc int, acc bool) {
	if gemmDispatch(c, a, b, m, k, n, lda, ldb, ldc, acc, opTA, "MatMulTA") {
		return
	}
	grain := rowsGrain(k, n)
	parallel.RangeGrain(m, grain, func(lo, hi int) {
		if !acc {
			for i := lo; i < hi; i++ {
				ci := c[i*ldc : i*ldc+n]
				for j := range ci {
					ci[j] = 0
				}
			}
		}
		for kk := 0; kk < k; kk++ {
			ak := a[kk*lda : kk*lda+m]
			bk := b[kk*ldb : kk*ldb+n]
			for i := lo; i < hi; i++ {
				//statgate:allow floateq — sparsity skip: only an exactly-zero multiplier is safe to elide
				if av := ak[i]; av != 0 {
					axpy(av, bk, c[i*ldc:i*ldc+n])
				}
			}
		}
	})
}

// gemmDispatch is the prologue shared by the three Ld entry points:
// shape validation, degenerate shapes, and routing to the blocked path.
// It reports whether the product was fully handled; on false the caller
// runs its variant-specific streaming kernel.
func gemmDispatch(c, a, b []float32, m, k, n, lda, ldb, ldc int, acc bool, op gemmOp, name string) bool {
	checkGEMMLd(len(c), len(a), len(b), m, k, n, lda, ldb, ldc, op, name)
	if m <= 0 || n <= 0 {
		return true
	}
	if k <= 0 {
		zeroC(c, m, n, ldc, acc)
		return true
	}
	if haveFastKernel && m*k*n >= smallGEMMFlops {
		gemmBlocked(c, a, b, m, k, n, lda, ldb, ldc, acc, op)
		return true
	}
	return false
}

// gemmBlocked is the packed, register-blocked path shared by all three
// kernel variants; op selects the packing routines.
func gemmBlocked(c, a, b []float32, m, k, n, lda, ldb, ldc int, acc bool, op gemmOp) {
	nPanels := (n + nr - 1) / nr
	bbuf := getPack(&packBPool, k*nPanels*nr)
	bp := *bbuf

	// Pack all of B once, blocked by K strip then by nr-column panel.
	// Panels are disjoint, so the pack itself runs on the pool rather
	// than as a serial prefix ahead of the compute workers.
	nStrips := (k + kcBlock - 1) / kcBlock
	parallel.ForGrain(nStrips*nPanels, 8, func(idx int) {
		p0 := (idx / nPanels) * kcBlock
		jp := idx % nPanels
		kcEff := min(kcBlock, k-p0)
		j0 := jp * nr
		jw := min(nr, n-j0)
		dst := bp[p0*nPanels*nr+jp*kcEff*nr:]
		if op == opTB {
			packBPanelT(dst, b, kcEff, ldb, p0, j0, jw)
		} else {
			packBPanelN(dst, b[p0*ldb:], kcEff, ldb, j0, jw)
		}
	})

	gemmComputePacked(c, a, bp, m, k, n, lda, ldc, acc, op)
	packBPool.Put(bbuf)
}

// gemmComputePacked runs the register-blocked compute loop over an
// already fully packed B (the layout gemmBlocked's pack stage
// produces). Factored out so alternate B encodings — the bf16 weight
// path widens during packing — share one compute stage, which is also
// what makes MatMulBF16 bitwise equal to MatMul on pre-widened
// weights.
func gemmComputePacked(c, a, bp []float32, m, k, n, lda, ldc int, acc bool, op gemmOp) {
	nPanels := (n + nr - 1) / nr
	// Parallel split is over mr-row micro-panel tiles, not raw rows, so
	// every interior task boundary is micro-kernel aligned and only the
	// true bottom edge of C ever takes the partial-tile path.
	mTiles := (m + mr - 1) / mr
	grain := max(1, rowsGrain(k, n)/mr)
	parallel.RangeGrain(mTiles, grain, func(tlo, thi int) {
		lo, hi := tlo*mr, min(thi*mr, m)
		abuf := getPack(&packAPool, mcBlock*kcBlock)
		defer packAPool.Put(abuf)
		ap := *abuf
		if !acc {
			for i := lo; i < hi; i++ {
				ci := c[i*ldc : i*ldc+n]
				for j := range ci {
					ci[j] = 0
				}
			}
		}
		var tile [mr * nr]float32
		for i0 := lo; i0 < hi; i0 += mcBlock {
			mcEff := min(mcBlock, hi-i0)
			mPanels := (mcEff + mr - 1) / mr
			for p0 := 0; p0 < k; p0 += kcBlock {
				kcEff := min(kcBlock, k-p0)
				if op == opTA {
					packABlockT(ap, a, i0, mcEff, p0, kcEff, lda)
				} else {
					packABlockN(ap, a, i0, mcEff, p0, kcEff, lda)
				}
				base := p0 * nPanels * nr
				for jp := 0; jp < nPanels; jp++ {
					j0 := jp * nr
					jw := min(nr, n-j0)
					bpanel := &bp[base+jp*kcEff*nr]
					for ip := 0; ip < mPanels; ip++ {
						i := i0 + ip*mr
						rw := min(mr, i0+mcEff-i)
						apanel := &ap[ip*mr*kcEff]
						if rw == mr && jw == nr {
							microKern(kcEff, apanel, bpanel, &c[i*ldc+j0], ldc)
							continue
						}
						// Edge tile: run the full-size kernel into a
						// zeroed scratch tile (packed panels are
						// zero-padded) and fold the valid region back.
						for t := range tile {
							tile[t] = 0
						}
						microKern(kcEff, apanel, bpanel, &tile[0], nr)
						for r := 0; r < rw; r++ {
							ci := c[(i+r)*ldc+j0:]
							tr := tile[r*nr:]
							for j := 0; j < jw; j++ {
								ci[j] += tr[j]
							}
						}
					}
				}
			}
		}
	})
}

// Packing scratch is recycled across GEMM calls and workers. A-slabs
// (fixed mcBlock×kcBlock) and B buffers (sized with the whole operand,
// up to megabytes) use separate pools so a large B buffer is never
// pinned as an A slab while the next call reallocates a fresh one.
var (
	packAPool = sync.Pool{New: func() any { return new([]float32) }}
	packBPool = sync.Pool{New: func() any { return new([]float32) }}
)

func getPack(pool *sync.Pool, n int) *[]float32 {
	buf := pool.Get().(*[]float32)
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	*buf = (*buf)[:n]
	return buf
}

// packBPanelN packs kcEff rows × nr columns of row-major B (already
// offset to the K strip) starting at column j0; columns past jw are
// zero-filled. Layout: dst[kk*nr+j].
func packBPanelN(dst, b []float32, kcEff, ldb, j0, jw int) {
	for kk := 0; kk < kcEff; kk++ {
		d := dst[kk*nr : kk*nr+nr]
		copy(d[:jw], b[kk*ldb+j0:kk*ldb+j0+jw])
		for j := jw; j < nr; j++ {
			d[j] = 0
		}
	}
}

// packBPanelT packs the same logical panel when B is stored transposed
// (n×k): logical B[kk, j0+j] lives at b[(j0+j)*ldb + p0+kk], so each
// destination column is a contiguous read along K.
func packBPanelT(dst, b []float32, kcEff, ldb, p0, j0, jw int) {
	for j := 0; j < jw; j++ {
		col := b[(j0+j)*ldb+p0:]
		for kk := 0; kk < kcEff; kk++ {
			dst[kk*nr+j] = col[kk]
		}
	}
	for j := jw; j < nr; j++ {
		for kk := 0; kk < kcEff; kk++ {
			dst[kk*nr+j] = 0
		}
	}
}

// packABlockN packs rows [i0, i0+mcEff) × K strip [p0, p0+kcEff) of
// row-major A into mr-row micro-panels: ap[ip*mr*kcEff + kk*mr + r].
// Rows past the block edge are zero-filled.
func packABlockN(ap, a []float32, i0, mcEff, p0, kcEff, lda int) {
	mPanels := (mcEff + mr - 1) / mr
	for ip := 0; ip < mPanels; ip++ {
		dst := ap[ip*mr*kcEff:]
		for r := 0; r < mr; r++ {
			gr := ip*mr + r
			if gr >= mcEff {
				for kk := 0; kk < kcEff; kk++ {
					dst[kk*mr+r] = 0
				}
				continue
			}
			src := a[(i0+gr)*lda+p0:]
			for kk := 0; kk < kcEff; kk++ {
				dst[kk*mr+r] = src[kk]
			}
		}
	}
}

// packABlockT packs the same logical block when A is stored transposed
// (k×m): logical A[i, kk] lives at a[kk*lda + i], so each K step reads
// mr contiguous elements.
func packABlockT(ap, a []float32, i0, mcEff, p0, kcEff, lda int) {
	mPanels := (mcEff + mr - 1) / mr
	for ip := 0; ip < mPanels; ip++ {
		dst := ap[ip*mr*kcEff:]
		base := i0 + ip*mr
		rw := min(mr, mcEff-ip*mr)
		for kk := 0; kk < kcEff; kk++ {
			src := a[(p0+kk)*lda+base:]
			d := dst[kk*mr : kk*mr+mr]
			for r := 0; r < rw; r++ {
				d[r] = src[r]
			}
			for r := rw; r < mr; r++ {
				d[r] = 0
			}
		}
	}
}

// zeroC implements the k==0 degenerate case: C = 0·A·B.
func zeroC(c []float32, m, n, ldc int, acc bool) {
	if acc {
		return
	}
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		for j := range ci {
			ci[j] = 0
		}
	}
}

// rowsGrain converts the per-row FLOP cost into a row-count grain.
func rowsGrain(k, n int) int {
	perRow := k * n
	if perRow <= 0 {
		return 1 << 30
	}
	g := gemmGrainFlops / perRow
	if g < 1 {
		g = 1
	}
	return g
}

// checkGEMMLd validates buffer lengths against shapes and leading
// dimensions for the given variant (A is stored k×m for TA, B is
// stored n×k for TB).
func checkGEMMLd(lc, la, lb, m, k, n, lda, ldb, ldc int, op gemmOp, name string) {
	if m <= 0 || n <= 0 {
		return
	}
	aRows, aCols := m, k
	if op == opTA {
		aRows, aCols = k, m
	}
	bRows, bCols := k, n
	if op == opTB {
		bRows, bCols = n, k
	}
	if lda < aCols || ldb < bCols || ldc < n {
		panic(fmt.Sprintf("tensor: %s leading dims too small (lda %d<%d, ldb %d<%d, ldc %d<%d)",
			name, lda, aCols, ldb, bCols, ldc, n))
	}
	wc := (m-1)*ldc + n
	wa := (aRows-1)*lda + aCols
	wb := (bRows-1)*ldb + bCols
	if k <= 0 {
		wa, wb = 0, 0
	}
	if lc < wc || la < wa || lb < wb {
		panic(fmt.Sprintf("tensor: %s buffer too small (c %d<%d, a %d<%d, b %d<%d)", name, lc, wc, la, wa, lb, wb))
	}
}

// axpy computes y += alpha*x over equal-length slices. Unrolled by four
// to expose instruction-level parallelism to the compiler.
func axpy(alpha float32, x, y []float32) {
	n := len(y)
	_ = x[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// dot returns the inner product of equal-length slices, with four
// independent accumulators to break the dependency chain.
func dot(x, y []float32) float32 {
	n := len(x)
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// Dot is the exported inner product over raw slices.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	return dot(x, y)
}

// Axpy computes y += alpha*x (lengths must match).
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	axpy(alpha, x, y)
}

// MatMulNaive is the unblocked triple loop, kept as a correctness
// reference and as the baseline for the blocking ablation benchmark.
func MatMulNaive(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a[i*k+kk] * b[kk*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// MatMulT returns C = A·B as tensors; a convenience wrapper used by
// tests and examples (the layers call the slice kernels directly).
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 || a.Dim(1) != b.Dim(0) {
		panic(fmt.Sprintf("tensor: MatMulT shape mismatch %v × %v", a.Shape(), b.Shape()))
	}
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	MatMul(c.Data, a.Data, b.Data, m, k, n, false)
	return c
}
