package tensor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// Add computes dst = a + b elementwise over equal-length slices.
func Add(dst, a, b []float32) {
	checkLen3(dst, a, b)
	parallel.Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] + b[i]
		}
	})
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b []float32) {
	checkLen3(dst, a, b)
	parallel.Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] - b[i]
		}
	})
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(dst, a, b []float32) {
	checkLen3(dst, a, b)
	parallel.Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = a[i] * b[i]
		}
	})
}

// Scale computes dst = alpha * a elementwise (dst may alias a).
func Scale(dst, a []float32, alpha float32) {
	checkLen2(dst, a)
	parallel.Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = alpha * a[i]
		}
	})
}

// AddInPlace computes dst += a elementwise.
func AddInPlace(dst, a []float32) {
	checkLen2(dst, a)
	parallel.Range(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += a[i]
		}
	})
}

// Sum returns the sum of all elements.
func Sum(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(a []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	return Sum(a) / float64(len(a))
}

// L2Norm returns the Euclidean norm of a in float64 for stability.
func L2Norm(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxIdx returns the index of the maximum element (first on ties) and
// its value. It panics on empty input.
func MaxIdx(a []float32) (int, float32) {
	if len(a) == 0 {
		panic("tensor: MaxIdx of empty slice")
	}
	best, bv := 0, a[0]
	for i := 1; i < len(a); i++ {
		if a[i] > bv {
			best, bv = i, a[i]
		}
	}
	return best, bv
}

// TopKIdx returns the indices of the k largest elements in descending
// order of value (ties broken by lower index first). k is clamped to
// len(a).
func TopKIdx(a []float32, k int) []int {
	if k > len(a) {
		k = len(a)
	}
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return a[idx[x]] > a[idx[y]] })
	return idx[:k]
}

// Softmax computes a numerically stable softmax over each row of the
// (rows × cols) matrix x, writing into dst (which may alias x).
func Softmax(dst, x []float32, rows, cols int) {
	SoftmaxScaled(dst, x, rows, cols, 1)
}

// SoftmaxScaled computes softmax(scale·x) row-wise without a separate
// scaling sweep: the multiply is folded into the max/exp pass, so the
// result is bitwise identical to scaling x in place and then calling
// Softmax (each element is scaled by exactly one float32 multiply
// either way) while touching the row once less. scale=1 reproduces
// Softmax exactly (·1.0 is the identity on every float32).
func SoftmaxScaled(dst, x []float32, rows, cols int, scale float32) {
	checkSoftmaxShape(rows, cols, "Softmax", dst, x)
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(cols+1), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			xi := x[r*cols : r*cols+cols]
			di := dst[r*cols : r*cols+cols]
			softmaxRow(di, xi, scale)
		}
	})
}

// softmaxRow computes one stable softmax row serially over scale·x.
func softmaxRow(dst, x []float32, scale float32) {
	maxv := scale * x[0]
	for _, v := range x[1:] {
		if sv := scale * v; sv > maxv {
			maxv = sv
		}
	}
	var sum float64
	for i, v := range x {
		e := float32(math.Exp(float64(scale*v - maxv)))
		dst[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxBackward computes the gradient of a row softmax: given the
// softmax output y and upstream gradient dy over (rows × cols), it
// writes dx[i] = y[i] * (dy[i] - Σ_j y[j]·dy[j]) per row. dx may alias
// dy.
func SoftmaxBackward(dx, y, dy []float32, rows, cols int) {
	SoftmaxBackwardScaled(dx, y, dy, rows, cols, 1)
}

// SoftmaxBackwardScaled is SoftmaxBackward with a trailing gradient
// scale folded into the write pass: dx[i] = (y[i]·(dy[i]-s))·scale.
// The product associates exactly as the old "backward then scale dx in
// place" sequence, so results are bitwise identical to it, and scale=1
// is the plain backward.
func SoftmaxBackwardScaled(dx, y, dy []float32, rows, cols int, scale float32) {
	checkSoftmaxShape(rows, cols, "SoftmaxBackward", dx, y, dy)
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(cols+1), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			yr := y[r*cols : r*cols+cols]
			dyr := dy[r*cols : r*cols+cols]
			dxr := dx[r*cols : r*cols+cols]
			var s float64
			for j := range yr {
				s += float64(yr[j]) * float64(dyr[j])
			}
			sf := float32(s)
			for j := range yr {
				dxr[j] = yr[j] * (dyr[j] - sf) * scale
			}
		}
	})
}

// checkSoftmaxShape validates a row-softmax shape and its operand
// lengths with named panics, so an undersized buffer or a zero-column
// call fails at the API boundary instead of as a slice-bounds fault
// inside a parallel worker.
func checkSoftmaxShape(rows, cols int, name string, bufs ...[]float32) {
	if rows < 0 || (rows > 0 && cols <= 0) {
		panic(fmt.Sprintf("tensor: %s invalid shape %d×%d", name, rows, cols))
	}
	for _, b := range bufs {
		if len(b) < rows*cols {
			panic("tensor: " + name + " buffer too small")
		}
	}
}

// Transpose writes aᵀ into dst for a (rows × cols) matrix a; dst must
// have capacity cols × rows and must not alias a.
func Transpose(dst, a []float32, rows, cols int) {
	if len(dst) < rows*cols || len(a) < rows*cols {
		panic("tensor: Transpose buffer too small")
	}
	parallel.RangeGrain(rows, 1+parallel.MinGrain/(cols+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				dst[j*rows+i] = a[i*cols+j]
			}
		}
	})
}

// GatherRows copies rows idx[i] of src (n × cols) into row i of dst
// (len(idx) × cols). Used by MAE masking to keep only visible patches.
func GatherRows(dst, src []float32, idx []int, cols int) {
	for i, r := range idx {
		copy(dst[i*cols:(i+1)*cols], src[r*cols:(r+1)*cols])
	}
}

// ScatterRowsAdd adds row i of src into row idx[i] of dst. The adjoint
// of GatherRows.
func ScatterRowsAdd(dst, src []float32, idx []int, cols int) {
	for i, r := range idx {
		d := dst[r*cols : (r+1)*cols]
		s := src[i*cols : (i+1)*cols]
		for j := range d {
			d[j] += s[j]
		}
	}
}

func checkLen3(a, b, c []float32) {
	if len(a) != len(b) || len(b) != len(c) {
		panic("tensor: length mismatch")
	}
}

func checkLen2(a, b []float32) {
	if len(a) != len(b) {
		panic("tensor: length mismatch")
	}
}
