//go:build !amd64 || purego

package tensor

// haveFastKernel reports whether a SIMD micro-kernel is available. The
// portable scalar micro-kernel cannot beat the streaming axpy/dot
// kernels (both sit at the scalar FP port limit), so without SIMD the
// dispatchers skip the packing overhead and stream directly.
const haveFastKernel = false

// microKern dispatches the portable micro-kernel on platforms without a
// hand-written assembly kernel.
func microKern(kc int, ap, bp, cp *float32, ldc int) {
	kern6x16go(kc, ap, bp, cp, ldc)
}
