package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrSentinel enforces the repo's error conventions: package-level
// error values created with errors.New / fmt.Errorf are sentinels and
// must be named Err* (err* when unexported) so call sites read as
// errors.Is(err, dist.ErrAborted); and fmt.Errorf calls that carry an
// error argument must wrap it with %w — the PR 6 fault machinery
// (ErrInjectedFault ⊂ ErrAborted) and every errors.Is test in the
// tree depend on the unwrap chain staying intact.
var ErrSentinel = &Analyzer{
	Name: "errsentinel",
	Doc:  "package-level sentinels are named Err*; fmt.Errorf with an error argument uses %w",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				checkSentinelNames(pass, gd)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkErrorfWrap(pass, call)
				}
				return true
			})
		}
	},
}

// checkSentinelNames flags package-level error constructions bound to
// names that do not start with Err/err.
func checkSentinelNames(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			call, ok := vs.Values[i].(*ast.CallExpr)
			if !ok || !isErrCtor(pass, call) {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil || obj.Parent() != pass.Pkg.Scope() {
				continue // local declaration, not a sentinel
			}
			if !strings.HasPrefix(name.Name, "Err") && !strings.HasPrefix(name.Name, "err") {
				pass.Reportf(name.Pos(), "package-level error sentinel %s is not named Err*/err*", name.Name)
			}
		}
	}
}

// isErrCtor reports calls to errors.New or fmt.Errorf.
func isErrCtor(pass *Pass, call *ast.CallExpr) bool {
	return isPkgFunc(pass, call, "errors", "New") || isPkgFunc(pass, call, "fmt", "Errorf")
}

// isPkgFunc reports whether call invokes stdlib pkg.name.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

// checkErrorfWrap flags fmt.Errorf calls with more error-typed
// arguments than %w verbs in a literal format string.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wraps := countWrapVerbs(format)
	errArgs := 0
	for _, a := range call.Args[1:] {
		if isErrorType(pass.Info.TypeOf(a)) {
			errArgs++
		}
	}
	if errArgs > wraps {
		pass.Reportf(call.Pos(), "fmt.Errorf has %d error argument(s) but %d %%w verb(s): wrap with %%w so errors.Is/As keep working", errArgs, wraps)
	}
}

// countWrapVerbs counts %w verbs, skipping %% escapes.
func countWrapVerbs(format string) int {
	n := 0
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Scan past flags/width to the verb rune.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'w' {
			n++
		}
		i = j
	}
	return n
}

// isErrorType reports whether t is the error interface or implements
// it (the shapes %w accepts).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
