package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. The repo's
// reproducibility guarantees (PR 6 elastic resume, PR 9 bf16 GEMM) are
// stated bitwise and checked through math.Float32bits — direct float
// equality is almost always either a rounding hazard or an accidental
// NaN trap. Sanctioned sites (exact-propagation checks against a
// constant the code itself stored) carry a //statgate:allow pragma
// naming why exact comparison is sound there.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "== / != on floating-point operands outside sanctioned bitwise-comparison sites",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.Info.TypeOf(be.X)) || isFloat(pass.Info.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos, "floating-point %s comparison (use an epsilon, or math.Float32bits for a bitwise check)", be.Op)
				}
				return true
			})
		}
	},
}

// isFloat reports whether t's underlying type is a float or complex.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
