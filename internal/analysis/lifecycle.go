package analysis

import (
	"go/ast"
	"go/types"
)

// Lifecycle enforces the repo's acquire/release pairings on
// function-local resources: a dataload batch taken from a loader's
// Epoch/EpochN stream must be Recycled (or escape) before its
// iteration ends — a leaked batch starves the pool the PR 5 double-put
// guard protects — and an nn.InferCtx arena must be Released (or
// escape) before the function exits, the discipline PR 9's
// scratch-growth fix established. The pairs are configured in
// lifecyclePairs; new pooled resources join the gate by adding a row.
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc:  "pooled/arena resources (loader batches, nn.InferCtx) must be released or escape on every path",
	Run: func(pass *Pass) {
		checkPairs(pass, lifecyclePairs())
	},
}

// lifecyclePairs returns the configured acquire/release pairs.
func lifecyclePairs() []*pairSpec {
	return []*pairSpec{
		{
			resource: "loader batch",
			verb:     "Recycle",
			acquireRange: func(pass *Pass, call *ast.CallExpr) bool {
				return isMethodCallOn(pass, call, "repro/internal/dataload", "Loader", "Epoch") ||
					isMethodCallOn(pass, call, "repro/internal/dataload", "Loader", "EpochN")
			},
			isRelease: func(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
				return isArgOfMethod(pass, call, v, "repro/internal/dataload", "Loader", "Recycle")
			},
		},
		{
			resource: "inference scratch arena",
			verb:     "Release",
			acquireCall: func(pass *Pass, call *ast.CallExpr) bool {
				return isFuncCall(pass, call, "repro/internal/nn", "NewInferCtx")
			},
			isRelease: func(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
				return isMethodOnVar(pass, call, v, "Release")
			},
		},
	}
}

// callee resolves a call's target to its *types.Func, through method
// selections.
func callee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// isFuncCall reports whether call invokes pkgPath.name (a plain
// function).
func isFuncCall(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	fn := callee(pass, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isMethodCallOn reports whether call invokes method <name> with a
// receiver of (possibly pointer to) pkgPath.recvType.
func isMethodCallOn(pass *Pass, call *ast.CallExpr, pkgPath, recvType, name string) bool {
	fn := callee(pass, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return recvIs(sig.Recv().Type(), pkgPath, recvType)
}

// isArgOfMethod reports whether call is recv.<method>(..., v, ...)
// with the receiver type pkgPath.recvType and v among the arguments.
func isArgOfMethod(pass *Pass, call *ast.CallExpr, v *types.Var, pkgPath, recvType, method string) bool {
	if !isMethodCallOn(pass, call, pkgPath, recvType, method) {
		return false
	}
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			return true
		}
	}
	return false
}

// recvIs reports whether t (or its pointee) is pkgPath.name.
func recvIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
