package analysis

import (
	"go/token"
	"path/filepath"
)

// Config configures a whole-tree run.
type Config struct {
	// Root is the module root to analyze.
	Root string
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// Dirs restricts the run to these directories (absolute or
	// root-relative); nil means every Go directory under Root.
	Dirs []string
}

// Run analyzes the tree and returns the pragma-filtered findings in
// position order. A non-nil error means the tree could not be loaded
// (parse or type error) — analyzers never run over broken input.
func Run(cfg Config) ([]Finding, error) {
	loader, err := NewLoader(cfg.Root)
	if err != nil {
		return nil, err
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	dirs := cfg.Dirs
	if dirs == nil {
		dirs, err = GoDirs(cfg.Root)
		if err != nil {
			return nil, err
		}
	}
	var findings []Finding
	sup := suppressions{}
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cfg.Root, dir)
		}
		fs, err := analyzeDir(loader, dir, analyzers, sup)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	findings = filterSuppressed(findings, sup)
	sortFindings(findings)
	return findings, nil
}

// analyzeDir runs every analyzer over one directory, accumulating that
// directory's pragmas into sup and returning raw (unfiltered)
// findings.
func analyzeDir(loader *Loader, dir string, analyzers []*Analyzer, sup suppressions) ([]Finding, error) {
	rel, err := filepath.Rel(loader.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	path := loader.ModulePath
	if rel != "." {
		path = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}

	allFiles, asmFiles, err := loader.ParseDirAll(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	record := func(analyzer string) func(token.Pos, string) {
		return func(pos token.Pos, msg string) {
			p := loader.Fset.Position(pos)
			if !pos.IsValid() {
				p = token.Position{Filename: dir}
			}
			findings = append(findings, Finding{Pos: p, Analyzer: analyzer, Message: msg})
		}
	}
	// Pragmas come from every build variant of the directory, so a
	// suppression inside a purego file works on an amd64 host too.
	for _, f := range allFiles {
		for _, pr := range parsePragmas(f) {
			if pr.bad != "" {
				findings = append(findings, Finding{
					Pos:      loader.Fset.Position(pr.pos),
					Analyzer: "pragma",
					Message:  pr.bad,
				})
				continue
			}
			sup.add(loader.Fset, pr)
		}
	}

	var typed *Package
	for _, a := range analyzers {
		switch {
		case a.RunDir != nil:
			a.RunDir(&DirPass{
				Fset:     loader.Fset,
				Dir:      dir,
				Files:    allFiles,
				AsmFiles: asmFiles,
				report:   record(a.Name),
			})
		case a.Run != nil:
			if typed == nil {
				typed, err = loader.LoadDir(dir, path)
				if err != nil {
					return nil, err
				}
			}
			a.Run(&Pass{
				Fset:   loader.Fset,
				Files:  typed.Files,
				Pkg:    typed.Pkg,
				Info:   typed.Info,
				Dir:    dir,
				Path:   path,
				report: record(a.Name),
			})
		}
	}
	return findings, nil
}

// filterSuppressed drops findings covered by a pragma. Pragma-analyzer
// findings (malformed pragmas) are never suppressible.
func filterSuppressed(fs []Finding, sup suppressions) []Finding {
	out := fs[:0]
	for _, f := range fs {
		if f.Analyzer != "pragma" && sup.covers(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}
