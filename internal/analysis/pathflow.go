package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pathflow is the shared acquire/release path walker behind mustwait
// and lifecycle. It tracks, per function body, the set of local
// variables holding a live resource and reports every exit path
// (return, fall-off-the-end, loop-iteration end for per-iteration
// acquires) on which a live resource is neither released nor handed
// off.
//
// The walk is intraprocedural and deliberately modest: branches of an
// if/switch/select are analyzed independently and merged (a resource
// is live after the merge if any surviving branch leaves it live);
// loops are analyzed optimistically (a release inside a loop body
// counts even though the body may run zero times); panic and Fatal
// calls terminate a path without a report, since a dying process
// cannot leak into a pool. Ownership hand-offs — returning the
// resource, storing it into a field, global, container or channel,
// capturing it in a closure, or (when the spec says arguments consume)
// passing it to a call — end tracking. What remains is the pattern
// that has actually bitten this repo: an early return or continue that
// skips the Recycle/Release/Wait the happy path performs.

// A pairSpec describes one acquire/release invariant.
type pairSpec struct {
	// resource names the tracked thing in messages ("dist async handle").
	resource string
	// verb names the required release in messages ("Wait", "Recycle").
	verb string
	// acquireCall reports whether calling this callee yields a tracked
	// resource (assigned to a local).
	acquireCall func(pass *Pass, call *ast.CallExpr) bool
	// acquireRange reports whether `for v := range <call>` hands out a
	// tracked resource each iteration.
	acquireRange func(pass *Pass, call *ast.CallExpr) bool
	// isRelease reports whether this call releases v — as method
	// receiver (v.Release()) or as argument (loader.Recycle(v)).
	isRelease func(pass *Pass, call *ast.CallExpr, v *types.Var) bool
	// argConsumes: passing the resource as an ordinary call argument
	// transfers responsibility (true for async handles, whose ...After
	// chaining takes the predecessor as an argument).
	argConsumes bool
}

// flowState maps live resource variables to their acquire position.
type flowState map[*types.Var]token.Pos

func (s flowState) clone() flowState {
	c := make(flowState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// loopFrame tracks an enclosing breakable statement so break/continue
// can be checked against per-iteration acquires and so a break's state
// flows to the statement after its target.
type loopFrame struct {
	isLoop bool // for/range: a continue target
	// entry is the liveness state at loop entry: variables live at a
	// break/continue but NOT live at entry were acquired inside the
	// current iteration and die with it.
	entry flowState
	// breakStates collects the liveness state at each break targeting
	// this frame; they merge into the frame's exit state.
	breakStates []flowState
}

type pathWalker struct {
	pass  *Pass
	spec  *pairSpec
	loops []*loopFrame
}

// checkPairs runs every spec over every function body in the package.
func checkPairs(pass *Pass, specs []*pairSpec) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				for _, spec := range specs {
					w := &pathWalker{pass: pass, spec: spec}
					out, term := w.walkStmts(body.List, flowState{})
					if !term {
						for v, pos := range out {
							w.reportLeak(pos, v, "function ends")
						}
					}
				}
			}
			return true
		})
	}
}

func (w *pathWalker) reportLeak(acquirePos token.Pos, v *types.Var, how string) {
	w.pass.Reportf(acquirePos, "%s %s acquired here but %s without %s (and it does not escape)",
		w.spec.resource, v.Name(), how, w.spec.verb)
}

// walkStmts walks a statement list with the given entry state,
// returning the exit state and whether every path through the list
// terminates (returns, panics, or fatals).
func (w *pathWalker) walkStmts(list []ast.Stmt, st flowState) (flowState, bool) {
	for _, s := range list {
		var term bool
		st, term = w.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *pathWalker) walkStmt(s ast.Stmt, st flowState) (flowState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.walkAssign(s, st), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.scan(val, st, true)
				}
				if len(vs.Values) == len(vs.Names) {
					for i, val := range vs.Values {
						w.bindAcquire(vs.Names[i], val, st)
					}
				}
			}
		}
		return st, false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.spec.acquireCall != nil && w.spec.acquireCall(w.pass, call) {
				w.pass.Reportf(call.Pos(), "result of this call is a %s and is dropped: it must reach %s or escape",
					w.spec.resource, w.spec.verb)
				w.scanCallArgs(call, st)
				return st, false
			}
			if isTerminalCall(w.pass, call) {
				w.scan(s.X, st, false)
				return st, true
			}
		}
		w.scan(s.X, st, false)
		return st, false

	case *ast.SendStmt:
		w.scan(s.Chan, st, false)
		w.scan(s.Value, st, true)
		return st, false

	case *ast.IncDecStmt:
		w.scan(s.X, st, false)
		return st, false

	case *ast.DeferStmt:
		// A deferred release covers every later exit; approximating it
		// as an immediate release is safe for the early-return pattern
		// this walker exists to catch (defers almost always precede
		// the returns they guard).
		if w.releaseByCall(s.Call, st) {
			return st, false
		}
		w.scan(s.Call, st, true)
		return st, false

	case *ast.GoStmt:
		w.scan(s.Call, st, true)
		return st, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scan(r, st, true)
		}
		for v, pos := range st {
			w.reportLeak(pos, v, "this path returns")
		}
		return flowState{}, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scan(s.Cond, st, false)
		thenSt, t1 := w.walkStmts(s.Body.List, st.clone())
		elseSt, t2 := st.clone(), false
		if s.Else != nil {
			elseSt, t2 = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case t1 && t2:
			return flowState{}, true
		case t1:
			return elseSt, false
		case t2:
			return thenSt, false
		default:
			return mergeAny(thenSt, elseSt), false
		}

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scan(s.Cond, st, false)
		}
		fr := &loopFrame{isLoop: true, entry: st.clone()}
		w.loops = append(w.loops, fr)
		bodySt, _ := w.walkStmts(s.Body.List, st.clone())
		if s.Post != nil {
			w.scan(postExpr(s.Post), bodySt, false)
		}
		w.loops = w.loops[:len(w.loops)-1]
		out := mergeLoop(st, bodySt)
		for _, bs := range fr.breakStates {
			out = mergeAny(out, bs)
		}
		return out, false

	case *ast.RangeStmt:
		return w.walkRange(s, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scan(s.Tag, st, false)
		}
		return w.walkClauses(clauseBodies(s.Body), hasDefaultClause(s.Body), st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if as, ok := s.Assign.(*ast.AssignStmt); ok {
			for _, r := range as.Rhs {
				w.scan(r, st, false)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			w.scan(es.X, st, false)
		}
		return w.walkClauses(clauseBodies(s.Body), hasDefaultClause(s.Body), st)

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			var body []ast.Stmt
			if cc.Comm != nil {
				body = append(body, cc.Comm)
			}
			body = append(body, cc.Body...)
			bodies = append(bodies, body)
		}
		// A select always takes some clause, so there is no implicit
		// fall-through path.
		return w.walkClauses(bodies, true, st)

	case *ast.BranchStmt:
		// break/continue/goto end the current path; break additionally
		// delivers its state to the statement after its target.
		if s.Label == nil && (s.Tok == token.BREAK || s.Tok == token.CONTINUE) {
			w.branchExit(s, st)
		}
		return flowState{}, true

	default:
		return st, false
	}
}

// postExpr digs the expression out of a for-post statement for
// scanning; nil when there is none.
func postExpr(s ast.Stmt) ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return s.X
	case *ast.IncDecStmt:
		return s.X
	}
	return nil
}

// branchExit handles an unlabeled break or continue: per-iteration
// acquires still live when their loop's iteration ends are leaks, and
// a break's surviving state joins its target's exit.
func (w *pathWalker) branchExit(s *ast.BranchStmt, st flowState) {
	// Find the frame the unlabeled branch targets: continue targets
	// the innermost loop, break the innermost breakable.
	for i := len(w.loops) - 1; i >= 0; i-- {
		fr := w.loops[i]
		if s.Tok == token.CONTINUE && !fr.isLoop {
			continue
		}
		if fr.isLoop {
			for v, pos := range st {
				if _, wasLive := fr.entry[v]; !wasLive {
					w.reportLeak(pos, v, "this "+s.Tok.String()+" ends the iteration")
					delete(st, v)
				}
			}
		}
		if s.Tok == token.BREAK {
			fr.breakStates = append(fr.breakStates, st.clone())
		}
		return
	}
}

// walkClauses analyzes switch/select clause bodies independently and
// merges the survivors; exhaustive means there is no implicit
// fall-through path (a default clause, or a select).
func (w *pathWalker) walkClauses(bodies [][]ast.Stmt, exhaustive bool, st flowState) (flowState, bool) {
	fr := &loopFrame{isLoop: false, entry: st.clone()}
	w.loops = append(w.loops, fr)
	var survivors []flowState
	for _, body := range bodies {
		out, term := w.walkStmts(body, st.clone())
		if !term {
			survivors = append(survivors, out)
		}
	}
	w.loops = w.loops[:len(w.loops)-1]
	survivors = append(survivors, fr.breakStates...)
	if !exhaustive {
		survivors = append(survivors, st)
	}
	if len(survivors) == 0 {
		return flowState{}, true
	}
	out := survivors[0]
	for _, s := range survivors[1:] {
		out = mergeAny(out, s)
	}
	return out, false
}

func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

// walkRange handles both ordinary ranges and per-iteration acquires
// (`for batch := range loader.EpochN(n)`).
func (w *pathWalker) walkRange(s *ast.RangeStmt, st flowState) (flowState, bool) {
	var acquired *types.Var
	if call, ok := s.X.(*ast.CallExpr); ok && w.spec.acquireRange != nil && w.spec.acquireRange(w.pass, call) {
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			if v, ok := w.pass.Info.Defs[id].(*types.Var); ok {
				acquired = v
			}
		}
		w.scanCallArgs(call, st)
	} else {
		w.scan(s.X, st, false)
	}
	bodySt := st.clone()
	if acquired != nil {
		bodySt[acquired] = s.Key.Pos()
	}
	fr := &loopFrame{isLoop: true, entry: st.clone()}
	w.loops = append(w.loops, fr)
	out, _ := w.walkStmts(s.Body.List, bodySt)
	w.loops = w.loops[:len(w.loops)-1]
	if acquired != nil {
		if pos, live := out[acquired]; live {
			w.reportLeak(pos, acquired, "the loop iteration ends")
		}
		delete(out, acquired)
	}
	merged := mergeLoop(st, out)
	for _, bs := range fr.breakStates {
		merged = mergeAny(merged, bs)
	}
	return merged, false
}

// walkAssign scans the right-hand sides (consuming: assignment hands
// the value off) and then binds fresh acquires to their left-hand
// identifiers.
func (w *pathWalker) walkAssign(s *ast.AssignStmt, st flowState) flowState {
	for i, r := range s.Rhs {
		// `_ = h` is not a hand-off: blank assignment of a bare ident
		// neither waits nor escapes, so it must not clear tracking.
		if len(s.Lhs) == len(s.Rhs) && isIdent(r) {
			if lhs, ok := s.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
				continue
			}
		}
		w.scan(r, st, true)
	}
	for _, l := range s.Lhs {
		if !isIdent(l) {
			w.scan(l, st, false)
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, r := range s.Rhs {
			if id, ok := s.Lhs[i].(*ast.Ident); ok {
				w.rebind(id, r, st)
			}
		}
	} else if len(s.Rhs) == 1 {
		// Multi-value: v, err := acquire() — bind the first non-blank
		// ident if the call acquires.
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && w.spec.acquireCall != nil && w.spec.acquireCall(w.pass, call) {
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					w.rebind(id, s.Rhs[0], st)
					break
				}
			}
		}
	}
	return st
}

// rebind processes one lhs ident = rhs pair: overwriting a live
// resource is a leak; assigning a fresh acquire starts tracking.
func (w *pathWalker) rebind(id *ast.Ident, rhs ast.Expr, st flowState) {
	isAcq := false
	if call, ok := rhs.(*ast.CallExpr); ok && w.spec.acquireCall != nil && w.spec.acquireCall(w.pass, call) {
		isAcq = true
	}
	if id.Name == "_" {
		if isAcq {
			w.pass.Reportf(rhs.Pos(), "%s assigned to _ here: it must reach %s or escape",
				w.spec.resource, w.spec.verb)
		}
		return
	}
	obj := w.pass.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if pos, live := st[v]; live {
		// The rhs scan already cleared v if the new value consumed it
		// (h = chain(h)); a survivor here is overwritten and lost.
		w.reportLeak(pos, v, "this assignment overwrites it")
		delete(st, v)
	}
	if isAcq && v.Pkg() == w.pass.Pkg && !v.IsField() && v.Parent() != v.Pkg().Scope() {
		st[v] = id.Pos()
	}
}

// bindAcquire is rebind for `var x = acquire()` declarations.
func (w *pathWalker) bindAcquire(id *ast.Ident, rhs ast.Expr, st flowState) {
	w.rebind(id, rhs, st)
}

func isIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}

// releaseByCall clears any live variable this call releases, and
// reports whether it was a release.
func (w *pathWalker) releaseByCall(call *ast.CallExpr, st flowState) bool {
	if w.spec.isRelease == nil {
		return false
	}
	for v := range st {
		if w.spec.isRelease(w.pass, call, v) {
			delete(st, v)
			return true
		}
	}
	return false
}

// scan walks an expression updating st. consuming means the value
// flows somewhere that takes ownership (return, store, send,
// composite literal, alias assignment); a live ident reached in a
// consuming context stops being tracked. Closure capture and
// address-taking always consume. Call arguments consume only when the
// spec says so; the callee may instead be a configured release.
func (w *pathWalker) scan(e ast.Expr, st flowState, consuming bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if !consuming {
			return
		}
		if v, ok := w.objOf(e); ok {
			delete(st, v)
		}
	case *ast.CallExpr:
		if w.releaseByCall(e, st) {
			// Still scan non-ident argument subexpressions.
			for _, a := range e.Args {
				if !isIdent(a) {
					w.scan(a, st, w.spec.argConsumes)
				}
			}
			return
		}
		w.scan(e.Fun, st, false)
		w.scanCallArgs(e, st)
	case *ast.SelectorExpr:
		// Field access / method value on the resource is plain use.
		w.scan(e.X, st, false)
	case *ast.FuncLit:
		// Any capture of a live resource escapes into the closure.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.objOf(id); ok {
					delete(st, v)
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			w.scan(e.X, st, true)
			return
		}
		w.scan(e.X, st, false)
	case *ast.StarExpr:
		w.scan(e.X, st, false)
	case *ast.ParenExpr:
		w.scan(e.X, st, consuming)
	case *ast.BinaryExpr:
		w.scan(e.X, st, false)
		w.scan(e.Y, st, false)
	case *ast.IndexExpr:
		w.scan(e.X, st, false)
		w.scan(e.Index, st, false)
	case *ast.SliceExpr:
		w.scan(e.X, st, false)
		w.scan(e.Low, st, false)
		w.scan(e.High, st, false)
		w.scan(e.Max, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scan(kv.Value, st, true)
				continue
			}
			w.scan(el, st, true)
		}
	case *ast.KeyValueExpr:
		w.scan(e.Value, st, true)
	case *ast.TypeAssertExpr:
		w.scan(e.X, st, false)
	}
}

// scanCallArgs scans a call's arguments, consuming idents when the
// spec transfers ownership through calls.
func (w *pathWalker) scanCallArgs(call *ast.CallExpr, st flowState) {
	for _, a := range call.Args {
		w.scan(a, st, w.spec.argConsumes)
	}
}

// objOf resolves an ident to a live tracked variable.
func (w *pathWalker) objOf(id *ast.Ident) (*types.Var, bool) {
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		obj = w.pass.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// isTerminalCall reports calls that end the path: panic, os.Exit,
// log/testing Fatal variants, and runtime.Goexit.
func isTerminalCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun]; ok && obj == types.Universe.Lookup("panic") {
			return true
		}
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit", "Skip", "Skipf", "SkipNow", "FailNow":
			return true
		}
	}
	return false
}

// mergeAny unions liveness: a resource is live after a branch merge if
// any surviving branch leaves it live.
func mergeAny(a, b flowState) flowState {
	for v, pos := range b {
		if _, ok := a[v]; !ok {
			a[v] = pos
		}
	}
	return a
}

// mergeLoop merges a loop body's exit state into the pre-loop state
// optimistically: a release inside the body counts even though the
// body may run zero times (per-iteration leaks are reported inside
// walkRange/checkBranchLeak instead).
func mergeLoop(pre, body flowState) flowState {
	out := flowState{}
	for v, pos := range pre {
		if _, stillLive := body[v]; stillLive {
			out[v] = pos
		}
	}
	return out
}
