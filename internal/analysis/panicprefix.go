package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// PanicPrefix requires panic string literals in internal/* packages to
// start with "<pkg>: ", so a production crash names the layer that
// raised it without a symbolized stack. Literals reached through
// fmt.Sprintf are checked via their format string; panics of error
// values or variables are out of scope (sentinels carry their own
// prefix, enforced by errsentinel).
var PanicPrefix = &Analyzer{
	Name: "panicprefix",
	Doc:  `panic string literals in internal/* start with "<pkg>: "`,
	Run: func(pass *Pass) {
		if !strings.Contains(pass.Path, "/internal/") {
			return
		}
		want := pass.Pkg.Name() + ": "
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || pass.Info.Uses[id] != types.Universe.Lookup("panic") {
					return true
				}
				if lit, ok := panicLiteral(call.Args[0]); ok {
					if !strings.HasPrefix(lit.val, want) {
						pass.Reportf(lit.pos.Pos(), "panic message %q does not start with %q", clip(lit.val), want)
					}
				}
				return true
			})
		}
	},
}

type panicLit struct {
	pos ast.Node
	val string
}

// panicLiteral extracts the string literal a panic argument boils down
// to: a direct literal, or the format string of an fmt.Sprintf call.
func panicLiteral(arg ast.Expr) (panicLit, bool) {
	switch arg := arg.(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(arg.Value); err == nil {
			return panicLit{pos: arg, val: s}, true
		}
	case *ast.CallExpr:
		if sel, ok := arg.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" && len(arg.Args) > 0 {
				if lit, ok := arg.Args[0].(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(lit.Value); err == nil {
						return panicLit{pos: lit, val: s}, true
					}
				}
			}
		}
	}
	return panicLit{}, false
}

// clip shortens long messages for the diagnostic.
func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
