package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// A Loader type-checks packages from source. Imports under the repo
// module path resolve against ModuleRoot; everything else (the
// standard library — the repo's go.mod declares no dependencies) is
// compiled from GOROOT source by the stdlib "source" importer, so the
// driver needs no installed export data and no tooling beyond the Go
// distribution itself.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package
}

// A Package is one loaded, type-checked package: the default build
// context's non-test files with full type information.
type Package struct {
	Dir   string
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader returns a Loader rooted at the module directory. The
// module path is read from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if p, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(p), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// FindModuleRoot ascends from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer: module-internal paths load from
// source under ModuleRoot, everything else delegates to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// moduleRel maps an import path inside the module to a root-relative
// directory.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return ".", true
	}
	if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rel, true
	}
	return "", false
}

// LoadDir type-checks the package in dir under the given import path,
// memoized by path. Only the default build context's non-test files
// participate (the same file set `go build` compiles on this host).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Dir: dir, Path: path, Files: files, Pkg: pkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// ParseDirAll parses every non-test .go file in dir regardless of
// build constraints (syntax only) and lists the *.s files — the raw
// material for directory-scope analyzers.
func (l *Loader) ParseDirAll(dir string) (map[string]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: %w", err)
	}
	files := map[string]*ast.File{}
	var asm []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, "_test.go"):
		case strings.HasSuffix(name, ".go"):
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("analysis: %w", err)
			}
			files[name] = f
		case strings.HasSuffix(name, ".s"):
			asm = append(asm, name)
		}
	}
	return files, asm, nil
}

// GoDirs walks root and returns every directory holding non-test .go
// files, skipping hidden directories and testdata trees.
func GoDirs(root string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}
