package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// pragmaPrefix introduces a suppression comment. The full form is
//
//	//statgate:allow <analyzer> — <reason>
//
// placed on the finding's line or the line directly above it. The
// analyzer name must be one of the registered analyzers and the reason
// must be non-empty; anything else is reported as a finding of the
// synthetic "pragma" analyzer so a typo cannot silently widen the
// suppression.
const pragmaPrefix = "statgate:allow"

// A pragma is one parsed suppression comment.
type pragma struct {
	pos      token.Pos
	analyzer string
	reason   string
	bad      string // non-empty when malformed: the complaint
}

// parsePragmas extracts every statgate:allow comment from f.
func parsePragmas(f *ast.File) []pragma {
	var out []pragma
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			body, ok := strings.CutPrefix(text, pragmaPrefix)
			if !ok {
				continue
			}
			p := pragma{pos: c.Pos()}
			// Accept an em dash or a double hyphen between analyzer
			// and reason.
			body = strings.TrimSpace(body)
			var name, reason string
			for _, sep := range []string{"—", "--"} {
				if a, r, found := strings.Cut(body, sep); found {
					name, reason = strings.TrimSpace(a), strings.TrimSpace(r)
					break
				}
			}
			switch {
			case name == "" && reason == "":
				p.bad = "malformed pragma: want //statgate:allow <analyzer> — <reason>"
			case name == "":
				p.bad = "pragma names no analyzer"
			case reason == "":
				p.bad = "pragma gives no reason"
			default:
				p.analyzer = name
				p.reason = reason
				if !knownAnalyzer(name) {
					p.bad = "pragma names unknown analyzer " + name
				}
			}
			out = append(out, p)
		}
	}
	return out
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// suppressions indexes valid pragmas by (file, line, analyzer): a
// finding is suppressed when a pragma for its analyzer sits on its
// line or the line above.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(fset *token.FileSet, p pragma) {
	pos := fset.Position(p.pos)
	byLine := s[pos.Filename]
	if byLine == nil {
		byLine = map[int]map[string]bool{}
		s[pos.Filename] = byLine
	}
	byAn := byLine[pos.Line]
	if byAn == nil {
		byAn = map[string]bool{}
		byLine[pos.Line] = byAn
	}
	byAn[p.analyzer] = true
}

func (s suppressions) covers(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if byLine[line][f.Analyzer] {
			return true
		}
	}
	return false
}
