package analysis

import (
	"path/filepath"
	"testing"
)

// The fixture tests run each analyzer over its annotated testdata
// package and require an exact match between findings and `// want`
// comments — every analyzer has positive cases (deliberately broken
// code), negative cases (idiomatic code that must stay silent), and a
// pragma-suppressed case.

func fixtureRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	return root
}

func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range CheckFixture(fixtureRoot(t), analyzers, dir) {
		t.Error(p)
	}
}

func TestFloatEqFixture(t *testing.T) { runFixture(t, "floateq", []*Analyzer{FloatEq}) }

func TestPanicPrefixFixture(t *testing.T) { runFixture(t, "panicprefix", []*Analyzer{PanicPrefix}) }

func TestErrSentinelFixture(t *testing.T) { runFixture(t, "errsentinel", []*Analyzer{ErrSentinel}) }

func TestMustWaitFixture(t *testing.T) { runFixture(t, "mustwait", []*Analyzer{MustWait}) }

func TestLifecycleFixture(t *testing.T) { runFixture(t, "lifecycle", []*Analyzer{Lifecycle}) }

// TestPragmaFixture checks that malformed pragmas are findings of the
// synthetic pragma analyzer and do not suppress anything.
func TestPragmaFixture(t *testing.T) { runFixture(t, "pragma", []*Analyzer{FloatEq}) }

func TestAsmPairFixtures(t *testing.T) {
	for _, name := range []string{"asmpair_ok", "asmpair_missing_twin", "asmpair_bad"} {
		t.Run(name, func(t *testing.T) { runFixture(t, name, []*Analyzer{AsmPair}) })
	}
}

// TestByName pins the CLI's -run resolution.
func TestByName(t *testing.T) {
	as, err := ByName([]string{"floateq", "asmpair"})
	if err != nil || len(as) != 2 || as[0] != FloatEq || as[1] != AsmPair {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestTreeClean is the gate's own gate: the tree this test ships in
// must produce zero unsuppressed findings.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck in short mode")
	}
	findings, err := Run(Config{Root: fixtureRoot(t)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
}
