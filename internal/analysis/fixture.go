package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// This file is the analysistest-style fixture harness: a fixture is a
// directory of Go files under testdata/src/<name> annotated with
//
//	// want "regex"
//
// comments on the lines where findings are expected (several quoted
// regexes on one comment expect several findings on that line; backquoted
// regexes work too). CheckFixture runs the given analyzers over the
// directory through the same driver `make analyze` uses — pragma
// filtering included, so fixtures can assert suppression as well —
// and returns one error per mismatch in either direction. The
// docgate and statgate CLI tests reuse the same layout via Golden.

// wantRe matches the quoted expectation strings of a want comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// A want is one expected-finding annotation.
type want struct {
	file string // base filename
	line int
	re   *regexp.Regexp
	used bool
}

// CheckFixture analyzes the fixture directory and compares findings
// against its want comments, returning a description of every
// mismatch. root must be the module root the fixture's imports
// resolve against.
func CheckFixture(root string, analyzers []*Analyzer, dir string) []string {
	findings, err := Run(Config{Root: root, Analyzers: analyzers, Dirs: []string{dir}})
	if err != nil {
		return []string{err.Error()}
	}
	wants, err := collectWants(dir)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(f.Pos.Filename) && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for _, w := range wants {
		if !w.used {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", w.file, w.line, w.re))
		}
	}
	return problems
}

// collectWants parses every non-test Go file in dir for want comments.
func collectWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	fset := token.NewFileSet()
	var wants []*want
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// A want may trail other comment text on the same line
				// ("//statgate:allow ... // want `...`"), which Go folds
				// into a single comment token.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				body := c.Text[idx+len("// want "):]
				line := fset.Position(c.Pos()).Line
				for _, m := range wantRe.FindAllStringSubmatch(body, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						return nil, fmt.Errorf("analysis: %s:%d: bad want regexp: %w", name, line, err)
					}
					wants = append(wants, &want{file: name, line: line, re: re})
				}
			}
		}
	}
	return wants, nil
}
