// Package analysis is the repo's static-analysis gate: a
// dependency-free (stdlib go/parser + go/types + go/importer) analyzer
// driver plus the suite of repo-invariant analyzers that `make
// analyze` and the CI `analyze` job run over the whole tree via
// cmd/statgate.
//
// Each analyzer mechanically enforces a convention that earlier PRs
// established by hand and that code review alone does not scale to:
//
//   - asmpair: every *_amd64.s / *_amd64.go kernel file has a
//     *_generic.go purego twin declaring the same bodied function set,
//     with the amd64 side gated `amd64 && !purego` and the generic
//     side `!amd64 || purego` (the PR 1/4/9 kernel dispatch pattern).
//   - mustwait: a locally created dist async collective handle must
//     reach Wait (directly or via ...After chaining) or escape the
//     function on every path — abandoned handles are failed with
//     ErrAborted at rank exit (PR 5), so a dropped handle is a bug.
//   - lifecycle: function-local acquisitions of pooled or arena
//     resources (dataload batches from Epoch/EpochN, nn.InferCtx)
//     must be released (Recycle / Release) or escape on every path;
//     PR 5's double-put guard and PR 9's scratch-growth fix were both
//     slips of exactly this kind.
//   - panicprefix: panic string literals in internal/* start with
//     "<pkg>: " so a crash names its layer.
//   - floateq: == / != on floating-point operands outside sanctioned
//     bitwise-comparison sites — the repo's bitwise guarantees (PR 6
//     elastic resume, PR 9 bf16 GEMM) are checked through exact
//     integer bit patterns, not stray float equality.
//   - errsentinel: package-level error sentinels are named Err*/err*,
//     and fmt.Errorf with an error argument wraps it with %w so
//     errors.Is/As keep working across layers (the PR 6 fault
//     machinery depends on unwrapping).
//
// A finding is suppressible only via an explicit pragma on the
// offending line or the line directly above it:
//
//	//statgate:allow <analyzer> — <reason>
//
// The reason is mandatory; a malformed pragma is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one repo invariant. Exactly one of Run and RunDir
// is set: Run receives a fully type-checked package (the default build
// context's non-test files); RunDir receives every parsed non-test Go
// file in a directory regardless of build constraints, for checks —
// like the asm/purego pairing — that must see all build variants of a
// package at once.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant description shown by statgate -list.
	Doc    string
	Run    func(*Pass)
	RunDir func(*DirPass)
}

// A Pass presents one type-checked package to an Analyzer.Run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dir is the package directory on disk; Path its import path.
	Dir  string
	Path string

	report func(token.Pos, string)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// A DirPass presents one directory's full file set (every non-test .go
// file, all build variants, syntax only) to an Analyzer.RunDir.
type DirPass struct {
	Fset *token.FileSet
	Dir  string
	// Files maps base filename to its parsed syntax tree.
	Files map[string]*ast.File
	// AsmFiles lists base filenames of *.s files in the directory.
	AsmFiles []string

	report func(token.Pos, string)
}

// Reportf records a finding at pos.
func (p *DirPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// ReportFile records a finding against a file as a whole (line 1),
// used when the offense is the file set itself (a missing twin).
func (p *DirPass) ReportFile(name, msg string) {
	if f, ok := p.Files[name]; ok {
		p.report(f.Package, msg)
		return
	}
	p.report(token.NoPos, name+": "+msg)
}

// A Finding is one analyzer diagnostic, already pragma-filtered by the
// driver.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AsmPair,
		MustWait,
		Lifecycle,
		PanicPrefix,
		FloatEq,
		ErrSentinel,
	}
}

// ByName returns the named analyzers out of All, or an error naming
// the first unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
