package analysis

import (
	"bufio"
	"go/ast"
	"go/build/constraint"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AsmPair enforces the kernel dispatch pattern PRs 1/4/9 established:
// every assembly kernel file <base>_amd64.s and its declaring
// <base>_amd64.go must have a <base>_generic.go purego twin, the amd64
// side gated `amd64 && !purego` (the .s file too — the assembler would
// otherwise still pick it up under -tags purego), the generic side
// satisfiable under both !amd64 and amd64+purego, and the two .go
// files must define the same set of bodied functions, so every entry
// point the fast path exports exists — same name — on the portable
// path and a purego build can never lose a symbol.
var AsmPair = &Analyzer{
	Name: "asmpair",
	Doc:  "every *_amd64.s/*_amd64.go kernel file has a *_generic.go purego twin with the same bodied function set and correct build tags",
	RunDir: func(pass *DirPass) {
		// Collect kernel bases from both the .s files and the _amd64.go
		// declarations.
		bases := map[string]bool{}
		for _, s := range pass.AsmFiles {
			if b, ok := strings.CutSuffix(s, "_amd64.s"); ok {
				bases[b] = true
			}
		}
		for name := range pass.Files {
			if b, ok := strings.CutSuffix(name, "_amd64.go"); ok {
				bases[b] = true
			}
		}
		var sorted []string
		for b := range bases {
			sorted = append(sorted, b)
		}
		sort.Strings(sorted)
		for _, base := range sorted {
			checkPair(pass, base)
		}
	},
}

func checkPair(pass *DirPass, base string) {
	amdGo := base + "_amd64.go"
	genGo := base + "_generic.go"
	amdFile, haveAmdGo := pass.Files[amdGo]
	genFile, haveGen := pass.Files[genGo]

	if !haveAmdGo {
		pass.ReportFile(genGo, "kernel "+base+" has assembly ("+base+"_amd64.s) but no "+amdGo+" declaring it")
		return
	}
	if !haveGen {
		pass.ReportFile(amdGo, "kernel file "+amdGo+" has no purego twin "+genGo)
		return
	}

	// Build-tag gating. The amd64 side must vanish under purego and be
	// present on a plain amd64 build; the generic side must cover both
	// worlds the amd64 side leaves.
	if expr, ok := buildConstraint(amdFile); !ok {
		pass.ReportFile(amdGo, amdGo+" has no //go:build constraint (want amd64 && !purego)")
	} else {
		if evalTags(expr, true, true) {
			pass.ReportFile(amdGo, amdGo+" is still built under -tags purego (want a !purego constraint)")
		}
		if !evalTags(expr, true, false) {
			pass.ReportFile(amdGo, amdGo+" is not built on a plain amd64 build: constraint is unsatisfiable")
		}
	}
	if expr, ok := buildConstraint(genFile); !ok {
		pass.ReportFile(genGo, genGo+" has no //go:build constraint (want !amd64 || purego)")
	} else {
		if !evalTags(expr, false, false) {
			pass.ReportFile(genGo, genGo+" is not built on non-amd64 platforms (want !amd64 || purego)")
		}
		if !evalTags(expr, true, true) {
			pass.ReportFile(genGo, genGo+" is not built under -tags purego on amd64 (want !amd64 || purego)")
		}
	}

	// The .s file must carry the same purego gate, or the assembler
	// keeps assembling it when the Go declarations are gone.
	for _, s := range pass.AsmFiles {
		if s != base+"_amd64.s" {
			continue
		}
		expr, ok := asmConstraint(filepath.Join(pass.Dir, s))
		if !ok {
			pass.ReportFile(amdGo, s+" has no //go:build constraint (want amd64 && !purego)")
		} else if evalTags(expr, true, true) {
			pass.ReportFile(amdGo, s+" is still assembled under -tags purego (want a !purego constraint)")
		}
	}

	// Function-set parity: every bodied function on the fast side must
	// exist on the portable side and vice versa. Assembly stubs
	// (bodiless declarations) are the fast path's private surface and
	// are exempt.
	amdFns := bodiedFuncs(amdFile)
	genFns := bodiedFuncs(genFile)
	for _, fn := range sortedKeys(amdFns) {
		if _, ok := genFns[fn]; !ok {
			pass.Reportf(amdFns[fn], "function %s in %s has no counterpart in %s: a purego build loses it", fn, amdGo, genGo)
		}
	}
	for _, fn := range sortedKeys(genFns) {
		if _, ok := amdFns[fn]; !ok {
			pass.Reportf(genFns[fn], "function %s in %s has no counterpart in %s: the builds diverge", fn, genGo, amdGo)
		}
	}
}

// bodiedFuncs maps the names of top-level functions with bodies to
// their positions. Methods are keyed as Recv.Name.
func bodiedFuncs(f *ast.File) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		out[name] = fd.Name.Pos()
	}
	return out
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	}
	return "?"
}

func sortedKeys(m map[string]token.Pos) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// buildConstraint extracts the //go:build expression from a parsed Go
// file's leading comments.
func buildConstraint(f *ast.File) (constraint.Expr, bool) {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return nil, false
				}
				return expr, true
			}
		}
	}
	return nil, false
}

// asmConstraint scans an assembly file's leading comment lines for a
// //go:build expression.
func asmConstraint(path string) (constraint.Expr, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			if constraint.IsGoBuild(line) {
				expr, err := constraint.Parse(line)
				if err != nil {
					return nil, false
				}
				return expr, true
			}
			continue
		}
		break // past the header
	}
	return nil, false
}

// evalTags evaluates a build expression in a world where amd64 and
// purego have the given truth values and every other tag is false
// (except the gc toolchain tag, always true for this repo).
func evalTags(expr constraint.Expr, amd64, purego bool) bool {
	return expr.Eval(func(tag string) bool {
		switch tag {
		case "amd64":
			return amd64
		case "purego":
			return purego
		case "gc":
			return true
		}
		return false
	})
}
