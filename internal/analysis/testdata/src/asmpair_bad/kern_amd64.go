//go:build amd64

// Package kern is a statgate fixture: wrong build tags on every file
// plus bodied-function drift in both directions.
package kern // want `kern_amd64.go is still built under -tags purego` `kern_amd64.s has no //go:build constraint`

func dotAVX2(a, b []float32) float32

// Dot dispatches to the assembly kernel.
func Dot(a, b []float32) float32 {
	return dotAVX2(a, b)
}

// Extra exists only on the fast path.
func Extra(a []float32) float32 { // want `function Extra in kern_amd64.go has no counterpart`
	return dotAVX2(a, a)
}
