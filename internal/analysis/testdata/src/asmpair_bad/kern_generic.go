//go:build !amd64

// Package kern is a statgate fixture: wrong build tags on every file
// plus bodied-function drift in both directions.
package kern // want `kern_generic.go is not built under -tags purego on amd64`

// Dot is the portable twin.
func Dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// OnlyGeneric exists only on the portable path.
func OnlyGeneric(a []float32) float32 { // want `function OnlyGeneric in kern_generic.go has no counterpart`
	return Dot(a, a)
}
