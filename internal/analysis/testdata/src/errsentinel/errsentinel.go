// Package errsentinel is a statgate fixture: sentinel naming and %w
// wrapping positives and negatives.
package errsentinel

import (
	"errors"
	"fmt"
)

// ErrGood is a well-named exported sentinel.
var ErrGood = errors.New("errsentinel: good")

// errUnexported is a well-named unexported sentinel.
var errUnexported = errors.New("errsentinel: unexported")

// Oops is misnamed.
var Oops = errors.New("errsentinel: misnamed") // want `not named Err\*/err\*`

// BadWrap is a sentinel built with Errorf; still a sentinel, still
// misnamed.
var BadWrap = fmt.Errorf("errsentinel: also misnamed") // want `not named Err\*/err\*`

// NotAnError is fine: not an error construction at all.
var NotAnError = fmt.Sprintf("errsentinel: %d", 1)

func wrapGood(err error) error {
	return fmt.Errorf("errsentinel: context: %w", err)
}

func wrapBad(err error) error {
	return fmt.Errorf("errsentinel: context: %v", err) // want `wrap with %w`
}

func wrapTwoOneMissing(a, b error) error {
	return fmt.Errorf("errsentinel: %w then %v", a, b) // want `2 error argument\(s\) but 1 %w verb`
}

func wrapEscapedPercent(err error) error {
	return fmt.Errorf("errsentinel: 100%% broken: %w", err)
}

func notAnErrArg(s string) error {
	return fmt.Errorf("errsentinel: plain %s", s)
}

func localNotSentinel() error {
	wrapped := errors.New("errsentinel: locals are not sentinels")
	return wrapped
}

func allowed(err error) error {
	//statgate:allow errsentinel — fixture: message-only context, wrapping would leak the cause upward
	return fmt.Errorf("errsentinel: opaque: %v", err)
}

var _ = errUnexported
