// Package panicprefix is a statgate fixture: panic literals with and
// without the required package prefix.
package panicprefix

import (
	"errors"
	"fmt"
)

func bad() {
	panic("missing prefix") // want `does not start with "panicprefix: "`
}

func badSprintf(n int) {
	panic(fmt.Sprintf("got %d values", n)) // want `does not start with "panicprefix: "`
}

func badOtherPrefix() {
	panic("otherpkg: wrong layer") // want `does not start with "panicprefix: "`
}

func good() {
	panic("panicprefix: exact prefix")
}

func goodSprintf(n int) {
	panic(fmt.Sprintf("panicprefix: got %d values", n))
}

func goodNonLiteral() {
	panic(errors.New("panicprefix: errors carry their own prefix, checked elsewhere"))
}

func allowed() {
	//statgate:allow panicprefix — fixture: message intentionally mimics the stdlib
	panic("runtime error: lookalike")
}
