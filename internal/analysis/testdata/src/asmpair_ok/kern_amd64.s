//go:build amd64 && !purego

#include "textflag.h"

// scaleAVX2 is a fixture stub; testdata is never assembled.
TEXT ·scaleAVX2(SB), NOSPLIT, $0-28
	RET
