//go:build !amd64 || purego

// Package kern is a statgate fixture: a correctly paired kernel file
// set that must produce no asmpair findings.
package kern

// Scale is the portable twin of the amd64 dispatch entry point.
func Scale(dst []float32, k float32) {
	for i := range dst {
		dst[i] *= k
	}
}
