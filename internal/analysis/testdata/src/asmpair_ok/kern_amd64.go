//go:build amd64 && !purego

// Package kern is a statgate fixture: a correctly paired kernel file
// set that must produce no asmpair findings.
package kern

// scaleAVX2 is the assembly stub: bodiless, exempt from parity.
func scaleAVX2(dst []float32, k float32)

// Scale is the dispatch entry point.
func Scale(dst []float32, k float32) {
	scaleAVX2(dst, k)
}
