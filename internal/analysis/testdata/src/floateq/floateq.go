// Package floateq is a statgate fixture: float equality positives,
// negatives, and a pragma-suppressed site.
package floateq

func bad32(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func bad64(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func badMixedConst(a float32) bool {
	return a == 1.5 // want `floating-point == comparison`
}

type celsius float64

func badNamed(a, b celsius) bool {
	return a == b // want `floating-point == comparison`
}

func okInt(a, b int) bool {
	return a == b
}

func okString(a, b string) bool {
	return a != b
}

func okOrdered(a, b float32) bool {
	return a < b
}

func allowed(a, b float32) bool {
	//statgate:allow floateq — fixture: sanctioned exact-propagation check
	return a == b
}
