//go:build amd64 && !purego

#include "textflag.h"

TEXT ·sumAVX2(SB), NOSPLIT, $0-28
	RET
