//go:build amd64 && !purego

// Package kern is a statgate fixture: an amd64 kernel file with no
// generic twin at all.
package kern // want `has no purego twin kern_generic.go`

func sumAVX2(xs []float32) float32

// Sum dispatches to the assembly kernel.
func Sum(xs []float32) float32 {
	return sumAVX2(xs)
}
