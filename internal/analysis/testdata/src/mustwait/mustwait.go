// Package mustwait is a statgate fixture: dist async handles that are
// dropped, leaked, chained, waited, and escaped.
package mustwait

import "repro/internal/dist"

func dropped(g *dist.Group, r *dist.Rank, buf []float32) {
	g.AllReduceAsync(r, buf) // want `dropped`
}

func blanked(g *dist.Group, r *dist.Rank, buf []float32) {
	_ = g.AllReduceAsync(r, buf) // want `assigned to _`
}

func leaked(g *dist.Group, r *dist.Rank, buf []float32) {
	h := g.AllReduceAsync(r, buf) // want `function ends without Wait`
	_ = h
}

func earlyReturn(g *dist.Group, r *dist.Rank, buf []float32, cond bool) {
	h := g.AllReduceAsync(r, buf) // want `this path returns without Wait`
	if cond {
		return
	}
	h.Wait()
}

func overwritten(g *dist.Group, r *dist.Rank, buf []float32) {
	h := g.AllReduceAsync(r, buf) // want `overwrites`
	h = g.AllReduceAsync(r, buf)
	h.Wait()
}

func waited(g *dist.Group, r *dist.Rank, buf []float32) {
	h := g.AllReduceAsync(r, buf)
	h.Wait()
}

func chained(g *dist.Group, r *dist.Rank, buf, buf2 []float32) []float32 {
	h := g.ReduceScatterAsync(r, buf)
	h2 := g.AllReduceAsyncAfter(r, buf2, h)
	return h2.Wait()
}

func branchesBothWait(g *dist.Group, r *dist.Rank, buf []float32, bf16 bool, wire []uint16) {
	var h *dist.Handle
	if bf16 {
		h = g.AllReduceBF16Async(r, buf, wire)
	} else {
		h = g.AllReduceAsync(r, buf)
	}
	h.Wait()
}

func escapesReturn(g *dist.Group, r *dist.Rank, buf []float32) *dist.Handle {
	return g.AllReduceAsync(r, buf)
}

func escapesVarReturn(g *dist.Group, r *dist.Rank, buf []float32) *dist.Handle {
	h := g.AllReduceAsync(r, buf)
	return h
}

type carrier struct {
	h *dist.Handle
}

func escapesField(g *dist.Group, r *dist.Rank, buf []float32, c *carrier) {
	h := g.AllReduceAsync(r, buf)
	c.h = h
}

func escapesClosure(g *dist.Group, r *dist.Rank, buf []float32, run func(func())) {
	h := g.AllReduceAsync(r, buf)
	run(func() { h.Wait() })
}

func loopLeak(g *dist.Group, r *dist.Rank, buf []float32, n int) {
	for i := 0; i < n; i++ {
		h := g.AllReduceAsync(r, buf) // want `this continue ends the iteration`
		if i == 0 {
			continue
		}
		h.Wait()
	}
}

func allowed(g *dist.Group, r *dist.Rank, buf []float32) {
	//statgate:allow mustwait — fixture: rank-exit backstop fails this handle deliberately
	g.AllReduceAsync(r, buf)
}
