// Package lifecycle is a statgate fixture: loader batches and
// inference arenas with release-free paths, clean paths, and escapes.
package lifecycle

import (
	"repro/internal/dataload"
	"repro/internal/nn"
)

func leakCtx(n int) int {
	ctx := nn.NewInferCtx() // want `this path returns without Release`
	return len(ctx.Take(n))
}

func earlyReturnCtx(n int, cond bool) int {
	ctx := nn.NewInferCtx() // want `this path returns without Release`
	if cond {
		return 0
	}
	defer ctx.Release()
	return len(ctx.Take(n))
}

func deferRelease(n int) int {
	ctx := nn.NewInferCtx()
	defer ctx.Release()
	return len(ctx.Take(n))
}

func directRelease(n int) int {
	ctx := nn.NewInferCtx()
	k := len(ctx.Take(n))
	ctx.Release()
	return k
}

func escapesCtx() *nn.InferCtx {
	ctx := nn.NewInferCtx()
	return ctx
}

func plainUseIsNotRelease(m interface{ Fill(*nn.InferCtx) }) {
	ctx := nn.NewInferCtx() // want `function ends without Release`
	m.Fill(ctx)
}

func leakBatch(l *dataload.Loader) int {
	n := 0
	for batch := range l.Epoch() { // want `the loop iteration ends without Recycle`
		n += batch.Size
	}
	return n
}

func continueLeak(l *dataload.Loader) int {
	n := 0
	for batch := range l.EpochN(4) { // want `this continue ends the iteration`
		if batch.Size == 0 {
			continue
		}
		n += batch.Size
		l.Recycle(batch)
	}
	return n
}

func breakLeak(l *dataload.Loader) int {
	for batch := range l.Epoch() { // want `this break ends the iteration`
		if batch.Size > 0 {
			break
		}
		l.Recycle(batch)
	}
	return 0
}

func recycled(l *dataload.Loader) int {
	n := 0
	for batch := range l.Epoch() {
		n += batch.Size
		l.Recycle(batch)
	}
	return n
}

func recycledBeforeContinue(l *dataload.Loader) int {
	n := 0
	for batch := range l.EpochN(4) {
		if batch.Size == 0 {
			l.Recycle(batch)
			continue
		}
		n += batch.Size
		l.Recycle(batch)
	}
	return n
}

func batchEscapes(l *dataload.Loader, sink chan *dataload.Batch) {
	for batch := range l.Epoch() {
		sink <- batch
	}
}

func allowedLeak(l *dataload.Loader) {
	//statgate:allow lifecycle — fixture: process exits right after this loop
	for batch := range l.Epoch() {
		_ = batch.Size
	}
}
