// Package pragma is a statgate fixture: malformed suppression pragmas
// are findings themselves and do not suppress.
package pragma

func noReason(a, b float32) bool {
	//statgate:allow floateq // want `malformed pragma`
	return a == b // want `floating-point == comparison`
}

func unknownAnalyzer(a, b float32) bool {
	//statgate:allow nosuchanalyzer — the name is wrong // want `unknown analyzer`
	return a == b // want `floating-point == comparison`
}

func noAnalyzer(a, b float32) bool {
	//statgate:allow — reason with no analyzer // want `names no analyzer`
	return a == b // want `floating-point == comparison`
}

func wellFormed(a, b float32) bool {
	//statgate:allow floateq — fixture: exact check is intended here
	return a == b
}
