package analysis

import (
	"go/ast"
	"go/types"
)

// distPkgPath is the package whose async handles mustwait tracks.
const distPkgPath = "repro/internal/dist"

// MustWait enforces the PR 5 async-collective contract: a locally
// created *dist.Handle must reach Wait — directly, or by being passed
// to a ...After chain — or escape the function, on every path. The
// runtime backstop fails abandoned handles with ErrAborted only at
// rank exit; this catches the drop at compile time, where the fix is
// cheap.
var MustWait = &Analyzer{
	Name: "mustwait",
	Doc:  "a locally created dist async handle must reach Wait/...After or escape on every path",
	Run: func(pass *Pass) {
		checkPairs(pass, []*pairSpec{{
			resource: "dist async handle",
			verb:     "Wait",
			acquireCall: func(pass *Pass, call *ast.CallExpr) bool {
				return returnsHandle(pass, call)
			},
			isRelease: func(pass *Pass, call *ast.CallExpr, v *types.Var) bool {
				return isMethodOnVar(pass, call, v, "Wait")
			},
			argConsumes: true,
		}})
	},
}

// returnsHandle reports whether the call's (single) result is a
// *dist.Handle.
func returnsHandle(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	return isPtrToNamed(tv.Type, distPkgPath, "Handle")
}

// isPtrToNamed reports whether t is *pkgPath.Name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isMethodOnVar reports whether call is v.<method>(...).
func isMethodOnVar(pass *Pass, call *ast.CallExpr, v *types.Var, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	return obj == v
}
