package fsdp

// Traffic is the per-rank wire-byte accounting of one optimizer step's
// parameter/gradient synchronization — the quantities the discrete-
// event simulator charges to the communication stream, exposed in
// closed form so the real execution layer (internal/dist driven by
// internal/train.PretrainDistributed) is held to the same numbers:
// for every strategy of the Section III-C matrix — DDP/NO_SHARD,
// SHARD_GRAD_OP, FULL_SHARD and HYBRID_kGPUs — tests assert the bytes
// each rank *actually sent* around its rings equal this prediction
// exactly, per step.
type Traffic struct {
	// AllReduceBytes is the gradient all-reduce volume (DDP-style
	// replicated strategies).
	AllReduceBytes float64
	// ReduceScatterBytes is the gradient reduce-scatter volume (sharded
	// strategies).
	ReduceScatterBytes float64
	// AllGatherBytes is the parameter all-gather volume (sharded
	// strategies re-assembling updated parameters, plus the forward /
	// backward re-gathers of FULL_SHARD).
	AllGatherBytes float64
}

// Total sums all per-step collective traffic.
func (t Traffic) Total() float64 {
	return t.AllReduceBytes + t.ReduceScatterBytes + t.AllGatherBytes
}

// TrafficPerStep returns the per-rank bytes one training step puts on
// the wire for a model of paramElems parameters under plan p on a world
// of the given size, with each element travelling as elemBytes wire
// bytes — 4 for fp32, 2 for the bf16 mixed-precision mode, whose
// gradient reductions and parameter gathers all move bf16 payloads (the
// fp32 master weights and Adam state never cross the wire; the only
// fp32 traffic the executed loop sends is the one-time init broadcast,
// which is not per-step and not accounted here). elemBytes ≤ 0 defaults
// to 4. The formulas use the ring-algorithm volumes of internal/comm:
//
//	reduce-scatter / all-gather:  (n−1)/n · V
//	all-reduce:                   2(n−1)/n · V
//
// The element count is padded up to a multiple of the collective group
// so chunks are uniform — the same padding the executed collectives in
// internal/dist require — which is why measured and predicted bytes can
// agree exactly rather than approximately.
//
// Strategy mapping (matching both Simulate's schedule and the executed
// PretrainDistributed paths, which internal/train's tests pin to these
// volumes byte for byte):
//
//	DDP, NO_SHARD, HYBRID_1GPU — gradients all-reduced across the world
//	   (bucketing splits calls but not volume);
//	SHARD_GRAD_OP — ZeRO-1: gradients reduce-scattered, updated
//	   parameters all-gathered once per step;
//	FULL_SHARD — as SHARD_GRAD_OP plus a second parameter all-gather
//	   (params are re-gathered in backward after resharding);
//	HYBRID_kGPUs (k>1) — FULL_SHARD volumes within the k-rank shard
//	   group, plus a gradient-shard all-reduce across the world/k
//	   replica groups. The element count pads to a multiple of the
//	   whole world (shard group × replica group), the alignment the
//	   executed two-level scheme needs so one flat buffer chunks
//	   uniformly on the group ring AND each shard chunks uniformly on
//	   the replica ring (opt.NewPartition's quantum).
func TrafficPerStep(p Plan, world, paramElems, elemBytes int) Traffic {
	var t Traffic
	if world <= 1 || paramElems <= 0 {
		return t
	}
	if elemBytes <= 0 {
		elemBytes = 4
	}
	eb := float64(elemBytes)
	ringFrac := func(n int) float64 { return float64(n-1) / float64(n) }
	pad := func(n, group int) float64 { return float64((n + group - 1) / group * group) }

	switch p.Strategy {
	case DDP, NoShard:
		t.AllReduceBytes = 2 * ringFrac(world) * pad(paramElems, world) * eb
	case ShardGradOp:
		v := pad(paramElems, world) * eb
		t.ReduceScatterBytes = ringFrac(world) * v
		t.AllGatherBytes = ringFrac(world) * v
	case FullShard:
		v := pad(paramElems, world) * eb
		t.ReduceScatterBytes = ringFrac(world) * v
		t.AllGatherBytes = 2 * ringFrac(world) * v
	case HybridShard:
		g := p.GroupSize
		if g <= 1 {
			t.AllReduceBytes = 2 * ringFrac(world) * pad(paramElems, world) * eb
			break
		}
		repl := world / g
		if repl < 1 {
			// A group larger than the world cannot tile it (Validate
			// rejects it); account the degenerate single whole-world
			// group rather than dividing by zero.
			repl = 1
		}
		v := pad(paramElems, g*repl) * eb
		t.ReduceScatterBytes = ringFrac(g) * v
		t.AllGatherBytes = 2 * ringFrac(g) * v
		if repl > 1 {
			t.AllReduceBytes = 2 * ringFrac(repl) * (v / float64(g))
		}
	}
	return t
}
