package fsdp

import (
	"fmt"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/vit"
)

// TestDefaultPathGolden pins the no-profile default: with no hardware
// profile loaded, Simulate prices workloads on the asserted Frontier
// machine, and these numbers must not drift when calibration code is
// touched. The values are pure float64 arithmetic (no measurement), so
// they are exact on every platform; regenerate them deliberately if
// the model itself changes, never to absorb an accidental diff.
func TestDefaultPathGolden(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	golden := []struct {
		plan                             string
		step, compute, comm, exposedComm string
	}{
		{"DDP", "1.208389683e+00", "1.111208112e+00", "6.524147570e-01", "2.146795433e-02"},
		{"SHARD_GRAD_OP", "1.134211808e+00", "1.088130253e+00", "3.149932417e-01", "9.411779555e-03"},
		{"FULL_SHARD", "1.157433732e+00", "1.088130253e+00", "4.724898625e-01", "1.432351760e-02"},
		{"HYBRID_4GPUs", "1.116910933e+00", "1.093341383e+00", "1.642968215e-01", "4.379468061e-03"},
	}
	plans := []Plan{DefaultDDP(), BestPractice(ShardGradOp, 0),
		BestPractice(FullShard, 0), BestPractice(HybridShard, 4)}
	for i, plan := range plans {
		r := mustSim(t, w, 4, plan)
		g := golden[i]
		if plan.Name() != g.plan {
			t.Fatalf("plan %d named %s, golden says %s", i, plan.Name(), g.plan)
		}
		for _, pair := range []struct {
			what string
			got  float64
			want string
		}{
			{"step", r.StepTime, g.step},
			{"compute", r.ComputeTime, g.compute},
			{"comm", r.CommTime, g.comm},
			{"exposed", r.ExposedComm, g.exposedComm},
		} {
			if got := fmt.Sprintf("%.9e", pair.got); got != pair.want {
				t.Errorf("%s %s drifted: %s, golden %s", g.plan, pair.what, got, pair.want)
			}
		}
	}
}

// TestCalibratedGateChangesPricing: flipping Calibrated on the same
// machine must actually reroute Simulate off the asserted fudge
// constants — if the gate stops gating, the calibrated path silently
// inherits Frontier's host overheads and straggler inflation.
func TestCalibratedGateChangesPricing(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	m := frontier
	m.Calibrated = true
	for _, plan := range []Plan{DefaultDDP(), BestPractice(FullShard, 0)} {
		def := mustSim(t, w, 4, plan)
		cal, err := Simulate(w, m, 4, plan)
		if err != nil {
			t.Fatal(err)
		}
		if cal.StepTime >= def.StepTime {
			t.Fatalf("%s: calibrated gate did not drop the asserted overheads (step %v vs %v)",
				plan.Name(), cal.StepTime, def.StepTime)
		}
		if cal.ComputeTime <= 0 || cal.CommTime <= 0 {
			t.Fatalf("%s: degenerate calibrated result %+v", plan.Name(), cal)
		}
	}
}
