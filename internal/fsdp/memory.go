package fsdp

import (
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// MemoryPerGPU models peak per-GCD memory for one training step under
// the plan, reproducing the memory panels of Figures 3 and 4:
//
//   - parameter state (master weights + Adam moments + working copies,
//     Prec.StateBytesPerParam per parameter) divided by the shard factor;
//   - for sharded strategies, the transient gathered working set of up
//     to two in-flight units (prefetch depth) in compute precision;
//   - SHARD_GRAD_OP additionally keeps the full compute-precision
//     parameters resident between forward and backward;
//   - DDP adds its flat gradient-bucket copies;
//   - activations (strategy-independent) plus a constant framework
//     footprint.
func MemoryPerGPU(w perfmodel.Workload, m hw.Machine, nodes int, plan Plan) float64 {
	world := m.TotalGPUs(nodes)
	p := float64(w.TotalParams())
	state := p * w.Prec.StateBytesPerParam
	cBytes := w.Prec.ComputeBytes

	var maxUnit float64
	for _, u := range w.Units() {
		if b := float64(u.Params); b > maxUnit {
			maxUnit = b
		}
	}
	gathered := 2 * maxUnit * cBytes

	base := w.ActivationBytes() + frameworkBytes
	switch plan.Strategy {
	case DDP:
		// Replicated state + bucket copies of the gradients.
		return state + p*cBytes + base
	case NoShard:
		return state + base
	case FullShard:
		return state/float64(world) + gathered + base
	case ShardGradOp:
		// Compute-precision params stay resident; the rest shards.
		return p*cBytes + (state-p*cBytes)/float64(world) + base
	case HybridShard:
		g := float64(plan.GroupSize)
		if plan.GroupSize <= 1 {
			return state + base
		}
		return state/g + gathered + base
	default:
		return state + base
	}
}

// MinGPUs returns the smallest power-of-two sharding-group size whose
// HYBRID configuration fits the workload in HBM, or 0 if even
// FULL_SHARD across maxNodes does not fit. This reproduces the paper's
// statements that ViT-3B is the largest single-GPU model, ViT-5B needs
// two GPUs, and ViT-15B needs four.
func MinGPUs(w perfmodel.Workload, m hw.Machine) int {
	for g := 1; g <= m.GPUsPerNode*2; g *= 2 {
		plan := BestPractice(HybridShard, g)
		nodes := (g + m.GPUsPerNode - 1) / m.GPUsPerNode
		if nodes < 1 {
			nodes = 1
		}
		if MemoryPerGPU(w, m, nodes, plan) <= m.HBMBytesPerGPU {
			return g
		}
	}
	return 0
}
