package fsdp

import "testing"

// TestParsePlanNameRoundTrip: every label Plan.Name can emit parses
// back to a plan with the same layout (strategy + group size) and the
// same label.
func TestParsePlanNameRoundTrip(t *testing.T) {
	plans := []Plan{
		DefaultDDP(),
		BestPractice(NoShard, 0),
		BestPractice(FullShard, 0),
		BestPractice(ShardGradOp, 0),
	}
	for k := 1; k <= 8; k++ {
		plans = append(plans, BestPractice(HybridShard, k))
	}
	for _, p := range plans {
		got, err := ParsePlanName(p.Name())
		if err != nil {
			t.Fatalf("ParsePlanName(%q): %v", p.Name(), err)
		}
		if got.Strategy != p.Strategy || got.GroupSize != p.GroupSize {
			t.Fatalf("ParsePlanName(%q) = %+v, want strategy %v group %d",
				p.Name(), got, p.Strategy, p.GroupSize)
		}
		if got.Name() != p.Name() {
			t.Fatalf("ParsePlanName(%q).Name() = %q", p.Name(), got.Name())
		}
	}
	if p := DefaultDDP(); p.DDPBucketBytes <= 0 {
		t.Fatal("DDP default lost its bucket size")
	}
}

// TestParsePlanNameRejects: labels no Plan.Name emits fail.
func TestParsePlanNameRejects(t *testing.T) {
	for _, bad := range []string{
		"", "ddp", "HYBRID_SHARD", "HYBRID_0GPUs", "HYBRID_-2GPUs",
		"HYBRID_2GPU", "HYBRID_1GPUs", "HYBRID_2GPUsX", "HYBRID_02GPUs",
		"FULL_SHARDx", "ZERO3",
	} {
		if p, err := ParsePlanName(bad); err == nil {
			t.Errorf("ParsePlanName(%q) = %+v, want error", bad, p)
		}
	}
}
