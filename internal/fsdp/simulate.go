package fsdp

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

// Calibration constants for implementation overheads that the α–β
// model does not capture. They are *relative* knobs: DDP pays the most
// per collective call (bucket management and gradient copy-out),
// NO_SHARD pays FSDP's flat-parameter bookkeeping, HYBRID/FULL paths
// are the leanest — the ordering the paper observes in Figure 3.
const (
	hostOverheadDDP     = 35e-6
	hostOverheadNoShard = 30e-6
	hostOverheadSharded = 15e-6

	// congestion penalties applied when limit_all_gathers is off:
	// unbounded in-flight gathers contend for channels and registration.
	noLimitBWFactor    = 0.80
	noLimitExtraLaunch = 40e-6

	// stragglerPerDoubling inflates collective time per doubling of the
	// node count (OS noise, adaptive-routing congestion at scale).
	stragglerPerDoubling = 0.04

	// frameworkBytes is the constant per-GPU footprint (runtime, RCCL
	// buffers, fragmentation).
	frameworkBytes = 1.5e9

	// pipelineOverhead is the small residual cost of running the real
	// data pipeline versus cached synthetic data when not IO-bound
	// (Figure 1 "real" vs "syn").
	pipelineOverhead = 0.03
)

// Result is the outcome of simulating one training step.
type Result struct {
	Plan  Plan
	Nodes int
	World int

	// StepTime is the modeled wall-clock per optimizer step (seconds).
	StepTime float64
	// ImagesPerSec is the aggregate training throughput.
	ImagesPerSec float64

	// ComputeTime is the compute-stream busy time per step.
	ComputeTime float64
	// CommTime is the communication-stream busy time per step.
	CommTime float64
	// ExposedComm is communication time not hidden behind compute.
	ExposedComm float64
	// CommCalls is the number of collective calls per step.
	CommCalls int
	// CommVolume is the per-rank bytes put on the wire per step.
	CommVolume float64

	// MemoryPerGPU is the modeled peak memory per GCD (bytes).
	MemoryPerGPU float64
	// Fits reports whether MemoryPerGPU is within HBM capacity.
	Fits bool

	// AvgPowerPerGPU is the modeled average power draw per GCD (watts).
	AvgPowerPerGPU float64
	// GPUUtilization is the modeled busy fraction of the GCD.
	GPUUtilization float64
}

// Simulate models one training step of workload w on nodes Frontier
// nodes under the given plan.
func Simulate(w perfmodel.Workload, m hw.Machine, nodes int, plan Plan) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if nodes < 1 || nodes > m.MaxNodes {
		return Result{}, fmt.Errorf("fsdp: node count %d outside [1, %d]", nodes, m.MaxNodes)
	}
	world := m.TotalGPUs(nodes)
	if err := plan.Validate(world); err != nil {
		return Result{}, err
	}

	units := w.Units()
	l := len(units)
	eff := m.EffectiveFLOPS()
	// FSDP reduces gradients in the compute dtype (bf16); DDP keeps
	// master-width (fp32) gradient buckets — one of the implementation
	// differences the paper alludes to when DDP falls behind FSDP at
	// larger models. The width comes from the workload's Precision, not
	// a hard-coded element size.
	cBytes := w.Prec.GradReduceBytes(plan.Strategy == DDP)

	// The calibration constants below are asserted, Frontier-shaped
	// overheads; a Calibrated machine's measured α–β already contains
	// every per-call fixed cost, so they are disabled wholesale there
	// (see hw.Machine.Calibrated).
	straggle := 1.0
	if !m.Calibrated && nodes > 1 {
		straggle += stragglerPerDoubling * math.Log2(float64(nodes))
	}

	// Link parameters for the sharding-group collectives.
	shardRanks := plan.ShardRanks(world)
	shardRPN := shardRanks
	if shardRPN > m.GPUsPerNode {
		shardRPN = m.GPUsPerNode
	}
	shardBW, shardLat, shardChunk := m.GroupBandwidth(shardRanks, shardRPN, m.GPUsPerNode)

	// Replica-dimension all-reduce group (gradient sync).
	replicaRanks := world / shardRanks
	repRPN := m.GPUsPerNode / shardRPN
	if repRPN < 1 {
		repRPN = 1
	}
	if replicaRanks < repRPN {
		repRPN = replicaRanks
	}
	repBW, repLat, repChunk := m.GroupBandwidth(replicaRanks, repRPN, m.GPUsPerNode)

	hostOverhead := hostOverheadSharded
	switch plan.Strategy {
	case DDP:
		hostOverhead = hostOverheadDDP
	case NoShard:
		hostOverhead = hostOverheadNoShard
	}
	if m.Calibrated {
		hostOverhead = 0
	}

	agParams := comm.Params{Bandwidth: shardBW, HopLat: shardLat, ChunkOverheadBytes: shardChunk,
		Launch: m.CollectiveLaunch + hostOverhead}
	if !m.Calibrated && !plan.LimitAllGathers && plan.shardsParams(world) {
		agParams.Bandwidth *= noLimitBWFactor
		agParams.Launch += noLimitExtraLaunch
	}
	rsParams := comm.Params{Bandwidth: shardBW, HopLat: shardLat, ChunkOverheadBytes: shardChunk,
		Launch: m.CollectiveLaunch + hostOverhead}
	arParams := comm.Params{Bandwidth: repBW, HopLat: repLat, ChunkOverheadBytes: repChunk,
		Launch: m.CollectiveLaunch + hostOverhead}

	e := sim.New()
	comp := e.Resource("compute")
	cm := e.Resource("comm")

	var commCalls int
	var commVolume float64
	addComm := func(name string, c comm.Cost, deps ...*sim.Task) *sim.Task {
		commCalls++
		commVolume += c.WireBytes
		return e.Task(name, cm, c.Time*straggle, deps...)
	}

	unitBytes := func(i int) float64 { return float64(units[i].Params) * cBytes }

	// ------------------------------ forward ------------------------------
	cf := make([]*sim.Task, l)
	agf := make([]*sim.Task, l)
	sharded := plan.shardsParams(world)
	for i := 0; i < l; i++ {
		var deps []*sim.Task
		if sharded {
			var agDeps []*sim.Task
			if plan.LimitAllGathers && i >= 2 {
				// Rate limiter: at most two gathered units ahead of compute.
				agDeps = append(agDeps, cf[i-2])
			}
			agf[i] = addComm(fmt.Sprintf("agf%d", i),
				comm.AllGather(unitBytes(i), shardRanks, agParams), agDeps...)
			deps = append(deps, agf[i])
		}
		if i > 0 {
			deps = append(deps, cf[i-1])
		}
		cf[i] = e.Task(fmt.Sprintf("cf%d", i), comp, units[i].FwdFLOPs/eff, deps...)
	}

	// ------------------------------ backward -----------------------------
	//
	// Submission order on the serial communication stream is what the
	// prefetch policy controls:
	//
	//	BACKWARD_PRE:  unit i−1's gather is submitted *before* unit i's
	//	               reduce-scatter (issued as unit i's backward
	//	               compute starts), so it overlaps cb[i];
	//	BACKWARD_POST: the gather is submitted after unit i's
	//	               reduce-scatter, issued once cb[i] completes;
	//	None:          the gather additionally waits for unit i's
	//	               reduce-scatter to finish — full serialization.
	cb := make([]*sim.Task, l)
	lastComm := make([]*sim.Task, l) // final grad-sync comm task per unit
	regather := plan.regathersInBackward(world)
	agb := make([]*sim.Task, l)

	agTask := func(i int, deps ...*sim.Task) *sim.Task {
		return addComm(fmt.Sprintf("agb%d", i),
			comm.AllGather(unitBytes(i), shardRanks, agParams), deps...)
	}
	if regather {
		// The first backward gather can only issue once forward ends.
		agb[l-1] = agTask(l-1, cf[l-1])
	}

	for i := l - 1; i >= 0; i-- {
		var cdeps []*sim.Task
		if agb[i] != nil {
			cdeps = append(cdeps, agb[i])
		}
		if i == l-1 {
			cdeps = append(cdeps, cf[l-1])
		} else {
			cdeps = append(cdeps, cb[i+1])
		}
		cb[i] = e.Task(fmt.Sprintf("cb%d", i), comp, units[i].BwdFLOPs/eff, cdeps...)

		// BACKWARD_PRE: prefetch the next unit's parameters ahead of
		// this unit's reduce-scatter in stream order.
		if regather && i > 0 && plan.Prefetch == BackwardPre {
			var dep []*sim.Task
			if i+1 < l {
				dep = append(dep, cb[i+1]) // issued when cb[i] starts
			} else {
				dep = append(dep, cf[l-1])
			}
			agb[i-1] = agTask(i-1, dep...)
		}

		// Gradient synchronization for this unit.
		switch plan.Strategy {
		case NoShard:
			// handled after the loop: NO_SHARD's gradient all-reduce runs
			// in FSDP's synchronous post-backward path with no compute
			// overlap — the implementation difference from HYBRID_1GPU
			// (identical algorithm, overlapped per-unit reduction) that
			// the paper observes in Figures 1 and 3.
		case HybridShard:
			if plan.GroupSize == 1 {
				lastComm[i] = addComm(fmt.Sprintf("ar%d", i),
					comm.AllReduce(unitBytes(i), world, arParams), cb[i])
				break
			}
			rs := addComm(fmt.Sprintf("rs%d", i),
				comm.ReduceScatter(unitBytes(i), shardRanks, rsParams), cb[i])
			lastComm[i] = rs
			if replicaRanks > 1 {
				lastComm[i] = addComm(fmt.Sprintf("arr%d", i),
					comm.AllReduce(unitBytes(i)/float64(shardRanks), replicaRanks, arParams), rs)
			}
		case FullShard, ShardGradOp:
			lastComm[i] = addComm(fmt.Sprintf("rs%d", i),
				comm.ReduceScatter(unitBytes(i), shardRanks, rsParams), cb[i])
		case DDP:
			// handled below via buckets
		}

		// BACKWARD_POST / None: the next gather is submitted after this
		// unit's gradient sync.
		if regather && i > 0 && plan.Prefetch != BackwardPre {
			var dep []*sim.Task
			if plan.Prefetch == PrefetchNone && lastComm[i] != nil {
				dep = append(dep, lastComm[i])
			} else {
				dep = append(dep, cb[i])
			}
			agb[i-1] = agTask(i-1, dep...)
		}
	}

	if plan.Strategy == NoShard {
		for i := 0; i < l; i++ {
			lastComm[i] = addComm(fmt.Sprintf("ar%d", i),
				comm.AllReduce(unitBytes(i), world, arParams), cb[i], cb[0])
		}
	}

	// DDP gradient buckets: gradients stream into fixed-size buckets in
	// backward (descending-unit) order; a bucket's all-reduce launches
	// when the unit that fills it has computed its gradient. Large
	// blocks split across multiple buckets — the per-call overhead this
	// multiplies is exactly the paper's explanation for DDP falling
	// behind FSDP as models grow (Section IV-C).
	if plan.Strategy == DDP {
		pending := 0.0
		bucket := 0
		for i := l - 1; i >= 0; i-- {
			pending += unitBytes(i)
			for pending >= plan.DDPBucketBytes {
				t := addComm(fmt.Sprintf("ddp_ar%d", bucket),
					comm.AllReduce(plan.DDPBucketBytes, world, arParams), cb[i])
				lastComm[i] = t
				pending -= plan.DDPBucketBytes
				bucket++
			}
		}
		if pending > 0 {
			lastComm[0] = addComm(fmt.Sprintf("ddp_ar%d", bucket),
				comm.AllReduce(pending, world, arParams), cb[0])
		}
	}

	// Optimizer step: elementwise over the local state shard.
	stateLocal := float64(w.TotalParams()) * w.Prec.StateBytesPerParam / float64(shardRanks)
	optDeps := []*sim.Task{cb[0]}
	for _, t := range lastComm {
		if t != nil {
			optDeps = append(optDeps, t)
		}
	}
	e.Task("opt", comp, 3*stateLocal/m.HBMBandwidth, optDeps...)

	makespan := e.Run()
	computeBusy := e.BusyTime(comp)
	commBusy := e.BusyTime(cm)
	exposed := makespan - computeBusy
	if exposed < 0 {
		exposed = 0
	}
	overlapped := commBusy - exposed
	if overlapped < 0 {
		overlapped = 0
	}
	// Collective kernels steal compute units while overlapped.
	stepTime := makespan + m.SMContention*overlapped

	res := Result{
		Plan:         plan,
		Nodes:        nodes,
		World:        world,
		StepTime:     stepTime,
		ImagesPerSec: float64(world*w.LocalBatch) / stepTime,
		ComputeTime:  computeBusy,
		CommTime:     commBusy,
		ExposedComm:  exposed,
		CommCalls:    commCalls,
		CommVolume:   commVolume,
	}
	res.MemoryPerGPU = MemoryPerGPU(w, m, nodes, plan)
	res.Fits = res.MemoryPerGPU <= m.HBMBytesPerGPU

	util := computeBusy / stepTime
	if util > 1 {
		util = 1
	}
	exposedFrac := exposed / stepTime
	if exposedFrac > 1 {
		exposedFrac = 1
	}
	// RCCL kernels occupy compute units, so rocm-smi reports near-100%
	// utilization even during exposed communication (the paper's Fig 4
	// observation); power, however, sags while only moving bytes.
	res.GPUUtilization = math.Min(1, util+0.9*exposedFrac)
	res.AvgPowerPerGPU = m.IdlePower +
		(m.MaxPower-m.IdlePower)*(0.92*util+m.CommPowerFrac*exposedFrac)
	return res, nil
}

// SimulateNoComm models the same step with all communication removed —
// the "syn no comm" curve of Figure 1.
func SimulateNoComm(w perfmodel.Workload, m hw.Machine, nodes int) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	world := m.TotalGPUs(nodes)
	eff := m.EffectiveFLOPS()
	var compute float64
	for _, u := range w.Units() {
		compute += (u.FwdFLOPs + u.BwdFLOPs) / eff
	}
	compute += 3 * float64(w.TotalParams()) * w.Prec.StateBytesPerParam / m.HBMBandwidth
	return Result{
		Nodes:        nodes,
		World:        world,
		StepTime:     compute,
		ComputeTime:  compute,
		ImagesPerSec: float64(world*w.LocalBatch) / compute,
	}, nil
}

// RealThroughput composes a synthetic-compute result with the IO model:
// the application runs at the slower of the two pipelines, with a small
// residual overhead when compute-bound (the paper's "real" curve).
func RealThroughput(syn Result, ioIPS float64) float64 {
	synIPS := syn.ImagesPerSec * (1 - pipelineOverhead)
	if ioIPS < synIPS {
		return ioIPS
	}
	return synIPS
}
