package fsdp

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/vit"
)

var frontier = hw.Frontier()

func mustSim(t *testing.T, w perfmodel.Workload, nodes int, plan Plan) Result {
	t.Helper()
	r, err := Simulate(w, frontier, nodes, plan)
	if err != nil {
		t.Fatalf("Simulate(%s, %d nodes): %v", plan.Name(), nodes, err)
	}
	return r
}

func TestPlanNames(t *testing.T) {
	cases := map[string]Plan{
		"DDP":           DefaultDDP(),
		"NO_SHARD":      {Strategy: NoShard},
		"FULL_SHARD":    {Strategy: FullShard},
		"SHARD_GRAD_OP": {Strategy: ShardGradOp},
		"HYBRID_1GPU":   {Strategy: HybridShard, GroupSize: 1},
		"HYBRID_2GPUs":  {Strategy: HybridShard, GroupSize: 2},
		"HYBRID_8GPUs":  {Strategy: HybridShard, GroupSize: 8},
	}
	for want, plan := range cases {
		if got := plan.Name(); got != want {
			t.Errorf("Name()=%q want %q", got, want)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Strategy: HybridShard, GroupSize: 3}).Validate(16); err == nil {
		t.Fatal("non-divisible hybrid group accepted")
	}
	if err := (Plan{Strategy: DDP}).Validate(8); err == nil {
		t.Fatal("DDP without bucket size accepted")
	}
	if err := DefaultDDP().Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := (Plan{Strategy: Strategy(99)}).Validate(8); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestPrefetchStrings(t *testing.T) {
	if PrefetchNone.String() != "None" || BackwardPost.String() != "BACKWARD_POST" ||
		BackwardPre.String() != "BACKWARD_PRE" {
		t.Fatal("prefetch names wrong")
	}
}

func TestSimulateBasicSanity(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViTBase, 32)
	r := mustSim(t, w, 1, BestPractice(NoShard, 0))
	if r.StepTime <= 0 || r.ImagesPerSec <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
	if r.World != 8 {
		t.Fatalf("world=%d", r.World)
	}
	if r.ComputeTime <= 0 || r.CommTime <= 0 {
		t.Fatal("missing compute or comm time")
	}
	if r.StepTime < r.ComputeTime {
		t.Fatal("step faster than its own compute")
	}
}

func TestWeakScalingEfficiencyBelowIdeal(t *testing.T) {
	// ips must grow with nodes but below linear (communication).
	w := perfmodel.ViTWorkload(vit.ViT3B, 32)
	plan := BestPractice(HybridShard, 1)
	prev := 0.0
	base := mustSim(t, w, 1, plan).ImagesPerSec
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := mustSim(t, w, n, plan)
		if r.ImagesPerSec <= prev {
			t.Fatalf("throughput not increasing at %d nodes", n)
		}
		if r.ImagesPerSec > base*float64(n)+1e-9 {
			t.Fatalf("super-linear scaling at %d nodes", n)
		}
		prev = r.ImagesPerSec
	}
}

// TestFig3Ordering asserts the central Figure 3 claims: HYBRID_1GPU ≥
// NO_SHARD > DDP at scale, and FULL_SHARD slowest at scale for models
// that fit on one GPU.
func TestFig3Ordering(t *testing.T) {
	for _, cfg := range []vit.Config{vit.ViTBase, vit.ViT3B} {
		w := perfmodel.ViTWorkload(cfg, 32)
		const nodes = 64
		h1 := mustSim(t, w, nodes, BestPractice(HybridShard, 1))
		ns := mustSim(t, w, nodes, BestPractice(NoShard, 0))
		dp := mustSim(t, w, nodes, DefaultDDP())
		fs := mustSim(t, w, nodes, BestPractice(FullShard, 0))
		if !(h1.ImagesPerSec >= ns.ImagesPerSec) {
			t.Errorf("%s: HYBRID_1GPU (%0.0f) < NO_SHARD (%0.0f)", cfg.Name, h1.ImagesPerSec, ns.ImagesPerSec)
		}
		if !(h1.ImagesPerSec > dp.ImagesPerSec) {
			t.Errorf("%s: HYBRID_1GPU (%0.0f) ≤ DDP (%0.0f)", cfg.Name, h1.ImagesPerSec, dp.ImagesPerSec)
		}
		// NO_SHARD beats DDP clearly at 3B; at ViT-Base the paper's
		// margin is small — require at least near-parity there.
		if cfg.Name == "ViT-3B" {
			if !(ns.ImagesPerSec > dp.ImagesPerSec) {
				t.Errorf("%s: NO_SHARD (%0.0f) ≤ DDP (%0.0f)", cfg.Name, ns.ImagesPerSec, dp.ImagesPerSec)
			}
		} else if ns.ImagesPerSec < 0.9*dp.ImagesPerSec {
			t.Errorf("%s: NO_SHARD (%0.0f) far below DDP (%0.0f)", cfg.Name, ns.ImagesPerSec, dp.ImagesPerSec)
		}
		if !(h1.ImagesPerSec > fs.ImagesPerSec) {
			t.Errorf("%s: FULL_SHARD (%0.0f) not slowest at scale vs HYBRID_1GPU (%0.0f)",
				cfg.Name, fs.ImagesPerSec, h1.ImagesPerSec)
		}
	}
}

// TestDDPGapGrowsWithModelSize: the FSDP-over-DDP advantage must grow
// from ViT-Base to ViT-3B (Figure 3's key observation), measured
// against the best FSDP data-parallel mode (HYBRID_1GPU).
func TestDDPGapGrowsWithModelSize(t *testing.T) {
	gap := func(cfg vit.Config) float64 {
		w := perfmodel.ViTWorkload(cfg, 32)
		h1 := mustSim(t, w, 64, BestPractice(HybridShard, 1))
		dp := mustSim(t, w, 64, DefaultDDP())
		return h1.ImagesPerSec / dp.ImagesPerSec
	}
	if gB, g3 := gap(vit.ViTBase), gap(vit.ViT3B); g3 <= gB {
		t.Fatalf("DDP gap did not grow with model size: base ×%.3f, 3B ×%.3f", gB, g3)
	}
}

// TestFullShardFlattensEarlierForSmallModels: weak-scaling efficiency
// under FULL_SHARD must be worse for ViT-Base than ViT-3B at 64 nodes
// (smaller compute → communication-bound sooner).
func TestFullShardFlattensEarlierForSmallModels(t *testing.T) {
	eff := func(cfg vit.Config) float64 {
		w := perfmodel.ViTWorkload(cfg, 32)
		one := mustSim(t, w, 1, BestPractice(FullShard, 0))
		big := mustSim(t, w, 64, BestPractice(FullShard, 0))
		return big.ImagesPerSec / (one.ImagesPerSec * 64)
	}
	effBase, eff3B := eff(vit.ViTBase), eff(vit.ViT3B)
	if effBase >= eff3B {
		t.Fatalf("FULL_SHARD efficiency: base %.3f should be worse than 3B %.3f", effBase, eff3B)
	}
}

// TestFig4HybridGroupSize: for ViT-5B at scale, larger sharding groups
// must beat smaller ones (HYBRID_8GPUs > HYBRID_2GPUs), because the
// inter-node gradient all-reduce volume shrinks with group size.
func TestFig4HybridGroupSize(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	const nodes = 32
	h2 := mustSim(t, w, nodes, BestPractice(HybridShard, 2))
	h8 := mustSim(t, w, nodes, BestPractice(HybridShard, 8))
	if !(h8.ImagesPerSec > h2.ImagesPerSec) {
		t.Fatalf("HYBRID_8GPUs (%0.0f ips) not faster than HYBRID_2GPUs (%0.0f ips) for ViT-5B",
			h8.ImagesPerSec, h2.ImagesPerSec)
	}
}

// TestFig4ShardGradOpScalesBestFor15B: SHARD_GRAD_OP must beat
// FULL_SHARD for ViT-15B at scale (half the gather traffic).
func TestFig4ShardGradOpScalesBestFor15B(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT15B, 32)
	w.ActCheckpoint = true
	const nodes = 64
	sg := mustSim(t, w, nodes, BestPractice(ShardGradOp, 0))
	fs := mustSim(t, w, nodes, BestPractice(FullShard, 0))
	if !(sg.ImagesPerSec > fs.ImagesPerSec) {
		t.Fatalf("SHARD_GRAD_OP (%0.0f) not faster than FULL_SHARD (%0.0f) for 15B",
			sg.ImagesPerSec, fs.ImagesPerSec)
	}
}

// TestFig2PrefetchOrdering: BACKWARD_PRE ≥ BACKWARD_POST ≥ None for
// sharded strategies, with small margins (paper: "differences are not
// very big").
func TestFig2PrefetchOrdering(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	const nodes = 8
	for _, s := range []Plan{
		{Strategy: FullShard, LimitAllGathers: true},
		{Strategy: ShardGradOp, LimitAllGathers: true},
		{Strategy: HybridShard, GroupSize: 2, LimitAllGathers: true},
	} {
		ips := map[Prefetch]float64{}
		for _, pf := range []Prefetch{PrefetchNone, BackwardPost, BackwardPre} {
			p := s
			p.Prefetch = pf
			ips[pf] = mustSim(t, w, nodes, p).ImagesPerSec
		}
		if !(ips[BackwardPre] >= ips[BackwardPost] && ips[BackwardPost] >= ips[PrefetchNone]) {
			t.Errorf("%s: prefetch ordering violated: pre=%0.0f post=%0.0f none=%0.0f",
				s.Name(), ips[BackwardPre], ips[BackwardPost], ips[PrefetchNone])
		}
	}
}

// TestFig2LimitAllGathersHelps: enabling the rate limiter must not
// hurt, and must help sharded strategies.
func TestFig2LimitAllGathersHelps(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	for _, s := range []Plan{
		{Strategy: FullShard, Prefetch: BackwardPre},
		{Strategy: HybridShard, GroupSize: 2, Prefetch: BackwardPre},
	} {
		off := s
		off.LimitAllGathers = false
		on := s
		on.LimitAllGathers = true
		roff := mustSim(t, w, 8, off)
		ron := mustSim(t, w, 8, on)
		if ron.ImagesPerSec < roff.ImagesPerSec {
			t.Errorf("%s: limit_all_gathers hurt: on=%0.0f off=%0.0f", s.Name(), ron.ImagesPerSec, roff.ImagesPerSec)
		}
	}
}

// --- Memory model -----------------------------------------------------

func TestMemoryAnchors(t *testing.T) {
	// Paper anchors: ViT-3B is the largest single-GPU model (>60 GB);
	// ViT-5B needs 2 GPUs; ViT-15B needs 4 GPUs.
	w3 := perfmodel.ViTWorkload(vit.ViT3B, 32)
	m3 := MemoryPerGPU(w3, frontier, 1, BestPractice(HybridShard, 1))
	if m3 < 60e9 || m3 > frontier.HBMBytesPerGPU {
		t.Fatalf("ViT-3B unsharded memory %0.1f GB, want in (60, 64]", m3/1e9)
	}
	if g := MinGPUs(w3, frontier); g != 1 {
		t.Fatalf("ViT-3B MinGPUs=%d want 1", g)
	}

	w5 := perfmodel.ViTWorkload(vit.ViT5B, 32)
	if g := MinGPUs(w5, frontier); g != 2 {
		t.Fatalf("ViT-5B MinGPUs=%d want 2", g)
	}

	w15 := perfmodel.ViTWorkload(vit.ViT15B, 32)
	w15.ActCheckpoint = true
	if g := MinGPUs(w15, frontier); g != 4 {
		t.Fatalf("ViT-15B MinGPUs=%d want 4", g)
	}
}

func TestMemoryFullShardDropsWithWorld(t *testing.T) {
	// FULL_SHARD's parameter-state component shards over the world, so
	// per-GPU memory falls monotonically toward the activation floor.
	w := perfmodel.ViTWorkload(vit.ViT3B, 32)
	plan := BestPractice(FullShard, 0)
	prev := MemoryPerGPU(w, frontier, 1, plan)
	for _, n := range []int{2, 4, 16, 64} {
		cur := MemoryPerGPU(w, frontier, n, plan)
		if cur >= prev {
			t.Fatalf("FULL_SHARD memory not decreasing at %d nodes: %0.1f → %0.1f GB", n, prev/1e9, cur/1e9)
		}
		prev = cur
	}
	m1 := MemoryPerGPU(w, frontier, 1, plan)
	m64 := MemoryPerGPU(w, frontier, 64, plan)
	if !(m64 < 0.8*m1) {
		t.Fatalf("FULL_SHARD memory drop too small: %0.1f → %0.1f GB", m1/1e9, m64/1e9)
	}
	// Constant-memory strategies must not depend on node count.
	for _, p := range []Plan{BestPractice(NoShard, 0), BestPractice(HybridShard, 2), DefaultDDP()} {
		a := MemoryPerGPU(w, frontier, 1, p)
		b := MemoryPerGPU(w, frontier, 64, p)
		if a != b {
			t.Fatalf("%s memory varies with nodes: %v vs %v", p.Name(), a, b)
		}
	}
}

func TestMemoryHybridHalves(t *testing.T) {
	// Paper: HYBRID_2GPUs roughly halves ViT-3B's per-GPU memory.
	w := perfmodel.ViTWorkload(vit.ViT3B, 32)
	m1 := MemoryPerGPU(w, frontier, 1, BestPractice(HybridShard, 1))
	m2 := MemoryPerGPU(w, frontier, 1, BestPractice(HybridShard, 2))
	ratio := m2 / m1
	if ratio > 0.75 || ratio < 0.4 {
		t.Fatalf("HYBRID_2GPUs memory ratio %0.2f, want ≈0.5–0.75", ratio)
	}
}

func TestMemoryShardGradOpBetweenFullAndNoShard(t *testing.T) {
	// Figure 4: SHARD_GRAD_OP footprint much larger than FULL_SHARD but
	// far below unsharded.
	w := perfmodel.ViTWorkload(vit.ViT15B, 32)
	w.ActCheckpoint = true
	const nodes = 16
	full := MemoryPerGPU(w, frontier, nodes, BestPractice(FullShard, 0))
	gradOp := MemoryPerGPU(w, frontier, nodes, BestPractice(ShardGradOp, 0))
	noShard := MemoryPerGPU(w, frontier, nodes, BestPractice(NoShard, 0))
	if !(full < gradOp && gradOp < noShard) {
		t.Fatalf("memory ordering violated: full=%0.1f gradOp=%0.1f noShard=%0.1f GB",
			full/1e9, gradOp/1e9, noShard/1e9)
	}
}

// --- Power / utilization ----------------------------------------------

func TestPowerAndUtilizationRanges(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	for _, p := range []Plan{
		BestPractice(HybridShard, 2),
		BestPractice(FullShard, 0),
		BestPractice(ShardGradOp, 0),
	} {
		r := mustSim(t, w, 32, p)
		if r.AvgPowerPerGPU < frontier.IdlePower || r.AvgPowerPerGPU > frontier.MaxPower {
			t.Errorf("%s: power %v outside [idle, max]", p.Name(), r.AvgPowerPerGPU)
		}
		if r.GPUUtilization <= 0.5 || r.GPUUtilization > 1 {
			t.Errorf("%s: utilization %v implausible (paper reports ≈100%%)", p.Name(), r.GPUUtilization)
		}
	}
}

// TestFig4PowerOrdering: SHARD_GRAD_OP draws more power than
// FULL_SHARD (consistent with its higher throughput), per Figure 4's
// rocm-smi trace discussion.
func TestFig4PowerOrdering(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	sg := mustSim(t, w, 32, BestPractice(ShardGradOp, 0))
	fs := mustSim(t, w, 32, BestPractice(FullShard, 0))
	if sg.ImagesPerSec > fs.ImagesPerSec && sg.AvgPowerPerGPU <= fs.AvgPowerPerGPU {
		t.Fatalf("throughput and power disagree: SHARD_GRAD_OP %0.0f ips / %0.0f W vs FULL_SHARD %0.0f ips / %0.0f W",
			sg.ImagesPerSec, sg.AvgPowerPerGPU, fs.ImagesPerSec, fs.AvgPowerPerGPU)
	}
}

// --- Fig 1 components ---------------------------------------------------

// fig1Config is the Figure 1 pretraining workload: ViT-3B at the
// paper's 512×512 pretraining resolution (patch 16 so the grid is
// integral), 75% masked.
func fig1Config() vit.Config {
	cfg := vit.ViT3B
	cfg.ImageSize = 512
	cfg.PatchSize = 16
	return cfg
}

func TestFig1CommGapGrowsWithScale(t *testing.T) {
	// (syn_no_comm − syn)/syn_no_comm must grow with node count and land
	// near ~20% at 64 nodes for the MAE-3B workload.
	w := perfmodel.MAEWorkload(fig1Config(), 32, 0.75)
	plan := BestPractice(NoShard, 0)
	gapAt := func(nodes int) float64 {
		syn := mustSim(t, w, nodes, plan)
		noComm, err := SimulateNoComm(w, frontier, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - syn.ImagesPerSec/noComm.ImagesPerSec
	}
	g1, g64 := gapAt(1), gapAt(64)
	if !(g64 > g1) {
		t.Fatalf("comm gap did not grow: %0.3f → %0.3f", g1, g64)
	}
	if g64 < 0.10 || g64 > 0.35 {
		t.Fatalf("64-node comm gap %0.3f, want ≈0.22±0.12", g64)
	}
}

func TestFig1NeverIOBound(t *testing.T) {
	w := perfmodel.MAEWorkload(fig1Config(), 32, 0.75)
	io := perfmodel.DefaultIO()
	plan := BestPractice(NoShard, 0)
	for _, n := range []int{1, 4, 16, 64} {
		syn := mustSim(t, w, n, plan)
		ioIPS := io.ImagesPerSec(n)
		if ioIPS <= syn.ImagesPerSec {
			t.Fatalf("IO-bound at %d nodes: io=%0.0f syn=%0.0f", n, ioIPS, syn.ImagesPerSec)
		}
		real := RealThroughput(syn, ioIPS)
		if real > syn.ImagesPerSec || real <= 0 {
			t.Fatalf("real throughput %0.0f inconsistent with syn %0.0f", real, syn.ImagesPerSec)
		}
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViTBase, 32)
	if _, err := Simulate(w, frontier, 0, BestPractice(NoShard, 0)); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Simulate(w, frontier, 10000, BestPractice(NoShard, 0)); err == nil {
		t.Fatal("more than MaxNodes accepted")
	}
	bad := w
	bad.LocalBatch = 0
	if _, err := Simulate(bad, frontier, 1, BestPractice(NoShard, 0)); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

// TestAbsoluteThroughputCalibration: ViT-5B at 32 nodes under the best
// strategy should land within 2× of the paper's ≈1.5k images/s (we
// match shapes, not absolutes, but the magnitude should be right).
func TestAbsoluteThroughputCalibration(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	best := 0.0
	for _, p := range []Plan{
		BestPractice(HybridShard, 2),
		BestPractice(HybridShard, 8),
		BestPractice(ShardGradOp, 0),
	} {
		if r := mustSim(t, w, 32, p); r.ImagesPerSec > best {
			best = r.ImagesPerSec
		}
	}
	if best < 750 || best > 3000 {
		t.Fatalf("ViT-5B@32 best throughput %0.0f ips, want within 2× of the paper's ≈1509", best)
	}
}
