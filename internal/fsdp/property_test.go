package fsdp

import (
	"testing"
	"testing/quick"

	"repro/internal/perfmodel"
	"repro/internal/vit"
)

// Property-based invariants of the simulator: these must hold for any
// plan and node count, independent of calibration constants.

func anyPlan(sel, group uint8) Plan {
	groups := []int{1, 2, 4, 8, 16}
	g := groups[int(group)%len(groups)]
	switch sel % 5 {
	case 0:
		return DefaultDDP()
	case 1:
		return BestPractice(NoShard, 0)
	case 2:
		return BestPractice(FullShard, 0)
	case 3:
		return BestPractice(ShardGradOp, 0)
	default:
		return BestPractice(HybridShard, g)
	}
}

func TestPropertyThroughputMonotoneInNodes(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	f := func(sel, group uint8, nshift uint8) bool {
		plan := anyPlan(sel, group)
		n1 := 1 << (nshift % 5) // 1..16
		n2 := n1 * 2            // 2..32
		if plan.Strategy == HybridShard && plan.GroupSize > frontier.TotalGPUs(n1) {
			return true // skip invalid combos
		}
		r1, err1 := Simulate(w, frontier, n1, plan)
		r2, err2 := Simulate(w, frontier, n2, plan)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.ImagesPerSec > r1.ImagesPerSec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStepAtLeastCompute(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViTHuge, 32)
	f := func(sel, group uint8) bool {
		plan := anyPlan(sel, group)
		if plan.Strategy == HybridShard && plan.GroupSize > 16 {
			return true
		}
		r, err := Simulate(w, frontier, 4, plan)
		if err != nil {
			return false
		}
		return r.StepTime >= r.ComputeTime && r.ExposedComm >= 0 &&
			r.ExposedComm <= r.CommTime+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHybridMemoryMonotoneInGroup(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT5B, 32)
	prev := MemoryPerGPU(w, frontier, 4, BestPractice(HybridShard, 2))
	for _, g := range []int{4, 8, 16} {
		cur := MemoryPerGPU(w, frontier, 4, BestPractice(HybridShard, g))
		if cur >= prev {
			t.Fatalf("hybrid memory not decreasing at group %d: %v vs %v", g, cur, prev)
		}
		prev = cur
	}
}

func TestPropertyCommVolumeOrdering(t *testing.T) {
	// Per-step wire volume: FULL_SHARD (3 passes over params) >
	// SHARD_GRAD_OP (2 passes) > optimizer-free lower bound.
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	full := mustSim(t, w, 8, BestPractice(FullShard, 0))
	gradOp := mustSim(t, w, 8, BestPractice(ShardGradOp, 0))
	if !(full.CommVolume > gradOp.CommVolume) {
		t.Fatalf("volume ordering violated: full=%.2e gradOp=%.2e", full.CommVolume, gradOp.CommVolume)
	}
	// And call counts: FULL_SHARD issues 3 collectives per unit,
	// SHARD_GRAD_OP 2 per unit.
	units := len(w.Units())
	if full.CommCalls != 3*units {
		t.Fatalf("FULL_SHARD calls=%d want %d", full.CommCalls, 3*units)
	}
	if gradOp.CommCalls != 2*units {
		t.Fatalf("SHARD_GRAD_OP calls=%d want %d", gradOp.CommCalls, 2*units)
	}
}

func TestPropertyDDPCallsScaleWithModel(t *testing.T) {
	// DDP bucket count grows with parameter count while FSDP's per-unit
	// count stays at the block count — the structural reason for the
	// paper's Figure 3 trend.
	small := mustSim(t, perfmodel.ViTWorkload(vit.ViTBase, 32), 8, DefaultDDP())
	large := mustSim(t, perfmodel.ViTWorkload(vit.ViT3B, 32), 8, DefaultDDP())
	if large.CommCalls <= small.CommCalls*10 {
		t.Fatalf("DDP calls: base=%d 3B=%d — expected ≳35× growth", small.CommCalls, large.CommCalls)
	}
	h1small := mustSim(t, perfmodel.ViTWorkload(vit.ViTBase, 32), 8, BestPractice(HybridShard, 1))
	h1large := mustSim(t, perfmodel.ViTWorkload(vit.ViT3B, 32), 8, BestPractice(HybridShard, 1))
	if h1large.CommCalls > 3*h1small.CommCalls {
		t.Fatalf("FSDP calls grew with params: base=%d 3B=%d", h1small.CommCalls, h1large.CommCalls)
	}
}

func TestPropertyNoCommMatchesIdealScaling(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	r1, err := SimulateNoComm(w, frontier, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := SimulateNoComm(w, frontier, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.ImagesPerSec != 8*r1.ImagesPerSec {
		t.Fatalf("no-comm scaling not linear: %v vs 8×%v", r8.ImagesPerSec, r1.ImagesPerSec)
	}
}

func TestPropertyFitsFlagConsistent(t *testing.T) {
	w := perfmodel.ViTWorkload(vit.ViT15B, 32) // no checkpointing: huge
	r := mustSim(t, w, 1, BestPractice(NoShard, 0))
	if r.Fits {
		t.Fatal("unsharded 15B reported as fitting in 64 GB")
	}
	w.ActCheckpoint = true
	r2 := mustSim(t, w, 8, BestPractice(FullShard, 0))
	if !r2.Fits {
		t.Fatal("fully-sharded checkpointed 15B reported as not fitting")
	}
}

func TestPropertyStragglerOnlyAtScale(t *testing.T) {
	// Communication time per byte must not decrease as nodes grow.
	w := perfmodel.ViTWorkload(vit.ViT1B, 32)
	plan := BestPractice(HybridShard, 1)
	prev := 0.0
	for _, n := range []int{2, 8, 32} {
		r := mustSim(t, w, n, plan)
		perByte := r.CommTime / r.CommVolume
		if perByte < prev {
			t.Fatalf("comm cost per byte decreased at %d nodes", n)
		}
		prev = perByte
	}
}
