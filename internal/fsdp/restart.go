package fsdp

import (
	"fmt"
	"math"
)

// Checkpoint-restart pricing for the modeled Frontier runs: given a
// per-node MTBF and the measured cost of writing a checkpoint and
// restarting (the executed counterparts live in
// train.ElasticResult.CheckpointSec / RestartSec / LostWorkSec), the
// Young/Daly model prices the optimal checkpoint interval and the
// fraction of machine time a long pretraining run loses to
// checkpointing, lost work and restarts. This is the reliability
// dimension of the paper's scale story: at 64+ nodes the system MTBF
// drops into hours, and the elastic machinery (failure injection,
// N→M re-sharding, shrink-and-resume) is what keeps the overhead at
// the modeled floor instead of a full rerun.

// FaultModel parameterizes the failure process and the restart costs.
type FaultModel struct {
	// NodeMTBF is one node's mean time between failures in seconds.
	// Failures are assumed independent across nodes, so the system
	// MTBF scales as NodeMTBF / nodes.
	NodeMTBF float64
	// CheckpointSec (the model's δ) is the wall-clock cost of writing
	// one checkpoint.
	CheckpointSec float64
	// RestartSec (R) is the wall-clock cost of one restart: relaunch,
	// re-shard the last checkpoint (train.Reshard) and fast-forward the
	// data/mask streams to the resume point.
	RestartSec float64
}

// DefaultFaultModel is a representative Frontier operating point: a
// 5-year per-node MTBF (a few-hour system MTBF at full scale), a
// one-minute checkpoint write and a five-minute restart.
func DefaultFaultModel() FaultModel {
	return FaultModel{
		NodeMTBF:      5 * 365 * 24 * 3600,
		CheckpointSec: 60,
		RestartSec:    300,
	}
}

// SystemMTBF is the mean time between failures of an n-node job.
func (f FaultModel) SystemMTBF(nodes int) float64 {
	return f.NodeMTBF / float64(nodes)
}

// YoungInterval is Young's first-order optimal checkpoint interval
// τ = sqrt(2·δ·M) for checkpoint cost δ and system MTBF M.
func YoungInterval(delta, mtbf float64) float64 {
	return math.Sqrt(2 * delta * mtbf)
}

// DalyInterval is Daly's higher-order refinement of Young's interval:
//
//	τ = sqrt(2δM)·[1 + ⅓·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ = M                                                      otherwise
//
// It converges to YoungInterval as δ/M → 0 and corrects toward shorter
// intervals when checkpoints are expensive relative to the MTBF.
func DalyInterval(delta, mtbf float64) float64 {
	if delta >= 2*mtbf {
		return mtbf
	}
	x := delta / (2 * mtbf)
	return math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(x)/3+x/9) - delta
}

// RestartOverhead decomposes the machine time a run loses to fault
// tolerance at one checkpoint interval.
type RestartOverhead struct {
	// Nodes and SystemMTBF (seconds) locate the operating point.
	Nodes      int
	SystemMTBF float64
	// Interval is the checkpoint interval τ priced (seconds of useful
	// work between checkpoints).
	Interval float64
	// CheckpointFrac is δ/τ: the fraction of time spent writing
	// checkpoints.
	CheckpointFrac float64
	// LostWorkFrac is (τ+δ)/2 / M: the expected re-done work per
	// failure (half an interval plus the in-flight checkpoint),
	// amortized over the MTBF.
	LostWorkFrac float64
	// RestartFrac is R/M: relaunch plus re-shard cost amortized over
	// the MTBF.
	RestartFrac float64
	// Overhead is the sum of the three fractions; Efficiency is
	// 1/(1+Overhead) — the fraction of wall-clock doing useful work.
	Overhead   float64
	Efficiency float64
}

// Price evaluates the overhead decomposition at a given checkpoint
// interval (seconds).
func (f FaultModel) Price(nodes int, interval float64) (RestartOverhead, error) {
	if nodes < 1 || f.NodeMTBF <= 0 || f.CheckpointSec < 0 || f.RestartSec < 0 {
		return RestartOverhead{}, fmt.Errorf("fsdp: fault model %+v at %d nodes", f, nodes)
	}
	if interval <= 0 {
		return RestartOverhead{}, fmt.Errorf("fsdp: non-positive checkpoint interval %g", interval)
	}
	m := f.SystemMTBF(nodes)
	o := RestartOverhead{
		Nodes:          nodes,
		SystemMTBF:     m,
		Interval:       interval,
		CheckpointFrac: f.CheckpointSec / interval,
		LostWorkFrac:   (interval + f.CheckpointSec) / 2 / m,
		RestartFrac:    f.RestartSec / m,
	}
	o.Overhead = o.CheckpointFrac + o.LostWorkFrac + o.RestartFrac
	o.Efficiency = 1 / (1 + o.Overhead)
	return o, nil
}

// Optimal prices the Daly-optimal interval for an n-node job.
func (f FaultModel) Optimal(nodes int) (RestartOverhead, error) {
	if nodes < 1 || f.NodeMTBF <= 0 {
		return RestartOverhead{}, fmt.Errorf("fsdp: fault model %+v at %d nodes", f, nodes)
	}
	tau := DalyInterval(f.CheckpointSec, f.SystemMTBF(nodes))
	if tau <= 0 {
		// Degenerate (checkpoint dwarfs the MTBF): fall back to Young.
		tau = YoungInterval(f.CheckpointSec, f.SystemMTBF(nodes))
	}
	return f.Price(nodes, tau)
}
