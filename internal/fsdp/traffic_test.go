package fsdp

import (
	"testing"

	"repro/internal/comm"
)

// TestTrafficMatchesCommModel holds TrafficPerStep to the WireBytes the
// α–β cost model accounts for the equivalent collective calls.
func TestTrafficMatchesCommModel(t *testing.T) {
	p := comm.Params{Bandwidth: 50e9}
	const elems = 1 << 20 // divisible by every world below: no padding
	bytes := float64(elems * 4)
	for _, world := range []int{2, 4, 8} {
		ddp := TrafficPerStep(DefaultDDP(), world, elems, 4)
		if want := comm.AllReduce(bytes, world, p).WireBytes; ddp.AllReduceBytes != want {
			t.Errorf("DDP world=%d: %v, comm model %v", world, ddp.AllReduceBytes, want)
		}
		if ddp.ReduceScatterBytes != 0 || ddp.AllGatherBytes != 0 {
			t.Errorf("DDP world=%d: unexpected sharded traffic %+v", world, ddp)
		}

		zero1 := TrafficPerStep(BestPractice(ShardGradOp, 0), world, elems, 4)
		if want := comm.ReduceScatter(bytes, world, p).WireBytes; zero1.ReduceScatterBytes != want {
			t.Errorf("ZeRO-1 world=%d RS: %v, comm model %v", world, zero1.ReduceScatterBytes, want)
		}
		if want := comm.AllGather(bytes, world, p).WireBytes; zero1.AllGatherBytes != want {
			t.Errorf("ZeRO-1 world=%d AG: %v, comm model %v", world, zero1.AllGatherBytes, want)
		}

		full := TrafficPerStep(BestPractice(FullShard, 0), world, elems, 4)
		if full.AllGatherBytes != 2*zero1.AllGatherBytes {
			t.Errorf("FULL_SHARD world=%d: AG %v, want twice SHARD_GRAD_OP's %v",
				world, full.AllGatherBytes, zero1.AllGatherBytes)
		}
	}
}

// TestTrafficPadding: a non-divisible parameter count is padded to the
// collective group, matching internal/dist's uniform-chunk requirement.
func TestTrafficPadding(t *testing.T) {
	const world = 4
	tr := TrafficPerStep(DefaultDDP(), world, 10, 4)
	want := 2.0 * 3 / 4 * 12 * 4 // pad 10 → 12 elems
	if tr.AllReduceBytes != want {
		t.Fatalf("padded DDP traffic %v, want %v", tr.AllReduceBytes, want)
	}
}

// TestTrafficHybrid: group collectives plus replica all-reduce.
func TestTrafficHybrid(t *testing.T) {
	plan := BestPractice(HybridShard, 4)
	const world, elems = 8, 1 << 10
	tr := TrafficPerStep(plan, world, elems, 4)
	bytes := float64(elems * 4)
	if want := 3.0 / 4 * bytes; tr.ReduceScatterBytes != want {
		t.Errorf("hybrid RS %v want %v", tr.ReduceScatterBytes, want)
	}
	if want := 2 * 3.0 / 4 * bytes; tr.AllGatherBytes != want {
		t.Errorf("hybrid AG %v want %v", tr.AllGatherBytes, want)
	}
	if want := 2 * 1.0 / 2 * bytes / 4; tr.AllReduceBytes != want {
		t.Errorf("hybrid replica AR %v want %v", tr.AllReduceBytes, want)
	}
	// HYBRID_1GPU degenerates to the DDP volume.
	h1 := TrafficPerStep(BestPractice(HybridShard, 1), world, elems, 4)
	ddp := TrafficPerStep(DefaultDDP(), world, elems, 4)
	if h1 != ddp {
		t.Errorf("HYBRID_1GPU %+v != DDP %+v", h1, ddp)
	}
}

// TestTrafficDegenerate: one rank or no params moves nothing, and a
// hybrid group larger than the world (invalid per Validate, but
// TrafficPerStep is a pure function callers may probe) stays finite
// instead of dividing by zero.
func TestTrafficDegenerate(t *testing.T) {
	if tr := TrafficPerStep(DefaultDDP(), 1, 100, 4); tr.Total() != 0 {
		t.Fatalf("world=1 traffic %v", tr.Total())
	}
	if tr := TrafficPerStep(DefaultDDP(), 8, 0, 4); tr.Total() != 0 {
		t.Fatalf("zero params traffic %v", tr.Total())
	}
	over := TrafficPerStep(BestPractice(HybridShard, 8), 4, 1<<10, 4)
	if over.AllReduceBytes != 0 || over.ReduceScatterBytes <= 0 {
		t.Fatalf("oversized hybrid group traffic %+v", over)
	}
}

// TestTrafficBF16HalvesVolume: the dtype-width parameter scales every
// per-step collective volume linearly — bf16 (2 bytes) moves exactly
// half of fp32's bytes for every strategy, and a non-positive width
// defaults to fp32.
func TestTrafficBF16HalvesVolume(t *testing.T) {
	const world, elems = 8, 12345
	for _, plan := range []Plan{
		DefaultDDP(),
		BestPractice(ShardGradOp, 0),
		BestPractice(FullShard, 0),
		BestPractice(HybridShard, 2),
	} {
		fp := TrafficPerStep(plan, world, elems, 4)
		bf := TrafficPerStep(plan, world, elems, 2)
		if 2*bf.AllReduceBytes != fp.AllReduceBytes ||
			2*bf.ReduceScatterBytes != fp.ReduceScatterBytes ||
			2*bf.AllGatherBytes != fp.AllGatherBytes {
			t.Errorf("%s: bf16 %+v is not half of fp32 %+v", plan.Name(), bf, fp)
		}
		if def := TrafficPerStep(plan, world, elems, 0); def != fp {
			t.Errorf("%s: zero width %+v does not default to fp32 %+v", plan.Name(), def, fp)
		}
	}
}
