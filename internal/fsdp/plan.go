// Package fsdp simulates PyTorch Fully Sharded Data Parallel training
// on the modeled Frontier machine. It reproduces FSDP's observable
// behaviour — the per-unit all-gather / reduce-scatter / all-reduce
// schedule of each sharding strategy, backward prefetching policies,
// the limit_all_gathers rate limiter, and DDP's fixed-size gradient
// buckets — as a discrete-event task graph over one compute stream and
// one communication stream per rank (ranks are symmetric, so one
// representative rank is simulated).
//
// Sharding strategies follow Section III-C of the paper:
//
//	NO_SHARD       – pure data parallel through FSDP (≈ DDP semantics)
//	FULL_SHARD     – params, grads and optimizer state sharded over all
//	                 ranks; params re-gathered in forward AND backward
//	SHARD_GRAD_OP  – grads and optimizer state sharded; params gathered
//	                 in forward and kept until backward
//	HYBRID_SHARD   – FULL_SHARD within a sharding group of GroupSize
//	                 GPUs, replication with gradient all-reduce across
//	                 groups (HYBRID_1GPU, HYBRID_2GPUs, … in the paper)
//	DDP            – classic DistributedDataParallel with fixed-size
//	                 gradient buckets, the baseline of Figure 3
package fsdp

import (
	"fmt"
)

// Strategy enumerates the distributed strategies of the paper.
type Strategy int

// Strategies studied in the paper.
const (
	DDP Strategy = iota
	NoShard
	FullShard
	ShardGradOp
	HybridShard
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case DDP:
		return "DDP"
	case NoShard:
		return "NO_SHARD"
	case FullShard:
		return "FULL_SHARD"
	case ShardGradOp:
		return "SHARD_GRAD_OP"
	case HybridShard:
		return "HYBRID_SHARD"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Prefetch enumerates FSDP's backward prefetch policies (Section IV-B).
type Prefetch int

// Prefetch policies.
const (
	PrefetchNone Prefetch = iota
	BackwardPost
	BackwardPre
)

// String names the policy as in the paper.
func (p Prefetch) String() string {
	switch p {
	case PrefetchNone:
		return "None"
	case BackwardPost:
		return "BACKWARD_POST"
	case BackwardPre:
		return "BACKWARD_PRE"
	default:
		return fmt.Sprintf("Prefetch(%d)", int(p))
	}
}

// Plan is one distributed-training configuration.
type Plan struct {
	Strategy Strategy
	// GroupSize is the sharding-group size for HybridShard (the paper's
	// HYBRID_kGPUs); ignored otherwise.
	GroupSize       int
	Prefetch        Prefetch
	LimitAllGathers bool
	// DDPBucketBytes is DDP's gradient bucket size (PyTorch default
	// 25 MiB); ignored for FSDP strategies.
	DDPBucketBytes float64
}

// Name renders the paper's label for the plan (e.g. "HYBRID_2GPUs").
func (p Plan) Name() string {
	if p.Strategy == HybridShard {
		if p.GroupSize == 1 {
			return "HYBRID_1GPU"
		}
		return fmt.Sprintf("HYBRID_%dGPUs", p.GroupSize)
	}
	return p.Strategy.String()
}

// ParsePlanName inverts Plan.Name: it maps a paper-style label
// ("DDP", "FULL_SHARD", "HYBRID_2GPUs", …) back onto a plan with the
// matching Strategy and GroupSize. Scheduling knobs that do not affect
// the shard layout (Prefetch, LimitAllGathers) take the BestPractice
// defaults, and DDP gets its default bucket size — checkpoint topology
// stamps (train.TrainState.Strategy) only need the layout to round-trip.
func ParsePlanName(name string) (Plan, error) {
	for _, s := range []Strategy{DDP, NoShard, FullShard, ShardGradOp} {
		if name == s.String() {
			if s == DDP {
				return DefaultDDP(), nil
			}
			return BestPractice(s, 0), nil
		}
	}
	if name == "HYBRID_1GPU" {
		return BestPractice(HybridShard, 1), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "HYBRID_%dGPUs", &k); n == 1 && err == nil && k > 1 {
		p := BestPractice(HybridShard, k)
		if p.Name() == name {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("fsdp: unknown plan name %q", name)
}

// Validate checks the plan against a world size.
func (p Plan) Validate(world int) error {
	if world < 1 {
		return fmt.Errorf("fsdp: world size %d", world)
	}
	switch p.Strategy {
	case DDP:
		if p.DDPBucketBytes <= 0 {
			return fmt.Errorf("fsdp: DDP requires a positive bucket size")
		}
	case NoShard:
	case FullShard, ShardGradOp:
	case HybridShard:
		if p.GroupSize < 1 {
			return fmt.Errorf("fsdp: hybrid group size %d", p.GroupSize)
		}
		if world%p.GroupSize != 0 {
			return fmt.Errorf("fsdp: world %d not divisible by group %d", world, p.GroupSize)
		}
	default:
		return fmt.Errorf("fsdp: unknown strategy %v", p.Strategy)
	}
	return nil
}

// ShardRanks returns how many ranks each parameter is sharded across.
func (p Plan) ShardRanks(world int) int {
	switch p.Strategy {
	case FullShard, ShardGradOp:
		return world
	case HybridShard:
		return p.GroupSize
	default:
		return 1
	}
}

// shardsParams reports whether forward needs per-unit all-gathers.
func (p Plan) shardsParams(world int) bool {
	return p.ShardRanks(world) > 1
}

// regathersInBackward reports whether parameters are re-gathered during
// backward: FULL_SHARD and HYBRID (>1) reshard after forward;
// SHARD_GRAD_OP keeps parameters resident.
func (p Plan) regathersInBackward(world int) bool {
	switch p.Strategy {
	case FullShard:
		return true
	case HybridShard:
		return p.GroupSize > 1
	default:
		return false
	}
}

// DefaultDDP returns the Figure 3 DDP baseline configuration.
func DefaultDDP() Plan {
	return Plan{Strategy: DDP, DDPBucketBytes: 25 << 20, Prefetch: BackwardPost}
}

// BestPractice returns the configuration Section IV-E recommends for
// FSDP strategies: BACKWARD_PRE prefetch with limit_all_gathers.
func BestPractice(s Strategy, group int) Plan {
	return Plan{
		Strategy:        s,
		GroupSize:       group,
		Prefetch:        BackwardPre,
		LimitAllGathers: true,
		DDPBucketBytes:  25 << 20,
	}
}
