package fsdp

import (
	"math"
	"testing"
)

// TestYoungDalyAgreement: Daly's refinement converges to Young's
// sqrt(2δM) when checkpoints are cheap relative to the MTBF, and stays
// below it (shorter intervals) when they are not.
func TestYoungDalyAgreement(t *testing.T) {
	const mtbf = 6 * 3600
	cheap := 1.0
	y, d := YoungInterval(cheap, mtbf), DalyInterval(cheap, mtbf)
	if rel := math.Abs(y-d) / y; rel > 0.01 {
		t.Fatalf("δ≪M: Young %.1f vs Daly %.1f (rel %.3f), want <1%% apart", y, d, rel)
	}
	costly := 1800.0
	if d := DalyInterval(costly, mtbf); d >= YoungInterval(costly, mtbf) {
		t.Fatalf("δ=%.0f: Daly %.1f not below Young %.1f", costly, d, YoungInterval(costly, mtbf))
	}
	// Degenerate regime: interval clamps to the MTBF.
	if d := DalyInterval(3*mtbf, mtbf); d != mtbf {
		t.Fatalf("δ≥2M: Daly %.1f, want the MTBF", d)
	}
}

// TestYoungIntervalMonotone: the optimal interval grows with both the
// checkpoint cost and the MTBF.
func TestYoungIntervalMonotone(t *testing.T) {
	if YoungInterval(10, 3600) >= YoungInterval(40, 3600) {
		t.Fatal("interval not increasing in checkpoint cost")
	}
	if YoungInterval(10, 3600) >= YoungInterval(10, 14400) {
		t.Fatal("interval not increasing in MTBF")
	}
}

// TestOptimalIntervalMinimizesOverhead: the Daly interval is a local
// minimum of the priced overhead — both halving and doubling it cost
// more, at every node count of the paper's sweep.
func TestOptimalIntervalMinimizesOverhead(t *testing.T) {
	f := DefaultFaultModel()
	for _, nodes := range []int{1, 8, 64, 1024, 9408} {
		best, err := f.Optimal(nodes)
		if err != nil {
			t.Fatal(err)
		}
		for _, scale := range []float64{0.5, 2} {
			alt, err := f.Price(nodes, best.Interval*scale)
			if err != nil {
				t.Fatal(err)
			}
			if alt.Overhead < best.Overhead {
				t.Errorf("nodes %d: %.2f×τ overhead %.4f beats optimal %.4f",
					nodes, scale, alt.Overhead, best.Overhead)
			}
		}
		if best.Efficiency <= 0 || best.Efficiency > 1 {
			t.Errorf("nodes %d: efficiency %v outside (0, 1]", nodes, best.Efficiency)
		}
		sum := best.CheckpointFrac + best.LostWorkFrac + best.RestartFrac
		if math.Abs(sum-best.Overhead) > 1e-12 {
			t.Errorf("nodes %d: overhead %v does not decompose (%v)", nodes, best.Overhead, sum)
		}
	}
}

// TestOverheadGrowsWithScale: more nodes mean a shorter system MTBF
// and strictly more fault-tolerance overhead at the optimum — the
// reliability cost of the paper's weak scaling.
func TestOverheadGrowsWithScale(t *testing.T) {
	f := DefaultFaultModel()
	prev := -1.0
	for _, nodes := range []int{1, 4, 16, 64, 256, 1024, 9408} {
		o, err := f.Optimal(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if o.Overhead <= prev {
			t.Fatalf("overhead %.5f at %d nodes not above %.5f", o.Overhead, nodes, prev)
		}
		if want := f.NodeMTBF / float64(nodes); o.SystemMTBF != want {
			t.Fatalf("system MTBF %v at %d nodes, want %v", o.SystemMTBF, nodes, want)
		}
		prev = o.Overhead
	}
}

// TestPriceValidation: degenerate models and intervals are rejected.
func TestPriceValidation(t *testing.T) {
	f := DefaultFaultModel()
	if _, err := f.Price(0, 100); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := f.Price(4, 0); err == nil {
		t.Error("zero interval accepted")
	}
	bad := f
	bad.NodeMTBF = 0
	if _, err := bad.Optimal(4); err == nil {
		t.Error("zero MTBF accepted")
	}
}
