package geodata

import "math"

// Segmentation support: the paper's envisioned next step ("evaluation
// of model capabilities across additional downstream tasks (e.g. ...
// semantic segmentation)"). Because the scenes are procedural we can
// emit exact per-pixel ground truth: every pixel is labeled by the
// dominant generative process at that location.

// Per-pixel semantic classes.
const (
	SegBackground = 0 // base texture (fields, water)
	SegStructure  = 1 // blob field (buildings, canopy)
	SegGrid       = 2 // bright checkerboard cells (urban blocks)
	SegClasses    = 3
)

// ImageWithMask renders sample idx of the class like Image, and
// additionally writes the per-pixel semantic label (one of the Seg*
// constants) into mask, which must have Size·Size elements. The image
// output is identical to Image for the same (class, idx).
func (g *SceneGen) ImageWithMask(class, idx int, dst []float32, mask []uint8) {
	if len(mask) < g.Size*g.Size {
		panic("geodata: mask buffer too small")
	}
	g.Image(class, idx, dst)
	g.renderMask(class, idx, mask)
}

// renderMask recomputes the blob field and checker layout with the same
// deterministic draws as Image and labels each pixel by the dominant
// contribution.
func (g *SceneGen) renderMask(class, idx int, mask []uint8) {
	p := &g.params[class]
	r := g.sampleStream(class, idx)

	// Consume the same leading draws as Image so blob positions match.
	_ = r.Float64() // phase1
	_ = r.Float64() // phase2
	_ = r.Float64() // jitter1
	_ = r.Float64() // jitter2
	_ = r.Float64() // illum
	_ = r.Float64() // noiseStd

	nBlobs := int(p.blobDensity)
	if p.blobDensity > 0 && r.Float64() < p.blobDensity-math.Floor(p.blobDensity) {
		nBlobs++
	}
	type blob struct{ x, y, r2, amp float64 }
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		rad := p.blobRadius * (0.7 + 0.6*r.Float64())
		blobs[i] = blob{
			x:   r.Float64(),
			y:   r.Float64(),
			r2:  rad * rad,
			amp: p.blobAmp * (0.6 + 0.8*r.Float64()),
		}
	}

	n := g.Size
	inv := 1 / float64(n)
	for y := 0; y < n; y++ {
		fy := float64(y) * inv
		for x := 0; x < n; x++ {
			fx := float64(x) * inv
			label := uint8(SegBackground)
			// Blob contribution at this pixel.
			var blobV float64
			for _, b := range blobs {
				dx, dy := fx-b.x, fy-b.y
				d2 := dx*dx + dy*dy
				if d2 < 9*b.r2 {
					blobV += b.amp * math.Exp(-d2/(2*b.r2))
				}
			}
			switch {
			case blobV > 0.35:
				label = SegStructure
			case p.checker > 0:
				cx := int(fx*p.checker) & 1
				cy := int(fy*p.checker) & 1
				if cx^cy == 1 {
					label = SegGrid
				}
			}
			mask[y*n+x] = label
		}
	}
}

// PatchLabels majority-votes the per-pixel mask into per-patch labels
// on a (size/ps)² grid in the same row-major patch order as
// nn.Patchify. dst must have (size/ps)² elements.
func PatchLabels(mask []uint8, size, ps int, dst []int) {
	if size%ps != 0 {
		panic("geodata: size not divisible by patch")
	}
	grid := size / ps
	if len(dst) < grid*grid {
		panic("geodata: PatchLabels buffer too small")
	}
	var counts [SegClasses]int
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			for c := range counts {
				counts[c] = 0
			}
			for py := 0; py < ps; py++ {
				row := (gy*ps + py) * size
				for px := 0; px < ps; px++ {
					counts[mask[row+gx*ps+px]]++
				}
			}
			best := 0
			for c := 1; c < SegClasses; c++ {
				if counts[c] > counts[best] {
					best = c
				}
			}
			dst[gy*grid+gx] = best
		}
	}
}
