package geodata

import "fmt"

// Dataset is a labeled procedural dataset with disjoint train/test
// splits. Labels are assigned round-robin (index i has class i mod K),
// so every split is exactly class-balanced; instances are disambiguated
// by an offset so the two splits never share an image.
type Dataset struct {
	Name       string
	Gen        *SceneGen
	TrainCount int
	TestCount  int
}

// testOffset separates test instance indices from train indices.
const testOffset = 1 << 20

// Classes returns the class vocabulary size.
func (d *Dataset) Classes() int { return d.Gen.Classes }

// TrainSample renders training sample i into dst and returns its label.
func (d *Dataset) TrainSample(i int, dst []float32) int {
	if i < 0 || i >= d.TrainCount {
		panic(fmt.Sprintf("geodata: train index %d out of range %d", i, d.TrainCount))
	}
	class := i % d.Gen.Classes
	d.Gen.Image(class, i/d.Gen.Classes, dst)
	return class
}

// TestSample renders test sample i into dst and returns its label.
func (d *Dataset) TestSample(i int, dst []float32) int {
	if i < 0 || i >= d.TestCount {
		panic(fmt.Sprintf("geodata: test index %d out of range %d", i, d.TestCount))
	}
	class := i % d.Gen.Classes
	d.Gen.Image(class, testOffset+i/d.Gen.Classes, dst)
	return class
}

// TrainSampleWithMask is TrainSample plus the per-pixel segmentation
// ground truth (see ImageWithMask).
func (d *Dataset) TrainSampleWithMask(i int, dst []float32, mask []uint8) int {
	if i < 0 || i >= d.TrainCount {
		panic(fmt.Sprintf("geodata: train index %d out of range %d", i, d.TrainCount))
	}
	class := i % d.Gen.Classes
	d.Gen.ImageWithMask(class, i/d.Gen.Classes, dst, mask)
	return class
}

// TestSampleWithMask is TestSample plus segmentation ground truth.
func (d *Dataset) TestSampleWithMask(i int, dst []float32, mask []uint8) int {
	if i < 0 || i >= d.TestCount {
		panic(fmt.Sprintf("geodata: test index %d out of range %d", i, d.TestCount))
	}
	class := i % d.Gen.Classes
	d.Gen.ImageWithMask(class, testOffset+i/d.Gen.Classes, dst, mask)
	return class
}

// TableIIRow records one row of the paper's Table II.
type TableIIRow struct {
	Name         string
	TrainSamples int
	TestSamples  int
	Classes      int
	PretrainOnly bool
}

// PaperTableII is Table II exactly as printed: the pretraining corpus
// and the four image-classification datasets.
var PaperTableII = []TableIIRow{
	{Name: "MillionAID-pretrain", TrainSamples: 990848, Classes: 51, PretrainOnly: true},
	{Name: "MillionAID", TrainSamples: 1000, TestSamples: 9000, Classes: 51},
	{Name: "UCM", TrainSamples: 1050, TestSamples: 1050, Classes: 21},
	{Name: "AID", TrainSamples: 2000, TestSamples: 8000, Classes: 30},
	{Name: "NWPU", TrainSamples: 3150, TestSamples: 28350, Classes: 45},
}

// Suite is the full set of analog datasets used by the downstream
// experiments, plus the pretraining stream.
type Suite struct {
	Pretrain *Dataset // labels ignored; TrainCount = corpus size
	Probe    []*Dataset
}

// NewSuite builds scaled analogs of Table II. scale divides every
// sample count (min one sample per class per split); size/channels set
// the rendered image geometry. Class counts are never scaled — they are
// part of task difficulty.
//
// Each dataset gets an independent generator seed, so UCM/AID/NWPU
// classes are *different* archetypes than the pretraining corpus —
// matching the paper's setup where only MillionAID distributions are
// seen during pretraining.
func NewSuite(scale, size, channels int, seed uint64) *Suite {
	if scale < 1 {
		scale = 1
	}
	div := func(n, classes int) int {
		v := n / scale
		if v < classes {
			v = classes
		}
		return v - v%classes // keep splits exactly class-balanced
	}
	mkGen := func(classes int, s uint64) *SceneGen {
		return NewSceneGen(classes, size, channels, seed^s)
	}
	// MillionAID pretrain and probe share one generator (same classes,
	// same distribution) — the paper notes probe samples come from the
	// pretraining distribution, which shapes its Figure 6 behaviour.
	maid := mkGen(51, 0x1)
	s := &Suite{
		Pretrain: &Dataset{Name: "MillionAID-pretrain", Gen: maid,
			TrainCount: div(990848, 51)},
		Probe: []*Dataset{
			{Name: "MillionAID", Gen: maid, TrainCount: div(1000, 51), TestCount: div(9000, 51)},
			{Name: "UCM", Gen: mkGen(21, 0x2), TrainCount: div(1050, 21), TestCount: div(1050, 21)},
			{Name: "AID", Gen: mkGen(30, 0x3), TrainCount: div(2000, 30), TestCount: div(8000, 30)},
			{Name: "NWPU", Gen: mkGen(45, 0x4), TrainCount: div(3150, 45), TestCount: div(28350, 45)},
		},
	}
	return s
}
