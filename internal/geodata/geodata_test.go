package geodata

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestImageDeterminism(t *testing.T) {
	g := NewSceneGen(5, 16, 3, 42)
	a := make([]float32, g.ImageLen())
	b := make([]float32, g.ImageLen())
	g.Image(2, 7, a)
	g.Image(2, 7, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (class, idx) produced different images")
		}
	}
}

func TestImagesDifferAcrossSamplesAndClasses(t *testing.T) {
	g := NewSceneGen(5, 16, 3, 42)
	a := make([]float32, g.ImageLen())
	b := make([]float32, g.ImageLen())
	g.Image(2, 7, a)
	g.Image(2, 8, b)
	if same(a, b) {
		t.Fatal("different sample indices produced identical images")
	}
	g.Image(3, 7, b)
	if same(a, b) {
		t.Fatal("different classes produced identical images")
	}
}

func same(a, b []float32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestImageValuesFinite(t *testing.T) {
	g := NewSceneGen(10, 24, 3, 1)
	buf := make([]float32, g.ImageLen())
	for c := 0; c < 10; c++ {
		g.Image(c, 0, buf)
		for _, v := range buf {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("class %d produced non-finite pixel", c)
			}
		}
	}
}

func TestClassSeparabilityByPixelStats(t *testing.T) {
	// Different classes must have distinguishable *texture* statistics;
	// we check mean absolute pixel difference between class means is
	// nonzero while within-class variation exists — i.e. the task is
	// neither trivial nor degenerate.
	g := NewSceneGen(4, 16, 1, 7)
	const perClass = 6
	means := make([]float64, 4)
	for c := 0; c < 4; c++ {
		buf := make([]float32, g.ImageLen())
		var s float64
		for i := 0; i < perClass; i++ {
			g.Image(c, i, buf)
			s += tensor.Mean(buf)
		}
		means[c] = s / perClass
	}
	distinct := false
	for c := 1; c < 4; c++ {
		if math.Abs(means[c]-means[0]) > 1e-3 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all class mean intensities identical — generator degenerate")
	}
}

func TestClassOutOfRangePanics(t *testing.T) {
	g := NewSceneGen(3, 8, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.Image(3, 0, make([]float32, g.ImageLen()))
}

func TestDatasetSplitsDisjointAndBalanced(t *testing.T) {
	g := NewSceneGen(5, 8, 1, 3)
	d := &Dataset{Name: "t", Gen: g, TrainCount: 25, TestCount: 10}
	buf := make([]float32, g.ImageLen())
	counts := make([]int, 5)
	for i := 0; i < d.TrainCount; i++ {
		counts[d.TrainSample(i, buf)]++
	}
	for c, n := range counts {
		if n != 5 {
			t.Fatalf("class %d has %d train samples, want 5", c, n)
		}
	}
	// Train sample 0 and test sample 0 share class 0 but must be
	// different images (disjoint instance ranges).
	a := make([]float32, g.ImageLen())
	b := make([]float32, g.ImageLen())
	la := d.TrainSample(0, a)
	lb := d.TestSample(0, b)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	if same(a, b) {
		t.Fatal("train and test splits share an image")
	}
}

func TestDatasetIndexValidation(t *testing.T) {
	g := NewSceneGen(2, 8, 1, 3)
	d := &Dataset{Name: "t", Gen: g, TrainCount: 4, TestCount: 2}
	buf := make([]float32, g.ImageLen())
	for _, fn := range []func(){
		func() { d.TrainSample(4, buf) },
		func() { d.TrainSample(-1, buf) },
		func() { d.TestSample(2, buf) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestPaperTableIIExactNumbers(t *testing.T) {
	want := map[string][3]int{ // train, test, classes
		"MillionAID-pretrain": {990848, 0, 51},
		"MillionAID":          {1000, 9000, 51},
		"UCM":                 {1050, 1050, 21},
		"AID":                 {2000, 8000, 30},
		"NWPU":                {3150, 28350, 45},
	}
	for _, row := range PaperTableII {
		w, ok := want[row.Name]
		if !ok {
			t.Fatalf("unexpected row %q", row.Name)
		}
		if row.TrainSamples != w[0] || row.TestSamples != w[1] || row.Classes != w[2] {
			t.Fatalf("row %q = %+v, want %v", row.Name, row, w)
		}
	}
}

func TestNewSuiteScaling(t *testing.T) {
	s := NewSuite(100, 8, 3, 1)
	if s.Pretrain.TrainCount < 51 {
		t.Fatalf("pretrain corpus too small: %d", s.Pretrain.TrainCount)
	}
	if s.Pretrain.TrainCount%51 != 0 {
		t.Fatal("pretrain corpus not class-balanced")
	}
	names := map[string]bool{}
	for _, d := range s.Probe {
		names[d.Name] = true
		if d.TrainCount%d.Classes() != 0 || d.TestCount%d.Classes() != 0 {
			t.Fatalf("%s splits not class-balanced: %d/%d over %d classes",
				d.Name, d.TrainCount, d.TestCount, d.Classes())
		}
		if d.TrainCount < d.Classes() {
			t.Fatalf("%s has fewer train samples than classes", d.Name)
		}
	}
	for _, n := range []string{"MillionAID", "UCM", "AID", "NWPU"} {
		if !names[n] {
			t.Fatalf("suite missing dataset %s", n)
		}
	}
}

func TestNewSuiteSplitRatiosAtModerateScale(t *testing.T) {
	// At scale 10 the per-class floor does not bind, so the Table II
	// test/train ratios must be preserved: AID ≈4, NWPU ≈9, UCM = 1.
	s := NewSuite(10, 8, 3, 1)
	byName := map[string]*Dataset{}
	for _, d := range s.Probe {
		byName[d.Name] = d
	}
	if r := float64(byName["AID"].TestCount) / float64(byName["AID"].TrainCount); math.Abs(r-4) > 0.5 {
		t.Fatalf("AID test/train ratio %v, want ≈4", r)
	}
	if r := float64(byName["NWPU"].TestCount) / float64(byName["NWPU"].TrainCount); math.Abs(r-9) > 1 {
		t.Fatalf("NWPU test/train ratio %v, want ≈9", r)
	}
	if r := float64(byName["UCM"].TestCount) / float64(byName["UCM"].TrainCount); math.Abs(r-1) > 0.2 {
		t.Fatalf("UCM test/train ratio %v, want 1", r)
	}
}

func TestSuiteMillionAIDSharesGenerator(t *testing.T) {
	// Probe MillionAID must draw from the pretraining distribution
	// (same generator), per the paper's observation about Fig 6.
	s := NewSuite(100, 8, 3, 1)
	if s.Probe[0].Name != "MillionAID" || s.Probe[0].Gen != s.Pretrain.Gen {
		t.Fatal("MillionAID probe generator differs from pretraining generator")
	}
	// And UCM must not share it.
	if s.Probe[1].Gen == s.Pretrain.Gen {
		t.Fatal("UCM shares pretraining generator")
	}
}

func BenchmarkSceneImage32(b *testing.B) {
	g := NewSceneGen(51, 32, 3, 1)
	buf := make([]float32, g.ImageLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Image(i%51, i, buf)
	}
}
