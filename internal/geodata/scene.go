// Package geodata synthesizes the remote-sensing imagery that stands in
// for the paper's datasets (MillionAID for pretraining; MillionAID,
// UCM, AID and NWPU-RESISC45 for linear probing — Table II).
//
// Real RS archives are not available offline, so each dataset is
// replaced by a procedural scene generator with the same class counts
// and split ratios. Every class is an "archetype" of land-cover
// statistics — dominant texture frequencies and orientations
// (agricultural stripes, urban grids), blob fields (tree canopies,
// buildings), large-scale gradients (coastlines) and per-channel
// spectral mixes — and every sample perturbs the archetype with random
// phases, jitter, illumination and sensor noise. Class identity is
// therefore carried by second-order texture statistics rather than raw
// pixel values, which is what makes larger pretrained encoders
// genuinely more useful — the property the paper's Section V trend
// depends on.
//
// Everything is deterministic: sample (dataset, split, class, index)
// always yields the same image on any platform.
package geodata

import (
	"math"

	"repro/internal/rng"
)

// SceneGen generates square channel-last images for a fixed class
// vocabulary.
type SceneGen struct {
	Classes  int
	Size     int
	Channels int

	seed   uint64
	params []classParams
}

// classParams is the per-class archetype.
type classParams struct {
	freq1, freq2   float64 // dominant texture frequencies (cycles/image)
	theta1, theta2 float64 // orientations
	amp1, amp2     float64
	blobDensity    float64 // expected blobs per image
	blobRadius     float64 // relative to image size
	blobAmp        float64
	gradAngle      float64 // large-scale gradient direction
	gradAmp        float64
	checker        float64 // checkerboard cell count (0 = none)
	chanMix        [3][3]float64
}

// NewSceneGen derives the class archetypes deterministically from seed.
func NewSceneGen(classes, size, channels int, seed uint64) *SceneGen {
	if channels > 3 {
		panic("geodata: at most 3 channels supported")
	}
	g := &SceneGen{Classes: classes, Size: size, Channels: channels, seed: seed}
	g.params = make([]classParams, classes)
	for c := range g.params {
		r := rng.New(seed ^ (0x9E3779B97F4A7C15 * uint64(c+1)))
		p := &g.params[c]
		p.freq1 = 1 + 7*r.Float64()
		p.freq2 = 1 + 11*r.Float64()
		p.theta1 = math.Pi * r.Float64()
		p.theta2 = math.Pi * r.Float64()
		p.amp1 = 0.4 + 0.6*r.Float64()
		p.amp2 = 0.2 + 0.5*r.Float64()
		p.blobDensity = float64(r.Intn(9))
		p.blobRadius = 0.05 + 0.15*r.Float64()
		p.blobAmp = 0.5 + r.Float64()
		p.gradAngle = 2 * math.Pi * r.Float64()
		p.gradAmp = 0.6 * r.Float64()
		if r.Float64() < 0.35 {
			p.checker = float64(2 + r.Intn(5))
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				p.chanMix[i][j] = 0.2 + 0.8*r.Float64()
			}
		}
	}
	return g
}

// ImageLen returns the length of one image buffer (Size·Size·Channels).
func (g *SceneGen) ImageLen() int { return g.Size * g.Size * g.Channels }

// sampleStream derives the deterministic per-sample random stream; the
// segmentation mask renderer replays the same stream to reconstruct
// blob layouts exactly.
func (g *SceneGen) sampleStream(class, idx int) *rng.RNG {
	return rng.New(g.seed ^ 0xABCDEF123456789 ^ (uint64(class)<<32 | uint64(idx) + 1))
}

// Image renders sample idx of the given class into dst (channel-last,
// length ImageLen). The pair (class, idx) fully determines the output.
func (g *SceneGen) Image(class, idx int, dst []float32) {
	if class < 0 || class >= g.Classes {
		panic("geodata: class out of range")
	}
	if len(dst) < g.ImageLen() {
		panic("geodata: Image buffer too small")
	}
	p := &g.params[class]
	r := g.sampleStream(class, idx)

	// Per-sample perturbations of the archetype.
	phase1 := 2 * math.Pi * r.Float64()
	phase2 := 2 * math.Pi * r.Float64()
	jitter1 := p.theta1 + 0.15*(r.Float64()-0.5)
	jitter2 := p.theta2 + 0.15*(r.Float64()-0.5)
	illum := 0.85 + 0.3*r.Float64()
	noiseStd := 0.08 + 0.06*r.Float64()

	n := g.Size
	inv := 1 / float64(n)
	c1, s1 := math.Cos(jitter1), math.Sin(jitter1)
	c2, s2 := math.Cos(jitter2), math.Sin(jitter2)
	gc, gs := math.Cos(p.gradAngle), math.Sin(p.gradAngle)

	// Blob field: positions drawn per sample, density per class.
	nBlobs := int(p.blobDensity)
	if p.blobDensity > 0 && r.Float64() < p.blobDensity-math.Floor(p.blobDensity) {
		nBlobs++
	}
	type blob struct{ x, y, r2, amp float64 }
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		rad := p.blobRadius * (0.7 + 0.6*r.Float64())
		blobs[i] = blob{
			x:   r.Float64(),
			y:   r.Float64(),
			r2:  rad * rad,
			amp: p.blobAmp * (0.6 + 0.8*r.Float64()),
		}
	}

	for y := 0; y < n; y++ {
		fy := float64(y) * inv
		for x := 0; x < n; x++ {
			fx := float64(x) * inv
			// Oriented gratings (fields, road grids, wave patterns).
			u1 := fx*c1 + fy*s1
			u2 := fx*c2 + fy*s2
			v := p.amp1*math.Sin(2*math.Pi*p.freq1*u1+phase1) +
				p.amp2*math.Sin(2*math.Pi*p.freq2*u2+phase2)
			// Large-scale gradient (coastline / slope).
			v += p.gradAmp * (fx*gc + fy*gs)
			// Checkerboard (urban block structure).
			if p.checker > 0 {
				cx := int(fx*p.checker) & 1
				cy := int(fy*p.checker) & 1
				if cx^cy == 1 {
					v += 0.5
				}
			}
			// Blobs (canopy, buildings).
			for _, b := range blobs {
				dx, dy := fx-b.x, fy-b.y
				d2 := dx*dx + dy*dy
				if d2 < 9*b.r2 {
					v += b.amp * math.Exp(-d2/(2*b.r2))
				}
			}
			base := v * illum
			off := (y*n + x) * g.Channels
			for ch := 0; ch < g.Channels; ch++ {
				m := p.chanMix[ch]
				pv := m[0]*base + m[1]*math.Sin(base*2.1+float64(ch)) + m[2]*0.3
				pv += noiseStd * r.NormFloat64()
				dst[off+ch] = float32(pv)
			}
		}
	}
}
