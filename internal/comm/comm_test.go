package comm

import (
	"math"
	"testing"
	"testing/quick"
)

var fast = Params{Bandwidth: 50e9, HopLat: 1e-6, Launch: 2e-5}

func TestAllReduceIsTwoPhases(t *testing.T) {
	const bytes = 1e9
	const ranks = 8
	ar := AllReduce(bytes, ranks, fast)
	ag := AllGather(bytes, ranks, fast)
	rs := ReduceScatter(bytes, ranks, fast)
	// AR = RS + AG minus one launch.
	want := ag.Time + rs.Time - fast.Launch
	if math.Abs(ar.Time-want)/want > 1e-9 {
		t.Fatalf("AR %v != RS+AG %v", ar.Time, want)
	}
	if ar.WireBytes != ag.WireBytes+rs.WireBytes {
		t.Fatalf("wire bytes: %v vs %v", ar.WireBytes, ag.WireBytes+rs.WireBytes)
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	for _, c := range []Cost{
		AllGather(1e9, 1, fast),
		ReduceScatter(1e9, 1, fast),
		AllReduce(1e9, 1, fast),
		Broadcast(1e9, 1, fast),
	} {
		if c.Time != fast.Launch {
			t.Fatalf("single-rank collective cost %v, want launch only", c.Time)
		}
		if c.WireBytes != 0 {
			t.Fatalf("single-rank wire bytes %v", c.WireBytes)
		}
	}
}

func TestBandwidthAsymptote(t *testing.T) {
	// For large messages the ring approaches V/B per phase: bus
	// bandwidth ≈ link bandwidth.
	const bytes = 100e9
	c := AllGather(bytes, 64, fast)
	bus := BusBandwidth(c, bytes*63/64)
	if bus < 0.95*fast.Bandwidth {
		t.Fatalf("large-message bus bandwidth %v below 95%% of link %v", bus, fast.Bandwidth)
	}
	if bus > fast.Bandwidth {
		t.Fatalf("bus bandwidth %v exceeds link bandwidth", bus)
	}
}

func TestLatencyDominatedRegime(t *testing.T) {
	// Tiny messages: time ≈ launch + (n-1)·α, growing linearly in ranks.
	t1 := AllGather(64, 128, fast).Time
	t2 := AllGather(64, 256, fast).Time
	growth := (t2 - fast.Launch) / (t1 - fast.Launch)
	if math.Abs(growth-255.0/127.0) > 0.01 {
		t.Fatalf("latency growth %v, want ≈2", growth)
	}
}

func TestMonotoneInBytes(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return AllReduce(x, 16, fast).Time <= AllReduce(y, 16, fast).Time
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneInRanksForLatency(t *testing.T) {
	// With fixed bytes, more ranks can only add latency (bandwidth term
	// saturates at V/B).
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		tm := AllReduce(1e6, n, fast).Time
		if tm <= prev {
			t.Fatalf("AllReduce time not increasing at n=%d", n)
		}
		prev = tm
	}
}

func TestSlowerLinkCostsMore(t *testing.T) {
	slow := fast
	slow.Bandwidth = 12.5e9
	cf := AllReduce(1e9, 16, fast)
	cs := AllReduce(1e9, 16, slow)
	if cs.Time <= cf.Time {
		t.Fatalf("slower link not slower: %v vs %v", cs.Time, cf.Time)
	}
	ratio := cs.Time / cf.Time
	if ratio < 3 || ratio > 4.2 {
		t.Fatalf("bandwidth ratio %v, want ≈4 for 4× slower link", ratio)
	}
}

func TestBroadcastPipelined(t *testing.T) {
	c := Broadcast(10e9, 8, fast)
	// Pipelined broadcast moves V bytes once plus hop latencies.
	want := fast.Launch + 7*fast.HopLat + 10e9/fast.Bandwidth
	if math.Abs(c.Time-want) > 1e-12 {
		t.Fatalf("broadcast=%v want %v", c.Time, want)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { AllGather(1, 2, Params{Bandwidth: 0}) },
		func() { AllReduce(-1, 2, fast) },
		func() { ReduceScatter(1, 2, Params{Bandwidth: 1, HopLat: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for invalid params")
				}
			}()
			fn()
		}()
	}
}

func TestBusBandwidthZeroTime(t *testing.T) {
	if BusBandwidth(Cost{Time: 0}, 100) != 0 {
		t.Fatal("zero-time bus bandwidth should be 0")
	}
}
