// Package comm provides α–β cost models for the collective operations
// PyTorch FSDP issues — all-gather, reduce-scatter, all-reduce and
// broadcast — using ring algorithms (what RCCL runs on Frontier).
//
// For a ring over n ranks moving a tensor of V bytes at link bandwidth
// B with per-hop latency α and host launch cost λ:
//
//	all-gather / reduce-scatter:  λ + (n−1)·α + (n−1)/n · V / B
//	all-reduce:                   λ + 2(n−1)·α + 2(n−1)/n · V / B
//
// The bandwidth term is bottlenecked by the slowest link the ring
// crosses (hw.Machine.GroupBandwidth decides which tier applies).
package comm

import "fmt"

// Cost is the modeled cost of one collective call.
type Cost struct {
	// Time is the wall-clock duration in seconds.
	Time float64
	// WireBytes is the per-rank traffic the call puts on the
	// bottleneck link (for bandwidth accounting).
	WireBytes float64
}

// Params bundles the link characteristics for a collective.
type Params struct {
	Bandwidth float64 // bytes/s on the bottleneck link
	HopLat    float64 // seconds per ring hop
	Launch    float64 // fixed host-side cost per call
	// ChunkOverheadBytes models the per-chunk protocol overhead of ring
	// algorithms: a ring over n ranks moves the tensor in V/n chunks,
	// and chunks comparable to this size achieve only a fraction
	// chunk/(chunk+overhead) of link bandwidth. This is what makes
	// fixed 25 MiB DDP buckets increasingly inefficient as the world
	// grows — the paper's Section IV-C observation. Zero disables the
	// effect.
	ChunkOverheadBytes float64
}

func (p Params) validate() {
	if p.Bandwidth <= 0 {
		panic(fmt.Sprintf("comm: non-positive bandwidth %v", p.Bandwidth))
	}
	if p.HopLat < 0 || p.Launch < 0 {
		panic("comm: negative latency")
	}
}

// AllGather returns the cost of gathering a V-byte tensor across ranks
// (each rank contributes V/ranks and ends with all V bytes).
func AllGather(bytes float64, ranks int, p Params) Cost {
	return oneShotRing(bytes, ranks, p, 1)
}

// ReduceScatter returns the cost of reduce-scattering a V-byte tensor
// (each rank ends with its reduced V/ranks shard).
func ReduceScatter(bytes float64, ranks int, p Params) Cost {
	return oneShotRing(bytes, ranks, p, 1)
}

// AllReduce returns the cost of all-reducing a V-byte tensor
// (reduce-scatter followed by all-gather).
func AllReduce(bytes float64, ranks int, p Params) Cost {
	return oneShotRing(bytes, ranks, p, 2)
}

// Broadcast returns the cost of a pipelined ring broadcast of V bytes.
func Broadcast(bytes float64, ranks int, p Params) Cost {
	if ranks <= 1 {
		return Cost{Time: p.Launch}
	}
	p.validate()
	n := float64(ranks)
	t := p.Launch + (n-1)*p.HopLat + bytes/p.Bandwidth
	return Cost{Time: t, WireBytes: bytes}
}

// oneShotRing computes `phases` ring passes over the tensor.
func oneShotRing(bytes float64, ranks int, p Params, phases float64) Cost {
	if ranks <= 1 {
		// Degenerate group: FSDP still launches the op.
		return Cost{Time: p.Launch}
	}
	if bytes < 0 {
		panic("comm: negative byte count")
	}
	p.validate()
	n := float64(ranks)
	bw := p.Bandwidth
	if p.ChunkOverheadBytes > 0 && bytes > 0 {
		chunk := bytes / n
		bw *= chunk / (chunk + p.ChunkOverheadBytes)
	}
	bwTerm := phases * (n - 1) / n * bytes / bw
	latTerm := phases * (n - 1) * p.HopLat
	return Cost{
		Time:      p.Launch + latTerm + bwTerm,
		WireBytes: phases * (n - 1) / n * bytes,
	}
}

// ParamsFromAlphaBeta inverts the ring cost formula for a measured
// α–β fit: given per-call time t(V) ≈ α + β·V over payload bytes V for
// a collective of the given phase count (1 for all-gather /
// reduce-scatter, 2 for all-reduce) on an n-rank ring, it returns the
// Params under which the model reproduces the fit exactly —
// Launch = α (the measured fixed cost absorbs per-hop latency) and
// Bandwidth = phases·(n−1)/n / β, so phases·(n−1)/n·V/Bandwidth = β·V.
// This is how a calibrated HardwareProfile (internal/calib) feeds
// measured collective characteristics back into the model that
// internal/dist and fsdp.Simulate price with, replacing the asserted
// hw.Frontier constants.
func ParamsFromAlphaBeta(alpha, beta float64, ranks int, phases float64) (Params, error) {
	if ranks < 2 {
		return Params{}, fmt.Errorf("comm: α–β fit needs a ring (ranks %d)", ranks)
	}
	if beta <= 0 || phases <= 0 {
		return Params{}, fmt.Errorf("comm: non-positive β %v or phases %v", beta, phases)
	}
	if alpha < 0 {
		// Noise can fit a slightly negative intercept; a launch cost
		// below zero is meaningless, so clamp.
		alpha = 0
	}
	n := float64(ranks)
	return Params{Bandwidth: phases * (n - 1) / n / beta, Launch: alpha}, nil
}

// BusBandwidth converts a measured collective time back into the
// "bus bandwidth" figure of merit RCCL reports; used by tests to check
// the model against algorithmic limits.
func BusBandwidth(c Cost, bytes float64) float64 {
	if c.Time <= 0 {
		return 0
	}
	return bytes / c.Time
}
