package probe

import (
	"repro/internal/geodata"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Head is a trained linear probe packaged for serving: the classifier
// weights in nn.Linear's (dim × classes) row-major layout plus the
// train-split standardization statistics the probe recipe bakes in
// front of the classifier. A Head is immutable after fitting, so any
// number of serving workers may score with it concurrently; LogitsInto
// reproduces the probe's evaluate-time logits bit for bit.
type Head struct {
	Dim     int
	Classes int
	W       []float32 // (Dim × Classes), row-major
	B       []float32 // (Classes)
	Mean    []float64 // train-split per-dimension mean
	InvStd  []float64 // train-split per-dimension 1/σ (floored)
}

// newHead snapshots a trained nn.Linear and its standardization stats
// into an immutable serving artifact.
func newHead(l *nn.Linear, mean, invStd []float64) *Head {
	return &Head{
		Dim:     l.In,
		Classes: l.Out,
		W:       append([]float32(nil), l.W.Value.Data...),
		B:       append([]float32(nil), l.B.Value.Data...),
		Mean:    append([]float64(nil), mean...),
		InvStd:  append([]float64(nil), invStd...),
	}
}

// LogitsInto scores n rows of *raw* (unstandardized) features:
// standardize with the head's train statistics into scratch, then
// dst = x̂·W + b through the same GEMM and bias loop the training-time
// head used. dst needs n·Classes elements and scratch n·Dim; both are
// caller-owned so workers can score from per-worker arenas.
func (h *Head) LogitsInto(dst, features, scratch []float32, n int) {
	d := h.Dim
	copy(scratch[:n*d], features[:n*d])
	standardize(scratch[:n*d], h.Mean, h.InvStd, d)
	tensor.MatMul(dst, scratch[:n*d], h.W, n, d, h.Classes, false)
	for i := 0; i < n; i++ {
		yi := dst[i*h.Classes : (i+1)*h.Classes]
		for j := range yi {
			yi[j] += h.B[j]
		}
	}
}

// Argmax returns the index of the largest logit — the predicted class.
func Argmax(logits []float32) int { return argmax(logits) }

// FitHead runs the full linear-probing recipe (Run) and additionally
// returns the trained head as a servable artifact.
func FitHead(cfg Config, features FeatureFunc, featDim int, ds *geodata.Dataset) (*Head, *Result, error) {
	return fitHead(cfg, features, featDim, ds)
}

// FitSegHead runs the segmentation-probing recipe (RunSegmentation)
// and additionally returns the trained per-token head.
func FitSegHead(cfg SegConfig, features TokenFeatureFunc, featDim int,
	ds *geodata.Dataset, patchSize int) (*Head, *SegResult, error) {
	return fitSegHead(cfg, features, featDim, ds, patchSize)
}
