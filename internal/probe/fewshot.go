package probe

import (
	"fmt"

	"repro/internal/geodata"
)

// FewShot evaluates k-shot downstream adaptation — one of the paper's
// envisioned next steps ("configurations such as few-shot learning"):
// the probe sees only `shots` labeled examples per class and is
// evaluated on the full test split.
//
// Because geodata datasets assign labels round-robin (sample i has
// class i mod K, instance i/K), the first shots·K training indices are
// exactly instances 0…shots−1 of every class, so the k-shot subset is a
// prefix of the train split.
func FewShot(cfg Config, features FeatureFunc, featDim int, ds *geodata.Dataset, shots int) (*Result, error) {
	if shots < 1 {
		return nil, fmt.Errorf("probe: shots must be ≥1, got %d", shots)
	}
	sub := *ds
	sub.Name = fmt.Sprintf("%s-%dshot", ds.Name, shots)
	sub.TrainCount = shots * ds.Classes()
	if sub.TrainCount > ds.TrainCount {
		return nil, fmt.Errorf("probe: %d shots × %d classes exceeds train split of %d",
			shots, ds.Classes(), ds.TrainCount)
	}
	if cfg.BatchSize > sub.TrainCount {
		cfg.BatchSize = sub.TrainCount
	}
	return Run(cfg, features, featDim, &sub)
}

// ShotSweep runs FewShot for each of the given shot counts and returns
// results in order — the curve of accuracy versus labeled-data budget.
func ShotSweep(cfg Config, features FeatureFunc, featDim int, ds *geodata.Dataset, shots []int) ([]*Result, error) {
	var out []*Result
	for _, k := range shots {
		r, err := FewShot(cfg, features, featDim, ds, k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
