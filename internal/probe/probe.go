// Package probe implements the paper's downstream evaluation protocol:
// linear probing. The pretrained encoder is frozen; features are the
// mean-pooled encoder outputs over all patch tokens; a single linear
// classifier is trained on top with the LARS optimizer (base LR 0.1,
// no weight decay, global batch per Section V-C), and top-1/top-5
// accuracy is recorded every epoch — the curves of Figure 6 and the
// final numbers of Table III.
//
// Because the trunk is frozen, features for the probe train/test splits
// are extracted once and cached, which is exactly equivalent to (and
// much faster than) re-running the encoder every epoch.
package probe

import (
	"fmt"
	"io"
	"math"

	"repro/internal/geodata"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// FeatureFunc maps a batch of channel-last images to (batch × dim)
// features. mae.Model.Features and vit.Model.Features both satisfy it.
type FeatureFunc func(imgs []float32, batch int) []float32

// Config carries the probing hyper-parameters; defaults follow the
// paper (LARS, base LR 0.1, no weight decay, 100 epochs).
type Config struct {
	BatchSize int
	Epochs    int
	BaseLR    float64
	Seed      uint64
	// FeatureBatch is the batch size used during one-time feature
	// extraction (defaults to BatchSize).
	FeatureBatch int
	Log          io.Writer
}

// Default returns the paper's probing configuration for the given
// global batch size (256 for UCM/AID/NWPU, 1024 for MillionAID).
func Default(batch int) Config {
	return Config{BatchSize: batch, Epochs: 100, BaseLR: 0.1, Seed: 7}
}

// Result is the outcome of probing one (model, dataset) pair.
type Result struct {
	Dataset    string
	Top1Curve  metrics.Series // per-epoch test top-1 (fractions)
	Top5Curve  metrics.Series // per-epoch test top-5
	FinalTop1  float64
	FinalTop5  float64
	TrainCount int
	TestCount  int
}

// Run trains a linear probe on frozen features over ds and returns the
// accuracy trajectory.
func Run(cfg Config, features FeatureFunc, featDim int, ds *geodata.Dataset) (*Result, error) {
	_, res, err := fitHead(cfg, features, featDim, ds)
	return res, err
}

// fitHead is the single probing implementation behind Run and FitHead:
// train the standardized linear classifier, then snapshot it.
func fitHead(cfg Config, features FeatureFunc, featDim int, ds *geodata.Dataset) (*Head, *Result, error) {
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, nil, fmt.Errorf("probe: non-positive batch size or epochs")
	}
	fb := cfg.FeatureBatch
	if fb <= 0 {
		fb = cfg.BatchSize
	}
	classes := ds.Classes()

	trainX, trainY, err := extract(features, featDim, fb, ds.TrainCount, ds.TrainSample, ds.Gen.ImageLen())
	if err != nil {
		return nil, nil, err
	}
	testX, testY, err := extract(features, featDim, fb, ds.TestCount, ds.TestSample, ds.Gen.ImageLen())
	if err != nil {
		return nil, nil, err
	}
	// Standardize features with train-split statistics — the equivalent
	// of the (affine-free) BatchNorm the MAE linear-probing recipe
	// inserts before the classifier. Without it, feature scales vary
	// across encoders and LARS becomes unstable.
	mean, invStd := featureStats(trainX, featDim)
	standardize(trainX, mean, invStd, featDim)
	standardize(testX, mean, invStd, featDim)

	r := rng.New(cfg.Seed)
	head := nn.NewLinear("probe.head", featDim, classes, r)
	head.W.Value.Zero() // linear probing convention: zero-init classifier
	params := head.Params()
	optim := opt.NewLARS(params, 0)

	stepsPerEpoch := ds.TrainCount / cfg.BatchSize
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize),
		MinLR:       0,
		WarmupSteps: stepsPerEpoch, // one warmup epoch
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	res := &Result{Dataset: ds.Name, TrainCount: ds.TrainCount, TestCount: ds.TestCount}
	res.Top1Curve.Name = ds.Name + " top1"
	res.Top5Curve.Name = ds.Name + " top5"

	batchX := make([]float32, cfg.BatchSize*featDim)
	batchY := make([]int, cfg.BatchSize)
	dlogits := make([]float32, cfg.BatchSize*classes)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(ds.TrainCount)
		for s := 0; s < stepsPerEpoch; s++ {
			n := 0
			for ; n < cfg.BatchSize; n++ {
				src := perm[(s*cfg.BatchSize+n)%ds.TrainCount]
				copy(batchX[n*featDim:(n+1)*featDim], trainX[src*featDim:(src+1)*featDim])
				batchY[n] = trainY[src]
			}
			nn.ZeroGrads(params)
			logits := head.Forward(batchX[:n*featDim], n)
			nn.CrossEntropy(logits, batchY[:n], classes, dlogits[:n*classes])
			head.Backward(dlogits[:n*classes])
			optim.Step(sched.LR(step))
			step++
		}
		top1, top5 := evaluate(head, testX, testY, featDim, classes)
		res.Top1Curve.Append(float64(epoch+1), top1)
		res.Top5Curve.Append(float64(epoch+1), top5)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "%s epoch %3d: top1 %.2f%% top5 %.2f%%\n",
				ds.Name, epoch+1, 100*top1, 100*top5)
		}
	}
	res.FinalTop1 = res.Top1Curve.Last()
	res.FinalTop5 = res.Top5Curve.Last()
	return newHead(head, mean, invStd), res, nil
}

// featureStats returns per-dimension mean and inverse standard
// deviation over a (n × dim) feature matrix.
func featureStats(x []float32, dim int) (mean, invStd []float64) {
	n := len(x) / dim
	mean = make([]float64, dim)
	invStd = make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			mean[j] += float64(x[i*dim+j])
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			d := float64(x[i*dim+j]) - mean[j]
			invStd[j] += d * d
		}
	}
	// Floor each dimension's std at a fraction of the average std so
	// near-dead dimensions are not amplified into pure noise.
	var avgVar float64
	for j := range invStd {
		invStd[j] /= float64(n)
		avgVar += invStd[j]
	}
	avgVar /= float64(dim)
	floor := 0.05 * math.Sqrt(avgVar+1e-12)
	for j := range invStd {
		sd := math.Sqrt(invStd[j])
		if sd < floor {
			sd = floor
		}
		//statgate:allow floateq — divide-by-zero guard; only an exactly-zero sd is dangerous
		if sd == 0 {
			sd = 1
		}
		invStd[j] = 1 / sd
	}
	return mean, invStd
}

// standardize applies (x−mean)·invStd in place.
func standardize(x []float32, mean, invStd []float64, dim int) {
	n := len(x) / dim
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			x[i*dim+j] = float32((float64(x[i*dim+j]) - mean[j]) * invStd[j])
		}
	}
}

// extract runs the frozen feature extractor over a whole split.
func extract(features FeatureFunc, featDim, batch, count int,
	sample func(int, []float32) int, imgLen int) ([]float32, []int, error) {
	if count <= 0 {
		return nil, nil, fmt.Errorf("probe: empty split")
	}
	X := make([]float32, count*featDim)
	Y := make([]int, count)
	imgs := make([]float32, batch*imgLen)
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		n := end - start
		for i := 0; i < n; i++ {
			Y[start+i] = sample(start+i, imgs[i*imgLen:(i+1)*imgLen])
		}
		f := features(imgs[:n*imgLen], n)
		copy(X[start*featDim:end*featDim], f[:n*featDim])
	}
	return X, Y, nil
}

// evaluate computes test top-1/top-5 for the current head.
func evaluate(head *nn.Linear, X []float32, Y []int, featDim, classes int) (float64, float64) {
	acc := metrics.NewAccuracy(classes)
	const evalBatch = 256
	for start := 0; start < len(Y); start += evalBatch {
		end := start + evalBatch
		if end > len(Y) {
			end = len(Y)
		}
		n := end - start
		logits := head.Forward(X[start*featDim:end*featDim], n)
		for i := 0; i < n; i++ {
			acc.Observe(logits[i*classes:(i+1)*classes], Y[start+i])
		}
	}
	return acc.Top1(), acc.Top5()
}
