package probe

import (
	"math"
	"testing"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/rng"
	"repro/internal/vit"
)

// identityFeatures is a trivial extractor: mean pixel per channel plus
// raw downsampled pixels — enough signal for a linear head to beat
// chance on the synthetic scenes.
func pixelFeatures(imgLen, featDim int) FeatureFunc {
	return func(imgs []float32, batch int) []float32 {
		out := make([]float32, batch*featDim)
		for b := 0; b < batch; b++ {
			img := imgs[b*imgLen : (b+1)*imgLen]
			stride := imgLen / featDim
			if stride < 1 {
				stride = 1
			}
			for j := 0; j < featDim; j++ {
				out[b*featDim+j] = img[(j*stride)%imgLen]
			}
		}
		return out
	}
}

func probeDataset(classes, train, test int) *geodata.Dataset {
	gen := geodata.NewSceneGen(classes, 12, 3, 21)
	return &geodata.Dataset{Name: "probe-test", Gen: gen, TrainCount: train, TestCount: test}
}

func TestRunValidation(t *testing.T) {
	ds := probeDataset(3, 9, 6)
	f := pixelFeatures(ds.Gen.ImageLen(), 8)
	if _, err := Run(Config{BatchSize: 0, Epochs: 1}, f, 8, ds); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	if _, err := Run(Config{BatchSize: 4, Epochs: 0}, f, 8, ds); err == nil {
		t.Fatal("epochs 0 accepted")
	}
}

func TestProbeBeatsChanceOnPixelFeatures(t *testing.T) {
	const classes = 3
	ds := probeDataset(classes, 60, 30)
	featDim := 16
	f := pixelFeatures(ds.Gen.ImageLen(), featDim)
	cfg := Config{BatchSize: 12, Epochs: 30, BaseLR: 0.1, Seed: 1}
	res, err := Run(cfg, f, featDim, ds)
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / classes
	if res.FinalTop1 <= chance {
		t.Fatalf("probe top1 %.3f no better than chance %.3f", res.FinalTop1, chance)
	}
	if res.FinalTop5 < res.FinalTop1 {
		t.Fatalf("top5 %.3f < top1 %.3f", res.FinalTop5, res.FinalTop1)
	}
	if len(res.Top1Curve.Y) != cfg.Epochs {
		t.Fatalf("curve has %d points", len(res.Top1Curve.Y))
	}
}

func TestTop5IsOneWithFewClasses(t *testing.T) {
	// With ≤5 classes every prediction is top-5 correct by definition.
	ds := probeDataset(4, 16, 8)
	f := pixelFeatures(ds.Gen.ImageLen(), 8)
	res, err := Run(Config{BatchSize: 8, Epochs: 2, BaseLR: 0.1, Seed: 1}, f, 8, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalTop5-1) > 1e-9 {
		t.Fatalf("top5=%v want 1 with 4 classes", res.FinalTop5)
	}
}

func TestProbeWithMAEFeatures(t *testing.T) {
	// End-to-end: a (randomly initialized) MAE encoder's features feed
	// the probe; verifies the FeatureFunc contract against the real
	// model and that accuracy is a valid fraction.
	enc := vit.Config{Name: "tiny", Width: 16, Depth: 1, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 12, Channels: 3}
	mcfg := mae.Config{Encoder: enc, DecoderWidth: 8, DecoderDepth: 1, DecoderHeads: 2, MaskRatio: 0.75}
	model := mae.New(mcfg, rng.New(2))
	ds := probeDataset(3, 18, 9)
	res, err := Run(Config{BatchSize: 6, Epochs: 3, BaseLR: 0.1, Seed: 3},
		model.Features, enc.Width, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTop1 < 0 || res.FinalTop1 > 1 {
		t.Fatalf("top1 out of range: %v", res.FinalTop1)
	}
	if res.TrainCount != 18 || res.TestCount != 9 {
		t.Fatalf("counts not recorded: %+v", res)
	}
}

func TestProbeDeterminism(t *testing.T) {
	ds := probeDataset(3, 30, 15)
	f := pixelFeatures(ds.Gen.ImageLen(), 8)
	cfg := Config{BatchSize: 10, Epochs: 5, BaseLR: 0.1, Seed: 9}
	r1, err := Run(cfg, f, 8, ds)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, f, 8, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Top1Curve.Y {
		if r1.Top1Curve.Y[i] != r2.Top1Curve.Y[i] {
			t.Fatalf("probe runs diverge at epoch %d", i)
		}
	}
}
