package probe

import (
	"math"
	"testing"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/rng"
	"repro/internal/vit"
)

func tinyEncoder() vit.Config {
	return vit.Config{Name: "tiny", Width: 16, Depth: 2, MLP: 32, Heads: 2,
		PatchSize: 4, ImageSize: 16, Channels: 3}
}

func tinyMAEModel(seed uint64) *mae.Model {
	return mae.New(mae.Default(tinyEncoder()), rng.New(seed))
}

// ---- Few-shot ----------------------------------------------------------

func TestFewShotSubsetPrefixIsBalanced(t *testing.T) {
	gen := geodata.NewSceneGen(5, 16, 3, 1)
	ds := &geodata.Dataset{Name: "fs", Gen: gen, TrainCount: 50, TestCount: 10}
	f := pixelFeatures(gen.ImageLen(), 8)
	res, err := FewShot(Config{BatchSize: 5, Epochs: 2, BaseLR: 0.1, Seed: 1}, f, 8, ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainCount != 15 {
		t.Fatalf("few-shot train count %d want 15", res.TrainCount)
	}
	if res.Dataset != "fs-3shot" {
		t.Fatalf("name %q", res.Dataset)
	}
	// Original dataset untouched.
	if ds.TrainCount != 50 {
		t.Fatal("FewShot mutated the dataset")
	}
}

func TestFewShotValidation(t *testing.T) {
	gen := geodata.NewSceneGen(5, 16, 3, 1)
	ds := &geodata.Dataset{Name: "fs", Gen: gen, TrainCount: 10, TestCount: 5}
	f := pixelFeatures(gen.ImageLen(), 8)
	if _, err := FewShot(Config{BatchSize: 4, Epochs: 1, BaseLR: 0.1}, f, 8, ds, 0); err == nil {
		t.Fatal("0 shots accepted")
	}
	if _, err := FewShot(Config{BatchSize: 4, Epochs: 1, BaseLR: 0.1}, f, 8, ds, 3); err == nil {
		t.Fatal("shots exceeding train split accepted")
	}
}

func TestShotSweepProducesValidCurve(t *testing.T) {
	// The sweep must return one valid result per shot count, and with 8
	// labeled examples per class the probe must beat chance on this
	// separable 3-class task. (Tiny-sample accuracies are noisy, so we
	// do not assert monotonicity between 1 and 8 shots.)
	gen := geodata.NewSceneGen(3, 16, 3, 5)
	ds := &geodata.Dataset{Name: "sweep", Gen: gen, TrainCount: 30, TestCount: 30}
	f := pixelFeatures(gen.ImageLen(), 16)
	cfg := Config{BatchSize: 3, Epochs: 20, BaseLR: 0.1, Seed: 2}
	rs, err := ShotSweep(cfg, f, 16, ds, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results=%d", len(rs))
	}
	for _, r := range rs {
		if r.FinalTop1 < 0 || r.FinalTop1 > 1 {
			t.Fatalf("%s top1 %v out of range", r.Dataset, r.FinalTop1)
		}
	}
	if rs[1].FinalTop1 <= 1.0/3 {
		t.Fatalf("8-shot top1 %.3f not above chance", rs[1].FinalTop1)
	}
}

// ---- Segmentation --------------------------------------------------------

func TestSegmentationMaskDeterministicAndAligned(t *testing.T) {
	gen := geodata.NewSceneGen(4, 16, 3, 9)
	imgA := make([]float32, gen.ImageLen())
	imgB := make([]float32, gen.ImageLen())
	maskA := make([]uint8, 16*16)
	maskB := make([]uint8, 16*16)
	gen.ImageWithMask(1, 2, imgA, maskA)
	gen.ImageWithMask(1, 2, imgB, maskB)
	for i := range maskA {
		if maskA[i] != maskB[i] {
			t.Fatal("mask not deterministic")
		}
		if maskA[i] >= geodata.SegClasses {
			t.Fatalf("invalid label %d", maskA[i])
		}
	}
	// Image identical to plain rendering.
	plain := make([]float32, gen.ImageLen())
	gen.Image(1, 2, plain)
	for i := range plain {
		if plain[i] != imgA[i] {
			t.Fatal("ImageWithMask altered the image")
		}
	}
}

func TestSegmentationMaskHasStructureSomewhere(t *testing.T) {
	// Across classes and samples, at least one pixel must be labeled
	// structure or grid — otherwise the task is degenerate.
	gen := geodata.NewSceneGen(8, 16, 1, 3)
	mask := make([]uint8, 16*16)
	img := make([]float32, gen.ImageLen())
	nonBG := 0
	for c := 0; c < 8; c++ {
		gen.ImageWithMask(c, 0, img, mask)
		for _, v := range mask {
			if v != geodata.SegBackground {
				nonBG++
			}
		}
	}
	if nonBG == 0 {
		t.Fatal("no structure pixels in any class")
	}
}

func TestPatchLabelsMajority(t *testing.T) {
	// 4×4 image, patch 2 → 4 patches.
	mask := []uint8{
		1, 1, 0, 0,
		1, 0, 0, 0,
		2, 2, 1, 0,
		2, 2, 0, 0,
	}
	dst := make([]int, 4)
	geodata.PatchLabels(mask, 4, 2, dst)
	if dst[0] != 1 || dst[1] != 0 || dst[2] != 2 || dst[3] != 0 {
		t.Fatalf("patch labels %v", dst)
	}
}

func TestPatchLabelsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for indivisible patch")
		}
	}()
	geodata.PatchLabels(make([]uint8, 16), 4, 3, make([]int, 4))
}

func TestRunSegmentationEndToEnd(t *testing.T) {
	gen := geodata.NewSceneGen(4, 16, 3, 11)
	ds := &geodata.Dataset{Name: "seg", Gen: gen, TrainCount: 16, TestCount: 8}
	model := tinyMAEModel(3)
	cfg := SegConfig{Epochs: 6, BatchSize: 4, BaseLR: 0.1, Seed: 1}
	res, err := RunSegmentation(cfg, model.TokenFeatures, 16, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.PatchAccuracy < 0 || res.PatchAccuracy > 1 {
		t.Fatalf("accuracy %v", res.PatchAccuracy)
	}
	if res.MeanIoU < 0 || res.MeanIoU > 1 {
		t.Fatalf("mIoU %v", res.MeanIoU)
	}
	if len(res.PerClassIoU) != geodata.SegClasses {
		t.Fatalf("per-class IoU %v", res.PerClassIoU)
	}
	if len(res.AccCurve.Y) != cfg.Epochs {
		t.Fatalf("curve %d points", len(res.AccCurve.Y))
	}
	// A linear head on encoder tokens should beat always-background
	// guessing... at minimum it must be a valid nonzero accuracy.
	if res.PatchAccuracy == 0 {
		t.Fatal("zero accuracy — pipeline broken")
	}
}

func TestRunSegmentationValidation(t *testing.T) {
	gen := geodata.NewSceneGen(2, 16, 3, 1)
	ds := &geodata.Dataset{Name: "seg", Gen: gen, TrainCount: 4, TestCount: 2}
	model := tinyMAEModel(1)
	if _, err := RunSegmentation(SegConfig{Epochs: 0, BatchSize: 2}, model.TokenFeatures, 16, ds, 4); err == nil {
		t.Fatal("0 epochs accepted")
	}
	if _, err := RunSegmentation(SegConfig{Epochs: 1, BatchSize: 2, BaseLR: 0.1}, model.TokenFeatures, 16, ds, 5); err == nil {
		t.Fatal("indivisible patch accepted")
	}
}

// ---- Fine-tuning --------------------------------------------------------

func TestFineTuneImprovesOverEpochsOrStaysSane(t *testing.T) {
	gen := geodata.NewSceneGen(3, 16, 3, 21)
	ds := &geodata.Dataset{Name: "ft", Gen: gen, TrainCount: 24, TestCount: 12}
	model := tinyMAEModel(5)
	// LR raised for the tiny step budget (linear scaling divides by 256).
	cfg := FineTuneConfig{Epochs: 10, BatchSize: 8, BaseLR: 0.05, WeightDecay: 0.05, Seed: 2}
	res, err := FineTune(cfg, model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top1Curve.Y) != cfg.Epochs {
		t.Fatalf("curve %d points", len(res.Top1Curve.Y))
	}
	if math.IsNaN(res.FinalTop1) || res.FinalTop1 < 0 || res.FinalTop1 > 1 {
		t.Fatalf("top1 %v", res.FinalTop1)
	}
	if res.FinalTop5 < res.FinalTop1 {
		t.Fatalf("top5 %v < top1 %v", res.FinalTop5, res.FinalTop1)
	}
	// Fine-tuning the trunk on a learnable 3-class task must beat chance.
	if res.FinalTop1 <= 1.0/3 {
		t.Fatalf("fine-tuned top1 %.3f not above chance", res.FinalTop1)
	}
}

func TestFineTuneValidation(t *testing.T) {
	gen := geodata.NewSceneGen(2, 16, 3, 1)
	ds := &geodata.Dataset{Name: "ft", Gen: gen, TrainCount: 4, TestCount: 2}
	model := tinyMAEModel(1)
	if _, err := FineTune(FineTuneConfig{Epochs: 0, BatchSize: 2}, model, ds); err == nil {
		t.Fatal("0 epochs accepted")
	}
	if _, err := FineTune(FineTuneConfig{Epochs: 1, BatchSize: 50, BaseLR: 1e-3}, model, ds); err == nil {
		t.Fatal("batch larger than split accepted")
	}
}

// TestFineTuneBeatsLinearProbeOnTinyTask verifies the expected protocol
// relationship: with enough labeled data, updating the trunk should do
// at least as well as the frozen-trunk probe.
func TestFineTuneBeatsLinearProbeOnTinyTask(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := geodata.NewSceneGen(3, 16, 3, 33)
	ds := &geodata.Dataset{Name: "cmp", Gen: gen, TrainCount: 30, TestCount: 15}

	frozen := tinyMAEModel(7)
	lp, err := Run(Config{BatchSize: 10, Epochs: 12, BaseLR: 0.1, Seed: 3},
		frozen.Features, 16, ds)
	if err != nil {
		t.Fatal(err)
	}

	// The fine-tune LR is raised because linear batch scaling divides by
	// 256 while the test batch is 10, and the budget is only ~45 steps.
	tuned := tinyMAEModel(7) // identical init
	ft, err := FineTune(FineTuneConfig{Epochs: 15, BatchSize: 10, BaseLR: 0.05,
		WeightDecay: 0.05, Seed: 3}, tuned, ds)
	if err != nil {
		t.Fatal(err)
	}
	if ft.FinalTop1+0.15 < lp.FinalTop1 {
		t.Fatalf("fine-tune (%.3f) far below linear probe (%.3f)", ft.FinalTop1, lp.FinalTop1)
	}
}
