package probe

import (
	"fmt"
	"io"

	"repro/internal/geodata"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Semantic segmentation probing — the paper's other envisioned
// downstream task. The frozen encoder produces one feature vector per
// patch token; a linear head classifies each token into the procedural
// ground-truth classes (background / structure / grid), trained with
// cross-entropy and evaluated by pixel^(patch) accuracy and mean IoU.

// TokenFeatureFunc maps an image batch to per-token features of shape
// (batch·tokens × dim). mae.Model.TokenFeatures satisfies it.
type TokenFeatureFunc func(imgs []float32, batch int) []float32

// SegConfig configures segmentation probing.
type SegConfig struct {
	Epochs    int
	BatchSize int // images per step
	BaseLR    float64
	Seed      uint64
	Log       io.Writer
}

// DefaultSeg mirrors the classification probe's recipe.
func DefaultSeg() SegConfig {
	return SegConfig{Epochs: 40, BatchSize: 16, BaseLR: 0.1, Seed: 7}
}

// SegResult reports segmentation probing quality.
type SegResult struct {
	Dataset       string
	PatchAccuracy float64
	MeanIoU       float64
	PerClassIoU   []float64
	AccCurve      metrics.Series
}

// RunSegmentation trains a per-token linear head on frozen features
// over the dataset's train split and evaluates on the test split.
// patchSize must match the encoder's patch size so token labels align.
func RunSegmentation(cfg SegConfig, features TokenFeatureFunc, featDim int,
	ds *geodata.Dataset, patchSize int) (*SegResult, error) {
	_, res, err := fitSegHead(cfg, features, featDim, ds, patchSize)
	return res, err
}

// fitSegHead is the single implementation behind RunSegmentation and
// FitSegHead.
func fitSegHead(cfg SegConfig, features TokenFeatureFunc, featDim int,
	ds *geodata.Dataset, patchSize int) (*Head, *SegResult, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, nil, fmt.Errorf("probe: non-positive epochs or batch size")
	}
	gen := ds.Gen
	if gen.Size%patchSize != 0 {
		return nil, nil, fmt.Errorf("probe: image %d not divisible by patch %d", gen.Size, patchSize)
	}
	grid := gen.Size / patchSize
	tokens := grid * grid

	trainX, trainY, err := extractTokens(features, featDim, cfg.BatchSize, ds, false, patchSize)
	if err != nil {
		return nil, nil, err
	}
	testX, testY, err := extractTokens(features, featDim, cfg.BatchSize, ds, true, patchSize)
	if err != nil {
		return nil, nil, err
	}
	mean, invStd := featureStats(trainX, featDim)
	standardize(trainX, mean, invStd, featDim)
	standardize(testX, mean, invStd, featDim)

	r := rng.New(cfg.Seed)
	head := nn.NewLinear("seg.head", featDim, geodata.SegClasses, r)
	head.W.Value.Zero()
	params := head.Params()
	optim := opt.NewLARS(params, 0)

	nTrainTok := len(trainY)
	tokPerStep := cfg.BatchSize * tokens
	stepsPerEpoch := nTrainTok / tokPerStep
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 1
	}
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, tokPerStep),
		MinLR:       0,
		WarmupSteps: stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	res := &SegResult{Dataset: ds.Name}
	res.AccCurve.Name = ds.Name + " seg patch-acc"

	batchX := make([]float32, tokPerStep*featDim)
	batchY := make([]int, tokPerStep)
	dlogits := make([]float32, tokPerStep*geodata.SegClasses)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(nTrainTok)
		for s := 0; s < stepsPerEpoch; s++ {
			for n := 0; n < tokPerStep; n++ {
				src := perm[(s*tokPerStep+n)%nTrainTok]
				copy(batchX[n*featDim:(n+1)*featDim], trainX[src*featDim:(src+1)*featDim])
				batchY[n] = trainY[src]
			}
			nn.ZeroGrads(params)
			logits := head.Forward(batchX, tokPerStep)
			nn.CrossEntropy(logits, batchY, geodata.SegClasses, dlogits)
			head.Backward(dlogits)
			optim.Step(sched.LR(step))
			step++
		}
		acc, _, _ := evalSeg(head, testX, testY, featDim)
		res.AccCurve.Append(float64(epoch+1), acc)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "%s seg epoch %3d: patch acc %.2f%%\n", ds.Name, epoch+1, 100*acc)
		}
	}
	acc, miou, perClass := evalSeg(head, testX, testY, featDim)
	res.PatchAccuracy = acc
	res.MeanIoU = miou
	res.PerClassIoU = perClass
	return newHead(head, mean, invStd), res, nil
}

// extractTokens renders each image with its mask, extracts per-token
// features, and majority-votes per-patch labels.
func extractTokens(features TokenFeatureFunc, featDim, batch int,
	ds *geodata.Dataset, test bool, patchSize int) ([]float32, []int, error) {
	gen := ds.Gen
	count := ds.TrainCount
	if test {
		count = ds.TestCount
	}
	if count <= 0 {
		return nil, nil, fmt.Errorf("probe: empty split")
	}
	grid := gen.Size / patchSize
	tokens := grid * grid
	imgLen := gen.ImageLen()

	X := make([]float32, count*tokens*featDim)
	Y := make([]int, count*tokens)
	imgs := make([]float32, batch*imgLen)
	mask := make([]uint8, gen.Size*gen.Size)
	labels := make([]int, tokens)
	for start := 0; start < count; start += batch {
		end := start + batch
		if end > count {
			end = count
		}
		n := end - start
		for i := 0; i < n; i++ {
			idx := start + i
			if test {
				ds.TestSampleWithMask(idx, imgs[i*imgLen:(i+1)*imgLen], mask)
			} else {
				ds.TrainSampleWithMask(idx, imgs[i*imgLen:(i+1)*imgLen], mask)
			}
			geodata.PatchLabels(mask, gen.Size, patchSize, labels)
			copy(Y[(start+i)*tokens:(start+i+1)*tokens], labels)
		}
		f := features(imgs[:n*imgLen], n)
		copy(X[start*tokens*featDim:end*tokens*featDim], f[:n*tokens*featDim])
	}
	return X, Y, nil
}

// evalSeg computes patch accuracy and per-class IoU of the head.
func evalSeg(head *nn.Linear, X []float32, Y []int, featDim int) (acc, meanIoU float64, perClass []float64) {
	const classes = geodata.SegClasses
	var inter, union [classes]int
	correct := 0
	const chunk = 1024
	for start := 0; start < len(Y); start += chunk {
		end := start + chunk
		if end > len(Y) {
			end = len(Y)
		}
		n := end - start
		logits := head.Forward(X[start*featDim:end*featDim], n)
		for i := 0; i < n; i++ {
			pred := argmax(logits[i*classes : (i+1)*classes])
			truth := Y[start+i]
			if pred == truth {
				correct++
				inter[truth]++
				union[truth]++
			} else {
				union[truth]++
				union[pred]++
			}
		}
	}
	perClass = make([]float64, classes)
	var sum float64
	seen := 0
	for c := 0; c < classes; c++ {
		if union[c] > 0 {
			perClass[c] = float64(inter[c]) / float64(union[c])
			sum += perClass[c]
			seen++
		}
	}
	if seen > 0 {
		meanIoU = sum / float64(seen)
	}
	if len(Y) > 0 {
		acc = float64(correct) / float64(len(Y))
	}
	return acc, meanIoU, perClass
}

func argmax(v []float32) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
