package probe

import (
	"fmt"
	"io"

	"repro/internal/geodata"
	"repro/internal/mae"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// Fine-tuning — the other end of the paper's adaptation spectrum
// ("fine-tuning configurations can range between updating all layers …
// to the linear probing configuration"). FineTune updates the encoder
// trunk jointly with the classifier head using AdamW, in contrast to
// linear probing's frozen trunk + LARS head.

// FineTuneConfig configures full fine-tuning.
type FineTuneConfig struct {
	Epochs      int
	BatchSize   int
	BaseLR      float64 // AdamW, linear batch scaling applies
	WeightDecay float64
	Seed        uint64
	Log         io.Writer
}

// DefaultFineTune mirrors common MAE fine-tuning settings scaled to the
// analog regime.
func DefaultFineTune() FineTuneConfig {
	return FineTuneConfig{Epochs: 10, BatchSize: 16, BaseLR: 1e-3, WeightDecay: 0.05, Seed: 7}
}

// FineTuneResult reports fine-tuning quality per epoch.
type FineTuneResult struct {
	Dataset   string
	Top1Curve metrics.Series
	FinalTop1 float64
	FinalTop5 float64
}

// FineTune trains the MAE encoder and a fresh linear head end-to-end on
// the dataset's train split and evaluates on the test split each epoch.
// The model's parameters are updated in place.
func FineTune(cfg FineTuneConfig, model *mae.Model, ds *geodata.Dataset) (*FineTuneResult, error) {
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("probe: non-positive epochs or batch size")
	}
	if ds.TrainCount < cfg.BatchSize {
		return nil, fmt.Errorf("probe: train split %d smaller than batch %d", ds.TrainCount, cfg.BatchSize)
	}
	classes := ds.Classes()
	width := model.Cfg.Encoder.Width
	r := rng.New(cfg.Seed)
	head := nn.NewLinear("finetune.head", width, classes, r)

	params := append(model.EncoderParams(), head.Params()...)
	optim := opt.NewAdamW(params, cfg.WeightDecay)
	stepsPerEpoch := ds.TrainCount / cfg.BatchSize
	sched := opt.CosineSchedule{
		Base:        opt.ScaledLR(cfg.BaseLR, cfg.BatchSize),
		WarmupSteps: stepsPerEpoch,
		TotalSteps:  cfg.Epochs * stepsPerEpoch,
	}

	imgLen := ds.Gen.ImageLen()
	imgs := make([]float32, cfg.BatchSize*imgLen)
	labels := make([]int, cfg.BatchSize)
	dlogits := make([]float32, cfg.BatchSize*classes)
	dfeat := make([]float32, cfg.BatchSize*width)

	res := &FineTuneResult{Dataset: ds.Name}
	res.Top1Curve.Name = ds.Name + " finetune top1"
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := r.Perm(ds.TrainCount)
		for s := 0; s < stepsPerEpoch; s++ {
			for i := 0; i < cfg.BatchSize; i++ {
				labels[i] = ds.TrainSample(perm[s*cfg.BatchSize+i], imgs[i*imgLen:(i+1)*imgLen])
			}
			nn.ZeroGrads(params)
			feat := model.FeaturesWithGrad(imgs, cfg.BatchSize)
			logits := head.Forward(feat, cfg.BatchSize)
			nn.CrossEntropy(logits, labels, classes, dlogits)
			copy(dfeat, head.Backward(dlogits))
			model.BackwardFeatures(dfeat)
			nn.ClipGradNorm(params, 5)
			optim.Step(sched.LR(step))
			step++
		}
		top1, top5 := evalFineTune(model, head, ds, classes, cfg.BatchSize)
		res.Top1Curve.Append(float64(epoch+1), top1)
		res.FinalTop1, res.FinalTop5 = top1, top5
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "%s finetune epoch %3d: top1 %.2f%%\n", ds.Name, epoch+1, 100*top1)
		}
	}
	return res, nil
}

func evalFineTune(model *mae.Model, head *nn.Linear, ds *geodata.Dataset, classes, batch int) (float64, float64) {
	acc := metrics.NewAccuracy(classes)
	imgLen := ds.Gen.ImageLen()
	imgs := make([]float32, batch*imgLen)
	labels := make([]int, batch)
	for start := 0; start < ds.TestCount; start += batch {
		end := start + batch
		if end > ds.TestCount {
			end = ds.TestCount
		}
		n := end - start
		for i := 0; i < n; i++ {
			labels[i] = ds.TestSample(start+i, imgs[i*imgLen:(i+1)*imgLen])
		}
		feat := model.Features(imgs[:n*imgLen], n)
		logits := head.Forward(feat, n)
		for i := 0; i < n; i++ {
			acc.Observe(logits[i*classes:(i+1)*classes], labels[i])
		}
	}
	return acc.Top1(), acc.Top5()
}
